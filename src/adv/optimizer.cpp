#include "cvsafe/adv/optimizer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cvsafe/util/contracts.hpp"

namespace cvsafe::adv {
namespace {

double clamp01(double v) { return std::clamp(v, 0.0, 1.0); }

/// Stable insertion sort of indices by ascending score — deterministic
/// and allocation-free, unlike std::stable_sort's temporary buffer.
void sort_by_score(std::span<std::size_t> order,
                   std::span<const double> scores) {
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  for (std::size_t i = 1; i < order.size(); ++i) {
    const std::size_t key = order[i];
    std::size_t j = i;
    while (j > 0 && scores[order[j - 1]] > scores[key]) {
      order[j] = order[j - 1];
      --j;
    }
    order[j] = key;
  }
}

}  // namespace

// ---------------------------------------------------------------------------
// CoordinateDescent

CoordinateDescent::CoordinateDescent(std::size_t dim, double initial_step)
    : dim_(dim),
      step_(initial_step),
      incumbent_score_(std::numeric_limits<double>::infinity()),
      incumbent_(dim, 0.5) {
  CVSAFE_EXPECTS(dim >= 1, "optimizer dimension must be positive");
  CVSAFE_EXPECTS(initial_step > 0.0 && initial_step <= 0.5,
                 "coordinate-descent step must lie in (0, 0.5]");
}

void CoordinateDescent::ask(std::size_t iteration, std::span<double> out) {
  CVSAFE_EXPECTS(out.size() == 2 * dim_,
                 "ask output must hold population x dim values");
  const std::size_t coord = iteration % dim_;
  for (std::size_t d = 0; d < dim_; ++d) {
    out[d] = incumbent_[d];
    out[dim_ + d] = incumbent_[d];
  }
  out[coord] = clamp01(incumbent_[coord] + step_);
  out[dim_ + coord] = clamp01(incumbent_[coord] - step_);
}

void CoordinateDescent::tell(std::size_t iteration,
                             std::span<const double> params,
                             std::span<const double> scores) {
  CVSAFE_EXPECTS(params.size() == 2 * dim_ && scores.size() == 2,
                 "tell arity must match the asked population");
  const std::size_t pick = scores[1] < scores[0] ? 1 : 0;
  if (scores[pick] < incumbent_score_) {
    incumbent_score_ = scores[pick];
    const auto row = params.subspan(pick * dim_, dim_);
    std::copy(row.begin(), row.end(), incumbent_.begin());
    improved_in_sweep_ = true;
  }
  // End of a full coordinate sweep without improvement: refine the
  // pattern.
  if ((iteration + 1) % dim_ == 0) {
    if (!improved_in_sweep_) step_ = std::max(step_ * 0.5, 1.0 / 1024.0);
    improved_in_sweep_ = false;
  }
}

// ---------------------------------------------------------------------------
// CmaEs

CmaEs::CmaEs(std::size_t dim, std::uint64_t seed, std::size_t lambda,
             double sigma0)
    : dim_(dim),
      lambda_(lambda),
      mu_(lambda / 2),
      seed_(seed),
      sigma_(sigma0),
      best_score_(std::numeric_limits<double>::infinity()),
      rng_(seed),
      weights_(lambda / 2),
      mean_(dim, 0.5),
      cov_(dim * dim, 0.0),
      chol_(dim * dim, 0.0),
      p_sigma_(dim, 0.0),
      p_c_(dim, 0.0),
      zs_(lambda * dim, 0.0),
      ys_((lambda / 2) * dim, 0.0),
      zw_(dim, 0.0),
      yw_(dim, 0.0),
      order_(lambda),
      best_(dim, 0.5) {
  CVSAFE_EXPECTS(dim >= 1, "optimizer dimension must be positive");
  CVSAFE_EXPECTS(lambda >= 4 && lambda % 2 == 0,
                 "CMA-ES population must be even and >= 4");
  CVSAFE_EXPECTS(sigma0 > 0.0 && sigma0 <= 0.5,
                 "CMA-ES initial step must lie in (0, 0.5]");
  // Log-rank recombination weights over the better half.
  double w_sum = 0.0;
  for (std::size_t k = 0; k < mu_; ++k) {
    weights_[k] = std::log(static_cast<double>(mu_) + 0.5) -
                  std::log(static_cast<double>(k) + 1.0);
    w_sum += weights_[k];
  }
  double w_sq = 0.0;
  for (double& w : weights_) {
    w /= w_sum;
    w_sq += w * w;
  }
  mu_eff_ = 1.0 / w_sq;
  const auto n = static_cast<double>(dim_);
  c_sigma_ = (mu_eff_ + 2.0) / (n + mu_eff_ + 5.0);
  d_sigma_ = 1.0 +
             2.0 * std::max(0.0, std::sqrt((mu_eff_ - 1.0) / (n + 1.0)) -
                                     1.0) +
             c_sigma_;
  c_c_ = (4.0 + mu_eff_ / n) / (n + 4.0 + 2.0 * mu_eff_ / n);
  c_1_ = 2.0 / ((n + 1.3) * (n + 1.3) + mu_eff_);
  c_mu_ = std::min(1.0 - c_1_, 2.0 * (mu_eff_ - 2.0 + 1.0 / mu_eff_) /
                                   ((n + 2.0) * (n + 2.0) + mu_eff_));
  chi_n_ = std::sqrt(n) * (1.0 - 1.0 / (4.0 * n) + 1.0 / (21.0 * n * n));
  for (std::size_t d = 0; d < dim_; ++d) cov_[d * dim_ + d] = 1.0;
}

void CmaEs::factorize() {
  // Lower Cholesky of cov_ with clamped pivots: adaptation can drive a
  // diagonal entry numerically non-positive at tiny sigma; clamping
  // keeps the factor real and the run deterministic.
  for (std::size_t r = 0; r < dim_; ++r) {
    for (std::size_t c = 0; c <= r; ++c) {
      double sum = cov_[r * dim_ + c];
      for (std::size_t k = 0; k < c; ++k) {
        sum -= chol_[r * dim_ + k] * chol_[c * dim_ + k];
      }
      if (r == c) {
        chol_[r * dim_ + r] = std::sqrt(std::max(sum, 1e-12));
      } else {
        chol_[r * dim_ + c] = sum / chol_[c * dim_ + c];
      }
    }
    for (std::size_t c = r + 1; c < dim_; ++c) chol_[r * dim_ + c] = 0.0;
  }
}

void CmaEs::ask(std::size_t iteration, std::span<double> out) {
  CVSAFE_EXPECTS(iteration == next_iteration_,
                 "iterations must be asked in order");
  CVSAFE_EXPECTS(out.size() == lambda_ * dim_,
                 "ask output must hold population x dim values");
  ++next_iteration_;
  // Every draw of iteration k comes from derive_seed(seed, k): the batch
  // is a pure function of (seed, k) and the adapted state.
  rng_.reseed(util::derive_seed(seed_, iteration));
  factorize();
  for (std::size_t k = 0; k < lambda_; ++k) {
    double* z = &zs_[k * dim_];
    for (std::size_t d = 0; d < dim_; ++d) z[d] = rng_.normal();
    double* x = &out[k * dim_];
    for (std::size_t r = 0; r < dim_; ++r) {
      double y = 0.0;
      for (std::size_t c = 0; c <= r; ++c) y += chol_[r * dim_ + c] * z[c];
      x[r] = clamp01(mean_[r] + sigma_ * y);
    }
  }
}

void CmaEs::tell(std::size_t iteration, std::span<const double> params,
                 std::span<const double> scores) {
  CVSAFE_EXPECTS(iteration + 1 == next_iteration_,
                 "tell must follow its own ask");
  CVSAFE_EXPECTS(params.size() == lambda_ * dim_ &&
                     scores.size() == lambda_,
                 "tell arity must match the asked population");
  sort_by_score(order_, scores);
  if (scores[order_[0]] < best_score_) {
    best_score_ = scores[order_[0]];
    const auto row = params.subspan(order_[0] * dim_, dim_);
    std::copy(row.begin(), row.end(), best_.begin());
  }
  // Recover displacements of the selected half from the EVALUATED
  // points (clamping happened after sampling, so y is re-derived from
  // params rather than taken from the raw draws) and their standard
  // pre-images via forward substitution against the factor used to
  // sample them.
  std::fill(yw_.begin(), yw_.end(), 0.0);
  std::fill(zw_.begin(), zw_.end(), 0.0);
  for (std::size_t k = 0; k < mu_; ++k) {
    const std::size_t i = order_[k];
    const double w = weights_[k];
    double* y = &ys_[k * dim_];
    double* z = &zs_[i * dim_];  // overwrite the draw as scratch
    for (std::size_t d = 0; d < dim_; ++d) {
      y[d] = (params[i * dim_ + d] - mean_[d]) / sigma_;
      yw_[d] += w * y[d];
    }
    for (std::size_t r = 0; r < dim_; ++r) {
      double sum = y[r];
      for (std::size_t c = 0; c < r; ++c) sum -= chol_[r * dim_ + c] * z[c];
      z[r] = sum / chol_[r * dim_ + r];
      zw_[r] += w * z[r];
    }
  }
  for (std::size_t d = 0; d < dim_; ++d) {
    mean_[d] = clamp01(mean_[d] + sigma_ * yw_[d]);
  }
  // Cumulative step-size control on the pre-image path.
  const double cs = c_sigma_;
  double ps_sq = 0.0;
  for (std::size_t d = 0; d < dim_; ++d) {
    p_sigma_[d] = (1.0 - cs) * p_sigma_[d] +
                  std::sqrt(cs * (2.0 - cs) * mu_eff_) * zw_[d];
    ps_sq += p_sigma_[d] * p_sigma_[d];
  }
  const double ps_norm = std::sqrt(ps_sq);
  const double gen = static_cast<double>(iteration) + 1.0;
  const double denom = std::sqrt(1.0 - std::pow(1.0 - cs, 2.0 * gen));
  const bool h_sigma =
      ps_norm / denom <
      (1.4 + 2.0 / (static_cast<double>(dim_) + 1.0)) * chi_n_;
  sigma_ *= std::exp((cs / d_sigma_) * (ps_norm / chi_n_ - 1.0));
  sigma_ = std::clamp(sigma_, 1e-6, 0.5);
  // Rank-one path and covariance update.
  const double hs = h_sigma ? 1.0 : 0.0;
  for (std::size_t d = 0; d < dim_; ++d) {
    p_c_[d] = (1.0 - c_c_) * p_c_[d] +
              hs * std::sqrt(c_c_ * (2.0 - c_c_) * mu_eff_) * yw_[d];
  }
  const double c1a = c_1_ * (1.0 - (1.0 - hs) * c_c_ * (2.0 - c_c_));
  const double decay = 1.0 - c1a - c_mu_;
  for (std::size_t r = 0; r < dim_; ++r) {
    for (std::size_t c = 0; c < dim_; ++c) {
      double v = decay * cov_[r * dim_ + c] + c_1_ * p_c_[r] * p_c_[c];
      for (std::size_t k = 0; k < mu_; ++k) {
        v += c_mu_ * weights_[k] * ys_[k * dim_ + r] * ys_[k * dim_ + c];
      }
      cov_[r * dim_ + c] = v;
    }
  }
}

std::unique_ptr<Optimizer> make_optimizer(const std::string& name,
                                          std::size_t dim,
                                          std::uint64_t seed) {
  if (name == "coord") return std::make_unique<CoordinateDescent>(dim);
  CVSAFE_EXPECTS(name == "cma", "unknown optimizer name");
  return std::make_unique<CmaEs>(dim, seed);
}

}  // namespace cvsafe::adv
