#include "cvsafe/adv/param_space.hpp"

#include <algorithm>
#include <array>

#include "cvsafe/util/contracts.hpp"

namespace cvsafe::adv {
namespace {

/// Decode ranges. Probabilities stay well under the preset regime's
/// ceiling, magnitudes under the hardened gate's trust margins
/// (trust_margin_p 2.5 m, trust_margin_v 2.0 m/s), and windows inside
/// the episode horizon — the loud corner of the box is about as noisy
/// as the "corruption" preset, so the stealth screen separates rather
/// than saturates.
constexpr std::array<ParamSpace::Bound, ParamSpace::kDim> kBounds = {{
    {"delay_jitter_max", 0.0, 0.4},     // extra per-message delay [s]
    {"reorder_prob", 0.0, 0.4},
    {"reorder_delay_min", 0.05, 0.2},   // [s]
    {"reorder_delay_span", 0.05, 0.3},  // max = min + span [s]
    {"duplicate_prob", 0.0, 0.4},
    {"duplicate_lag_max", 0.0, 0.2},    // [s]
    {"corrupt_prob", 0.0, 0.25},
    {"corrupt_delta_p", 0.0, 2.5},      // [m]
    {"corrupt_delta_v", 0.0, 2.0},      // [m/s]
    {"corrupt_delta_a", 0.0, 1.5},      // [m/s^2]
    {"stale_spoof_prob", 0.0, 0.2},
    {"stale_spoof_max", 0.0, 0.8},      // [s], hardened max_age = 1.0
    {"blackout1_begin", 0.0, 16.0},     // [s]
    {"blackout1_len", 0.0, 4.0},        // [s]
    {"blackout2_begin", 0.0, 16.0},     // [s]
    {"blackout2_len", 0.0, 4.0},        // [s]
    {"sensor_dropout_prob", 0.0, 0.3},
    {"bias_drift_rate", -0.05, 0.05},   // [m/s]
    {"stuck_begin", 0.0, 16.0},         // [s]
    {"stuck_len", 0.0, 3.0},            // [s]
}};

double lerp(const ParamSpace::Bound& b, double x) {
  return b.lo + (b.hi - b.lo) * std::clamp(x, 0.0, 1.0);
}

}  // namespace

std::span<const ParamSpace::Bound, ParamSpace::kDim> ParamSpace::bounds() {
  return kBounds;
}

ParamSpace::ParamSpace(double stealth_threshold)
    : stealth_threshold_(stealth_threshold) {
  CVSAFE_EXPECTS(stealth_threshold >= 0.0 && stealth_threshold <= 1.0,
                 "stealth threshold must lie in [0,1]");
}

fault::FaultPlan ParamSpace::decode(std::span<const double> x) const {
  CVSAFE_EXPECTS(x.size() == kDim,
                 "candidate vector must have ParamSpace::kDim values");
  std::array<double, kDim> v;
  for (std::size_t d = 0; d < kDim; ++d) v[d] = lerp(kBounds[d], x[d]);

  fault::FaultPlan p;
  p.name = "adv";
  auto& ch = p.channel;
  ch.delay_jitter_max = v[0];
  ch.reorder_prob = v[1];
  ch.reorder_delay_min = v[2];
  ch.reorder_delay_max = v[2] + v[3];  // span keeps the range ordered
  ch.duplicate_prob = v[4];
  ch.duplicate_lag_max = v[5];
  ch.corrupt_prob = v[6];
  ch.corrupt_delta_p = v[7];
  ch.corrupt_delta_v = v[8];
  ch.corrupt_delta_a = v[9];
  ch.stale_spoof_prob = v[10];
  ch.stale_spoof_max = v[11];
  ch.blackouts = {{v[12], v[12] + v[13]}, {v[14], v[14] + v[15]}};
  auto& se = p.sensor;
  se.dropout_prob = v[16];
  se.bias_drift_rate = v[17];
  se.stuck = {{v[18], v[18] + v[19]}};
  p.validate();
  return p;
}

}  // namespace cvsafe::adv
