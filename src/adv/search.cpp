#include "cvsafe/adv/search.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <string>

#include "cvsafe/adv/optimizer.hpp"
#include "cvsafe/obs/flight_recorder.hpp"
#include "cvsafe/obs/metrics.hpp"
#include "cvsafe/util/contracts.hpp"

namespace cvsafe::adv {
namespace {

/// Score assigned to screened-out (too loud) candidates: far above any
/// admissible safety margin, graded by how loud, so the optimizer is
/// steered back toward the stealth envelope rather than seeing a flat
/// cliff.
constexpr double kStealthPenalty = 1e3;

// ([[maybe_unused]]: contract-free builds compile validate() out.)
[[maybe_unused]] bool known_scenario(const std::string& name) {
  return name == "left-turn" || name == "lane-change" ||
         name == "intersection" || name == "multi-vehicle";
}

void emit_double(std::ostream& os, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  os << buf;
}

}  // namespace

void SearchConfig::validate() const {
  CVSAFE_EXPECTS(known_scenario(scenario), "unknown search scenario");
  CVSAFE_EXPECTS(optimizer == "cma" || optimizer == "coord",
                 "unknown optimizer name");
  CVSAFE_EXPECTS(iterations >= 1, "search needs at least one iteration");
  CVSAFE_EXPECTS(episodes_per_eval >= 1,
                 "search needs at least one episode per candidate");
  CVSAFE_EXPECTS(top_k >= 1, "search must report at least one offender");
  CVSAFE_EXPECTS(stealth_threshold >= 0.0 && stealth_threshold <= 1.0,
                 "stealth threshold must lie in [0,1]");
}

SearchConfig SearchConfig::ci() {
  SearchConfig c;
  c.scenario = "left-turn";
  c.optimizer = "cma";
  c.iterations = 8;
  c.episodes_per_eval = 4;
  c.search_seed = 7;
  c.eval_seed = 2026;
  c.top_k = 3;
  return c;
}

SearchConfig SearchConfig::smoke() {
  SearchConfig c;
  c.scenario = "left-turn";
  c.optimizer = "coord";
  c.iterations = 2;
  c.episodes_per_eval = 2;
  c.search_seed = 7;
  c.eval_seed = 2026;
  c.top_k = 1;
  return c;
}

const CandidateRecord* SearchResult::worst() const {
  return offenders.empty() ? nullptr
                           : &trace.candidates[offenders.front()];
}

bool SearchResult::invariant_ok() const {
  return std::all_of(
      trace.candidates.begin(), trace.candidates.end(),
      [](const CandidateRecord& c) { return c.cell.invariant_ok(); });
}

std::size_t SearchResult::violations() const {
  std::size_t total = 0;
  for (const CandidateRecord& c : trace.candidates) {
    total += c.cell.collisions;
  }
  return total;
}

SearchResult run_search(const SearchConfig& config) {
  config.validate();
  const ParamSpace space(config.stealth_threshold);
  const auto opt =
      make_optimizer(config.optimizer, ParamSpace::kDim, config.search_seed);
  const std::size_t pop = opt->population();

  SearchResult result;
  result.config = config;
  result.trace.candidates.reserve(config.iterations * pop);
  std::vector<double> xs(pop * ParamSpace::kDim);
  std::vector<double> scores(pop);
  for (std::size_t it = 0; it < config.iterations; ++it) {
    opt->ask(it, xs);
    for (std::size_t c = 0; c < pop; ++c) {
      const std::span<const double> x(&xs[c * ParamSpace::kDim],
                                      ParamSpace::kDim);
      CandidateRecord rec;
      rec.iteration = it;
      rec.index = c;
      rec.params.assign(x.begin(), x.end());
      rec.plan = space.decode(x);
      const sim::FaultCondition cond{"adv", rec.plan, config.comm};
      const auto episodes = sim::run_campaign_cell(
          config.scenario, cond, config.episodes_per_eval, config.eval_seed,
          config.threads);
      rec.cell = aggregate_cell("adv", config.scenario, episodes);
      rec.admissible = space.admits(rec.cell);
      rec.score = rec.admissible
                      ? rec.cell.min_eta
                      : kStealthPenalty + rec.cell.rejection_rate();
      scores[c] = rec.score;
      result.trace.candidates.push_back(std::move(rec));
    }
    opt->tell(it, xs, scores);
  }

  // Offender ranking: admissible candidates by ascending margin, ties in
  // schedule order (stable), truncated to top_k.
  for (std::size_t i = 0; i < result.trace.candidates.size(); ++i) {
    if (result.trace.candidates[i].admissible) result.offenders.push_back(i);
  }
  std::stable_sort(result.offenders.begin(), result.offenders.end(),
                   [&](std::size_t a, std::size_t b) {
                     return result.trace.candidates[a].cell.min_eta <
                            result.trace.candidates[b].cell.min_eta;
                   });
  if (result.offenders.size() > config.top_k) {
    result.offenders.resize(config.top_k);
  }
  return result;
}

void write_search_csv(std::ostream& os, const SearchResult& result) {
  os << "iteration,candidate,admissible,score,min_eta,mean_eta,collisions,"
        "reached,episodes,steps,emergency_steps,ladder_full,"
        "ladder_reach_only,ladder_sensor_only,ladder_emergency_biased,"
        "ladder_transitions,messages_accepted,messages_rejected,"
        "reject_rate";
  for (const ParamSpace::Bound& b : ParamSpace::bounds()) {
    os << ",p_" << b.name;
  }
  os << '\n';
  for (const CandidateRecord& r : result.trace.candidates) {
    const sim::CampaignCell& c = r.cell;
    os << r.iteration << ',' << r.index << ',' << (r.admissible ? 1 : 0)
       << ',';
    emit_double(os, r.score);
    os << ',';
    emit_double(os, c.min_eta);
    os << ',';
    emit_double(os, c.mean_eta);
    os << ',' << c.collisions << ',' << c.reached << ',' << c.episodes
       << ',' << c.steps << ',' << c.emergency_steps;
    for (const std::size_t n : c.ladder_steps) os << ',' << n;
    os << ',' << c.ladder_transitions << ',' << c.messages_accepted << ','
       << c.messages_rejected << ',';
    emit_double(os, c.rejection_rate());
    for (const double p : r.params) {
      os << ',';
      emit_double(os, p);
    }
    os << '\n';
  }
}

std::string search_csv(const SearchResult& result) {
  std::ostringstream os;
  write_search_csv(os, result);
  return os.str();
}

void trace_offender(const SearchResult& result, std::size_t rank,
                    std::ostream& os) {
  CVSAFE_EXPECTS(rank < result.offenders.size(),
                 "offender rank out of range");
  const CandidateRecord& rec = result.trace.candidates[result.offenders[rank]];
  const sim::FaultCondition cond{"adv-" + std::to_string(rank), rec.plan,
                                 result.config.comm};
  sim::run_campaign_cell(result.config.scenario, cond,
                         result.config.episodes_per_eval,
                         result.config.eval_seed, result.config.threads, &os);
}

void collect_search_metrics(obs::MetricsRegistry& registry,
                            const SearchResult& result) {
  // Always materialize the totals so the export shape is stable even for
  // an all-screened (or collision-free) search.
  obs::Counter& candidates =
      registry.counter("cvsafe_attack_candidates_total");
  obs::Counter& screened =
      registry.counter("cvsafe_attack_stealth_rejected_total");
  obs::Counter& collisions =
      registry.counter("cvsafe_attack_collisions_total");
  bool have_best = false;
  double best = 0.0;
  std::size_t iteration = 0;
  const auto flush = [&](std::size_t it) {
    if (!have_best) return;
    registry
        .gauge("cvsafe_attack_best_eta{iteration=\"" + std::to_string(it) +
               "\"}")
        .set(best);
  };
  // Candidates are schedule-ordered (iteration-major), so one pass folds
  // the running best and flushes a gauge at every iteration boundary.
  for (const CandidateRecord& c : result.trace.candidates) {
    if (c.iteration != iteration) {
      flush(iteration);
      iteration = c.iteration;
    }
    candidates.inc();
    if (!c.admissible) screened.inc();
    collisions.inc(c.cell.collisions);
    if (c.admissible && (!have_best || c.cell.min_eta < best)) {
      have_best = true;
      best = c.cell.min_eta;
    }
  }
  if (!result.trace.candidates.empty()) flush(iteration);
  if (have_best) registry.gauge("cvsafe_attack_best_eta").set(best);
}

std::size_t dump_offender_flights(const SearchResult& result,
                                  std::size_t rank, std::ostream& os,
                                  const obs::FlightRecorderConfig& flight) {
  CVSAFE_EXPECTS(rank < result.offenders.size(),
                 "offender rank out of range");
  const CandidateRecord& rec = result.trace.candidates[result.offenders[rank]];
  const std::string label = "adv-" + std::to_string(rank);
  const sim::FaultCondition cond{label, rec.plan, result.config.comm};
  obs::FlightDumpCollector dumps;
  sim::FleetObsSinks sinks;
  sinks.dumps = &dumps;
  sinks.flight = flight;
  sim::run_campaign_cell(result.config.scenario, cond,
                         result.config.episodes_per_eval,
                         result.config.eval_seed, result.config.threads,
                         /*trace=*/nullptr, sinks);
  return obs::write_flight_dumps_jsonl(os, dumps.take_sorted(),
                                       result.config.scenario, label);
}

}  // namespace cvsafe::adv
