#include "cvsafe/sim/obs_summary.hpp"

#include <cstdio>

namespace cvsafe::sim {

namespace {

const std::vector<double>& eta_buckets() {
  static const std::vector<double> buckets{-1.0, -0.5, -0.1, 0.0,
                                           0.1,  0.25, 0.5,  0.75, 1.0};
  return buckets;
}

const std::vector<double>& reach_time_buckets() {
  static const std::vector<double> buckets{5.0,  10.0, 15.0, 20.0,
                                           25.0, 30.0, 40.0};
  return buckets;
}

std::string level_label(std::size_t level) {
  std::string name = "cvsafe_ladder_steps_total{level=\"";
  name += core::to_string(static_cast<core::DegradationLevel>(level));
  name += "\"}";
  return name;
}

}  // namespace

void collect_run_metrics(obs::MetricsRegistry& reg, const RunResult& result) {
  reg.counter("cvsafe_episodes_total").inc();
  if (result.collided) reg.counter("cvsafe_collisions_total").inc();
  if (result.reached) reg.counter("cvsafe_reached_total").inc();
  reg.counter("cvsafe_steps_total").inc(result.steps);
  reg.counter("cvsafe_emergency_steps_total").inc(result.emergency_steps);
  for (std::size_t level = 0; level < result.ladder_steps.size(); ++level) {
    if (result.ladder_steps[level] > 0) {
      reg.counter(level_label(level)).inc(result.ladder_steps[level]);
    }
  }
  reg.counter("cvsafe_ladder_transitions_total")
      .inc(result.ladder_transitions);
  reg.counter("cvsafe_messages_accepted_total")
      .inc(result.messages_accepted);
  reg.counter("cvsafe_messages_rejected_total")
      .inc(result.messages_rejected);
  reg.histogram("cvsafe_eta", eta_buckets()).observe(result.eta);
  if (result.reached) {
    reg.histogram("cvsafe_reach_time_seconds", reach_time_buckets())
        .observe(result.reach_time);
  }
}

void collect_metrics(obs::MetricsRegistry& reg,
                     std::span<const RunResult> results) {
  for (const RunResult& r : results) collect_run_metrics(reg, r);
}

void collect_campaign_metrics(obs::MetricsRegistry& reg,
                              const CampaignResult& campaign) {
  reg.counter("cvsafe_campaign_cells_total")
      .inc(campaign.cells.size());
  reg.counter("cvsafe_campaign_violations_total").inc(campaign.violations());
  for (const CampaignCell& cell : campaign.cells) {
    const std::string labels =
        "{fault=\"" + cell.fault + "\",scenario=\"" + cell.scenario + "\"}";
    reg.counter("cvsafe_episodes_total" + labels).inc(cell.episodes);
    reg.counter("cvsafe_collisions_total" + labels).inc(cell.collisions);
    reg.counter("cvsafe_reached_total" + labels).inc(cell.reached);
    reg.counter("cvsafe_steps_total" + labels).inc(cell.steps);
    reg.counter("cvsafe_emergency_steps_total" + labels)
        .inc(cell.emergency_steps);
    reg.counter("cvsafe_ladder_transitions_total" + labels)
        .inc(cell.ladder_transitions);
    reg.counter("cvsafe_messages_accepted_total" + labels)
        .inc(cell.messages_accepted);
    reg.counter("cvsafe_messages_rejected_total" + labels)
        .inc(cell.messages_rejected);
    reg.gauge("cvsafe_min_eta" + labels).set(cell.min_eta);
  }
}

std::string run_summary_text(const RunResult& result) {
  std::string out;
  std::size_t ladder_total = 0;
  for (const std::size_t steps : result.ladder_steps) ladder_total += steps;
  if (ladder_total > 0) {
    out += "ladder     ";
    for (std::size_t level = 0; level < result.ladder_steps.size();
         ++level) {
      if (level > 0) out += " | ";
      out += core::to_string(static_cast<core::DegradationLevel>(level));
      out += ' ';
      out += std::to_string(result.ladder_steps[level]);
    }
    char buf[48];
    std::snprintf(buf, sizeof(buf), " (%zu transitions)\n",
                  result.ladder_transitions);
    out += buf;
  }
  if (result.messages_accepted > 0 || result.messages_rejected > 0) {
    char buf[96];
    std::snprintf(buf, sizeof(buf), "messages   %zu accepted, %zu rejected\n",
                  result.messages_accepted, result.messages_rejected);
    out += buf;
  }
  return out;
}

}  // namespace cvsafe::sim
