#include "cvsafe/sim/multi_vehicle.hpp"

#include <cassert>
#include <utility>
#include <vector>

#include "cvsafe/filter/info_filter.hpp"
#include "cvsafe/filter/naive.hpp"
#include "cvsafe/planners/expert.hpp"
#include "cvsafe/planners/nn_planner.hpp"

namespace cvsafe::sim {

using scenario::LeftTurnMultiWorld;

namespace {

class MultiVehicleEpisode final : public Episode<LeftTurnMultiWorld> {
 public:
  /// Workload draw order (fixed): platoon lead grid index, then per
  /// vehicle its initial speed, acceleration profile and trailing
  /// headway jitter.
  MultiVehicleEpisode(
      const LeftTurnSimConfig& config, const MultiVehicleConfig& multi,
      const MultiAgentSetup& setup,
      std::shared_ptr<const scenario::MultiVehicleLeftTurn> math,
      util::Rng& rng, std::size_t total_steps, std::uint64_t seed)
      : scn_(setup.scenario.get()),
        math_(std::move(math)),
        c1_dyn_(config.c1_limits) {
    assert(scn_ != nullptr);
    assert(multi.num_oncoming >= 1);

    const auto& wl = config.workload;
    assert(!wl.p1_grid.empty());
    const auto grid_idx = static_cast<std::size_t>(rng.uniform_int(
        0, static_cast<std::int64_t>(wl.p1_grid.size()) - 1));
    const double lead_u =
        scenario::LeftTurnGeometry::oncoming_to_frame(wl.p1_grid[grid_idx]);

    cars_.reserve(multi.num_oncoming);
    double u = lead_u;
    for (std::size_t i = 0; i < multi.num_oncoming; ++i) {
      const double v0 = rng.uniform(wl.v1_init_min, wl.v1_init_max);
      vehicle::AccelProfile profile = vehicle::AccelProfile::random(
          total_steps, config.dt_c, v0, config.c1_limits, wl.profile, rng);
      // Estimator order [monitor, nn] fixes the per-delivery update order.
      const auto id = static_cast<std::uint32_t>(i + 1);
      std::vector<std::unique_ptr<filter::Estimator>> estimators;
      auto monitor_filter = std::make_unique<filter::InformationFilter>(
          config.c1_limits, config.sensor,
          filter::InfoFilterOptions::basic(), config.gate);
      monitor_filters_.push_back(monitor_filter.get());
      estimators.push_back(std::move(monitor_filter));
      if (setup.use_info_filter) {
        auto nn_filter = std::make_unique<filter::InformationFilter>(
            config.c1_limits, config.sensor,
            filter::InfoFilterOptions::ultimate(), config.gate);
        nn_filters_.push_back(nn_filter.get());
        estimators.push_back(std::move(nn_filter));
      } else {
        estimators.push_back(std::make_unique<filter::NaiveExtrapolator>(
            config.sensor.delta_p, config.sensor.delta_v));
      }
      cars_.push_back(TrafficActor{id,
                                   vehicle::VehicleState{u, v0},
                                   std::move(profile),
                                   actor_channel(config, id, seed),
                                   actor_sensor(config, id, seed),
                                   std::move(estimators),
                                   {}});
      u -= multi.platoon_spacing +
           rng.uniform(-multi.spacing_jitter, multi.spacing_jitter);
    }

    std::shared_ptr<core::PlannerBase<scenario::LeftTurnWorld>> single;
    if (setup.net != nullptr) {
      single = std::make_shared<planners::NnPlanner>(
          setup.net, planners::InputEncoding{}, "nn");
    } else {
      single = std::make_shared<planners::ExpertPlanner>(
          setup.scenario, setup.expert_params, "expert");
    }
    auto adapted =
        std::make_shared<scenario::FirstConflictAdapter>(std::move(single));
    if (setup.use_compound) {
      auto model = std::make_shared<scenario::MultiVehicleSafetyModel>(
          math_, setup.buffers);
      auto compound =
          std::make_shared<core::CompoundPlanner<LeftTurnMultiWorld>>(
              std::move(adapted), std::move(model),
              core::CompoundOptions{setup.use_aggressive});
      compound_ = compound.get();
      planner_ = std::move(compound);
      if (config.ladder) compound_->enable_degradation(*config.ladder);
    } else {
      planner_ = std::move(adapted);
    }
    ego_init_ =
        vehicle::VehicleState{config.geometry.ego_start, config.ego_v0};
  }

  void observe(LeftTurnMultiWorld& world, double t, std::size_t step,
               util::Rng& rng) override {
    world.oncoming_monitor.reserve(cars_.size());
    world.oncoming_nn.reserve(cars_.size());
    for (auto& car : cars_) {
      pump(car, t, step, rng);
      world.oncoming_monitor.push_back(car.estimators[0]->estimate(t));
      world.oncoming_nn.push_back(car.estimators[1]->estimate(t));
    }
    world.tau_monitor = math_->conservative_windows(world.oncoming_monitor);
    world.tau_nn = math_->conservative_windows(world.oncoming_nn);
    if (compound_ != nullptr && compound_->has_ladder()) {
      SignalAccumulator acc;
      for (const auto* f : monitor_filters_) {
        acc.add(degradation_signals(*f, t));
      }
      compound_->note_signals(acc.worst);
    }
  }

  void finalize(RunResult& result) const override {
    for (const auto* list : {&monitor_filters_, &nn_filters_}) {
      for (const auto* f : *list) {
        const filter::RejectionCounters& c = f->rejections();
        result.messages_accepted += c.accepted;
        result.messages_rejected += c.total_rejected();
        result.rejection_reasons[0] += c.non_finite;
        result.rejection_reasons[1] += c.out_of_range;
        result.rejection_reasons[2] += c.stale;
        result.rejection_reasons[3] += c.implausible;
      }
    }
  }

  void attach_ring(obs::RingRecorder* ring) override {
    if (compound_ != nullptr) compound_->set_ring(ring);
    for (auto* list : {&monitor_filters_, &nn_filters_}) {
      for (auto* f : *list) f->set_ring(ring);
    }
  }

  void advance_traffic(std::size_t step, double dt) override {
    for (auto& car : cars_) {
      car.state = c1_dyn_.step(car.state, car.profile.at(step), dt);
    }
  }

  StepStatus check(const vehicle::VehicleState& ego) const override {
    StepStatus status;
    for (const auto& car : cars_) {
      if (scn_->collision(ego.p, car.state.p)) status.collided = true;
    }
    if (!status.collided && scn_->ego_reached_target(ego.p)) {
      status.reached = true;
    }
    return status;
  }

 private:
  const scenario::LeftTurnScenario* scn_;
  std::shared_ptr<const scenario::MultiVehicleLeftTurn> math_;
  vehicle::DoubleIntegrator c1_dyn_;
  std::vector<TrafficActor> cars_;
  /// Typed views per car (signals, gate tallies); nn_filters_ is empty
  /// when the NN side uses the naive extrapolator.
  std::vector<filter::InformationFilter*> monitor_filters_;
  std::vector<filter::InformationFilter*> nn_filters_;
};

}  // namespace

MultiVehicleAdapter::MultiVehicleAdapter(LeftTurnSimConfig config,
                                         MultiVehicleConfig multi,
                                         MultiAgentSetup setup)
    : config_(std::move(config)),
      multi_(multi),
      setup_(std::move(setup)),
      math_(std::make_shared<const scenario::MultiVehicleLeftTurn>(
          setup_.scenario)) {}

std::unique_ptr<Episode<LeftTurnMultiWorld>>
MultiVehicleAdapter::make_episode(util::Rng& rng, std::size_t total_steps,
                                  std::uint64_t seed) const {
  return std::make_unique<MultiVehicleEpisode>(
      config_, multi_, setup_, math_, rng, total_steps, seed);
}

RunResult run_multi_left_turn_simulation(const LeftTurnSimConfig& config,
                                         const MultiVehicleConfig& multi,
                                         const MultiAgentSetup& setup,
                                         std::uint64_t seed) {
  MultiVehicleAdapter adapter(config, multi, setup);
  return run_episode(adapter, seed);
}

BatchStats run_multi_batch(const LeftTurnSimConfig& config,
                           const MultiVehicleConfig& multi,
                           const MultiAgentSetup& setup, std::size_t n,
                           std::uint64_t base_seed, std::size_t threads,
                           SeedPolicy policy) {
  MultiVehicleAdapter adapter(config, multi, setup);
  const auto results = run_episodes(adapter, n, base_seed, threads, policy);
  return BatchStats::from_results(results);
}

}  // namespace cvsafe::sim
