#include "cvsafe/sim/fault_campaign.hpp"

#include <algorithm>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <utility>

#include "cvsafe/sim/intersection.hpp"
#include "cvsafe/sim/lane_change.hpp"
#include "cvsafe/sim/left_turn.hpp"
#include "cvsafe/sim/multi_vehicle.hpp"
#include "cvsafe/sim/trace.hpp"
#include "cvsafe/util/contracts.hpp"

namespace cvsafe::sim {

namespace {

// ([[maybe_unused]]: contract-free builds compile validate() out.)
[[maybe_unused]] bool known_scenario(const std::string& name) {
  return name == "left-turn" || name == "lane-change" ||
         name == "intersection" || name == "multi-vehicle";
}

/// Applies the campaign's robustness posture to an episode configuration:
/// the cell's fault plan and channel, the hardened plausibility gate and
/// the armed degradation ladder.
void harden(RunConfig& config, const FaultCondition& cond) {
  config.comm = cond.comm;
  config.faults = cond.plan;
  config.gate = filter::GateConfig::hardened();
  config.ladder = core::LadderConfig{};
}

/// One cell's episode batch, traced (recorder mounted, JSONL appended to
/// \p trace in seed order) or plain.
template <typename World>
std::vector<RunResult> run_cell_episodes(const ScenarioAdapter<World>& adapter,
                                         std::size_t episodes,
                                         std::uint64_t seed,
                                         std::size_t threads,
                                         std::ostream* trace,
                                         const std::string& fault_label,
                                         const FleetObsSinks& sinks) {
  if (trace == nullptr) {
    // Untraced cells run on the fleet engine: pooled episodes with
    // work-stealing refill instead of one task per episode. Records are
    // seed-ordered and per-episode bit-identical to run_episodes, so the
    // cell aggregation (and the golden campaign CSV) is byte-identical.
    FleetConfig fleet;
    fleet.threads = threads;
    fleet.policy = SeedPolicy::kDerived;
    const std::vector<FleetRecord> records =
        run_fleet_records(adapter, episodes, seed, fleet, {}, sinks);
    std::vector<RunResult> results;
    results.reserve(records.size());
    for (const FleetRecord& r : records) {
      results.push_back(record_to_result(r));
    }
    return results;
  }
  return run_traced_episodes(adapter, episodes, seed, threads,
                             SeedPolicy::kDerived, *trace,
                             std::string(adapter.name()), fault_label);
}

}  // namespace

FaultCondition FaultCondition::preset(const std::string& name) {
  if (name == "burst") {
    FaultCondition cond;
    cond.label = "burst";
    cond.plan = fault::FaultPlan::none();
    cond.plan.name = "burst";
    cond.comm = comm::CommConfig::bursty(/*bad_fraction=*/0.3,
                                         /*mean_burst_len=*/5.0,
                                         /*delay=*/0.1);
    return cond;
  }
  const auto plan = fault::FaultPlan::preset(name);
  CVSAFE_EXPECTS(plan.has_value(), "unknown campaign fault condition");
  FaultCondition cond;
  cond.label = name;
  cond.plan = *plan;
  cond.comm = comm::CommConfig::delayed(/*drop_prob=*/0.2, /*delay=*/0.25);
  return cond;
}

std::vector<RunResult> run_campaign_cell(const std::string& scenario,
                                         const FaultCondition& cond,
                                         std::size_t episodes,
                                         std::uint64_t seed,
                                         std::size_t threads,
                                         std::ostream* trace,
                                         const FleetObsSinks& sinks) {
  if (scenario == "left-turn") {
    LeftTurnSimConfig config = LeftTurnSimConfig::paper_defaults();
    harden(config, cond);
    AgentBlueprint bp;
    bp.name = "expert-compound";
    bp.scenario = config.make_scenario();
    bp.sensor = config.sensor;
    bp.config = AgentConfig::ultimate_compound();
    bp.config.use_expert_planner = true;
    bp.config.gate = config.gate;
    bp.config.ladder = config.ladder;
    LeftTurnAdapter adapter(config, bp);
    return run_cell_episodes(adapter, episodes, seed, threads, trace,
                             cond.label, sinks);
  }
  if (scenario == "lane-change") {
    LaneChangeSimConfig config;
    harden(config, cond);
    LaneChangeAdapter adapter(config, LaneChangePlannerConfig{});
    return run_cell_episodes(adapter, episodes, seed, threads, trace,
                             cond.label, sinks);
  }
  if (scenario == "intersection") {
    IntersectionSimConfig config;
    harden(config, cond);
    IntersectionAdapter adapter(config, /*use_compound=*/true);
    return run_cell_episodes(adapter, episodes, seed, threads, trace,
                             cond.label, sinks);
  }
  CVSAFE_EXPECTS(scenario == "multi-vehicle",
                 "unknown campaign scenario");
  LeftTurnSimConfig config = LeftTurnSimConfig::paper_defaults();
  harden(config, cond);
  MultiAgentSetup setup;
  setup.scenario = config.make_scenario();  // net == nullptr -> expert
  MultiVehicleAdapter adapter(config, MultiVehicleConfig{}, setup);
  return run_cell_episodes(adapter, episodes, seed, threads, trace,
                           cond.label, sinks);
}

CampaignCell aggregate_cell(std::string fault, std::string scenario,
                            std::span<const RunResult> results) {
  // min_eta/mean_eta must come from the batch, never the struct's 0.0
  // defaults: folding min against a default 0.0 would mask an
  // all-positive minimum, and an empty batch would report a fabricated
  // mean of 0.0 as if it were measured.
  CVSAFE_EXPECTS(!results.empty(),
                 "cell aggregation needs at least one episode");
  CampaignCell cell;
  cell.fault = std::move(fault);
  cell.scenario = std::move(scenario);
  cell.episodes = results.size();
  cell.min_eta = results.front().eta;
  double eta_sum = 0.0;
  for (const RunResult& r : results) {
    if (r.collided) ++cell.collisions;
    if (r.reached) ++cell.reached;
    cell.steps += r.steps;
    cell.emergency_steps += r.emergency_steps;
    for (std::size_t i = 0; i < cell.ladder_steps.size(); ++i) {
      cell.ladder_steps[i] += r.ladder_steps[i];
    }
    cell.ladder_transitions += r.ladder_transitions;
    cell.messages_accepted += r.messages_accepted;
    cell.messages_rejected += r.messages_rejected;
    eta_sum += r.eta;
    cell.min_eta = std::min(cell.min_eta, r.eta);
  }
  cell.mean_eta = eta_sum / static_cast<double>(results.size());
  return cell;
}

namespace {

void emit_double(std::ostream& os, double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  os << buf;
}

}  // namespace

void CampaignConfig::validate() const {
  CVSAFE_EXPECTS(!faults.empty() && !scenarios.empty(),
                 "campaign axes must be non-empty");
  CVSAFE_EXPECTS(episodes_per_cell >= 1,
                 "campaign needs at least one episode per cell");
  for ([[maybe_unused]] const auto& f : faults) {
    CVSAFE_EXPECTS(f == "burst" || fault::FaultPlan::preset(f).has_value(),
                   "unknown campaign fault condition");
  }
  for ([[maybe_unused]] const auto& s : scenarios) {
    CVSAFE_EXPECTS(known_scenario(s), "unknown campaign scenario");
  }
}

CampaignConfig CampaignConfig::ci() {
  CampaignConfig c;
  c.faults = {"delay-jitter", "reorder-duplicate", "corruption", "blackout",
              "burst"};
  c.scenarios = {"left-turn", "lane-change", "intersection",
                 "multi-vehicle"};
  c.episodes_per_cell = 8;
  c.base_seed = 2026;
  return c;
}

CampaignConfig CampaignConfig::smoke() {
  CampaignConfig c;
  c.faults = {"corruption", "blackout"};
  c.scenarios = {"left-turn", "intersection"};
  c.episodes_per_cell = 2;
  c.base_seed = 2026;
  return c;
}

bool CampaignResult::invariant_ok() const {
  return std::all_of(cells.begin(), cells.end(),
                     [](const CampaignCell& c) { return c.invariant_ok(); });
}

std::size_t CampaignResult::violations() const {
  std::size_t total = 0;
  for (const CampaignCell& c : cells) total += c.collisions;
  return total;
}

CampaignResult run_fault_campaign(const CampaignConfig& config,
                                  std::ostream* trace_os,
                                  const CampaignObs* observe) {
  config.validate();
  CampaignResult result;
  result.cells.reserve(config.faults.size() * config.scenarios.size());
  // One collector serves every cell: it is drained (take_sorted) after
  // each cell so the JSONL stays in deterministic (cell-major,
  // episode-minor) order regardless of retirement interleaving.
  obs::FlightDumpCollector dumps;
  FleetObsSinks sinks;
  if (observe != nullptr) {
    sinks.flight = observe->flight;
    sinks.dumps = observe->flight_os != nullptr ? &dumps : nullptr;
    sinks.spans = observe->spans;
  }
  for (std::size_t fi = 0; fi < config.faults.size(); ++fi) {
    const FaultCondition cond = FaultCondition::preset(config.faults[fi]);
    for (std::size_t si = 0; si < config.scenarios.size(); ++si) {
      const std::uint64_t cell_seed =
          util::derive_seed(util::derive_seed(config.base_seed, fi), si);
      const auto episodes = run_campaign_cell(
          config.scenarios[si], cond, config.episodes_per_cell, cell_seed,
          config.threads, trace_os, sinks);
      if (observe != nullptr) {
        if (observe->flight_os != nullptr) {
          obs::write_flight_dumps_jsonl(*observe->flight_os,
                                        dumps.take_sorted(),
                                        config.scenarios[si], cond.label);
        }
        if (observe->metrics != nullptr) {
          collect_fleet_telemetry(*observe->metrics, episodes);
        }
      }
      result.cells.push_back(
          aggregate_cell(cond.label, config.scenarios[si], episodes));
    }
  }
  return result;
}

void write_campaign_csv(std::ostream& os, const CampaignResult& result) {
  os << "fault,scenario,episodes,collisions,reached,steps,emergency_steps,"
        "ladder_full,ladder_reach_only,ladder_sensor_only,"
        "ladder_emergency_biased,ladder_transitions,messages_accepted,"
        "messages_rejected,min_eta,mean_eta\n";
  for (const CampaignCell& c : result.cells) {
    os << c.fault << ',' << c.scenario << ',' << c.episodes << ','
       << c.collisions << ',' << c.reached << ',' << c.steps << ','
       << c.emergency_steps;
    for (const std::size_t n : c.ladder_steps) os << ',' << n;
    os << ',' << c.ladder_transitions << ',' << c.messages_accepted << ','
       << c.messages_rejected << ',';
    emit_double(os, c.min_eta);
    os << ',';
    emit_double(os, c.mean_eta);
    os << '\n';
  }
}

std::string campaign_csv(const CampaignResult& result) {
  std::ostringstream os;
  write_campaign_csv(os, result);
  return os.str();
}

}  // namespace cvsafe::sim
