#include "cvsafe/sim/run_result.hpp"

namespace cvsafe::sim {

BatchStats BatchStats::from_results(std::span<const RunResult> results) {
  BatchStats stats;
  stats.n = results.size();
  stats.etas.reserve(results.size());
  double reach_time_sum = 0.0;
  double eta_sum = 0.0;
  for (const auto& r : results) {
    stats.etas.push_back(r.eta);
    eta_sum += r.eta;
    if (!r.collided) ++stats.safe_count;
    if (r.reached) {
      ++stats.reached_count;
      reach_time_sum += r.reach_time;
    }
    stats.total_steps += r.steps;
    stats.emergency_steps += r.emergency_steps;
  }
  if (stats.n > 0) {
    stats.mean_eta = eta_sum / static_cast<double>(stats.n);
  }
  stats.mean_reach_time =
      stats.reached_count > 0
          ? reach_time_sum / static_cast<double>(stats.reached_count)
          : 0.0;
  return stats;
}

void BatchStats::merge(const BatchStats& other) {
  if (other.n == 0) return;
  // Weighted means over episode counts.
  const double reached_a = static_cast<double>(reached_count);
  const double reached_b = static_cast<double>(other.reached_count);
  const double reach_sum =
      mean_reach_time * reached_a + other.mean_reach_time * reached_b;
  const double eta_sum = mean_eta * static_cast<double>(n) +
                         other.mean_eta * static_cast<double>(other.n);

  n += other.n;
  safe_count += other.safe_count;
  reached_count += other.reached_count;
  total_steps += other.total_steps;
  emergency_steps += other.emergency_steps;
  mean_eta = eta_sum / static_cast<double>(n);
  mean_reach_time = reached_count
                        ? reach_sum / static_cast<double>(reached_count)
                        : 0.0;
  etas.reserve(etas.size() + other.etas.size());
  etas.insert(etas.end(), other.etas.begin(), other.etas.end());
}

}  // namespace cvsafe::sim
