#include "cvsafe/sim/lane_change.hpp"

#include <utility>
#include <vector>

#include "cvsafe/filter/info_filter.hpp"
#include "cvsafe/sim/cruise_planner.hpp"

namespace cvsafe::sim {

using scenario::LaneChangeWorld;

std::shared_ptr<const scenario::LaneChangeScenario>
LaneChangeSimConfig::make_scenario() const {
  return std::make_shared<const scenario::LaneChangeScenario>(
      geometry, ego_limits, c1_limits, dt_c);
}

namespace {

class LaneChangeEpisode final : public Episode<LaneChangeWorld> {
 public:
  /// Workload draw order (fixed): leading-vehicle gap, initial speed,
  /// acceleration profile.
  LaneChangeEpisode(const LaneChangeSimConfig& config,
                    const LaneChangePlannerConfig& planner_cfg,
                    std::shared_ptr<const scenario::LaneChangeScenario> scn,
                    const LaneChangeAdapter::PlannerFactory& factory,
                    util::Rng& rng, std::size_t total_steps,
                    std::uint64_t seed)
      : scn_(std::move(scn)),
        c1_dyn_(config.c1_limits),
        c1_(make_leading(config, planner_cfg, rng, total_steps, seed)) {
    c1_filter_ = static_cast<filter::InformationFilter*>(
        c1_.estimators.front().get());
    std::shared_ptr<core::PlannerBase<LaneChangeWorld>> inner =
        factory ? factory(config)
                : std::make_shared<CruisePlanner<LaneChangeWorld>>(
                      planner_cfg.cruise_speed, config.ego_limits);
    if (planner_cfg.use_compound) {
      auto model = std::make_shared<scenario::LaneChangeSafetyModel>(scn_);
      auto compound =
          std::make_shared<core::CompoundPlanner<LaneChangeWorld>>(
              std::move(inner), std::move(model));
      compound_ = compound.get();
      planner_ = std::move(compound);
      if (config.ladder) compound_->enable_degradation(*config.ladder);
    } else {
      planner_ = std::move(inner);
    }
    ego_init_ =
        vehicle::VehicleState{config.geometry.ego_start, config.ego_v0};
  }

  void observe(LaneChangeWorld& world, double t, std::size_t step,
               util::Rng& rng) override {
    pump(c1_, t, step, rng);
    world.c1_monitor = c1_.estimators.front()->estimate(t);
    world.c1_nn = world.c1_monitor;
    if (compound_ != nullptr && compound_->has_ladder()) {
      compound_->note_signals(degradation_signals(*c1_filter_, t));
    }
  }

  void finalize(RunResult& result) const override {
    const filter::RejectionCounters& c = c1_filter_->rejections();
    result.messages_accepted += c.accepted;
    result.messages_rejected += c.total_rejected();
    result.rejection_reasons[0] += c.non_finite;
    result.rejection_reasons[1] += c.out_of_range;
    result.rejection_reasons[2] += c.stale;
    result.rejection_reasons[3] += c.implausible;
  }

  void attach_ring(obs::RingRecorder* ring) override {
    if (compound_ != nullptr) compound_->set_ring(ring);
    c1_filter_->set_ring(ring);
  }

  void advance_traffic(std::size_t step, double dt) override {
    c1_.state = c1_dyn_.step(c1_.state, c1_.profile.at(step), dt);
  }

  StepStatus check(const vehicle::VehicleState& ego) const override {
    StepStatus status;
    if (scn_->violation(ego.p, c1_.state.p)) {
      status.collided = true;
    } else if (scn_->reached_target(ego.p)) {
      status.reached = true;
    }
    return status;
  }

 private:
  static TrafficActor make_leading(const LaneChangeSimConfig& config,
                                   const LaneChangePlannerConfig& planner_cfg,
                                   util::Rng& rng, std::size_t total_steps,
                                   std::uint64_t seed) {
    const double p0 = config.geometry.merge_point +
                      rng.uniform(config.c1_gap_min, config.c1_gap_max);
    const double v0 = rng.uniform(config.c1_v_min, config.c1_v_max);
    vehicle::AccelProfile profile = vehicle::AccelProfile::random(
        total_steps, config.dt_c, v0, config.c1_limits, {}, rng);
    std::vector<std::unique_ptr<filter::Estimator>> estimators;
    estimators.push_back(std::make_unique<filter::InformationFilter>(
        config.c1_limits, config.sensor,
        planner_cfg.use_info_filter ? filter::InfoFilterOptions::ultimate()
                                    : filter::InfoFilterOptions::basic(),
        config.gate));
    return TrafficActor{1,
                        vehicle::VehicleState{p0, v0},
                        std::move(profile),
                        actor_channel(config, 1, seed),
                        actor_sensor(config, 1, seed),
                        std::move(estimators),
                        {}};
  }

  std::shared_ptr<const scenario::LaneChangeScenario> scn_;
  vehicle::DoubleIntegrator c1_dyn_;
  TrafficActor c1_;
  filter::InformationFilter* c1_filter_ = nullptr;
};

}  // namespace

LaneChangeAdapter::LaneChangeAdapter(LaneChangeSimConfig config,
                                     LaneChangePlannerConfig planner_cfg)
    : config_(std::move(config)),
      planner_cfg_(planner_cfg),
      scn_(config_.make_scenario()) {}

std::unique_ptr<Episode<LaneChangeWorld>> LaneChangeAdapter::make_episode(
    util::Rng& rng, std::size_t total_steps, std::uint64_t seed) const {
  return std::make_unique<LaneChangeEpisode>(config_, planner_cfg_, scn_,
                                             planner_factory_, rng,
                                             total_steps, seed);
}

RunResult run_lane_change_simulation(const LaneChangeSimConfig& config,
                                     const LaneChangePlannerConfig& planner,
                                     std::uint64_t seed) {
  LaneChangeAdapter adapter(config, planner);
  return run_episode(adapter, seed);
}

BatchStats run_lane_change_batch(const LaneChangeSimConfig& config,
                                 const LaneChangePlannerConfig& planner,
                                 std::size_t n, std::uint64_t base_seed,
                                 std::size_t threads, SeedPolicy policy) {
  LaneChangeAdapter adapter(config, planner);
  const auto results = run_episodes(adapter, n, base_seed, threads, policy);
  return BatchStats::from_results(results);
}

}  // namespace cvsafe::sim
