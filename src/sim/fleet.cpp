#include "cvsafe/sim/fleet.hpp"

#include <string>

#include "cvsafe/obs/event.hpp"
#include "cvsafe/sim/obs_summary.hpp"

namespace cvsafe::sim {

const char* SweepSpans::kind_name(std::size_t kind) {
  switch (kind) {
    case kPump:
      return "pump";
    case kDeliver:
      return "deliver";
    case kEstimate:
      return "estimate";
    case kReachGate:
      return "reach_gate";
    case kPlan:
      return "plan";
    case kAdvance:
      return "advance";
    default:
      return "unknown";
  }
}

RunResult record_to_result(const FleetRecord& record) {
  RunResult result;
  result.collided = record.collided;
  result.reached = record.reached;
  result.reach_time = record.reach_time;
  result.eta = record.eta;
  result.steps = record.steps;
  result.emergency_steps = record.emergency_steps;
  result.ladder_steps = record.ladder_steps;
  result.ladder_transitions = record.ladder_transitions;
  result.messages_accepted = record.messages_accepted;
  result.messages_rejected = record.messages_rejected;
  result.rejection_reasons = record.rejection_reasons;
  return result;
}

FleetRecord record_from_result(const RunResult& result) {
  FleetRecord record;
  record.eta = result.eta;
  record.reach_time = result.reach_time;
  record.steps = result.steps;
  record.emergency_steps = result.emergency_steps;
  record.ladder_steps = result.ladder_steps;
  record.ladder_transitions = result.ladder_transitions;
  record.messages_accepted = result.messages_accepted;
  record.messages_rejected = result.messages_rejected;
  record.rejection_reasons = result.rejection_reasons;
  record.collided = result.collided;
  record.reached = result.reached;
  return record;
}

BatchStats stats_from_records(std::span<const FleetRecord> records) {
  // Mirrors BatchStats::from_results accumulation term for term (same
  // order, same arithmetic) so the fleet aggregate is bit-identical to
  // from_results over the seed-ordered RunResults.
  BatchStats stats;
  stats.n = records.size();
  stats.etas.reserve(records.size());
  double reach_time_sum = 0.0;
  double eta_sum = 0.0;
  for (const FleetRecord& r : records) {
    stats.etas.push_back(r.eta);
    eta_sum += r.eta;
    if (!r.collided) ++stats.safe_count;
    if (r.reached) {
      ++stats.reached_count;
      reach_time_sum += r.reach_time;
    }
    stats.total_steps += r.steps;
    stats.emergency_steps += r.emergency_steps;
  }
  if (stats.n > 0) {
    stats.mean_eta = eta_sum / static_cast<double>(stats.n);
  }
  stats.mean_reach_time =
      stats.reached_count > 0
          ? reach_time_sum / static_cast<double>(stats.reached_count)
          : 0.0;
  return stats;
}

void collect_record_metrics(obs::MetricsRegistry& registry,
                            std::span<const FleetRecord> records) {
  for (const FleetRecord& r : records) {
    const RunResult result = record_to_result(r);
    collect_run_metrics(registry, result);
  }
}

void collect_fleet_telemetry(obs::MetricsRegistry& registry,
                             std::span<const FleetRecord> records) {
  // Bucket layouts are fixed at the fold (never data-dependent) so two
  // runs of the same cell produce byte-identical exports.
  obs::Histogram& eta = registry.histogram(
      "cvsafe_fleet_eta",
      {-1.0, -0.5, -0.1, 0.0, 0.05, 0.1, 0.25, 0.5, 0.75, 1.0});
  obs::Histogram& residency = registry.histogram(
      "cvsafe_fleet_episode_steps",
      {32.0, 64.0, 128.0, 256.0, 512.0, 1024.0, 2048.0, 4096.0});
  for (const FleetRecord& r : records) {
    eta.observe(r.eta);
    residency.observe(static_cast<double>(r.steps));
    registry.counter("cvsafe_fleet_episodes_total").inc();
    registry.counter("cvsafe_fleet_messages_accepted_total")
        .inc(r.messages_accepted);
    for (std::size_t reason = 0; reason < r.rejection_reasons.size();
         ++reason) {
      if (r.rejection_reasons[reason] == 0) continue;
      registry
          .counter(std::string("cvsafe_fleet_rejections_total{reason=\"") +
                   obs::to_string(
                       static_cast<obs::GateRejectReason>(reason)) +
                   "\"}")
          .inc(r.rejection_reasons[reason]);
    }
    for (std::size_t level = 0; level < r.ladder_steps.size(); ++level) {
      if (r.ladder_steps[level] == 0) continue;
      registry
          .counter(std::string("cvsafe_fleet_ladder_steps_total{level=\"") +
                   core::to_string(
                       static_cast<core::DegradationLevel>(level)) +
                   "\"}")
          .inc(r.ladder_steps[level]);
    }
  }
}

void collect_fleet_telemetry(obs::MetricsRegistry& registry,
                             std::span<const RunResult> results) {
  std::vector<FleetRecord> records;
  records.reserve(results.size());
  for (const RunResult& r : results) records.push_back(record_from_result(r));
  collect_fleet_telemetry(registry, records);
}

void collect_sweep_spans(obs::MetricsRegistry& registry,
                         const SweepSpans& spans) {
  for (std::size_t k = 0; k < SweepSpans::kNumKinds; ++k) {
    const SweepSpans::Span& span = spans.spans[k];
    const std::string label =
        std::string("{sweep=\"") + SweepSpans::kind_name(k) + "\"}";
    registry.counter("cvsafe_sweep_steps_total" + label).inc(span.count);
    registry.counter("cvsafe_sweep_ns_total" + label).inc(span.ns);
  }
}

}  // namespace cvsafe::sim
