#include "cvsafe/sim/fleet.hpp"

#include "cvsafe/sim/obs_summary.hpp"

namespace cvsafe::sim {

RunResult record_to_result(const FleetRecord& record) {
  RunResult result;
  result.collided = record.collided;
  result.reached = record.reached;
  result.reach_time = record.reach_time;
  result.eta = record.eta;
  result.steps = record.steps;
  result.emergency_steps = record.emergency_steps;
  result.ladder_steps = record.ladder_steps;
  result.ladder_transitions = record.ladder_transitions;
  result.messages_accepted = record.messages_accepted;
  result.messages_rejected = record.messages_rejected;
  return result;
}

FleetRecord record_from_result(const RunResult& result) {
  FleetRecord record;
  record.eta = result.eta;
  record.reach_time = result.reach_time;
  record.steps = result.steps;
  record.emergency_steps = result.emergency_steps;
  record.ladder_steps = result.ladder_steps;
  record.ladder_transitions = result.ladder_transitions;
  record.messages_accepted = result.messages_accepted;
  record.messages_rejected = result.messages_rejected;
  record.collided = result.collided;
  record.reached = result.reached;
  return record;
}

BatchStats stats_from_records(std::span<const FleetRecord> records) {
  // Mirrors BatchStats::from_results accumulation term for term (same
  // order, same arithmetic) so the fleet aggregate is bit-identical to
  // from_results over the seed-ordered RunResults.
  BatchStats stats;
  stats.n = records.size();
  stats.etas.reserve(records.size());
  double reach_time_sum = 0.0;
  double eta_sum = 0.0;
  for (const FleetRecord& r : records) {
    stats.etas.push_back(r.eta);
    eta_sum += r.eta;
    if (!r.collided) ++stats.safe_count;
    if (r.reached) {
      ++stats.reached_count;
      reach_time_sum += r.reach_time;
    }
    stats.total_steps += r.steps;
    stats.emergency_steps += r.emergency_steps;
  }
  if (stats.n > 0) {
    stats.mean_eta = eta_sum / static_cast<double>(stats.n);
  }
  stats.mean_reach_time =
      stats.reached_count > 0
          ? reach_time_sum / static_cast<double>(stats.reached_count)
          : 0.0;
  return stats;
}

void collect_record_metrics(obs::MetricsRegistry& registry,
                            std::span<const FleetRecord> records) {
  for (const FleetRecord& r : records) {
    const RunResult result = record_to_result(r);
    collect_run_metrics(registry, result);
  }
}

}  // namespace cvsafe::sim
