#include "cvsafe/sim/left_turn_stack.hpp"

#include <cassert>

#include "cvsafe/sim/engine.hpp"

namespace cvsafe::sim {

AgentConfig AgentConfig::pure_nn() {
  AgentConfig c;
  c.use_compound = false;
  c.use_info_filter = false;
  c.use_aggressive = false;
  return c;
}

AgentConfig AgentConfig::basic_compound() {
  AgentConfig c;
  c.use_compound = true;
  c.use_info_filter = false;
  c.use_aggressive = false;
  return c;
}

AgentConfig AgentConfig::ultimate_compound() {
  AgentConfig c;
  c.use_compound = true;
  c.use_info_filter = true;
  c.use_aggressive = true;
  return c;
}

void LeftTurnStack::setup(
    std::shared_ptr<core::PlannerBase<scenario::LeftTurnWorld>> inner,
    const sensing::SensorConfig& sensor) {
  assert(scenario_ != nullptr);
  const auto& c1_limits = scenario_->oncoming_limits();

  // Estimator feeding the embedded planner.
  if (config_.use_info_filter) {
    auto nn_filter = std::make_unique<filter::InformationFilter>(
        c1_limits, sensor, filter::InfoFilterOptions::ultimate(),
        config_.gate);
    nn_filter_ = nn_filter.get();
    nn_estimator_ = std::move(nn_filter);
  } else {
    nn_estimator_ = std::make_unique<filter::NaiveExtrapolator>(
        sensor.delta_p, sensor.delta_v);
  }

  // Estimator feeding the runtime monitor: ALWAYS sound set bounds
  // (reachability on messages and raw sensor readings). The paper joins
  // the Kalman confidence interval into the monitor's estimate as well;
  // we deliberately keep the monitor free of probabilistic intervals —
  // a 3-sigma band occasionally excludes the true state, and a monitor
  // built on it cannot support the safety guarantee (DESIGN.md).
  if (config_.use_compound) {
    auto monitor_filter = std::make_unique<filter::InformationFilter>(
        c1_limits, sensor, filter::InfoFilterOptions::basic(),
        config_.gate);
    monitor_filter_ = monitor_filter.get();
    monitor_estimator_ = std::move(monitor_filter);
  }

  if (config_.use_compound) {
    auto model = std::make_shared<scenario::LeftTurnSafetyModel>(
        scenario_, config_.buffers);
    auto compound =
        std::make_shared<core::CompoundPlanner<scenario::LeftTurnWorld>>(
            std::move(inner), std::move(model),
            core::CompoundOptions{config_.use_aggressive});
    compound_ = compound.get();
    planner_ = std::move(compound);
    if (config_.ladder) compound_->enable_degradation(*config_.ladder);
  } else {
    planner_ = std::move(inner);
  }
}

LeftTurnStack::LeftTurnStack(
    std::shared_ptr<const scenario::LeftTurnScenario> scenario,
    std::shared_ptr<const nn::Mlp> net, sensing::SensorConfig sensor,
    AgentConfig config)
    : scenario_(std::move(scenario)), config_(config) {
  std::shared_ptr<core::PlannerBase<scenario::LeftTurnWorld>> inner;
  if (config_.use_expert_planner) {
    inner = std::make_shared<planners::ExpertPlanner>(
        scenario_, config_.expert_params, "expert");
  } else {
    assert(net != nullptr && "NN stack requires a trained network");
    inner = std::make_shared<planners::NnPlanner>(
        std::move(net), planners::InputEncoding{}, "nn");
  }
  setup(std::move(inner), sensor);
}

LeftTurnStack::LeftTurnStack(
    std::shared_ptr<const scenario::LeftTurnScenario> scenario,
    std::vector<std::shared_ptr<const nn::Mlp>> ensemble,
    sensing::SensorConfig sensor, AgentConfig config)
    : scenario_(std::move(scenario)), config_(config) {
  assert(!ensemble.empty());
  auto inner = std::make_shared<planners::EnsemblePlanner>(
      std::move(ensemble), planners::InputEncoding{}, "ensemble",
      config_.ensemble_sigma_penalty);
  setup(std::move(inner), sensor);
}

void LeftTurnStack::bind_fleet(FleetStackContext& ctx) {
  for (filter::InformationFilter* f : {nn_filter_, monitor_filter_}) {
    if (f != nullptr) f->bind_fleet(ctx.estimator);
  }
  if (compound_ != nullptr && config_.ladder) {
    compound_->rebind_ladder_pooled(ctx.ladder);
  }
}

void LeftTurnStack::stage_sweeps(double t, filter::ReachSweep& reach) {
  for (filter::InformationFilter* f : {nn_filter_, monitor_filter_}) {
    if (f != nullptr) f->stage_sweeps(t, reach);
  }
}

void LeftTurnStack::observe_sensor(const sensing::SensorReading& reading) {
  nn_estimator_->on_sensor(reading);
  if (monitor_estimator_) monitor_estimator_->on_sensor(reading);
}

void LeftTurnStack::observe_message(const comm::Message& msg) {
  nn_estimator_->on_message(msg);
  if (monitor_estimator_) monitor_estimator_->on_message(msg);
}

void LeftTurnStack::build_world(scenario::LeftTurnWorld& world) {
  world.c1_nn = nn_estimator_->estimate(world.t);
  world.tau1_nn = scenario_->c1_window_conservative(world.c1_nn);
  if (monitor_estimator_) {
    world.c1_monitor = monitor_estimator_->estimate(world.t);
    world.tau1_monitor = scenario_->c1_window_conservative(world.c1_monitor);
  }
  if (compound_ != nullptr && compound_->has_ladder() &&
      monitor_filter_ != nullptr) {
    compound_->note_signals(degradation_signals(*monitor_filter_, world.t));
  }
  last_world_ = world;
}

double LeftTurnStack::act(double t, const vehicle::VehicleState& ego) {
  scenario::LeftTurnWorld world;
  world.t = t;
  world.ego = ego;
  build_world(world);
  return planner_->plan(world);
}

bool LeftTurnStack::last_was_emergency() const {
  return compound_ != nullptr && compound_->last_was_emergency();
}

core::MonitorStats LeftTurnStack::monitor_stats() const {
  return compound_ != nullptr ? compound_->stats() : core::MonitorStats{};
}

std::vector<core::SwitchEvent> LeftTurnStack::switch_events() const {
  return compound_ != nullptr ? compound_->switch_events()
                              : std::vector<core::SwitchEvent>{};
}

void LeftTurnStack::attach_recorder(obs::Recorder* recorder) {
  if (compound_ != nullptr) compound_->set_recorder(recorder);
  for (filter::InformationFilter* f : {nn_filter_, monitor_filter_}) {
    if (f != nullptr) f->set_recorder(recorder);
  }
}

void LeftTurnStack::attach_ring(obs::RingRecorder* ring) {
  if (compound_ != nullptr) compound_->set_ring(ring);
  for (filter::InformationFilter* f : {nn_filter_, monitor_filter_}) {
    if (f != nullptr) f->set_ring(ring);
  }
}

std::array<std::size_t, 4> LeftTurnStack::message_reasons() const {
  std::array<std::size_t, 4> reasons{};
  for (const filter::InformationFilter* f : {nn_filter_, monitor_filter_}) {
    if (f == nullptr) continue;
    const filter::RejectionCounters& c = f->rejections();
    reasons[0] += c.non_finite;
    reasons[1] += c.out_of_range;
    reasons[2] += c.stale;
    reasons[3] += c.implausible;
  }
  return reasons;
}

std::pair<std::size_t, std::size_t> LeftTurnStack::message_tally() const {
  std::size_t accepted = 0;
  std::size_t rejected = 0;
  for (const filter::InformationFilter* f : {nn_filter_, monitor_filter_}) {
    if (f == nullptr) continue;
    accepted += f->rejections().accepted;
    rejected += f->rejections().total_rejected();
  }
  return {accepted, rejected};
}

}  // namespace cvsafe::sim
