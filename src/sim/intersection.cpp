#include "cvsafe/sim/intersection.hpp"

#include <algorithm>
#include <utility>
#include <vector>

#include "cvsafe/filter/info_filter.hpp"
#include "cvsafe/sim/cruise_planner.hpp"
#include "cvsafe/util/kinematics.hpp"

namespace cvsafe::sim {

using scenario::IntersectionWorld;

std::shared_ptr<const scenario::IntersectionScenario>
IntersectionSimConfig::make_scenario() const {
  return std::make_shared<const scenario::IntersectionScenario>(
      geometry, ego_limits, dt_c);
}

namespace {

/// Conservative occupancy window of one cross vehicle for the zone
/// [front, back] in its own path coordinate — the same Eq. 7 structure as
/// the left-turn case study, from sound set bounds.
util::Interval conservative_window(const filter::StateEstimate& est,
                                   double front, double back,
                                   const vehicle::VehicleLimits& lim) {
  if (!est.valid) return util::Interval{est.t, 1e18};
  if (est.p.lo >= back) return util::Interval::empty_interval();
  const double t = est.t;
  double entry;
  if (est.p.hi >= front) {
    entry = t;
  } else {
    entry = t + util::time_to_travel(front - est.p.hi, est.v.hi, lim.a_max,
                                     lim.v_max);
  }
  const double exit = t + util::time_to_travel(back - est.p.lo, est.v.lo,
                                               lim.a_min,
                                               std::max(lim.v_min, 0.1));
  if (exit < entry) return util::Interval::empty_interval();
  return util::Interval{entry, exit};
}

class IntersectionEpisode final : public Episode<IntersectionWorld> {
 public:
  /// Workload draw order (fixed), per lane A then lane B: lead gap, then
  /// per vehicle its initial speed, acceleration profile and trailing
  /// headway.
  IntersectionEpisode(
      const IntersectionSimConfig& config,
      std::shared_ptr<const scenario::IntersectionScenario> scn,
      bool use_compound, util::Rng& rng, std::size_t total_steps,
      std::uint64_t seed)
      : config_(&config),
        scn_(std::move(scn)),
        cross_dyn_(config.cross_limits) {
    // Actor ids stay unique across lanes so each actor gets its own
    // fault stream (actor_channel / actor_sensor derive by id).
    lane_a_ = make_stream(config, rng, total_steps, seed, 1);
    lane_b_ = make_stream(config, rng, total_steps, seed,
                          1 + static_cast<std::uint32_t>(
                                  config.vehicles_per_lane));
    for (const auto* lane : {&lane_a_, &lane_b_}) {
      for (const auto& car : *lane) {
        filters_.push_back(static_cast<filter::InformationFilter*>(
            car.estimators.front().get()));
      }
    }

    auto cruise = std::make_shared<CruisePlanner<IntersectionWorld>>(
        11.0, config.ego_limits);
    if (use_compound) {
      auto model =
          std::make_shared<scenario::IntersectionSafetyModel>(scn_);
      auto compound =
          std::make_shared<core::CompoundPlanner<IntersectionWorld>>(
              std::move(cruise), std::move(model));
      compound_ = compound.get();
      planner_ = std::move(compound);
      if (config.ladder) compound_->enable_degradation(*config.ladder);
    } else {
      planner_ = std::move(cruise);
    }
    ego_init_ =
        vehicle::VehicleState{config.geometry.ego_start, config.ego_v0};
  }

  void observe(IntersectionWorld& world, double t, std::size_t step,
               util::Rng& rng) override {
    update_stream(lane_a_, t, step, rng, world.tau_a);
    update_stream(lane_b_, t, step, rng, world.tau_b);
    if (compound_ != nullptr && compound_->has_ladder()) {
      SignalAccumulator acc;
      for (const auto* f : filters_) acc.add(degradation_signals(*f, t));
      compound_->note_signals(acc.worst);
    }
  }

  void finalize(RunResult& result) const override {
    for (const auto* f : filters_) {
      const filter::RejectionCounters& c = f->rejections();
      result.messages_accepted += c.accepted;
      result.messages_rejected += c.total_rejected();
      result.rejection_reasons[0] += c.non_finite;
      result.rejection_reasons[1] += c.out_of_range;
      result.rejection_reasons[2] += c.stale;
      result.rejection_reasons[3] += c.implausible;
    }
  }

  void attach_ring(obs::RingRecorder* ring) override {
    if (compound_ != nullptr) compound_->set_ring(ring);
    for (auto* f : filters_) f->set_ring(ring);
  }

  void advance_traffic(std::size_t step, double dt) override {
    for (auto& car : lane_a_) {
      car.state = cross_dyn_.step(car.state, car.profile.at(step), dt);
    }
    for (auto& car : lane_b_) {
      car.state = cross_dyn_.step(car.state, car.profile.at(step), dt);
    }
  }

  StepStatus check(const vehicle::VehicleState& ego) const override {
    StepStatus status;
    if ((scn_->in_zone_a(ego.p) && stream_occupies(lane_a_)) ||
        (scn_->in_zone_b(ego.p) && stream_occupies(lane_b_))) {
      status.collided = true;
    } else if (ego.p >= config_->geometry.ego_target) {
      status.reached = true;
    }
    return status;
  }

 private:
  static std::vector<TrafficActor> make_stream(
      const IntersectionSimConfig& config, util::Rng& rng,
      std::size_t total_steps, std::uint64_t seed,
      std::uint32_t id_base) {
    std::vector<TrafficActor> stream;
    stream.reserve(config.vehicles_per_lane);
    double p = config.cross_zone_front -
               rng.uniform(config.lead_gap_min, config.lead_gap_max);
    for (std::size_t i = 0; i < config.vehicles_per_lane; ++i) {
      const auto id = id_base + static_cast<std::uint32_t>(i);
      const double v0 = rng.uniform(config.v_init_min, config.v_init_max);
      vehicle::AccelProfile profile = vehicle::AccelProfile::random(
          total_steps, config.dt_c, v0, config.cross_limits, {}, rng);
      std::vector<std::unique_ptr<filter::Estimator>> estimators;
      estimators.push_back(std::make_unique<filter::InformationFilter>(
          config.cross_limits, config.sensor,
          filter::InfoFilterOptions::basic(), config.gate));
      stream.push_back(TrafficActor{id,
                                    vehicle::VehicleState{p, v0},
                                    std::move(profile),
                                    actor_channel(config, id, seed),
                                    actor_sensor(config, id, seed),
                                    std::move(estimators),
                                    {}});
      p -= rng.uniform(config.headway_min, config.headway_max);
    }
    return stream;
  }

  void update_stream(std::vector<TrafficActor>& stream, double t,
                     std::size_t step, util::Rng& rng,
                     util::IntervalSet& tau) {
    for (auto& car : stream) {
      pump(car, t, step, rng);
      tau.insert(conservative_window(
          car.estimators.front()->estimate(t), config_->cross_zone_front,
          config_->cross_zone_back, config_->cross_limits));
    }
  }

  bool stream_occupies(const std::vector<TrafficActor>& stream) const {
    for (const auto& car : stream) {
      if (car.state.p > config_->cross_zone_front &&
          car.state.p < config_->cross_zone_back) {
        return true;
      }
    }
    return false;
  }

  const IntersectionSimConfig* config_;
  std::shared_ptr<const scenario::IntersectionScenario> scn_;
  vehicle::DoubleIntegrator cross_dyn_;
  std::vector<TrafficActor> lane_a_;
  std::vector<TrafficActor> lane_b_;
  /// Typed views of every actor's estimator (signals, gate tallies).
  std::vector<filter::InformationFilter*> filters_;
};

}  // namespace

IntersectionAdapter::IntersectionAdapter(IntersectionSimConfig config,
                                         bool use_compound)
    : config_(std::move(config)),
      use_compound_(use_compound),
      scn_(config_.make_scenario()) {}

std::unique_ptr<Episode<IntersectionWorld>>
IntersectionAdapter::make_episode(util::Rng& rng, std::size_t total_steps,
                                  std::uint64_t seed) const {
  return std::make_unique<IntersectionEpisode>(config_, scn_, use_compound_,
                                               rng, total_steps, seed);
}

RunResult run_intersection_simulation(const IntersectionSimConfig& config,
                                      bool use_compound,
                                      std::uint64_t seed) {
  IntersectionAdapter adapter(config, use_compound);
  return run_episode(adapter, seed);
}

BatchStats run_intersection_batch(const IntersectionSimConfig& config,
                                  bool use_compound, std::size_t n,
                                  std::uint64_t base_seed,
                                  std::size_t threads, SeedPolicy policy) {
  IntersectionAdapter adapter(config, use_compound);
  const auto results = run_episodes(adapter, n, base_seed, threads, policy);
  return BatchStats::from_results(results);
}

}  // namespace cvsafe::sim
