#include "cvsafe/sim/left_turn.hpp"

#include <algorithm>
#include <cassert>
#include <thread>

#include "cvsafe/util/contracts.hpp"

namespace cvsafe::sim {

std::vector<double> WorkloadParams::paper_p1_grid() {
  std::vector<double> grid;
  grid.reserve(20);
  for (int j = 0; j < 20; ++j) grid.push_back(50.5 + 0.5 * j);
  return grid;
}

LeftTurnSimConfig LeftTurnSimConfig::paper_defaults() {
  LeftTurnSimConfig c;
  c.workload.p1_grid = WorkloadParams::paper_p1_grid();
  return c;
}

std::shared_ptr<const scenario::LeftTurnScenario>
LeftTurnSimConfig::make_scenario() const {
  return std::make_shared<const scenario::LeftTurnScenario>(
      geometry, ego_limits, c1_limits, dt_c);
}

std::unique_ptr<LeftTurnStack> AgentBlueprint::make() const {
  if (!ensemble.empty()) {
    return std::make_unique<LeftTurnStack>(scenario, ensemble, sensor,
                                           config);
  }
  return std::make_unique<LeftTurnStack>(scenario, net, sensor, config);
}

namespace {

/// Draws the oncoming vehicle's workload (grid position, initial speed,
/// acceleration profile — in that order) and assembles the actor.
TrafficActor make_oncoming(const LeftTurnSimConfig& config, util::Rng& rng,
                           std::size_t total_steps, std::uint64_t seed) {
  const auto& wl = config.workload;
  assert(!wl.p1_grid.empty());
  const auto grid_idx = static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(wl.p1_grid.size()) - 1));
  const double u1_start =
      scenario::LeftTurnGeometry::oncoming_to_frame(wl.p1_grid[grid_idx]);
  const double v1_start = rng.uniform(wl.v1_init_min, wl.v1_init_max);
  vehicle::AccelProfile profile = vehicle::AccelProfile::random(
      total_steps, config.dt_c, v1_start, config.c1_limits, wl.profile, rng);
  return TrafficActor{1,
                      vehicle::VehicleState{u1_start, v1_start},
                      std::move(profile),
                      actor_channel(config, 1, seed),
                      actor_sensor(config, 1, seed),
                      {},
                      {}};
}

}  // namespace

LeftTurnEpisode::LeftTurnEpisode(const LeftTurnSimConfig& config,
                                 const AgentBlueprint& blueprint,
                                 util::Rng& rng, std::size_t total_steps,
                                 std::uint64_t seed)
    : scn_(blueprint.scenario.get()),
      c1_dyn_(config.c1_limits),
      c1_(make_oncoming(config, rng, total_steps, seed)),
      stack_(blueprint.make()) {
  assert(scn_ != nullptr);
  planner_ = stack_->planner_ptr();
  compound_ = stack_->compound();
  ego_init_ = vehicle::VehicleState{config.geometry.ego_start, config.ego_v0};
}

void LeftTurnEpisode::observe(scenario::LeftTurnWorld& world, double t,
                              std::size_t step, util::Rng& rng) {
  c1_snapshot_ = broadcast_and_observe(
      c1_, t, step, rng,
      [&](const comm::Message& msg) { stack_->observe_message(msg); },
      [&](const sensing::SensorReading& reading) {
        stack_->observe_sensor(reading);
      });
  stack_->build_world(world);
}

bool LeftTurnEpisode::bind_fleet(FleetStackContext& ctx) {
  stack_->bind_fleet(ctx);
  return true;
}

void LeftTurnEpisode::sweep_pump(double t, std::size_t step, util::Rng& rng,
                                 comm::MessageSlab& slab) {
  // The front half of broadcast_and_observe: snapshot + channel offer
  // (same episode-RNG draw) and the slab drain (same selection/order as
  // collect_into).
  const double accel = c1_.profile.at(step);
  c1_snapshot_ = vehicle::VehicleSnapshot{t, c1_.state, accel};
  c1_.channel.offer(comm::Message{c1_.id, c1_snapshot_}, rng);
  c1_.channel.collect_into_slab(t, slab);
}

void LeftTurnEpisode::sweep_deliver(const comm::MessageSlab& slab,
                                    std::size_t first, std::size_t last) {
  for (std::size_t i = first; i < last; ++i) {
    stack_->observe_message(slab.message(i));
  }
}

void LeftTurnEpisode::sweep_sense(double t, std::size_t step,
                                  util::Rng& rng) {
  (void)t;
  (void)step;
  if (const auto reading = c1_.sensor.sense(c1_snapshot_, rng)) {
    stack_->observe_sensor(*reading);
  }
}

void LeftTurnEpisode::sweep_stage(double t, filter::ReachSweep& reach) {
  stack_->stage_sweeps(t, reach);
}

void LeftTurnEpisode::sweep_build(scenario::LeftTurnWorld& world) {
  stack_->build_world(world);
}

void LeftTurnEpisode::advance_traffic(std::size_t step, double dt) {
  c1_.state = c1_dyn_.step(c1_.state, c1_.profile.at(step), dt);
}

StepStatus LeftTurnEpisode::check(const vehicle::VehicleState& ego) const {
  StepStatus status;
  if (scn_->collision(ego.p, c1_.state.p)) {
    status.collided = true;
  } else if (scn_->ego_reached_target(ego.p)) {
    status.reached = true;
  }
  return status;
}

void LeftTurnEpisode::finalize(RunResult& result) const {
  if (stack_->compound() != nullptr) {
    result.set_extra(stack_->monitor_stats());
  }
  const auto [accepted, rejected] = stack_->message_tally();
  result.messages_accepted += accepted;
  result.messages_rejected += rejected;
  const std::array<std::size_t, 4> reasons = stack_->message_reasons();
  for (std::size_t i = 0; i < reasons.size(); ++i) {
    result.rejection_reasons[i] += reasons[i];
  }
}

void LeftTurnEpisode::attach_recorder(obs::Recorder* recorder) {
  stack_->attach_recorder(recorder);
  c1_.channel.set_recorder(recorder);
  c1_.sensor.set_recorder(recorder);
}

void LeftTurnEpisode::attach_ring(obs::RingRecorder* ring) {
  stack_->attach_ring(ring);
}

std::unique_ptr<Episode<scenario::LeftTurnWorld>>
LeftTurnAdapter::make_episode(util::Rng& rng, std::size_t total_steps,
                              std::uint64_t seed) const {
  return std::make_unique<LeftTurnEpisode>(config_, blueprint_, rng,
                                           total_steps, seed);
}

namespace {

/// Streams the per-step figure recording into a SimTrace.
class TraceHook final : public StepHook<scenario::LeftTurnWorld> {
 public:
  explicit TraceHook(SimTrace* trace) : trace_(trace) {}

  void on_step(std::size_t step, double t,
               const scenario::LeftTurnWorld& world,
               const vehicle::VehicleState& ego, double a0, bool emergency,
               const Episode<scenario::LeftTurnWorld>& episode) override {
    (void)step;
    const auto& ep = static_cast<const LeftTurnEpisode&>(episode);
    trace_->ego.push(vehicle::VehicleSnapshot{t, ego, a0});
    trace_->c1.push(ep.c1_snapshot());
    trace_->accel_commands.push_back(a0);
    trace_->emergency_flags.push_back(emergency);
    trace_->tau1_lo.push_back(world.tau1_nn.empty() ? -1.0
                                                    : world.tau1_nn.lo);
    trace_->tau1_hi.push_back(world.tau1_nn.empty() ? -1.0
                                                    : world.tau1_nn.hi);
  }

  void on_finish(
      const Episode<scenario::LeftTurnWorld>& episode) override {
    const auto& ep = static_cast<const LeftTurnEpisode&>(episode);
    trace_->switches = ep.stack().switch_events();
  }

 private:
  SimTrace* trace_;
};

}  // namespace

RunResult run_left_turn_simulation(const LeftTurnSimConfig& config,
                                   const AgentBlueprint& blueprint,
                                   std::uint64_t seed, SimTrace* trace) {
  LeftTurnAdapter adapter(config, blueprint);
  if (trace == nullptr) return run_episode(adapter, seed);
  TraceHook hook(trace);
  return run_episode<scenario::LeftTurnWorld>(adapter, seed, &hook);
}

namespace {

/// Advances a contiguous shard of episodes step-synchronously, feeding
/// every non-emergency step of the shard through one plan_batch call.
void run_lockstep_shard(const LeftTurnAdapter& adapter,
                        const AgentBlueprint& blueprint, std::size_t first,
                        std::size_t count, std::uint64_t base_seed,
                        SeedPolicy policy, std::span<RunResult> results) {
  using Runner = EpisodeRunner<scenario::LeftTurnWorld>;
  std::vector<Runner> runners;
  runners.reserve(count);
  for (std::size_t k = 0; k < count; ++k) {
    runners.emplace_back(adapter,
                         episode_seed(base_seed, first + k, policy));
  }

  // One shared batch evaluator; kappa_n is stateless given the world, so
  // sharing it across the shard's episodes is exact.
  planners::NnPlanner batch_planner(blueprint.net, planners::InputEncoding{},
                                    "nn");
  std::vector<scenario::LeftTurnWorld> worlds;
  std::vector<double> accels;
  std::vector<std::size_t> pending;

  for (;;) {
    worlds.clear();
    pending.clear();
    bool any_active = false;
    for (std::size_t k = 0; k < count; ++k) {
      Runner& runner = runners[k];
      if (runner.done()) continue;
      any_active = true;
      runner.observe();
      if (const auto emergency = runner.monitor_gate()) {
        runner.advance(*emergency);
      } else {
        pending.push_back(k);
        worlds.push_back(runner.nn_world());
      }
    }
    if (!any_active) break;
    if (!worlds.empty()) {
      accels.resize(worlds.size());
      batch_planner.plan_batch(worlds, accels);
      for (std::size_t j = 0; j < pending.size(); ++j) {
        runners[pending[j]].advance(accels[j]);
      }
    }
  }

  for (std::size_t k = 0; k < count; ++k) {
    results[first + k] = runners[k].finish();
  }
}

}  // namespace

BatchStats run_left_turn_batch(const LeftTurnSimConfig& config,
                               const AgentBlueprint& blueprint,
                               std::size_t n, std::uint64_t base_seed,
                               std::size_t threads, BatchMode mode,
                               SeedPolicy policy) {
  CVSAFE_EXPECTS(n > 0, "batch must contain at least one episode");
  const bool lockstep_eligible = !blueprint.config.use_expert_planner &&
                                 blueprint.ensemble.empty() &&
                                 blueprint.net != nullptr;
  CVSAFE_EXPECTS(mode != BatchMode::kLockstep || lockstep_eligible,
                 "lockstep batching requires a single-network NN blueprint");
  const bool lockstep =
      mode == BatchMode::kLockstep ||
      (mode == BatchMode::kAuto && lockstep_eligible);

  LeftTurnAdapter adapter(config, blueprint);
  std::vector<RunResult> results(n);
  if (!lockstep) {
    util::parallel_for(
        n,
        [&](std::size_t i) {
          results[i] =
              run_episode(adapter, episode_seed(base_seed, i, policy));
        },
        threads);
  } else {
    std::size_t workers =
        threads != 0 ? threads
                     : std::max<std::size_t>(
                           1, std::thread::hardware_concurrency());
    const std::size_t n_shards = std::min(workers, n);
    const std::size_t per_shard = (n + n_shards - 1) / n_shards;
    util::parallel_for(
        n_shards,
        [&](std::size_t shard) {
          const std::size_t first = shard * per_shard;
          if (first >= n) return;
          const std::size_t count = std::min(per_shard, n - first);
          run_lockstep_shard(adapter, blueprint, first, count, base_seed,
                             policy, results);
        },
        threads);
  }
  return BatchStats::from_results(results);
}

namespace {

/// Per-worker batch-planning seam for the fleet engine: each worker owns
/// one NnPlanner (its workspace is not thread-safe); kappa_n is stateless
/// given the world, so sharing one planner across a worker's episodes is
/// exact — the same factoring run_lockstep_shard uses.
FleetPlannerFactory<scenario::LeftTurnWorld> fleet_planner_factory(
    const AgentBlueprint& blueprint) {
  const bool lockstep_eligible = !blueprint.config.use_expert_planner &&
                                 blueprint.ensemble.empty() &&
                                 blueprint.net != nullptr;
  if (!lockstep_eligible) return {};
  std::shared_ptr<const nn::Mlp> net = blueprint.net;
  return [net]() -> FleetBatchPlanner<scenario::LeftTurnWorld> {
    auto planner = std::make_shared<planners::NnPlanner>(
        net, planners::InputEncoding{}, "nn");
    return [planner](std::span<const scenario::LeftTurnWorld> worlds,
                     std::span<double> out) {
      planner->plan_batch(worlds, out);
    };
  };
}

}  // namespace

FleetResult run_left_turn_fleet(const LeftTurnSimConfig& config,
                                const AgentBlueprint& blueprint,
                                std::size_t n, std::uint64_t base_seed,
                                const FleetConfig& fleet,
                                const FleetObsSinks& sinks) {
  LeftTurnAdapter adapter(config, blueprint);
  return run_fleet(adapter, n, base_seed, fleet,
                   fleet_planner_factory(blueprint), sinks);
}

std::vector<FleetRecord> run_left_turn_fleet_records(
    const LeftTurnSimConfig& config, const AgentBlueprint& blueprint,
    std::size_t n, std::uint64_t base_seed, const FleetConfig& fleet,
    const FleetObsSinks& sinks) {
  LeftTurnAdapter adapter(config, blueprint);
  return run_fleet_records(adapter, n, base_seed, fleet,
                           fleet_planner_factory(blueprint), sinks);
}

}  // namespace cvsafe::sim
