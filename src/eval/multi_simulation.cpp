#include "cvsafe/eval/multi_simulation.hpp"

#include <cassert>
#include <cmath>
#include <vector>

#include "cvsafe/core/compound_planner.hpp"
#include "cvsafe/planners/expert.hpp"
#include "cvsafe/planners/nn_planner.hpp"
#include "cvsafe/util/thread_pool.hpp"
#include "cvsafe/vehicle/dynamics.hpp"

namespace cvsafe::eval {

using scenario::LeftTurnMultiWorld;

MultiSimResult run_multi_left_turn_simulation(const SimConfig& config,
                                              const MultiVehicleConfig& multi,
                                              const MultiAgentSetup& setup,
                                              std::uint64_t seed) {
  assert(setup.scenario != nullptr);
  assert(multi.num_oncoming >= 1);
  const auto& scn = *setup.scenario;
  util::Rng rng(seed);

  // ---- Oncoming platoon workload ---------------------------------------
  const auto& wl = config.workload;
  assert(!wl.p1_grid.empty());
  const auto grid_idx = static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(wl.p1_grid.size()) - 1));
  const double lead_u =
      scenario::LeftTurnGeometry::oncoming_to_frame(wl.p1_grid[grid_idx]);

  const auto total_steps =
      static_cast<std::size_t>(std::ceil(config.horizon / config.dt_c));

  struct Oncoming {
    vehicle::VehicleState state;
    vehicle::AccelProfile profile;
    comm::Channel channel;
    sensing::Sensor sensor;
    std::unique_ptr<filter::Estimator> monitor_est;
    std::unique_ptr<filter::Estimator> nn_est;
  };
  std::vector<Oncoming> cars;
  cars.reserve(multi.num_oncoming);
  double u = lead_u;
  for (std::size_t i = 0; i < multi.num_oncoming; ++i) {
    const double v0 = rng.uniform(wl.v1_init_min, wl.v1_init_max);
    auto profile = vehicle::AccelProfile::random(
        total_steps, config.dt_c, v0, config.c1_limits, wl.profile, rng);
    auto monitor_est = std::make_unique<filter::InformationFilter>(
        config.c1_limits, config.sensor, filter::InfoFilterOptions::basic());
    std::unique_ptr<filter::Estimator> nn_est;
    if (setup.use_info_filter) {
      nn_est = std::make_unique<filter::InformationFilter>(
          config.c1_limits, config.sensor,
          filter::InfoFilterOptions::ultimate());
    } else {
      nn_est = std::make_unique<filter::NaiveExtrapolator>(
          config.sensor.delta_p, config.sensor.delta_v);
    }
    cars.push_back(Oncoming{vehicle::VehicleState{u, v0}, std::move(profile),
                            comm::Channel(config.comm),
                            sensing::Sensor(config.sensor),
                            std::move(monitor_est), std::move(nn_est)});
    u -= multi.platoon_spacing +
         rng.uniform(-multi.spacing_jitter, multi.spacing_jitter);
  }

  // ---- Ego control stack -------------------------------------------------
  auto math = std::make_shared<const scenario::MultiVehicleLeftTurn>(
      setup.scenario);
  std::shared_ptr<core::PlannerBase<scenario::LeftTurnWorld>> single;
  if (setup.net != nullptr) {
    single = std::make_shared<planners::NnPlanner>(
        setup.net, planners::InputEncoding{}, "nn");
  } else {
    single = std::make_shared<planners::ExpertPlanner>(
        setup.scenario, setup.expert_params, "expert");
  }
  auto adapted =
      std::make_shared<scenario::FirstConflictAdapter>(std::move(single));

  std::shared_ptr<core::PlannerBase<LeftTurnMultiWorld>> planner;
  core::CompoundPlanner<LeftTurnMultiWorld>* compound = nullptr;
  if (setup.use_compound) {
    auto model = std::make_shared<scenario::MultiVehicleSafetyModel>(
        math, setup.buffers);
    auto c = std::make_shared<core::CompoundPlanner<LeftTurnMultiWorld>>(
        adapted, std::move(model),
        core::CompoundOptions{setup.use_aggressive});
    compound = c.get();
    planner = std::move(c);
  } else {
    planner = adapted;
  }

  // ---- Closed loop ---------------------------------------------------------
  vehicle::DoubleIntegrator ego_dyn(config.ego_limits);
  vehicle::DoubleIntegrator c1_dyn(config.c1_limits);
  vehicle::VehicleState ego{config.geometry.ego_start, config.ego_v0};

  MultiSimResult result;
  for (std::size_t step = 0; step < total_steps; ++step) {
    const double t = static_cast<double>(step) * config.dt_c;

    LeftTurnMultiWorld world;
    world.t = t;
    world.ego = ego;
    world.oncoming_monitor.reserve(cars.size());
    world.oncoming_nn.reserve(cars.size());
    for (std::size_t i = 0; i < cars.size(); ++i) {
      auto& car = cars[i];
      const double a1 = car.profile.at(step);
      const vehicle::VehicleSnapshot snap{t, car.state, a1};
      car.channel.offer(
          comm::Message{static_cast<std::uint32_t>(i + 1), snap}, rng);
      for (const auto& msg : car.channel.collect(t)) {
        car.monitor_est->on_message(msg);
        car.nn_est->on_message(msg);
      }
      if (const auto reading = car.sensor.sense(snap, rng)) {
        car.monitor_est->on_sensor(*reading);
        car.nn_est->on_sensor(*reading);
      }
      world.oncoming_monitor.push_back(car.monitor_est->estimate(t));
      world.oncoming_nn.push_back(car.nn_est->estimate(t));
    }
    world.tau_monitor = math->conservative_windows(world.oncoming_monitor);
    world.tau_nn = setup.use_info_filter
                       ? math->conservative_windows(world.oncoming_nn)
                       : math->conservative_windows(world.oncoming_nn);

    const double a0 = planner->plan(world);
    ++result.steps;
    if (compound != nullptr && compound->last_was_emergency()) {
      ++result.emergency_steps;
    }

    ego = ego_dyn.step(ego, a0, config.dt_c);
    bool collided = false;
    for (std::size_t i = 0; i < cars.size(); ++i) {
      cars[i].state =
          c1_dyn.step(cars[i].state, cars[i].profile.at(step), config.dt_c);
      if (scn.collision(ego.p, cars[i].state.p)) collided = true;
    }
    if (collided) {
      result.collided = true;
      break;
    }
    if (scn.ego_reached_target(ego.p)) {
      result.reached = true;
      result.reach_time = t + config.dt_c;
      break;
    }
  }

  core::EpisodeOutcome outcome;
  outcome.entered_unsafe_set = result.collided;
  outcome.reached_target = result.reached;
  outcome.reach_time = result.reach_time;
  result.eta = core::eta(outcome);
  return result;
}

MultiBatchStats run_multi_batch(const SimConfig& config,
                                const MultiVehicleConfig& multi,
                                const MultiAgentSetup& setup, std::size_t n,
                                std::uint64_t base_seed,
                                std::size_t threads) {
  assert(n > 0);
  std::vector<MultiSimResult> results(n);
  util::parallel_for(
      n,
      [&](std::size_t i) {
        results[i] = run_multi_left_turn_simulation(config, multi, setup,
                                                    base_seed + i);
      },
      threads);

  MultiBatchStats stats;
  stats.n = n;
  double eta_sum = 0.0;
  double reach_sum = 0.0;
  for (const auto& r : results) {
    eta_sum += r.eta;
    if (!r.collided) ++stats.safe_count;
    if (r.reached) {
      ++stats.reached_count;
      reach_sum += r.reach_time;
    }
    stats.total_steps += r.steps;
    stats.emergency_steps += r.emergency_steps;
  }
  stats.mean_eta = eta_sum / static_cast<double>(n);
  stats.mean_reach_time =
      stats.reached_count
          ? reach_sum / static_cast<double>(stats.reached_count)
          : 0.0;
  return stats;
}

}  // namespace cvsafe::eval
