#include "cvsafe/eval/config_io.hpp"

#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

namespace cvsafe::eval {

SimConfig apply_config_file(SimConfig base, const util::ConfigFile& file) {
  static const std::set<std::string> kKnown{
      "geometry.ego_front", "geometry.ego_back", "geometry.ego_start",
      "geometry.ego_target", "ego.v_min", "ego.v_max", "ego.a_min",
      "ego.a_max", "ego.v0", "c1.v_min", "c1.v_max", "c1.a_min", "c1.a_max",
      "c1.v_init_min", "c1.v_init_max", "sim.dt_c", "sim.horizon",
      "comm.period", "comm.delay", "comm.drop_prob", "comm.lost",
      "comm.burst", "comm.burst_bad_fraction", "comm.burst_mean_len",
      "sensor.period", "sensor.delta", "sensor.delta_p", "sensor.delta_v",
      "sensor.delta_a",
  };
  for (const auto& [key, value] : file.entries()) {
    if (kKnown.count(key) == 0) {
      throw std::runtime_error("config: unknown key '" + key + "'");
    }
    (void)value;
  }

  auto& g = base.geometry;
  g.ego_front = file.get_double("geometry.ego_front", g.ego_front);
  g.ego_back = file.get_double("geometry.ego_back", g.ego_back);
  g.ego_start = file.get_double("geometry.ego_start", g.ego_start);
  g.ego_target = file.get_double("geometry.ego_target", g.ego_target);
  // The oncoming conflict zone mirrors the ego zone (u = -p frame).
  g.c1_front = -g.ego_back;
  g.c1_back = -g.ego_front;
  if (!g.valid()) throw std::runtime_error("config: invalid geometry");

  base.ego_limits.v_min = file.get_double("ego.v_min", base.ego_limits.v_min);
  base.ego_limits.v_max = file.get_double("ego.v_max", base.ego_limits.v_max);
  base.ego_limits.a_min = file.get_double("ego.a_min", base.ego_limits.a_min);
  base.ego_limits.a_max = file.get_double("ego.a_max", base.ego_limits.a_max);
  base.c1_limits.v_min = file.get_double("c1.v_min", base.c1_limits.v_min);
  base.c1_limits.v_max = file.get_double("c1.v_max", base.c1_limits.v_max);
  base.c1_limits.a_min = file.get_double("c1.a_min", base.c1_limits.a_min);
  base.c1_limits.a_max = file.get_double("c1.a_max", base.c1_limits.a_max);
  if (!base.ego_limits.valid() || !base.c1_limits.valid()) {
    throw std::runtime_error("config: invalid actuation limits");
  }

  base.ego_v0 = file.get_double("ego.v0", base.ego_v0);
  base.workload.v1_init_min =
      file.get_double("c1.v_init_min", base.workload.v1_init_min);
  base.workload.v1_init_max =
      file.get_double("c1.v_init_max", base.workload.v1_init_max);
  base.dt_c = file.get_double("sim.dt_c", base.dt_c);
  base.horizon = file.get_double("sim.horizon", base.horizon);
  if (base.dt_c <= 0.0 || base.horizon <= base.dt_c) {
    throw std::runtime_error("config: invalid timing");
  }

  const double period = file.get_double("comm.period", base.comm.period);
  if (file.get_bool("comm.lost", false)) {
    base.comm = comm::CommConfig::messages_lost(period);
  } else if (file.get_bool("comm.burst", false)) {
    base.comm = comm::CommConfig::bursty(
        file.get_double("comm.burst_bad_fraction", 0.3),
        file.get_double("comm.burst_mean_len", 8.0),
        file.get_double("comm.delay", 0.0), period);
  } else {
    base.comm = comm::CommConfig::delayed(
        file.get_double("comm.drop_prob", base.comm.drop_prob),
        file.get_double("comm.delay", base.comm.delay), period);
  }

  const double delta = file.get_double("sensor.delta", -1.0);
  if (delta >= 0.0) {
    base.sensor = sensing::SensorConfig::uniform(
        delta, file.get_double("sensor.period", base.sensor.period));
  } else {
    base.sensor.period = file.get_double("sensor.period", base.sensor.period);
    base.sensor.delta_p = file.get_double("sensor.delta_p",
                                          base.sensor.delta_p);
    base.sensor.delta_v = file.get_double("sensor.delta_v",
                                          base.sensor.delta_v);
    base.sensor.delta_a = file.get_double("sensor.delta_a",
                                          base.sensor.delta_a);
  }
  return base;
}

SimConfig load_sim_config(const std::string& path) {
  return apply_config_file(SimConfig::paper_defaults(),
                           util::ConfigFile::load(path));
}

std::string sim_config_to_ini(const SimConfig& config) {
  std::ostringstream os;
  os.precision(17);
  const auto& g = config.geometry;
  os << "# cvsafe simulation configuration\n"
     << "[geometry]\n"
     << "ego_front = " << g.ego_front << "\n"
     << "ego_back = " << g.ego_back << "\n"
     << "ego_start = " << g.ego_start << "\n"
     << "ego_target = " << g.ego_target << "\n"
     << "[ego]\n"
     << "v_min = " << config.ego_limits.v_min << "\n"
     << "v_max = " << config.ego_limits.v_max << "\n"
     << "a_min = " << config.ego_limits.a_min << "\n"
     << "a_max = " << config.ego_limits.a_max << "\n"
     << "v0 = " << config.ego_v0 << "\n"
     << "[c1]\n"
     << "v_min = " << config.c1_limits.v_min << "\n"
     << "v_max = " << config.c1_limits.v_max << "\n"
     << "a_min = " << config.c1_limits.a_min << "\n"
     << "a_max = " << config.c1_limits.a_max << "\n"
     << "v_init_min = " << config.workload.v1_init_min << "\n"
     << "v_init_max = " << config.workload.v1_init_max << "\n"
     << "[sim]\n"
     << "dt_c = " << config.dt_c << "\n"
     << "horizon = " << config.horizon << "\n"
     << "[comm]\n"
     << "period = " << config.comm.period << "\n";
  if (config.comm.lost) {
    os << "lost = true\n";
  } else if (config.comm.burst) {
    const double denom = config.comm.p_good_to_bad + config.comm.p_bad_to_good;
    os << "burst = true\n"
       << "burst_bad_fraction = "
       << (denom > 0.0 ? config.comm.p_good_to_bad / denom : 0.0) << "\n"
       << "burst_mean_len = " << 1.0 / config.comm.p_bad_to_good << "\n"
       << "delay = " << config.comm.delay << "\n";
  } else {
    os << "drop_prob = " << config.comm.drop_prob << "\n"
       << "delay = " << config.comm.delay << "\n";
  }
  os << "[sensor]\n"
     << "period = " << config.sensor.period << "\n"
     << "delta_p = " << config.sensor.delta_p << "\n"
     << "delta_v = " << config.sensor.delta_v << "\n"
     << "delta_a = " << config.sensor.delta_a << "\n";
  return os.str();
}

bool save_sim_config(const SimConfig& config, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  out << sim_config_to_ini(config);
  return static_cast<bool>(out);
}

}  // namespace cvsafe::eval
