#include "cvsafe/eval/lane_change_sim.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <memory>
#include <vector>

#include "cvsafe/core/compound_planner.hpp"
#include "cvsafe/core/evaluation.hpp"
#include "cvsafe/filter/info_filter.hpp"
#include "cvsafe/util/thread_pool.hpp"
#include "cvsafe/vehicle/dynamics.hpp"

namespace cvsafe::eval {

using scenario::LaneChangeWorld;

std::shared_ptr<const scenario::LaneChangeScenario>
LaneChangeSimConfig::make_scenario() const {
  return std::make_shared<const scenario::LaneChangeScenario>(
      geometry, ego_limits, c1_limits, dt_c);
}

namespace {

/// A merge planner that simply tracks its cruise speed — oblivious to the
/// leading vehicle. Unsafe on its own; the compound planner makes it
/// respect the gap.
class CruisePlanner final : public core::PlannerBase<LaneChangeWorld> {
 public:
  CruisePlanner(double cruise_speed, const vehicle::VehicleLimits& limits)
      : cruise_(cruise_speed), limits_(limits) {}

  double plan(const LaneChangeWorld& world) override {
    // Proportional speed tracking, clamped by the dynamics downstream.
    return std::clamp(2.0 * (cruise_ - world.ego.v), limits_.a_min,
                      limits_.a_max);
  }
  std::string_view name() const override { return "cruise"; }

 private:
  double cruise_;
  vehicle::VehicleLimits limits_;
};

}  // namespace

LaneChangeSimResult run_lane_change_simulation(
    const LaneChangeSimConfig& config,
    const LaneChangePlannerConfig& planner_cfg, std::uint64_t seed) {
  const auto scn = config.make_scenario();
  util::Rng rng(seed);

  vehicle::DoubleIntegrator ego_dyn(config.ego_limits);
  vehicle::DoubleIntegrator c1_dyn(config.c1_limits);
  vehicle::VehicleState ego{config.geometry.ego_start, config.ego_v0};
  vehicle::VehicleState c1{
      config.geometry.merge_point +
          rng.uniform(config.c1_gap_min, config.c1_gap_max),
      rng.uniform(config.c1_v_min, config.c1_v_max)};

  const auto steps =
      static_cast<std::size_t>(std::ceil(config.horizon / config.dt_c));
  const auto profile = vehicle::AccelProfile::random(
      steps, config.dt_c, c1.v, config.c1_limits, {}, rng);

  sensing::Sensor sensor(config.sensor);
  comm::Channel channel(config.comm);
  filter::InformationFilter estimator(
      config.c1_limits, config.sensor,
      planner_cfg.use_info_filter ? filter::InfoFilterOptions::ultimate()
                                  : filter::InfoFilterOptions::basic());

  auto cruise = std::make_shared<CruisePlanner>(planner_cfg.cruise_speed,
                                                config.ego_limits);
  std::shared_ptr<core::PlannerBase<LaneChangeWorld>> planner = cruise;
  core::CompoundPlanner<LaneChangeWorld>* compound = nullptr;
  if (planner_cfg.use_compound) {
    auto model = std::make_shared<scenario::LaneChangeSafetyModel>(scn);
    auto c = std::make_shared<core::CompoundPlanner<LaneChangeWorld>>(
        cruise, std::move(model));
    compound = c.get();
    planner = c;
  }

  LaneChangeSimResult result;
  for (std::size_t step = 0; step < steps; ++step) {
    const double t = static_cast<double>(step) * config.dt_c;
    const double a1 = profile.at(step);
    const vehicle::VehicleSnapshot snap{t, c1, a1};
    channel.offer(comm::Message{1, snap}, rng);
    for (const auto& msg : channel.collect(t)) estimator.on_message(msg);
    if (const auto r = sensor.sense(snap, rng)) estimator.on_sensor(*r);

    LaneChangeWorld world;
    world.t = t;
    world.ego = ego;
    world.c1_monitor = estimator.estimate(t);
    world.c1_nn = world.c1_monitor;

    const double a0 = planner->plan(world);
    ++result.steps;
    if (compound != nullptr && compound->last_was_emergency()) {
      ++result.emergency_steps;
    }

    ego = ego_dyn.step(ego, a0, config.dt_c);
    c1 = c1_dyn.step(c1, a1, config.dt_c);
    if (scn->violation(ego.p, c1.p)) {
      result.violated = true;
      break;
    }
    if (scn->reached_target(ego.p)) {
      result.reached = true;
      result.reach_time = t + config.dt_c;
      break;
    }
  }

  core::EpisodeOutcome outcome;
  outcome.entered_unsafe_set = result.violated;
  outcome.reached_target = result.reached;
  outcome.reach_time = result.reach_time;
  result.eta = core::eta(outcome);
  return result;
}

LaneChangeBatchStats run_lane_change_batch(
    const LaneChangeSimConfig& config,
    const LaneChangePlannerConfig& planner, std::size_t n,
    std::uint64_t base_seed, std::size_t threads) {
  assert(n > 0);
  std::vector<LaneChangeSimResult> results(n);
  util::parallel_for(
      n,
      [&](std::size_t i) {
        results[i] =
            run_lane_change_simulation(config, planner, base_seed + i);
      },
      threads);

  LaneChangeBatchStats stats;
  stats.n = n;
  double eta_sum = 0.0;
  double reach_sum = 0.0;
  for (const auto& r : results) {
    eta_sum += r.eta;
    if (!r.violated) ++stats.safe_count;
    if (r.reached) {
      ++stats.reached_count;
      reach_sum += r.reach_time;
    }
    stats.total_steps += r.steps;
    stats.emergency_steps += r.emergency_steps;
  }
  stats.mean_eta = eta_sum / static_cast<double>(n);
  stats.mean_reach_time =
      stats.reached_count
          ? reach_sum / static_cast<double>(stats.reached_count)
          : 0.0;
  return stats;
}

}  // namespace cvsafe::eval
