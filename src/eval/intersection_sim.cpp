#include "cvsafe/eval/intersection_sim.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <vector>

#include "cvsafe/core/compound_planner.hpp"
#include "cvsafe/core/evaluation.hpp"
#include "cvsafe/filter/info_filter.hpp"
#include "cvsafe/util/kinematics.hpp"
#include "cvsafe/util/thread_pool.hpp"
#include "cvsafe/vehicle/accel_profile.hpp"
#include "cvsafe/vehicle/dynamics.hpp"

namespace cvsafe::eval {

using scenario::IntersectionWorld;

std::shared_ptr<const scenario::IntersectionScenario>
IntersectionSimConfig::make_scenario() const {
  return std::make_shared<const scenario::IntersectionScenario>(
      geometry, ego_limits, dt_c);
}

namespace {

/// Conservative occupancy window of one cross vehicle for the zone
/// [front, back] in its own path coordinate — the same Eq. 7 structure as
/// the left-turn case study, from sound set bounds.
util::Interval conservative_window(const filter::StateEstimate& est,
                                   double front, double back,
                                   const vehicle::VehicleLimits& lim) {
  if (!est.valid) return util::Interval{est.t, 1e18};
  if (est.p.lo >= back) return util::Interval::empty_interval();
  const double t = est.t;
  double entry;
  if (est.p.hi >= front) {
    entry = t;
  } else {
    entry = t + util::time_to_travel(front - est.p.hi, est.v.hi, lim.a_max,
                                     lim.v_max);
  }
  const double exit = t + util::time_to_travel(back - est.p.lo, est.v.lo,
                                               lim.a_min,
                                               std::max(lim.v_min, 0.1));
  if (exit < entry) return util::Interval::empty_interval();
  return util::Interval{entry, exit};
}

/// Reckless embedded planner: tracks a cruise speed, blind to traffic.
class CruisePlanner final : public core::PlannerBase<IntersectionWorld> {
 public:
  explicit CruisePlanner(const vehicle::VehicleLimits& lim) : lim_(lim) {}
  double plan(const IntersectionWorld& world) override {
    return std::clamp(2.0 * (11.0 - world.ego.v), lim_.a_min, lim_.a_max);
  }
  std::string_view name() const override { return "cruise"; }

 private:
  vehicle::VehicleLimits lim_;
};

}  // namespace

IntersectionSimResult run_intersection_simulation(
    const IntersectionSimConfig& config, bool use_compound,
    std::uint64_t seed) {
  const auto scn = config.make_scenario();
  util::Rng rng(seed);

  const auto total_steps =
      static_cast<std::size_t>(std::ceil(config.horizon / config.dt_c));

  struct CrossVehicle {
    vehicle::VehicleState state;
    vehicle::AccelProfile profile;
    comm::Channel channel;
    sensing::Sensor sensor;
    std::unique_ptr<filter::InformationFilter> est;
  };
  const auto make_stream = [&](std::size_t count) {
    std::vector<CrossVehicle> stream;
    stream.reserve(count);
    double p = config.cross_zone_front -
               rng.uniform(config.lead_gap_min, config.lead_gap_max);
    for (std::size_t i = 0; i < count; ++i) {
      const double v0 = rng.uniform(config.v_init_min, config.v_init_max);
      stream.push_back(CrossVehicle{
          {p, v0},
          vehicle::AccelProfile::random(total_steps, config.dt_c, v0,
                                        config.cross_limits, {}, rng),
          comm::Channel(config.comm), sensing::Sensor(config.sensor),
          std::make_unique<filter::InformationFilter>(
              config.cross_limits, config.sensor,
              filter::InfoFilterOptions::basic())});
      p -= rng.uniform(config.headway_min, config.headway_max);
    }
    return stream;
  };
  std::vector<CrossVehicle> lane_a = make_stream(config.vehicles_per_lane);
  std::vector<CrossVehicle> lane_b = make_stream(config.vehicles_per_lane);

  auto cruise = std::make_shared<CruisePlanner>(config.ego_limits);
  std::shared_ptr<core::PlannerBase<IntersectionWorld>> planner = cruise;
  core::CompoundPlanner<IntersectionWorld>* compound = nullptr;
  if (use_compound) {
    auto model = std::make_shared<scenario::IntersectionSafetyModel>(scn);
    auto c = std::make_shared<core::CompoundPlanner<IntersectionWorld>>(
        cruise, std::move(model));
    compound = c.get();
    planner = c;
  }

  vehicle::DoubleIntegrator ego_dyn(config.ego_limits);
  vehicle::DoubleIntegrator cross_dyn(config.cross_limits);
  vehicle::VehicleState ego{config.geometry.ego_start, config.ego_v0};

  const auto update_stream = [&](std::vector<CrossVehicle>& stream,
                                 double t, std::size_t step,
                                 util::IntervalSet& tau) {
    for (std::size_t k = 0; k < stream.size(); ++k) {
      auto& car = stream[k];
      const double a = car.profile.at(step);
      const vehicle::VehicleSnapshot snap{t, car.state, a};
      car.channel.offer(comm::Message{static_cast<std::uint32_t>(k + 1),
                                      snap},
                        rng);
      for (const auto& m : car.channel.collect(t)) car.est->on_message(m);
      if (const auto r = car.sensor.sense(snap, rng)) car.est->on_sensor(*r);
      tau.insert(conservative_window(car.est->estimate(t),
                                     config.cross_zone_front,
                                     config.cross_zone_back,
                                     config.cross_limits));
    }
  };
  const auto stream_occupies = [&](const std::vector<CrossVehicle>& stream) {
    for (const auto& car : stream) {
      if (car.state.p > config.cross_zone_front &&
          car.state.p < config.cross_zone_back) {
        return true;
      }
    }
    return false;
  };

  IntersectionSimResult result;
  for (std::size_t step = 0; step < total_steps; ++step) {
    const double t = static_cast<double>(step) * config.dt_c;

    IntersectionWorld world;
    world.t = t;
    world.ego = ego;
    update_stream(lane_a, t, step, world.tau_a);
    update_stream(lane_b, t, step, world.tau_b);

    const double a0 = planner->plan(world);
    ++result.steps;
    if (compound != nullptr && compound->last_was_emergency()) {
      ++result.emergency_steps;
    }

    ego = ego_dyn.step(ego, a0, config.dt_c);
    for (auto& car : lane_a) {
      car.state = cross_dyn.step(car.state, car.profile.at(step),
                                 config.dt_c);
    }
    for (auto& car : lane_b) {
      car.state = cross_dyn.step(car.state, car.profile.at(step),
                                 config.dt_c);
    }

    if ((scn->in_zone_a(ego.p) && stream_occupies(lane_a)) ||
        (scn->in_zone_b(ego.p) && stream_occupies(lane_b))) {
      result.collided = true;
      break;
    }
    if (ego.p >= config.geometry.ego_target) {
      result.reached = true;
      result.reach_time = t + config.dt_c;
      break;
    }
  }

  core::EpisodeOutcome outcome;
  outcome.entered_unsafe_set = result.collided;
  outcome.reached_target = result.reached;
  outcome.reach_time = result.reach_time;
  result.eta = core::eta(outcome);
  return result;
}

IntersectionBatchStats run_intersection_batch(
    const IntersectionSimConfig& config, bool use_compound, std::size_t n,
    std::uint64_t base_seed, std::size_t threads) {
  assert(n > 0);
  std::vector<IntersectionSimResult> results(n);
  util::parallel_for(
      n,
      [&](std::size_t i) {
        results[i] = run_intersection_simulation(config, use_compound,
                                                 base_seed + i);
      },
      threads);

  IntersectionBatchStats stats;
  stats.n = n;
  double eta_sum = 0.0;
  double reach_sum = 0.0;
  for (const auto& r : results) {
    eta_sum += r.eta;
    if (!r.collided) ++stats.safe_count;
    if (r.reached) {
      ++stats.reached_count;
      reach_sum += r.reach_time;
    }
    stats.total_steps += r.steps;
    stats.emergency_steps += r.emergency_steps;
  }
  stats.mean_eta = eta_sum / static_cast<double>(n);
  stats.mean_reach_time =
      stats.reached_count
          ? reach_sum / static_cast<double>(stats.reached_count)
          : 0.0;
  return stats;
}

}  // namespace cvsafe::eval
