#include "cvsafe/eval/batch.hpp"

#include "cvsafe/util/contracts.hpp"
#include "cvsafe/util/thread_pool.hpp"

namespace cvsafe::eval {

void BatchStats::merge(const BatchStats& other) {
  if (other.n == 0) return;
  // Weighted means over episode counts.
  const double reached_a =
      static_cast<double>(reached_count);
  const double reached_b = static_cast<double>(other.reached_count);
  const double reach_sum =
      mean_reach_time * reached_a + other.mean_reach_time * reached_b;
  const double eta_sum = mean_eta * static_cast<double>(n) +
                         other.mean_eta * static_cast<double>(other.n);

  n += other.n;
  safe_count += other.safe_count;
  reached_count += other.reached_count;
  total_steps += other.total_steps;
  emergency_steps += other.emergency_steps;
  mean_eta = eta_sum / static_cast<double>(n);
  mean_reach_time = reached_count
                        ? reach_sum / static_cast<double>(reached_count)
                        : 0.0;
  etas.reserve(etas.size() + other.etas.size());
  etas.insert(etas.end(), other.etas.begin(), other.etas.end());
}

BatchStats run_batch(const SimConfig& config, const AgentBlueprint& blueprint,
                     std::size_t n, std::uint64_t base_seed,
                     std::size_t threads) {
  CVSAFE_EXPECTS(n > 0, "batch must contain at least one episode");
  std::vector<SimResult> results(n);
  util::parallel_for(
      n,
      [&](std::size_t i) {
        results[i] = run_left_turn_simulation(config, blueprint,
                                              base_seed + i);
      },
      threads);

  BatchStats stats;
  stats.n = n;
  stats.etas.reserve(n);
  double reach_time_sum = 0.0;
  double eta_sum = 0.0;
  for (const auto& r : results) {
    stats.etas.push_back(r.eta);
    eta_sum += r.eta;
    if (!r.collided) ++stats.safe_count;
    if (r.reached) {
      ++stats.reached_count;
      reach_time_sum += r.reach_time;
    }
    stats.total_steps += r.steps;
    stats.emergency_steps += r.emergency_steps;
  }
  stats.mean_eta = eta_sum / static_cast<double>(n);
  stats.mean_reach_time =
      stats.reached_count > 0
          ? reach_time_sum / static_cast<double>(stats.reached_count)
          : 0.0;
  return stats;
}

double winning_fraction(std::span<const double> etas_a,
                        std::span<const double> etas_b, double tolerance) {
  CVSAFE_EXPECTS(etas_a.size() == etas_b.size(),
                 "winning_fraction requires paired eta vectors");
  CVSAFE_EXPECTS(!etas_a.empty(),
                 "winning_fraction requires at least one episode");
  CVSAFE_EXPECTS(tolerance >= 0.0, "tie tolerance must be non-negative");
  double wins = 0.0;
  for (std::size_t i = 0; i < etas_a.size(); ++i) {
    if (!(etas_a[i] > etas_b[i] - tolerance)) continue;
    // Within-tolerance comparisons count as wins for A, but an exact tie
    // is a coin flip and contributes only half a win.
    wins += etas_a[i] == etas_b[i] ? 0.5 : 1.0;  // cvsafe-lint: allow(float-compare)
  }
  return wins / static_cast<double>(etas_a.size());
}

}  // namespace cvsafe::eval
