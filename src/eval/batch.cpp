#include "cvsafe/eval/batch.hpp"

#include "cvsafe/util/contracts.hpp"

namespace cvsafe::eval {

double winning_fraction(std::span<const double> etas_a,
                        std::span<const double> etas_b, double tolerance) {
  CVSAFE_EXPECTS(etas_a.size() == etas_b.size(),
                 "winning_fraction requires paired eta vectors");
  CVSAFE_EXPECTS(!etas_a.empty(),
                 "winning_fraction requires at least one episode");
  CVSAFE_EXPECTS(tolerance >= 0.0, "tie tolerance must be non-negative");
  double wins = 0.0;
  for (std::size_t i = 0; i < etas_a.size(); ++i) {
    if (!(etas_a[i] > etas_b[i] - tolerance)) continue;
    // Within-tolerance comparisons count as wins for A, but an exact tie
    // is a coin flip and contributes only half a win.
    wins += etas_a[i] == etas_b[i] ? 0.5 : 1.0;  // cvsafe-lint: allow(float-compare)
  }
  return wins / static_cast<double>(etas_a.size());
}

}  // namespace cvsafe::eval
