#include "cvsafe/eval/simulation.hpp"

#include <cassert>
#include <cmath>

#include "cvsafe/vehicle/dynamics.hpp"

namespace cvsafe::eval {

std::vector<double> WorkloadParams::paper_p1_grid() {
  std::vector<double> grid;
  grid.reserve(20);
  for (int j = 0; j < 20; ++j) grid.push_back(50.5 + 0.5 * j);
  return grid;
}

SimConfig SimConfig::paper_defaults() {
  SimConfig c;
  c.workload.p1_grid = WorkloadParams::paper_p1_grid();
  return c;
}

std::shared_ptr<const scenario::LeftTurnScenario> SimConfig::make_scenario()
    const {
  return std::make_shared<const scenario::LeftTurnScenario>(
      geometry, ego_limits, c1_limits, dt_c);
}

std::unique_ptr<LeftTurnAgent> AgentBlueprint::make() const {
  if (!ensemble.empty()) {
    return std::make_unique<LeftTurnAgent>(scenario, ensemble, sensor,
                                           config);
  }
  return std::make_unique<LeftTurnAgent>(scenario, net, sensor, config);
}

SimResult run_left_turn_simulation(const SimConfig& config,
                                   const AgentBlueprint& blueprint,
                                   std::uint64_t seed, SimTrace* trace) {
  assert(blueprint.scenario != nullptr);
  const auto& scn = *blueprint.scenario;
  util::Rng rng(seed);

  // ---- Workload --------------------------------------------------------
  const auto& wl = config.workload;
  assert(!wl.p1_grid.empty());
  const auto grid_idx = static_cast<std::size_t>(rng.uniform_int(
      0, static_cast<std::int64_t>(wl.p1_grid.size()) - 1));
  const double u1_start =
      scenario::LeftTurnGeometry::oncoming_to_frame(wl.p1_grid[grid_idx]);
  const double v1_start = rng.uniform(wl.v1_init_min, wl.v1_init_max);

  const auto total_steps =
      static_cast<std::size_t>(std::ceil(config.horizon / config.dt_c));
  const vehicle::AccelProfile profile = vehicle::AccelProfile::random(
      total_steps, config.dt_c, v1_start, config.c1_limits, wl.profile, rng);

  // ---- Actors ----------------------------------------------------------
  vehicle::DoubleIntegrator ego_dyn(config.ego_limits);
  vehicle::DoubleIntegrator c1_dyn(config.c1_limits);
  vehicle::VehicleState ego{config.geometry.ego_start, config.ego_v0};
  vehicle::VehicleState c1{u1_start, v1_start};

  comm::Channel channel(config.comm);
  sensing::Sensor sensor(config.sensor);
  auto agent = blueprint.make();

  SimResult result;
  for (std::size_t step = 0; step < total_steps; ++step) {
    const double t = static_cast<double>(step) * config.dt_c;
    const double a1 = profile.at(step);

    // 1. Oncoming vehicle broadcasts; ego receives due messages & senses.
    const vehicle::VehicleSnapshot c1_snapshot{t, c1, a1};
    channel.offer(comm::Message{1, c1_snapshot}, rng);
    for (const auto& msg : channel.collect(t)) agent->observe_message(msg);
    if (const auto reading = sensor.sense(c1_snapshot, rng)) {
      agent->observe_sensor(*reading);
    }

    // 2. Ego plans.
    const double a0 = agent->act(t, ego);
    ++result.steps;
    if (agent->last_was_emergency()) ++result.emergency_steps;

    if (trace != nullptr) {
      trace->ego.push(vehicle::VehicleSnapshot{t, ego, a0});
      trace->c1.push(c1_snapshot);
      trace->accel_commands.push_back(a0);
      trace->emergency_flags.push_back(agent->last_was_emergency());
      const auto& w = agent->last_world();
      trace->tau1_lo.push_back(w.tau1_nn.empty() ? -1.0 : w.tau1_nn.lo);
      trace->tau1_hi.push_back(w.tau1_nn.empty() ? -1.0 : w.tau1_nn.hi);
    }

    // 3. Both vehicles step.
    ego = ego_dyn.step(ego, a0, config.dt_c);
    c1 = c1_dyn.step(c1, a1, config.dt_c);
    const double t_next = t + config.dt_c;

    // 4. Outcome checks on the exact post-step state.
    if (scn.collision(ego.p, c1.p)) {
      result.collided = true;
      result.steps = step + 1;
      break;
    }
    if (scn.ego_reached_target(ego.p)) {
      result.reached = true;
      result.reach_time = t_next;
      break;
    }
  }

  if (trace != nullptr) trace->switches = agent->switch_events();

  core::EpisodeOutcome outcome;
  outcome.entered_unsafe_set = result.collided;
  outcome.reached_target = result.reached;
  outcome.reach_time = result.reach_time;
  result.eta = core::eta(outcome);
  return result;
}

}  // namespace cvsafe::eval
