#include "cvsafe/eval/experiments.hpp"

#include <cassert>
#include <cstdint>

#include "cvsafe/util/rng.hpp"

namespace cvsafe::eval {

const char* comm_setting_name(CommSetting setting) {
  switch (setting) {
    case CommSetting::kNoDisturbance: return "no disturbance";
    case CommSetting::kDelayed: return "messages delayed";
    case CommSetting::kLost: return "messages lost";
  }
  return "?";
}

std::vector<double> drop_prob_grid() {
  std::vector<double> grid;
  grid.reserve(20);
  for (int j = 0; j < 20; ++j) grid.push_back(0.05 * j);
  return grid;
}

std::vector<double> sensor_delta_grid() {
  std::vector<double> grid;
  grid.reserve(20);
  for (int j = 0; j < 20; ++j) grid.push_back(1.0 + 0.2 * j);
  return grid;
}

const char* planner_variant_name(PlannerVariant variant) {
  switch (variant) {
    case PlannerVariant::kPureNn: return "pure NN";
    case PlannerVariant::kBasic: return "basic";
    case PlannerVariant::kUltimate: return "ultimate";
  }
  return "?";
}

AgentBlueprint make_nn_blueprint(const SimConfig& config,
                                 planners::PlannerStyle style,
                                 PlannerVariant variant,
                                 const planners::TrainingOptions& train) {
  AgentBlueprint bp;
  bp.scenario = config.make_scenario();
  bp.net = planners::cached_planner_network(*bp.scenario, style, train);
  bp.sensor = config.sensor;
  switch (variant) {
    case PlannerVariant::kPureNn:
      bp.config = AgentConfig::pure_nn();
      break;
    case PlannerVariant::kBasic:
      bp.config = AgentConfig::basic_compound();
      break;
    case PlannerVariant::kUltimate:
      bp.config = AgentConfig::ultimate_compound();
      break;
  }
  bp.name = std::string(planner_variant_name(variant)) + " (" +
            planners::planner_style_name(style) + ")";
  return bp;
}

SimConfig apply_setting(SimConfig base, CommSetting setting,
                        double sweep_value) {
  switch (setting) {
    case CommSetting::kNoDisturbance:
      base.comm = comm::CommConfig::no_disturbance(base.comm.period);
      break;
    case CommSetting::kDelayed:
      base.comm = comm::CommConfig::delayed(sweep_value, kPaperMessageDelay,
                                            base.comm.period);
      break;
    case CommSetting::kLost:
      base.comm = comm::CommConfig::messages_lost(base.comm.period);
      base.sensor =
          sensing::SensorConfig::uniform(sweep_value, base.sensor.period);
      break;
  }
  return base;
}

BatchStats run_setting(const SimConfig& base, const AgentBlueprint& blueprint,
                       CommSetting setting, std::size_t sims_total,
                       std::uint64_t base_seed, std::size_t threads,
                       BatchEngine engine) {
  assert(sims_total > 0);
  std::vector<double> grid;
  switch (setting) {
    case CommSetting::kNoDisturbance:
      grid = {0.0};
      break;
    case CommSetting::kDelayed:
      grid = drop_prob_grid();
      break;
    case CommSetting::kLost:
      grid = sensor_delta_grid();
      break;
  }

  const std::size_t per_point =
      (sims_total + grid.size() - 1) / grid.size();

  BatchStats total;
  total.etas.reserve(per_point * grid.size());
  for (std::size_t gi = 0; gi < grid.size(); ++gi) {
    const SimConfig cfg = apply_setting(base, setting, grid[gi]);
    AgentBlueprint bp = blueprint;
    bp.sensor = cfg.sensor;  // lost setting sweeps the sensor noise
    // Per-point seed base: derived (never strided) so the episode ranges
    // of different grid points and settings cannot overlap, while two
    // planners evaluated on the same (setting, point) stay paired.
    const std::uint64_t point_base = util::derive_seed(
        base_seed,
        (static_cast<std::uint64_t>(setting) << 32) |
            static_cast<std::uint64_t>(gi));
    total.merge(engine == BatchEngine::kFleet
                    ? run_batch_fleet(cfg, bp, per_point, point_base, threads)
                    : run_batch(cfg, bp, per_point, point_base, threads));
  }
  return total;
}

}  // namespace cvsafe::eval
