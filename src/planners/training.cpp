#include "cvsafe/planners/training.hpp"

#include <array>
#include <cinttypes>
#include <cstdio>
#include <filesystem>
#include <memory>
#include <mutex>
#include <sstream>
#include <unordered_map>

#include "cvsafe/nn/optimizer.hpp"
#include "cvsafe/nn/serialize.hpp"
#include "cvsafe/util/config.hpp"
#include "cvsafe/vehicle/accel_profile.hpp"
#include "cvsafe/vehicle/dynamics.hpp"

namespace cvsafe::planners {

const char* planner_style_name(PlannerStyle style) {
  return style == PlannerStyle::kConservative ? "conservative" : "aggressive";
}

ExpertParams expert_params_for(PlannerStyle style) {
  return style == PlannerStyle::kConservative ? ExpertParams::conservative()
                                              : ExpertParams::aggressive();
}

nn::Dataset generate_imitation_dataset(
    const scenario::LeftTurnScenario& scenario, const ExpertPolicy& expert,
    const InputEncoding& encoding, std::size_t n, util::Rng& rng) {
  const auto& g = scenario.geometry();
  const auto& lim = scenario.ego_limits();
  nn::Dataset data{nn::Matrix(n, InputEncoding::dim()), nn::Matrix(n, 1)};
  for (std::size_t i = 0; i < n; ++i) {
    const double p0 = rng.uniform(g.ego_start - 5.0, g.ego_back + 3.0);
    const double v0 = rng.uniform(lim.v_min, lim.v_max);

    util::Interval tau1;
    const double kind = rng.uniform01();
    if (kind < 0.15) {
      tau1 = util::Interval::empty_interval();  // oncoming vehicle passed
    } else if (kind < 0.30) {
      // Oncoming vehicle may already occupy the zone.
      tau1 = util::Interval{0.0, rng.uniform(0.3, 6.0)};
    } else {
      const double w_lo = rng.uniform(0.05, 10.0);
      tau1 = util::Interval{w_lo, w_lo + rng.uniform(0.3, 8.0)};
    }

    const auto x = encoding.encode(0.0, p0, v0, tau1);
    for (std::size_t j = 0; j < x.size(); ++j) data.inputs(i, j) = x[j];
    data.targets(i, 0) = expert.act(0.0, p0, v0, tau1);
  }
  return data;
}

nn::Dataset generate_onpolicy_dataset(
    const scenario::LeftTurnScenario& scenario, const nn::Mlp& net,
    const ExpertPolicy& expert, const InputEncoding& encoding,
    std::size_t episodes, util::Rng& rng) {
  const auto& g = scenario.geometry();
  const auto& ego_lim = scenario.ego_limits();
  const auto& c1_lim = scenario.oncoming_limits();
  const double dt = scenario.control_period();
  const vehicle::DoubleIntegrator ego_dyn(ego_lim);
  const vehicle::DoubleIntegrator c1_dyn(c1_lim);

  std::vector<std::vector<double>> inputs;
  std::vector<double> labels;
  nn::Workspace ws;  // reused across every rollout step (no per-step allocs)
  std::array<double, InputEncoding::dim()> x_step;
  for (std::size_t episode = 0; episode < episodes; ++episode) {
    vehicle::VehicleState ego{g.ego_start, rng.uniform(4.0, 12.0)};
    vehicle::VehicleState c1{rng.uniform(-62.0, -48.0),
                             rng.uniform(c1_lim.v_min + 2.0, c1_lim.v_max)};
    const auto steps = static_cast<std::size_t>(20.0 / dt);
    const auto profile =
        vehicle::AccelProfile::random(steps, dt, c1.v, c1_lim, {}, rng);
    for (std::size_t step = 0; step < steps; ++step) {
      const double t = static_cast<double>(step) * dt;
      filter::StateEstimate est;
      est.t = t;
      est.p = util::Interval::point(c1.p);
      est.v = util::Interval::point(c1.v);
      est.p_hat = c1.p;
      est.v_hat = c1.v;
      est.a_hat = profile.at(step);
      est.valid = true;
      const util::Interval tau1 = scenario.c1_window_conservative(est);

      // Sub-sample the visited states (every 4th control step) to keep
      // the on-policy set compact but representative.
      if (step % 4 == 0) {
        inputs.push_back(encoding.encode(t, ego.p, ego.v, tau1));
        labels.push_back(expert.act(t, ego.p, ego.v, tau1));
      }

      encoding.encode_into(t, ego.p, ego.v, tau1, x_step);
      const double a0 = net.predict_scalar(x_step, ws);
      ego = ego_dyn.step(ego, a0, dt);
      c1 = c1_dyn.step(c1, profile.at(step), dt);
      if (scenario.ego_reached_target(ego.p)) break;
    }
  }

  nn::Dataset data{nn::Matrix(inputs.size(), InputEncoding::dim()),
                   nn::Matrix(inputs.size(), 1)};
  for (std::size_t i = 0; i < inputs.size(); ++i) {
    for (std::size_t j = 0; j < inputs[i].size(); ++j) {
      data.inputs(i, j) = inputs[i][j];
    }
    data.targets(i, 0) = labels[i];
  }
  return data;
}

namespace {

/// Concatenates two datasets (same shapes).
nn::Dataset concatenate(const nn::Dataset& a, const nn::Dataset& b) {
  nn::Dataset out{nn::Matrix(a.size() + b.size(), a.inputs.cols()),
                  nn::Matrix(a.size() + b.size(), a.targets.cols())};
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < a.inputs.cols(); ++j)
      out.inputs(i, j) = a.inputs(i, j);
    for (std::size_t j = 0; j < a.targets.cols(); ++j)
      out.targets(i, j) = a.targets(i, j);
  }
  for (std::size_t i = 0; i < b.size(); ++i) {
    for (std::size_t j = 0; j < b.inputs.cols(); ++j)
      out.inputs(a.size() + i, j) = b.inputs(i, j);
    for (std::size_t j = 0; j < b.targets.cols(); ++j)
      out.targets(a.size() + i, j) = b.targets(i, j);
  }
  return out;
}

}  // namespace

nn::Mlp train_planner_network(const scenario::LeftTurnScenario& scenario,
                              PlannerStyle style,
                              const TrainingOptions& options) {
  util::Rng rng(options.seed ^
                (style == PlannerStyle::kAggressive ? 0xA66Eull : 0xC045ull));
  auto scenario_ptr =
      std::make_shared<const scenario::LeftTurnScenario>(scenario);
  const ExpertPolicy expert(scenario_ptr, expert_params_for(style));
  const InputEncoding encoding;
  nn::Dataset data = generate_imitation_dataset(
      scenario, expert, encoding, options.num_samples, rng);

  nn::Mlp net(options.spec, rng);
  nn::Adam opt(options.learning_rate);
  nn::TrainConfig config;
  config.epochs = options.epochs;
  config.batch_size = options.batch_size;
  nn::train(net, data, opt, config, rng);

  // Optional DAgger rounds: aggregate expert-relabeled on-policy states
  // and fine-tune.
  for (std::size_t round = 0; round < options.onpolicy_rounds; ++round) {
    const nn::Dataset visited = generate_onpolicy_dataset(
        scenario, net, expert, encoding,
        options.onpolicy_episodes_per_round, rng);
    if (visited.size() == 0) break;
    data = concatenate(data, visited);
    nn::TrainConfig fine = config;
    fine.epochs = options.onpolicy_epochs;
    nn::train(net, data, opt, fine, rng);
  }
  net.refresh_inference_cache();  // optimizer steps left the cache stale
  return net;
}

namespace {

/// FNV-1a over a string fingerprint of everything influencing training.
std::uint64_t fingerprint(const scenario::LeftTurnScenario& scenario,
                          PlannerStyle style, const TrainingOptions& options) {
  std::ostringstream os;
  const auto& g = scenario.geometry();
  const auto& e = scenario.ego_limits();
  const auto& c = scenario.oncoming_limits();
  const ExpertParams ep = expert_params_for(style);
  os << g.ego_front << ',' << g.ego_back << ',' << g.ego_start << ','
     << g.ego_target << ',' << g.c1_front << ',' << g.c1_back << ';'
     << e.v_min << ',' << e.v_max << ',' << e.a_min << ',' << e.a_max << ';'
     << c.v_min << ',' << c.v_max << ',' << c.a_min << ',' << c.a_max << ';'
     << planner_style_name(style) << ';' << ep.go_margin << ','
     << ep.clearance << ',' << ep.stop_offset << ';' << options.num_samples
     << ',' << options.epochs << ',' << options.batch_size << ','
     << options.learning_rate << ',' << options.seed << ','
     << options.onpolicy_rounds << ','
     << options.onpolicy_episodes_per_round << ','
     << options.onpolicy_epochs << ';';
  for (auto s : options.spec.layer_sizes) os << s << '-';
  const std::string s = os.str();
  std::uint64_t h = 0xcbf29ce484222325ULL;
  for (char ch : s) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001b3ULL;
  }
  return h;
}

std::filesystem::path cache_dir() {
  if (const auto dir = util::env_string("CVSAFE_MODEL_CACHE")) {
    return std::filesystem::path(*dir);
  }
  return std::filesystem::temp_directory_path() / "cvsafe-models";
}

std::mutex g_cache_mutex;
std::unordered_map<std::uint64_t, std::shared_ptr<const nn::Mlp>>
    g_memory_cache;

}  // namespace

std::shared_ptr<const nn::Mlp> cached_planner_network(
    const scenario::LeftTurnScenario& scenario, PlannerStyle style,
    const TrainingOptions& options) {
  const std::uint64_t key = fingerprint(scenario, style, options);

  std::lock_guard lock(g_cache_mutex);
  if (auto it = g_memory_cache.find(key); it != g_memory_cache.end()) {
    return it->second;
  }

  char name[64];
  std::snprintf(name, sizeof(name), "left_turn_%s_%016" PRIx64 ".mlp",
                planner_style_name(style), key);
  const std::filesystem::path path = cache_dir() / name;

  std::error_code ec;
  if (std::filesystem::exists(path, ec)) {
    try {
      auto net = std::make_shared<const nn::Mlp>(
          nn::load_mlp_file(path.string()));
      g_memory_cache[key] = net;
      return net;
    } catch (const std::exception&) {
      // Corrupt cache entry: fall through and retrain.
    }
  }

  auto net = std::make_shared<const nn::Mlp>(
      train_planner_network(scenario, style, options));
  std::filesystem::create_directories(cache_dir(), ec);
  nn::save_mlp_file(*net, path.string());
  g_memory_cache[key] = net;
  return net;
}

std::shared_ptr<NnPlanner> make_nn_planner(
    const scenario::LeftTurnScenario& scenario, PlannerStyle style,
    const TrainingOptions& options) {
  auto net = cached_planner_network(scenario, style, options);
  const std::string name =
      std::string("nn_") + planner_style_name(style);
  return std::make_shared<NnPlanner>(std::move(net), InputEncoding{}, name);
}

}  // namespace cvsafe::planners
