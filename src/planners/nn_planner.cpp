#include "cvsafe/planners/nn_planner.hpp"

#include <algorithm>
#include <array>
#include <cassert>

#include "cvsafe/obs/profile.hpp"

namespace cvsafe::planners {

std::vector<double> InputEncoding::encode(double t, double p0, double v0,
                                          const util::Interval& tau1) const {
  std::vector<double> out(dim());
  encode_into(t, p0, v0, tau1, out);
  return out;
}

void InputEncoding::encode_into(double t, double p0, double v0,
                                const util::Interval& tau1,
                                std::span<double> out) const {
  assert(out.size() == dim());
  double w_lo;
  double w_hi;
  if (tau1.empty() || tau1.hi <= t) {
    w_lo = w_min;
    w_hi = w_min;
  } else {
    w_lo = std::clamp(tau1.lo - t, w_min, w_max);
    w_hi = std::clamp(tau1.hi - t, w_min, w_max);
  }
  out[0] = p0 / p_scale;
  out[1] = v0 / v_scale;
  out[2] = w_lo / w_scale;
  out[3] = w_hi / w_scale;
}

NnPlanner::NnPlanner(std::shared_ptr<const nn::Mlp> net,
                     InputEncoding encoding, std::string name)
    : net_(std::move(net)), encoding_(encoding), name_(std::move(name)) {
  assert(net_ != nullptr);
  assert(net_->input_dim() == InputEncoding::dim());
  assert(net_->output_dim() == 1);
}

double NnPlanner::plan(const scenario::LeftTurnWorld& world) {
  CVSAFE_PROFILE_SPAN("nn.plan");
  std::array<double, InputEncoding::dim()> x;
  encoding_.encode_into(world.t, world.ego.p, world.ego.v, world.tau1_nn, x);
  return net_->predict_scalar(x, workspace_);
}

void NnPlanner::plan_batch(std::span<const scenario::LeftTurnWorld> worlds,
                           std::span<double> out) {
  CVSAFE_PROFILE_SPAN("nn.plan_batch");
  assert(worlds.size() == out.size());
  // Tiled evaluation: the workspace (input staging + two activation
  // buffers) grows monotonically with the largest batch seen, so an
  // unbounded batch from a fleet-sized pool would pin
  // O(pool * max_layer_width) doubles per planner. Capping tiles at
  // kTileRows bounds the workspace while keeping each matmul wide enough
  // to amortize the weight traffic. Per-row arithmetic is independent of
  // the tile split, so results stay bit-identical to one whole-batch
  // call (and to plan() per row).
  constexpr std::size_t kTileRows = 512;
  for (std::size_t base = 0; base < worlds.size(); base += kTileRows) {
    const std::size_t rows = std::min(kTileRows, worlds.size() - base);
    nn::Matrix& in = workspace_.input(rows, InputEncoding::dim());
    for (std::size_t i = 0; i < rows; ++i) {
      const auto& w = worlds[base + i];
      encoding_.encode_into(
          w.t, w.ego.p, w.ego.v, w.tau1_nn,
          std::span<double>(in.data()).subspan(i * InputEncoding::dim(),
                                               InputEncoding::dim()));
    }
    const nn::Matrix& y = net_->forward_into(in, workspace_);
    for (std::size_t i = 0; i < rows; ++i) out[base + i] = y(i, 0);
  }
}

}  // namespace cvsafe::planners
