#include "cvsafe/planners/nn_planner.hpp"

#include <algorithm>
#include <cassert>

namespace cvsafe::planners {

std::vector<double> InputEncoding::encode(double t, double p0, double v0,
                                          const util::Interval& tau1) const {
  double w_lo;
  double w_hi;
  if (tau1.empty() || tau1.hi <= t) {
    w_lo = w_min;
    w_hi = w_min;
  } else {
    w_lo = std::clamp(tau1.lo - t, w_min, w_max);
    w_hi = std::clamp(tau1.hi - t, w_min, w_max);
  }
  return {p0 / p_scale, v0 / v_scale, w_lo / w_scale, w_hi / w_scale};
}

NnPlanner::NnPlanner(std::shared_ptr<const nn::Mlp> net,
                     InputEncoding encoding, std::string name)
    : net_(std::move(net)), encoding_(encoding), name_(std::move(name)) {
  assert(net_ != nullptr);
  assert(net_->input_dim() == InputEncoding::dim());
  assert(net_->output_dim() == 1);
}

double NnPlanner::plan(const scenario::LeftTurnWorld& world) {
  const auto x = encoding_.encode(world.t, world.ego.p, world.ego.v,
                                  world.tau1_nn);
  return net_->predict(x)[0];
}

}  // namespace cvsafe::planners
