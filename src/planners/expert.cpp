#include "cvsafe/planners/expert.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "cvsafe/util/kinematics.hpp"

namespace cvsafe::planners {

ExpertParams ExpertParams::conservative() {
  ExpertParams p;
  p.go_margin = 0.7;
  return p;
}

ExpertParams ExpertParams::aggressive() {
  ExpertParams p;
  // Negative margin: commits to pass even when the ego would clear the
  // zone *after* the earliest time the oncoming vehicle could possibly
  // enter — a bet that C1 will not drive at its physical limits. This is
  // the over-aggressive behavior of Fig. 1b.
  p.go_margin = -2.8;
  return p;
}

ExpertPolicy::ExpertPolicy(
    std::shared_ptr<const scenario::LeftTurnScenario> scenario,
    ExpertParams params)
    : scenario_(std::move(scenario)), params_(params) {
  assert(scenario_ != nullptr);
}

double ExpertPolicy::time_to_clear(double p0, double v0) const {
  const auto& g = scenario_->geometry();
  const auto& lim = scenario_->ego_limits();
  const double dist = g.ego_back + params_.clearance - p0;
  return util::time_to_travel(dist, v0, lim.a_max, lim.v_max);
}

double ExpertPolicy::act(double t, double p0, double v0,
                         const util::Interval& tau1) const {
  const auto& g = scenario_->geometry();
  const auto& lim = scenario_->ego_limits();

  // Past the front line: committed — clear the zone as fast as possible.
  if (p0 > g.ego_front) return lim.a_max;

  // No (remaining) conflict: the oncoming vehicle has certainly passed.
  if (tau1.empty() || tau1.hi <= t) return lim.a_max;

  // Pass ahead of C1 when the projected zone-exit beats tau_1,min by the
  // configured margin.
  const double t_clear = t + time_to_clear(p0, v0);
  if (t_clear + params_.go_margin <= tau1.lo) return lim.a_max;

  // Otherwise yield: glide to a stop shortly before the front line with
  // the least braking that achieves it.
  const double stop_target = g.ego_front - params_.stop_offset;
  const double dist = stop_target - p0;
  if (dist <= 0.05) {
    return v0 > 1e-3 ? lim.a_min : 0.0;
  }
  if (v0 <= 1e-3) return 0.0;  // already waiting
  return std::clamp(-(v0 * v0) / (2.0 * dist), lim.a_min, 0.0);
}

ExpertPlanner::ExpertPlanner(
    std::shared_ptr<const scenario::LeftTurnScenario> scenario,
    ExpertParams params, std::string name)
    : policy_(std::move(scenario), params), name_(std::move(name)) {}

double ExpertPlanner::plan(const scenario::LeftTurnWorld& world) {
  return policy_.act(world.t, world.ego.p, world.ego.v, world.tau1_nn);
}

}  // namespace cvsafe::planners
