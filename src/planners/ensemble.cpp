#include "cvsafe/planners/ensemble.hpp"

#include <array>
#include <cassert>
#include <cmath>

namespace cvsafe::planners {

EnsemblePlanner::EnsemblePlanner(
    std::vector<std::shared_ptr<const nn::Mlp>> members,
    InputEncoding encoding, std::string name, double sigma_penalty)
    : members_(std::move(members)),
      encoding_(encoding),
      name_(std::move(name)),
      sigma_penalty_(sigma_penalty) {
  assert(!members_.empty());
  for ([[maybe_unused]] const auto& m : members_) {
    assert(m != nullptr);
    assert(m->input_dim() == InputEncoding::dim());
    assert(m->output_dim() == 1);
  }
}

double EnsemblePlanner::plan(const scenario::LeftTurnWorld& world) {
  std::array<double, InputEncoding::dim()> x;
  encoding_.encode_into(world.t, world.ego.p, world.ego.v, world.tau1_nn, x);
  double sum = 0.0;
  double sum2 = 0.0;
  for (const auto& m : members_) {
    const double y = m->predict_scalar(x, workspace_);
    sum += y;
    sum2 += y * y;
  }
  const double n = static_cast<double>(members_.size());
  const double mean = sum / n;
  const double var = std::max(0.0, sum2 / n - mean * mean);
  last_disagreement_ = std::sqrt(var);
  return mean - sigma_penalty_ * last_disagreement_;
}

std::vector<std::shared_ptr<const nn::Mlp>> train_planner_ensemble(
    const scenario::LeftTurnScenario& scenario, PlannerStyle style,
    std::size_t k, const TrainingOptions& base_options) {
  assert(k >= 1);
  std::vector<std::shared_ptr<const nn::Mlp>> members;
  members.reserve(k);
  for (std::size_t i = 0; i < k; ++i) {
    TrainingOptions options = base_options;
    // Distinct seed per member -> distinct init, shuffling and sampled
    // dataset; the cache distinguishes them by fingerprint.
    options.seed = base_options.seed + 0x9e3779b9ull * (i + 1);
    members.push_back(cached_planner_network(scenario, style, options));
  }
  return members;
}

}  // namespace cvsafe::planners
