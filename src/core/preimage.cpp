#include "cvsafe/core/preimage.hpp"

#include "cvsafe/obs/profile.hpp"
#include "cvsafe/util/contracts.hpp"
#include "cvsafe/util/thread_pool.hpp"

namespace cvsafe::core {

namespace {

/// Labels one cell exactly as the serial sweep does: unsafe first, then
/// controls in order with early exit on the first unsafe successor.
RegionLabel label_one(double x, double v, const StepFn& step,
                      const UnsafeFn& unsafe,
                      const std::vector<double>& controls) {
  if (unsafe(x, v)) return RegionLabel::kUnsafe;
  for (const double u : controls) {
    const auto [xn, vn] = step(x, v, u);
    if (unsafe(xn, vn)) return RegionLabel::kBoundary;
  }
  return RegionLabel::kSafe;
}

}  // namespace

std::vector<double> sample_controls(double u_min, double u_max,
                                    std::size_t count) {
  CVSAFE_EXPECTS(count >= 2, "control sampling needs at least 2 points");
  CVSAFE_EXPECTS(u_min <= u_max, "control range must be ordered");
  std::vector<double> controls;
  controls.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    controls.push_back(u_min + (u_max - u_min) * static_cast<double>(i) /
                                   static_cast<double>(count - 1));
  }
  return controls;
}

PreimageResult compute_boundary_grid(const PreimageGrid& grid,
                                     const StepFn& step,
                                     const UnsafeFn& unsafe,
                                     const std::vector<double>& controls) {
  CVSAFE_PROFILE_SPAN("preimage.grid");
  CVSAFE_EXPECTS(!controls.empty(), "boundary grid needs control samples");
  CVSAFE_EXPECTS(grid.nx > 0 && grid.nv > 0, "preimage grid must be non-empty");
  CVSAFE_EXPECTS(step != nullptr && unsafe != nullptr,
                 "step and unsafe predicates must be callable");
  PreimageResult result;
  result.grid = grid;
  result.labels.assign(grid.nx * grid.nv, RegionLabel::kSafe);
  for (std::size_t j = 0; j < grid.nv; ++j) {
    for (std::size_t i = 0; i < grid.nx; ++i) {
      result.labels[j * grid.nx + i] =
          label_one(grid.x_at(i), grid.v_at(j), step, unsafe, controls);
    }
  }
  return result;
}

PreimageResult compute_boundary_grid_parallel(
    const PreimageGrid& grid, const StepFn& step, const UnsafeFn& unsafe,
    const std::vector<double>& controls, std::size_t threads) {
  CVSAFE_PROFILE_SPAN("preimage.grid_parallel");
  CVSAFE_EXPECTS(!controls.empty(), "boundary grid needs control samples");
  CVSAFE_EXPECTS(grid.nx > 0 && grid.nv > 0, "preimage grid must be non-empty");
  CVSAFE_EXPECTS(step != nullptr && unsafe != nullptr,
                 "step and unsafe predicates must be callable");
  PreimageResult result;
  result.grid = grid;
  result.labels.assign(grid.nx * grid.nv, RegionLabel::kSafe);
  // Each row is an independent slab of the label array; cells are labeled
  // by the same evaluation sequence as the serial sweep, so the two
  // results are bit-exact.
  util::parallel_for(
      grid.nv,
      [&](std::size_t j) {
        const double v = grid.v_at(j);
        RegionLabel* row = result.labels.data() + j * grid.nx;
        for (std::size_t i = 0; i < grid.nx; ++i) {
          row[i] = label_one(grid.x_at(i), v, step, unsafe, controls);
        }
      },
      threads);
  return result;
}

IncrementalBoundaryGrid::IncrementalBoundaryGrid(const PreimageGrid& grid,
                                                 const StepFn& step,
                                                 std::vector<double> controls,
                                                 std::size_t threads)
    : controls_(std::move(controls)), threads_(threads) {
  CVSAFE_EXPECTS(!controls_.empty(), "boundary grid needs control samples");
  CVSAFE_EXPECTS(grid.nx > 0 && grid.nv > 0, "preimage grid must be non-empty");
  CVSAFE_EXPECTS(step != nullptr, "step predicate must be callable");
  result_.grid = grid;
  result_.labels.assign(grid.nx * grid.nv, RegionLabel::kSafe);
  const std::size_t nu = controls_.size();
  successors_.resize(grid.nx * grid.nv * nu);
  footprints_.resize(grid.nx * grid.nv);
  util::parallel_for(
      grid.nv,
      [&](std::size_t j) {
        const double v = grid.v_at(j);
        for (std::size_t i = 0; i < grid.nx; ++i) {
          const double x = grid.x_at(i);
          const std::size_t cell = j * grid.nx + i;
          Footprint fp{x, x, v, v};
          for (std::size_t u = 0; u < nu; ++u) {
            const auto [xn, vn] = step(x, v, controls_[u]);
            successors_[cell * nu + u] = {xn, vn};
            fp.x_min = std::min(fp.x_min, xn);
            fp.x_max = std::max(fp.x_max, xn);
            fp.v_min = std::min(fp.v_min, vn);
            fp.v_max = std::max(fp.v_max, vn);
          }
          footprints_[cell] = fp;
        }
      },
      threads_);
}

RegionLabel IncrementalBoundaryGrid::label_cell(std::size_t i, std::size_t j,
                                                const UnsafeFn& unsafe) const {
  const auto& grid = result_.grid;
  const std::size_t cell = j * grid.nx + i;
  if (unsafe(grid.x_at(i), grid.v_at(j))) return RegionLabel::kUnsafe;
  const std::size_t nu = controls_.size();
  // Same control order and early exit as the direct sweep -> same label.
  for (std::size_t u = 0; u < nu; ++u) {
    const auto& [xn, vn] = successors_[cell * nu + u];
    if (unsafe(xn, vn)) return RegionLabel::kBoundary;
  }
  return RegionLabel::kSafe;
}

const PreimageResult& IncrementalBoundaryGrid::relabel(const UnsafeFn& unsafe) {
  CVSAFE_EXPECTS(unsafe != nullptr, "unsafe predicate must be callable");
  const auto& grid = result_.grid;
  util::parallel_for(
      grid.nv,
      [&](std::size_t j) {
        for (std::size_t i = 0; i < grid.nx; ++i) {
          result_.labels[j * grid.nx + i] = label_cell(i, j, unsafe);
        }
      },
      threads_);
  primed_ = true;
  return result_;
}

const PreimageResult& IncrementalBoundaryGrid::relabel(
    const UnsafeFn& unsafe, const ChangedRegion& changed) {
  CVSAFE_EXPECTS(unsafe != nullptr, "unsafe predicate must be callable");
  CVSAFE_EXPECTS(primed_, "incremental relabel requires a prior full relabel");
  const auto& grid = result_.grid;
  util::parallel_for(
      grid.nv,
      [&](std::size_t j) {
        for (std::size_t i = 0; i < grid.nx; ++i) {
          const std::size_t cell = j * grid.nx + i;
          if (!footprints_[cell].intersects(changed)) continue;
          result_.labels[cell] = label_cell(i, j, unsafe);
        }
      },
      threads_);
  return result_;
}

}  // namespace cvsafe::core
