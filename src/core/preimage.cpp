#include "cvsafe/core/preimage.hpp"

#include "cvsafe/util/contracts.hpp"

namespace cvsafe::core {

std::vector<double> sample_controls(double u_min, double u_max,
                                    std::size_t count) {
  CVSAFE_EXPECTS(count >= 2, "control sampling needs at least 2 points");
  CVSAFE_EXPECTS(u_min <= u_max, "control range must be ordered");
  std::vector<double> controls;
  controls.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    controls.push_back(u_min + (u_max - u_min) * static_cast<double>(i) /
                                   static_cast<double>(count - 1));
  }
  return controls;
}

PreimageResult compute_boundary_grid(const PreimageGrid& grid,
                                     const StepFn& step,
                                     const UnsafeFn& unsafe,
                                     const std::vector<double>& controls) {
  CVSAFE_EXPECTS(!controls.empty(), "boundary grid needs control samples");
  CVSAFE_EXPECTS(grid.nx > 0 && grid.nv > 0, "preimage grid must be non-empty");
  CVSAFE_EXPECTS(step != nullptr && unsafe != nullptr,
                 "step and unsafe predicates must be callable");
  PreimageResult result;
  result.grid = grid;
  result.labels.assign(grid.nx * grid.nv, RegionLabel::kSafe);
  for (std::size_t j = 0; j < grid.nv; ++j) {
    for (std::size_t i = 0; i < grid.nx; ++i) {
      const double x = grid.x_at(i);
      const double v = grid.v_at(j);
      RegionLabel label = RegionLabel::kSafe;
      if (unsafe(x, v)) {
        label = RegionLabel::kUnsafe;
      } else {
        for (const double u : controls) {
          const auto [xn, vn] = step(x, v, u);
          if (unsafe(xn, vn)) {
            label = RegionLabel::kBoundary;
            break;
          }
        }
      }
      result.labels[j * grid.nx + i] = label;
    }
  }
  return result;
}

}  // namespace cvsafe::core
