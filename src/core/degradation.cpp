#include "cvsafe/core/degradation.hpp"

#include "cvsafe/util/contracts.hpp"

namespace cvsafe::core {

const char* to_string(DegradationLevel level) {
  switch (level) {
    case DegradationLevel::kFull:
      return "full";
    case DegradationLevel::kReachOnly:
      return "reach-only";
    case DegradationLevel::kSensorOnly:
      return "sensor-only";
    case DegradationLevel::kEmergencyBiased:
      return "emergency-biased";
  }
  return "?";
}

void LadderConfig::validate() const {
  CVSAFE_EXPECTS(stale_budget > 0.0 && stale_budget < 1e9,
                 "stale budget must be positive and finite");
  CVSAFE_EXPECTS(lost_budget >= stale_budget && lost_budget < 1e9,
                 "lost budget must be >= stale budget and finite");
  CVSAFE_EXPECTS(recover_margin > 0.0 && recover_margin <= 1.0,
                 "recover margin must lie in (0, 1]");
  CVSAFE_EXPECTS(recover_steps >= 1,
                 "recovery needs at least one clear step");
}

DegradationLevel DegradationLadder::target(const DegradationSignals& s,
                                           double scale) const {
  return ladder_target(config_, s, scale);
}

DegradationLevel DegradationLadder::update(std::size_t step,
                                           const DegradationSignals& s) {
  const DegradationLevel tgt = target(s, 1.0);
  const auto record = [&](DegradationLevel to) {
    ++stats_.transitions;
    if (transitions_.size() < kMaxTransitions) {
      transitions_.push_back(LadderTransition{step, level_, to});
    }
    if (obs::recording(recorder_)) {
      recorder_->ladder(to_string(level_), to_string(to));
    }
    level_ = to;
  };
  if (static_cast<int>(tgt) > static_cast<int>(level_)) {
    // Degrading is immediate: the planner must not run one step on
    // information the signals no longer justify.
    record(tgt);
    clear_streak_ = 0;
  } else if (static_cast<int>(tgt) < static_cast<int>(level_)) {
    // Recovery is hysteretic: one rung at a time, after recover_steps
    // consecutive steps that clear the tightened budgets.
    if (static_cast<int>(target(s, config_.recover_margin)) <
        static_cast<int>(level_)) {
      ++clear_streak_;
    } else {
      clear_streak_ = 0;
    }
    if (clear_streak_ >= config_.recover_steps) {
      record(static_cast<DegradationLevel>(static_cast<int>(level_) - 1));
      clear_streak_ = 0;
    }
  } else {
    clear_streak_ = 0;
  }
  ++stats_.steps_at[static_cast<std::size_t>(level_)];
  return level_;
}

}  // namespace cvsafe::core
