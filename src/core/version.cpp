#include "cvsafe/core/version.hpp"

namespace cvsafe::core {

const char* version() { return "1.0.0"; }

}  // namespace cvsafe::core
