#include "cvsafe/fault/fault_plan.hpp"

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>
#include <stdexcept>

#include "cvsafe/util/config_file.hpp"
#include "cvsafe/util/contracts.hpp"

namespace cvsafe::fault {
namespace {

// Written so NaN (failing every ordered comparison) violates the check.
// ([[maybe_unused]]: contract-free builds compile the checks out.)
void expect_prob([[maybe_unused]] double p) {
  CVSAFE_EXPECTS(p >= 0.0 && p <= 1.0,
                 "fault probability must lie in [0,1]");
}

void expect_magnitude([[maybe_unused]] double m) {
  CVSAFE_EXPECTS(m >= 0.0 && m < 1e9,
                 "fault magnitude must be non-negative and finite");
}

void validate_windows(const std::vector<FaultWindow>& windows) {
  for ([[maybe_unused]] const auto& w : windows) {
    CVSAFE_EXPECTS(w.begin >= 0.0 && w.end >= w.begin && w.end < 1e9,
                   "fault window must satisfy 0 <= begin <= end, finite");
  }
}

/// %.17g — enough digits that std::stod recovers the double bit-exactly.
std::string fmt_double(double value) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.17g", value);
  return buf;
}

/// Serializes windows as the "b0:e0,b1:e1,..." form parse_windows reads.
std::string format_windows(const std::vector<FaultWindow>& windows) {
  std::string out;
  for (std::size_t i = 0; i < windows.size(); ++i) {
    if (i > 0) out += ',';
    out += fmt_double(windows[i].begin);
    out += ':';
    out += fmt_double(windows[i].end);
  }
  return out;
}

/// Parses "b0:e0,b1:e1,..." into windows.
std::vector<FaultWindow> parse_windows(const std::string& text) {
  std::vector<FaultWindow> out;
  std::istringstream is(text);
  std::string pair;
  while (std::getline(is, pair, ',')) {
    const auto colon = pair.find(':');
    if (colon == std::string::npos) {
      throw std::runtime_error("fault window must be begin:end, got '" +
                               pair + "'");
    }
    out.push_back(FaultWindow{std::stod(pair.substr(0, colon)),
                              std::stod(pair.substr(colon + 1))});
  }
  return out;
}

}  // namespace

bool ChannelFaultModel::any() const {
  return delay_jitter_max > 0.0 || reorder_prob > 0.0 ||
         duplicate_prob > 0.0 || corrupt_prob > 0.0 ||
         stale_spoof_prob > 0.0 || !blackouts.empty();
}

bool SensorFaultModel::any() const {
  // cvsafe-lint: allow(float-compare) exact-zero means "feature disabled"
  return dropout_prob > 0.0 || bias_drift_rate != 0.0 || !stuck.empty();
}

void FaultPlan::validate() const {
  expect_magnitude(channel.delay_jitter_max);
  expect_prob(channel.reorder_prob);
  CVSAFE_EXPECTS(channel.reorder_delay_min >= 0.0 &&
                     channel.reorder_delay_max >= channel.reorder_delay_min &&
                     channel.reorder_delay_max < 1e9,
                 "reorder delay range must be ordered, non-negative, finite");
  expect_prob(channel.duplicate_prob);
  expect_magnitude(channel.duplicate_lag_max);
  expect_prob(channel.corrupt_prob);
  expect_magnitude(channel.corrupt_delta_p);
  expect_magnitude(channel.corrupt_delta_v);
  expect_magnitude(channel.corrupt_delta_a);
  expect_prob(channel.stale_spoof_prob);
  expect_magnitude(channel.stale_spoof_max);
  validate_windows(channel.blackouts);
  expect_prob(sensor.dropout_prob);
  CVSAFE_EXPECTS(sensor.bias_drift_rate > -1e9 &&
                     sensor.bias_drift_rate < 1e9,
                 "sensor bias drift rate must be finite");
  validate_windows(sensor.stuck);
}

FaultPlan FaultPlan::none() { return FaultPlan{}; }

FaultPlan FaultPlan::delay_jitter() {
  FaultPlan p;
  p.name = "delay-jitter";
  p.channel.delay_jitter_max = 0.3;
  return p;
}

FaultPlan FaultPlan::reorder_duplicate() {
  FaultPlan p;
  p.name = "reorder-duplicate";
  p.channel.reorder_prob = 0.3;
  p.channel.reorder_delay_min = 0.15;
  p.channel.reorder_delay_max = 0.35;
  p.channel.duplicate_prob = 0.3;
  p.channel.duplicate_lag_max = 0.15;
  return p;
}

FaultPlan FaultPlan::corruption() {
  FaultPlan p;
  p.name = "corruption";
  p.channel.corrupt_prob = 0.2;
  p.channel.corrupt_delta_p = 2.0;
  p.channel.corrupt_delta_v = 1.5;
  p.channel.corrupt_delta_a = 1.0;
  p.channel.stale_spoof_prob = 0.1;
  p.channel.stale_spoof_max = 0.4;
  return p;
}

FaultPlan FaultPlan::blackout() {
  FaultPlan p;
  p.name = "blackout";
  p.channel.blackouts = {{2.0, 4.0}, {8.0, 10.0}, {14.0, 16.0}};
  return p;
}

FaultPlan FaultPlan::sensor_freeze() {
  FaultPlan p;
  p.name = "sensor-freeze";
  p.sensor.dropout_prob = 0.2;
  p.sensor.bias_drift_rate = 0.02;
  p.sensor.stuck = {{3.0, 5.0}, {10.0, 12.0}};
  return p;
}

std::optional<FaultPlan> FaultPlan::preset(std::string_view name) {
  if (name == "none") return none();
  if (name == "delay-jitter") return delay_jitter();
  if (name == "reorder-duplicate") return reorder_duplicate();
  if (name == "corruption") return corruption();
  if (name == "blackout") return blackout();
  if (name == "sensor-freeze") return sensor_freeze();
  return std::nullopt;
}

std::vector<std::string> FaultPlan::preset_names() {
  return {"none",     "delay-jitter", "reorder-duplicate",
          "corruption", "blackout",   "sensor-freeze"};
}

FaultPlan FaultPlan::from_file(const std::string& path) {
  const util::ConfigFile cfg = util::ConfigFile::load(path);
  // Reject unknown keys up front: a typo'd knob must not silently run
  // the unfaulted baseline.
  static const std::set<std::string> kKnownKeys = {
      "name",
      "seed",
      "channel.delay_jitter_max",
      "channel.reorder_prob",
      "channel.reorder_delay_min",
      "channel.reorder_delay_max",
      "channel.duplicate_prob",
      "channel.duplicate_lag_max",
      "channel.corrupt_prob",
      "channel.corrupt_delta_p",
      "channel.corrupt_delta_v",
      "channel.corrupt_delta_a",
      "channel.stale_spoof_prob",
      "channel.stale_spoof_max",
      "channel.blackouts",
      "sensor.dropout_prob",
      "sensor.bias_drift_rate",
      "sensor.stuck",
  };
  for (const auto& [key, value] : cfg.entries()) {
    if (kKnownKeys.count(key) == 0) {
      throw std::runtime_error("unknown fault-plan key '" + key + "' in " +
                               path);
    }
  }
  FaultPlan p;
  p.name = cfg.get_string("name", "file");
  p.seed = static_cast<std::uint64_t>(
      cfg.get_int("seed", static_cast<std::int64_t>(p.seed)));
  auto& ch = p.channel;
  ch.delay_jitter_max = cfg.get_double("channel.delay_jitter_max", 0.0);
  ch.reorder_prob = cfg.get_double("channel.reorder_prob", 0.0);
  ch.reorder_delay_min =
      cfg.get_double("channel.reorder_delay_min", ch.reorder_delay_min);
  ch.reorder_delay_max =
      cfg.get_double("channel.reorder_delay_max", ch.reorder_delay_max);
  ch.duplicate_prob = cfg.get_double("channel.duplicate_prob", 0.0);
  ch.duplicate_lag_max =
      cfg.get_double("channel.duplicate_lag_max", ch.duplicate_lag_max);
  ch.corrupt_prob = cfg.get_double("channel.corrupt_prob", 0.0);
  ch.corrupt_delta_p = cfg.get_double("channel.corrupt_delta_p", 0.0);
  ch.corrupt_delta_v = cfg.get_double("channel.corrupt_delta_v", 0.0);
  ch.corrupt_delta_a = cfg.get_double("channel.corrupt_delta_a", 0.0);
  ch.stale_spoof_prob = cfg.get_double("channel.stale_spoof_prob", 0.0);
  ch.stale_spoof_max = cfg.get_double("channel.stale_spoof_max", 0.0);
  if (const auto w = cfg.get("channel.blackouts")) {
    ch.blackouts = parse_windows(*w);
  }
  auto& se = p.sensor;
  se.dropout_prob = cfg.get_double("sensor.dropout_prob", 0.0);
  se.bias_drift_rate = cfg.get_double("sensor.bias_drift_rate", 0.0);
  if (const auto w = cfg.get("sensor.stuck")) se.stuck = parse_windows(*w);
  p.validate();
  return p;
}

std::string FaultPlan::to_ini() const {
  validate();
  std::string out;
  out += "# cvsafe fault plan (FaultPlan::to_ini); replay with --faults FILE\n";
  out += "name = " + name + "\n";
  out += "seed = " + std::to_string(seed) + "\n";
  out += "\n[channel]\n";
  out += "delay_jitter_max = " + fmt_double(channel.delay_jitter_max) + "\n";
  out += "reorder_prob = " + fmt_double(channel.reorder_prob) + "\n";
  out += "reorder_delay_min = " + fmt_double(channel.reorder_delay_min) + "\n";
  out += "reorder_delay_max = " + fmt_double(channel.reorder_delay_max) + "\n";
  out += "duplicate_prob = " + fmt_double(channel.duplicate_prob) + "\n";
  out += "duplicate_lag_max = " + fmt_double(channel.duplicate_lag_max) + "\n";
  out += "corrupt_prob = " + fmt_double(channel.corrupt_prob) + "\n";
  out += "corrupt_delta_p = " + fmt_double(channel.corrupt_delta_p) + "\n";
  out += "corrupt_delta_v = " + fmt_double(channel.corrupt_delta_v) + "\n";
  out += "corrupt_delta_a = " + fmt_double(channel.corrupt_delta_a) + "\n";
  out += "stale_spoof_prob = " + fmt_double(channel.stale_spoof_prob) + "\n";
  out += "stale_spoof_max = " + fmt_double(channel.stale_spoof_max) + "\n";
  if (!channel.blackouts.empty()) {
    out += "blackouts = " + format_windows(channel.blackouts) + "\n";
  }
  out += "\n[sensor]\n";
  out += "dropout_prob = " + fmt_double(sensor.dropout_prob) + "\n";
  out += "bias_drift_rate = " + fmt_double(sensor.bias_drift_rate) + "\n";
  if (!sensor.stuck.empty()) {
    out += "stuck = " + format_windows(sensor.stuck) + "\n";
  }
  return out;
}

void FaultPlan::to_file(const std::string& path) const {
  const std::string text = to_ini();
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) {
    throw std::runtime_error("cannot write fault plan to " + path);
  }
  out << text;
  out.flush();
  if (!out.good()) {
    throw std::runtime_error("short write saving fault plan to " + path);
  }
}

}  // namespace cvsafe::fault
