#include "cvsafe/fault/faulty_sensor.hpp"

namespace cvsafe::fault {

std::optional<sensing::SensorReading> FaultySensor::sense(
    const vehicle::VehicleSnapshot& truth, util::Rng& rng) {
  auto reading = inner_.sense(truth, rng);
  if (!reading || !model_) return reading;
  const SensorFaultModel& m = *model_;
  const auto trace = [&](obs::FaultKind kind, double value) {
    if (obs::recording(recorder_)) recorder_->fault(kind, value);
  };
  if (m.dropout_prob > 0.0 && fault_rng_.bernoulli(m.dropout_prob)) {
    ++stats_.dropped;
    trace(obs::FaultKind::kSensorDropped, reading->t);
    return std::nullopt;
  }
  for (const auto& w : m.stuck) {
    if (w.contains(reading->t) && last_) {
      ++stats_.stuck;
      trace(obs::FaultKind::kSensorStuck, reading->t - last_->t);
      sensing::SensorReading frozen = *last_;
      frozen.t = reading->t;  // keep time monotone for the Kalman filter
      return frozen;
    }
  }
  // cvsafe-lint: allow(float-compare) exact-zero means "drift disabled"
  if (m.bias_drift_rate != 0.0) {
    const double bias = m.bias_drift_rate * reading->t;
    reading->p += bias;
    ++stats_.biased;
    trace(obs::FaultKind::kSensorBiased, bias);
  }
  last_ = *reading;
  return reading;
}

}  // namespace cvsafe::fault
