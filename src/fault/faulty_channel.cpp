#include "cvsafe/fault/faulty_channel.hpp"

namespace cvsafe::fault {

void FaultyChannel::offer_faulty(const comm::Message& msg, util::Rng& rng) {
  if (!inner_.admit(msg, rng)) return;
  const double base_delivery = msg.stamp() + inner_.config().delay;
  const ChannelFaultModel& m = *model_;
  for (const auto& w : m.blackouts) {
    if (w.contains(msg.stamp())) {
      ++stats_.blackout_dropped;
      return;
    }
  }
  comm::Message out = msg;
  if (m.corrupt_prob > 0.0 && fault_rng_.bernoulli(m.corrupt_prob)) {
    out.data.state.p +=
        fault_rng_.uniform(-m.corrupt_delta_p, m.corrupt_delta_p);
    out.data.state.v +=
        fault_rng_.uniform(-m.corrupt_delta_v, m.corrupt_delta_v);
    out.data.a += fault_rng_.uniform(-m.corrupt_delta_a, m.corrupt_delta_a);
    ++stats_.corrupted;
  }
  if (m.stale_spoof_prob > 0.0 && fault_rng_.bernoulli(m.stale_spoof_prob)) {
    out.data.t -= fault_rng_.uniform(0.0, m.stale_spoof_max);
    ++stats_.stale_spoofed;
  }
  double delivery = base_delivery;
  if (m.delay_jitter_max > 0.0) {
    delivery += fault_rng_.uniform(0.0, m.delay_jitter_max);
    ++stats_.jittered;
  }
  if (m.reorder_prob > 0.0 && fault_rng_.bernoulli(m.reorder_prob)) {
    delivery += fault_rng_.uniform(m.reorder_delay_min, m.reorder_delay_max);
    ++stats_.reordered;
  }
  inner_.enqueue(out, delivery);
  if (m.duplicate_prob > 0.0 && fault_rng_.bernoulli(m.duplicate_prob)) {
    inner_.enqueue(out,
                   delivery + fault_rng_.uniform(0.0, m.duplicate_lag_max));
    ++stats_.duplicated;
  }
}

}  // namespace cvsafe::fault
