#include "cvsafe/fault/faulty_channel.hpp"

namespace cvsafe::fault {

void FaultyChannel::offer_faulty(const comm::Message& msg, util::Rng& rng) {
  if (!inner_.admit(msg, rng)) return;
  const auto trace = [&](obs::FaultKind kind, double value) {
    if (obs::recording(recorder_)) recorder_->fault(kind, value);
  };
  const double base_delivery = msg.stamp() + inner_.config().delay;
  const ChannelFaultModel& m = *model_;
  for (const auto& w : m.blackouts) {
    if (w.contains(msg.stamp())) {
      ++stats_.blackout_dropped;
      trace(obs::FaultKind::kBlackoutDropped, msg.stamp());
      return;
    }
  }
  comm::Message out = msg;
  if (m.corrupt_prob > 0.0 && fault_rng_.bernoulli(m.corrupt_prob)) {
    const double dp =
        fault_rng_.uniform(-m.corrupt_delta_p, m.corrupt_delta_p);
    out.data.state.p += dp;
    out.data.state.v +=
        fault_rng_.uniform(-m.corrupt_delta_v, m.corrupt_delta_v);
    out.data.a += fault_rng_.uniform(-m.corrupt_delta_a, m.corrupt_delta_a);
    ++stats_.corrupted;
    trace(obs::FaultKind::kCorrupted, dp);
  }
  if (m.stale_spoof_prob > 0.0 && fault_rng_.bernoulli(m.stale_spoof_prob)) {
    const double rewind = fault_rng_.uniform(0.0, m.stale_spoof_max);
    out.data.t -= rewind;
    ++stats_.stale_spoofed;
    trace(obs::FaultKind::kStaleSpoofed, rewind);
  }
  double delivery = base_delivery;
  if (m.delay_jitter_max > 0.0) {
    const double jitter = fault_rng_.uniform(0.0, m.delay_jitter_max);
    delivery += jitter;
    ++stats_.jittered;
    trace(obs::FaultKind::kJittered, jitter);
  }
  if (m.reorder_prob > 0.0 && fault_rng_.bernoulli(m.reorder_prob)) {
    const double extra =
        fault_rng_.uniform(m.reorder_delay_min, m.reorder_delay_max);
    delivery += extra;
    ++stats_.reordered;
    trace(obs::FaultKind::kReordered, extra);
  }
  inner_.enqueue(out, delivery);
  if (m.duplicate_prob > 0.0 && fault_rng_.bernoulli(m.duplicate_prob)) {
    const double lag = fault_rng_.uniform(0.0, m.duplicate_lag_max);
    inner_.enqueue(out, delivery + lag);
    ++stats_.duplicated;
    trace(obs::FaultKind::kDuplicated, lag);
  }
}

}  // namespace cvsafe::fault
