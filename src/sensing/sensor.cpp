#include "cvsafe/sensing/sensor.hpp"

namespace cvsafe::sensing {
namespace {
constexpr double kTimeEps = 1e-9;
}

SensorConfig SensorConfig::uniform(double delta, double period) {
  return SensorConfig{period, delta, delta, delta};
}

std::optional<SensorReading> Sensor::sense(
    const vehicle::VehicleSnapshot& truth, util::Rng& rng) {
  if (truth.t + kTimeEps < next_sense_time_) return std::nullopt;
  next_sense_time_ += config_.period;
  SensorReading r;
  r.t = truth.t;
  r.p = truth.state.p + rng.uniform(-config_.delta_p, config_.delta_p);
  r.v = truth.state.v + rng.uniform(-config_.delta_v, config_.delta_v);
  r.a = truth.a + rng.uniform(-config_.delta_a, config_.delta_a);
  return r;
}

}  // namespace cvsafe::sensing
