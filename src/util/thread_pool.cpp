#include "cvsafe/util/thread_pool.hpp"

#include <algorithm>
#include <atomic>

#include "cvsafe/util/contracts.hpp"

namespace cvsafe::util {

ThreadPool::ThreadPool(std::size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  workers_.reserve(num_threads);
  for (std::size_t i = 0; i < num_threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stopping_ = true;
  }
  task_available_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
  CVSAFE_EXPECTS(task != nullptr, "cannot submit an empty task");
  {
    std::lock_guard lock(mutex_);
    CVSAFE_EXPECTS(!stopping_, "cannot submit to a stopping pool");
    tasks_.push(std::move(task));
  }
  task_available_.notify_one();
}

void ThreadPool::wait_idle() {
  std::unique_lock lock(mutex_);
  all_done_.wait(lock, [this] { return tasks_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      task_available_.wait(lock,
                           [this] { return stopping_ || !tasks_.empty(); });
      if (tasks_.empty()) return;  // stopping_ and drained
      task = std::move(tasks_.front());
      tasks_.pop();
      ++active_;
    }
    task();
    {
      std::lock_guard lock(mutex_);
      --active_;
      if (tasks_.empty() && active_ == 0) all_done_.notify_all();
    }
  }
}

void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t num_threads) {
  CVSAFE_EXPECTS(n == 0 || body != nullptr,
                 "parallel_for needs a callable body");
  if (n == 0) return;
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, n);
  if (num_threads <= 1 || n < 4) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }
  std::atomic<std::size_t> next{0};
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (std::size_t t = 0; t < num_threads; ++t) {
    threads.emplace_back([&] {
      for (;;) {
        const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
        if (i >= n) return;
        body(i);
      }
    });
  }
  for (auto& th : threads) th.join();
}

}  // namespace cvsafe::util
