#include "cvsafe/util/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace cvsafe::util {

void Table::set_header(std::vector<std::string> header) {
  header_ = std::move(header);
}

void Table::add_row(std::vector<std::string> row) {
  rows_.push_back(Row{std::move(row), false});
}

void Table::add_separator() { rows_.push_back(Row{{}, true}); }

std::string Table::num(double v, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << v;
  return os.str();
}

std::string Table::percent(double fraction, int precision) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(precision) << fraction * 100.0 << '%';
  return os.str();
}

void Table::print(std::ostream& os) const {
  std::size_t ncols = header_.size();
  for (const auto& r : rows_) ncols = std::max(ncols, r.cells.size());

  std::vector<std::size_t> widths(ncols, 0);
  auto measure = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < cells.size(); ++i)
      widths[i] = std::max(widths[i], cells[i].size());
  };
  measure(header_);
  for (const auto& r : rows_)
    if (!r.separator) measure(r.cells);

  std::size_t total = 0;
  for (auto w : widths) total += w + 3;
  if (total >= 1) total -= 1;

  auto print_rule = [&] { os << std::string(total, '-') << '\n'; };
  auto print_cells = [&](const std::vector<std::string>& cells) {
    for (std::size_t i = 0; i < ncols; ++i) {
      const std::string& cell = i < cells.size() ? cells[i] : std::string{};
      os << std::left << std::setw(static_cast<int>(widths[i])) << cell;
      if (i + 1 < ncols) os << " | ";
    }
    os << '\n';
  };

  if (!title_.empty()) os << title_ << '\n';
  print_rule();
  if (!header_.empty()) {
    print_cells(header_);
    print_rule();
  }
  for (const auto& r : rows_) {
    if (r.separator) {
      print_rule();
    } else {
      print_cells(r.cells);
    }
  }
  print_rule();
}

std::ostream& operator<<(std::ostream& os, const Table& t) {
  t.print(os);
  return os;
}

}  // namespace cvsafe::util
