#include "cvsafe/util/interval_set.hpp"

#include <algorithm>
#include <ostream>

namespace cvsafe::util {

IntervalSet::IntervalSet(const Interval& iv) {
  if (!iv.empty()) parts_.push_back(iv);
}

IntervalSet::IntervalSet(std::initializer_list<Interval> ivs) {
  for (const auto& iv : ivs) {
    if (!iv.empty()) parts_.push_back(iv);
  }
  normalize();
}

void IntervalSet::normalize() {
  if (parts_.size() < 2) return;
  std::sort(parts_.begin(), parts_.end(),
            [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
  std::vector<Interval> merged;
  merged.reserve(parts_.size());
  for (const auto& iv : parts_) {
    CVSAFE_ASSERT(!iv.empty(), "normalize must never see empty parts");
    if (!merged.empty() && iv.lo <= merged.back().hi) {
      merged.back().hi = std::max(merged.back().hi, iv.hi);
    } else {
      merged.push_back(iv);
    }
  }
  parts_ = std::move(merged);
}

double IntervalSet::measure() const {
  double m = 0.0;
  for (const auto& iv : parts_) m += iv.width();
  return m;
}

Interval IntervalSet::hull() const {
  if (empty()) return Interval::empty_interval();
  return Interval{parts_.front().lo, parts_.back().hi};
}

bool IntervalSet::contains(double x) const {
  for (const auto& iv : parts_) {
    if (iv.contains(x)) return true;
    if (iv.lo > x) break;
  }
  return false;
}

bool IntervalSet::intersects(const Interval& target) const {
  if (target.empty()) return false;
  for (const auto& iv : parts_) {
    if (iv.intersects(target)) return true;
    if (iv.lo > target.hi) break;
  }
  return false;
}

void IntervalSet::insert(const Interval& iv) {
  if (iv.empty()) return;
  parts_.push_back(iv);
  normalize();
}

IntervalSet IntervalSet::unite(const IntervalSet& other) const {
  IntervalSet out = *this;
  out.parts_.insert(out.parts_.end(), other.parts_.begin(),
                    other.parts_.end());
  out.normalize();
  return out;
}

IntervalSet IntervalSet::intersect(const Interval& iv) const {
  IntervalSet out;
  if (iv.empty()) return out;
  for (const auto& part : parts_) {
    const Interval clipped = part.intersect(iv);
    if (!clipped.empty()) out.parts_.push_back(clipped);
  }
  return out;  // already sorted and disjoint
}

IntervalSet IntervalSet::after(double t) const {
  IntervalSet out;
  for (const auto& part : parts_) {
    if (part.hi < t) continue;
    out.parts_.push_back(Interval{std::max(part.lo, t), part.hi});
  }
  return out;
}

std::optional<double> IntervalSet::first_point_after(double t) const {
  for (const auto& part : parts_) {
    if (part.hi >= t) return std::max(part.lo, t);
  }
  return std::nullopt;
}

std::ostream& operator<<(std::ostream& os, const IntervalSet& s) {
  if (s.empty()) return os << "{}";
  os << '{';
  for (std::size_t i = 0; i < s.size(); ++i) {
    if (i) os << " u ";
    os << s[i];
  }
  return os << '}';
}

}  // namespace cvsafe::util
