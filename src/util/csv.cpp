#include "cvsafe/util/csv.hpp"

#include <sstream>

namespace cvsafe::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {}

std::string CsvWriter::quote(const std::string& s) {
  if (s.find_first_of(",\"\n") == std::string::npos) return s;
  std::string q = "\"";
  for (char c : s) {
    if (c == '"') q += '"';
    q += c;
  }
  q += '"';
  return q;
}

void CsvWriter::header(const std::vector<std::string>& names) {
  raw_row(names);
}

void CsvWriter::row(const std::vector<double>& values) {
  std::ostringstream line;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) line << ',';
    line << values[i];
  }
  out_ << line.str() << '\n';
}

void CsvWriter::raw_row(const std::vector<std::string>& cells) {
  for (std::size_t i = 0; i < cells.size(); ++i) {
    if (i) out_ << ',';
    out_ << quote(cells[i]);
  }
  out_ << '\n';
}

}  // namespace cvsafe::util
