#include "cvsafe/util/linalg.hpp"

#include <cmath>
#include <ostream>

#include "cvsafe/util/contracts.hpp"

namespace cvsafe::util {

Mat2 Mat2::inverse() const {
  const double det = determinant();
  // cvsafe-lint: allow(float-compare) exact singularity guard
  CVSAFE_EXPECTS(det != 0.0, "Mat2::inverse of singular matrix");
  const double inv = 1.0 / det;
  return {d * inv, -b * inv, -c * inv, a * inv};
}

bool Mat2::is_symmetric(double tol) const { return std::abs(b - c) <= tol; }

bool Mat2::is_positive_semidefinite(double tol) const {
  if (!is_symmetric(std::sqrt(tol))) return false;
  // Eigenvalues of a symmetric 2x2 are (tr +- sqrt(tr^2 - 4 det)) / 2;
  // both are >= 0 iff trace >= 0 and determinant >= 0.
  return trace() >= -tol && determinant() >= -tol;
}

std::ostream& operator<<(std::ostream& os, const Vec2& v) {
  return os << '(' << v.x << ", " << v.y << ')';
}

std::ostream& operator<<(std::ostream& os, const Mat2& m) {
  return os << "[[" << m.a << ", " << m.b << "], [" << m.c << ", " << m.d
            << "]]";
}

}  // namespace cvsafe::util
