#include "cvsafe/util/rng.hpp"

#include <cassert>
#include <cmath>

namespace cvsafe::util {
namespace {

std::uint64_t splitmix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}

}  // namespace

void Rng::reseed(std::uint64_t seed) {
  std::uint64_t sm = seed;
  for (auto& s : state_) s = splitmix64(sm);
  has_cached_normal_ = false;
}

std::uint64_t Rng::next_u64() {
  const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = rotl(state_[3], 45);
  return result;
}

double Rng::uniform01() {
  // 53 random mantissa bits -> uniform in [0, 1).
  return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double Rng::uniform(double lo, double hi) {
  assert(lo <= hi);
  return lo + (hi - lo) * uniform01();
}

std::int64_t Rng::uniform_int(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const auto range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) return static_cast<std::int64_t>(next_u64());  // full range
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = max() - max() % range;
  std::uint64_t v = next_u64();
  while (v >= limit) v = next_u64();
  return lo + static_cast<std::int64_t>(v % range);
}

bool Rng::bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return uniform01() < p;
}

double Rng::normal() {
  if (has_cached_normal_) {
    has_cached_normal_ = false;
    return cached_normal_;
  }
  double u1 = uniform01();
  while (u1 <= 0.0) u1 = uniform01();
  const double u2 = uniform01();
  const double r = std::sqrt(-2.0 * std::log(u1));
  const double theta = 2.0 * M_PI * u2;
  cached_normal_ = r * std::sin(theta);
  has_cached_normal_ = true;
  return r * std::cos(theta);
}

double Rng::normal(double mean, double stddev) {
  return mean + stddev * normal();
}

Rng Rng::split() { return Rng(next_u64()); }

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream) {
  std::uint64_t x = base;
  const std::uint64_t mixed_base = splitmix64(x);
  x = mixed_base ^ stream;
  return splitmix64(x);
}

}  // namespace cvsafe::util
