#include "cvsafe/util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "cvsafe/util/rng.hpp"

namespace cvsafe::util {

RunningStats::RunningStats()
    : min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {}

void RunningStats::add(double x) {
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

double RunningStats::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_ - 1);
}

double RunningStats::stddev() const { return std::sqrt(variance()); }

void RunningStats::merge(const RunningStats& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double rmse(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size() && !a.empty());
  double s = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double d = a[i] - b[i];
    s += d * d;
  }
  return std::sqrt(s / static_cast<double>(a.size()));
}

double quantile(std::span<const double> xs, double q) {
  assert(!xs.empty());
  assert(q >= 0.0 && q <= 1.0);
  std::vector<double> sorted(xs.begin(), xs.end());
  std::sort(sorted.begin(), sorted.end());
  const double pos = q * static_cast<double>(sorted.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const auto hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return sorted[lo] * (1.0 - frac) + sorted[hi] * frac;
}

double fraction_positive(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::size_t n = 0;
  for (double x : xs)
    if (x > 0.0) ++n;
  return static_cast<double>(n) / static_cast<double>(xs.size());
}

ConfidenceInterval bootstrap_mean_ci(std::span<const double> xs,
                                     double confidence, Rng& rng,
                                     std::size_t resamples) {
  assert(!xs.empty());
  assert(confidence > 0.0 && confidence < 1.0);
  assert(resamples >= 10);
  const auto n = xs.size();
  std::vector<double> means;
  means.reserve(resamples);
  for (std::size_t r = 0; r < resamples; ++r) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      sum += xs[static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(n) - 1))];
    }
    means.push_back(sum / static_cast<double>(n));
  }
  const double alpha = 1.0 - confidence;
  ConfidenceInterval ci;
  ci.lo = quantile(means, alpha / 2.0);
  ci.hi = quantile(means, 1.0 - alpha / 2.0);
  ci.point = mean(xs);
  return ci;
}

}  // namespace cvsafe::util
