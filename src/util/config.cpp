#include "cvsafe/util/config.hpp"

#include <cstdlib>

namespace cvsafe::util {

std::optional<std::string> env_string(const std::string& name) {
  const char* v = std::getenv(name.c_str());
  if (v == nullptr || *v == '\0') return std::nullopt;
  return std::string(v);
}

std::int64_t env_int(const std::string& name, std::int64_t fallback) {
  const auto s = env_string(name);
  if (!s) return fallback;
  char* end = nullptr;
  const long long v = std::strtoll(s->c_str(), &end, 10);
  if (end == s->c_str() || *end != '\0') return fallback;
  return static_cast<std::int64_t>(v);
}

double env_double(const std::string& name, double fallback) {
  const auto s = env_string(name);
  if (!s) return fallback;
  char* end = nullptr;
  const double v = std::strtod(s->c_str(), &end);
  if (end == s->c_str() || *end != '\0') return fallback;
  return v;
}

std::size_t bench_sims(std::size_t fallback) {
  const auto v = env_int("CVSAFE_SIMS", static_cast<std::int64_t>(fallback));
  return v > 0 ? static_cast<std::size_t>(v) : fallback;
}

std::size_t bench_threads() {
  const auto v = env_int("CVSAFE_THREADS", 0);
  return v > 0 ? static_cast<std::size_t>(v) : 0;
}

}  // namespace cvsafe::util
