#include "cvsafe/util/kinematics.hpp"

#include <cmath>
#include <limits>

#include "cvsafe/util/contracts.hpp"

namespace cvsafe::util {
namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
}  // namespace

std::optional<QuadraticRoots> solve_quadratic(double a, double b, double c) {
  if (a == 0.0) {  // cvsafe-lint: allow(float-compare) exact degenerate case
    if (b == 0.0) return std::nullopt;  // cvsafe-lint: allow(float-compare)
    const double r = -c / b;
    return QuadraticRoots{r, r};
  }
  const double disc = b * b - 4.0 * a * c;
  if (disc < 0.0) return std::nullopt;
  const double s = std::sqrt(disc);
  // Numerically stable: compute the larger-magnitude root first.
  const double q = -0.5 * (b + std::copysign(s, b));
  double r1 = q / a;
  double r2 = (q == 0.0) ? r1 : c / q;  // cvsafe-lint: allow(float-compare)
  if (r1 > r2) std::swap(r1, r2);
  return QuadraticRoots{r1, r2};
}

double braking_distance(double v, double a_min) {
  CVSAFE_EXPECTS(a_min < 0.0,
                 "braking_distance requires a deceleration limit");
  return -(v * v) / (2.0 * a_min);
}

double time_to_travel(double d, double v, double a, double v_limit) {
  if (d <= 0.0) return 0.0;
  // cvsafe-lint: allow(float-compare) exact zero-acceleration fast path
  if (a == 0.0 || cap_binding(v, a, v_limit)) {
    return (v > 0.0) ? d / v : kInf;
  }
  // Distance covered while ramping from v to the cap (d_th of Eq. 7).
  const double d_th = (v_limit * v_limit - v * v) / (2.0 * a);
  if (d > d_th) {
    // Must cruise at the cap for the remainder.
    if (v_limit <= 0.0) return kInf;
    return (v_limit - v) / a + (d - d_th) / v_limit;
  }
  // Reached within the ramp phase: solve 0.5 a t^2 + v t - d = 0.
  const double disc = v * v + 2.0 * a * d;
  if (disc < 0.0) return kInf;  // decelerates to a stop before covering d
  const double t = (-v + std::sqrt(disc)) / a;
  return (t >= 0.0) ? t : kInf;
}

}  // namespace cvsafe::util
