#include "cvsafe/util/config_file.hpp"

#include <algorithm>
#include <cctype>
#include <fstream>
#include <sstream>
#include <stdexcept>

namespace cvsafe::util {
namespace {

std::string trim(const std::string& s) {
  const auto begin = s.find_first_not_of(" \t\r");
  if (begin == std::string::npos) return {};
  const auto end = s.find_last_not_of(" \t\r");
  return s.substr(begin, end - begin + 1);
}

}  // namespace

ConfigFile ConfigFile::parse(std::istream& is) {
  ConfigFile config;
  std::string line;
  std::string section;
  std::size_t line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    const auto comment = line.find('#');
    if (comment != std::string::npos) line = line.substr(0, comment);
    line = trim(line);
    if (line.empty()) continue;
    if (line.front() == '[') {
      if (line.back() != ']' || line.size() < 3) {
        throw std::runtime_error("config: bad section at line " +
                                 std::to_string(line_no));
      }
      section = trim(line.substr(1, line.size() - 2));
      continue;
    }
    const auto eq = line.find('=');
    if (eq == std::string::npos) {
      throw std::runtime_error("config: expected key=value at line " +
                               std::to_string(line_no));
    }
    const std::string key = trim(line.substr(0, eq));
    const std::string value = trim(line.substr(eq + 1));
    if (key.empty()) {
      throw std::runtime_error("config: empty key at line " +
                               std::to_string(line_no));
    }
    config.values_[section.empty() ? key : section + "." + key] = value;
  }
  return config;
}

ConfigFile ConfigFile::load(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("config: cannot open " + path);
  return parse(in);
}

std::optional<std::string> ConfigFile::get(const std::string& key) const {
  const auto it = values_.find(key);
  if (it == values_.end()) return std::nullopt;
  return it->second;
}

std::string ConfigFile::get_string(const std::string& key,
                                   const std::string& dflt) const {
  return get(key).value_or(dflt);
}

double ConfigFile::get_double(const std::string& key, double dflt) const {
  const auto v = get(key);
  if (!v) return dflt;
  char* end = nullptr;
  const double parsed = std::strtod(v->c_str(), &end);
  if (end == v->c_str() || *end != '\0') {
    throw std::runtime_error("config: '" + key + "' is not a number: " + *v);
  }
  return parsed;
}

std::int64_t ConfigFile::get_int(const std::string& key,
                                 std::int64_t dflt) const {
  const auto v = get(key);
  if (!v) return dflt;
  char* end = nullptr;
  const long long parsed = std::strtoll(v->c_str(), &end, 10);
  if (end == v->c_str() || *end != '\0') {
    throw std::runtime_error("config: '" + key +
                             "' is not an integer: " + *v);
  }
  return parsed;
}

bool ConfigFile::get_bool(const std::string& key, bool dflt) const {
  const auto v = get(key);
  if (!v) return dflt;
  std::string lower = *v;
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  if (lower == "1" || lower == "true" || lower == "yes" || lower == "on") {
    return true;
  }
  if (lower == "0" || lower == "false" || lower == "no" || lower == "off") {
    return false;
  }
  throw std::runtime_error("config: '" + key + "' is not a boolean: " + *v);
}

}  // namespace cvsafe::util
