#include "cvsafe/util/contracts.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>

namespace cvsafe::util {

namespace {

std::atomic<ContractMode> g_mode{ContractMode::kAbort};

}  // namespace

ContractMode contract_mode() noexcept {
  return g_mode.load(std::memory_order_relaxed);
}

ContractMode set_contract_mode(ContractMode mode) noexcept {
  return g_mode.exchange(mode, std::memory_order_relaxed);
}

namespace detail {

void contract_violation(const char* kind, const char* condition,
                        const char* file, int line, const char* message) {
  std::string what = std::string("cvsafe contract violation: ") + kind +
                     " `" + condition + "` failed at " + file + ":" +
                     std::to_string(line);
  if (message != nullptr && message[0] != '\0') {
    what += ": ";
    what += message;
  }
  if (contract_mode() == ContractMode::kThrow) {
    throw ContractViolation(what);
  }
  // Last words before abort(); no recorder can outlive this.
  // cvsafe-lint: allow(no-raw-stream-logging)
  std::fprintf(stderr, "%s\n", what.c_str());
  std::abort();
}

}  // namespace detail

}  // namespace cvsafe::util
