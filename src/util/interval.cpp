#include "cvsafe/util/interval.hpp"

#include <limits>
#include <ostream>

namespace cvsafe::util {

Interval Interval::everything() {
  return Interval{-std::numeric_limits<double>::infinity(),
                  std::numeric_limits<double>::infinity()};
}

std::ostream& operator<<(std::ostream& os, const Interval& iv) {
  if (iv.empty()) return os << "[empty]";
  return os << '[' << iv.lo << ", " << iv.hi << ']';
}

}  // namespace cvsafe::util
