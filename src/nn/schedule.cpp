#include "cvsafe/nn/schedule.hpp"

#include <cassert>
#include <cmath>

namespace cvsafe::nn::schedules {

Schedule constant(double lr) {
  assert(lr > 0.0);
  return [lr](std::size_t) { return lr; };
}

Schedule step_decay(double initial, double factor, std::size_t every) {
  assert(initial > 0.0 && factor > 0.0 && every > 0);
  return [=](std::size_t epoch) {
    return initial * std::pow(factor, static_cast<double>(epoch / every));
  };
}

Schedule cosine(double initial, std::size_t total_epochs, double floor) {
  assert(initial > floor && total_epochs > 0);
  return [=](std::size_t epoch) {
    if (epoch >= total_epochs) return floor;
    const double progress =
        static_cast<double>(epoch) / static_cast<double>(total_epochs);
    return floor + 0.5 * (initial - floor) * (1.0 + std::cos(M_PI * progress));
  };
}

}  // namespace cvsafe::nn::schedules
