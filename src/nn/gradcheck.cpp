#include "cvsafe/nn/gradcheck.hpp"

#include <algorithm>
#include <cmath>

#include "cvsafe/nn/loss.hpp"

namespace cvsafe::nn {
namespace {

double loss_of(Mlp& net, const Matrix& inputs, const Matrix& targets) {
  return mse_loss(net.infer(inputs), targets);
}

}  // namespace

GradCheckResult check_gradients(Mlp& net, const Matrix& inputs,
                                const Matrix& targets, double epsilon,
                                double tolerance) {
  // Analytic gradients.
  const Matrix pred = net.forward(inputs);
  net.backward(mse_gradient(pred, targets));

  GradCheckResult result;
  for (std::size_t l = 0; l < net.layer_count(); ++l) {
    auto& layer = net.mutable_layer(l);
    auto check_buffer = [&](Matrix& param, const Matrix& analytic) {
      for (std::size_t i = 0; i < param.size(); ++i) {
        const double original = param.data()[i];
        param.data()[i] = original + epsilon;
        const double lp = loss_of(net, inputs, targets);
        param.data()[i] = original - epsilon;
        const double lm = loss_of(net, inputs, targets);
        param.data()[i] = original;
        const double numeric = (lp - lm) / (2.0 * epsilon);
        const double a = analytic.data()[i];
        const double denom = std::max({std::abs(a), std::abs(numeric), 1e-8});
        result.max_rel_error =
            std::max(result.max_rel_error, std::abs(a - numeric) / denom);
      }
    };
    // Copy the analytic gradients first: later finite-difference forward
    // passes do not disturb them (infer() does not touch caches).
    const Matrix wg = layer.weight_grad();
    const Matrix bg = layer.bias_grad();
    check_buffer(layer.mutable_weights(), wg);
    check_buffer(layer.mutable_bias(), bg);
  }
  result.passed = result.max_rel_error <= tolerance;
  return result;
}

}  // namespace cvsafe::nn
