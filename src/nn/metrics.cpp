#include "cvsafe/nn/metrics.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace cvsafe::nn {

double mean_absolute_error(const Matrix& pred, const Matrix& target) {
  assert(pred.rows() == target.rows() && pred.cols() == target.cols());
  assert(pred.size() > 0);
  double s = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    s += std::abs(pred.data()[i] - target.data()[i]);
  }
  return s / static_cast<double>(pred.size());
}

double r_squared(const Matrix& pred, const Matrix& target) {
  assert(pred.rows() == target.rows() && pred.cols() == target.cols());
  assert(pred.size() > 0);
  double mean = 0.0;
  for (double y : target.data()) mean += y;
  mean /= static_cast<double>(target.size());
  double ss_res = 0.0;
  double ss_tot = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double r = target.data()[i] - pred.data()[i];
    const double t = target.data()[i] - mean;
    ss_res += r * r;
    ss_tot += t * t;
  }
  if (ss_tot <= 1e-24) return ss_res <= 1e-24 ? 1.0 : 0.0;
  return 1.0 - ss_res / ss_tot;
}

double max_absolute_error(const Matrix& pred, const Matrix& target) {
  assert(pred.rows() == target.rows() && pred.cols() == target.cols());
  double m = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    m = std::max(m, std::abs(pred.data()[i] - target.data()[i]));
  }
  return m;
}

}  // namespace cvsafe::nn
