#include "cvsafe/nn/interval_mlp.hpp"

#include <algorithm>

#include "cvsafe/nn/fast_math.hpp"
#include "cvsafe/util/contracts.hpp"
#include "cvsafe/util/rounded_interval.hpp"

// This translation unit is compiled with -ffp-contract=off (see
// src/nn/CMakeLists.txt): a fused multiply-add applied across a
// nextafter boundary would not change soundness, but banning contraction
// outright keeps every certified endpoint bit-identical across compilers
// and optimization levels, which the golden-certificate determinism gate
// relies on.

namespace cvsafe::nn {

using util::Interval;
namespace rd = util::rounded;

Interval fast_tanh_enclosure(const Interval& z) {
  if (z.empty()) return Interval::empty_interval();
  const double t_lo = fast_tanh(z.lo);
  const double t_hi = fast_tanh(z.hi);
  // fast_tanh is within the validated ulp budget of the (monotone) exact
  // tanh but is not itself proven monotone; order the endpoint values
  // before widening.
  const double lo = std::min(t_lo, t_hi);
  const double hi = std::max(t_lo, t_hi);
  return Interval{std::max(-1.0, rd::sub_down(lo, kTanhEnclosureMargin)),
                  std::min(1.0, rd::add_up(hi, kTanhEnclosureMargin))};
}

Interval activation_enclosure(Activation act, const Interval& z) {
  if (z.empty()) return Interval::empty_interval();
  switch (act) {
    case Activation::kIdentity:
      return z;
    case Activation::kRelu:
      // Exact: max(0, x) is monotone and evaluated without rounding.
      return Interval{std::max(0.0, z.lo), std::max(0.0, z.hi)};
    case Activation::kTanh:
      return fast_tanh_enclosure(z);
    case Activation::kSigmoid:
      break;
  }
  CVSAFE_EXPECTS(false, "no validated inclusion function for sigmoid");
  return Interval::empty_interval();
}

void interval_affine(const DenseLayer& layer, std::span<const Interval> in,
                     std::span<Interval> out) {
  CVSAFE_EXPECTS(in.size() == layer.in_dim(),
                 "interval_affine input width mismatch");
  CVSAFE_EXPECTS(out.size() == layer.out_dim(),
                 "interval_affine output width mismatch");
  const Matrix& w = layer.weights();  // out x in, row-major
  const Matrix& b = layer.bias();     // 1 x out
  const std::size_t out_dim = layer.out_dim();
  const std::size_t in_dim = layer.in_dim();
  for (std::size_t j = 0; j < out_dim; ++j) {
    // Directed dot product, input index ascending — the same accumulation
    // order as matmul_into / matmul_transposed_into, so the concrete
    // partial sums stay bracketed op for op.
    Interval acc{0.0, 0.0};
    for (std::size_t k = 0; k < in_dim; ++k) {
      acc = rd::add(acc, rd::scale(in[k], w(j, k)));
    }
    out[j] = activation_enclosure(layer.activation(),
                                  rd::add(acc, Interval::point(b(0, j))));
  }
}

std::span<const Interval> interval_forward(const Mlp& net,
                                           std::span<const Interval> x,
                                           IntervalWorkspace& ws) {
  CVSAFE_EXPECTS(x.size() == net.input_dim(),
                 "interval_forward input width mismatch");
  std::span<const Interval> cur = x;
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    const DenseLayer& layer = net.layer(i);
    auto& out = ws.layer_out(i, layer.out_dim());
    interval_affine(layer, cur, out);
    cur = out;
  }
  return cur;
}

Interval interval_predict_scalar(const Mlp& net, std::span<const Interval> x,
                                 IntervalWorkspace& ws) {
  CVSAFE_EXPECTS(net.output_dim() == 1,
                 "interval_predict_scalar needs a 1-output network");
  return interval_forward(net, x, ws)[0];
}

}  // namespace cvsafe::nn
