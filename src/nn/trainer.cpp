#include "cvsafe/nn/trainer.hpp"

#include <algorithm>
#include <cassert>
#include <limits>
#include <numeric>
#include <optional>

namespace cvsafe::nn {

std::pair<Dataset, Dataset> Dataset::split(double fraction) const {
  assert(fraction >= 0.0 && fraction <= 1.0);
  const std::size_t n = size();
  const auto n_val = static_cast<std::size_t>(
      static_cast<double>(n) * fraction);
  const std::size_t n_train = n - n_val;
  const std::size_t in = inputs.cols();
  const std::size_t out = targets.cols();

  auto take = [&](std::size_t begin, std::size_t count) {
    Dataset d{Matrix(count, in), Matrix(count, out)};
    for (std::size_t i = 0; i < count; ++i) {
      for (std::size_t j = 0; j < in; ++j)
        d.inputs(i, j) = inputs(begin + i, j);
      for (std::size_t j = 0; j < out; ++j)
        d.targets(i, j) = targets(begin + i, j);
    }
    return d;
  };
  return {take(0, n_train), take(n_train, n_val)};
}

namespace {

Dataset gather(const Dataset& data, const std::vector<std::size_t>& idx,
               std::size_t begin, std::size_t end) {
  const std::size_t count = end - begin;
  Dataset batch{Matrix(count, data.inputs.cols()),
                Matrix(count, data.targets.cols())};
  for (std::size_t i = 0; i < count; ++i) {
    const std::size_t src = idx[begin + i];
    for (std::size_t j = 0; j < data.inputs.cols(); ++j)
      batch.inputs(i, j) = data.inputs(src, j);
    for (std::size_t j = 0; j < data.targets.cols(); ++j)
      batch.targets(i, j) = data.targets(src, j);
  }
  return batch;
}

}  // namespace

TrainResult train(Mlp& net, const Dataset& data, Optimizer& opt,
                  const TrainConfig& config, util::Rng& rng) {
  assert(data.size() > 0);
  assert(data.inputs.cols() == net.input_dim());
  assert(data.targets.cols() == net.output_dim());

  std::vector<std::size_t> idx(data.size());
  std::iota(idx.begin(), idx.end(), 0);

  TrainResult result;
  result.epoch_losses.reserve(config.epochs);

  // Early-stopping bookkeeping.
  double best_val = std::numeric_limits<double>::infinity();
  std::optional<Mlp> best_net;

  for (std::size_t epoch = 0; epoch < config.epochs; ++epoch) {
    if (config.lr_schedule) opt.set_learning_rate(config.lr_schedule(epoch));
    // Fisher-Yates shuffle driven by our deterministic RNG.
    for (std::size_t i = idx.size(); i > 1; --i) {
      const auto j = static_cast<std::size_t>(
          rng.uniform_int(0, static_cast<std::int64_t>(i) - 1));
      std::swap(idx[i - 1], idx[j]);
    }

    double epoch_loss = 0.0;
    std::size_t batches = 0;
    for (std::size_t begin = 0; begin < data.size();
         begin += config.batch_size) {
      const std::size_t end = std::min(begin + config.batch_size, data.size());
      const Dataset batch = gather(data, idx, begin, end);

      const Matrix pred = net.forward(batch.inputs);
      double loss;
      Matrix grad;
      if (config.huber_delta > 0.0) {
        loss = huber_loss(pred, batch.targets, config.huber_delta);
        grad = huber_gradient(pred, batch.targets, config.huber_delta);
      } else {
        loss = mse_loss(pred, batch.targets);
        grad = mse_gradient(pred, batch.targets);
      }
      net.backward(grad);
      for (std::size_t l = 0; l < net.layer_count(); ++l) {
        auto& layer = net.mutable_layer(l);
        opt.update(l * 2, layer.mutable_weights(), layer.weight_grad());
        opt.update(l * 2 + 1, layer.mutable_bias(), layer.bias_grad());
      }
      opt.end_step();
      epoch_loss += loss;
      ++batches;
    }
    epoch_loss /= static_cast<double>(std::max<std::size_t>(1, batches));
    result.epoch_losses.push_back(epoch_loss);
    if (config.on_epoch) config.on_epoch(epoch, epoch_loss);

    if (config.validation != nullptr && config.validation->size() > 0) {
      const double val =
          evaluate(net, *config.validation, config.huber_delta);
      result.val_losses.push_back(val);
      if (val < best_val) {
        best_val = val;
        best_net = net;  // snapshot the best weights
        result.best_epoch = epoch;
      } else if (config.patience > 0 &&
                 epoch - result.best_epoch >= config.patience) {
        result.stopped_early = true;
        break;
      }
    }
  }
  if (best_net) net = std::move(*best_net);  // restore the best epoch
  result.final_loss =
      result.epoch_losses.empty() ? 0.0 : result.epoch_losses.back();
  return result;
}

double evaluate(const Mlp& net, const Dataset& data, double huber_delta) {
  assert(data.size() > 0);
  const Matrix pred = net.infer(data.inputs);
  return huber_delta > 0.0 ? huber_loss(pred, data.targets, huber_delta)
                           : mse_loss(pred, data.targets);
}

}  // namespace cvsafe::nn
