#include "cvsafe/nn/mlp.hpp"

#include <algorithm>
#include <cassert>

namespace cvsafe::nn {

Mlp::Mlp(const MlpSpec& spec, util::Rng& rng) {
  assert(spec.layer_sizes.size() >= 2);
  layers_.reserve(spec.layer_sizes.size() - 1);
  for (std::size_t i = 0; i + 1 < spec.layer_sizes.size(); ++i) {
    const bool last = (i + 2 == spec.layer_sizes.size());
    layers_.emplace_back(
        spec.layer_sizes[i], spec.layer_sizes[i + 1],
        last ? spec.output_activation : spec.hidden_activation, rng);
  }
}

Mlp::Mlp(std::vector<DenseLayer> layers) : layers_(std::move(layers)) {
  assert(!layers_.empty());
}

Matrix Mlp::forward(const Matrix& x) {
  Matrix h = x;
  for (auto& layer : layers_) h = layer.forward(h);
  return h;
}

Matrix Mlp::infer(const Matrix& x) const {
  Matrix h = x;
  for (const auto& layer : layers_) h = layer.infer(h);
  return h;
}

std::vector<double> Mlp::predict(const std::vector<double>& x) const {
  assert(x.size() == input_dim());
  const Matrix y = infer(Matrix::row_vector(x));
  return y.data();
}

const Matrix& Mlp::forward_into(const Matrix& x, Workspace& ws) const {
  assert(x.cols() == input_dim());
  const Matrix* in = &x;
  for (std::size_t i = 0; i < layers_.size(); ++i) {
    Matrix& out = ws.layer_out(i);
    layers_[i].infer_into(*in, out);
    in = &out;
  }
  return *in;
}

double Mlp::predict_scalar(std::span<const double> x, Workspace& ws) const {
  assert(x.size() == input_dim());
  assert(output_dim() == 1);
  Matrix& in = ws.input(1, x.size());
  std::copy(x.begin(), x.end(), in.data().begin());
  return forward_into(in, ws)(0, 0);
}

void Mlp::backward(const Matrix& grad_out) {
  Matrix g = grad_out;
  for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) {
    g = it->backward(g);
  }
}

void Mlp::refresh_inference_cache() {
  for (auto& layer : layers_) layer.refresh_inference_cache();
}

std::size_t Mlp::parameter_count() const {
  std::size_t n = 0;
  for (const auto& layer : layers_) {
    n += layer.weights().size() + layer.bias().size();
  }
  return n;
}

}  // namespace cvsafe::nn
