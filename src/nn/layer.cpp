#include "cvsafe/nn/layer.hpp"

#include <cassert>

namespace cvsafe::nn {

DenseLayer::DenseLayer(std::size_t in_dim, std::size_t out_dim, Activation act,
                       util::Rng& rng)
    : weights_(Matrix::glorot(out_dim, in_dim, rng)),
      bias_(1, out_dim),
      act_(act) {
  refresh_inference_cache();
}

DenseLayer::DenseLayer(Matrix weights, Matrix bias, Activation act)
    : weights_(std::move(weights)), bias_(std::move(bias)), act_(act) {
  assert(bias_.rows() == 1 && bias_.cols() == weights_.rows());
  refresh_inference_cache();
}

void DenseLayer::refresh_inference_cache() {
  weights_t_ = weights_.transpose();
  wt_dirty_ = false;
}

Matrix DenseLayer::forward(const Matrix& x) {
  assert(x.cols() == in_dim());
  input_ = x;
  preact_ = x.matmul_transposed(weights_);  // n x out
  preact_.add_row_broadcast(bias_);
  return apply_activation(act_, preact_);
}

Matrix DenseLayer::infer(const Matrix& x) const {
  assert(x.cols() == in_dim());
  Matrix z = x.matmul_transposed(weights_);
  z.add_row_broadcast(bias_);
  return apply_activation(act_, z);
}

void DenseLayer::infer_into(const Matrix& x, Matrix& out) const {
  assert(x.cols() == in_dim());
  // x * W^T via the transposed-layout cache when it is in sync: the axpy
  // kernel streams W^T rows contiguously (vectorizable across output
  // neurons) while accumulating each output element over k in the same
  // order as the dot-product kernel, so both paths are bit-identical.
  if (!wt_dirty_) {
    matmul_into(x, weights_t_, out);
  } else {
    matmul_transposed_into(x, weights_, out);
  }
  bias_activation_inplace(act_, bias_, out);
}

Matrix DenseLayer::backward(const Matrix& grad_out) {
  assert(grad_out.rows() == preact_.rows() &&
         grad_out.cols() == preact_.cols());
  // dL/dz = dL/dy * f'(z)
  const Matrix grad_z = grad_out.hadamard(activation_derivative(act_, preact_));
  // dL/dW = dz^T X  (out x in), dL/db = column sums of dz.
  grad_weights_ = grad_z.transposed_matmul(input_);
  grad_bias_ = grad_z.column_sums();
  // dL/dx = dz W  (n x in).
  return grad_z.matmul(weights_);
}

}  // namespace cvsafe::nn
