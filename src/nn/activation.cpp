#include "cvsafe/nn/activation.hpp"

#include <cmath>
#include <stdexcept>

namespace cvsafe::nn {

Matrix apply_activation(Activation act, const Matrix& z) {
  Matrix out = z;
  switch (act) {
    case Activation::kIdentity:
      break;
    case Activation::kRelu:
      for (auto& x : out.data()) x = x > 0.0 ? x : 0.0;
      break;
    case Activation::kTanh:
      for (auto& x : out.data()) x = std::tanh(x);
      break;
    case Activation::kSigmoid:
      for (auto& x : out.data()) x = 1.0 / (1.0 + std::exp(-x));
      break;
  }
  return out;
}

Matrix activation_derivative(Activation act, const Matrix& z) {
  Matrix out = z;
  switch (act) {
    case Activation::kIdentity:
      for (auto& x : out.data()) x = 1.0;
      break;
    case Activation::kRelu:
      for (auto& x : out.data()) x = x > 0.0 ? 1.0 : 0.0;
      break;
    case Activation::kTanh:
      for (auto& x : out.data()) {
        const double t = std::tanh(x);
        x = 1.0 - t * t;
      }
      break;
    case Activation::kSigmoid:
      for (auto& x : out.data()) {
        const double s = 1.0 / (1.0 + std::exp(-x));
        x = s * (1.0 - s);
      }
      break;
  }
  return out;
}

std::string activation_name(Activation act) {
  switch (act) {
    case Activation::kIdentity: return "identity";
    case Activation::kRelu: return "relu";
    case Activation::kTanh: return "tanh";
    case Activation::kSigmoid: return "sigmoid";
  }
  return "identity";
}

Activation activation_from_name(const std::string& name) {
  if (name == "identity") return Activation::kIdentity;
  if (name == "relu") return Activation::kRelu;
  if (name == "tanh") return Activation::kTanh;
  if (name == "sigmoid") return Activation::kSigmoid;
  throw std::invalid_argument("unknown activation: " + name);
}

}  // namespace cvsafe::nn
