#include "cvsafe/nn/activation.hpp"

#include "cvsafe/nn/fast_math.hpp"

#include <cassert>
#include <cmath>
#include <stdexcept>

#if defined(__GNUC__) || defined(__clang__)
#define CVSAFE_RESTRICT __restrict__
#else
#define CVSAFE_RESTRICT
#endif

namespace cvsafe::nn {

Matrix apply_activation(Activation act, const Matrix& z) {
  Matrix out = z;
  apply_activation_inplace(act, out);
  return out;
}

void apply_activation_inplace(Activation act, Matrix& z) {
  switch (act) {
    case Activation::kIdentity:
      break;
    case Activation::kRelu:
      for (auto& x : z.data()) x = x > 0.0 ? x : 0.0;
      break;
    case Activation::kTanh:
      for (auto& x : z.data()) x = fast_tanh(x);
      break;
    case Activation::kSigmoid:
      for (auto& x : z.data()) x = 1.0 / (1.0 + std::exp(-x));
      break;
  }
}

void bias_activation_inplace(Activation act, const Matrix& bias, Matrix& z) {
  assert(bias.rows() == 1 && bias.cols() == z.cols());
  const std::size_t rows = z.rows();
  const std::size_t cols = z.cols();
  const double* CVSAFE_RESTRICT bp = bias.data().data();
  double* CVSAFE_RESTRICT zp = z.data().data();
  for (std::size_t i = 0; i < rows; ++i) {
    double* CVSAFE_RESTRICT row = zp + i * cols;
    switch (act) {
      case Activation::kIdentity:
        for (std::size_t j = 0; j < cols; ++j) row[j] += bp[j];
        break;
      case Activation::kRelu:
        for (std::size_t j = 0; j < cols; ++j) {
          const double v = row[j] + bp[j];
          row[j] = v > 0.0 ? v : 0.0;
        }
        break;
      case Activation::kTanh:
        for (std::size_t j = 0; j < cols; ++j) row[j] = fast_tanh(row[j] + bp[j]);
        break;
      case Activation::kSigmoid:
        for (std::size_t j = 0; j < cols; ++j) {
          row[j] = 1.0 / (1.0 + std::exp(-(row[j] + bp[j])));
        }
        break;
    }
  }
}

Matrix activation_derivative(Activation act, const Matrix& z) {
  Matrix out = z;
  switch (act) {
    case Activation::kIdentity:
      for (auto& x : out.data()) x = 1.0;
      break;
    case Activation::kRelu:
      for (auto& x : out.data()) x = x > 0.0 ? 1.0 : 0.0;
      break;
    case Activation::kTanh:
      for (auto& x : out.data()) {
        const double t = fast_tanh(x);
        x = 1.0 - t * t;
      }
      break;
    case Activation::kSigmoid:
      for (auto& x : out.data()) {
        const double s = 1.0 / (1.0 + std::exp(-x));
        x = s * (1.0 - s);
      }
      break;
  }
  return out;
}

std::string activation_name(Activation act) {
  switch (act) {
    case Activation::kIdentity: return "identity";
    case Activation::kRelu: return "relu";
    case Activation::kTanh: return "tanh";
    case Activation::kSigmoid: return "sigmoid";
  }
  return "identity";
}

Activation activation_from_name(const std::string& name) {
  if (name == "identity") return Activation::kIdentity;
  if (name == "relu") return Activation::kRelu;
  if (name == "tanh") return Activation::kTanh;
  if (name == "sigmoid") return Activation::kSigmoid;
  throw std::invalid_argument("unknown activation: " + name);
}

}  // namespace cvsafe::nn
