#include "cvsafe/nn/normalizer.hpp"

#include <cassert>
#include <cmath>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace cvsafe::nn {

Standardizer Standardizer::fit(const Matrix& data) {
  assert(data.rows() > 0);
  Standardizer s;
  const std::size_t n = data.rows();
  const std::size_t c = data.cols();
  s.mean_.assign(c, 0.0);
  s.std_.assign(c, 0.0);
  for (std::size_t j = 0; j < c; ++j) {
    double sum = 0.0;
    for (std::size_t i = 0; i < n; ++i) sum += data(i, j);
    s.mean_[j] = sum / static_cast<double>(n);
    double var = 0.0;
    for (std::size_t i = 0; i < n; ++i) {
      const double d = data(i, j) - s.mean_[j];
      var += d * d;
    }
    var /= static_cast<double>(n);
    s.std_[j] = var > 1e-24 ? std::sqrt(var) : 1.0;
  }
  return s;
}

Standardizer Standardizer::identity(std::size_t columns) {
  Standardizer s;
  s.mean_.assign(columns, 0.0);
  s.std_.assign(columns, 1.0);
  return s;
}

Matrix Standardizer::transform(const Matrix& data) const {
  assert(data.cols() == columns());
  Matrix out = data;
  for (std::size_t i = 0; i < out.rows(); ++i) {
    for (std::size_t j = 0; j < out.cols(); ++j) {
      out(i, j) = (out(i, j) - mean_[j]) / std_[j];
    }
  }
  return out;
}

Matrix Standardizer::inverse(const Matrix& data) const {
  assert(data.cols() == columns());
  Matrix out = data;
  for (std::size_t i = 0; i < out.rows(); ++i) {
    for (std::size_t j = 0; j < out.cols(); ++j) {
      out(i, j) = out(i, j) * std_[j] + mean_[j];
    }
  }
  return out;
}

std::vector<double> Standardizer::transform_row(
    const std::vector<double>& row) const {
  assert(row.size() == columns());
  std::vector<double> out(row.size());
  for (std::size_t j = 0; j < row.size(); ++j) {
    out[j] = (row[j] - mean_[j]) / std_[j];
  }
  return out;
}

void Standardizer::save(std::ostream& os) const {
  os << "cvsafe-standardizer 1\n" << columns() << '\n' << std::hexfloat;
  for (std::size_t j = 0; j < columns(); ++j) {
    os << mean_[j] << ' ' << std_[j] << '\n';
  }
}

Standardizer Standardizer::load(std::istream& is) {
  std::string magic;
  int version = 0;
  std::size_t columns = 0;
  if (!(is >> magic >> version >> columns) ||
      magic != "cvsafe-standardizer" || version != 1) {
    throw std::runtime_error("Standardizer::load: bad header");
  }
  Standardizer s;
  s.mean_.resize(columns);
  s.std_.resize(columns);
  for (std::size_t j = 0; j < columns; ++j) {
    std::string m, d;
    if (!(is >> m >> d)) {
      throw std::runtime_error("Standardizer::load: truncated");
    }
    s.mean_[j] = std::strtod(m.c_str(), nullptr);
    s.std_[j] = std::strtod(d.c_str(), nullptr);
  }
  return s;
}

}  // namespace cvsafe::nn
