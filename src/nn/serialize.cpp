#include "cvsafe/nn/serialize.hpp"

#include <fstream>
#include <iomanip>
#include <sstream>
#include <stdexcept>

namespace cvsafe::nn {
namespace {
constexpr const char* kMagic = "cvsafe-mlp";
constexpr int kVersion = 1;
}  // namespace

void save_mlp(const Mlp& net, std::ostream& os) {
  os << kMagic << ' ' << kVersion << '\n';
  os << net.layer_count() << '\n';
  os << std::hexfloat;
  for (std::size_t l = 0; l < net.layer_count(); ++l) {
    const auto& layer = net.layer(l);
    os << layer.in_dim() << ' ' << layer.out_dim() << ' '
       << activation_name(layer.activation()) << '\n';
    for (std::size_t i = 0; i < layer.weights().rows(); ++i) {
      for (std::size_t j = 0; j < layer.weights().cols(); ++j) {
        if (j) os << ' ';
        os << layer.weights()(i, j);
      }
      os << '\n';
    }
    for (std::size_t j = 0; j < layer.bias().cols(); ++j) {
      if (j) os << ' ';
      os << layer.bias()(0, j);
    }
    os << '\n';
  }
}

bool save_mlp_file(const Mlp& net, const std::string& path) {
  std::ofstream out(path);
  if (!out) return false;
  save_mlp(net, out);
  return static_cast<bool>(out);
}

Mlp load_mlp(std::istream& is) {
  std::string magic;
  int version = 0;
  if (!(is >> magic >> version) || magic != kMagic || version != kVersion) {
    throw std::runtime_error("load_mlp: bad header");
  }
  std::size_t layer_count = 0;
  if (!(is >> layer_count) || layer_count == 0) {
    throw std::runtime_error("load_mlp: bad layer count");
  }
  std::vector<DenseLayer> layers;
  layers.reserve(layer_count);
  for (std::size_t l = 0; l < layer_count; ++l) {
    std::size_t in = 0, out = 0;
    std::string act_name;
    if (!(is >> in >> out >> act_name) || in == 0 || out == 0) {
      throw std::runtime_error("load_mlp: bad layer header");
    }
    Matrix w(out, in);
    for (auto& x : w.data()) {
      std::string tok;
      if (!(is >> tok)) throw std::runtime_error("load_mlp: truncated weights");
      x = std::strtod(tok.c_str(), nullptr);
    }
    Matrix b(1, out);
    for (auto& x : b.data()) {
      std::string tok;
      if (!(is >> tok)) throw std::runtime_error("load_mlp: truncated bias");
      x = std::strtod(tok.c_str(), nullptr);
    }
    layers.emplace_back(std::move(w), std::move(b),
                        activation_from_name(act_name));
  }
  return Mlp(std::move(layers));
}

Mlp load_mlp_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("load_mlp_file: cannot open " + path);
  return load_mlp(in);
}

}  // namespace cvsafe::nn
