#include "cvsafe/nn/matrix.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <ostream>

namespace cvsafe::nn {

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> values)
    : rows_(rows), cols_(cols), data_(std::move(values)) {
  assert(data_.size() == rows_ * cols_);
}

Matrix Matrix::row_vector(const std::vector<double>& values) {
  return Matrix(1, values.size(), values);
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::glorot(std::size_t rows, std::size_t cols, util::Rng& rng) {
  Matrix m(rows, cols);
  const double limit =
      std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (auto& x : m.data_) x = rng.uniform(-limit, limit);
  return m;
}

Matrix Matrix::matmul(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (std::size_t i = 0; i < rows_; ++i) {
    for (std::size_t k = 0; k < cols_; ++k) {
      const double a = (*this)(i, k);
      // cvsafe-lint: allow(float-compare) exact-zero sparsity skip
      if (a == 0.0) continue;
      const double* brow = &other.data_[k * other.cols_];
      double* orow = &out.data_[i * other.cols_];
      for (std::size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

Matrix Matrix::matmul_transposed(const Matrix& other) const {
  assert(cols_ == other.cols_);
  Matrix out(rows_, other.rows_);
  for (std::size_t i = 0; i < rows_; ++i) {
    const double* arow = &data_[i * cols_];
    for (std::size_t j = 0; j < other.rows_; ++j) {
      const double* brow = &other.data_[j * other.cols_];
      double s = 0.0;
      for (std::size_t k = 0; k < cols_; ++k) s += arow[k] * brow[k];
      out(i, j) = s;
    }
  }
  return out;
}

Matrix Matrix::transposed_matmul(const Matrix& other) const {
  assert(rows_ == other.rows_);
  Matrix out(cols_, other.cols_);
  for (std::size_t k = 0; k < rows_; ++k) {
    const double* arow = &data_[k * cols_];
    const double* brow = &other.data_[k * other.cols_];
    for (std::size_t i = 0; i < cols_; ++i) {
      const double a = arow[i];
      // cvsafe-lint: allow(float-compare) exact-zero sparsity skip
      if (a == 0.0) continue;
      double* orow = &out.data_[i * other.cols_];
      for (std::size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

Matrix Matrix::operator+(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Matrix Matrix::operator*(double s) const {
  Matrix out = *this;
  for (auto& x : out.data_) x *= s;
  return out;
}

void Matrix::add_row_broadcast(const Matrix& row) {
  assert(row.rows_ == 1 && row.cols_ == cols_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) (*this)(i, j) += row(0, j);
}

Matrix Matrix::column_sums() const {
  Matrix out(1, cols_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out(0, j) += (*this)(i, j);
  return out;
}

Matrix Matrix::hadamard(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] *= other.data_[i];
  return out;
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::abs(x));
  return m;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  os << "Matrix(" << m.rows() << 'x' << m.cols() << ")[";
  for (std::size_t i = 0; i < m.rows(); ++i) {
    if (i) os << "; ";
    for (std::size_t j = 0; j < m.cols(); ++j) {
      if (j) os << ' ';
      os << m(i, j);
    }
  }
  return os << ']';
}

}  // namespace cvsafe::nn
