#include "cvsafe/nn/matrix.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <ostream>

#if defined(__GNUC__) || defined(__clang__)
#define CVSAFE_RESTRICT __restrict__
#else
#define CVSAFE_RESTRICT
#endif

namespace cvsafe::nn {

namespace {

/// Fraction-of-zeros probe for the sparsity fast path. The exact-zero skip
/// in the accumulation kernels only pays off when a sizeable share of the
/// left operand is zero; on dense NN weight matrices the per-element branch
/// mispredicts and pessimizes the hot loop, so callers gate on this.
bool mostly_zero(const std::vector<double>& values) {
  if (values.size() < 4096) return false;  // probe cost dominates small inputs
  std::size_t zeros = 0;
  for (const double v : values) {
    zeros += (v == 0.0) ? 1 : 0;  // cvsafe-lint: allow(float-compare)
  }
  return zeros * 2 >= values.size();
}

/// Scalar tail for matmul_transposed_into: output columns [j0, n). Four
/// independent accumulator chains per pass hide FP-add latency; each output
/// element is still an in-order dot product over k, bit-identical to the
/// historical single-column kernel.
void transposed_cols_scalar(const double* CVSAFE_RESTRICT ap,
                            const double* CVSAFE_RESTRICT bp,
                            double* CVSAFE_RESTRICT op, std::size_t m,
                            std::size_t kk, std::size_t n, std::size_t j0) {
  for (std::size_t i = 0; i < m; ++i) {
    const double* CVSAFE_RESTRICT arow = ap + i * kk;
    std::size_t j = j0;
    for (; j + 4 <= n; j += 4) {
      const double* CVSAFE_RESTRICT b0 = bp + (j + 0) * kk;
      const double* CVSAFE_RESTRICT b1 = bp + (j + 1) * kk;
      const double* CVSAFE_RESTRICT b2 = bp + (j + 2) * kk;
      const double* CVSAFE_RESTRICT b3 = bp + (j + 3) * kk;
      double s0 = 0.0;
      double s1 = 0.0;
      double s2 = 0.0;
      double s3 = 0.0;
      for (std::size_t k = 0; k < kk; ++k) {
        const double av = arow[k];
        s0 += av * b0[k];
        s1 += av * b1[k];
        s2 += av * b2[k];
        s3 += av * b3[k];
      }
      op[i * n + j + 0] = s0;
      op[i * n + j + 1] = s1;
      op[i * n + j + 2] = s2;
      op[i * n + j + 3] = s3;
    }
    for (; j < n; ++j) {
      const double* CVSAFE_RESTRICT brow = bp + j * kk;
      double s = 0.0;
      for (std::size_t k = 0; k < kk; ++k) s += arow[k] * brow[k];
      op[i * n + j] = s;
    }
  }
}

}  // namespace

Matrix::Matrix(std::size_t rows, std::size_t cols)
    : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

Matrix::Matrix(std::size_t rows, std::size_t cols, std::vector<double> values)
    : rows_(rows), cols_(cols), data_(std::move(values)) {
  assert(data_.size() == rows_ * cols_);
}

Matrix Matrix::row_vector(const std::vector<double>& values) {
  return Matrix(1, values.size(), values);
}

Matrix Matrix::identity(std::size_t n) {
  Matrix m(n, n);
  for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::glorot(std::size_t rows, std::size_t cols, util::Rng& rng) {
  Matrix m(rows, cols);
  const double limit =
      std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (auto& x : m.data_) x = rng.uniform(-limit, limit);
  return m;
}

void Matrix::resize(std::size_t rows, std::size_t cols) {
  rows_ = rows;
  cols_ = cols;
  data_.resize(rows * cols);
}

void matmul_into(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.rows());
  assert(&out != &a && &out != &b);
  const std::size_t m = a.rows();
  const std::size_t kk = a.cols();
  const std::size_t n = b.cols();
  out.resize(m, n);
  std::fill(out.data().begin(), out.data().end(), 0.0);

  const double* CVSAFE_RESTRICT ap = a.data().data();
  const double* CVSAFE_RESTRICT bp = b.data().data();
  double* CVSAFE_RESTRICT op = out.data().data();

  // Accumulation order per output element is k ascending in both paths, so
  // results are bit-identical regardless of which path runs (adding an
  // exact zero never changes a finite accumulator).
  if (mostly_zero(a.data())) {
    for (std::size_t i = 0; i < m; ++i) {
      for (std::size_t k = 0; k < kk; ++k) {
        const double av = ap[i * kk + k];
        // cvsafe-lint: allow(float-compare) exact-zero sparsity skip
        if (av == 0.0) continue;
        const double* CVSAFE_RESTRICT brow = bp + k * n;
        double* CVSAFE_RESTRICT orow = op + i * n;
        for (std::size_t j = 0; j < n; ++j) orow[j] += av * brow[j];
      }
    }
    return;
  }

  // Dense path: branch-free inner loop, blocked over columns so the output
  // row tile and the B tile stay cache-resident across the k sweep.
  constexpr std::size_t kColBlock = 256;
  for (std::size_t i = 0; i < m; ++i) {
    double* CVSAFE_RESTRICT orow = op + i * n;
    for (std::size_t j0 = 0; j0 < n; j0 += kColBlock) {
      const std::size_t j1 = std::min(j0 + kColBlock, n);
      for (std::size_t k = 0; k < kk; ++k) {
        const double av = ap[i * kk + k];
        const double* CVSAFE_RESTRICT brow = bp + k * n;
        for (std::size_t j = j0; j < j1; ++j) orow[j] += av * brow[j];
      }
    }
  }
}

void matmul_transposed_into(const Matrix& a, const Matrix& b, Matrix& out) {
  assert(a.cols() == b.cols());
  assert(&out != &a && &out != &b);
  const std::size_t m = a.rows();
  const std::size_t kk = a.cols();
  const std::size_t n = b.rows();
  out.resize(m, n);

  const double* CVSAFE_RESTRICT ap = a.data().data();
  const double* CVSAFE_RESTRICT bp = b.data().data();
  double* CVSAFE_RESTRICT op = out.data().data();

  // A dot-product loop over k cannot use SIMD without reordering the sum,
  // which would break bit-identity with the dense kernel. Instead, repack
  // an 8-column tile of b into k-major order on the stack: the inner loop
  // then reads eight consecutive doubles per k and keeps eight accumulator
  // chains in one vector register — the same axpy shape that lets the
  // dense kernel vectorize. Lane c sums column j0+c's products over k in
  // ascending order, so every output element accumulates in exactly the
  // historical order and results stay bit-identical. The pack touches each
  // b element once per tile and is amortized over all m rows.
  constexpr std::size_t kTileCols = 8;
  constexpr std::size_t kMaxPackedK = 256;
  std::size_t j0 = 0;
  if (kk <= kMaxPackedK) {
    double tile[kTileCols * kMaxPackedK];
    for (; j0 + kTileCols <= n; j0 += kTileCols) {
      for (std::size_t c = 0; c < kTileCols; ++c) {
        const double* CVSAFE_RESTRICT brow = bp + (j0 + c) * kk;
        for (std::size_t k = 0; k < kk; ++k) tile[k * kTileCols + c] = brow[k];
      }
      for (std::size_t i = 0; i < m; ++i) {
        const double* CVSAFE_RESTRICT arow = ap + i * kk;
        double* CVSAFE_RESTRICT orow = op + i * n + j0;
        for (std::size_t c = 0; c < kTileCols; ++c) orow[c] = 0.0;
        for (std::size_t k = 0; k < kk; ++k) {
          const double av = arow[k];
          const double* CVSAFE_RESTRICT trow = tile + k * kTileCols;
          for (std::size_t c = 0; c < kTileCols; ++c) orow[c] += av * trow[c];
        }
      }
    }
  }
  // Remainder columns (and the rare kk > kMaxPackedK case) take the scalar
  // multi-chain path — same per-element order, just without the repack.
  transposed_cols_scalar(ap, bp, op, m, kk, n, j0);
}

Matrix Matrix::matmul(const Matrix& other) const {
  Matrix out;
  matmul_into(*this, other, out);
  return out;
}

Matrix Matrix::matmul_transposed(const Matrix& other) const {
  Matrix out;
  matmul_transposed_into(*this, other, out);
  return out;
}

Matrix Matrix::transposed_matmul(const Matrix& other) const {
  assert(rows_ == other.rows_);
  Matrix out(cols_, other.cols_);
  // The left operand here is a backpropagated gradient; with ReLU-family
  // activations those are legitimately sparse, so the exact-zero skip is
  // gated on measured density rather than applied unconditionally.
  const bool sparse = mostly_zero(data_);
  for (std::size_t k = 0; k < rows_; ++k) {
    const double* CVSAFE_RESTRICT arow = &data_[k * cols_];
    const double* CVSAFE_RESTRICT brow = &other.data_[k * other.cols_];
    for (std::size_t i = 0; i < cols_; ++i) {
      const double a = arow[i];
      // cvsafe-lint: allow(float-compare) exact-zero sparsity skip
      if (sparse && a == 0.0) continue;
      double* CVSAFE_RESTRICT orow = &out.data_[i * other.cols_];
      for (std::size_t j = 0; j < other.cols_; ++j) orow[j] += a * brow[j];
    }
  }
  return out;
}

Matrix Matrix::transpose() const {
  Matrix out(cols_, rows_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  return out;
}

Matrix Matrix::operator+(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] += other.data_[i];
  return out;
}

Matrix Matrix::operator-(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] -= other.data_[i];
  return out;
}

Matrix Matrix::operator*(double s) const {
  Matrix out = *this;
  for (auto& x : out.data_) x *= s;
  return out;
}

void Matrix::add_row_broadcast(const Matrix& row) {
  assert(row.rows_ == 1 && row.cols_ == cols_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) (*this)(i, j) += row(0, j);
}

Matrix Matrix::column_sums() const {
  Matrix out(1, cols_);
  for (std::size_t i = 0; i < rows_; ++i)
    for (std::size_t j = 0; j < cols_; ++j) out(0, j) += (*this)(i, j);
  return out;
}

Matrix Matrix::hadamard(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  Matrix out = *this;
  for (std::size_t i = 0; i < data_.size(); ++i) out.data_[i] *= other.data_[i];
  return out;
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double x : data_) m = std::max(m, std::abs(x));
  return m;
}

std::ostream& operator<<(std::ostream& os, const Matrix& m) {
  os << "Matrix(" << m.rows() << 'x' << m.cols() << ")[";
  for (std::size_t i = 0; i < m.rows(); ++i) {
    if (i) os << "; ";
    for (std::size_t j = 0; j < m.cols(); ++j) {
      if (j) os << ' ';
      os << m(i, j);
    }
  }
  return os << ']';
}

}  // namespace cvsafe::nn
