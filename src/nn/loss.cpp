#include "cvsafe/nn/loss.hpp"

#include <cassert>
#include <cmath>

namespace cvsafe::nn {

double mse_loss(const Matrix& pred, const Matrix& target) {
  assert(pred.rows() == target.rows() && pred.cols() == target.cols());
  assert(pred.size() > 0);
  double s = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = pred.data()[i] - target.data()[i];
    s += d * d;
  }
  return s / static_cast<double>(pred.size());
}

Matrix mse_gradient(const Matrix& pred, const Matrix& target) {
  assert(pred.rows() == target.rows() && pred.cols() == target.cols());
  Matrix g = pred - target;
  return g * (2.0 / static_cast<double>(pred.size()));
}

double huber_loss(const Matrix& pred, const Matrix& target, double delta) {
  assert(pred.rows() == target.rows() && pred.cols() == target.cols());
  assert(delta > 0.0);
  double s = 0.0;
  for (std::size_t i = 0; i < pred.size(); ++i) {
    const double d = std::abs(pred.data()[i] - target.data()[i]);
    s += d <= delta ? 0.5 * d * d : delta * (d - 0.5 * delta);
  }
  return s / static_cast<double>(pred.size());
}

Matrix huber_gradient(const Matrix& pred, const Matrix& target, double delta) {
  assert(pred.rows() == target.rows() && pred.cols() == target.cols());
  Matrix g = pred;
  for (std::size_t i = 0; i < g.size(); ++i) {
    const double d = pred.data()[i] - target.data()[i];
    const double gi = std::abs(d) <= delta ? d : std::copysign(delta, d);
    g.data()[i] = gi / static_cast<double>(pred.size());
  }
  return g;
}

}  // namespace cvsafe::nn
