#include "cvsafe/nn/optimizer.hpp"

#include <cassert>
#include <cmath>

namespace cvsafe::nn {

void Sgd::update(std::size_t key, Matrix& param, const Matrix& grad) {
  assert(param.size() == grad.size());
  auto& vel = velocity_[key];
  if (vel.size() != param.size()) vel.assign(param.size(), 0.0);
  for (std::size_t i = 0; i < param.size(); ++i) {
    vel[i] = momentum_ * vel[i] - lr_ * grad.data()[i];
    param.data()[i] += vel[i];
  }
}

void Adam::update(std::size_t key, Matrix& param, const Matrix& grad) {
  assert(param.size() == grad.size());
  auto& mo = moments_[key];
  if (mo.m.size() != param.size()) {
    mo.m.assign(param.size(), 0.0);
    mo.v.assign(param.size(), 0.0);
  }
  const double bc1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
  const double bc2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
  for (std::size_t i = 0; i < param.size(); ++i) {
    const double g = grad.data()[i];
    mo.m[i] = beta1_ * mo.m[i] + (1.0 - beta1_) * g;
    mo.v[i] = beta2_ * mo.v[i] + (1.0 - beta2_) * g * g;
    const double m_hat = mo.m[i] / bc1;
    const double v_hat = mo.v[i] / bc2;
    param.data()[i] -= lr_ * m_hat / (std::sqrt(v_hat) + eps_);
  }
}

}  // namespace cvsafe::nn
