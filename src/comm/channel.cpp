#include "cvsafe/comm/channel.hpp"

#include <sstream>

#include "cvsafe/util/contracts.hpp"

namespace cvsafe::comm {
namespace {
// Tolerance for matching transmission instants against the control clock.
constexpr double kTimeEps = 1e-9;
}  // namespace

CommConfig CommConfig::no_disturbance(double period) {
  return CommConfig{period, 0.0, 0.0, false};
}

CommConfig CommConfig::delayed(double drop_prob, double delay, double period) {
  return CommConfig{period, delay, drop_prob, false};
}

CommConfig CommConfig::messages_lost(double period) {
  CommConfig c;
  c.period = period;
  c.drop_prob = 1.0;
  c.lost = true;
  return c;
}

CommConfig CommConfig::bursty(double bad_fraction, double mean_burst_len,
                              double delay, double period) {
  CommConfig c;
  c.period = period;
  c.delay = delay;
  c.burst = true;
  c.drop_prob = 0.0;
  c.burst_drop_prob = 1.0;
  // Mean burst length L -> p(B->G) = 1/L; stationary bad fraction f:
  // f = p_gb / (p_gb + p_bg) -> p(G->B) = f p_bg / (1 - f).
  mean_burst_len = mean_burst_len < 1.0 ? 1.0 : mean_burst_len;
  bad_fraction = bad_fraction < 0.0   ? 0.0
                 : bad_fraction > 0.99 ? 0.99
                                       : bad_fraction;
  c.p_bad_to_good = 1.0 / mean_burst_len;
  c.p_good_to_bad = bad_fraction * c.p_bad_to_good / (1.0 - bad_fraction);
  return c;
}

double CommConfig::stationary_drop_prob() const {
  if (lost) return 1.0;
  if (!burst) return drop_prob;
  const double denom = p_good_to_bad + p_bad_to_good;
  const double bad_frac = denom > 0.0 ? p_good_to_bad / denom : 0.0;
  return (1.0 - bad_frac) * drop_prob + bad_frac * burst_drop_prob;
}

void CommConfig::validate() const {
  // Comparisons are written so NaN (which fails every ordered
  // comparison) violates the corresponding contract.
  CVSAFE_EXPECTS(period > 0.0 && period < 1e9,
                 "comm period must be positive and finite");
  CVSAFE_EXPECTS(delay >= 0.0 && delay < 1e9,
                 "comm delay must be non-negative and finite");
  CVSAFE_EXPECTS(drop_prob >= 0.0 && drop_prob <= 1.0,
                 "drop probability must lie in [0,1]");
  CVSAFE_EXPECTS(burst_drop_prob >= 0.0 && burst_drop_prob <= 1.0,
                 "burst drop probability must lie in [0,1]");
  CVSAFE_EXPECTS(p_good_to_bad >= 0.0 && p_good_to_bad <= 1.0,
                 "burst G->B transition probability must lie in [0,1]");
  CVSAFE_EXPECTS(p_bad_to_good >= 0.0 && p_bad_to_good <= 1.0,
                 "burst B->G transition probability must lie in [0,1]");
}

std::string CommConfig::label() const {
  if (lost || (!burst && drop_prob >= 1.0)) return "messages lost";
  if (burst) {
    std::ostringstream os;
    os << "bursty (stationary p_drop=" << stationary_drop_prob() << ')';
    return os.str();
  }
  if (delay > 0.0 || drop_prob > 0.0) {
    std::ostringstream os;
    os << "messages delayed (dt_d=" << delay << "s, p_drop=" << drop_prob
       << ')';
    return os.str();
  }
  return "no disturbance";
}

void Channel::offer(const Message& msg, util::Rng& rng) {
  if (admit(msg, rng)) enqueue(msg, msg.stamp() + config_.delay);
}

bool Channel::admit(const Message& msg, util::Rng& rng) {
  if (msg.stamp() + kTimeEps < next_tx_time_) {
    return false;  // not a tx instant yet
  }
  next_tx_time_ += config_.period;
  ++sent_;
  double p_drop = config_.drop_prob;
  if (config_.burst) {
    // Gilbert-Elliott state transition, then state-dependent drop.
    in_bad_state_ = in_bad_state_ ? !rng.bernoulli(config_.p_bad_to_good)
                                  : rng.bernoulli(config_.p_good_to_bad);
    p_drop = in_bad_state_ ? config_.burst_drop_prob : config_.drop_prob;
  }
  if (config_.lost || rng.bernoulli(p_drop)) {
    ++dropped_;
    return false;
  }
  return true;
}

void Channel::enqueue(const Message& msg, double delivery_time) {
  pending_.push(InFlight{delivery_time, next_seq_++, msg});
}

std::vector<Message> Channel::collect(double t) {
  std::vector<Message> out;
  collect_into(t, out);
  return out;
}

void Channel::collect_into(double t, std::vector<Message>& out) {
  out.clear();
  while (!pending_.empty() &&
         pending_.top().delivery_time <= t + kTimeEps) {
    out.push_back(pending_.top().msg);
    pending_.pop();
  }
}

void Channel::collect_into_slab(double t, MessageSlab& slab) {
  while (!pending_.empty() &&
         pending_.top().delivery_time <= t + kTimeEps) {
    slab.push(pending_.top().msg);
    pending_.pop();
  }
}

}  // namespace cvsafe::comm
