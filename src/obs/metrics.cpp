#include "cvsafe/obs/metrics.hpp"

#include <algorithm>
#include <utility>

#include "cvsafe/obs/jsonl.hpp"
#include "cvsafe/util/contracts.hpp"

namespace cvsafe::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  CVSAFE_EXPECTS(std::is_sorted(bounds_.begin(), bounds_.end()),
                 "histogram bounds must be sorted ascending");
  counts_.assign(bounds_.size() + 1, 0);  // trailing slot is +Inf
}

void Histogram::observe(double v) {
  if (counts_.empty()) counts_.assign(bounds_.size() + 1, 0);
  std::size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  ++counts_[i];
  ++count_;
  sum_ += v;
}

void Histogram::merge(const Histogram& other) {
  if (counts_.empty()) counts_.assign(bounds_.size() + 1, 0);
  CVSAFE_EXPECTS(bounds_ == other.bounds_,
                 "cannot merge histograms with different bucket bounds");
  for (std::size_t i = 0; i < counts_.size() && i < other.counts_.size();
       ++i) {
    counts_[i] += other.counts_[i];
  }
  count_ += other.count_;
  sum_ += other.sum_;
}

Counter& MetricsRegistry::counter(const std::string& name) {
  return counters_[name];
}

Gauge& MetricsRegistry::gauge(const std::string& name) {
  return gauges_[name];
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_.emplace(name, Histogram(std::move(bounds))).first;
  } else {
    // A refetch with different bounds used to silently keep the
    // first-creation bounds, leaving the caller observing into buckets
    // it never asked for. Make the mismatch loud.
    CVSAFE_EXPECTS(it->second.bounds() == bounds,
                   "histogram refetched with different bucket bounds");
  }
  return it->second;
}

void MetricsRegistry::merge(const MetricsRegistry& other) {
  for (const auto& [name, c] : other.counters_) {
    counters_[name].inc(c.value());
  }
  for (const auto& [name, g] : other.gauges_) {
    gauges_[name].set(g.value());
  }
  for (const auto& [name, h] : other.histograms_) {
    auto it = histograms_.find(name);
    if (it == histograms_.end()) {
      histograms_.emplace(name, h);
    } else {
      it->second.merge(h);
    }
  }
}

namespace {

/// Splits `name{label="x"}` into the bare metric name and the label body
/// (empty when the name carries no labels).
std::pair<std::string, std::string> split_labels(const std::string& name) {
  const auto brace = name.find('{');
  if (brace == std::string::npos) return {name, {}};
  std::string labels = name.substr(brace + 1);
  if (!labels.empty() && labels.back() == '}') labels.pop_back();
  return {name.substr(0, brace), labels};
}

void append_type_line(std::string& out, std::string& last_base,
                      const std::string& base, const char* kind) {
  if (base == last_base) return;  // labeled variants share one TYPE line
  last_base = base;
  out += "# TYPE ";
  out += base;
  out += ' ';
  out += kind;
  out += '\n';
}

}  // namespace

std::string MetricsRegistry::prometheus_text() const {
  std::string out;
  std::string last_base;
  for (const auto& [name, c] : counters_) {
    append_type_line(out, last_base, split_labels(name).first, "counter");
    out += name;
    out += ' ';
    out += std::to_string(c.value());
    out += '\n';
  }
  last_base.clear();
  for (const auto& [name, g] : gauges_) {
    append_type_line(out, last_base, split_labels(name).first, "gauge");
    out += name;
    out += ' ';
    append_json_double(out, g.value());
    out += '\n';
  }
  last_base.clear();
  for (const auto& [name, h] : histograms_) {
    const auto [base, labels] = split_labels(name);
    append_type_line(out, last_base, base, "histogram");
    const auto bucket_line = [&](const std::string& le, std::uint64_t n) {
      out += base;
      out += "_bucket{";
      if (!labels.empty()) {
        out += labels;
        out += ',';
      }
      out += "le=\"";
      out += le;
      out += "\"} ";
      out += std::to_string(n);
      out += '\n';
    };
    std::uint64_t cumulative = 0;
    const auto& counts = h.counts();
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      cumulative += i < counts.size() ? counts[i] : 0;
      std::string le;
      append_json_double(le, h.bounds()[i]);
      bucket_line(le, cumulative);
    }
    bucket_line("+Inf", h.count());
    out += base;
    out += "_sum";
    if (!labels.empty()) {
      out += '{';
      out += labels;
      out += '}';
    }
    out += ' ';
    append_json_double(out, h.sum());
    out += '\n';
    out += base;
    out += "_count";
    if (!labels.empty()) {
      out += '{';
      out += labels;
      out += '}';
    }
    out += ' ';
    out += std::to_string(h.count());
    out += '\n';
  }
  return out;
}

std::string MetricsRegistry::csv() const {
  std::string out = "kind,name,value\n";
  const auto row = [&](const char* kind, const std::string& name,
                       const std::string& value) {
    out += kind;
    out += ',';
    out += '"';
    out += name;
    out += '"';
    out += ',';
    out += value;
    out += '\n';
  };
  for (const auto& [name, c] : counters_) {
    row("counter", name, std::to_string(c.value()));
  }
  for (const auto& [name, g] : gauges_) {
    std::string v;
    append_json_double(v, g.value());
    row("gauge", name, v);
  }
  for (const auto& [name, h] : histograms_) {
    std::uint64_t cumulative = 0;
    const auto& counts = h.counts();
    for (std::size_t i = 0; i < h.bounds().size(); ++i) {
      cumulative += i < counts.size() ? counts[i] : 0;
      std::string le;
      append_json_double(le, h.bounds()[i]);
      row("histogram_bucket", name + "[le=" + le + "]",
          std::to_string(cumulative));
    }
    row("histogram_bucket", name + "[le=+Inf]", std::to_string(h.count()));
    std::string sum;
    append_json_double(sum, h.sum());
    row("histogram_sum", name, sum);
    row("histogram_count", name, std::to_string(h.count()));
  }
  return out;
}

}  // namespace cvsafe::obs
