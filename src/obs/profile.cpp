#include "cvsafe/obs/profile.hpp"

#include <algorithm>
#include <cstdio>
#include <string_view>
#include <tuple>

namespace cvsafe::obs {

namespace {

std::uint32_t this_thread_id() {
  static std::atomic<std::uint32_t> next{0};
  thread_local std::uint32_t id =
      next.fetch_add(1, std::memory_order_relaxed);
  return id;
}

}  // namespace

Profiler& Profiler::instance() {
  static Profiler profiler;
  return profiler;
}

void Profiler::record(const char* name, std::uint64_t start_ns,
                      std::uint64_t dur_ns) {
  const std::uint32_t tid = this_thread_id();
  std::lock_guard<std::mutex> lock(mu_);
  if (spans_.size() >= kMaxSpans) {
    ++dropped_;
    return;
  }
  spans_.push_back(SpanRecord{name, start_ns, dur_ns, tid});
}

std::vector<SpanRecord> Profiler::spans() const {
  std::lock_guard<std::mutex> lock(mu_);
  return spans_;
}

std::size_t Profiler::dropped() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dropped_;
}

void Profiler::clear() {
  std::lock_guard<std::mutex> lock(mu_);
  spans_.clear();
  dropped_ = 0;
}

std::string Profiler::chrome_trace_json() const {
  std::vector<SpanRecord> sorted = spans();
  std::sort(sorted.begin(), sorted.end(),
            [](const SpanRecord& a, const SpanRecord& b) {
              return std::make_tuple(a.start_ns, a.tid,
                                     std::string_view(a.name)) <
                     std::make_tuple(b.start_ns, b.tid,
                                     std::string_view(b.name));
            });
  std::string out = "{\"traceEvents\":[\n";
  bool first = true;
  for (const SpanRecord& s : sorted) {
    if (!first) out += ",\n";
    first = false;
    out += "{\"name\":\"";
    out += s.name;
    out += "\",\"ph\":\"X\",\"pid\":1,\"tid\":";
    out += std::to_string(s.tid);
    // Chrome trace timestamps are microseconds; keep sub-us precision
    // by emitting fractional values.
    char buf[64];
    std::snprintf(buf, sizeof(buf),
                  ",\"ts\":%llu.%03llu,\"dur\":%llu.%03llu}",
                  static_cast<unsigned long long>(s.start_ns / 1000),
                  static_cast<unsigned long long>(s.start_ns % 1000),
                  static_cast<unsigned long long>(s.dur_ns / 1000),
                  static_cast<unsigned long long>(s.dur_ns % 1000));
    out += buf;
  }
  out += "\n]}\n";
  return out;
}

}  // namespace cvsafe::obs
