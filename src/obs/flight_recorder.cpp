#include "cvsafe/obs/flight_recorder.hpp"

#include <algorithm>
#include <ostream>

#include "cvsafe/obs/jsonl.hpp"

namespace cvsafe::obs {

const char* ring_event_kind_name(RingEventKind kind) {
  switch (kind) {
    case RingEventKind::kMessageAccept:
      return "message_accept";
    case RingEventKind::kMessageReject:
      return "message_reject";
    case RingEventKind::kGateVerdict:
      return "gate_verdict";
    case RingEventKind::kLadderTransition:
      return "ladder_transition";
    case RingEventKind::kEtaSample:
      return "eta_sample";
    case RingEventKind::kPlanClamp:
      return "plan_clamp";
  }
  return "unknown";
}

const char* ring_trigger_name(unsigned bit) {
  switch (bit) {
    case kTriggerEta:
      return "eta_below_threshold";
    case kTriggerEmergency:
      return "emergency_entry";
    case kTriggerUnsafe:
      return "unsafe_set_entry";
    case kTriggerRejectionBurst:
      return "rejection_burst";
    default:
      return "unknown";
  }
}

std::vector<FlightDump> FlightDumpCollector::take_sorted() {
  std::vector<FlightDump> out;
  {
    const std::lock_guard<std::mutex> lock(mutex_);
    out.swap(dumps_);
  }
  std::sort(out.begin(), out.end(),
            [](const FlightDump& a, const FlightDump& b) {
              return a.episode < b.episode;
            });
  return out;
}

namespace {

/// The code byte rendered per kind: a reason name for rejections, a
/// degradation level index for ladder transitions, a 0/1 flag otherwise.
void append_event_code(std::string& out, const RingEvent& event) {
  const auto kind = static_cast<RingEventKind>(event.kind);
  if (kind == RingEventKind::kMessageReject) {
    out += "\"reason\":";
    append_json_string(out, to_string(static_cast<GateRejectReason>(
                                event.code)));
    out += ",\"sender\":" + std::to_string(event.aux);
  } else if (kind == RingEventKind::kLadderTransition) {
    out += "\"from\":" + std::to_string(event.aux);
    out += ",\"to\":" + std::to_string(event.code);
  } else if (kind == RingEventKind::kMessageAccept) {
    out += "\"sender\":" + std::to_string(event.aux);
  } else {
    out += "\"code\":" + std::to_string(event.code);
  }
}

}  // namespace

void write_flight_dump_jsonl(std::ostream& os, const FlightDump& dump,
                             const std::string& scenario,
                             const std::string& fault) {
  std::string line = "{\"flight\":{\"episode\":" +
                     std::to_string(dump.episode) +
                     ",\"seed\":" + std::to_string(dump.seed);
  if (!scenario.empty()) {
    line += ",\"scenario\":";
    append_json_string(line, scenario);
  }
  if (!fault.empty()) {
    line += ",\"fault\":";
    append_json_string(line, fault);
  }
  line += ",\"triggers\":[";
  bool first = true;
  for (unsigned bit = kTriggerEta; bit <= kTriggerRejectionBurst; bit <<= 1u) {
    if ((dump.triggers & bit) == 0) continue;
    if (!first) line += ',';
    first = false;
    append_json_string(line, ring_trigger_name(bit));
  }
  line += "],\"eta\":";
  append_json_double(line, dump.eta);
  line += ",\"collided\":";
  line += dump.collided ? "true" : "false";
  line += ",\"rejections\":" + std::to_string(dump.rejections);
  line += ",\"events\":" + std::to_string(dump.events.size());
  line += ",\"overwritten\":" + std::to_string(dump.overwritten);
  line += "}}\n";
  os << line;

  for (const RingEvent& event : dump.events) {
    line = "{\"episode\":" + std::to_string(dump.episode);
    line += ",\"step\":" + std::to_string(event.step);
    line += ",\"kind\":";
    append_json_string(line,
                       ring_event_kind_name(
                           static_cast<RingEventKind>(event.kind)));
    line += ',';
    append_event_code(line, event);
    line += ",\"value\":";
    append_json_double(line, event.value);
    line += "}\n";
    os << line;
  }
}

std::size_t write_flight_dumps_jsonl(std::ostream& os,
                                     std::vector<FlightDump> dumps,
                                     const std::string& scenario,
                                     const std::string& fault) {
  std::sort(dumps.begin(), dumps.end(),
            [](const FlightDump& a, const FlightDump& b) {
              return a.episode < b.episode;
            });
  for (const FlightDump& dump : dumps) {
    write_flight_dump_jsonl(os, dump, scenario, fault);
  }
  return dumps.size();
}

}  // namespace cvsafe::obs
