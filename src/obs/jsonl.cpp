#include "cvsafe/obs/jsonl.hpp"

#include <cmath>
#include <cstdio>
#include <ostream>

namespace cvsafe::obs {

const char* to_string(GateRejectReason reason) {
  switch (reason) {
    case GateRejectReason::kNonFinite:
      return "non_finite";
    case GateRejectReason::kOutOfRange:
      return "out_of_range";
    case GateRejectReason::kStale:
      return "stale";
    case GateRejectReason::kImplausible:
      return "implausible";
  }
  return "?";
}

const char* to_string(FaultKind kind) {
  switch (kind) {
    case FaultKind::kBlackoutDropped:
      return "blackout_dropped";
    case FaultKind::kCorrupted:
      return "corrupted";
    case FaultKind::kStaleSpoofed:
      return "stale_spoofed";
    case FaultKind::kJittered:
      return "jittered";
    case FaultKind::kReordered:
      return "reordered";
    case FaultKind::kDuplicated:
      return "duplicated";
    case FaultKind::kSensorDropped:
      return "sensor_dropped";
    case FaultKind::kSensorStuck:
      return "sensor_stuck";
    case FaultKind::kSensorBiased:
      return "sensor_biased";
  }
  return "?";
}

void append_json_double(std::string& out, double v) {
  if (!std::isfinite(v)) {
    // NaN/inf are not valid JSON literals; a rejected non-finite payload
    // can carry one. null keeps the line parseable.
    out += "null";
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out += buf;
}

void append_json_string(std::string& out, std::string_view s) {
  out += '"';
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

namespace {

void append_prefix(std::string& out, const EpisodeLabel& label) {
  out += "{\"ep\":";
  out += std::to_string(label.episode);
  out += ",\"seed\":";
  out += std::to_string(label.seed);
  if (!label.scenario.empty()) {
    out += ",\"scenario\":";
    append_json_string(out, label.scenario);
  }
  if (!label.fault.empty()) {
    out += ",\"fault\":";
    append_json_string(out, label.fault);
  }
}

void append_bool(std::string& out, bool v) { out += v ? "true" : "false"; }

struct PayloadWriter {
  std::string& out;

  void operator()(const MonitorEvent& e) const {
    out += ",\"type\":\"monitor\",\"emergency\":";
    append_bool(out, e.to_emergency);
    out += ",\"in_boundary\":";
    append_bool(out, e.in_boundary);
    out += ",\"slack\":";
    append_json_double(out, e.slack);
    out += ",\"reason\":";
    append_json_string(out, e.reason);
  }

  void operator()(const LadderEvent& e) const {
    out += ",\"type\":\"ladder\",\"from\":";
    append_json_string(out, e.from);
    out += ",\"to\":";
    append_json_string(out, e.to);
  }

  void operator()(const GateEvent& e) const {
    out += ",\"type\":\"gate_reject\",\"sender\":";
    out += std::to_string(e.sender);
    out += ",\"reason\":";
    append_json_string(out, to_string(e.reason));
    out += ",\"msg_t\":";
    append_json_double(out, e.msg_t);
  }

  void operator()(const RollbackEvent& e) const {
    out += ",\"type\":\"kalman_rollback\",\"anchor_t\":";
    append_json_double(out, e.anchor_t);
    out += ",\"replayed\":";
    out += std::to_string(e.replayed);
  }

  void operator()(const FaultEvent& e) const {
    out += ",\"type\":\"fault\",\"kind\":";
    append_json_string(out, to_string(e.kind));
    out += ",\"value\":";
    append_json_double(out, e.value);
  }

  void operator()(const StepEvent& e) const {
    out += ",\"type\":\"step\",\"accel\":";
    append_json_double(out, e.accel);
    out += ",\"emergency\":";
    append_bool(out, e.emergency);
    out += ",\"margin\":";
    append_json_double(out, e.margin);
    out += ",\"ladder_level\":";
    out += std::to_string(e.ladder_level);
  }

  void operator()(const EpisodeEvent& e) const {
    out += ",\"type\":\"episode_end\",\"collided\":";
    append_bool(out, e.collided);
    out += ",\"reached\":";
    append_bool(out, e.reached);
    out += ",\"eta\":";
    append_json_double(out, e.eta);
    out += ",\"steps\":";
    out += std::to_string(e.steps);
  }
};

}  // namespace

std::string event_jsonl_line(const Event& event, const EpisodeLabel& label) {
  std::string out;
  out.reserve(160);
  append_prefix(out, label);
  out += ",\"step\":";
  out += std::to_string(event.step);
  out += ",\"t\":";
  append_json_double(out, event.t);
  std::visit(PayloadWriter{out}, event.payload);
  out += '}';
  return out;
}

void write_events_jsonl(std::ostream& os, const std::vector<Event>& events,
                        const EpisodeLabel& label, std::size_t dropped) {
  for (const Event& e : events) {
    os << event_jsonl_line(e, label) << '\n';
  }
  if (dropped > 0) {
    std::string out;
    append_prefix(out, label);
    out += ",\"type\":\"trace_dropped\",\"count\":";
    out += std::to_string(dropped);
    out += '}';
    os << out << '\n';
  }
}

}  // namespace cvsafe::obs
