#include "cvsafe/filter/kalman.hpp"

#include <algorithm>
#include <cmath>

#include "cvsafe/obs/profile.hpp"
#include "cvsafe/util/contracts.hpp"

namespace cvsafe::filter {

using util::Interval;
using util::Mat2;
using util::Vec2;

using kalman_core::process_noise;

KalmanFilter::KalmanFilter(KalmanConfig config)
    : config_(config),
      r_(Mat2::diagonal(config.delta_p * config.delta_p / 3.0,
                        config.delta_v * config.delta_v / 3.0)) {
  CVSAFE_EXPECTS(config.dt > 0.0, "Kalman filter needs dt > 0");
  CVSAFE_EXPECTS(config.delta_p >= 0.0 && config.delta_v >= 0.0 &&
                     config.delta_a >= 0.0,
                 "sensor error bounds must be non-negative");
  CVSAFE_EXPECTS(config.sigma_bound > 0.0,
                 "confidence interval needs sigma_bound > 0");
  // One up-front allocation; update() then runs alloc-free forever. The
  // capacity floor of 1 keeps the initializing reading retained even with
  // history_depth == 0 (matching the historical deque, which only trimmed
  // on post-initialization pushes).
  history_.resize(std::max<std::size_t>(config_.history_depth, 1));
}

void KalmanFilter::history_push(const HistoryEntry& entry) {
  if (history_size_ == history_.size()) {
    history_[history_head_] = entry;
    history_head_ = (history_head_ + 1) % history_.size();
  } else {
    history_[(history_head_ + history_size_) % history_.size()] = entry;
    ++history_size_;
  }
}

void KalmanFilter::update(const sensing::SensorReading& reading) {
  CVSAFE_PROFILE_SPAN("kalman.update");
  CVSAFE_EXPECTS(!initialized_ || reading.t >= t_,
                 "sensor readings must arrive in time order");
  if (!initialized_) {
    // Initialize from the first measurement with measurement covariance.
    x_ = Vec2{reading.p, reading.v};
    p_ = r_;
    t_ = reading.t;
    last_a_ = reading.a;
    initialized_ = true;
    history_push(HistoryEntry{reading, x_, p_});
    return;
  }
  // Predict from the previous measurement time to this one.
  const double dt = reading.t - t_;
  if (dt > 0.0) {
    kalman_core::predict(x_, p_, dt, last_a_,
                         process_noise(dt, config_.delta_a) * q_scale_);
  }
  history_push(HistoryEntry{reading, x_, p_});
  if (config_.history_depth == 0) history_size_ = 0;
  apply_update(reading);
  t_ = reading.t;
  last_a_ = reading.a;
}

void KalmanFilter::apply_update(const sensing::SensorReading& reading) {
  const Vec2 z{reading.p, reading.v};
  nis_.update(z - x_, p_ + r_);
  if (config_.adaptive) {
    // Inflate the process noise while the innovations are implausibly
    // large for the claimed covariance; relax back once consistent.
    if (nis_.diverged()) {
      q_scale_ = std::min(q_scale_ * config_.q_scale_grow,
                          config_.q_scale_max);
    } else {
      q_scale_ = 1.0 + (q_scale_ - 1.0) * config_.q_scale_decay;
    }
  }
  kalman_core::joseph_update(x_, p_, z, r_);
  CVSAFE_ENSURES(p_.a >= 0.0 && p_.d >= 0.0,
                 "covariance diagonal must stay non-negative");
}

void KalmanFilter::correct_with_message(double t_k, double p, double v,
                                        double a) {
  CVSAFE_EXPECTS(std::isfinite(t_k),
                 "message rollback timestamp must be finite");
  if (!initialized_) {
    // A message before any sensing: adopt it as an exact initialization.
    x_ = Vec2{p, v};
    p_ = Mat2::diagonal(1e-9, 1e-9);
    t_ = t_k;
    last_a_ = a;
    initialized_ = true;
    applied_msg_time_ = t_k;
    return;
  }
  if (t_k <= applied_msg_time_) return;  // stale relative to applied message
  applied_msg_time_ = t_k;
  if (t_k >= t_) {
    // Message newer than all measurements: predict forward to t_k, then
    // adopt the exact values.
    x_ = Vec2{p, v};
    p_ = Mat2::diagonal(1e-9, 1e-9);
    t_ = t_k;
    last_a_ = a;
    // Replay nothing; history before t_k is now superseded.
    history_head_ = 0;
    history_size_ = 0;
    nis_.reset();
    if (obs::recording(recorder_)) recorder_->rollback(t_k, 0);
    return;
  }
  // Rollback: restart from the exact message state at t_k and replay every
  // stored sensor update that happened after t_k.
  std::size_t first = 0;
  while (first < history_size_ &&
         history_at(first).reading.t <= t_k + 1e-9) {
    ++first;
  }
  if (obs::recording(recorder_)) {
    recorder_->rollback(t_k, history_size_ - first);
  }
  Vec2 x{p, v};
  Mat2 cov = Mat2::diagonal(1e-9, 1e-9);
  double t_cur = t_k;
  double a_cur = a;
  for (std::size_t i = first; i < history_size_; ++i) {
    const auto& entry = history_at(i);
    const double dt = entry.reading.t - t_cur;
    if (dt > 0.0) {
      kalman_core::predict(x, cov, dt, a_cur,
                           process_noise(dt, config_.delta_a));
    }
    // Re-run the measurement update with the stored reading.
    kalman_core::joseph_update(x, cov, Vec2{entry.reading.p, entry.reading.v},
                               r_);
    t_cur = entry.reading.t;
    a_cur = entry.reading.a;
  }
  x_ = x;
  p_ = cov;
  t_ = t_cur;
  last_a_ = a_cur;
  // The rollback re-anchored the state on exact information; past
  // innovations no longer describe the current filter.
  nis_.reset();
}

Vec2 KalmanFilter::state_at(double t) const {
  CVSAFE_EXPECTS(initialized_, "state_at before the first measurement");
  return kalman_core::state_at(view(), t);
}

Mat2 KalmanFilter::covariance_at(double t) const {
  CVSAFE_EXPECTS(initialized_, "covariance_at before the first measurement");
  return kalman_core::covariance_at(view(), t);
}

Interval KalmanFilter::position_interval(double t) const {
  const Vec2 x = state_at(t);
  const Mat2 p = covariance_at(t);
  const double sigma = std::sqrt(std::max(0.0, p.a));
  return Interval::centered(x.x, config_.sigma_bound * sigma);
}

Interval KalmanFilter::velocity_interval(double t) const {
  const Vec2 x = state_at(t);
  const Mat2 p = covariance_at(t);
  const double sigma = std::sqrt(std::max(0.0, p.d));
  return Interval::centered(x.y, config_.sigma_bound * sigma);
}

}  // namespace cvsafe::filter
