#include "cvsafe/filter/naive.hpp"

#include "cvsafe/filter/plausibility.hpp"

namespace cvsafe::filter {

void NaiveExtrapolator::on_sensor(const sensing::SensorReading& reading) {
  if (sensor_.valid && reading.t < sensor_.t) return;
  sensor_ = Source{true, reading.t, reading.p, reading.v, reading.a};
}

void NaiveExtrapolator::on_message(const comm::Message& msg) {
  // Stateless non-finite screen; the extrapolator keeps no bounds to
  // gate against.
  const auto screened = PlausibilityGate::screen_fields(msg);
  if (!screened) return;
  if (message_.valid && screened->t < message_.t) return;
  message_ = Source{true, screened->t, screened->p, screened->v,
                    screened->a};
}

StateEstimate NaiveExtrapolator::estimate(double t) const {
  StateEstimate est;
  est.t = t;

  // Exact message content wins over the noisy sensor while it is fresh
  // enough; otherwise take whichever source is freshest.
  const bool message_usable =
      message_.valid && (t - message_.t) <= max_message_age_;
  const Source* src = nullptr;
  bool from_sensor = false;
  if (message_usable) {
    src = &message_;
  } else if (sensor_.valid &&
             (!message_.valid || sensor_.t >= message_.t)) {
    src = &sensor_;
    from_sensor = true;
  } else if (message_.valid) {
    src = &message_;
  }
  if (src == nullptr) return est;  // invalid

  const double dt = t - src->t;
  const double p_now = src->p + src->v * (dt > 0.0 ? dt : 0.0);
  const double dp = from_sensor ? delta_p_ : 0.0;
  const double dv = from_sensor ? delta_v_ : 0.0;
  est.p = util::Interval::centered(p_now, dp);
  est.v = util::Interval::centered(src->v, dv);
  est.p_hat = p_now;
  est.v_hat = src->v;
  est.a_hat = src->a;
  est.valid = true;
  return est;
}

}  // namespace cvsafe::filter
