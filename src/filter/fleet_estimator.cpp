#include "cvsafe/filter/fleet_estimator.hpp"

#include <algorithm>
#include <cmath>

#include "cvsafe/obs/profile.hpp"
#include "cvsafe/util/contracts.hpp"

namespace cvsafe::filter {

using util::Interval;
using util::Mat2;
using util::Vec2;

using kalman_core::process_noise;

namespace {

bool same_config(const KalmanConfig& a, const KalmanConfig& b) {
  return a.dt == b.dt && a.delta_p == b.delta_p && a.delta_v == b.delta_v &&
         a.delta_a == b.delta_a && a.sigma_bound == b.sigma_bound &&
         a.history_depth == b.history_depth && a.adaptive == b.adaptive &&
         a.q_scale_max == b.q_scale_max && a.q_scale_grow == b.q_scale_grow &&
         a.q_scale_decay == b.q_scale_decay;
}

}  // namespace

std::size_t FleetEstimator::acquire(const KalmanConfig& config) {
  if (!configured_) {
    CVSAFE_EXPECTS(config.dt > 0.0, "Kalman filter needs dt > 0");
    CVSAFE_EXPECTS(config.delta_p >= 0.0 && config.delta_v >= 0.0 &&
                       config.delta_a >= 0.0,
                   "sensor error bounds must be non-negative");
    CVSAFE_EXPECTS(config.sigma_bound > 0.0,
                   "confidence interval needs sigma_bound > 0");
    config_ = config;
    r_ = Mat2::diagonal(config.delta_p * config.delta_p / 3.0,
                        config.delta_v * config.delta_v / 3.0);
    depth_ = std::max<std::size_t>(config.history_depth, 1);
    configured_ = true;
  } else {
    // One pool runs one blueprint; a second configuration would silently
    // share r_/depth_ with the first and break bit-identity.
    CVSAFE_EXPECTS(same_config(config_, config),
                   "fleet estimator slots must share one KalmanConfig");
  }
  if (free_.empty()) {
    grow(cap_ == 0 ? 64 : cap_ * 2);
  }
  const std::size_t slot = free_.back();
  free_.pop_back();
  reset_slot(slot);
  return slot;
}

void FleetEstimator::release(std::size_t slot) {
  CVSAFE_EXPECTS(slot < cap_, "release of an unknown estimator slot");
  free_.push_back(slot);
}

void FleetEstimator::grow(std::size_t new_cap) {
  CVSAFE_EXPECTS(new_cap > cap_, "fleet estimator can only grow");
  const std::size_t old_cap = cap_;
  // Re-layout the position-major history slab for the wider stride.
  std::vector<HistoryEntry> wider(depth_ * new_cap);
  for (std::size_t pos = 0; pos < depth_; ++pos) {
    for (std::size_t slot = 0; slot < old_cap; ++slot) {
      wider[pos * new_cap + slot] = hist_[pos * old_cap + slot];
    }
  }
  hist_ = std::move(wider);
  const auto widen = [new_cap](auto& v) { v.resize(new_cap); };
  widen(x0_);
  widen(x1_);
  widen(p00_);
  widen(p01_);
  widen(p10_);
  widen(p11_);
  widen(t_);
  widen(last_a_);
  widen(q_scale_);
  widen(applied_msg_time_);
  widen(innov_p_);
  widen(innov_v_);
  widen(last_nis_);
  widen(initialized_);
  widen(nis_);
  widen(hist_head_);
  widen(hist_size_);
  widen(pr_valid_);
  widen(pr_t_);
  widen(pr_x0_);
  widen(pr_x1_);
  widen(pr_p00_);
  widen(pr_p01_);
  widen(pr_p10_);
  widen(pr_p11_);
  staged_slots_.reserve(new_cap);
  staged_readings_.reserve(new_cap);
  predict_slots_.reserve(new_cap);
  predict_t_.reserve(new_cap);
  free_.reserve(new_cap);
  for (std::size_t slot = new_cap; slot-- > old_cap;) {
    free_.push_back(slot);
  }
  cap_ = new_cap;
}

void FleetEstimator::reset_slot(std::size_t slot) {
  x0_[slot] = 0.0;
  x1_[slot] = 0.0;
  p00_[slot] = 0.0;
  p01_[slot] = 0.0;
  p10_[slot] = 0.0;
  p11_[slot] = 0.0;
  t_[slot] = 0.0;
  last_a_[slot] = 0.0;
  q_scale_[slot] = 1.0;
  applied_msg_time_[slot] = -1.0;
  innov_p_[slot] = 0.0;
  innov_v_[slot] = 0.0;
  last_nis_[slot] = 0.0;
  initialized_[slot] = 0;
  nis_[slot] = NisMonitor{};
  hist_head_[slot] = 0;
  hist_size_[slot] = 0;
  pr_valid_[slot] = 0;
}

void FleetEstimator::history_push(std::size_t slot,
                                  const HistoryEntry& entry) {
  if (hist_size_[slot] == depth_) {
    hist(slot, hist_head_[slot]) = entry;
    hist_head_[slot] = (hist_head_[slot] + 1) % depth_;
  } else {
    hist(slot, (hist_head_[slot] + hist_size_[slot]) % depth_) = entry;
    ++hist_size_[slot];
  }
}

void FleetEstimator::stage(std::size_t slot,
                           const sensing::SensorReading& reading) {
  CVSAFE_EXPECTS(slot < cap_, "stage on an unknown estimator slot");
  CVSAFE_EXPECTS(initialized_[slot] == 0 || reading.t >= t_[slot],
                 "sensor readings must arrive in time order");
  staged_slots_.push_back(static_cast<std::uint32_t>(slot));
  staged_readings_.push_back(reading);
}

void FleetEstimator::update_batch() {
  CVSAFE_PROFILE_SPAN("fleet_estimator.update_batch");
  for (std::size_t i = 0; i < staged_slots_.size(); ++i) {
    absorb(staged_slots_[i], staged_readings_[i]);
  }
  staged_slots_.clear();
  staged_readings_.clear();
}

void FleetEstimator::absorb(std::size_t slot,
                            const sensing::SensorReading& reading) {
  pr_valid_[slot] = 0;
  if (!initialized_[slot]) {
    // Initialize from the first measurement with measurement covariance
    // (identical to KalmanFilter::update on the virgin filter).
    x0_[slot] = reading.p;
    x1_[slot] = reading.v;
    p00_[slot] = r_.a;
    p01_[slot] = r_.b;
    p10_[slot] = r_.c;
    p11_[slot] = r_.d;
    t_[slot] = reading.t;
    last_a_[slot] = reading.a;
    initialized_[slot] = 1;
    history_push(slot, HistoryEntry{reading, Vec2{reading.p, reading.v}, r_});
    return;
  }
  Vec2 x{x0_[slot], x1_[slot]};
  Mat2 p{p00_[slot], p01_[slot], p10_[slot], p11_[slot]};
  // Predict from the previous measurement time to this one.
  const double dt = reading.t - t_[slot];
  if (dt > 0.0) {
    kalman_core::predict(x, p, dt, last_a_[slot],
                         process_noise(dt, config_.delta_a) * q_scale_[slot]);
  }
  history_push(slot, HistoryEntry{reading, x, p});
  if (config_.history_depth == 0) hist_size_[slot] = 0;
  const Vec2 z{reading.p, reading.v};
  const Vec2 y = z - x;
  last_nis_[slot] = nis_[slot].update(y, p + r_);
  innov_p_[slot] = y.x;
  innov_v_[slot] = y.y;
  if (config_.adaptive) {
    // Same inflate/relax policy as the scalar filter's apply_update.
    if (nis_[slot].diverged()) {
      q_scale_[slot] =
          std::min(q_scale_[slot] * config_.q_scale_grow, config_.q_scale_max);
    } else {
      q_scale_[slot] = 1.0 + (q_scale_[slot] - 1.0) * config_.q_scale_decay;
    }
  }
  kalman_core::joseph_update(x, p, z, r_);
  CVSAFE_ENSURES(p.a >= 0.0 && p.d >= 0.0,
                 "covariance diagonal must stay non-negative");
  x0_[slot] = x.x;
  x1_[slot] = x.y;
  p00_[slot] = p.a;
  p01_[slot] = p.b;
  p10_[slot] = p.c;
  p11_[slot] = p.d;
  t_[slot] = reading.t;
  last_a_[slot] = reading.a;
}

void FleetEstimator::stage_predict(std::size_t slot, double t) {
  CVSAFE_EXPECTS(slot < cap_, "stage_predict on an unknown estimator slot");
  CVSAFE_EXPECTS(initialized_[slot] != 0,
                 "stage_predict before the first measurement");
  predict_slots_.push_back(static_cast<std::uint32_t>(slot));
  predict_t_.push_back(t);
}

void FleetEstimator::predict_batch() {
  CVSAFE_PROFILE_SPAN("fleet_estimator.predict_batch");
  for (std::size_t i = 0; i < predict_slots_.size(); ++i) {
    const std::size_t slot = predict_slots_[i];
    const double t = predict_t_[i];
    const kalman_core::KalmanView v = view(slot);
    const Vec2 x = kalman_core::state_at(v, t);
    const Mat2 p = kalman_core::covariance_at(v, t);
    pr_t_[slot] = t;
    pr_x0_[slot] = x.x;
    pr_x1_[slot] = x.y;
    pr_p00_[slot] = p.a;
    pr_p01_[slot] = p.b;
    pr_p10_[slot] = p.c;
    pr_p11_[slot] = p.d;
    pr_valid_[slot] = 1;
  }
  predict_slots_.clear();
  predict_t_.clear();
}

void FleetEstimator::correct_with_message(std::size_t slot, double t_k,
                                          double p, double v, double a) {
  CVSAFE_EXPECTS(slot < cap_, "rollback on an unknown estimator slot");
  CVSAFE_EXPECTS(std::isfinite(t_k),
                 "message rollback timestamp must be finite");
  if (!initialized_[slot]) {
    // A message before any sensing: adopt it as an exact initialization.
    pr_valid_[slot] = 0;
    x0_[slot] = p;
    x1_[slot] = v;
    p00_[slot] = 1e-9;
    p01_[slot] = 0.0;
    p10_[slot] = 0.0;
    p11_[slot] = 1e-9;
    t_[slot] = t_k;
    last_a_[slot] = a;
    initialized_[slot] = 1;
    applied_msg_time_[slot] = t_k;
    return;
  }
  if (t_k <= applied_msg_time_[slot]) return;  // stale vs applied message
  applied_msg_time_[slot] = t_k;
  pr_valid_[slot] = 0;
  if (t_k >= t_[slot]) {
    // Message newer than all measurements: adopt the exact values and
    // supersede the stored history.
    x0_[slot] = p;
    x1_[slot] = v;
    p00_[slot] = 1e-9;
    p01_[slot] = 0.0;
    p10_[slot] = 0.0;
    p11_[slot] = 1e-9;
    t_[slot] = t_k;
    last_a_[slot] = a;
    hist_head_[slot] = 0;
    hist_size_[slot] = 0;
    nis_[slot].reset();
    return;
  }
  // Rollback: restart from the exact message state at t_k and replay every
  // stored sensor update that happened after t_k.
  std::size_t first = 0;
  while (first < hist_size_[slot] &&
         hist_at(slot, first).reading.t <= t_k + 1e-9) {
    ++first;
  }
  Vec2 x{p, v};
  Mat2 cov = Mat2::diagonal(1e-9, 1e-9);
  double t_cur = t_k;
  double a_cur = a;
  for (std::size_t i = first; i < hist_size_[slot]; ++i) {
    const auto& entry = hist_at(slot, i);
    const double dt = entry.reading.t - t_cur;
    if (dt > 0.0) {
      kalman_core::predict(x, cov, dt, a_cur,
                           process_noise(dt, config_.delta_a));
    }
    kalman_core::joseph_update(x, cov, Vec2{entry.reading.p, entry.reading.v},
                               r_);
    t_cur = entry.reading.t;
    a_cur = entry.reading.a;
  }
  x0_[slot] = x.x;
  x1_[slot] = x.y;
  p00_[slot] = cov.a;
  p01_[slot] = cov.b;
  p10_[slot] = cov.c;
  p11_[slot] = cov.d;
  t_[slot] = t_cur;
  last_a_[slot] = a_cur;
  // Past innovations no longer describe the re-anchored filter.
  nis_[slot].reset();
}

Vec2 FleetEstimator::state_at(std::size_t slot, double t) const {
  CVSAFE_EXPECTS(initialized_[slot] != 0,
                 "state_at before the first measurement");
  if (pr_valid_[slot] != 0 && pr_t_[slot] == t) {
    return Vec2{pr_x0_[slot], pr_x1_[slot]};
  }
  return kalman_core::state_at(view(slot), t);
}

Interval FleetEstimator::position_interval(std::size_t slot, double t) const {
  CVSAFE_EXPECTS(initialized_[slot] != 0,
                 "position_interval before the first measurement");
  double center = 0.0;
  double var = 0.0;
  if (pr_valid_[slot] != 0 && pr_t_[slot] == t) {
    center = pr_x0_[slot];
    var = pr_p00_[slot];
  } else {
    const kalman_core::KalmanView v = view(slot);
    center = kalman_core::state_at(v, t).x;
    var = kalman_core::covariance_at(v, t).a;
  }
  const double sigma = std::sqrt(std::max(0.0, var));
  return Interval::centered(center, config_.sigma_bound * sigma);
}

Interval FleetEstimator::velocity_interval(std::size_t slot, double t) const {
  CVSAFE_EXPECTS(initialized_[slot] != 0,
                 "velocity_interval before the first measurement");
  double center = 0.0;
  double var = 0.0;
  if (pr_valid_[slot] != 0 && pr_t_[slot] == t) {
    center = pr_x1_[slot];
    var = pr_p11_[slot];
  } else {
    const kalman_core::KalmanView v = view(slot);
    center = kalman_core::state_at(v, t).y;
    var = kalman_core::covariance_at(v, t).d;
  }
  const double sigma = std::sqrt(std::max(0.0, var));
  return Interval::centered(center, config_.sigma_bound * sigma);
}

}  // namespace cvsafe::filter
