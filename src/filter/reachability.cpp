#include "cvsafe/filter/reachability.hpp"

#include <algorithm>

#include "cvsafe/util/contracts.hpp"
#include "cvsafe/util/kinematics.hpp"

namespace cvsafe::filter {

using util::Interval;

StateBounds StateBounds::exact(double t, double p, double v) {
  return StateBounds{t, Interval::point(p), Interval::point(v)};
}

StateBounds StateBounds::from_measurement(
    double t, double p, double v, double dp, double dv,
    const vehicle::VehicleLimits& limits) {
  CVSAFE_EXPECTS(dp >= 0.0 && dv >= 0.0,
                 "measurement error bounds must be non-negative");
  CVSAFE_EXPECTS(limits.valid(), "vehicle limits must be well-formed");
  Interval vi = Interval::centered(v, dv).intersect(
      Interval{limits.v_min, limits.v_max});
  if (vi.empty()) {
    // Measurement noise pushed the whole interval outside the physical
    // range; clamp to the nearest feasible speed.
    const double vc = std::clamp(v, limits.v_min, limits.v_max);
    vi = Interval::point(vc);
  }
  return StateBounds{t, Interval::centered(p, dp), vi};
}

StateBounds propagate(const StateBounds& bounds, double t,
                      const vehicle::VehicleLimits& limits) {
  CVSAFE_EXPECTS(limits.valid(), "vehicle limits must be well-formed");
  CVSAFE_EXPECTS(!bounds.p.empty() && !bounds.v.empty(),
                 "cannot propagate empty state bounds");
  const double dt = t - bounds.t;
  if (dt <= 0.0) return bounds;
  StateBounds out;
  out.t = t;
  // Upper bound: full throttle until v_max (first branch of Eq. 2), then
  // cruise (second branch). Lower bound: full braking until v_min.
  out.p = Interval{
      bounds.p.lo + util::displacement_with_speed_cap(bounds.v.lo,
                                                      limits.a_min, dt,
                                                      limits.v_min),
      bounds.p.hi + util::displacement_with_speed_cap(bounds.v.hi,
                                                      limits.a_max, dt,
                                                      limits.v_max)};
  out.v = Interval{
      util::speed_after(bounds.v.lo, limits.a_min, dt, limits.v_min),
      util::speed_after(bounds.v.hi, limits.a_max, dt, limits.v_max)};
  CVSAFE_ENSURES(!out.p.empty() && !out.v.empty(),
                 "propagation must preserve non-empty bounds");
  return out;
}

void propagate_batch(std::span<const StateBounds> bounds,
                     std::span<const double> t,
                     const vehicle::VehicleLimits& limits,
                     std::span<StateBounds> out) {
  CVSAFE_EXPECTS(bounds.size() == t.size() && bounds.size() == out.size(),
                 "propagate_batch lanes must have matching extents");
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    out[i] = propagate(bounds[i], t[i], limits);
  }
}

}  // namespace cvsafe::filter
