#include "cvsafe/filter/reachability.hpp"

#include <algorithm>

#include "cvsafe/util/contracts.hpp"
#include "cvsafe/util/kinematics.hpp"

namespace cvsafe::filter {

using util::Interval;

StateBounds StateBounds::exact(double t, double p, double v) {
  return StateBounds{t, Interval::point(p), Interval::point(v)};
}

StateBounds StateBounds::from_measurement(
    double t, double p, double v, double dp, double dv,
    const vehicle::VehicleLimits& limits) {
  CVSAFE_EXPECTS(dp >= 0.0 && dv >= 0.0,
                 "measurement error bounds must be non-negative");
  CVSAFE_EXPECTS(limits.valid(), "vehicle limits must be well-formed");
  Interval vi = Interval::centered(v, dv).intersect(
      Interval{limits.v_min, limits.v_max});
  if (vi.empty()) {
    // Measurement noise pushed the whole interval outside the physical
    // range; clamp to the nearest feasible speed.
    const double vc = std::clamp(v, limits.v_min, limits.v_max);
    vi = Interval::point(vc);
  }
  return StateBounds{t, Interval::centered(p, dp), vi};
}

StateBounds propagate(const StateBounds& bounds, double t,
                      const vehicle::VehicleLimits& limits) {
  CVSAFE_EXPECTS(limits.valid(), "vehicle limits must be well-formed");
  CVSAFE_EXPECTS(!bounds.p.empty() && !bounds.v.empty(),
                 "cannot propagate empty state bounds");
  const double dt = t - bounds.t;
  if (dt <= 0.0) return bounds;
  StateBounds out;
  out.t = t;
  // Upper bound: full throttle until v_max (first branch of Eq. 2), then
  // cruise (second branch). Lower bound: full braking until v_min.
  out.p = Interval{
      bounds.p.lo + util::displacement_with_speed_cap(bounds.v.lo,
                                                      limits.a_min, dt,
                                                      limits.v_min),
      bounds.p.hi + util::displacement_with_speed_cap(bounds.v.hi,
                                                      limits.a_max, dt,
                                                      limits.v_max)};
  out.v = Interval{
      util::speed_after(bounds.v.lo, limits.a_min, dt, limits.v_min),
      util::speed_after(bounds.v.hi, limits.a_max, dt, limits.v_max)};
  CVSAFE_ENSURES(!out.p.empty() && !out.v.empty(),
                 "propagation must preserve non-empty bounds");
  return out;
}

void propagate_batch(std::span<const StateBounds> bounds,
                     std::span<const double> t,
                     const vehicle::VehicleLimits& limits,
                     std::span<StateBounds> out) {
  CVSAFE_EXPECTS(bounds.size() == t.size() && bounds.size() == out.size(),
                 "propagate_batch lanes must have matching extents");
  for (std::size_t i = 0; i < bounds.size(); ++i) {
    out[i] = propagate(bounds[i], t[i], limits);
  }
}

void propagate_batch(const ReachLanes& in,
                     const vehicle::VehicleLimits& limits,
                     std::span<double> out_t, std::span<double> out_p_lo,
                     std::span<double> out_p_hi, std::span<double> out_v_lo,
                     std::span<double> out_v_hi) {
  const std::size_t n = in.t0.size();
  CVSAFE_EXPECTS(in.p_lo.size() == n && in.p_hi.size() == n &&
                     in.v_lo.size() == n && in.v_hi.size() == n &&
                     in.t.size() == n && out_t.size() == n &&
                     out_p_lo.size() == n && out_p_hi.size() == n &&
                     out_v_lo.size() == n && out_v_hi.size() == n,
                 "propagate_batch lanes must have matching extents");
  CVSAFE_EXPECTS(limits.valid(), "vehicle limits must be well-formed");
  // Hot loop of the fleet reach sweep: the scalar propagate()'s branch
  // structure inlined over per-field arrays (the kinematics helpers are
  // header-inline for exactly this loop).
  for (std::size_t i = 0; i < n; ++i) {
    CVSAFE_EXPECTS(in.p_lo[i] <= in.p_hi[i] && in.v_lo[i] <= in.v_hi[i],
                   "cannot propagate empty state bounds");
    const double dt = in.t[i] - in.t0[i];
    if (dt <= 0.0) {
      out_t[i] = in.t0[i];
      out_p_lo[i] = in.p_lo[i];
      out_p_hi[i] = in.p_hi[i];
      out_v_lo[i] = in.v_lo[i];
      out_v_hi[i] = in.v_hi[i];
      continue;
    }
    out_t[i] = in.t[i];
    out_p_lo[i] = in.p_lo[i] + util::displacement_with_speed_cap(
                                   in.v_lo[i], limits.a_min, dt, limits.v_min);
    out_p_hi[i] = in.p_hi[i] + util::displacement_with_speed_cap(
                                   in.v_hi[i], limits.a_max, dt, limits.v_max);
    out_v_lo[i] = util::speed_after(in.v_lo[i], limits.a_min, dt,
                                    limits.v_min);
    out_v_hi[i] = util::speed_after(in.v_hi[i], limits.a_max, dt,
                                    limits.v_max);
    CVSAFE_ENSURES(out_p_lo[i] <= out_p_hi[i] && out_v_lo[i] <= out_v_hi[i],
                   "propagation must preserve non-empty bounds");
  }
}

}  // namespace cvsafe::filter
