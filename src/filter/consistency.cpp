#include "cvsafe/filter/consistency.hpp"

#include <cassert>

namespace cvsafe::filter {

NisMonitor::NisMonitor(double alpha, double high_gate, std::size_t warmup)
    : alpha_(alpha), high_gate_(high_gate), warmup_(warmup) {
  assert(alpha > 0.0 && alpha <= 1.0);
  assert(high_gate > 0.0);
}

double NisMonitor::update(const util::Vec2& y, const util::Mat2& s) {
  assert(s.determinant() != 0.0);
  const util::Vec2 si_y = s.inverse() * y;
  const double nis = y.dot(si_y);
  ++count_;
  if (count_ == 1) {
    mean_ = nis;
  } else {
    mean_ += alpha_ * (nis - mean_);
  }
  return nis;
}

bool NisMonitor::diverged() const {
  return count_ >= warmup_ && mean_ > high_gate_;
}

void NisMonitor::reset() {
  mean_ = 0.0;
  count_ = 0;
}

}  // namespace cvsafe::filter
