#include "cvsafe/filter/consistency.hpp"

#include "cvsafe/util/contracts.hpp"

namespace cvsafe::filter {

NisMonitor::NisMonitor(double alpha, double high_gate, std::size_t warmup)
    : alpha_(alpha), high_gate_(high_gate), warmup_(warmup) {
  CVSAFE_EXPECTS(alpha > 0.0 && alpha <= 1.0,
                 "NIS smoothing factor must lie in (0, 1]");
  CVSAFE_EXPECTS(high_gate > 0.0, "NIS divergence gate must be positive");
}

double NisMonitor::update(const util::Vec2& y, const util::Mat2& s) {
  // cvsafe-lint: allow(float-compare) exact singularity guard
  CVSAFE_EXPECTS(s.determinant() != 0.0,
                 "innovation covariance must be invertible");
  const util::Vec2 si_y = s.inverse() * y;
  const double nis = y.dot(si_y);
  ++count_;
  if (count_ == 1) {
    mean_ = nis;
  } else {
    mean_ += alpha_ * (nis - mean_);
  }
  return nis;
}

bool NisMonitor::diverged() const {
  return count_ >= warmup_ && mean_ > high_gate_;
}

void NisMonitor::reset() {
  mean_ = 0.0;
  count_ = 0;
}

}  // namespace cvsafe::filter
