#include "cvsafe/filter/info_filter.hpp"

#include <algorithm>
#include <span>
#include <utility>

#include "cvsafe/obs/profile.hpp"
#include "cvsafe/util/contracts.hpp"

namespace cvsafe::filter {

using util::Interval;

InfoFilterOptions InfoFilterOptions::basic() {
  InfoFilterOptions o;
  o.use_message_reachability = true;
  o.use_sensor_reachability = true;
  o.use_kalman = false;
  return o;
}

InfoFilterOptions InfoFilterOptions::ultimate() {
  InfoFilterOptions o;
  o.use_message_reachability = true;
  o.use_sensor_reachability = true;
  o.use_kalman = true;
  o.kalman_message_rollback = true;
  return o;
}

InformationFilter::InformationFilter(vehicle::VehicleLimits limits,
                                     sensing::SensorConfig sensor,
                                     InfoFilterOptions options,
                                     GateConfig gate)
    : limits_(limits), sensor_(sensor), options_(options), gate_(gate) {
  if (options_.use_kalman) kalman_.emplace(kalman_config());
}

InformationFilter::InformationFilter(InformationFilter&& other) noexcept
    : limits_(other.limits_),
      sensor_(other.sensor_),
      options_(other.options_),
      kalman_(std::move(other.kalman_)),
      fleet_(other.fleet_),
      fleet_slot_(other.fleet_slot_),
      gate_(std::move(other.gate_)),
      fused_(other.fused_),
      reach_cache_(other.reach_cache_),
      reach_cache_query_(other.reach_cache_query_),
      last_msg_accel_(other.last_msg_accel_),
      last_sense_accel_(other.last_sense_accel_),
      last_msg_time_(other.last_msg_time_),
      last_sense_time_(other.last_sense_time_) {
  other.fleet_ = nullptr;  // the slot moved with us
}

InformationFilter::~InformationFilter() {
  if (fleet_ != nullptr) fleet_->release(fleet_slot_);
}

KalmanConfig InformationFilter::kalman_config() const {
  return KalmanConfig{sensor_.period, sensor_.delta_p, sensor_.delta_v,
                      sensor_.delta_a, 3.0, 64};
}

void InformationFilter::bind_fleet(FleetEstimator& fleet) {
  if (!options_.use_kalman) return;
  CVSAFE_EXPECTS(fleet_ == nullptr, "filter is already pool-bound");
  CVSAFE_EXPECTS(!kalman_->initialized(),
                 "bind_fleet must run before the first reading");
  fleet_ = &fleet;
  fleet_slot_ = fleet.acquire(kalman_config());
  kalman_.reset();  // the Kalman state now lives in the pool lane
}

void InformationFilter::stage_sweeps(double t, ReachSweep& reach) {
  if (fused_) reach.stage(*this, t);
  if (options_.use_kalman && fleet_ != nullptr &&
      fleet_->initialized(fleet_slot_)) {
    fleet_->stage_predict(fleet_slot_, t);
  }
}

void InformationFilter::fuse(const StateBounds& incoming) {
  CVSAFE_EXPECTS(!incoming.p.empty() && !incoming.v.empty(),
                 "fused information must describe a non-empty state set");
  // Any change to the fused bounds voids the sweep's propagated cache.
  reach_cache_.reset();
  if (!fused_) {
    fused_ = incoming;
    return;
  }
  if (incoming.t >= fused_->t) {
    const StateBounds prior = propagate(*fused_, incoming.t, limits_);
    StateBounds joined{incoming.t, prior.p.intersect(incoming.p),
                       prior.v.intersect(incoming.v)};
    if (joined.p.empty() || joined.v.empty()) {
      // Numerically inconsistent (should not happen with sound inputs):
      // trust the fresher information.
      fused_ = incoming;
    } else {
      fused_ = joined;
    }
    return;
  }
  // Stale information (e.g. a heavily delayed message): propagate it to
  // the current fusion time and intersect.
  const StateBounds aged = propagate(incoming, fused_->t, limits_);
  StateBounds joined{fused_->t, fused_->p.intersect(aged.p),
                     fused_->v.intersect(aged.v)};
  if (!joined.p.empty() && !joined.v.empty()) fused_ = joined;
}

void InformationFilter::on_sensor(const sensing::SensorReading& reading) {
  if (options_.use_sensor_reachability) {
    fuse(StateBounds::from_measurement(reading.t, reading.p, reading.v,
                                       sensor_.delta_p, sensor_.delta_v,
                                       limits_));
    last_sense_accel_ = reading.a;
    last_sense_time_ = reading.t;
  }
  if (options_.use_kalman) {
    if (fleet_ != nullptr) {
      // Pooled mode defers the arithmetic to the fleet-wide measurement
      // sweep. Bit-safe: nothing reads this lane's Kalman state between
      // the sense sweep and update_batch (interval fusion above is
      // independent of it, and this step's messages were delivered
      // before the sense sweep — the same message-before-sensor order
      // the scalar loop runs within a step).
      fleet_->stage(fleet_slot_, reading);
    } else {
      kalman_->update(reading);
    }
  }
}

void InformationFilter::on_message(const comm::Message& msg) {
  // Every payload field is consumed through the plausibility gate; a
  // rejected message leaves all filter state untouched.
  kalman_core::KalmanView kview;
  const kalman_core::KalmanView* kv = nullptr;
  if (options_.use_kalman) {
    kview = kalman_view();
    kv = &kview;
  }
  const auto screened =
      gate_.screen(msg, limits_, newest_information_time(), fused_, kv);
  if (!screened) return;
  if (options_.use_message_reachability) {
    const GateConfig& g = gate_.config();
    if (g.trust_margin_p > 0.0 || g.trust_margin_v > 0.0) {
      // Suspect channel: a payload that survives screening may still be
      // perturbed, so fuse it as a box rather than an exact point to
      // keep the set-membership bounds sound.
      fuse(StateBounds::from_measurement(screened->t, screened->p,
                                         screened->v, g.trust_margin_p,
                                         g.trust_margin_v, limits_));
    } else {
      fuse(StateBounds::exact(screened->t, screened->p, screened->v));
    }
    if (screened->t > last_msg_time_) {
      last_msg_accel_ = screened->a;
      last_msg_time_ = screened->t;
    }
  }
  if (options_.use_kalman && options_.kalman_message_rollback) {
    if (fleet_ != nullptr) {
      fleet_->correct_with_message(fleet_slot_, screened->t, screened->p,
                                   screened->v, screened->a);
    } else {
      kalman_->correct_with_message(screened->t, screened->p, screened->v,
                                    screened->a);
    }
  }
}

StateEstimate InformationFilter::estimate(double t) const {
  CVSAFE_PROFILE_SPAN("filter.estimate");
  StateEstimate est;
  est.t = t;

  // 1. Sound set-membership bounds (recursive intersection of every past
  //    message and reading, propagated to now).
  Interval p_bound = Interval::everything();
  Interval v_bound{limits_.v_min, limits_.v_max};
  bool have_sound = false;
  if (fused_) {
    // Pooled mode: the ReachSweep already propagated these bounds to t —
    // reuse its cache (bit-identical; same kernel, same inputs).
    // cvsafe-lint: allow(float-compare) exact cache-key match
    const StateBounds reach = (reach_cache_ && reach_cache_query_ == t)
                                  ? *reach_cache_
                                  : propagate(*fused_, t, limits_);
    p_bound = p_bound.intersect(reach.p);
    v_bound = v_bound.intersect(reach.v);
    have_sound = true;
  }
  const bool kalman_ready =
      options_.use_kalman && (fleet_ != nullptr
                                  ? fleet_->initialized(fleet_slot_)
                                  : kalman_->initialized());
  if (!have_sound && !kalman_ready) {
    est.valid = false;
    return est;
  }

  Interval p_joined = p_bound;
  Interval v_joined = v_bound;

  // 2. Join with the Kalman confidence interval (the paper's information
  //    filter). If the probabilistic interval misses the sound bounds
  //    entirely, the sound bounds win. Pooled lanes read the fleet
  //    estimator (whose predict sweep cached the extrapolation to t).
  double p_hat;
  double v_hat;
  if (kalman_ready) {
    const Interval pk = fleet_ != nullptr
                            ? fleet_->position_interval(fleet_slot_, t)
                            : kalman_->position_interval(t);
    const Interval vk = fleet_ != nullptr
                            ? fleet_->velocity_interval(fleet_slot_, t)
                            : kalman_->velocity_interval(t);
    const Interval pj = p_joined.intersect(pk);
    const Interval vj = v_joined.intersect(vk);
    if (!pj.empty()) p_joined = pj;
    if (!vj.empty()) v_joined = vj;
    const util::Vec2 x = fleet_ != nullptr
                             ? fleet_->state_at(fleet_slot_, t)
                             : kalman_->state_at(t);
    p_hat = p_joined.empty() ? x.x : p_joined.clamp(x.x);
    v_hat = v_joined.empty() ? x.y : v_joined.clamp(x.y);
  } else {
    p_hat = p_joined.mid();
    v_hat = v_joined.mid();
  }

  est.p = p_joined;
  est.v = v_joined;
  est.p_hat = p_hat;
  est.v_hat = v_hat;
  // Acceleration: freshest known value (message content is exact, prefer
  // it on ties).
  est.a_hat = (last_msg_time_ >= last_sense_time_) ? last_msg_accel_
                                                   : last_sense_accel_;
  est.valid = true;
  CVSAFE_ENSURES(!est.p.empty() && !est.v.empty(),
                 "a valid estimate must carry non-empty bounds");
  CVSAFE_ENSURES(est.p.contains(est.p_hat) && est.v.contains(est.v_hat),
                 "point estimate must lie inside its own bounds");
  return est;
}

namespace {

bool same_limits(const vehicle::VehicleLimits& a,
                 const vehicle::VehicleLimits& b) {
  // cvsafe-lint: allow(float-compare) exact batching key, not a tolerance
  return a.v_min == b.v_min && a.v_max == b.v_max && a.a_min == b.a_min &&
         a.a_max == b.a_max;
}

}  // namespace

void ReachSweep::clear() {
  filters_.clear();
  limits_.clear();
  t0_.clear();
  p_lo_.clear();
  p_hi_.clear();
  v_lo_.clear();
  v_hi_.clear();
  t_.clear();
}

void ReachSweep::stage(InformationFilter& filter, double t) {
  const auto& fused = filter.fused_bounds();
  if (!fused) return;
  filters_.push_back(&filter);
  limits_.push_back(filter.limits());
  t0_.push_back(fused->t);
  p_lo_.push_back(fused->p.lo);
  p_hi_.push_back(fused->p.hi);
  v_lo_.push_back(fused->v.lo);
  v_hi_.push_back(fused->v.hi);
  t_.push_back(t);
}

void ReachSweep::run() {
  CVSAFE_PROFILE_SPAN("reach_sweep.run");
  const std::size_t n = filters_.size();
  out_t_.resize(n);
  out_p_lo_.resize(n);
  out_p_hi_.resize(n);
  out_v_lo_.resize(n);
  out_v_hi_.resize(n);
  // One kernel call per run of value-identical limits; a homogeneous
  // fleet pool is a single run.
  std::size_t i = 0;
  while (i < n) {
    std::size_t j = i + 1;
    while (j < n && same_limits(limits_[j], limits_[i])) ++j;
    const std::size_t len = j - i;
    propagate_batch(
        ReachLanes{std::span(t0_).subspan(i, len),
                   std::span(p_lo_).subspan(i, len),
                   std::span(p_hi_).subspan(i, len),
                   std::span(v_lo_).subspan(i, len),
                   std::span(v_hi_).subspan(i, len),
                   std::span(t_).subspan(i, len)},
        limits_[i], std::span(out_t_).subspan(i, len),
        std::span(out_p_lo_).subspan(i, len),
        std::span(out_p_hi_).subspan(i, len),
        std::span(out_v_lo_).subspan(i, len),
        std::span(out_v_hi_).subspan(i, len));
    i = j;
  }
  for (std::size_t k = 0; k < n; ++k) {
    filters_[k]->set_reach_cache(
        t_[k], StateBounds{out_t_[k], Interval{out_p_lo_[k], out_p_hi_[k]},
                           Interval{out_v_lo_[k], out_v_hi_[k]}});
  }
}

}  // namespace cvsafe::filter
