#include "cvsafe/filter/info_filter.hpp"

#include <algorithm>

#include "cvsafe/obs/profile.hpp"
#include "cvsafe/util/contracts.hpp"

namespace cvsafe::filter {

using util::Interval;

InfoFilterOptions InfoFilterOptions::basic() {
  InfoFilterOptions o;
  o.use_message_reachability = true;
  o.use_sensor_reachability = true;
  o.use_kalman = false;
  return o;
}

InfoFilterOptions InfoFilterOptions::ultimate() {
  InfoFilterOptions o;
  o.use_message_reachability = true;
  o.use_sensor_reachability = true;
  o.use_kalman = true;
  o.kalman_message_rollback = true;
  return o;
}

InformationFilter::InformationFilter(vehicle::VehicleLimits limits,
                                     sensing::SensorConfig sensor,
                                     InfoFilterOptions options,
                                     GateConfig gate)
    : limits_(limits),
      sensor_(sensor),
      options_(options),
      kalman_(KalmanConfig{sensor.period, sensor.delta_p, sensor.delta_v,
                           sensor.delta_a, 3.0, 64}),
      gate_(gate) {}

void InformationFilter::fuse(const StateBounds& incoming) {
  CVSAFE_EXPECTS(!incoming.p.empty() && !incoming.v.empty(),
                 "fused information must describe a non-empty state set");
  if (!fused_) {
    fused_ = incoming;
    return;
  }
  if (incoming.t >= fused_->t) {
    const StateBounds prior = propagate(*fused_, incoming.t, limits_);
    StateBounds joined{incoming.t, prior.p.intersect(incoming.p),
                       prior.v.intersect(incoming.v)};
    if (joined.p.empty() || joined.v.empty()) {
      // Numerically inconsistent (should not happen with sound inputs):
      // trust the fresher information.
      fused_ = incoming;
    } else {
      fused_ = joined;
    }
    return;
  }
  // Stale information (e.g. a heavily delayed message): propagate it to
  // the current fusion time and intersect.
  const StateBounds aged = propagate(incoming, fused_->t, limits_);
  StateBounds joined{fused_->t, fused_->p.intersect(aged.p),
                     fused_->v.intersect(aged.v)};
  if (!joined.p.empty() && !joined.v.empty()) fused_ = joined;
}

void InformationFilter::on_sensor(const sensing::SensorReading& reading) {
  if (options_.use_sensor_reachability) {
    fuse(StateBounds::from_measurement(reading.t, reading.p, reading.v,
                                       sensor_.delta_p, sensor_.delta_v,
                                       limits_));
    last_sense_accel_ = reading.a;
    last_sense_time_ = reading.t;
  }
  if (options_.use_kalman) kalman_.update(reading);
}

void InformationFilter::on_message(const comm::Message& msg) {
  // Every payload field is consumed through the plausibility gate; a
  // rejected message leaves all filter state untouched.
  const auto screened = gate_.screen(
      msg, limits_, newest_information_time(), fused_,
      options_.use_kalman ? &kalman_ : nullptr);
  if (!screened) return;
  if (options_.use_message_reachability) {
    const GateConfig& g = gate_.config();
    if (g.trust_margin_p > 0.0 || g.trust_margin_v > 0.0) {
      // Suspect channel: a payload that survives screening may still be
      // perturbed, so fuse it as a box rather than an exact point to
      // keep the set-membership bounds sound.
      fuse(StateBounds::from_measurement(screened->t, screened->p,
                                         screened->v, g.trust_margin_p,
                                         g.trust_margin_v, limits_));
    } else {
      fuse(StateBounds::exact(screened->t, screened->p, screened->v));
    }
    if (screened->t > last_msg_time_) {
      last_msg_accel_ = screened->a;
      last_msg_time_ = screened->t;
    }
  }
  if (options_.use_kalman && options_.kalman_message_rollback) {
    kalman_.correct_with_message(screened->t, screened->p, screened->v,
                                 screened->a);
  }
}

StateEstimate InformationFilter::estimate(double t) const {
  CVSAFE_PROFILE_SPAN("filter.estimate");
  StateEstimate est;
  est.t = t;

  // 1. Sound set-membership bounds (recursive intersection of every past
  //    message and reading, propagated to now).
  Interval p_bound = Interval::everything();
  Interval v_bound{limits_.v_min, limits_.v_max};
  bool have_sound = false;
  if (fused_) {
    const StateBounds reach = propagate(*fused_, t, limits_);
    p_bound = p_bound.intersect(reach.p);
    v_bound = v_bound.intersect(reach.v);
    have_sound = true;
  }
  if (!have_sound && !(options_.use_kalman && kalman_.initialized())) {
    est.valid = false;
    return est;
  }

  Interval p_joined = p_bound;
  Interval v_joined = v_bound;

  // 2. Join with the Kalman confidence interval (the paper's information
  //    filter). If the probabilistic interval misses the sound bounds
  //    entirely, the sound bounds win.
  double p_hat;
  double v_hat;
  if (options_.use_kalman && kalman_.initialized()) {
    const Interval pk = kalman_.position_interval(t);
    const Interval vk = kalman_.velocity_interval(t);
    const Interval pj = p_joined.intersect(pk);
    const Interval vj = v_joined.intersect(vk);
    if (!pj.empty()) p_joined = pj;
    if (!vj.empty()) v_joined = vj;
    const util::Vec2 x = kalman_.state_at(t);
    p_hat = p_joined.empty() ? x.x : p_joined.clamp(x.x);
    v_hat = v_joined.empty() ? x.y : v_joined.clamp(x.y);
  } else {
    p_hat = p_joined.mid();
    v_hat = v_joined.mid();
  }

  est.p = p_joined;
  est.v = v_joined;
  est.p_hat = p_hat;
  est.v_hat = v_hat;
  // Acceleration: freshest known value (message content is exact, prefer
  // it on ties).
  est.a_hat = (last_msg_time_ >= last_sense_time_) ? last_msg_accel_
                                                   : last_sense_accel_;
  est.valid = true;
  CVSAFE_ENSURES(!est.p.empty() && !est.v.empty(),
                 "a valid estimate must carry non-empty bounds");
  CVSAFE_ENSURES(est.p.contains(est.p_hat) && est.v.contains(est.v_hat),
                 "point estimate must lie inside its own bounds");
  return est;
}

}  // namespace cvsafe::filter
