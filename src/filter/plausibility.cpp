#include "cvsafe/filter/plausibility.hpp"

#include <algorithm>
#include <cmath>

#include "cvsafe/util/contracts.hpp"

namespace cvsafe::filter {
namespace {

bool finite_payload(const comm::Message& msg) {
  return std::isfinite(msg.data.t) && std::isfinite(msg.data.state.p) &&
         std::isfinite(msg.data.state.v) && std::isfinite(msg.data.a);
}

ScreenedMessage to_screened(const comm::Message& msg) {
  return ScreenedMessage{msg.data.t, msg.data.state.p, msg.data.state.v,
                         msg.data.a};
}

// Written so NaN (failing every ordered comparison) violates the check.
// ([[maybe_unused]]: contract-free builds compile the checks out.)
void expect_threshold([[maybe_unused]] double x) {
  CVSAFE_EXPECTS(x >= 0.0 && x < 1e9,
                 "gate threshold must be non-negative and finite");
}

}  // namespace

GateConfig GateConfig::permissive() { return GateConfig{}; }

GateConfig GateConfig::hardened() {
  GateConfig g;
  g.check_range = true;
  g.range_margin = 0.5;
  g.max_age = 1.0;
  g.bound_margin = 1.0;
  g.nis_gate = 25.0;
  g.trust_margin_p = 2.5;
  g.trust_margin_v = 2.0;
  g.suspect_hold = 0.5;
  return g;
}

void GateConfig::validate() const {
  expect_threshold(range_margin);
  expect_threshold(max_age);
  expect_threshold(bound_margin);
  expect_threshold(nis_gate);
  expect_threshold(trust_margin_p);
  expect_threshold(trust_margin_v);
  expect_threshold(suspect_hold);
}

std::optional<ScreenedMessage> PlausibilityGate::screen(
    const comm::Message& msg, const vehicle::VehicleLimits& limits,
    double newest_time, const std::optional<StateBounds>& fused,
    const kalman_core::KalmanView* kalman) {
  const auto reject = [&](std::size_t& counter, obs::GateRejectReason reason)
      -> std::optional<ScreenedMessage> {
    ++counter;
    // Suspect-hold anchors on the newest trusted time, never the payload
    // timestamp (which the rejected message may have spoofed).
    last_rejection_time_ = std::max(last_rejection_time_, newest_time);
    if (obs::recording(recorder_)) {
      recorder_->gate_rejection(msg.sender, reason, msg.stamp());
    }
    if (obs::ring_recording(ring_)) {
      ring_->message_reject(static_cast<std::uint16_t>(msg.sender), reason,
                            msg.stamp());
    }
    return std::nullopt;
  };

  if (!finite_payload(msg)) {
    return reject(counters_.non_finite, obs::GateRejectReason::kNonFinite);
  }

  if (config_.check_range) {
    const double m = config_.range_margin;
    if (msg.data.state.v < limits.v_min - m ||
        msg.data.state.v > limits.v_max + m ||
        msg.data.a < limits.a_min - m || msg.data.a > limits.a_max + m) {
      return reject(counters_.out_of_range,
                    obs::GateRejectReason::kOutOfRange);
    }
  }

  if (config_.max_age > 0.0 && newest_time - msg.stamp() > config_.max_age) {
    return reject(counters_.stale, obs::GateRejectReason::kStale);
  }

  if (config_.bound_margin > 0.0 && fused) {
    // Sound set-membership screen: the fused bounds contain the true
    // state, so an honest payload must overlap them (inflated by the
    // margin) once both are propagated to a common time.
    const double join_t = std::max(msg.stamp(), fused->t);
    const StateBounds have = propagate(*fused, join_t, limits);
    const StateBounds claim = propagate(
        StateBounds::exact(msg.stamp(), msg.data.state.p, msg.data.state.v),
        join_t, limits);
    if (!have.p.inflated(config_.bound_margin).intersects(claim.p) ||
        !have.v.inflated(config_.bound_margin).intersects(claim.v)) {
      return reject(counters_.implausible,
                    obs::GateRejectReason::kImplausible);
    }
  }

  if (config_.nis_gate > 0.0 && kalman != nullptr && kalman->initialized &&
      msg.stamp() >= kalman->t) {
    const util::Vec2 x = kalman_core::state_at(*kalman, msg.stamp());
    util::Mat2 s = kalman_core::covariance_at(*kalman, msg.stamp());
    // Variance floor: keeps a sharply converged filter from rejecting
    // honest payloads over sub-noise-level differences.
    s.a += 1e-2;
    s.d += 1e-2;
    const double det = s.determinant();
    if (det > 1e-12) {
      const util::Vec2 y{msg.data.state.p - x.x, msg.data.state.v - x.y};
      const double nis = (s.d * y.x * y.x - (s.b + s.c) * y.x * y.y +
                          s.a * y.y * y.y) /
                         det;
      if (nis > config_.nis_gate) {
        return reject(counters_.implausible,
                      obs::GateRejectReason::kImplausible);
      }
    }
  }

  ++counters_.accepted;
  if (obs::ring_recording(ring_)) {
    ring_->message_accept(static_cast<std::uint16_t>(msg.sender),
                          msg.stamp());
  }
  return to_screened(msg);
}

std::optional<ScreenedMessage> PlausibilityGate::screen_fields(
    const comm::Message& msg) {
  if (!finite_payload(msg)) return std::nullopt;
  return to_screened(msg);
}

}  // namespace cvsafe::filter
