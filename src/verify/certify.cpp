#include "cvsafe/verify/certify.hpp"

#include <cmath>
#include <sstream>

#include "cvsafe/comm/channel.hpp"
#include "cvsafe/filter/info_filter.hpp"
#include "cvsafe/vehicle/accel_profile.hpp"
#include "cvsafe/vehicle/dynamics.hpp"
#include "cvsafe/vehicle/trajectory.hpp"

namespace cvsafe::verify {

using scenario::LeftTurnScenario;
using util::Interval;

namespace {

void record(Certificate& cert, std::size_t limit, Counterexample ce) {
  if (cert.counterexamples.size() < limit) {
    cert.counterexamples.push_back(std::move(ce));
  }
}

}  // namespace

Certificate certify_emergency_eq4(const LeftTurnScenario& scenario,
                                  const GridSpec& grid) {
  Certificate cert;
  cert.property = "Eq. 4: one emergency step from X_b stays outside X_u";
  const auto& g = scenario.geometry();
  const auto& lim = scenario.ego_limits();
  const double dt = scenario.control_period();
  const vehicle::DoubleIntegrator dyn(lim);

  for (double p0 = g.ego_start; p0 <= g.ego_front; p0 += grid.p_step) {
    for (double v0 = lim.v_min; v0 <= lim.v_max; v0 += grid.v_step) {
      if (scenario.slack(p0, v0) < 0.0) continue;  // slack-band branch only
      for (double lo = 0.0; lo <= grid.tau_max; lo += grid.tau_step) {
        for (double hi = lo + grid.tau_step; hi <= grid.tau_max + 1.0;
             hi += grid.tau_step) {
          const Interval tau1{lo, hi};
          if (!scenario.in_boundary_safe_set(0.0, p0, v0, tau1)) continue;
          ++cert.checked;
          const double a_e = scenario.emergency_accel(0.0, p0, v0, tau1);
          const auto next = dyn.step({p0, v0}, a_e, dt);
          if (scenario.in_unsafe_set(dt, next.p, next.v, tau1)) {
            std::ostringstream detail;
            detail << "a_e=" << a_e << " -> p=" << next.p << " v=" << next.v;
            record(cert, grid.max_counterexamples,
                   Counterexample{0.0, p0, v0, tau1, detail.str()});
          }
        }
      }
    }
  }
  return cert;
}

Certificate certify_resolvability_invariance(
    const LeftTurnScenario& scenario, std::size_t samples, util::Rng& rng) {
  Certificate cert;
  cert.property =
      "kappa_e preserves resolvability for committed states (fixed window)";
  const auto& g = scenario.geometry();
  const auto& lim = scenario.ego_limits();
  const double dt = scenario.control_period();
  const vehicle::DoubleIntegrator dyn(lim);

  std::size_t attempts = 0;
  while (cert.checked < samples && attempts < samples * 100) {
    ++attempts;
    const double p0 = rng.uniform(g.ego_start, g.ego_back);
    const double v0 = rng.uniform(lim.v_min, lim.v_max);
    const double lo = rng.uniform(0.0, 10.0);
    const Interval tau1{lo, lo + rng.uniform(0.3, 8.0)};
    if (scenario.slack(p0, v0) >= 0.0) continue;        // committed only
    if (!scenario.resolvable(0.0, p0, v0, tau1)) continue;
    ++cert.checked;
    const double a_e = scenario.emergency_accel(0.0, p0, v0, tau1);
    const auto next = dyn.step({p0, v0}, a_e, dt);
    if (!scenario.resolvable(dt, next.p, next.v, tau1)) {
      std::ostringstream detail;
      detail << "a_e=" << a_e << " -> p=" << next.p << " v=" << next.v;
      record(cert, 16, Counterexample{0.0, p0, v0, tau1, detail.str()});
    }
  }
  return cert;
}

Certificate certify_window_soundness(const LeftTurnScenario& scenario,
                                     std::size_t trajectories,
                                     util::Rng& rng) {
  Certificate cert;
  cert.property =
      "conservative window (Eq. 7) brackets the real passing interval";
  const auto& g = scenario.geometry();
  const auto& lim = scenario.oncoming_limits();
  const double dt = scenario.control_period();
  const vehicle::DoubleIntegrator dyn(lim);
  // Tolerance for the linear interpolation of the sampled trajectory.
  constexpr double kTol = 1e-3;

  for (std::size_t trial = 0; trial < trajectories; ++trial) {
    vehicle::VehicleState s{rng.uniform(-70.0, -35.0),
                            rng.uniform(lim.v_min, lim.v_max)};
    const auto steps = static_cast<std::size_t>(25.0 / dt);
    const auto profile =
        vehicle::AccelProfile::random(steps, dt, s.v, lim, {}, rng);
    vehicle::Trajectory traj;
    for (std::size_t step = 0; step < steps; ++step) {
      traj.push({static_cast<double>(step) * dt, s, profile.at(step)});
      s = dyn.step(s, profile.at(step), dt);
    }
    const double entry = traj.first_time_at_position(g.c1_front);
    const double exit = traj.first_time_at_position(g.c1_back);
    if (entry < 0.0 || exit < 0.0) continue;

    for (std::size_t step = 0; step < steps; step += 5) {
      const auto& snap = traj[step];
      if (snap.t >= entry) break;
      filter::StateEstimate est;
      est.t = snap.t;
      est.p = Interval::point(snap.state.p);
      est.v = Interval::point(snap.state.v);
      est.p_hat = snap.state.p;
      est.v_hat = snap.state.v;
      est.a_hat = snap.a;
      est.valid = true;
      const Interval w = scenario.c1_window_conservative(est);
      ++cert.checked;
      if (w.empty() || w.lo > entry + kTol || w.hi < exit - kTol) {
        std::ostringstream detail;
        detail << "window [" << w.lo << "," << w.hi << "] vs real ["
               << entry << "," << exit << "]";
        record(cert, 16,
               Counterexample{snap.t, snap.state.p, snap.state.v, w,
                              detail.str()});
      }
    }
  }
  return cert;
}

Certificate certify_filter_monotonicity(const LeftTurnScenario& scenario,
                                        const sensing::SensorConfig& sensor,
                                        const comm::CommConfig& comm,
                                        std::size_t episodes, util::Rng& rng,
                                        double tolerance) {
  Certificate cert;
  cert.property =
      "sound window bounds are monotone in absolute time (set-membership "
      "filter)";
  const auto& lim = scenario.oncoming_limits();
  const double dt = scenario.control_period();
  const vehicle::DoubleIntegrator dyn(lim);

  for (std::size_t episode = 0; episode < episodes; ++episode) {
    vehicle::VehicleState s{rng.uniform(-65.0, -45.0),
                            rng.uniform(lim.v_min, lim.v_max)};
    const auto steps = static_cast<std::size_t>(12.0 / dt);
    const auto profile =
        vehicle::AccelProfile::random(steps, dt, s.v, lim, {}, rng);
    filter::InformationFilter est(lim, sensor,
                                  filter::InfoFilterOptions::basic());
    sensing::Sensor sense(sensor);
    comm::Channel channel(comm);

    bool have_prev = false;
    Interval prev;
    for (std::size_t step = 0; step < steps; ++step) {
      const double t = static_cast<double>(step) * dt;
      const double a = profile.at(step);
      const vehicle::VehicleSnapshot snap{t, s, a};
      channel.offer(comm::Message{1, snap}, rng);
      for (const auto& msg : channel.collect(t)) est.on_message(msg);
      if (const auto r = sense.sense(snap, rng)) est.on_sensor(*r);

      const auto e = est.estimate(t);
      if (e.valid) {
        const Interval w = scenario.c1_window_conservative(e);
        if (!w.empty()) {
          ++cert.checked;
          if (have_prev &&
              (w.lo < prev.lo - tolerance || w.hi > prev.hi + tolerance)) {
            std::ostringstream detail;
            detail << "window regressed: [" << prev.lo << "," << prev.hi
                   << "] -> [" << w.lo << "," << w.hi << "]";
            record(cert, 16,
                   Counterexample{t, s.p, s.v, w, detail.str()});
          }
          prev = w;
          have_prev = true;
        } else {
          // Window became empty (vehicle certainly passed): terminal.
          break;
        }
      }
      s = dyn.step(s, a, dt);
    }
  }
  return cert;
}

Certificate certify_lane_change_eq4(
    const scenario::LaneChangeScenario& scenario, std::size_t samples,
    util::Rng& rng) {
  Certificate cert;
  cert.property =
      "lane change: one emergency step from X_b stays outside X_u";
  const auto& ego = scenario.ego_limits();
  const auto& c1 = scenario.c1_limits();
  const auto& g = scenario.geometry();
  const double dt = scenario.control_period();
  const vehicle::DoubleIntegrator ego_dyn(ego);
  const vehicle::DoubleIntegrator c1_dyn(c1);

  std::size_t attempts = 0;
  while (cert.checked < samples && attempts < samples * 50) {
    ++attempts;
    const double p0 = rng.uniform(g.ego_start, g.target);
    const double v0 = rng.uniform(ego.v_min, ego.v_max);
    const vehicle::VehicleState lead{
        p0 + rng.uniform(0.0, 40.0), rng.uniform(c1.v_min, c1.v_max)};
    filter::StateEstimate est;
    est.t = 0.0;
    est.p = util::Interval::point(lead.p);
    est.v = util::Interval::point(lead.v);
    est.p_hat = lead.p;
    est.v_hat = lead.v;
    est.valid = true;

    if (scenario.in_unsafe_set(p0, est)) continue;
    // Eq. 4 is claimed on the invariant set compound control maintains:
    // once merged, the gap covers the sustainable requirement
    // min_gap + (v0 - v_min,lead)^2 / (2 |a_min|). States violating the
    // invariant (unreachable under the monitor) are excluded.
    if (scenario.merged(p0)) {
      const double dv = std::max(0.0, v0 - c1.v_min);
      const double required =
          g.min_gap + dv * dv / (2.0 * -ego.a_min);
      if (scenario.worst_case_gap(p0, est) < required) continue;
    }
    if (!scenario.in_boundary_safe_set(0.0, p0, v0, est)) continue;
    ++cert.checked;
    const double a_e = scenario.emergency_accel(p0, v0);
    const auto ego_next = ego_dyn.step({p0, v0}, a_e, dt);
    // Worst case for the gap: the leading vehicle brakes as hard as it can.
    const auto lead_next = c1_dyn.step(lead, c1.a_min, dt);
    filter::StateEstimate next_est = est;
    next_est.t = dt;
    next_est.p = util::Interval::point(lead_next.p);
    next_est.v = util::Interval::point(lead_next.v);
    next_est.p_hat = lead_next.p;
    next_est.v_hat = lead_next.v;
    if (scenario.in_unsafe_set(ego_next.p, next_est)) {
      std::ostringstream detail;
      detail << "a_e=" << a_e << " ego->" << ego_next.p << " lead->"
             << lead_next.p;
      record(cert, 16,
             Counterexample{0.0, p0, v0,
                            util::Interval{lead.p, lead.p}, detail.str()});
    }
  }
  return cert;
}

Certificate certify_intersection_invariance(
    const scenario::IntersectionScenario& scenario, std::size_t samples,
    util::Rng& rng) {
  Certificate cert;
  cert.property =
      "intersection: kappa_e preserves joint resolvability (fixed windows)";
  const auto& ego = scenario.ego_limits();
  const auto& g = scenario.geometry();
  const double dt = scenario.control_period();
  const vehicle::DoubleIntegrator dyn(ego);

  std::size_t attempts = 0;
  while (cert.checked < samples && attempts < samples * 50) {
    ++attempts;
    scenario::IntersectionWorld w;
    w.t = 0.0;
    w.ego = {rng.uniform(g.ego_start, g.zone_b_back),
             rng.uniform(ego.v_min, ego.v_max)};
    const auto window = [&rng] {
      const double lo = rng.uniform(0.0, 8.0);
      return util::Interval{lo, lo + rng.uniform(0.3, 6.0)};
    };
    w.tau_a = util::IntervalSet{window(), window()};
    w.tau_b = util::IntervalSet{window(), window()};
    if (!scenario.resolvable(w)) continue;
    ++cert.checked;
    const double a_e = scenario.emergency_accel(w);
    scenario::IntersectionWorld next = w;
    next.t = dt;
    const auto s = dyn.step(w.ego, a_e, dt);
    next.ego = s;
    if (!scenario.resolvable(next)) {
      std::ostringstream detail;
      detail << "a_e=" << a_e << " -> p=" << s.p << " v=" << s.v;
      record(cert, 16,
             Counterexample{0.0, w.ego.p, w.ego.v,
                            w.tau_a.hull(), detail.str()});
    }
  }
  return cert;
}

}  // namespace cvsafe::verify
