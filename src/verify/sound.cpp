#include "cvsafe/verify/sound.hpp"

#include <algorithm>
#include <cstdio>
#include <limits>
#include <sstream>
#include <utility>

#include "cvsafe/nn/interval_mlp.hpp"
#include "cvsafe/nn/serialize.hpp"
#include "cvsafe/obs/metrics.hpp"
#include "cvsafe/obs/profile.hpp"
#include "cvsafe/util/contracts.hpp"
#include "cvsafe/util/rounded_interval.hpp"
#include "cvsafe/util/thread_pool.hpp"

// Compiled with -ffp-contract=off (src/verify/CMakeLists.txt): certified
// endpoints must not depend on whether the compiler fuses a multiply-add.

namespace cvsafe::verify {

using util::Interval;
namespace rd = util::rounded;

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Deterministic bisection: split the axis with the largest width relative
/// to its root-domain width (ties to the lower index) at the floating
/// midpoint. Both the prover and scripts/check_certificate.py re-derive
/// the split from the box alone, which is what makes the leaf tiling
/// independently checkable.
template <std::size_t N>
std::size_t widest_scaled_axis(const std::array<Interval, N>& box,
                               const std::array<double, N>& domain_width) {
  std::size_t axis = 0;
  double best = -1.0;
  for (std::size_t i = 0; i < N; ++i) {
    const double w =
        domain_width[i] > 0.0 ? box[i].width() / domain_width[i] : 0.0;
    if (w > best) {
      best = w;
      axis = i;
    }
  }
  return axis;
}

// ---------------------------------------------------------------------------
// Theorem A: Eq. 4 on the slack band, in (v0, s) coordinates.
// ---------------------------------------------------------------------------

struct Eq4Consts {
  double a_min = 0.0;   ///< < 0
  double two_am = 0.0;  ///< -2 a_min (exact: negate + double)
  double dt = 0.0;
  double v_max = 0.0;
  double s_max = 0.0;
};

/// Upper bound of q(v, s) = v^2 / (2 (d_b(v) + s)) over the box — the
/// magnitude of the ideal emergency braking command. q is monotone
/// increasing in u = v^2 (dq/du = 2s / den^2 >= 0) and decreasing in s,
/// so the maximum sits at (v.hi, s.lo); the single-point evaluation is
/// outward-rounded. q <= |a_min| holds identically (d_b >= v^2/(2|a_min|)
/// and s >= 0), which caps the 0/0 corner at v = 0, s = 0.
double q_upper(const Eq4Consts& c, const Interval& v, const Interval& s) {
  // Exact zero test (q(0, s) = 0). cvsafe-lint: allow(float-compare)
  if (v.hi == 0.0) return 0.0;
  const double u_up = rd::mul_up(v.hi, v.hi);
  const double u_dn = rd::mul_down(v.hi, v.hi);
  const double db_dn = rd::div_down(u_dn, c.two_am);
  const double den_dn = 2.0 * rd::add_down(db_dn, s.lo);
  if (den_dn <= 0.0) return -c.a_min;
  return std::min(-c.a_min, rd::div_up(u_up, den_dn));
}

/// Lower bound of q over the box: minimum at (v.lo, s.hi).
double q_lower(const Eq4Consts& c, const Interval& v, const Interval& s) {
  // Exact zero test (q(0, s) = 0). cvsafe-lint: allow(float-compare)
  if (v.lo == 0.0) return 0.0;
  const double u_dn = rd::mul_down(v.lo, v.lo);
  const double u_up = rd::mul_up(v.lo, v.lo);
  const double db_up = rd::div_up(u_up, c.two_am);
  const double den_up = 2.0 * rd::add_up(db_up, s.hi);
  if (den_up <= 0.0) return 0.0;
  return std::max(0.0, rd::div_down(u_dn, den_up));
}

/// Outcome of evaluating one Eq. 4 box.
struct Eq4Eval {
  bool margin_ok = false;    ///< numeric rule discharged the box
  bool all_stopping = false; ///< every state halts within the step
  double slack_next_lb = 0.0;
};

/// Directed-rounding evaluation of the no-stop successor slack lower
/// bound over the box. Sound for every state in the box whose successor
/// does not halt within the step; halting states are covered by the
/// exact-braking invariance lemma on every leaf (they stop at or before
/// the front line by construction of the command).
Eq4Eval eval_eq4_box(const Eq4Consts& c, const Interval& v,
                     const Interval& s) {
  Eq4Eval out;
  // Command enclosure A ∋ a*(x) = max(a_min, -q(x)) for every x in box.
  const double q_up = q_upper(c, v, s);
  const double q_dn = q_lower(c, v, s);
  const Interval a{std::max(c.a_min, -q_up), -q_dn};

  const Interval dt_i = Interval::point(c.dt);
  const Interval vn = rd::add(v, rd::mul(a, dt_i));
  const Interval vn_pos = vn.intersect(Interval{0.0, kInf});
  if (vn_pos.empty()) {
    out.all_stopping = true;  // lemma covers the whole box
    return out;
  }

  // gap = d_b(v) + s by the band parameterization.
  const Interval bd = rd::div_scalar(rd::sqr(v), c.two_am);
  const Interval gap = rd::add(bd, s);
  // No-stop displacement v dt + a dt^2 / 2.
  const Interval half_dt2 = rd::scale(rd::mul(dt_i, dt_i), 0.5);
  const Interval disp = rd::add(rd::mul(v, dt_i), rd::mul(a, half_dt2));
  // Successor slack = gap' - d_b(v') with gap' = gap - disp.
  const Interval bd_next = rd::div_scalar(rd::sqr(vn_pos), c.two_am);
  const Interval slack_next = rd::sub(rd::sub(gap, disp), bd_next);
  out.slack_next_lb = slack_next.lo;
  out.margin_ok = slack_next.lo >= 0.0;
  return out;
}

// ---------------------------------------------------------------------------
// JSON rendering helpers.
// ---------------------------------------------------------------------------

/// Canonical hex rendering of a double: full 13-hex-digit mantissa, so
/// the string is bit-lossless and identical across C libraries (the
/// digit count of bare %a is implementation-defined).
std::string hexd(double x) {
  if (x == kInf) return "inf";
  if (x == -kInf) return "-inf";
  char buf[40];
  std::snprintf(buf, sizeof buf, "%.13a", x);
  return buf;
}

std::string json_interval(const Interval& iv) {
  return "[\"" + hexd(iv.lo) + "\", \"" + hexd(iv.hi) + "\"]";
}

}  // namespace

std::string fnv1a_hex(const std::string& bytes) {
  std::uint64_t h = 0xcbf29ce484222325ull;  // FNV-1a 64-bit offset basis
  for (const char ch : bytes) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001b3ull;  // FNV-1a 64-bit prime
  }
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(h));
  return buf;
}

NnInputDomain NnInputDomain::planner_view(
    const scenario::LeftTurnScenario& scn,
    const planners::InputEncoding& enc) {
  NnInputDomain d;
  d.p0 = Interval{scn.geometry().ego_start, scn.geometry().ego_back};
  d.v0 = Interval{0.0, scn.ego_limits().v_max};
  d.w_rel = Interval{enc.w_min, enc.w_max};
  return d;
}

Eq4SoundResult certify_eq4_sound(const scenario::LeftTurnScenario& scenario,
                                 const SoundBnbOptions& options) {
  CVSAFE_PROFILE_SPAN("verify.sound.eq4");
  // Exact precondition, not a tolerance. cvsafe-lint: allow(float-compare)
  CVSAFE_EXPECTS(scenario.ego_limits().v_min == 0.0,
                 "Theorem A's band parameterization assumes v_min == 0");
  Eq4Consts c;
  c.a_min = scenario.ego_limits().a_min;
  c.two_am = -2.0 * c.a_min;
  c.dt = scenario.control_period();
  c.v_max = scenario.ego_limits().v_max;
  c.s_max =
      scenario.geometry().ego_front - scenario.geometry().ego_start;

  Eq4SoundResult result;
  result.v_domain = Interval{0.0, c.v_max};
  result.s_domain = Interval{0.0, c.s_max};
  const std::array<double, 2> domain_width{c.v_max, c.s_max};

  struct Node {
    std::string path;
    Interval v, s;
  };
  struct Outcome {
    bool is_leaf = false;
    Eq4LeafProof leaf;
    std::size_t axis = 0;
  };

  std::vector<Node> frontier{{std::string(), result.v_domain,
                              result.s_domain}};
  std::size_t depth = 0;
  while (!frontier.empty()) {
    std::vector<Outcome> outcomes(frontier.size());
    util::parallel_for(
        frontier.size(),
        [&](std::size_t i) {
          CVSAFE_PROFILE_SPAN("verify.sound.eq4_leaf");
          const Node& node = frontier[i];
          Outcome& o = outcomes[i];
          const Eq4Eval ev = eval_eq4_box(c, node.v, node.s);
          const std::array<Interval, 2> box{node.v, node.s};
          const std::size_t axis = widest_scaled_axis(box, domain_width);
          const double scaled =
              domain_width[axis] > 0.0
                  ? box[axis].width() / domain_width[axis]
                  : 0.0;
          const bool floor_hit =
              scaled <= options.min_width || depth >= options.max_depth;
          if (ev.margin_ok || ev.all_stopping || floor_hit) {
            o.is_leaf = true;
            o.leaf.path = node.path;
            o.leaf.v = node.v;
            o.leaf.s = node.s;
            if (ev.margin_ok) {
              o.leaf.rule = Eq4Rule::kMargin;
              o.leaf.slack_next_lb = ev.slack_next_lb;
            } else {
              o.leaf.rule = Eq4Rule::kLemma;
              o.leaf.slack_next_lb = 0.0;
            }
          } else {
            o.axis = axis;
          }
        },
        options.threads);

    std::vector<Node> next;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      Outcome& o = outcomes[i];
      if (o.is_leaf) {
        if (o.leaf.rule == Eq4Rule::kMargin) {
          ++result.margin_leaves;
        } else {
          ++result.lemma_leaves;
        }
        result.leaves.push_back(std::move(o.leaf));
        continue;
      }
      const Node& node = frontier[i];
      const Interval& span = o.axis == 0 ? node.v : node.s;
      // Split point, not a bound: any interior value is sound, and the
      // checker replays this exact round-to-nearest midpoint bit-for-bit.
      // cvsafe-lint: allow(no-raw-endpoint-arithmetic)
      const double mid = 0.5 * (span.lo + span.hi);
      Node lo = node;
      Node hi = node;
      lo.path += '0';
      hi.path += '1';
      if (o.axis == 0) {
        lo.v = Interval{node.v.lo, mid};
        hi.v = Interval{mid, node.v.hi};
      } else {
        lo.s = Interval{node.s.lo, mid};
        hi.s = Interval{mid, node.s.hi};
      }
      next.push_back(std::move(lo));
      next.push_back(std::move(hi));
    }
    frontier = std::move(next);
    if (!frontier.empty()) ++depth;
  }
  result.max_depth_reached = depth;
  result.proved = true;  // every leaf discharged by margin or lemma
  if (options.metrics != nullptr) {
    options.metrics
        ->counter("cvsafe_sound_eq4_leaves_total{rule=\"margin\"}")
        .inc(result.margin_leaves);
    options.metrics
        ->counter("cvsafe_sound_eq4_leaves_total{rule=\"lemma\"}")
        .inc(result.lemma_leaves);
  }
  return result;
}

NnBoundsResult certify_nn_bounds_sound(const nn::Mlp& net,
                                       const planners::InputEncoding& encoding,
                                       const NnInputDomain& domain,
                                       const SoundBnbOptions& options) {
  CVSAFE_PROFILE_SPAN("verify.sound.nn");
  CVSAFE_EXPECTS(net.input_dim() == planners::InputEncoding::dim() &&
                     net.output_dim() == 1,
                 "Theorem B expects the planner network shape");
  NnBoundsResult result;
  result.assert_range = options.nn_assert;
  // Directed encoding of the raw domain (mirrors encode_into's scaling;
  // the window axes share w_rel, a box superset of the ordered pairs).
  result.domain = {rd::div_scalar(domain.p0, encoding.p_scale),
                   rd::div_scalar(domain.v0, encoding.v_scale),
                   rd::div_scalar(domain.w_rel, encoding.w_scale),
                   rd::div_scalar(domain.w_rel, encoding.w_scale)};
  std::array<double, 4> domain_width{};
  for (std::size_t i = 0; i < 4; ++i) {
    domain_width[i] = result.domain[i].width();
  }

  struct Node {
    std::string path;
    std::array<Interval, 4> box;
  };
  struct Outcome {
    bool is_leaf = false;
    NnLeafProof leaf;
    std::size_t axis = 0;
  };

  std::vector<Node> frontier{{std::string(), result.domain}};
  std::size_t depth = 0;
  bool all_inside = true;
  Interval hull = Interval::empty_interval();
  // Per-worker interval workspaces would need worker identity; the pass
  // allocates two small vectors per box instead, which the bench shows is
  // immaterial next to the interval arithmetic itself.
  while (!frontier.empty()) {
    std::vector<Outcome> outcomes(frontier.size());
    util::parallel_for(
        frontier.size(),
        [&](std::size_t i) {
          CVSAFE_PROFILE_SPAN("verify.sound.nn_leaf");
          const Node& node = frontier[i];
          Outcome& o = outcomes[i];
          nn::IntervalWorkspace ws;
          const Interval out =
              nn::interval_predict_scalar(net, node.box, ws);
          const std::size_t axis =
              widest_scaled_axis(node.box, domain_width);
          const double scaled =
              domain_width[axis] > 0.0
                  ? node.box[axis].width() / domain_width[axis]
                  : 0.0;
          const bool tight = options.nn_assert.contains(out) &&
                             out.width() <= options.nn_target_width;
          const bool floor_hit = scaled <= options.nn_min_box_width ||
                                 depth >= options.max_depth;
          if (tight || floor_hit) {
            o.is_leaf = true;
            o.leaf.path = node.path;
            o.leaf.box = node.box;
            o.leaf.out = out;
          } else {
            o.axis = axis;
          }
        },
        options.threads);

    std::vector<Node> next;
    for (std::size_t i = 0; i < outcomes.size(); ++i) {
      Outcome& o = outcomes[i];
      if (o.is_leaf) {
        all_inside =
            all_inside && options.nn_assert.contains(o.leaf.out);
        hull = hull.hull(o.leaf.out);
        result.leaves.push_back(std::move(o.leaf));
        continue;
      }
      const Node& node = frontier[i];
      const Interval& span = node.box[o.axis];
      // Split point, not a bound (same argument as the Eq. 4 tree).
      // cvsafe-lint: allow(no-raw-endpoint-arithmetic)
      const double mid = 0.5 * (span.lo + span.hi);
      Node lo = node;
      Node hi = node;
      lo.path += '0';
      hi.path += '1';
      lo.box[o.axis] = Interval{span.lo, mid};
      hi.box[o.axis] = Interval{mid, span.hi};
      next.push_back(std::move(lo));
      next.push_back(std::move(hi));
    }
    frontier = std::move(next);
    if (!frontier.empty()) ++depth;
  }
  result.max_depth_reached = depth;
  result.hull = hull;
  result.proved = all_inside;
  if (options.metrics != nullptr) {
    options.metrics->counter("cvsafe_sound_nn_leaves_total")
        .inc(result.leaves.size());
    options.metrics->gauge("cvsafe_sound_nn_hull_width")
        .set(hull.width());
  }
  return result;
}

SoundCertificate certify_sound(const scenario::LeftTurnScenario& scenario,
                               const nn::Mlp& net,
                               const planners::InputEncoding& encoding,
                               const SoundBnbOptions& options) {
  SoundCertificate cert;
  cert.eq4 = certify_eq4_sound(scenario, options);
  cert.nn = certify_nn_bounds_sound(
      net, encoding, NnInputDomain::planner_view(scenario, encoding),
      options);
  std::ostringstream net_bytes;
  nn::save_mlp(net, net_bytes);
  cert.net_hash = fnv1a_hex(net_bytes.str());

  std::string config;
  const auto& g = scenario.geometry();
  const auto& ego = scenario.ego_limits();
  config += hexd(g.ego_front) + "," + hexd(g.ego_back) + "," +
            hexd(g.ego_start) + "," + hexd(g.ego_target) + "," +
            hexd(ego.v_min) + "," + hexd(ego.v_max) + "," +
            hexd(ego.a_min) + "," + hexd(ego.a_max) + "," +
            hexd(scenario.control_period()) + ";" +
            hexd(encoding.p_scale) + "," + hexd(encoding.v_scale) + "," +
            hexd(encoding.w_scale) + "," + hexd(encoding.w_min) + "," +
            hexd(encoding.w_max);
  cert.config_hash = fnv1a_hex(config);
  return cert;
}

namespace {

/// Embedded network: one object per layer, weights row-major (out x in),
/// every coefficient a lossless hex string.
std::string json_network(const nn::Mlp& net) {
  std::string j = "[\n";
  for (std::size_t i = 0; i < net.layer_count(); ++i) {
    const nn::DenseLayer& layer = net.layer(i);
    const nn::Matrix& w = layer.weights();
    const nn::Matrix& b = layer.bias();
    j += "    {\"out\": ";
    j += std::to_string(layer.out_dim());
    j += ", \"in\": ";
    j += std::to_string(layer.in_dim());
    j += ", \"activation\": \"";
    j += nn::activation_name(layer.activation());
    j += "\",\n     \"weights\": [";
    for (std::size_t r = 0; r < layer.out_dim(); ++r) {
      for (std::size_t c = 0; c < layer.in_dim(); ++c) {
        if (r != 0 || c != 0) j += ", ";
        j += '"';
        j += hexd(w(r, c));
        j += '"';
      }
    }
    j += "],\n     \"bias\": [";
    for (std::size_t c = 0; c < layer.out_dim(); ++c) {
      if (c != 0) j += ", ";
      j += '"';
      j += hexd(b(0, c));
      j += '"';
    }
    j += "]}";
    j += i + 1 < net.layer_count() ? ",\n" : "\n";
  }
  j += "  ]";
  return j;
}

}  // namespace

std::string certificate_json(const SoundCertificate& cert,
                             const scenario::LeftTurnScenario& scenario,
                             const nn::Mlp& net,
                             const planners::InputEncoding& encoding,
                             const SoundBnbOptions& options) {
  std::string j;
  j.reserve(1 << 20);
  const auto& g = scenario.geometry();
  const auto& ego = scenario.ego_limits();
  j += "{\n";
  j += "  \"format\": \"cvsafe-sound-certificate v1\",\n";
  j += "  \"scenario\": {";
  j += "\"ego_front\": \"" + hexd(g.ego_front) + "\", ";
  j += "\"ego_back\": \"" + hexd(g.ego_back) + "\", ";
  j += "\"ego_start\": \"" + hexd(g.ego_start) + "\", ";
  j += "\"v_min\": \"" + hexd(ego.v_min) + "\", ";
  j += "\"v_max\": \"" + hexd(ego.v_max) + "\", ";
  j += "\"a_min\": \"" + hexd(ego.a_min) + "\", ";
  j += "\"a_max\": \"" + hexd(ego.a_max) + "\", ";
  j += "\"dt_c\": \"" + hexd(scenario.control_period()) + "\"},\n";
  j += "  \"encoding\": {";
  j += "\"p_scale\": \"" + hexd(encoding.p_scale) + "\", ";
  j += "\"v_scale\": \"" + hexd(encoding.v_scale) + "\", ";
  j += "\"w_scale\": \"" + hexd(encoding.w_scale) + "\", ";
  j += "\"w_min\": \"" + hexd(encoding.w_min) + "\", ";
  j += "\"w_max\": \"" + hexd(encoding.w_max) + "\"},\n";
  j += "  \"options\": {";
  j += "\"max_depth\": " + std::to_string(options.max_depth) + ", ";
  j += "\"min_width\": \"" + hexd(options.min_width) + "\", ";
  j += "\"nn_target_width\": \"" + hexd(options.nn_target_width) + "\", ";
  j += "\"nn_min_box_width\": \"" + hexd(options.nn_min_box_width) + "\", ";
  j += "\"nn_assert\": " + json_interval(options.nn_assert) + ", ";
  j += "\"tanh_margin\": \"" + hexd(nn::kTanhEnclosureMargin) + "\"},\n";
  j += "  \"net_hash\": \"" + cert.net_hash + "\",\n";
  j += "  \"config_hash\": \"" + cert.config_hash + "\",\n";
  j += "  \"network\": " + json_network(net) + ",\n";

  j += "  \"eq4\": {\n";
  j += "    \"proved\": ";
  j += cert.eq4.proved ? "true" : "false";
  j += ",\n";
  j += "    \"v_domain\": " + json_interval(cert.eq4.v_domain) + ",\n";
  j += "    \"s_domain\": " + json_interval(cert.eq4.s_domain) + ",\n";
  j += "    \"margin_leaves\": " + std::to_string(cert.eq4.margin_leaves) +
       ",\n";
  j += "    \"lemma_leaves\": " + std::to_string(cert.eq4.lemma_leaves) +
       ",\n";
  j += "    \"leaves\": [\n";
  for (std::size_t i = 0; i < cert.eq4.leaves.size(); ++i) {
    const auto& leaf = cert.eq4.leaves[i];
    j += "      {\"path\": \"" + leaf.path + "\", \"v\": " +
         json_interval(leaf.v) + ", \"s\": " + json_interval(leaf.s) +
         ", \"rule\": \"" +
         (leaf.rule == Eq4Rule::kMargin ? "margin" : "lemma") +
         "\", \"slack_next_lb\": \"" + hexd(leaf.slack_next_lb) + "\"}";
    j += i + 1 < cert.eq4.leaves.size() ? ",\n" : "\n";
  }
  j += "    ]\n";
  j += "  },\n";

  j += "  \"nn_bounds\": {\n";
  j += "    \"proved\": ";
  j += cert.nn.proved ? "true" : "false";
  j += ",\n";
  j += "    \"assert\": " + json_interval(cert.nn.assert_range) + ",\n";
  j += "    \"hull\": " + json_interval(cert.nn.hull) + ",\n";
  j += "    \"domain\": [" + json_interval(cert.nn.domain[0]) + ", " +
       json_interval(cert.nn.domain[1]) + ", " +
       json_interval(cert.nn.domain[2]) + ", " +
       json_interval(cert.nn.domain[3]) + "],\n";
  j += "    \"leaves\": [\n";
  for (std::size_t i = 0; i < cert.nn.leaves.size(); ++i) {
    const auto& leaf = cert.nn.leaves[i];
    j += "      {\"path\": \"" + leaf.path + "\", \"box\": [" +
         json_interval(leaf.box[0]) + ", " + json_interval(leaf.box[1]) +
         ", " + json_interval(leaf.box[2]) + ", " +
         json_interval(leaf.box[3]) + "], \"out\": " +
         json_interval(leaf.out) + "}";
    j += i + 1 < cert.nn.leaves.size() ? ",\n" : "\n";
  }
  j += "    ]\n";
  j += "  },\n";

  // Self-hash over everything above this line.
  j += "  \"hash\": \"" + fnv1a_hex(j) + "\"\n}\n";
  return j;
}

}  // namespace cvsafe::verify
