#include "cvsafe/scenario/intersection.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "cvsafe/util/kinematics.hpp"

namespace cvsafe::scenario {

using util::Interval;
using util::IntervalSet;

IntersectionScenario::IntersectionScenario(IntersectionGeometry geometry,
                                           vehicle::VehicleLimits ego,
                                           double dt_c)
    : geometry_(geometry), ego_(ego), dt_c_(dt_c) {
  assert(geometry_.valid());
  assert(ego_.valid());
  assert(dt_c_ > 0.0);
}

Interval IntersectionScenario::full_throttle_occupancy(double t, double p,
                                                       double v,
                                                       double front,
                                                       double back) const {
  if (p > back) return Interval::empty_interval();
  const double entry =
      p >= front ? t
                 : t + util::time_to_travel(front - p, v, ego_.a_max,
                                            ego_.v_max);
  const double exit = t + util::time_to_travel(back - p + 1e-3, v,
                                               ego_.a_max, ego_.v_max);
  return Interval{entry, exit};
}

std::optional<double> IntersectionScenario::next_stop_line(double p) const {
  if (p <= geometry_.zone_a_front) return geometry_.zone_a_front;
  if (p >= geometry_.zone_a_back && p <= geometry_.zone_b_front) {
    return geometry_.zone_b_front;  // holding in the median gap
  }
  return std::nullopt;  // inside one of the zones, or past zone B
}

bool IntersectionScenario::full_throttle_clear(
    const IntersectionWorld& w) const {
  const Interval occ_a = full_throttle_occupancy(
      w.t, w.ego.p, w.ego.v, geometry_.zone_a_front, geometry_.zone_a_back);
  const Interval occ_b = full_throttle_occupancy(
      w.t, w.ego.p, w.ego.v, geometry_.zone_b_front, geometry_.zone_b_back);
  return !w.tau_a.intersects(occ_a) && !w.tau_b.intersects(occ_b);
}

bool IntersectionScenario::resolvable(const IntersectionWorld& w) const {
  if (full_throttle_clear(w)) return true;
  // Hold before the next stop line and wait: window sets only tighten
  // over time (set-membership estimates), so waiting eventually clears.
  const auto line = next_stop_line(w.ego.p);
  if (!line) return false;
  const double slack =
      *line - util::braking_distance(w.ego.v, ego_.a_min) - w.ego.p;
  return slack >= 0.0;
}

bool IntersectionScenario::in_zone_a(double p) const {
  return p > geometry_.zone_a_front && p < geometry_.zone_a_back;
}

bool IntersectionScenario::in_zone_b(double p) const {
  return p > geometry_.zone_b_front && p < geometry_.zone_b_back;
}

bool IntersectionScenario::in_unsafe_set(const IntersectionWorld& w) const {
  return !resolvable(w);
}

bool IntersectionScenario::in_boundary_safe_set(
    const IntersectionWorld& w) const {
  if (w.ego.p > geometry_.zone_b_back) return false;  // crossing done
  if (w.tau_a.after(w.t).empty() && w.tau_b.after(w.t).empty()) {
    return false;  // all traffic certainly passed
  }
  // Best-effort containment when already unresolvable (should not be
  // reachable under compound control).
  if (!resolvable(w)) return true;
  // One-step preimage of unresolvability over sampled feasible controls.
  constexpr int kSamples = 33;
  for (int i = 0; i < kSamples; ++i) {
    const double a =
        ego_.a_min + (ego_.a_max - ego_.a_min) * i / (kSamples - 1);
    const double cap = a >= 0.0 ? ego_.v_max : ego_.v_min;
    IntersectionWorld next = w;
    next.t = w.t + dt_c_;
    next.ego.p =
        w.ego.p + util::displacement_with_speed_cap(w.ego.v, a, dt_c_, cap);
    next.ego.v = ego_.clamp_speed(util::speed_after(w.ego.v, a, dt_c_, cap));
    if (!resolvable(next)) return true;
  }
  return false;
}

double IntersectionScenario::emergency_accel(
    const IntersectionWorld& w) const {
  // Committed with a clear full-throttle plan: execute it.
  if (full_throttle_clear(w)) return ego_.a_max;
  // Otherwise stop before the next stop line with least braking.
  if (const auto line = next_stop_line(w.ego.p)) {
    const double gap = *line - w.ego.p;
    if (gap <= 1e-9) return w.ego.v <= 1e-9 ? 0.0 : ego_.a_min;
    return std::max(ego_.a_min, -(w.ego.v * w.ego.v) / (2.0 * gap));
  }
  // Inside a zone with no clear plan: escape forward as fast as possible
  // (last resort; unreachable under compound control from a safe start).
  return ego_.a_max;
}

IntersectionSafetyModel::IntersectionSafetyModel(
    std::shared_ptr<const IntersectionScenario> scenario)
    : scenario_(std::move(scenario)) {
  assert(scenario_ != nullptr);
}

bool IntersectionSafetyModel::in_unsafe_set(
    const IntersectionWorld& world) const {
  return scenario_->in_unsafe_set(world);
}

bool IntersectionSafetyModel::in_boundary_safe_set(
    const IntersectionWorld& world) const {
  return scenario_->in_boundary_safe_set(world);
}

double IntersectionSafetyModel::emergency_accel(
    const IntersectionWorld& world) const {
  return scenario_->emergency_accel(world);
}

std::string IntersectionSafetyModel::boundary_reason(
    const IntersectionWorld& world) const {
  if (scenario_->in_zone_a(world.ego.p)) return "inside near lane";
  if (scenario_->in_zone_b(world.ego.p)) return "inside far lane";
  return world.ego.p < scenario_->geometry().zone_a_front
             ? "before near lane"
             : "median gap";
}

}  // namespace cvsafe::scenario
