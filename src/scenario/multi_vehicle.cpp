#include "cvsafe/scenario/multi_vehicle.hpp"

#include <algorithm>
#include <cassert>

#include "cvsafe/scenario/safety_model.hpp"
#include "cvsafe/util/kinematics.hpp"

namespace cvsafe::scenario {

using util::Interval;
using util::IntervalSet;

MultiVehicleLeftTurn::MultiVehicleLeftTurn(
    std::shared_ptr<const LeftTurnScenario> base)
    : base_(std::move(base)) {
  assert(base_ != nullptr);
}

IntervalSet MultiVehicleLeftTurn::conservative_windows(
    std::span<const filter::StateEstimate> oncoming) const {
  IntervalSet tau;
  for (const auto& est : oncoming) {
    tau.insert(base_->c1_window_conservative(est));
  }
  return tau;
}

IntervalSet MultiVehicleLeftTurn::aggressive_windows(
    std::span<const filter::StateEstimate> oncoming,
    const AggressiveBuffers& buffers) const {
  IntervalSet tau;
  for (const auto& est : oncoming) {
    tau.insert(base_->c1_window_aggressive(est, buffers));
  }
  return tau;
}

Interval MultiVehicleLeftTurn::full_throttle_occupancy(double t, double p0,
                                                       double v0) const {
  const auto& g = base_->geometry();
  const auto& lim = base_->ego_limits();
  if (p0 > g.ego_back) return Interval::empty_interval();
  const double entry =
      p0 >= g.ego_front
          ? t
          : t + util::time_to_travel(g.ego_front - p0, v0, lim.a_max,
                                     lim.v_max);
  const double exit = t + util::time_to_travel(g.ego_back - p0 + 1e-3, v0,
                                               lim.a_max, lim.v_max);
  return Interval{entry, exit};
}

bool MultiVehicleLeftTurn::in_unsafe_set(double t, double p0, double v0,
                                         const IntervalSet& tau) const {
  if (base_->slack(p0, v0) >= 0.0) return false;
  return tau.intersects(base_->ego_passing_window(t, p0, v0));
}

bool MultiVehicleLeftTurn::resolvable(double t, double p0, double v0,
                                      const IntervalSet& tau) const {
  const IntervalSet remaining = tau.after(t);
  if (remaining.empty()) return true;
  const auto& g = base_->geometry();
  if (p0 > g.ego_back) return true;

  // (i) Pass ahead of every remaining window under full throttle.
  const Interval occupancy = full_throttle_occupancy(t, p0, v0);
  if (!remaining.intersects(occupancy) && occupancy.hi <= remaining.min()) {
    return true;
  }

  if (p0 >= g.ego_front) return false;  // inside: cannot delay

  // (ii) Delay entry past the last window under full braking.
  const auto& lim = base_->ego_limits();
  const double entry_mb =
      t + util::time_to_travel(g.ego_front - p0, v0, lim.a_min,
                               std::max(lim.v_min, 0.0));
  return entry_mb >= remaining.max();
}

bool MultiVehicleLeftTurn::in_boundary_safe_set(double t, double p0,
                                                double v0,
                                                const IntervalSet& tau) const {
  if (tau.after(t).empty()) return false;
  const auto& g = base_->geometry();
  const auto& lim = base_->ego_limits();
  const double dt_c = base_->control_period();

  const auto step_to = [&](double a, double& p_next, double& v_next) {
    const double cap = a >= 0.0 ? lim.v_max : lim.v_min;
    p_next = p0 + util::displacement_with_speed_cap(v0, a, dt_c, cap);
    v_next = lim.clamp_speed(util::speed_after(v0, a, dt_c, cap));
  };
  constexpr int kAccelSamples = 33;
  const auto any_step_unresolvable = [&](bool require_commit) {
    for (int i = 0; i < kAccelSamples; ++i) {
      const double a =
          lim.a_min + (lim.a_max - lim.a_min) * i / (kAccelSamples - 1);
      double p_next;
      double v_next;
      step_to(a, p_next, v_next);
      if (require_commit && base_->slack(p_next, v_next) >= 0.0) continue;
      if (!resolvable(t + dt_c, p_next, v_next, tau)) return true;
    }
    return false;
  };

  if (p0 <= g.ego_front) {
    const double s = base_->slack(p0, v0);
    if (s < 0.0) return any_step_unresolvable(/*require_commit=*/false);
    const double margin = (v0 * dt_c + 0.5 * lim.a_max * dt_c * dt_c) *
                          (1.0 - lim.a_max / lim.a_min);
    if (s >= margin) return false;
    if (tau.intersects(base_->ego_passing_window(t, p0, v0))) return true;
    return any_step_unresolvable(/*require_commit=*/true);
  }

  if (p0 <= g.ego_back) {
    const double v_worst = std::max(v0 + lim.a_min * dt_c, lim.v_min);
    const double p_worst =
        p0 + std::max(0.0, v0 * dt_c + 0.5 * lim.a_min * dt_c * dt_c);
    const Interval tau0_worst = base_->ego_passing_window(
        t + dt_c, std::min(p_worst, g.ego_back), v_worst);
    return tau.intersects(tau0_worst);
  }

  return false;
}

double MultiVehicleLeftTurn::emergency_accel(double t, double p0, double v0,
                                             const IntervalSet& tau) const {
  const auto& g = base_->geometry();
  const auto& lim = base_->ego_limits();
  if (p0 > g.ego_front) return lim.a_max;

  const double s = base_->slack(p0, v0);
  if (s >= 0.0) {
    const double gap = g.ego_front - p0;
    if (gap <= 1e-9) return v0 <= 1e-9 ? 0.0 : lim.a_min;
    return std::max(lim.a_min, -(v0 * v0) / (2.0 * gap));
  }

  // Committed: full throttle when passing ahead of every remaining window
  // is the resolving strategy; otherwise brake and delay.
  const IntervalSet remaining = tau.after(t);
  if (remaining.empty()) return lim.a_max;
  const Interval occupancy = full_throttle_occupancy(t, p0, v0);
  if (!remaining.intersects(occupancy) && occupancy.hi <= remaining.min()) {
    return lim.a_max;
  }
  return lim.a_min;
}

MultiVehicleSafetyModel::MultiVehicleSafetyModel(
    std::shared_ptr<const MultiVehicleLeftTurn> math,
    AggressiveBuffers buffers)
    : math_(std::move(math)), buffers_(buffers) {
  assert(math_ != nullptr);
}

bool MultiVehicleSafetyModel::in_unsafe_set(
    const LeftTurnMultiWorld& world) const {
  return math_->in_unsafe_set(world.t, world.ego.p, world.ego.v,
                              world.tau_monitor);
}

bool MultiVehicleSafetyModel::in_boundary_safe_set(
    const LeftTurnMultiWorld& world) const {
  return math_->in_boundary_safe_set(world.t, world.ego.p, world.ego.v,
                                     world.tau_monitor);
}

double MultiVehicleSafetyModel::emergency_accel(
    const LeftTurnMultiWorld& world) const {
  return math_->emergency_accel(world.t, world.ego.p, world.ego.v,
                                world.tau_monitor);
}

LeftTurnMultiWorld MultiVehicleSafetyModel::shrink_for_planner(
    const LeftTurnMultiWorld& world) const {
  LeftTurnMultiWorld shrunk = world;
  shrunk.tau_nn = math_->aggressive_windows(world.oncoming_nn, buffers_);
  return shrunk;
}

LeftTurnMultiWorld MultiVehicleSafetyModel::bias_for_emergency(
    const LeftTurnMultiWorld& world) const {
  LeftTurnMultiWorld biased = world;
  util::IntervalSet padded;
  for (const auto& w : world.tau_monitor) {
    padded.insert(w.inflated(LeftTurnSafetyModel::kEmergencyBias));
  }
  biased.tau_monitor = padded;
  return biased;
}

FirstConflictAdapter::FirstConflictAdapter(
    std::shared_ptr<core::PlannerBase<LeftTurnWorld>> inner)
    : inner_(std::move(inner)),
      name_(std::string("first_conflict(") + std::string(inner_->name()) +
            ")") {
  assert(inner_ != nullptr);
}

double FirstConflictAdapter::plan(const LeftTurnMultiWorld& world) {
  LeftTurnWorld view;
  view.t = world.t;
  view.ego = world.ego;
  const util::IntervalSet upcoming = world.tau_nn.after(world.t);
  view.tau1_nn =
      upcoming.empty() ? Interval::empty_interval() : upcoming[0];
  view.tau1_monitor = view.tau1_nn;
  if (!world.oncoming_nn.empty()) view.c1_nn = world.oncoming_nn.front();
  return inner_->plan(view);
}

}  // namespace cvsafe::scenario
