#include "cvsafe/scenario/lane_change.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "cvsafe/util/kinematics.hpp"

namespace cvsafe::scenario {

LaneChangeScenario::LaneChangeScenario(LaneChangeGeometry geometry,
                                       vehicle::VehicleLimits ego,
                                       vehicle::VehicleLimits c1, double dt_c)
    : geometry_(geometry), ego_(ego), c1_(c1), dt_c_(dt_c) {
  assert(geometry_.valid());
  assert(ego_.valid() && c1_.valid());
  assert(dt_c_ > 0.0);
}

double LaneChangeScenario::worst_case_gap(
    double p0, const filter::StateEstimate& c1) const {
  if (!c1.valid) return -1e9;  // unknown vehicle position: assume violated
  return c1.p.lo - p0;
}

namespace {

/// Numerical pad on top of the analytic margins so discretization error
/// can never turn a boundary-riding trajectory into a violation.
constexpr double kSafetyPad = 0.05;

/// Extra distance the ego may close on C1 before their speeds equalize,
/// assuming the ego brakes as hard as possible while C1 could slow to its
/// minimum speed. Added on top of p_gap this yields a gap that full
/// braking can always sustain.
double closing_margin(double v0, const vehicle::VehicleLimits& ego,
                      const vehicle::VehicleLimits& c1) {
  const double v_floor = c1.v_min;
  if (v0 <= v_floor) return 0.0;
  const double dv = v0 - v_floor;
  return dv * dv / (2.0 * -ego.a_min);
}

}  // namespace

bool LaneChangeScenario::in_unsafe_set(
    double p0, const filter::StateEstimate& c1) const {
  return merged(p0) && worst_case_gap(p0, c1) < geometry_.min_gap;
}

bool LaneChangeScenario::in_boundary_safe_set(
    double t, double p0, double v0, const filter::StateEstimate& c1) const {
  (void)t;
  if (!c1.valid) {
    // Without any information about the lane, merging is never permitted;
    // ramp states close to the merge point are treated as boundary.
    return !merged(p0);
  }
  const double required =
      geometry_.min_gap + closing_margin(v0, ego_, c1_) + kSafetyPad;

  if (merged(p0)) {
    // One worst-case step: ego at full throttle, C1 at full brake.
    const double p0_next =
        p0 + util::displacement_with_speed_cap(v0, ego_.a_max, dt_c_,
                                               ego_.v_max);
    const double v0_next = util::speed_after(v0, ego_.a_max, dt_c_,
                                             ego_.v_max);
    const double p1_next =
        c1.p.lo + util::displacement_with_speed_cap(c1.v.lo, c1_.a_min, dt_c_,
                                                    c1_.v_min);
    const double required_next = geometry_.min_gap +
                                 closing_margin(v0_next, ego_, c1_) +
                                 kSafetyPad;
    return p1_next - p0_next < std::max(required, required_next);
  }

  // On the ramp: emergency is needed once stopping before the merge point
  // is about to become impossible while the (worst-case) merge would
  // violate the sustainable gap.
  const double d_b = util::braking_distance(v0, ego_.a_min);
  const double s = geometry_.merge_point - d_b - p0;
  if (s < 0.0) return false;  // committed: cleared by the projection below
                              // at the step the commitment was made
  const double margin = (v0 * dt_c_ + 0.5 * ego_.a_max * dt_c_ * dt_c_) *
                        (1.0 - ego_.a_max / ego_.a_min);
  if (s >= margin) return false;

  // Worst-case merge projection (Eq. 3 evaluated against the most
  // adversarial feasible future): the ego storms in at full throttle —
  // earliest arrival, highest arrival speed, hence largest sustainable-gap
  // requirement — while C1 brakes as hard as possible. Any other ego
  // profile arrives later (C1 further ahead) and slower (smaller
  // requirement), so clearing this projection clears them all.
  const double dist = std::max(0.0, geometry_.merge_point - p0);
  const double t_arr = util::time_to_travel(dist, v0, ego_.a_max,
                                            ego_.v_max);
  if (!std::isfinite(t_arr)) return false;  // stopped on the ramp: safe
  const double v_arr = util::speed_after(v0, ego_.a_max, t_arr, ego_.v_max);
  const double required_arr = geometry_.min_gap +
                              closing_margin(v_arr, ego_, c1_) + kSafetyPad;
  const double p1_at_arrival =
      c1.p.lo + util::displacement_with_speed_cap(c1.v.lo, c1_.a_min, t_arr,
                                                  c1_.v_min);
  return p1_at_arrival - geometry_.merge_point < required_arr;
}

double LaneChangeScenario::emergency_accel(double p0, double v0) const {
  if (!merged(p0)) {
    const double gap = geometry_.merge_point - p0;
    if (gap <= 1e-9) return v0 <= 1e-9 ? 0.0 : ego_.a_min;
    return std::max(ego_.a_min, -(v0 * v0) / (2.0 * gap));
  }
  return ego_.a_min;  // merged: open the gap as fast as possible
}

LaneChangeSafetyModel::LaneChangeSafetyModel(
    std::shared_ptr<const LaneChangeScenario> scenario)
    : scenario_(std::move(scenario)) {
  assert(scenario_ != nullptr);
}

bool LaneChangeSafetyModel::in_unsafe_set(const LaneChangeWorld& world) const {
  return scenario_->in_unsafe_set(world.ego.p, world.c1_monitor);
}

bool LaneChangeSafetyModel::in_boundary_safe_set(
    const LaneChangeWorld& world) const {
  return scenario_->in_boundary_safe_set(world.t, world.ego.p, world.ego.v,
                                         world.c1_monitor);
}

double LaneChangeSafetyModel::emergency_accel(
    const LaneChangeWorld& world) const {
  return scenario_->emergency_accel(world.ego.p, world.ego.v);
}

}  // namespace cvsafe::scenario
