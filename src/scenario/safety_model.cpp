#include "cvsafe/scenario/safety_model.hpp"

#include <cassert>

namespace cvsafe::scenario {

LeftTurnSafetyModel::LeftTurnSafetyModel(
    std::shared_ptr<const LeftTurnScenario> scenario,
    AggressiveBuffers buffers)
    : scenario_(std::move(scenario)), buffers_(buffers) {
  assert(scenario_ != nullptr);
}

bool LeftTurnSafetyModel::in_unsafe_set(const LeftTurnWorld& world) const {
  return scenario_->in_unsafe_set(world.t, world.ego.p, world.ego.v,
                                  world.tau1_monitor);
}

bool LeftTurnSafetyModel::in_boundary_safe_set(
    const LeftTurnWorld& world) const {
  return scenario_->in_boundary_safe_set(world.t, world.ego.p, world.ego.v,
                                         world.tau1_monitor);
}

double LeftTurnSafetyModel::emergency_accel(const LeftTurnWorld& world) const {
  return scenario_->emergency_accel(world.t, world.ego.p, world.ego.v,
                                    world.tau1_monitor);
}

LeftTurnWorld LeftTurnSafetyModel::shrink_for_planner(
    const LeftTurnWorld& world) const {
  LeftTurnWorld shrunk = world;
  shrunk.tau1_nn = scenario_->c1_window_aggressive(world.c1_nn, buffers_);
  return shrunk;
}

LeftTurnWorld LeftTurnSafetyModel::bias_for_emergency(
    const LeftTurnWorld& world) const {
  LeftTurnWorld biased = world;
  if (!biased.tau1_monitor.empty()) {
    biased.tau1_monitor = biased.tau1_monitor.inflated(kEmergencyBias);
  }
  return biased;
}

std::string LeftTurnSafetyModel::boundary_reason(
    const LeftTurnWorld& world) const {
  const auto& g = scenario_->geometry();
  if (world.ego.p > g.ego_front) return "inside zone";
  if (scenario_->slack(world.ego.p, world.ego.v) < 0.0) return "committed";
  return "slack band";
}

double LeftTurnSafetyModel::boundary_slack(const LeftTurnWorld& world) const {
  return scenario_->slack(world.ego.p, world.ego.v);
}

}  // namespace cvsafe::scenario
