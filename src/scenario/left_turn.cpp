#include "cvsafe/scenario/left_turn.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "cvsafe/util/contracts.hpp"
#include "cvsafe/util/kinematics.hpp"

namespace cvsafe::scenario {

using util::Interval;

namespace {
constexpr double kInf = std::numeric_limits<double>::infinity();
constexpr double kSpeedEps = 1e-9;
}  // namespace

LeftTurnScenario::LeftTurnScenario(LeftTurnGeometry geometry,
                                   vehicle::VehicleLimits ego,
                                   vehicle::VehicleLimits oncoming,
                                   double dt_c)
    : geometry_(geometry), ego_(ego), c1_(oncoming), dt_c_(dt_c) {
  CVSAFE_EXPECTS(geometry_.valid(), "left-turn geometry must be well-formed");
  CVSAFE_EXPECTS(ego_.valid(), "ego vehicle limits must be well-formed");
  CVSAFE_EXPECTS(c1_.valid(), "oncoming vehicle limits must be well-formed");
  CVSAFE_EXPECTS(dt_c_ > 0.0, "control period must be positive");
}

double LeftTurnScenario::ego_braking_distance(double v0) const {
  return util::braking_distance(v0, ego_.a_min);
}

double LeftTurnScenario::slack(double p0, double v0) const {
  // Eq. 5.
  if (p0 <= geometry_.ego_front) {
    return geometry_.ego_front - ego_braking_distance(v0) - p0;
  }
  if (p0 <= geometry_.ego_back) {
    return p0 - geometry_.ego_back;  // <= 0 inside the zone
  }
  return kInf;
}

Interval LeftTurnScenario::ego_passing_window(double t, double p0,
                                              double v0) const {
  // Projected passing interval at the current velocity (Section IV).
  if (p0 > geometry_.ego_back) return Interval::empty_interval();
  if (p0 <= geometry_.ego_front) {
    if (v0 <= kSpeedEps) return Interval::empty_interval();  // stopped short
    return Interval{t + (geometry_.ego_front - p0) / v0,
                    t + (geometry_.ego_back - p0) / v0};
  }
  // Inside the zone: occupancy starts now; a (near-)stopped ego may stay
  // inside indefinitely.
  if (v0 <= kSpeedEps) return Interval{t, kInf};
  return Interval{t, t + (geometry_.ego_back - p0) / v0};
}

double LeftTurnScenario::c1_travel_time(double dist, double v, double a,
                                        double v_hi_cap,
                                        double v_lo_cap) const {
  // Accelerating runs saturate at the upper cap; decelerating runs at the
  // lower cap (Eq. 7 branch structure, both directions).
  const double cap = a >= 0.0 ? v_hi_cap : v_lo_cap;
  return util::time_to_travel(dist, v, a, cap);
}

Interval LeftTurnScenario::c1_window_conservative(
    const filter::StateEstimate& c1) const {
  if (!c1.valid) {
    // No information at all: C1 could be anywhere; assume the zone may be
    // occupied from now on indefinitely (maximally conservative).
    return Interval{c1.t, kInf};
  }
  // C1 certainly past the zone: no future occupancy.
  if (c1.p.lo >= geometry_.c1_back) return Interval::empty_interval();

  const double t = c1.t;
  // Earliest entry: most advanced position bound, fastest speed bound,
  // full acceleration (Eq. 7 with physical limits).
  double tau_min;
  if (c1.p.hi >= geometry_.c1_front) {
    tau_min = t;  // may already be inside
  } else {
    tau_min = t + c1_travel_time(geometry_.c1_front - c1.p.hi, c1.v.hi,
                                 c1_.a_max, c1_.v_max, c1_.v_min);
  }
  // Latest exit: least advanced position bound, slowest speed bound, full
  // braking (tau_1,max analog of Eq. 7).
  const double tau_max =
      t + c1_travel_time(geometry_.c1_back - c1.p.lo, c1.v.lo, c1_.a_min,
                         c1_.v_max, c1_.v_min);
  if (tau_max < tau_min) return Interval::empty_interval();
  return Interval{tau_min, tau_max};
}

Interval LeftTurnScenario::c1_window_aggressive(
    const filter::StateEstimate& c1, const AggressiveBuffers& buffers) const {
  if (!c1.valid) return Interval{c1.t, kInf};
  const double t = c1.t;
  // Eq. 8 evaluated on the estimate's interval bounds: the earliest entry
  // uses the most advanced position / fastest speed the estimate allows,
  // the latest exit the least advanced / slowest — so the quality of the
  // information (sensor noise, message staleness) directly shapes the
  // window the NN planner sees. With a point estimate this reduces to the
  // paper's formula verbatim.
  const Interval pb = c1.p.empty() ? Interval::point(c1.p_hat) : c1.p;
  const Interval vb_raw = c1.v.empty() ? Interval::point(c1.v_hat) : c1.v;
  const Interval vb{std::clamp(vb_raw.lo, c1_.v_min, c1_.v_max),
                    std::clamp(vb_raw.hi, c1_.v_min, c1_.v_max)};
  const double a_hat = std::clamp(c1.a_hat, c1_.a_min, c1_.a_max);

  if (pb.lo >= geometry_.c1_back) return Interval::empty_interval();

  // Replace the physical extremes with buffered current values.
  const double a_up = std::min(a_hat + buffers.a_buf, c1_.a_max);
  const double v_up = std::min(vb.hi + buffers.v_buf, c1_.v_max);
  const double a_dn = std::max(a_hat - buffers.a_buf, c1_.a_min);
  const double v_dn = std::max(vb.lo - buffers.v_buf, c1_.v_min);

  double tau_min;
  if (pb.hi >= geometry_.c1_front) {
    tau_min = t;
  } else {
    tau_min = t + c1_travel_time(geometry_.c1_front - pb.hi, vb.hi, a_up,
                                 v_up, v_dn);
  }
  const double tau_max = t + c1_travel_time(geometry_.c1_back - pb.lo, vb.lo,
                                            a_dn, v_up, v_dn);
  if (tau_max < tau_min) return Interval::empty_interval();
  return Interval{tau_min, tau_max};
}

bool LeftTurnScenario::in_unsafe_set(double t, double p0, double v0,
                                     const Interval& tau1) const {
  // Eq. 6: negative slack and intersecting passing windows.
  if (slack(p0, v0) >= 0.0) return false;
  return ego_passing_window(t, p0, v0).intersects(tau1);
}

bool LeftTurnScenario::resolvable(double t, double p0, double v0,
                                  const Interval& tau1) const {
  if (tau1.empty() || tau1.hi <= t) return true;  // conflict gone
  if (p0 > geometry_.ego_back) return true;       // already past the zone

  // (i) Pass ahead: full-throttle zone exit before C1 can possibly enter.
  const double exit_ft =
      t + util::time_to_travel(geometry_.ego_back - p0 + 1e-3, v0,
                               ego_.a_max, ego_.v_max);
  if (exit_ft <= tau1.lo) return true;

  if (p0 >= geometry_.ego_front) return false;  // inside: cannot delay

  // (ii) Delay behind: under full braking the ego either stops short of
  // the front line or reaches it only after C1 has certainly cleared.
  const double entry_mb = t + util::time_to_travel(
                                  geometry_.ego_front - p0, v0, ego_.a_min,
                                  std::max(ego_.v_min, 0.0));
  return entry_mb >= tau1.hi;
}

bool LeftTurnScenario::in_boundary_safe_set(double t, double p0, double v0,
                                            const Interval& tau1) const {
  if (tau1.empty()) return false;

  // One feasible control step from (p0, v0), saturating at the speed
  // limits, used by the committed / in-band preimage sampling below.
  const auto step_to = [&](double a, double& p_next, double& v_next) {
    const double cap = a >= 0.0 ? ego_.v_max : ego_.v_min;
    p_next = p0 + util::displacement_with_speed_cap(v0, a, dt_c_, cap);
    v_next = ego_.clamp_speed(util::speed_after(v0, a, dt_c_, cap));
  };
  constexpr int kAccelSamples = 33;
  const auto any_step_unresolvable = [&](bool require_commit) {
    for (int i = 0; i < kAccelSamples; ++i) {
      const double a = ego_.a_min + (ego_.a_max - ego_.a_min) * i /
                                        (kAccelSamples - 1);
      double p_next;
      double v_next;
      step_to(a, p_next, v_next);
      if (require_commit && slack(p_next, v_next) >= 0.0) continue;
      if (!resolvable(t + dt_c_, p_next, v_next, tau1)) return true;
    }
    return false;
  };

  if (p0 <= geometry_.ego_front) {
    const double s = slack(p0, v0);
    if (s < 0.0) {
      // Committed (cannot stop short anymore) — completion of Eq. 3: the
      // embedded planner must not be allowed to destroy resolvability
      // (e.g. accelerate into C1's window after committing to pass
      // behind it).
      return any_step_unresolvable(/*require_commit=*/false);
    }
    // Paper's closed form: the minimum possible next-step slack is
    //   s(t) - (v0 dtc + a_max dtc^2 / 2)(1 - a_max / a_min),
    // so the state is one step from a negative slack iff s(t) is below
    // that margin (and the windows intersect).
    const double margin = (v0 * dt_c_ + 0.5 * ego_.a_max * dt_c_ * dt_c_) *
                          (1.0 - ego_.a_max / ego_.a_min);
    if (s >= margin) return false;
    if (ego_passing_window(t, p0, v0).intersects(tau1)) return true;
    // Additionally, block commitments that would be unresolvable.
    return any_step_unresolvable(/*require_commit=*/true);
  }

  if (p0 <= geometry_.ego_back) {
    // Inside-zone completion of Eq. 3: braking hardest for one step could
    // stretch the ego's occupancy into C1's window, which is one feasible
    // control step from X_u. Check the worst-case (full-brake) projection.
    const double v_worst = std::max(v0 + ego_.a_min * dt_c_, ego_.v_min);
    const double p_worst =
        p0 + std::max(0.0, v0 * dt_c_ + 0.5 * ego_.a_min * dt_c_ * dt_c_);
    const Interval tau0_worst =
        ego_passing_window(t + dt_c_, std::min(p_worst, geometry_.ego_back),
                           v_worst);
    return tau0_worst.intersects(tau1);
  }

  return false;  // past the zone: permanently safe
}

double LeftTurnScenario::emergency_accel(double t, double p0, double v0,
                                         const Interval& tau1) const {
  if (p0 > geometry_.ego_front) return ego_.a_max;  // escape the zone

  const double s = slack(p0, v0);
  if (s >= 0.0) {
    // Section IV: least braking that stops before the front line.
    const double gap = geometry_.ego_front - p0;
    if (gap <= 1e-9) {
      // Numerically at the line: hold only when fully stopped. Any
      // residual speed — even sub-epsilon — must brake, or the vehicle
      // coasts across the line (the sound certifier's invariance lemma
      // needs |a| >= v^2 / (2 gap) whenever v > 0).
      return v0 > 0.0 ? ego_.a_min : 0.0;
    }
    return std::max(ego_.a_min, -(v0 * v0) / (2.0 * gap));
  }

  // Committed: apply the resolving strategy. Passing ahead (full-throttle
  // exit beats C1's earliest entry) keeps accelerating; otherwise delay
  // behind C1 with full braking.
  const double exit_ft =
      t + util::time_to_travel(geometry_.ego_back - p0 + 1e-3, v0,
                               ego_.a_max, ego_.v_max);
  if (!tau1.empty() && tau1.hi > t && exit_ft > tau1.lo) return ego_.a_min;
  return ego_.a_max;
}

bool LeftTurnScenario::ego_in_zone(double p0) const {
  return p0 > geometry_.ego_front && p0 < geometry_.ego_back;
}

bool LeftTurnScenario::c1_in_zone(double u1) const {
  return u1 > geometry_.c1_front && u1 < geometry_.c1_back;
}

bool LeftTurnScenario::collision(double p0, double u1) const {
  return ego_in_zone(p0) && c1_in_zone(u1);
}

bool LeftTurnScenario::ego_reached_target(double p0) const {
  return p0 >= geometry_.ego_target;
}

}  // namespace cvsafe::scenario
