#include "cvsafe/vehicle/dynamics.hpp"

#include <algorithm>

#include "cvsafe/util/contracts.hpp"
#include "cvsafe/util/kinematics.hpp"

namespace cvsafe::vehicle {

double VehicleLimits::clamp_accel(double a) const {
  return std::clamp(a, a_min, a_max);
}

double VehicleLimits::clamp_speed(double v) const {
  return std::clamp(v, v_min, v_max);
}

bool VehicleLimits::valid() const {
  return v_min <= v_max && a_min < 0.0 && a_max > 0.0;
}

VehicleState DoubleIntegrator::step(const VehicleState& s, double a_cmd,
                                    double dt) const {
  CVSAFE_EXPECTS(dt > 0.0, "integration step needs dt > 0");
  CVSAFE_EXPECTS(limits_.valid(), "vehicle limits must be well-formed");
  const double a = limits_.clamp_accel(a_cmd);
  // Velocity saturates at the limit crossed in the direction of a.
  const double cap = a >= 0.0 ? limits_.v_max : limits_.v_min;
  VehicleState out;
  out.p = s.p + util::displacement_with_speed_cap(s.v, a, dt, cap);
  out.v = limits_.clamp_speed(util::speed_after(s.v, a, dt, cap));
  return out;
}

void DoubleIntegrator::step_batch(std::span<double> p, std::span<double> v,
                                  std::span<const double> a_cmd, double dt,
                                  std::size_t count) const {
  CVSAFE_EXPECTS(dt > 0.0, "integration step needs dt > 0");
  CVSAFE_EXPECTS(limits_.valid(), "vehicle limits must be well-formed");
  CVSAFE_EXPECTS(count <= p.size() && count <= v.size() &&
                     count <= a_cmd.size(),
                 "step_batch lanes must cover count");
  for (std::size_t i = 0; i < count; ++i) {
    const double a = limits_.clamp_accel(a_cmd[i]);
    const double cap = a >= 0.0 ? limits_.v_max : limits_.v_min;
    p[i] += util::displacement_with_speed_cap(v[i], a, dt, cap);
    v[i] = limits_.clamp_speed(util::speed_after(v[i], a, dt, cap));
  }
}

VehicleState DoubleIntegrator::step_unsaturated(const VehicleState& s,
                                                double a_cmd,
                                                double dt) const {
  CVSAFE_EXPECTS(dt > 0.0, "integration step needs dt > 0");
  const double a = limits_.clamp_accel(a_cmd);
  return VehicleState{s.p + s.v * dt + 0.5 * a * dt * dt, s.v + a * dt};
}

}  // namespace cvsafe::vehicle
