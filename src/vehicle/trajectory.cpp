#include "cvsafe/vehicle/trajectory.hpp"

#include <algorithm>
#include <cassert>

namespace cvsafe::vehicle {

void Trajectory::push(const VehicleSnapshot& s) {
  assert(samples_.empty() || s.t >= samples_.back().t);
  samples_.push_back(s);
}

VehicleState Trajectory::at(double t) const {
  assert(!samples_.empty());
  if (t <= samples_.front().t) return samples_.front().state;
  if (t >= samples_.back().t) return samples_.back().state;
  const auto it = std::lower_bound(
      samples_.begin(), samples_.end(), t,
      [](const VehicleSnapshot& s, double tt) { return s.t < tt; });
  const auto& hi = *it;
  const auto& lo = *(it - 1);
  const double span = hi.t - lo.t;
  if (span <= 0.0) return lo.state;
  const double w = (t - lo.t) / span;
  return VehicleState{lo.state.p * (1.0 - w) + hi.state.p * w,
                      lo.state.v * (1.0 - w) + hi.state.v * w};
}

std::vector<double> Trajectory::positions() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) out.push_back(s.state.p);
  return out;
}

std::vector<double> Trajectory::velocities() const {
  std::vector<double> out;
  out.reserve(samples_.size());
  for (const auto& s : samples_) out.push_back(s.state.v);
  return out;
}

double Trajectory::first_time_at_position(double p) const {
  for (std::size_t i = 0; i < samples_.size(); ++i) {
    if (samples_[i].state.p >= p) {
      if (i == 0) return samples_[0].t;
      const auto& lo = samples_[i - 1];
      const auto& hi = samples_[i];
      const double dp = hi.state.p - lo.state.p;
      if (dp <= 0.0) return hi.t;
      const double w = (p - lo.state.p) / dp;
      return lo.t + w * (hi.t - lo.t);
    }
  }
  return -1.0;
}

}  // namespace cvsafe::vehicle
