#include "cvsafe/vehicle/state.hpp"

#include <ostream>

namespace cvsafe::vehicle {

std::ostream& operator<<(std::ostream& os, const VehicleState& s) {
  return os << "{p=" << s.p << ", v=" << s.v << '}';
}

std::ostream& operator<<(std::ostream& os, const VehicleSnapshot& s) {
  return os << "{t=" << s.t << ", p=" << s.state.p << ", v=" << s.state.v
            << ", a=" << s.a << '}';
}

}  // namespace cvsafe::vehicle
