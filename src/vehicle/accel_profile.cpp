#include "cvsafe/vehicle/accel_profile.hpp"

#include <algorithm>
#include <cassert>

namespace cvsafe::vehicle {

AccelProfile AccelProfile::random(std::size_t num_steps, double dt, double v0,
                                  const VehicleLimits& limits,
                                  const AccelProfileParams& params,
                                  util::Rng& rng) {
  assert(limits.valid());
  std::vector<double> accels;
  accels.reserve(num_steps);
  double a = 0.0;
  double v = v0;
  for (std::size_t i = 0; i < num_steps; ++i) {
    const double innovation = rng.normal(0.0, params.jerk_scale);
    a = params.smoothing * (a - params.bias) + params.bias +
        (1.0 - params.smoothing) * innovation * 4.0;
    a = limits.clamp_accel(a);
    // Clip so the integrated speed stays inside [v_min, v_max].
    const double a_hi = (limits.v_max - v) / dt;
    const double a_lo = (limits.v_min - v) / dt;
    a = std::clamp(a, std::max(limits.a_min, a_lo),
                   std::min(limits.a_max, a_hi));
    accels.push_back(a);
    v = limits.clamp_speed(v + a * dt);
  }
  return AccelProfile(std::move(accels));
}

AccelProfile AccelProfile::constant(std::size_t num_steps, double a) {
  return AccelProfile(std::vector<double>(num_steps, a));
}

double AccelProfile::at(std::size_t i) const {
  if (accels_.empty()) return 0.0;
  return accels_[std::min(i, accels_.size() - 1)];
}

}  // namespace cvsafe::vehicle
