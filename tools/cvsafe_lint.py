#!/usr/bin/env python3
"""cvsafe_lint: project-specific static checks for the cvsafe tree.

The safety framework's guarantee (the compound planner never enters the
unsafe set) is only as strong as the code computing it, so a handful of
constructions are banned outright in the library sources (src/ and
include/):

  pragma-once        every header starts with #pragma once
  no-iostream-header <iostream> must not be included from public headers
                     (it injects static init order dependencies and pulls
                     heavy streams into every consumer; use <iosfwd>)
  no-std-rand        std::rand/srand/rand are banned — all randomness goes
                     through util::Rng so runs stay seed-reproducible
  no-naked-new       no naked new/delete; ownership goes through
                     make_unique/make_shared/containers
  float-compare      ==/!= against floating-point literals is almost
                     always a bug in interval/filter code; annotate the
                     rare intentional exact comparison
  missing-override   implementations of the planner/filter/safety-model
                     virtual interfaces must say `override` (or `final`)
  no-assert-header   public headers use the CVSAFE_EXPECTS/ENSURES/ASSERT
                     contracts (configurable, always-on) instead of assert
  no-adhoc-sim-loop  the eval layer must not hand-roll closed-loop
                     simulations (stepping DoubleIntegrator dynamics or
                     drawing AccelProfile workloads); scenario loops live
                     behind sim::Engine / ScenarioAdapter in src/sim and
                     include/cvsafe/sim
  no-unchecked-message-fields
                     filter code must not read V2V Message payload fields
                     (.data.* / .stamp()) directly; every payload passes
                     through the plausibility gate
                     (filter/plausibility.hpp) before it is trusted, so
                     non-finite, implausible or spoofed values cannot
                     reach the estimators
  no-raw-stream-logging
                     library code under src/ must not write to
                     std::cout/std::cerr (or the stdio print family)
                     directly; diagnostics go through the obs recorder /
                     metrics registry so output stays deterministic and
                     machine-readable. Streaming into a caller-supplied
                     std::ostream& is fine — the rule bans the process-
                     global streams only. Annotate the rare legitimate
                     site (e.g. the contract-failure abort path)
  no-raw-endpoint-arithmetic
                     inside the sound-certifier sources (the file set in
                     SOUND_VERIFIER_FILES) direct +,-,*,/ touching an
                     Interval endpoint (.lo/.hi) is banned: a raw op
                     silently reintroduces round-to-nearest into a chain
                     that must round outward, voiding the certificate's
                     soundness argument. Compute through util::rounded.
                     Annotate sites whose result does not feed a bound
                     (e.g. the bisection split point — any split is sound)
  no-unrounded-bound-in-verify
                     same file set: the round-to-nearest Interval
                     conveniences (.mid()/.shifted()/.inflated()/
                     Interval::centered()) and raw std::nextafter /
                     std::fma are banned; the directed equivalents live
                     in util::rounded (prev/next/widen_ulps/...), which
                     centralise the infinity fixed-point handling
  no-scalar-stack-in-fleet
                     inside the fleet engine sources (the file set in
                     FLEET_ENGINE_FILES) the scalar safety-stack types
                     and entry points (KalmanFilter, DegradationLadder,
                     per-lane propagate() calls) are banned: the batched
                     shard-step must go through the pool-resident SoA
                     sweeps (FleetEstimator::update_batch/predict_batch,
                     ReachSweep::run, FleetLadder) or it silently
                     reintroduces the per-lane cache-residency regression
                     the SoA refactor removed. The reference per-lane
                     loop reaches the scalar stack only through the
                     episode's virtual interface, which this rule does
                     not flag; annotate any legitimate direct use
  no-episode-recorder-in-fleet-sweep
                     same file set: the episode-level obs::Recorder (the
                     allocating JSONL event recorder) and the
                     obs::recording() guard are banned from the fleet
                     engine — a recorder mounted inside the shard-step
                     allocates per event and serializes in retirement
                     order, breaking both the zero-alloc steady state
                     and byte-determinism. Fleet observability goes
                     through the fixed-capacity obs::RingRecorder
                     (flight_recorder.hpp), whose only allocation is
                     arm() at pool construction; RingRecorder /
                     FlightRecorderConfig / ring_recording() do not
                     match. The reference per-lane engine may mount
                     recorders — it is outside this file set

A finding on a line that carries the annotation
    cvsafe-lint: allow(<rule>)
is suppressed; the annotation documents intent at the site.

Exit status: 0 when clean, 1 when findings were reported, 2 on usage
errors. Run as `ctest -R cvsafe_lint` or directly:
    python3 tools/cvsafe_lint.py --root .
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
from dataclasses import dataclass

HEADER_SUFFIXES = {".hpp", ".h", ".hh"}
SOURCE_SUFFIXES = {".cpp", ".cc", ".cxx"} | HEADER_SUFFIXES

# Virtual methods declared by the project's polymorphic interfaces
# (PlannerBase, SafetyModelBase, Estimator, Optimizer). Implementations in
# derived classes must be marked override/final.
KNOWN_VIRTUALS = {
    "plan",
    "name",
    "in_unsafe_set",
    "in_boundary_safe_set",
    "emergency_accel",
    "shrink_for_planner",
    "boundary_reason",
    "on_sensor",
    "on_message",
    "estimate",
    "update",
    "end_step",
    "set_learning_rate",
    "learning_rate",
}

# Base classes whose derived classes the missing-override rule inspects.
INTERFACE_BASES = re.compile(
    r":\s*(?:public|protected|private)\s+"
    r"(?:\w+::)*(PlannerBase|SafetyModelBase|Estimator|Optimizer)\b"
)

FLOAT_LITERAL = r"(?:\d+\.\d*|\.\d+|\d+\.)(?:[eE][+-]?\d+)?[fFlL]?|\d+[eE][+-]?\d+[fFlL]?"
RE_FLOAT_CMP = re.compile(
    rf"(?:(?:{FLOAT_LITERAL})\s*[=!]=)|(?:[=!]=\s*(?:{FLOAT_LITERAL}))"
)
RE_STD_RAND = re.compile(r"\bstd\s*::\s*rand\b|\bsrand\s*\(|(?<![\w:.])rand\s*\(")
RE_NAKED_NEW = re.compile(r"(?<![\w:])new\b(?!\s*\()")
RE_NAKED_DELETE = re.compile(r"(?<![\w:])delete\b(?:\s*\[\s*\])?\s+[\w:*(]")
RE_ASSERT = re.compile(r"(?<![\w.])assert\s*\(|#\s*include\s*<cassert>")
RE_IOSTREAM = re.compile(r"#\s*include\s*<iostream>")
# Markers of a hand-rolled closed-loop simulation: integrating vehicle
# dynamics or drawing a random workload profile. Outside the engine tree
# these indicate a per-scenario loop that bypasses sim::Engine (the exact
# duplication the eval refactor removed).
RE_ADHOC_SIM = re.compile(
    r"\bDoubleIntegrator\b|\bAccelProfile\s*::\s*random\b"
)
# Directories where hand-rolled loops are banned (relative to the repo
# root). The eval layer is analysis/reporting only; closed loops belong
# to src/sim + include/cvsafe/sim.
ADHOC_SIM_BANNED_DIRS = ("src/eval", "include/cvsafe/eval")
# Direct reads of a comm::Message payload (.data.<field>) or its stamp().
# Inside the filter tree these bypass the plausibility gate; only the gate
# implementation itself (filter/plausibility.*) touches raw payloads.
RE_MSG_FIELD = re.compile(r"\.\s*data\s*\.|\.\s*stamp\s*\(")
MSG_FIELD_BANNED_DIRS = ("src/filter", "include/cvsafe/filter")
MSG_FIELD_EXEMPT_STEM = "plausibility"
# Writes to the process-global streams. Qualified std::cout/cerr/clog and
# std::printf-family calls, plus unqualified stdio calls; the lookbehind
# keeps snprintf/vsnprintf (formatting into buffers, not streams) and
# member calls like .inputs( out of scope.
RE_RAW_STREAM = re.compile(
    r"\bstd\s*::\s*(?:cout|cerr|clog|printf|fprintf|vfprintf|fputs|fputc"
    r"|puts|putchar|perror)\b"
    r"|(?<![\w:.])(?:printf|fprintf|vfprintf|fputs|fputc|puts|putchar"
    r"|perror)\s*\("
)
# The sound-certification sources: every floating-point endpoint that
# feeds a certified bound must be produced by util::rounded directed ops.
# The interval implementation headers themselves (util/interval.hpp,
# util/rounded_interval.hpp) are deliberately NOT in this set — they are
# where endpoint arithmetic is supposed to live.
SOUND_VERIFIER_FILES = (
    "include/cvsafe/nn/interval_mlp.hpp",
    "include/cvsafe/verify/sound.hpp",
    "src/nn/interval_mlp.cpp",
    "src/verify/sound.cpp",
)
# An Interval endpoint read (.lo/.hi) directly adjacent to an arithmetic
# operator, on either side. Negation is exact in IEEE-754 but is still
# flagged (annotate it) so the rule stays simple and reviewable.
# The right-hand alternation deliberately excludes parentheses so that a
# function *reading* an endpoint after an operator (`"," + hexd(iv.lo)`)
# does not fire; arithmetic whose operand is a parenthesised expression
# still trips on the operator inside the parens.
RE_RAW_ENDPOINT = re.compile(
    r"\.\s*(?:lo|hi)\b\s*[-+*/]"
    r"|[-+*/]\s*[\w.\[\]]*\.\s*(?:lo|hi)\b"
)
# Round-to-nearest conveniences and raw directed-step primitives that the
# sound sources must not call; the rounded equivalents handle infinities
# and empties centrally.
RE_UNROUNDED_BOUND = re.compile(
    r"\bstd\s*::\s*nextafter\b"
    r"|\bstd\s*::\s*fma\b"
    r"|\.\s*(?:mid|shifted|inflated)\s*\("
    r"|\bInterval\s*::\s*centered\s*\("
)
# The fleet engine sources: the shard-step must reach estimator/ladder/
# reachability state through the pool-resident SoA sweeps, never through
# the scalar per-lane stack (which reintroduces one cold ~5 KB object per
# lane per step — the pool8k cache-residency regression).
FLEET_ENGINE_FILES = (
    "include/cvsafe/sim/fleet.hpp",
    "src/sim/fleet.cpp",
)
# Scalar safety-stack types / entry points banned inside the fleet
# engine: the scalar filter and ladder classes, and per-lane propagate()
# calls (propagate_batch / ReachSweep::run are the sweep entry points and
# do not match).
RE_SCALAR_STACK = re.compile(
    r"\bKalmanFilter\b"
    r"|\bDegradationLadder\b"
    r"|\bpropagate\s*\("
)
# The episode-level JSONL recorder inside the fleet engine. `Recorder`
# must stand alone as an identifier tail: RingRecorder and
# FlightRecorderConfig never match (no word boundary before/after the
# embedded "Recorder"), and ring_recording() never matches the
# recording() alternative (the leading underscore is a word character).
RE_EPISODE_RECORDER = re.compile(
    r"\bRecorder\b"
    r"|\brecording\s*\("
)
RE_PRAGMA_ONCE = re.compile(r"^\s*#\s*pragma\s+once\b")
RE_ALLOW = re.compile(r"cvsafe-lint:\s*allow\(([a-z0-9_,\- ]+)\)")
RE_CLASS_DECL = re.compile(r"\b(?:class|struct)\s+(\w+)[^;{]*")
RE_MEMBER_DECL = re.compile(
    r"^\s*(?:virtual\s+)?[\w:<>,&*\s]+?\b(\w+)\s*\("
)


@dataclass
class Finding:
    path: pathlib.Path
    line: int
    rule: str
    message: str

    def render(self, root: pathlib.Path) -> str:
        rel = self.path.relative_to(root)
        return f"{rel}:{self.line}: [{self.rule}] {self.message}"


def strip_comments_and_strings(lines: list[str]) -> list[str]:
    """Returns a 'code view' of each line: comments and string/char literal
    contents replaced by spaces, so rules do not fire inside prose."""
    out = []
    in_block = False
    for raw in lines:
        buf = []
        i = 0
        n = len(raw)
        while i < n:
            ch = raw[i]
            nxt = raw[i + 1] if i + 1 < n else ""
            if in_block:
                if ch == "*" and nxt == "/":
                    in_block = False
                    buf.append("  ")
                    i += 2
                else:
                    buf.append(" ")
                    i += 1
            elif ch == "/" and nxt == "/":
                buf.append(" " * (n - i))
                break
            elif ch == "/" and nxt == "*":
                in_block = True
                buf.append("  ")
                i += 2
            elif ch in "\"'":
                quote = ch
                buf.append(quote)
                i += 1
                while i < n:
                    if raw[i] == "\\" and i + 1 < n:
                        buf.append("  ")
                        i += 2
                    elif raw[i] == quote:
                        buf.append(quote)
                        i += 1
                        break
                    else:
                        buf.append(" ")
                        i += 1
            else:
                buf.append(ch)
                i += 1
        out.append("".join(buf))
    return out


def allowed_rules(raw_line: str) -> set[str]:
    rules: set[str] = set()
    for match in RE_ALLOW.finditer(raw_line):
        for rule in match.group(1).split(","):
            rules.add(rule.strip())
    return rules


class FileLinter:
    def __init__(self, path: pathlib.Path, in_include_tree: bool,
                 adhoc_sim_banned: bool = False,
                 msg_fields_banned: bool = False,
                 raw_streams_banned: bool = False,
                 sound_rules: bool = False,
                 fleet_rules: bool = False):
        self.path = path
        self.in_include_tree = in_include_tree
        self.adhoc_sim_banned = adhoc_sim_banned
        self.msg_fields_banned = msg_fields_banned
        self.raw_streams_banned = raw_streams_banned
        self.sound_rules = sound_rules
        self.fleet_rules = fleet_rules
        self.raw = path.read_text(encoding="utf-8").splitlines()
        self.code = strip_comments_and_strings(self.raw)
        self.findings: list[Finding] = []

    def report(self, line_no: int, rule: str, message: str) -> None:
        # Allow-annotations may sit on the offending line, or on a
        # comment-only line directly above (so a trailing annotation never
        # leaks onto the next line).
        here = allowed_rules(self.raw[line_no - 1])
        above: set[str] = set()
        if line_no >= 2 and self.raw[line_no - 2].lstrip().startswith("//"):
            above = allowed_rules(self.raw[line_no - 2])
        if rule in here or rule in above:
            return
        self.findings.append(Finding(self.path, line_no, rule, message))

    # --- rules -----------------------------------------------------------

    def check_pragma_once(self) -> None:
        if self.path.suffix not in HEADER_SUFFIXES:
            return
        for line_no, code in enumerate(self.code, start=1):
            if not code.strip():
                continue
            if RE_PRAGMA_ONCE.match(code):
                return
            break
        self.report(1, "pragma-once",
                    "header must start with '#pragma once'")

    def check_line_rules(self) -> None:
        is_header = self.path.suffix in HEADER_SUFFIXES
        for line_no, code in enumerate(self.code, start=1):
            if RE_STD_RAND.search(code):
                self.report(line_no, "no-std-rand",
                            "use util::Rng, not the C rand family "
                            "(seed-reproducibility)")
            if RE_NAKED_NEW.search(code):
                self.report(line_no, "no-naked-new",
                            "naked 'new'; use make_unique/make_shared or a "
                            "container")
            if RE_NAKED_DELETE.search(code):
                self.report(line_no, "no-naked-new",
                            "naked 'delete'; ownership must be RAII-managed")
            if RE_FLOAT_CMP.search(code):
                self.report(line_no, "float-compare",
                            "==/!= against a floating-point literal; compare "
                            "with a tolerance or annotate the exact intent")
            if self.adhoc_sim_banned and RE_ADHOC_SIM.search(code):
                self.report(line_no, "no-adhoc-sim-loop",
                            "hand-rolled closed-loop simulation in the eval "
                            "layer; scenario loops go through sim::Engine "
                            "(src/sim, include/cvsafe/sim)")
            if self.msg_fields_banned and RE_MSG_FIELD.search(code):
                self.report(line_no, "no-unchecked-message-fields",
                            "direct Message payload access in filter code; "
                            "route payloads through the plausibility gate "
                            "(filter/plausibility.hpp)")
            if self.sound_rules and RE_RAW_ENDPOINT.search(code):
                self.report(line_no, "no-raw-endpoint-arithmetic",
                            "raw arithmetic on an Interval endpoint in a "
                            "sound-certifier source; compute through "
                            "util::rounded so the bound rounds outward")
            if self.sound_rules and RE_UNROUNDED_BOUND.search(code):
                self.report(line_no, "no-unrounded-bound-in-verify",
                            "round-to-nearest interval helper in a sound-"
                            "certifier source; use the util::rounded "
                            "directed equivalent")
            if self.fleet_rules and RE_SCALAR_STACK.search(code):
                self.report(line_no, "no-scalar-stack-in-fleet",
                            "scalar safety-stack use in the fleet engine; "
                            "the shard-step goes through the pool-resident "
                            "SoA sweeps (FleetEstimator, ReachSweep, "
                            "FleetLadder)")
            if self.fleet_rules and RE_EPISODE_RECORDER.search(code):
                self.report(line_no, "no-episode-recorder-in-fleet-sweep",
                            "episode-level obs::Recorder in the fleet "
                            "engine; it allocates per event and breaks "
                            "byte-determinism — use the fixed-capacity "
                            "obs::RingRecorder (flight_recorder.hpp)")
            if self.raw_streams_banned and RE_RAW_STREAM.search(code):
                self.report(line_no, "no-raw-stream-logging",
                            "library code must not write to the global "
                            "streams; emit through obs::Recorder / "
                            "MetricsRegistry or take a std::ostream&")
            if is_header and self.in_include_tree:
                if RE_IOSTREAM.search(code):
                    self.report(line_no, "no-iostream-header",
                                "public headers must not include <iostream>; "
                                "use <iosfwd>")
                if RE_ASSERT.search(code):
                    self.report(line_no, "no-assert-header",
                                "public headers use CVSAFE_EXPECTS/ENSURES/"
                                "ASSERT contracts, not assert()")

    def check_missing_override(self) -> None:
        """Flags declarations of known interface virtuals, at direct class
        scope of a class deriving from a project interface, that lack
        override/final. Brace-depth tracking keeps method bodies (where
        those names appear as *calls*) out of scope."""
        depth = 0
        class_stack: list[tuple[int, bool]] = []  # (body depth, is_derived)
        pending_decl: tuple[int, str] | None = None

        for line_no, code in enumerate(self.code, start=1):
            stripped = code.strip()

            if pending_decl is not None:
                first_line, acc = pending_decl
                acc += " " + stripped
                if ";" in stripped or "{" in stripped:
                    self._check_decl(first_line, acc)
                    pending_decl = None
                else:
                    pending_decl = (first_line, acc)

            at_class_scope = bool(class_stack) and depth == class_stack[-1][0]
            derived = class_stack[-1][1] if class_stack else False
            class_decl = RE_CLASS_DECL.search(code)
            opens_class_body = class_decl and "{" in code and ";" not in code.split("{")[0]

            if (pending_decl is None and at_class_scope and derived
                    and not opens_class_body):
                member = RE_MEMBER_DECL.match(code)
                if member and member.group(1) in KNOWN_VIRTUALS:
                    if ";" in code or "{" in code:
                        self._check_decl(line_no, code)
                    else:
                        pending_decl = (line_no, stripped)

            for ch in code:
                if ch == "{":
                    depth += 1
                    if opens_class_body:
                        is_derived = bool(INTERFACE_BASES.search(code))
                        class_stack.append((depth, is_derived))
                        opens_class_body = False
                elif ch == "}":
                    if class_stack and depth == class_stack[-1][0]:
                        class_stack.pop()
                    depth -= 1

    def _check_decl(self, line_no: int, decl: str) -> None:
        body_or_term = decl.split("{")[0] if "{" in decl else decl
        if "override" in body_or_term or "final" in body_or_term:
            return
        if "= 0" in body_or_term:  # new pure virtual on a derived interface
            return
        if "static" in body_or_term:
            return
        member = RE_MEMBER_DECL.match(decl)
        name = member.group(1) if member else "?"
        self.report(line_no, "missing-override",
                    f"'{name}' implements an interface virtual and must be "
                    "marked override")

    def run(self) -> list[Finding]:
        self.check_pragma_once()
        self.check_line_rules()
        self.check_missing_override()
        return self.findings


def lint_tree(root: pathlib.Path) -> list[Finding]:
    findings: list[Finding] = []
    for subdir in ("include", "src"):
        base = root / subdir
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix not in SOURCE_SUFFIXES or not path.is_file():
                continue
            rel = path.relative_to(root).as_posix()
            banned = any(rel.startswith(d + "/")
                         for d in ADHOC_SIM_BANNED_DIRS)
            msg_banned = (any(rel.startswith(d + "/")
                              for d in MSG_FIELD_BANNED_DIRS)
                          and not path.stem.startswith(
                              MSG_FIELD_EXEMPT_STEM))
            linter = FileLinter(path, in_include_tree=(subdir == "include"),
                                adhoc_sim_banned=banned,
                                msg_fields_banned=msg_banned,
                                raw_streams_banned=(subdir == "src"),
                                sound_rules=(rel in SOUND_VERIFIER_FILES),
                                fleet_rules=(rel in FLEET_ENGINE_FILES))
            findings.extend(linter.run())
    return findings


# --- self-test ------------------------------------------------------------
# Each case is (name, filename, linter kwargs, source, expected rule set).
# The linter lints its own rule corpus: a rule that silently stops firing
# (regex rot, scoping mistake) fails the suite, not just the codebase.
SELF_TEST_CASES: list[tuple[str, str, dict, str, set[str]]] = [
    ("sound-clean-directed-ops", "sound.cpp", {"sound_rules": True},
     "#include \"cvsafe/util/rounded_interval.hpp\"\n"
     "namespace rd = cvsafe::util::rounded;\n"
     "double f(const Interval& a, const Interval& b) {\n"
     "  const Interval s = rd::add(a, b);\n"
     "  return rd::div_up(1.0, 3.0) + s.width();\n"
     "}\n",
     set()),
    ("raw-endpoint-sub", "sound.cpp", {"sound_rules": True},
     "double w(const Interval& box) { return box.hi - box.lo; }\n",
     {"no-raw-endpoint-arithmetic"}),
    ("raw-endpoint-rhs-of-op", "sound.cpp", {"sound_rules": True},
     "double m(const Interval& a) { return 0.5 * (a.lo + a.hi); }\n",
     {"no-raw-endpoint-arithmetic"}),
    ("raw-endpoint-allowed-split", "sound.cpp", {"sound_rules": True},
     "double m(const Interval& a) {\n"
     "  // Split point only. cvsafe-lint: allow(no-raw-endpoint-arithmetic)\n"
     "  return 0.5 * (a.lo + a.hi);\n"
     "}\n",
     set()),
    ("raw-endpoint-out-of-scope", "planner.cpp", {"sound_rules": False},
     "double gap(const Interval& p) { return front - p.hi; }\n",
     set()),
    ("endpoint-read-without-op-is-fine", "sound.cpp", {"sound_rules": True},
     "double g(const Interval& z) { return fast_tanh(z.lo); }\n"
     "bool h(const Interval& z) { return z.hi <= threshold; }\n",
     set()),
    ("endpoint-function-arg-after-op-is-fine", "sound.cpp",
     {"sound_rules": True},
     "std::string j(const Interval& iv) {\n"
     "  return prefix + hexd(iv.lo) + hexd(iv.hi);\n"
     "}\n",
     set()),
    ("unrounded-mid", "sound.cpp", {"sound_rules": True},
     "double c(const Interval& span) { return span.mid(); }\n",
     {"no-unrounded-bound-in-verify"}),
    ("unrounded-nextafter", "sound.cpp", {"sound_rules": True},
     "#include <cmath>\n"
     "double u(double x) { return std::nextafter(x, 1e300); }\n",
     {"no-unrounded-bound-in-verify"}),
    ("unrounded-centered", "sound.cpp", {"sound_rules": True},
     "Interval pad(double c, double r) {\n"
     "  return Interval::centered(c, r);\n"
     "}\n",
     {"no-unrounded-bound-in-verify"}),
    ("unrounded-comment-does-not-fire", "sound.cpp", {"sound_rules": True},
     "// one nextafter step outward; see Interval::centered for contrast\n"
     "double v() { return 0.0; }\n",
     set()),
    ("fleet-clean-soa-sweeps", "fleet.hpp", {"fleet_rules": True},
     "#pragma once\n"
     "void step(FleetStackContext& ctx) {\n"
     "  ctx.estimator.update_batch();\n"
     "  ctx.estimator.predict_batch();\n"
     "  ctx.reach.run();  // ReachSweep: SoA propagate_batch inside\n"
     "}\n",
     set()),
    ("fleet-scalar-kalman", "fleet.hpp", {"fleet_rules": True},
     "#pragma once\n"
     "void step(filter::KalmanFilter& kf, const Reading& r) {\n"
     "  kf.update(r);\n"
     "}\n",
     {"no-scalar-stack-in-fleet"}),
    ("fleet-scalar-propagate", "fleet.cpp", {"fleet_rules": True},
     "void sweep(const filter::StateBounds& b, double t) {\n"
     "  g = filter::propagate(b, t, limits_);\n"
     "}\n",
     {"no-scalar-stack-in-fleet"}),
    ("fleet-batch-propagate-is-fine", "fleet.cpp", {"fleet_rules": True},
     "void sweep(const filter::ReachLanes& in) {\n"
     "  filter::propagate_batch(in, limits_, t_, pl_, ph_, vl_, vh_);\n"
     "}\n",
     set()),
    ("fleet-scalar-ladder-allowed-reference", "fleet.hpp",
     {"fleet_rules": True},
     "#pragma once\n"
     "// Reference path. cvsafe-lint: allow(no-scalar-stack-in-fleet)\n"
     "core::DegradationLadder ladder{config};\n",
     set()),
    ("fleet-rule-out-of-scope", "engine.hpp", {"fleet_rules": False},
     "#pragma once\n"
     "filter::KalmanFilter kf{config};\n",
     set()),
    ("fleet-ring-recorder-is-fine", "fleet.hpp", {"fleet_rules": True},
     "#pragma once\n"
     "void arm(const obs::FlightRecorderConfig& flight) {\n"
     "  rings_.push_back(std::make_unique<obs::RingRecorder>(flight));\n"
     "  if (obs::ring_recording(rings_.back().get())) count_ += 1;\n"
     "}\n",
     set()),
    ("fleet-episode-recorder", "fleet.hpp", {"fleet_rules": True},
     "#pragma once\n"
     "void mount(obs::Recorder* rec) { rec_ = rec; }\n",
     {"no-episode-recorder-in-fleet-sweep"}),
    ("fleet-recording-guard", "fleet.cpp", {"fleet_rules": True},
     "void emit() {\n"
     "  if (obs::recording(rec_)) rec_->event(obs::EventKind::kStep);\n"
     "}\n",
     {"no-episode-recorder-in-fleet-sweep"}),
    ("episode-recorder-out-of-fleet", "engine.hpp", {"fleet_rules": False},
     "#pragma once\n"
     "void mount(obs::Recorder* rec) { rec_ = rec; }\n",
     set()),
    ("std-rand-still-fires", "noise.cpp", {},
     "int r() { return std::rand(); }\n",
     {"no-std-rand"}),
    ("pragma-once-still-fires", "header.hpp", {},
     "struct S {};\n",
     {"pragma-once"}),
]


def self_test() -> int:
    import tempfile

    failures = 0
    with tempfile.TemporaryDirectory(prefix="cvsafe_lint_selftest") as tmp:
        base = pathlib.Path(tmp)
        for name, filename, kwargs, source, expected in SELF_TEST_CASES:
            path = base / name / filename
            path.parent.mkdir()
            path.write_text(source, encoding="utf-8")
            got = {f.rule for f in FileLinter(path, in_include_tree=False,
                                              **kwargs).run()}
            if got == expected:
                print(f"  ok   {name}")
            else:
                failures += 1
                print(f"  FAIL {name}: expected {sorted(expected) or '[]'}, "
                      f"got {sorted(got) or '[]'}", file=sys.stderr)
    if failures:
        print(f"cvsafe_lint --self-test: {failures} case(s) failed",
              file=sys.stderr)
        return 1
    print(f"cvsafe_lint --self-test: all {len(SELF_TEST_CASES)} cases pass")
    return 0


def main(argv: list[str]) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--root", default=".",
                        help="repository root (contains include/ and src/)")
    parser.add_argument("--self-test", action="store_true",
                        help="run the linter's embedded rule corpus and exit")
    args = parser.parse_args(argv)

    if args.self_test:
        return self_test()

    root = pathlib.Path(args.root).resolve()
    if not (root / "include").is_dir() or not (root / "src").is_dir():
        print(f"cvsafe_lint: {root} does not look like the repo root",
              file=sys.stderr)
        return 2

    findings = lint_tree(root)
    for finding in findings:
        print(finding.render(root))
    if findings:
        print(f"cvsafe_lint: {len(findings)} finding(s)", file=sys.stderr)
        return 1
    print("cvsafe_lint: clean")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
