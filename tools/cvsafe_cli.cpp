// cvsafe command-line interface.
//
//   cvsafe_cli run      [options]  one episode, optionally with a CSV trace
//   cvsafe_cli batch    [options]  N seed-paired episodes with statistics
//   cvsafe_cli sweep    [options]  disturbance sweep (--kind drop|sensor)
//   cvsafe_cli train    [options]  train + save the NN planners
//   cvsafe_cli certify  [options]  offline safety certificates
//   cvsafe_cli campaign [options]  fault-injection safety-invariant matrix
//   cvsafe_cli attack   [options]  adversarial worst-case fault search
//
// A --config FILE (INI, see include/cvsafe/eval/config_io.hpp) customizes
// geometry, actuation limits, channel and sensor before flag overrides.
//
// Common options:
//   --scenario left-turn|lane-change|intersection|multi  (run/batch,
//                            default left-turn)
//   --cars N                 oncoming platoon size (multi) (default 2)
//   --style cons|aggr        embedded NN planner style   (default cons)
//   --variant pure|basic|ultimate                        (default ultimate)
//   --drop P                 message drop probability    (default 0)
//   --delay D                message delay [s]           (default 0)
//   --lost                   drop every message
//   --delta X                sensor uncertainty          (default 1.0)
//   --faults NAME|FILE       fault-injection plan: a FaultPlan preset
//                            (none, delay-jitter, reorder-duplicate,
//                            corruption, blackout, sensor-freeze) or an
//                            INI plan file; arms the hardened
//                            plausibility gate + degradation ladder
//   --seed N                 first seed                  (default 1)
//   --sims N                 batch size / training size scale
//   --threads N              worker threads (0 = hardware)
//   --engine fleet|lockstep|episode
//                            (batch, left-turn) batch machinery: pooled
//                            fleet engine (default), PR-3 lockstep shards,
//                            or one planner dispatch per episode — all
//                            byte-identical in output
//   --pool N                 (batch) fleet pool capacity  (default 8192)
//   --trace FILE             (run) per-step trace: structured JSONL event
//                            trace when FILE ends in .jsonl, legacy CSV
//                            otherwise; (campaign) structured JSONL trace
//                            of every episode, cell-major seed-minor
//   --metrics FILE           (run/campaign/certify) metrics registry dump:
//                            CSV when FILE ends in .csv, Prometheus text
//                            otherwise
//   --cert FILE              (certify) write the sound branch-and-bound
//                            proof as a machine-checkable JSON certificate
//                            (revalidate with scripts/check_certificate.py)
//   --profile FILE           (run) Chrome trace-event JSON of the hot-path
//                            profiling spans (open in Perfetto)
//   --out DIR|FILE           (train) output directory; (campaign) CSV path
//   --flight-recorder FILE   (batch left-turn fleet engine / campaign /
//                            attack) arm a per-lane flight recorder ring;
//                            triggered episode dumps (min-eta below
//                            threshold, EMERGENCY entry, unsafe-set entry,
//                            rejection burst) append to FILE as JSONL,
//                            byte-identical across thread counts, pool
//                            sizes and engines. attack re-runs each
//                            reported offender with the recorder armed.
//   --telemetry FILE         (batch left-turn fleet engine / campaign)
//                            deterministic fleet telemetry (min-eta
//                            histogram, per-reason rejections, ladder
//                            occupancy, episode residency): CSV when FILE
//                            ends in .csv, Prometheus text otherwise.
//                            Wall-clock per-sweep span accounting goes to
//                            FILE.spans — scheduling-dependent, never
//                            byte-compared.
//
// Campaign options:
//   --preset ci|smoke        campaign matrix preset      (default ci)
//   --sims N                 episodes per cell override
//   --seed N                 campaign base seed override
//
// Attack options (adversarial search, cvsafe::adv):
//   --budget ci|N            "ci" = the fixed CI search budget
//                            (SearchConfig::ci()); a number overrides the
//                            optimizer iteration count (default ci)
//   --scenario NAME          campaign scenario           (default left-turn)
//   --optimizer cma|coord    search strategy             (default cma)
//   --seed N                 search seed (optimizer draw stream)
//   --eval-seed N            episode seed base (paired across candidates)
//   --sims N                 episodes per candidate evaluation
//   --topk N                 offenders to serialize      (default 3)
//   --stealth R              max hardened-gate rejection rate (default 0.25)
//   --metrics FILE           search metrics registry dump (best-eta-per-
//                            iteration gauges, stealth-screen counters)
//   --out DIR                writes DIR/search_trace.csv plus, per offender
//                            rank k, DIR/worst_plan_k.ini (replayable via
//                            `run --faults`) and DIR/offender_k.jsonl
//                            (structured episode traces); without --out the
//                            SearchTrace CSV goes to stdout

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <iostream>
#include <map>
#include <span>
#include <string>
#include <vector>

#include <fstream>

#include "cvsafe/adv/search.hpp"
#include "cvsafe/eval/config_io.hpp"
#include "cvsafe/eval/experiments.hpp"
#include "cvsafe/nn/serialize.hpp"
#include "cvsafe/obs/flight_recorder.hpp"
#include "cvsafe/obs/metrics.hpp"
#include "cvsafe/obs/profile.hpp"
#include "cvsafe/sim/fault_campaign.hpp"
#include "cvsafe/sim/intersection.hpp"
#include "cvsafe/sim/lane_change.hpp"
#include "cvsafe/sim/left_turn.hpp"
#include "cvsafe/sim/multi_vehicle.hpp"
#include "cvsafe/sim/obs_summary.hpp"
#include "cvsafe/sim/trace.hpp"
#include "cvsafe/util/csv.hpp"
#include "cvsafe/util/table.hpp"
#include "cvsafe/planners/training.hpp"
#include "cvsafe/verify/certify.hpp"
#include "cvsafe/verify/sound.hpp"

namespace {

using namespace cvsafe;

struct Args {
  std::string command;
  std::map<std::string, std::string> values;
  std::vector<std::string> flags;

  bool has_flag(const std::string& name) const {
    for (const auto& f : flags) {
      if (f == name) return true;
    }
    return false;
  }
  std::string value(const std::string& name, const std::string& dflt) const {
    const auto it = values.find(name);
    return it == values.end() ? dflt : it->second;
  }
  double number(const std::string& name, double dflt) const {
    const auto it = values.find(name);
    return it == values.end() ? dflt : std::strtod(it->second.c_str(),
                                                   nullptr);
  }
};

Args parse_args(int argc, char** argv) {
  Args args;
  if (argc >= 2) args.command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string token = argv[i];
    if (token.rfind("--", 0) != 0) continue;
    token = token.substr(2);
    // Value options take the next token; boolean flags stand alone.
    if (i + 1 < argc && argv[i + 1][0] != '-') {
      args.values[token] = argv[++i];
    } else {
      args.flags.push_back(token);
    }
  }
  return args;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool write_text_file(const std::string& path, const std::string& text) {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  out << text;
  return true;
}

/// Dumps the registry as Prometheus text (or CSV for .csv paths) and
/// prints the summary line. Shared by `run` and `campaign`.
bool dump_metrics(const obs::MetricsRegistry& reg, const std::string& path) {
  const std::string text =
      ends_with(path, ".csv") ? reg.csv() : reg.prometheus_text();
  if (!write_text_file(path, text)) return false;
  std::printf("metrics    %s\n", path.c_str());
  return true;
}

/// Writes the collector's triggered flight dumps as labeled JSONL and
/// prints the summary line. Shared by `batch` and `attack` (`campaign`
/// streams per-cell labeled dumps through sim::CampaignObs instead).
bool write_flight_dumps(const std::string& path,
                        obs::FlightDumpCollector& dumps,
                        const std::string& scenario = "",
                        const std::string& fault = "") {
  std::ofstream out(path, std::ios::binary);
  if (!out.good()) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return false;
  }
  const std::size_t n = obs::write_flight_dumps_jsonl(
      out, dumps.take_sorted(), scenario, fault);
  std::printf("flight     %s (%zu dumps)\n", path.c_str(), n);
  return true;
}

/// Dumps the wall-clock sweep-span registry as a sibling artifact of the
/// deterministic telemetry file. Kept separate because span counts and
/// durations depend on work-stealing schedules — CI byte-compares the
/// telemetry file but never this one.
bool dump_spans(const sim::SweepSpanSink& spans,
                const std::string& telemetry_path) {
  obs::MetricsRegistry reg;
  sim::collect_sweep_spans(reg, spans.total());
  return dump_metrics(reg, telemetry_path + ".spans");
}

int usage() {
  std::fprintf(
      stderr,
      "usage: cvsafe_cli run|batch|sweep|train|certify|campaign|attack "
      "[options]\n"
      "see the header of tools/cvsafe_cli.cpp for options\n");
  return 2;
}

/// Applies the shared disturbance flags (--drop/--delay/--lost/--delta)
/// to any scenario's loop configuration.
void apply_disturbance(sim::RunConfig& config, const Args& args) {
  const double drop = args.number("drop", 0.0);
  const double delay = args.number("delay", 0.0);
  if (args.has_flag("lost")) {
    config.comm = comm::CommConfig::messages_lost();
  } else if (drop > 0.0 || delay > 0.0) {
    config.comm = comm::CommConfig::delayed(drop, delay > 0.0 ? delay : 0.25);
  }
  if (args.values.count("delta")) {
    config.sensor =
        sensing::SensorConfig::uniform(args.number("delta", 1.0));
  }
  if (args.values.count("faults")) {
    const std::string spec = args.value("faults", "none");
    if (const auto preset = fault::FaultPlan::preset(spec)) {
      config.faults = *preset;
    } else {
      config.faults = fault::FaultPlan::from_file(spec);
    }
    // A faulted run only makes sense with the robustness posture armed.
    config.gate = filter::GateConfig::hardened();
    config.ladder = core::LadderConfig{};
  }
}

eval::SimConfig build_config(const Args& args) {
  // Order: paper defaults -> optional --config file -> flag overrides.
  eval::SimConfig config = eval::SimConfig::paper_defaults();
  if (args.values.count("config")) {
    config = eval::load_sim_config(args.value("config", ""));
  }
  apply_disturbance(config, args);
  return config;
}

planners::PlannerStyle parse_style(const Args& args) {
  return args.value("style", "cons") == "aggr"
             ? planners::PlannerStyle::kAggressive
             : planners::PlannerStyle::kConservative;
}

eval::PlannerVariant parse_variant(const Args& args) {
  const std::string v = args.value("variant", "ultimate");
  if (v == "pure") return eval::PlannerVariant::kPureNn;
  if (v == "basic") return eval::PlannerVariant::kBasic;
  return eval::PlannerVariant::kUltimate;
}

void print_result(const std::string& planner, const std::string& channel,
                  std::uint64_t seed, const sim::RunResult& r) {
  std::printf("planner    %s\n", planner.c_str());
  std::printf("channel    %s\n", channel.c_str());
  std::printf("seed       %llu\n", static_cast<unsigned long long>(seed));
  std::printf("collided   %s\n", r.collided ? "YES" : "no");
  std::printf("reached    %s\n", r.reached ? "yes" : "no");
  if (r.reached) std::printf("t_r        %.3f s\n", r.reach_time);
  std::printf("eta        %.4f\n", r.eta);
  std::printf("emergency  %zu / %zu steps\n", r.emergency_steps, r.steps);
  std::fputs(sim::run_summary_text(r).c_str(), stdout);
}

int print_stats(const std::string& title, const sim::BatchStats& stats) {
  util::Table table(title);
  table.set_header({"episodes", "safe rate", "reach rate", "reaching time",
                    "mean eta", "emergency freq"});
  table.add_row({std::to_string(stats.n),
                 util::Table::percent(stats.safe_rate()),
                 util::Table::percent(stats.reach_rate()),
                 util::Table::num(stats.mean_reach_time) + "s",
                 util::Table::num(stats.mean_eta),
                 util::Table::percent(stats.emergency_frequency())});
  std::cout << table;
  return stats.safe_count == stats.n ? 0 : 1;
}

/// The non-left-turn scenarios behind --scenario; each maps the shared
/// --variant flag onto its own compound/estimator switches.
int run_other_scenario(const std::string& scenario, const Args& args,
                       bool batch) {
  const std::string variant = args.value("variant", "ultimate");
  const auto seed = static_cast<std::uint64_t>(args.number("seed", 1));
  const auto n = static_cast<std::size_t>(args.number("sims", 500));
  const auto threads = static_cast<std::size_t>(args.number("threads", 0));

  if (scenario == "lane-change") {
    sim::LaneChangeSimConfig config;
    apply_disturbance(config, args);
    sim::LaneChangePlannerConfig planner;
    if (variant == "pure") planner.use_compound = false;
    if (variant == "basic") planner.use_info_filter = false;
    const std::string name = "lane-change cruise (" + variant + ")";
    if (batch) {
      return print_stats(
          "batch: " + name + " under " + config.comm.label(),
          sim::run_lane_change_batch(config, planner, n, seed, threads));
    }
    const auto r = sim::run_lane_change_simulation(config, planner, seed);
    print_result(name, config.comm.label(), seed, r);
    return r.collided ? 1 : 0;
  }

  if (scenario == "intersection") {
    sim::IntersectionSimConfig config;
    apply_disturbance(config, args);
    const bool use_compound = variant != "pure";
    const std::string name =
        std::string("intersection cruise (") +
        (use_compound ? "compound" : "pure") + ")";
    if (batch) {
      return print_stats(
          "batch: " + name + " under " + config.comm.label(),
          sim::run_intersection_batch(config, use_compound, n, seed,
                                      threads));
    }
    const auto r =
        sim::run_intersection_simulation(config, use_compound, seed);
    print_result(name, config.comm.label(), seed, r);
    return r.collided ? 1 : 0;
  }

  if (scenario == "multi") {
    eval::SimConfig config = build_config(args);
    sim::MultiVehicleConfig multi;
    multi.num_oncoming =
        static_cast<std::size_t>(args.number("cars", 2));
    sim::MultiAgentSetup setup;
    setup.scenario = config.make_scenario();  // expert kappa_n
    if (variant == "pure") setup.use_compound = false;
    if (variant == "basic") {
      setup.use_info_filter = false;
      setup.use_aggressive = false;
    }
    const std::string name = "multi-vehicle expert (" + variant + ", " +
                             std::to_string(multi.num_oncoming) + " cars)";
    if (batch) {
      return print_stats(
          "batch: " + name + " under " + config.comm.label(),
          sim::run_multi_batch(config, multi, setup, n, seed, threads));
    }
    const auto r =
        sim::run_multi_left_turn_simulation(config, multi, setup, seed);
    print_result(name, config.comm.label(), seed, r);
    return r.collided ? 1 : 0;
  }

  std::fprintf(stderr,
               "unknown --scenario %s "
               "(left-turn|lane-change|intersection|multi)\n",
               scenario.c_str());
  return 2;
}

int cmd_run(const Args& args) {
  const std::string scenario = args.value("scenario", "left-turn");
  if (scenario != "left-turn") {
    return run_other_scenario(scenario, args, /*batch=*/false);
  }
  const eval::SimConfig config = build_config(args);
  auto bp =
      eval::make_nn_blueprint(config, parse_style(args), parse_variant(args));
  // The robustness posture of --faults (hardened gate, armed ladder)
  // lives on the RunConfig; mirror it into the agent, as the campaign
  // does. Defaults are identical, so this is a no-op without --faults.
  bp.config.gate = config.gate;
  bp.config.ladder = config.ladder;
  const auto seed = static_cast<std::uint64_t>(args.number("seed", 1));

  const bool want_trace = args.values.count("trace") > 0;
  const std::string trace_path = args.value("trace", "trace.csv");
  const bool structured = want_trace && ends_with(trace_path, ".jsonl");
  const bool want_profile = args.values.count("profile") > 0;
  if (want_profile) {
    obs::Profiler::instance().clear();
    obs::Profiler::instance().set_enabled(true);
  }

  eval::SimTrace trace;
  obs::Recorder recorder;
  eval::SimResult r;
  if (structured) {
    recorder.set_enabled(true);
    sim::LeftTurnAdapter adapter(config, bp);
    r = sim::run_traced_episode(adapter, seed, recorder);
  } else {
    r = eval::run_left_turn_simulation(config, bp, seed,
                                       want_trace ? &trace : nullptr);
  }
  if (want_profile) obs::Profiler::instance().set_enabled(false);

  std::printf("planner    %s\n", bp.name.c_str());
  std::printf("channel    %s, sensor delta %.2f\n",
              config.comm.label().c_str(), config.sensor.delta_p);
  std::printf("seed       %llu\n", static_cast<unsigned long long>(seed));
  std::printf("collided   %s\n", r.collided ? "YES" : "no");
  std::printf("reached    %s\n", r.reached ? "yes" : "no");
  if (r.reached) std::printf("t_r        %.3f s\n", r.reach_time);
  std::printf("eta        %.4f\n", r.eta);
  std::printf("emergency  %zu / %zu steps\n", r.emergency_steps, r.steps);
  std::fputs(sim::run_summary_text(r).c_str(), stdout);

  if (structured) {
    std::ofstream out(trace_path, std::ios::binary);
    if (!out.good()) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
    obs::EpisodeLabel label;
    label.seed = seed;
    label.scenario = "left-turn";
    obs::write_events_jsonl(out, recorder.events(), label,
                            recorder.dropped());
    std::printf("trace      %s (%zu events)\n", trace_path.c_str(),
                recorder.events().size());
  } else if (want_trace) {
    util::CsvWriter csv(trace_path);
    if (!csv.ok()) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
    csv.header({"t", "ego_p", "ego_v", "a_cmd", "c1_u", "c1_v", "emergency",
                "tau1_lo", "tau1_hi"});
    for (std::size_t i = 0; i < trace.ego.size(); ++i) {
      csv.row({trace.ego[i].t, trace.ego[i].state.p, trace.ego[i].state.v,
               trace.accel_commands[i], trace.c1[i].state.p,
               trace.c1[i].state.v, trace.emergency_flags[i] ? 1.0 : 0.0,
               trace.tau1_lo[i], trace.tau1_hi[i]});
    }
    std::printf("trace      %s\n", trace_path.c_str());
  }

  if (args.values.count("metrics")) {
    obs::MetricsRegistry reg;
    sim::collect_run_metrics(reg, r);
    if (!dump_metrics(reg, args.value("metrics", "run.prom"))) return 1;
  }
  if (want_profile) {
    const std::string path = args.value("profile", "profile.json");
    if (!write_text_file(path,
                         obs::Profiler::instance().chrome_trace_json())) {
      return 1;
    }
    std::printf("profile    %s (%zu spans)\n", path.c_str(),
                obs::Profiler::instance().spans().size());
  }
  return r.collided ? 1 : 0;
}

int cmd_batch(const Args& args) {
  const std::string scenario = args.value("scenario", "left-turn");
  if (scenario != "left-turn") {
    return run_other_scenario(scenario, args, /*batch=*/true);
  }
  const eval::SimConfig config = build_config(args);
  auto bp =
      eval::make_nn_blueprint(config, parse_style(args), parse_variant(args));
  bp.config.gate = config.gate;
  bp.config.ladder = config.ladder;
  const auto n = static_cast<std::size_t>(args.number("sims", 500));
  const auto seed = static_cast<std::uint64_t>(args.number("seed", 1));
  const auto threads = static_cast<std::size_t>(args.number("threads", 0));
  const std::string engine = args.value("engine", "fleet");
  const auto pool = static_cast<std::size_t>(args.number("pool", 8192));
  const bool want_flight = args.values.count("flight-recorder") > 0;
  const bool want_telemetry = args.values.count("telemetry") > 0;
  if ((want_flight || want_telemetry) && engine != "fleet") {
    std::fprintf(stderr,
                 "--flight-recorder/--telemetry require --engine fleet\n");
    return 2;
  }

  eval::BatchStats stats;
  if (engine == "fleet") {
    if (want_flight || want_telemetry) {
      // Observability-armed path: keep the records so the deterministic
      // telemetry fold can walk them in episode order.
      obs::FlightDumpCollector dumps;
      sim::SweepSpanSink spans;
      sim::FleetObsSinks sinks;
      if (want_flight) sinks.dumps = &dumps;
      if (want_telemetry) sinks.spans = &spans;
      sim::FleetConfig fleet;
      fleet.threads = threads;
      fleet.pool_capacity = pool;
      const std::vector<sim::FleetRecord> records =
          sim::run_left_turn_fleet_records(config, bp, n, seed, fleet,
                                           sinks);
      stats = sim::stats_from_records(records);
      if (want_flight &&
          !write_flight_dumps(args.value("flight-recorder", "flight.jsonl"),
                              dumps, "left-turn", config.comm.label())) {
        return 1;
      }
      if (want_telemetry) {
        obs::MetricsRegistry reg;
        sim::collect_fleet_telemetry(
            reg, std::span<const sim::FleetRecord>(records));
        const std::string path = args.value("telemetry", "telemetry.prom");
        if (!dump_metrics(reg, path)) return 1;
        if (!dump_spans(spans, path)) return 1;
      }
    } else {
      stats = eval::run_batch_fleet(config, bp, n, seed, threads, pool);
    }
  } else if (engine == "lockstep") {
    stats = eval::run_batch(config, bp, n, seed, threads);
  } else if (engine == "episode") {
    stats = sim::run_left_turn_batch(config, bp, n, seed, threads,
                                     sim::BatchMode::kPerEpisode);
  } else {
    std::fprintf(stderr, "unknown --engine %s (fleet|lockstep|episode)\n",
                 engine.c_str());
    return 1;
  }
  return print_stats("batch: " + bp.name + " under " + config.comm.label(),
                     stats);
}

int cmd_train(const Args& args) {
  const eval::SimConfig config = build_config(args);
  const auto scenario = config.make_scenario();
  const std::string out_dir = args.value("out", ".");
  planners::TrainingOptions options;
  if (args.values.count("sims")) {
    options.num_samples = static_cast<std::size_t>(args.number("sims", 0));
  }
  for (const auto style : {planners::PlannerStyle::kConservative,
                           planners::PlannerStyle::kAggressive}) {
    const nn::Mlp net =
        planners::train_planner_network(*scenario, style, options);
    const std::string path = out_dir + "/left_turn_" +
                             planners::planner_style_name(style) + ".mlp";
    if (!nn::save_mlp_file(net, path)) {
      std::fprintf(stderr, "failed to save %s\n", path.c_str());
      return 1;
    }
    std::printf("trained %s planner (%zu samples) -> %s\n",
                planners::planner_style_name(style), options.num_samples,
                path.c_str());
  }
  return 0;
}

int cmd_sweep(const Args& args) {
  // cvsafe_cli sweep --kind drop|sensor --points N --sims M
  const std::string kind = args.value("kind", "drop");
  const auto setting = kind == "sensor" ? eval::CommSetting::kLost
                                        : eval::CommSetting::kDelayed;
  const auto grid = kind == "sensor" ? eval::sensor_delta_grid()
                                     : eval::drop_prob_grid();
  const auto points =
      std::min<std::size_t>(grid.size(),
                            static_cast<std::size_t>(
                                args.number("points", 10)));
  const auto sims = static_cast<std::size_t>(args.number("sims", 200));
  const auto threads = static_cast<std::size_t>(args.number("threads", 0));
  const eval::SimConfig base = build_config(args);
  const auto style = parse_style(args);

  util::Table table("sweep: " + kind + " (" +
                    planners::planner_style_name(style) + " NN, " +
                    std::to_string(sims) + " sims/point)");
  table.set_header({kind == "sensor" ? "delta" : "p_drop", "pure t_r",
                    "ultimate t_r", "ultimate emergency"});
  const std::size_t stride = grid.size() / points;
  for (std::size_t gi = 0; gi < grid.size(); gi += std::max<std::size_t>(
                                                 1, stride)) {
    const eval::SimConfig cfg = eval::apply_setting(base, setting, grid[gi]);
    const auto pure = eval::run_batch(
        cfg, eval::make_nn_blueprint(cfg, style,
                                     eval::PlannerVariant::kPureNn),
        sims, 1, threads);
    const auto ult = eval::run_batch(
        cfg, eval::make_nn_blueprint(cfg, style,
                                     eval::PlannerVariant::kUltimate),
        sims, 1, threads);
    table.add_row({util::Table::num(grid[gi], 2),
                   util::Table::num(pure.mean_reach_time) + "s",
                   util::Table::num(ult.mean_reach_time) + "s",
                   util::Table::percent(ult.emergency_frequency())});
  }
  std::cout << table;
  return 0;
}

int cmd_campaign(const Args& args) {
  const std::string preset = args.value("preset", "ci");
  sim::CampaignConfig config;
  if (preset == "ci") {
    config = sim::CampaignConfig::ci();
  } else if (preset == "smoke") {
    config = sim::CampaignConfig::smoke();
  } else {
    std::fprintf(stderr, "unknown --preset %s (ci|smoke)\n", preset.c_str());
    return 2;
  }
  if (args.values.count("sims")) {
    config.episodes_per_cell =
        static_cast<std::size_t>(args.number("sims", 8));
  }
  if (args.values.count("seed")) {
    config.base_seed = static_cast<std::uint64_t>(args.number("seed", 2026));
  }
  config.threads = static_cast<std::size_t>(args.number("threads", 0));

  std::ofstream trace_out;
  const bool want_trace = args.values.count("trace") > 0;
  const std::string trace_path = args.value("trace", "campaign.jsonl");
  if (want_trace) {
    trace_out.open(trace_path, std::ios::binary);
    if (!trace_out.good()) {
      std::fprintf(stderr, "cannot write %s\n", trace_path.c_str());
      return 1;
    }
  }

  const bool want_flight = args.values.count("flight-recorder") > 0;
  const bool want_telemetry = args.values.count("telemetry") > 0;
  std::ofstream flight_out;
  const std::string flight_path =
      args.value("flight-recorder", "flight.jsonl");
  if (want_flight) {
    flight_out.open(flight_path, std::ios::binary);
    if (!flight_out.good()) {
      std::fprintf(stderr, "cannot write %s\n", flight_path.c_str());
      return 1;
    }
  }
  obs::MetricsRegistry telemetry;
  sim::SweepSpanSink spans;
  sim::CampaignObs observe;
  if (want_flight) observe.flight_os = &flight_out;
  if (want_telemetry) {
    observe.metrics = &telemetry;
    observe.spans = &spans;
  }

  const sim::CampaignResult result = sim::run_fault_campaign(
      config, want_trace ? &trace_out : nullptr,
      want_flight || want_telemetry ? &observe : nullptr);
  const std::string csv = sim::campaign_csv(result);
  if (want_trace) {
    trace_out.close();
    std::printf("trace      %s\n", trace_path.c_str());
  }
  if (want_flight) {
    flight_out.close();
    std::printf("flight     %s\n", flight_path.c_str());
  }
  if (want_telemetry) {
    const std::string path = args.value("telemetry", "campaign.prom");
    if (!dump_metrics(telemetry, path)) return 1;
    if (!dump_spans(spans, path)) return 1;
  }
  if (args.values.count("metrics")) {
    obs::MetricsRegistry reg;
    sim::collect_campaign_metrics(reg, result);
    if (!dump_metrics(reg, args.value("metrics", "campaign.prom"))) {
      return 1;
    }
  }

  if (args.values.count("out")) {
    const std::string path = args.value("out", "campaign.csv");
    std::ofstream out(path, std::ios::binary);
    if (!out.good()) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    out << csv;
    std::printf("campaign   %s (%zu cells)\n", path.c_str(),
                result.cells.size());
  } else {
    std::fputs(csv.c_str(), stdout);
  }

  util::Table table("fault campaign (" + preset + ", " +
                    std::to_string(config.episodes_per_cell) +
                    " episodes/cell)");
  table.set_header({"fault", "scenario", "collisions", "emergency",
                    "degraded steps", "rejected"});
  for (const auto& cell : result.cells) {
    const std::size_t degraded = cell.ladder_steps[1] +
                                 cell.ladder_steps[2] +
                                 cell.ladder_steps[3];
    table.add_row({cell.fault, cell.scenario,
                   std::to_string(cell.collisions),
                   std::to_string(cell.emergency_steps),
                   std::to_string(degraded),
                   std::to_string(cell.messages_rejected)});
  }
  std::cout << table;

  if (!result.invariant_ok()) {
    std::fprintf(stderr,
                 "SAFETY INVARIANT VIOLATED: %zu unsafe-set entries\n",
                 result.violations());
    return 1;
  }
  std::printf("invariant  eta(kappa_c) >= 0 held on every episode\n");
  return 0;
}

int cmd_attack(const Args& args) {
  adv::SearchConfig config = adv::SearchConfig::ci();
  const std::string budget = args.value("budget", "ci");
  if (budget != "ci") {
    const auto iterations = static_cast<std::size_t>(
        std::strtoul(budget.c_str(), nullptr, 10));
    if (iterations == 0) {
      std::fprintf(stderr, "--budget must be ci or a positive iteration "
                           "count, got %s\n",
                   budget.c_str());
      return 2;
    }
    config.iterations = iterations;
  }
  std::string scenario = args.value("scenario", config.scenario);
  if (scenario == "multi") scenario = "multi-vehicle";
  config.scenario = scenario;
  config.optimizer = args.value("optimizer", config.optimizer);
  if (args.values.count("seed")) {
    config.search_seed = static_cast<std::uint64_t>(args.number("seed", 7));
  }
  if (args.values.count("eval-seed")) {
    config.eval_seed =
        static_cast<std::uint64_t>(args.number("eval-seed", 2026));
  }
  if (args.values.count("sims")) {
    config.episodes_per_eval = static_cast<std::size_t>(args.number("sims", 4));
  }
  if (args.values.count("topk")) {
    config.top_k = static_cast<std::size_t>(args.number("topk", 3));
  }
  if (args.values.count("stealth")) {
    config.stealth_threshold = args.number("stealth", 0.25);
  }
  config.threads = static_cast<std::size_t>(args.number("threads", 0));

  const adv::SearchResult result = adv::run_search(config);
  const std::string csv = adv::search_csv(result);

  if (args.values.count("metrics")) {
    obs::MetricsRegistry reg;
    adv::collect_search_metrics(reg, result);
    if (!dump_metrics(reg, args.value("metrics", "attack.prom"))) return 1;
  }
  if (args.values.count("flight-recorder")) {
    // Re-run every reported offender with the flight recorder armed so
    // the causal event rings of the worst discovered faults land next to
    // the search trace.
    const std::string path = args.value("flight-recorder", "flight.jsonl");
    std::ofstream out(path, std::ios::binary);
    if (!out.good()) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return 1;
    }
    std::size_t total = 0;
    for (std::size_t rank = 0; rank < result.offenders.size(); ++rank) {
      total += adv::dump_offender_flights(result, rank, out);
    }
    std::printf("flight     %s (%zu dumps over %zu offenders)\n",
                path.c_str(), total, result.offenders.size());
  }

  if (args.values.count("out")) {
    const std::filesystem::path dir = args.value("out", "attack");
    std::error_code ec;
    std::filesystem::create_directories(dir, ec);
    if (ec) {
      std::fprintf(stderr, "cannot create %s: %s\n", dir.string().c_str(),
                   ec.message().c_str());
      return 1;
    }
    const std::string trace_path = (dir / "search_trace.csv").string();
    if (!write_text_file(trace_path, csv)) return 1;
    std::printf("trace      %s (%zu candidates)\n", trace_path.c_str(),
                result.trace.candidates.size());
    for (std::size_t rank = 0; rank < result.offenders.size(); ++rank) {
      const adv::CandidateRecord& rec =
          result.trace.candidates[result.offenders[rank]];
      const std::string plan_path =
          (dir / ("worst_plan_" + std::to_string(rank) + ".ini")).string();
      rec.plan.to_file(plan_path);
      const std::string jsonl_path =
          (dir / ("offender_" + std::to_string(rank) + ".jsonl")).string();
      std::ofstream jsonl(jsonl_path, std::ios::binary);
      if (!jsonl.good()) {
        std::fprintf(stderr, "cannot write %s\n", jsonl_path.c_str());
        return 1;
      }
      adv::trace_offender(result, rank, jsonl);
      std::printf("offender   #%zu %s + %s\n", rank, plan_path.c_str(),
                  jsonl_path.c_str());
    }
  } else {
    std::fputs(csv.c_str(), stdout);
  }

  util::Table table("adversarial search (" + config.optimizer + ", " +
                    config.scenario + ", " +
                    std::to_string(config.iterations) + " iterations)");
  table.set_header({"rank", "iter", "cand", "min eta", "reject rate",
                    "collisions"});
  for (std::size_t rank = 0; rank < result.offenders.size(); ++rank) {
    const adv::CandidateRecord& rec =
        result.trace.candidates[result.offenders[rank]];
    char min_eta[32], reject[32];
    std::snprintf(min_eta, sizeof min_eta, "%.4f", rec.cell.min_eta);
    std::snprintf(reject, sizeof reject, "%.3f", rec.cell.rejection_rate());
    table.add_row({std::to_string(rank), std::to_string(rec.iteration),
                   std::to_string(rec.index), min_eta, reject,
                   std::to_string(rec.cell.collisions)});
  }
  std::cout << table;

  if (!result.invariant_ok()) {
    std::fprintf(stderr,
                 "SAFETY INVARIANT VIOLATED: %zu unsafe-set entries\n",
                 result.violations());
    return 1;
  }
  const adv::CandidateRecord* worst = result.worst();
  if (worst == nullptr) {
    std::fprintf(stderr,
                 "no admissible candidate: every plan tripped the stealth "
                 "screen\n");
    return 1;
  }
  std::printf("worst      min_eta %.17g (iteration %zu, candidate %zu)\n",
              worst->cell.min_eta, worst->iteration, worst->index);
  std::printf("invariant  eta(kappa_c) >= 0 held on every candidate\n");
  return 0;
}

int cmd_certify(const Args& args) {
  const eval::SimConfig config = build_config(args);
  const auto scenario = config.make_scenario();
  util::Rng rng(static_cast<std::uint64_t>(args.number("seed", 20230417)));

  int failures = 0;
  const auto report = [&failures](const verify::Certificate& cert) {
    std::printf("%-72s %8zu checks  %s\n", cert.property.c_str(),
                cert.checked, cert.holds() ? "CERTIFIED" : "FAILED");
    if (!cert.holds()) ++failures;
  };
  report(verify::certify_emergency_eq4(*scenario));
  report(verify::certify_resolvability_invariance(*scenario, 20000, rng));
  report(verify::certify_window_soundness(*scenario, 200, rng));
  report(verify::certify_filter_monotonicity(
      *scenario, config.sensor, config.comm, 150, rng));

  // Sound (proof-producing) pass: interval branch-and-bound over the
  // slack band and the trained planner network, with a machine-checkable
  // artifact (--cert FILE; revalidate with scripts/check_certificate.py).
  obs::MetricsRegistry metrics;
  verify::SoundBnbOptions sound_options;
  sound_options.threads = static_cast<std::size_t>(args.number("threads", 0));
  sound_options.metrics = &metrics;
  const auto style = args.value("style", "cons") == "aggr"
                         ? planners::PlannerStyle::kAggressive
                         : planners::PlannerStyle::kConservative;
  const auto net = planners::cached_planner_network(*scenario, style);
  const planners::InputEncoding encoding;
  const verify::SoundCertificate sound =
      verify::certify_sound(*scenario, *net, encoding, sound_options);
  std::printf(
      "Eq. 4 sound (band, directed rounding): %zu margin + %zu lemma "
      "leaves%52s\n",
      sound.eq4.margin_leaves, sound.eq4.lemma_leaves,
      sound.eq4.proved ? "CERTIFIED" : "FAILED");
  std::printf(
      "kappa_n output bounds (interval B&B): hull [%.6g, %.6g] over "
      "%zu leaves%17s\n",
      sound.nn.hull.lo, sound.nn.hull.hi, sound.nn.leaves.size(),
      sound.nn.proved ? "CERTIFIED" : "FAILED");
  if (!sound.proved()) ++failures;

  const std::string cert_path = args.value("cert", "");
  if (!cert_path.empty()) {
    const std::string json = verify::certificate_json(
        sound, *scenario, *net, encoding, sound_options);
    if (!write_text_file(cert_path, json)) return 1;
    std::printf("certificate %s (net %s, config %s)\n", cert_path.c_str(),
                sound.net_hash.c_str(), sound.config_hash.c_str());
  }
  const std::string metrics_path = args.value("metrics", "");
  if (!metrics_path.empty() && !dump_metrics(metrics, metrics_path)) return 1;
  return failures == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  const Args args = parse_args(argc, argv);
  try {
    if (args.command == "run") return cmd_run(args);
    if (args.command == "batch") return cmd_batch(args);
    if (args.command == "train") return cmd_train(args);
    if (args.command == "sweep") return cmd_sweep(args);
    if (args.command == "certify") return cmd_certify(args);
    if (args.command == "campaign") return cmd_campaign(args);
    if (args.command == "attack") return cmd_attack(args);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "cvsafe_cli: %s\n", e.what());
    return 1;
  }
  return usage();
}
