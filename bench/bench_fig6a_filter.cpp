// Regenerates Fig. 6a: effectiveness of the information filter.
// Simulates trajectories of the oncoming vehicle, measures them with the
// noisy sensor, runs the Kalman filter (with and without delayed-message
// rollback) and reports the position/velocity RMSE before vs after
// filtering over N trajectories.
//
// Paper reference: RMSE of C1's position (resp. velocity) reduces by 69%
// (resp. 76%) after the filter, over 200 sampled trajectories.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "cvsafe/comm/channel.hpp"
#include "cvsafe/filter/kalman.hpp"
#include "cvsafe/util/csv.hpp"
#include "cvsafe/util/stats.hpp"
#include "cvsafe/util/table.hpp"
#include "cvsafe/vehicle/accel_profile.hpp"
#include "cvsafe/vehicle/dynamics.hpp"

using namespace cvsafe;

namespace {

struct TrajectoryRmse {
  double measured_p = 0.0, measured_v = 0.0;
  double filtered_p = 0.0, filtered_v = 0.0;
  double rollback_p = 0.0, rollback_v = 0.0;
};

TrajectoryRmse run_trajectory(std::uint64_t seed, double duration,
                              util::CsvWriter* csv) {
  const vehicle::VehicleLimits limits{2.0, 15.0, -3.0, 3.0};
  const double dt_c = 0.05;
  const double delta = 2.0;  // pronounced noise, as in the figure
  const sensing::SensorConfig sensor_cfg =
      sensing::SensorConfig::uniform(delta, 0.1);

  util::Rng rng(seed);
  vehicle::DoubleIntegrator dyn(limits);
  vehicle::VehicleState c1{-55.0, rng.uniform(6.0, 12.0)};
  const auto steps = static_cast<std::size_t>(duration / dt_c);
  const auto profile =
      vehicle::AccelProfile::random(steps, dt_c, c1.v, limits, {}, rng);

  sensing::Sensor sensor(sensor_cfg);
  filter::KalmanFilter kf(
      {sensor_cfg.period, delta, delta, delta, 3.0, 64});
  filter::KalmanFilter kf_rollback(
      {sensor_cfg.period, delta, delta, delta, 3.0, 64});
  comm::Channel channel(comm::CommConfig::delayed(/*drop=*/0.5,
                                                  /*delay=*/0.25));

  std::vector<double> true_p, true_v, meas_p, meas_v, filt_p, filt_v,
      roll_p, roll_v;
  for (std::size_t step = 0; step < steps; ++step) {
    const double t = static_cast<double>(step) * dt_c;
    const double a1 = profile.at(step);
    const vehicle::VehicleSnapshot snap{t, c1, a1};

    channel.offer(comm::Message{1, snap}, rng);
    for (const auto& msg : channel.collect(t)) {
      kf_rollback.correct_with_message(msg.stamp(), msg.data.state.p,
                                       msg.data.state.v, msg.data.a);
    }
    if (const auto r = sensor.sense(snap, rng)) {
      kf.update(*r);
      kf_rollback.update(*r);
      true_p.push_back(c1.p);
      true_v.push_back(c1.v);
      meas_p.push_back(r->p);
      meas_v.push_back(r->v);
      filt_p.push_back(kf.state_at(t).x);
      filt_v.push_back(kf.state_at(t).y);
      roll_p.push_back(kf_rollback.state_at(t).x);
      roll_v.push_back(kf_rollback.state_at(t).y);
      if (csv != nullptr) {
        csv->row({t, c1.v, r->v, kf.state_at(t).y, kf_rollback.state_at(t).y,
                  c1.p, r->p, kf.state_at(t).x, kf_rollback.state_at(t).x});
      }
    }
    c1 = dyn.step(c1, a1, dt_c);
  }

  TrajectoryRmse out;
  out.measured_p = util::rmse(meas_p, true_p);
  out.measured_v = util::rmse(meas_v, true_v);
  out.filtered_p = util::rmse(filt_p, true_p);
  out.filtered_v = util::rmse(filt_v, true_v);
  out.rollback_p = util::rmse(roll_p, true_p);
  out.rollback_v = util::rmse(roll_v, true_v);
  return out;
}

}  // namespace

int main() {
  const std::size_t trajectories = bench::sims_per_cell(200);

  // Example series (Fig. 6a style) from the first trajectory.
  util::CsvWriter csv("fig6a_filter.csv");
  csv.header({"t", "true_v", "measured_v", "filtered_v",
              "filtered_rollback_v", "true_p", "measured_p", "filtered_p",
              "filtered_rollback_p"});
  run_trajectory(1, 15.0, &csv);

  util::RunningStats mp, mv, fp, fv, rp, rv;
  for (std::uint64_t seed = 1; seed <= trajectories; ++seed) {
    const auto r = run_trajectory(seed, 15.0, nullptr);
    mp.add(r.measured_p);
    mv.add(r.measured_v);
    fp.add(r.filtered_p);
    fv.add(r.filtered_v);
    rp.add(r.rollback_p);
    rv.add(r.rollback_v);
  }

  util::Table table("Fig. 6a: sensor RMSE before/after the filter (" +
                    std::to_string(trajectories) + " trajectories)");
  table.set_header({"quantity", "measured", "Kalman", "Kalman+msg rollback",
                    "reduction (Kalman)"});
  auto reduction = [](double before, double after) {
    return util::Table::percent((before - after) / before);
  };
  table.add_row({"position RMSE [m]", util::Table::num(mp.mean()),
                 util::Table::num(fp.mean()), util::Table::num(rp.mean()),
                 reduction(mp.mean(), fp.mean())});
  table.add_row({"velocity RMSE [m/s]", util::Table::num(mv.mean()),
                 util::Table::num(fv.mean()), util::Table::num(rv.mean()),
                 reduction(mv.mean(), fv.mean())});
  std::cout << table;
  std::printf(
      "(paper: 69%% position / 76%% velocity RMSE reduction; example "
      "series in fig6a_filter.csv)\n");
  return 0;
}
