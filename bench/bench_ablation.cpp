// Design-choice ablation (DESIGN.md): the two efficiency techniques of
// Section III — information filter and aggressive unsafe set — toggled
// independently on top of the basic compound planner, under the cleanest
// and the harshest communication settings.
//
// Expected shape: each technique alone improves over basic; combined
// (= ultimate) is best; safety is 100% in every configuration because the
// monitor + emergency planner are always active.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "cvsafe/util/table.hpp"

using namespace cvsafe;

int main() {
  const std::size_t sims = bench::sims_per_cell(1000);
  eval::SimConfig base = eval::SimConfig::paper_defaults();

  struct Variant {
    const char* name;
    bool info_filter;
    bool aggressive;
  };
  const Variant variants[] = {
      {"basic (neither)", false, false},
      {"+ information filter", true, false},
      {"+ aggressive unsafe set", false, true},
      {"ultimate (both)", true, true},
  };

  struct Setting {
    const char* name;
    eval::CommSetting setting;
    double sweep_value;
  };
  const Setting settings[] = {
      {"no disturbance", eval::CommSetting::kNoDisturbance, 0.0},
      {"messages lost (delta=3)", eval::CommSetting::kLost, 3.0},
  };

  util::Table table("Ablation: efficiency techniques of Section III "
                    "(conservative NN, " +
                    std::to_string(sims) + " sims/cell)");
  table.set_header({"setting", "compound variant", "reaching time",
                    "safe rate", "eta value", "emergency freq"});

  bool first = true;
  for (const auto& s : settings) {
    if (!first) table.add_separator();
    first = false;
    const eval::SimConfig cfg =
        eval::apply_setting(base, s.setting, s.sweep_value);
    for (const auto& v : variants) {
      eval::AgentBlueprint bp = eval::make_nn_blueprint(
          cfg, planners::PlannerStyle::kConservative,
          eval::PlannerVariant::kBasic);
      bp.config.use_info_filter = v.info_filter;
      bp.config.use_aggressive = v.aggressive;
      bp.name = v.name;
      const auto stats = eval::run_batch(cfg, bp, sims, 1, bench::threads());
      table.add_row({s.name, v.name,
                     util::Table::num(stats.mean_reach_time) + "s",
                     util::Table::percent(stats.safe_rate()),
                     util::Table::num(stats.mean_eta),
                     util::Table::percent(stats.emergency_frequency())});
    }
  }
  std::cout << table;
  return 0;
}
