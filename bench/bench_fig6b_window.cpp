// Regenerates Fig. 6b: conservative (Eq. 7) vs aggressive (Eq. 8)
// estimation of the oncoming vehicle's passing time window, compared with
// the real passing time along sampled trajectories.
//
// Expected shape: the aggressive window is much more compact than the
// conservative one while still (almost always) containing the real
// passing interval; the conservative window always contains it.

#include <cstdio>
#include <iostream>
#include <vector>

#include "bench_common.hpp"
#include "cvsafe/util/csv.hpp"
#include "cvsafe/util/stats.hpp"
#include "cvsafe/util/table.hpp"
#include "cvsafe/vehicle/accel_profile.hpp"
#include "cvsafe/vehicle/dynamics.hpp"

using namespace cvsafe;

namespace {

struct WindowStudy {
  util::RunningStats cons_width;
  util::RunningStats aggr_width;
  std::size_t checks = 0;
  std::size_t cons_sound = 0;  // real interval inside conservative window
  std::size_t aggr_sound = 0;  // real interval inside aggressive window
};

void run_trajectory(std::uint64_t seed,
                    const scenario::LeftTurnScenario& scn, WindowStudy& study,
                    util::CsvWriter* csv) {
  const auto& limits = scn.oncoming_limits();
  const double dt_c = scn.control_period();
  util::Rng rng(seed);
  vehicle::DoubleIntegrator dyn(limits);
  vehicle::VehicleState c1{-55.0 - rng.uniform(0.0, 5.0),
                           rng.uniform(6.0, 12.0)};
  const auto steps = static_cast<std::size_t>(20.0 / dt_c);
  const auto profile =
      vehicle::AccelProfile::random(steps, dt_c, c1.v, limits, {}, rng);

  // Roll out the exact trajectory first to know the real passing times.
  vehicle::Trajectory traj;
  {
    vehicle::VehicleState s = c1;
    for (std::size_t step = 0; step < steps; ++step) {
      const double t = static_cast<double>(step) * dt_c;
      traj.push(vehicle::VehicleSnapshot{t, s, profile.at(step)});
      s = dyn.step(s, profile.at(step), dt_c);
    }
  }
  const double real_entry =
      traj.first_time_at_position(scn.geometry().c1_front);
  const double real_exit =
      traj.first_time_at_position(scn.geometry().c1_back);
  if (real_entry < 0.0 || real_exit < 0.0) return;  // never reached the zone

  for (std::size_t step = 0; step < steps; ++step) {
    const auto& snap = traj[step];
    if (snap.t >= real_entry) break;  // estimate only while approaching

    filter::StateEstimate est;
    est.t = snap.t;
    est.p = util::Interval::point(snap.state.p);
    est.v = util::Interval::point(snap.state.v);
    est.p_hat = snap.state.p;
    est.v_hat = snap.state.v;
    est.a_hat = snap.a;
    est.valid = true;

    const util::Interval cons = scn.c1_window_conservative(est);
    const util::Interval aggr =
        scn.c1_window_aggressive(est, scenario::AggressiveBuffers{});
    if (cons.empty()) continue;

    study.cons_width.add(cons.width());
    study.aggr_width.add(aggr.empty() ? 0.0 : aggr.width());
    ++study.checks;
    // 1 ms tolerance absorbs the linear interpolation of the sampled
    // trajectory used to measure the "real" passing times.
    const util::Interval real{real_entry, real_exit};
    if (cons.inflated(1e-3).contains(real)) ++study.cons_sound;
    if (!aggr.empty() && aggr.inflated(1e-3).contains(real))
      ++study.aggr_sound;

    if (csv != nullptr) {
      csv->row({snap.t, cons.lo, cons.hi, aggr.empty() ? -1.0 : aggr.lo,
                aggr.empty() ? -1.0 : aggr.hi, real_entry, real_exit});
    }
  }
}

}  // namespace

int main() {
  const std::size_t trajectories = bench::sims_per_cell(200);
  const eval::SimConfig config = eval::SimConfig::paper_defaults();
  const auto scn = config.make_scenario();

  util::CsvWriter csv("fig6b_window.csv");
  csv.header({"t", "cons_lo", "cons_hi", "aggr_lo", "aggr_hi", "real_entry",
              "real_exit"});

  WindowStudy study;
  run_trajectory(1, *scn, study, &csv);
  for (std::uint64_t seed = 2; seed <= trajectories; ++seed) {
    run_trajectory(seed, *scn, study, nullptr);
  }

  util::Table table("Fig. 6b: passing-time-window estimation (" +
                    std::to_string(trajectories) + " trajectories)");
  table.set_header({"estimator", "mean width [s]",
                    "contains real passing interval"});
  const auto dn = static_cast<double>(study.checks);
  table.add_row({"conservative (Eq. 7)",
                 util::Table::num(study.cons_width.mean()),
                 util::Table::percent(
                     static_cast<double>(study.cons_sound) / dn)});
  table.add_row({"aggressive (Eq. 8)",
                 util::Table::num(study.aggr_width.mean()),
                 util::Table::percent(
                     static_cast<double>(study.aggr_sound) / dn)});
  std::cout << table;
  std::printf(
      "(the aggressive window trades a small soundness loss for a much "
      "tighter estimate;\n example series in fig6b_window.csv)\n");
  return 0;
}
