// Extension experiment: the two-zone intersection crossing (the paper's
// motivating intersection-management problem) across communication
// settings — raw reckless planner vs compound planner.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "cvsafe/eval/intersection_sim.hpp"
#include "cvsafe/util/table.hpp"

using namespace cvsafe;

int main() {
  const std::size_t sims = bench::sims_per_cell(800);

  struct Setting {
    const char* name;
    comm::CommConfig comm;
    double delta;
  };
  const Setting settings[] = {
      {"no disturbance", comm::CommConfig::no_disturbance(), 1.0},
      {"messages delayed", comm::CommConfig::delayed(0.5, 0.25), 1.0},
      {"messages lost", comm::CommConfig::messages_lost(), 2.5},
  };

  util::Table table("Intersection crossing: raw vs compound (" +
                    std::to_string(sims) + " sims/cell)");
  table.set_header({"setting", "planner", "collisions", "reaching time",
                    "eta value", "emergency freq"});
  bool first = true;
  for (const auto& s : settings) {
    if (!first) table.add_separator();
    first = false;
    eval::IntersectionSimConfig cfg;
    cfg.comm = s.comm;
    cfg.sensor = sensing::SensorConfig::uniform(s.delta);
    const auto raw =
        eval::run_intersection_batch(cfg, false, sims, 1, bench::threads());
    const auto wrapped =
        eval::run_intersection_batch(cfg, true, sims, 1, bench::threads());
    table.add_row({s.name, "raw cruise",
                   util::Table::percent(1.0 - raw.safe_rate()),
                   util::Table::num(raw.mean_reach_time) + "s",
                   util::Table::num(raw.mean_eta), "-"});
    table.add_row({s.name, "compound",
                   util::Table::percent(1.0 - wrapped.safe_rate()),
                   util::Table::num(wrapped.mean_reach_time) + "s",
                   util::Table::num(wrapped.mean_eta),
                   util::Table::percent(wrapped.emergency_frequency())});
  }
  std::cout << table;
  std::printf(
      "(collision = co-presence with cross traffic in either conflict "
      "square)\n");
  return 0;
}
