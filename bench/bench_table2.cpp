// Regenerates Table II of the paper: the aggressive pure NN planner
// kappa_n,aggr vs its basic and ultimate compound planners.
//
// Expected shape (paper): pure NN is fastest among its ~60%-safe episodes
// but collides in ~40% of them; both compound planners are 100% safe with
// the ultimate variant slightly faster than the basic one; emergency
// frequency around 20-30%.

#include "bench_common.hpp"

int main() {
  const std::size_t sims = bench::sims_per_cell(2000);
  bench::run_planner_table(
      cvsafe::planners::PlannerStyle::kAggressive,
      "Table II: aggressive NN planner vs its compound planners", sims);
  return 0;
}
