// Extension experiment: scalability of the framework over the paper's
// general n-vehicle system model — the ego turns left across a platoon of
// 1..6 oncoming vehicles. The conflict-zone occupancy is a union of
// passing windows; safety must stay at 100% while efficiency degrades
// gracefully (longer platoon -> later gap -> later turn).

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "cvsafe/eval/multi_simulation.hpp"
#include "cvsafe/util/csv.hpp"
#include "cvsafe/util/table.hpp"

using namespace cvsafe;

int main() {
  const std::size_t sims = bench::sims_per_cell(300);

  eval::SimConfig config = eval::SimConfig::paper_defaults();
  config.horizon = 60.0;
  config.comm = comm::CommConfig::delayed(0.3, 0.25);

  eval::MultiAgentSetup setup;
  setup.scenario = config.make_scenario();
  setup.net = planners::cached_planner_network(
      *setup.scenario, planners::PlannerStyle::kAggressive);

  util::Table table("Multi-vehicle scalability (aggressive NN, ultimate "
                    "compound, " +
                    std::to_string(sims) + " sims/point)");
  table.set_header({"oncoming vehicles", "safe rate", "reach rate",
                    "reaching time", "eta value", "emergency freq"});
  util::CsvWriter csv("multi_vehicle.csv");
  csv.header({"n", "safe_rate", "reach_rate", "reach_time", "eta",
              "emergency_freq"});

  for (std::size_t n = 1; n <= 6; ++n) {
    eval::MultiVehicleConfig multi;
    multi.num_oncoming = n;
    const auto stats = eval::run_multi_batch(config, multi, setup, sims, 1,
                                             bench::threads());
    table.add_row({std::to_string(n),
                   util::Table::percent(stats.safe_rate()),
                   util::Table::percent(stats.reach_rate()),
                   util::Table::num(stats.mean_reach_time) + "s",
                   util::Table::num(stats.mean_eta),
                   util::Table::percent(stats.emergency_frequency())});
    csv.row({static_cast<double>(n), stats.safe_rate(), stats.reach_rate(),
             stats.mean_reach_time, stats.mean_eta,
             stats.emergency_frequency()});
  }
  std::cout << table;
  std::printf("(series written to multi_vehicle.csv)\n");
  return 0;
}
