// Extension experiment: the framework's safety/efficiency story on the
// SECOND scenario instantiation (lane-change / merge, the motivating
// example of Section II-A) — raw reckless planner vs compound planner
// across communication settings. Demonstrates quantitatively that the
// guarantee is scenario-agnostic.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "cvsafe/eval/lane_change_sim.hpp"
#include "cvsafe/util/table.hpp"

using namespace cvsafe;

int main() {
  const std::size_t sims = bench::sims_per_cell(1000);
  eval::LaneChangeSimConfig base;

  struct Setting {
    const char* name;
    comm::CommConfig comm;
    double delta;
  };
  const Setting settings[] = {
      {"no disturbance", comm::CommConfig::no_disturbance(), 0.8},
      {"messages delayed", comm::CommConfig::delayed(0.5, 0.25), 0.8},
      {"messages lost", comm::CommConfig::messages_lost(), 2.0},
  };

  util::Table table("Lane change: reckless merge planner vs compound "
                    "planner (" +
                    std::to_string(sims) + " sims/cell)");
  table.set_header({"setting", "planner", "violations", "reaching time",
                    "eta value", "emergency freq"});

  bool first = true;
  for (const auto& s : settings) {
    if (!first) table.add_separator();
    first = false;
    eval::LaneChangeSimConfig cfg = base;
    cfg.comm = s.comm;
    cfg.sensor = sensing::SensorConfig::uniform(s.delta);

    eval::LaneChangePlannerConfig raw;
    raw.use_compound = false;
    eval::LaneChangePlannerConfig compound;
    compound.use_compound = true;

    const auto raw_stats =
        eval::run_lane_change_batch(cfg, raw, sims, 1, bench::threads());
    const auto cmp_stats = eval::run_lane_change_batch(cfg, compound, sims,
                                                       1, bench::threads());
    table.add_row({s.name, "raw cruise",
                   util::Table::percent(1.0 - raw_stats.safe_rate()),
                   util::Table::num(raw_stats.mean_reach_time) + "s",
                   util::Table::num(raw_stats.mean_eta), "-"});
    table.add_row({s.name, "compound",
                   util::Table::percent(1.0 - cmp_stats.safe_rate()),
                   util::Table::num(cmp_stats.mean_reach_time) + "s",
                   util::Table::num(cmp_stats.mean_eta),
                   util::Table::percent(cmp_stats.emergency_frequency())});
  }
  std::cout << table;
  std::printf("(violations = merged with less than the required gap)\n");
  return 0;
}
