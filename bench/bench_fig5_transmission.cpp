// Regenerates Figs. 5a/5b: reaching time and emergency frequency as a
// function of the transmission time step dt_m (= dt_s), for the
// conservative planner family under otherwise undisturbed communication.
//
// Expected shape: reaching time grows and emergency frequency grows as
// information arrives less often; the ultimate compound planner stays
// fastest across the sweep.

#include "bench_common.hpp"

int main() {
  const std::size_t sims = bench::sims_per_cell(400);
  std::vector<double> periods;
  for (int j = 1; j <= 10; ++j) periods.push_back(0.1 * j);

  bench::run_fig5_sweep(
      "Fig. 5a/5b", "dt_m = dt_s [s]", periods,
      [](double period) {
        cvsafe::eval::SimConfig cfg =
            cvsafe::eval::SimConfig::paper_defaults();
        cfg.comm = cvsafe::comm::CommConfig::no_disturbance(period);
        cfg.sensor = cvsafe::sensing::SensorConfig::uniform(1.0, period);
        return cfg;
      },
      sims, "fig5_transmission.csv");
  return 0;
}
