// Extension experiment: bursty (Gilbert-Elliott) vs i.i.d. message loss
// at the SAME stationary drop rate. Real V2V links lose messages in
// bursts; a long outage starves the estimators of exact information for
// seconds at a time, which is strictly harder than the paper's i.i.d.
// model. The compound planner must stay 100% safe, trading efficiency.

#include <cstdio>
#include <iostream>

#include "bench_common.hpp"
#include "cvsafe/util/csv.hpp"
#include "cvsafe/util/table.hpp"

using namespace cvsafe;

int main() {
  const std::size_t sims = bench::sims_per_cell(500);
  eval::SimConfig base = eval::SimConfig::paper_defaults();

  util::Table table("Bursty vs i.i.d. message loss (conservative NN, " +
                    std::to_string(sims) + " sims/cell)");
  table.set_header({"channel", "p_drop (stationary)", "planner",
                    "reaching time", "safe rate", "emergency freq"});
  util::CsvWriter csv("burst.csv");
  csv.header({"bursty", "p_drop", "ultimate_reach", "ultimate_emerg",
              "pure_reach"});

  for (double p : {0.2, 0.5, 0.8}) {
    for (const bool bursty : {false, true}) {
      eval::SimConfig cfg = base;
      cfg.comm = bursty
                     ? comm::CommConfig::bursty(p, /*mean_burst_len=*/8.0,
                                                /*delay=*/0.25)
                     : comm::CommConfig::delayed(p, 0.25);
      const auto bp_pure = eval::make_nn_blueprint(
          cfg, planners::PlannerStyle::kConservative,
          eval::PlannerVariant::kPureNn);
      const auto bp_ult = eval::make_nn_blueprint(
          cfg, planners::PlannerStyle::kConservative,
          eval::PlannerVariant::kUltimate);
      const auto pure = eval::run_batch(cfg, bp_pure, sims, 1,
                                        bench::threads());
      const auto ult = eval::run_batch(cfg, bp_ult, sims, 1,
                                       bench::threads());
      const char* kind = bursty ? "bursty (GE)" : "i.i.d.";
      table.add_row({kind, util::Table::num(p, 2), "pure NN",
                     util::Table::num(pure.mean_reach_time) + "s",
                     util::Table::percent(pure.safe_rate()), "-"});
      table.add_row({kind, util::Table::num(p, 2), "ultimate",
                     util::Table::num(ult.mean_reach_time) + "s",
                     util::Table::percent(ult.safe_rate()),
                     util::Table::percent(ult.emergency_frequency())});
      csv.row({bursty ? 1.0 : 0.0, p, ult.mean_reach_time,
               ult.emergency_frequency(), pure.mean_reach_time});
    }
    table.add_separator();
  }
  std::cout << table;
  std::printf("(mean burst length 8 transmissions; series in burst.csv)\n");
  return 0;
}
