#pragma once

// Shared infrastructure for the experiment binaries in bench/.
//
// Every binary reads its workload size from the environment:
//   CVSAFE_SIMS     simulations per table cell / sweep point
//   CVSAFE_THREADS  worker threads (0 = hardware concurrency)
// so the paper-scale runs (80,000 sims/setting) are one env var away.

#include <cstddef>
#include <functional>
#include <string>
#include <vector>

#include "cvsafe/eval/experiments.hpp"

namespace bench {

/// Simulations per experiment cell (env CVSAFE_SIMS, else \p fallback).
std::size_t sims_per_cell(std::size_t fallback);

/// Worker threads (env CVSAFE_THREADS, else hardware).
std::size_t threads();

/// Runs one full table of the paper (Table I for the conservative style,
/// Table II for the aggressive style): three communication settings x
/// {pure NN, basic, ultimate}, reporting reaching time, safe rate, eta,
/// winning percentage (ultimate vs row) and emergency frequency.
void run_planner_table(cvsafe::planners::PlannerStyle style,
                       const std::string& title, std::size_t sims_per_cell);

/// Runs one Fig. 5 sweep for the conservative planner family
/// (pure / basic / ultimate): for each x the configuration is built by
/// \p make_config, every variant runs \p sims seed-paired episodes, and
/// two tables are printed — reaching time vs x (Figs. 5a/5c/5e) and
/// emergency frequency vs x (Figs. 5b/5d/5f) — plus a CSV with the raw
/// series at \p csv_path.
void run_fig5_sweep(const std::string& title, const std::string& x_label,
                    const std::vector<double>& xs,
                    const std::function<cvsafe::eval::SimConfig(double)>&
                        make_config,
                    std::size_t sims, const std::string& csv_path);

}  // namespace bench
