#include "bench_common.hpp"

#include <cstdio>
#include <iostream>

#include "cvsafe/util/config.hpp"
#include "cvsafe/util/csv.hpp"
#include "cvsafe/util/table.hpp"

namespace bench {

using namespace cvsafe;

std::size_t sims_per_cell(std::size_t fallback) {
  return util::bench_sims(fallback);
}

std::size_t threads() { return util::bench_threads(); }

void run_planner_table(planners::PlannerStyle style, const std::string& title,
                       std::size_t sims) {
  eval::SimConfig base = eval::SimConfig::paper_defaults();

  util::Table table(title);
  table.set_header({"settings", "planner type", "reaching time", "safe rate",
                    "eta value", "winning %", "emergency freq"});

  const eval::PlannerVariant variants[] = {eval::PlannerVariant::kPureNn,
                                           eval::PlannerVariant::kBasic,
                                           eval::PlannerVariant::kUltimate};
  const eval::CommSetting settings[] = {eval::CommSetting::kNoDisturbance,
                                        eval::CommSetting::kDelayed,
                                        eval::CommSetting::kLost};

  bool first_setting = true;
  for (const auto setting : settings) {
    if (!first_setting) table.add_separator();
    first_setting = false;

    eval::BatchStats stats[3];
    for (int i = 0; i < 3; ++i) {
      const auto bp = eval::make_nn_blueprint(base, style, variants[i]);
      stats[i] = eval::run_setting(base, bp, setting, sims, 1, threads());
    }

    for (int i = 0; i < 3; ++i) {
      const bool is_ultimate = variants[i] == eval::PlannerVariant::kUltimate;
      const bool all_safe = stats[i].safe_count == stats[i].n;
      std::string reach = util::Table::num(stats[i].mean_reach_time) + "s";
      if (!all_safe) reach = "*" + reach;  // only safe cases counted
      table.add_row({
          std::string(eval::comm_setting_name(setting)),
          std::string(eval::planner_variant_name(variants[i])),
          reach,
          util::Table::percent(stats[i].safe_rate()),
          util::Table::num(stats[i].mean_eta),
          is_ultimate ? std::string("-")
                      : util::Table::percent(eval::winning_fraction(
                            stats[2].etas, stats[i].etas,
                            /*tolerance=*/1e-3)),
          variants[i] == eval::PlannerVariant::kPureNn
              ? std::string("-")
              : util::Table::percent(stats[i].emergency_frequency()),
      });
    }
  }
  std::cout << table;
  std::printf(
      "(%zu simulations per cell; '*' = reaching time of safe cases only;\n"
      " winning %% = share of paired episodes where the ultimate compound\n"
      " planner achieves the higher eta, ties within one control step of\n"
      " reaching time counted as wins)\n\n",
      sims);
}

void run_fig5_sweep(
    const std::string& title, const std::string& x_label,
    const std::vector<double>& xs,
    const std::function<eval::SimConfig(double)>& make_config,
    std::size_t sims, const std::string& csv_path) {
  const eval::PlannerVariant variants[] = {eval::PlannerVariant::kPureNn,
                                           eval::PlannerVariant::kBasic,
                                           eval::PlannerVariant::kUltimate};

  util::Table reach_table(title + " — reaching time");
  reach_table.set_header(
      {x_label, "pure NN", "basic", "ultimate"});
  util::Table emerg_table(title + " — emergency frequency");
  emerg_table.set_header({x_label, "basic", "ultimate"});
  util::CsvWriter csv(csv_path);
  csv.header({x_label, "reach_pure", "reach_basic", "reach_ultimate",
              "emerg_basic", "emerg_ultimate"});

  for (double x : xs) {
    const eval::SimConfig cfg = make_config(x);
    eval::BatchStats stats[3];
    for (int i = 0; i < 3; ++i) {
      const auto bp = eval::make_nn_blueprint(
          cfg, planners::PlannerStyle::kConservative, variants[i]);
      stats[i] = eval::run_batch(cfg, bp, sims, 1, threads());
    }
    reach_table.add_row({util::Table::num(x, 2),
                         util::Table::num(stats[0].mean_reach_time) + "s",
                         util::Table::num(stats[1].mean_reach_time) + "s",
                         util::Table::num(stats[2].mean_reach_time) + "s"});
    emerg_table.add_row(
        {util::Table::num(x, 2),
         util::Table::percent(stats[1].emergency_frequency()),
         util::Table::percent(stats[2].emergency_frequency())});
    csv.row({x, stats[0].mean_reach_time, stats[1].mean_reach_time,
             stats[2].mean_reach_time, stats[1].emergency_frequency(),
             stats[2].emergency_frequency()});
  }
  std::cout << reach_table << '\n' << emerg_table;
  std::printf("(%zu simulations per point; series written to %s)\n\n", sims,
              csv_path.c_str());
}

}  // namespace bench
