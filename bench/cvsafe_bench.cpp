// cvsafe_bench: the project's perf harness. Times every stage of the
// per-control-step pipeline (matmul, MLP forward, Kalman, reachability,
// boundary grid, full-episode batches) and emits a BENCH_<name>.json file
// that scripts/bench_compare.py diffs against a committed baseline to gate
// perf regressions in CI (see docs/PERFORMANCE.md for the schema).
//
// Heap allocations are counted by replacing the global allocation
// functions in this translation unit's binary; `allocs_per_op` therefore
// covers every operator-new in the timed region, which is how the
// zero-allocation claim of the nn::Workspace path is enforced rather than
// just asserted.

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <new>
#include <span>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "cvsafe/adv/optimizer.hpp"
#include "cvsafe/adv/param_space.hpp"
#include "cvsafe/comm/channel.hpp"
#include "cvsafe/core/compound_planner.hpp"
#include "cvsafe/core/preimage.hpp"
#include "cvsafe/eval/batch.hpp"
#include "cvsafe/eval/experiments.hpp"
#include "cvsafe/fault/fault_plan.hpp"
#include "cvsafe/fault/faulty_channel.hpp"
#include "cvsafe/filter/fleet_estimator.hpp"
#include "cvsafe/filter/kalman.hpp"
#include "cvsafe/filter/reachability.hpp"
#include "cvsafe/nn/interval_mlp.hpp"
#include "cvsafe/nn/mlp.hpp"
#include "cvsafe/nn/workspace.hpp"
#include "cvsafe/obs/flight_recorder.hpp"
#include "cvsafe/obs/jsonl.hpp"
#include "cvsafe/obs/recorder.hpp"
#include "cvsafe/planners/expert.hpp"
#include "cvsafe/planners/nn_planner.hpp"
#include "cvsafe/planners/training.hpp"
#include "cvsafe/scenario/left_turn.hpp"
#include "cvsafe/scenario/safety_model.hpp"
#include "cvsafe/sim/fleet.hpp"
#include "cvsafe/sim/left_turn.hpp"
#include "cvsafe/verify/sound.hpp"
#include "support/legacy_reference.hpp"

namespace {

std::atomic<std::uint64_t> g_alloc_count{0};

}  // namespace

// The replaced global allocation functions below pair malloc-backed
// operator new with free-backed operator delete. That pairing is correct
// for a full replacement, but once allocations inline into this TU GCC's
// -Wmismatched-new-delete can no longer see it and reports false
// positives at every make_shared/make_unique instantiation.
#pragma GCC diagnostic ignored "-Wmismatched-new-delete"

// Counting allocation functions. Deliberately exhaustive over the aligned
// and sized variants so no allocation path escapes the counter.
void* operator new(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}
void* operator new[](std::size_t size) { return ::operator new(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  const std::size_t a = std::max<std::size_t>(static_cast<std::size_t>(align),
                                              sizeof(void*));
  void* p = nullptr;
  if (posix_memalign(&p, a, size ? size : a) != 0) throw std::bad_alloc();
  return p;
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return ::operator new(size, align);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace {

using Clock = std::chrono::steady_clock;

volatile double g_sink = 0.0;  // defeats dead-code elimination

struct BenchResult {
  std::string name;
  double ns_per_op = 0.0;
  double ops_per_sec = 0.0;
  double allocs_per_op = 0.0;
  std::uint64_t iterations = 0;
};

struct Options {
  std::string out = "BENCH_micro.json";
  std::string filter;            // substring match on bench names
  double min_time_s = 0.25;      // measured time per benchmark
  std::size_t grid = 512;        // boundary-grid side length
  std::size_t grid_threads = 8;  // worker count for the parallel grid
  bool list = false;
};

double elapsed_s(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

/// Runs fn(iters) batches, growing iters until the batch takes at least
/// min_time_s, then times the full-size batch three times and reports
/// per-op time from the fastest repetition (and per-op allocations from
/// the first): the minimum is far less sensitive to frequency-scaling
/// and scheduler jitter than a single sample, which matters for the
/// ratio gates on ~20 ns ops.
template <typename F>
BenchResult run_bench(const std::string& name, double min_time_s, F&& fn) {
  std::uint64_t iters = 1;
  fn(1);  // warm-up: caches, lazy statics, workspace buffers
  for (;;) {
    const std::uint64_t allocs_before =
        g_alloc_count.load(std::memory_order_relaxed);
    const auto t0 = Clock::now();
    fn(iters);
    const auto t1 = Clock::now();
    const std::uint64_t allocs =
        g_alloc_count.load(std::memory_order_relaxed) - allocs_before;
    double secs = elapsed_s(t0, t1);
    if (secs >= min_time_s || iters >= (1ull << 40)) {
      for (int rep = 0; rep < 2; ++rep) {
        const auto r0 = Clock::now();
        fn(iters);
        const auto r1 = Clock::now();
        secs = std::min(secs, elapsed_s(r0, r1));
      }
      BenchResult r;
      r.name = name;
      r.iterations = iters;
      r.ns_per_op = secs * 1e9 / static_cast<double>(iters);
      r.ops_per_sec = static_cast<double>(iters) / secs;
      r.allocs_per_op =
          static_cast<double>(allocs) / static_cast<double>(iters);
      return r;
    }
    // Aim directly for the target with 20% headroom, at least doubling.
    const double scale =
        secs > 0.0 ? 1.2 * min_time_s / secs : 2.0;
    iters = std::max(iters * 2,
                     static_cast<std::uint64_t>(
                         static_cast<double>(iters) * scale));
  }
}

// --- fixtures -------------------------------------------------------------

// Same architecture as TrainingOptions' default planner network, so the
// MLP numbers reflect the actual kappa_n hot path.
cvsafe::nn::Mlp make_test_net() {
  cvsafe::util::Rng rng(20240806);
  cvsafe::nn::MlpSpec spec;
  spec.layer_sizes = {4, 24, 24, 1};
  return cvsafe::nn::Mlp(spec, rng);
}

cvsafe::nn::Matrix random_matrix(std::size_t r, std::size_t c,
                                 cvsafe::util::Rng& rng) {
  cvsafe::nn::Matrix m(r, c);
  for (auto& x : m.data()) x = rng.uniform(-1.0, 1.0);
  return m;
}

/// Double-integrator step over the grid slice, the bench's black-box
/// system for the preimage operator.
std::pair<double, double> grid_step(double x, double v, double u) {
  const double dt = 0.1;
  return {x + v * dt + 0.5 * u * dt * dt, v + u * dt};
}

struct BandUnsafe {
  double lo = 0.4;
  double hi = 0.6;
  bool operator()(double x, double /*v*/) const { return x >= lo && x <= hi; }
};

// --- registry -------------------------------------------------------------

struct Bench {
  std::string name;
  std::function<BenchResult(const Options&)> run;
};

std::vector<Bench> build_registry() {
  using namespace cvsafe;
  std::vector<Bench> benches;

  benches.push_back({"matmul_dense_64_alloc", [](const Options& o) {
    util::Rng rng(1);
    const nn::Matrix a = random_matrix(64, 64, rng);
    const nn::Matrix b = random_matrix(64, 64, rng);
    return run_bench("matmul_dense_64_alloc", o.min_time_s,
                     [&](std::uint64_t n) {
                       for (std::uint64_t it = 0; it < n; ++it) {
                         g_sink = a.matmul(b)(0, 0);
                       }
                     });
  }});

  benches.push_back({"matmul_dense_64_into", [](const Options& o) {
    util::Rng rng(1);
    const nn::Matrix a = random_matrix(64, 64, rng);
    const nn::Matrix b = random_matrix(64, 64, rng);
    nn::Matrix out;
    return run_bench("matmul_dense_64_into", o.min_time_s,
                     [&](std::uint64_t n) {
                       for (std::uint64_t it = 0; it < n; ++it) {
                         nn::matmul_into(a, b, out);
                         g_sink = out(0, 0);
                       }
                     });
  }});

  benches.push_back({"matmul_transposed_64_into", [](const Options& o) {
    util::Rng rng(1);
    const nn::Matrix a = random_matrix(64, 64, rng);
    const nn::Matrix b = random_matrix(64, 64, rng);
    nn::Matrix out;
    return run_bench("matmul_transposed_64_into", o.min_time_s,
                     [&](std::uint64_t n) {
                       for (std::uint64_t it = 0; it < n; ++it) {
                         nn::matmul_transposed_into(a, b, out);
                         g_sink = out(0, 0);
                       }
                     });
  }});

  // Inference-shaped matmul pair: activation rows x hidden width against
  // a hidden-by-hidden weight matrix — the exact shape every layer of a
  // pooled plan_batch tile multiplies. The CI gate requires the
  // transposed kernel (the layout Mlp::forward_into feeds) to stay at
  // parity with the dense one at this shape.
  benches.push_back({"matmul_dense_infer24", [](const Options& o) {
    util::Rng rng(1);
    const nn::Matrix a = random_matrix(64, 24, rng);
    const nn::Matrix b = random_matrix(24, 24, rng);
    nn::Matrix out;
    return run_bench("matmul_dense_infer24", o.min_time_s,
                     [&](std::uint64_t n) {
                       for (std::uint64_t it = 0; it < n; ++it) {
                         nn::matmul_into(a, b, out);
                         g_sink = out(0, 0);
                       }
                     });
  }});

  benches.push_back({"matmul_transposed_infer24", [](const Options& o) {
    util::Rng rng(1);
    const nn::Matrix a = random_matrix(64, 24, rng);
    const nn::Matrix bt = random_matrix(24, 24, rng);
    nn::Matrix out;
    return run_bench("matmul_transposed_infer24", o.min_time_s,
                     [&](std::uint64_t n) {
                       for (std::uint64_t it = 0; it < n; ++it) {
                         nn::matmul_transposed_into(a, bt, out);
                         g_sink = out(0, 0);
                       }
                     });
  }});

  benches.push_back({"mlp_forward_alloc", [](const Options& o) {
    const nn::Mlp net = make_test_net();
    const std::vector<double> x{-0.5, 0.6, 0.3, 0.7};
    return run_bench("mlp_forward_alloc", o.min_time_s,
                     [&](std::uint64_t n) {
                       for (std::uint64_t it = 0; it < n; ++it) {
                         g_sink = net.predict(x)[0];
                       }
                     });
  }});

  benches.push_back({"mlp_forward_workspace", [](const Options& o) {
    const nn::Mlp net = make_test_net();
    const std::vector<double> x{-0.5, 0.6, 0.3, 0.7};
    nn::Workspace ws;
    return run_bench("mlp_forward_workspace", o.min_time_s,
                     [&](std::uint64_t n) {
                       for (std::uint64_t it = 0; it < n; ++it) {
                         g_sink = net.predict_scalar(x, ws);
                       }
                     });
  }});

  benches.push_back({"mlp_forward_batch64", [](const Options& o) {
    const nn::Mlp net = make_test_net();
    util::Rng rng(7);
    nn::Workspace ws;
    nn::Matrix& in = ws.input(64, 4);
    for (auto& v : in.data()) v = rng.uniform(-1.0, 1.0);
    // One op = one 64-sample batch; divide ns_per_op by 64 for per-sample.
    return run_bench("mlp_forward_batch64", o.min_time_s,
                     [&](std::uint64_t n) {
                       for (std::uint64_t it = 0; it < n; ++it) {
                         g_sink = net.forward_into(in, ws)(63, 0);
                       }
                     });
  }});

  benches.push_back({"kalman_update", [](const Options& o) {
    filter::KalmanFilter kf({0.1, 1.0, 1.0, 1.0, 3.0, 64});
    util::Rng rng(1);
    double t = 0.0;
    return run_bench("kalman_update", o.min_time_s, [&](std::uint64_t n) {
      for (std::uint64_t it = 0; it < n; ++it) {
        sensing::SensorReading r{t, -50.0 + 9.0 * t + rng.uniform(-1.0, 1.0),
                                 9.0 + rng.uniform(-1.0, 1.0),
                                 rng.uniform(-1.0, 1.0)};
        kf.update(r);
        g_sink = kf.state_at(t).x;
        t += 0.1;
      }
    });
  }});

  // The estimate-sweep pair: one op = a 64-lane window of Kalman
  // measurement updates over an 8192-lane pool (the production fleet
  // capacity), rotating so every lane is cold by the time its window
  // comes around again — the cache-residency regime that motivated the
  // SoA refactor. The scalar baseline holds one heap-allocated
  // KalmanFilter per lane exactly as the per-episode engine does; the
  // batched bench is the FleetEstimator stage + update_batch sweep on
  // identical readings. CI gates batched <= 0.5x scalar and zero
  // allocations per op (scripts/bench_compare.py).
  benches.push_back({"kalman_update_scalar64", [](const Options& o) {
    constexpr std::size_t kLanes = 8192;
    constexpr std::size_t kWindow = 64;
    const filter::KalmanConfig config{0.1, 1.0, 1.0, 1.0, 3.0, 64};
    std::vector<std::unique_ptr<filter::KalmanFilter>> pool;
    pool.reserve(kLanes);
    for (std::size_t i = 0; i < kLanes; ++i) {
      pool.push_back(std::make_unique<filter::KalmanFilter>(config));
    }
    util::Rng rng(7);
    double t = 0.0;
    std::size_t cursor = 0;
    return run_bench(
        "kalman_update_scalar64", o.min_time_s, [&](std::uint64_t n) {
          for (std::uint64_t it = 0; it < n; ++it) {
            for (std::size_t i = 0; i < kWindow; ++i) {
              filter::KalmanFilter& kf = *pool[cursor + i];
              kf.update(sensing::SensorReading{
                  t, -50.0 + 9.0 * t + rng.uniform(-1.0, 1.0),
                  9.0 + rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)});
            }
            g_sink = pool[cursor]->view().x.x;
            cursor = (cursor + kWindow) % kLanes;
            t += 0.1;
          }
        });
  }});

  benches.push_back({"kalman_update_batch64", [](const Options& o) {
    constexpr std::size_t kLanes = 8192;
    constexpr std::size_t kWindow = 64;
    const filter::KalmanConfig config{0.1, 1.0, 1.0, 1.0, 3.0, 64};
    filter::FleetEstimator est;
    std::vector<std::size_t> slots;
    slots.reserve(kLanes);
    for (std::size_t i = 0; i < kLanes; ++i) {
      slots.push_back(est.acquire(config));
    }
    util::Rng rng(7);
    double t = 0.0;
    std::size_t cursor = 0;
    return run_bench(
        "kalman_update_batch64", o.min_time_s, [&](std::uint64_t n) {
          for (std::uint64_t it = 0; it < n; ++it) {
            for (std::size_t i = 0; i < kWindow; ++i) {
              est.stage(slots[cursor + i],
                        sensing::SensorReading{
                            t, -50.0 + 9.0 * t + rng.uniform(-1.0, 1.0),
                            9.0 + rng.uniform(-1.0, 1.0),
                            rng.uniform(-1.0, 1.0)});
            }
            est.update_batch();
            g_sink = est.view(slots[cursor]).x.x;
            cursor = (cursor + kWindow) % kLanes;
            t += 0.1;
          }
        });
  }});

  benches.push_back({"reachability_propagate", [](const Options& o) {
    const vehicle::VehicleLimits limits{2.0, 15.0, -3.0, 3.0};
    const auto bounds = filter::StateBounds::exact(0.0, -50.0, 9.0);
    double dt = 0.05;
    return run_bench("reachability_propagate", o.min_time_s,
                     [&](std::uint64_t n) {
                       for (std::uint64_t it = 0; it < n; ++it) {
                         g_sink = filter::propagate(bounds, dt, limits).p.lo;
                         dt = dt < 3.0 ? dt + 0.05 : 0.05;
                       }
                     });
  }});

  // The reach-sweep pair: one op = propagating 64 lanes of state bounds
  // out of an 8192-lane pool. The scalar baseline calls propagate() per
  // lane on bounds embedded in 1 KiB-stride records — the pre-refactor
  // layout, where each lane's reach state lives inside its multi-KB
  // episode/stack object — and writes the result back into the record as
  // the information filter does. The batched bench runs the per-field
  // SoA propagate_batch kernel over the same window. Gated like the
  // Kalman pair: batched <= 0.5x scalar, zero allocs.
  benches.push_back({"reach_propagate_scalar64", [](const Options& o) {
    constexpr std::size_t kLanes = 8192;
    constexpr std::size_t kWindow = 64;
    const vehicle::VehicleLimits limits{2.0, 15.0, -3.0, 3.0};
    struct LaneState {
      filter::StateBounds bounds;
      double target = 0.0;
      filter::StateBounds reached;
    };
    static_assert(sizeof(LaneState) <= 512);
    struct PaddedLane {
      LaneState lane;
      unsigned char pad[1024 - sizeof(LaneState)];
    };
    std::vector<PaddedLane> pool(kLanes);
    for (std::size_t i = 0; i < kLanes; ++i) {
      const double base = 0.05 * static_cast<double>(i % 61);
      pool[i].lane.bounds = filter::StateBounds{
          base, util::Interval{-50.0 + base, -48.0 + 2.0 * base},
          util::Interval{4.0 + 0.1 * base, 7.0 + 0.2 * base}};
      pool[i].lane.target = base + 0.02 * static_cast<double>(i % 97);
    }
    std::size_t cursor = 0;
    return run_bench(
        "reach_propagate_scalar64", o.min_time_s, [&](std::uint64_t n) {
          for (std::uint64_t it = 0; it < n; ++it) {
            for (std::size_t i = 0; i < kWindow; ++i) {
              LaneState& lane = pool[cursor + i].lane;
              lane.reached =
                  filter::propagate(lane.bounds, lane.target, limits);
            }
            g_sink = pool[cursor].lane.reached.p.lo;
            cursor = (cursor + kWindow) % kLanes;
          }
        });
  }});

  benches.push_back({"reach_propagate_batch64", [](const Options& o) {
    constexpr std::size_t kLanes = 8192;
    constexpr std::size_t kWindow = 64;
    const vehicle::VehicleLimits limits{2.0, 15.0, -3.0, 3.0};
    std::vector<double> t0(kLanes), p_lo(kLanes), p_hi(kLanes),
        v_lo(kLanes), v_hi(kLanes), t(kLanes);
    for (std::size_t i = 0; i < kLanes; ++i) {
      const double base = 0.05 * static_cast<double>(i % 61);
      t0[i] = base;
      p_lo[i] = -50.0 + base;
      p_hi[i] = -48.0 + 2.0 * base;
      v_lo[i] = 4.0 + 0.1 * base;
      v_hi[i] = 7.0 + 0.2 * base;
      t[i] = base + 0.02 * static_cast<double>(i % 97);
    }
    std::vector<double> ot(kLanes), opl(kLanes), oph(kLanes), ovl(kLanes),
        ovh(kLanes);
    std::size_t cursor = 0;
    return run_bench(
        "reach_propagate_batch64", o.min_time_s, [&](std::uint64_t n) {
          for (std::uint64_t it = 0; it < n; ++it) {
            filter::propagate_batch(
                filter::ReachLanes{
                    std::span(t0).subspan(cursor, kWindow),
                    std::span(p_lo).subspan(cursor, kWindow),
                    std::span(p_hi).subspan(cursor, kWindow),
                    std::span(v_lo).subspan(cursor, kWindow),
                    std::span(v_hi).subspan(cursor, kWindow),
                    std::span(t).subspan(cursor, kWindow)},
                limits, std::span(ot).subspan(cursor, kWindow),
                std::span(opl).subspan(cursor, kWindow),
                std::span(oph).subspan(cursor, kWindow),
                std::span(ovl).subspan(cursor, kWindow),
                std::span(ovh).subspan(cursor, kWindow));
            g_sink = opl[cursor];
            cursor = (cursor + kWindow) % kLanes;
          }
        });
  }});

  benches.push_back({"boundary_grid_serial", [](const Options& o) {
    core::PreimageGrid grid;
    grid.nx = o.grid;
    grid.nv = o.grid;
    const auto controls = core::sample_controls(-3.0, 3.0, 8);
    const core::StepFn step = grid_step;
    const core::UnsafeFn unsafe = BandUnsafe{};
    return run_bench(
        "boundary_grid_serial", o.min_time_s, [&](std::uint64_t n) {
          for (std::uint64_t it = 0; it < n; ++it) {
            const auto res =
                core::compute_boundary_grid(grid, step, unsafe, controls);
            g_sink = static_cast<double>(res.count(core::RegionLabel::kBoundary));
          }
        });
  }});

  benches.push_back({"boundary_grid_parallel", [](const Options& o) {
    core::PreimageGrid grid;
    grid.nx = o.grid;
    grid.nv = o.grid;
    const auto controls = core::sample_controls(-3.0, 3.0, 8);
    const core::StepFn step = grid_step;
    const core::UnsafeFn unsafe = BandUnsafe{};
    return run_bench(
        "boundary_grid_parallel", o.min_time_s, [&](std::uint64_t n) {
          for (std::uint64_t it = 0; it < n; ++it) {
            const auto res = core::compute_boundary_grid_parallel(
                grid, step, unsafe, controls, o.grid_threads);
            g_sink = static_cast<double>(res.count(core::RegionLabel::kBoundary));
          }
        });
  }});

  benches.push_back({"boundary_grid_memoized_full", [](const Options& o) {
    core::PreimageGrid grid;
    grid.nx = o.grid;
    grid.nv = o.grid;
    core::IncrementalBoundaryGrid inc(grid, grid_step,
                                      core::sample_controls(-3.0, 3.0, 8));
    const core::UnsafeFn unsafe = BandUnsafe{};
    return run_bench(
        "boundary_grid_memoized_full", o.min_time_s, [&](std::uint64_t n) {
          for (std::uint64_t it = 0; it < n; ++it) {
            const auto& res = inc.relabel(unsafe);
            g_sink = static_cast<double>(res.count(core::RegionLabel::kBoundary));
          }
        });
  }});

  benches.push_back({"boundary_grid_incremental", [](const Options& o) {
    core::PreimageGrid grid;
    grid.nx = o.grid;
    grid.nv = o.grid;
    core::IncrementalBoundaryGrid inc(grid, grid_step,
                                      core::sample_controls(-3.0, 3.0, 8));
    BandUnsafe band;
    inc.relabel(core::UnsafeFn(band));  // prime
    double phase = 0.0;
    // Per step the unsafe band drifts by ~one cell, the Eq.-8 common case:
    // relabel only the footprint-intersecting sliver.
    return run_bench(
        "boundary_grid_incremental", o.min_time_s, [&](std::uint64_t n) {
          for (std::uint64_t it = 0; it < n; ++it) {
            const BandUnsafe old_band = band;
            phase += 0.002;
            if (phase > 0.2) phase = 0.0;
            band.lo = 0.4 + phase;
            band.hi = 0.6 + phase;
            const core::ChangedRegion changed{
                std::min(old_band.lo, band.lo), std::max(old_band.hi, band.hi),
                grid.v_min, grid.v_max};
            const auto& res = inc.relabel(core::UnsafeFn(band), changed);
            g_sink = static_cast<double>(res.count(core::RegionLabel::kBoundary));
          }
        });
  }});

  // One op = one control step of a V2V channel: offer the current
  // snapshot, drain due messages. channel_plain is the undecorated
  // baseline; channel_faulty_nofault is the FaultyChannel decorator with
  // every fault disabled — measured at parity (~1.0x dev, min-of-3
  // batches). Even with the min, the ratio of two ~20 ns ops swings
  // roughly 0.85-1.15x run to run, so CI gates at 0.75: a guard against
  // gross dispatch pessimization (lost inlining, per-message copies),
  // not a 10%-level perf pin. Behavioral parity is gated exactly by
  // fault_injection_test's bit-identical pass-through check.
  benches.push_back({"channel_plain", [](const Options& o) {
    comm::Channel ch(comm::CommConfig::delayed(0.1, 0.25));
    util::Rng rng(1);
    double t = 0.0;
    return run_bench("channel_plain", o.min_time_s, [&](std::uint64_t n) {
      for (std::uint64_t it = 0; it < n; ++it) {
        const vehicle::VehicleSnapshot snap{t, {-50.0 + 9.0 * t, 9.0}, 0.3};
        ch.offer(comm::Message{1, snap}, rng);
        // Drain in batches: the collect() vector churn would otherwise
        // drown the offer dispatch the overhead gate compares.
        if ((it & 63u) == 0u) {
          g_sink = static_cast<double>(ch.collect(t).size());
        }
        t += 0.05;
      }
    });
  }});

  benches.push_back({"channel_faulty_nofault", [](const Options& o) {
    fault::FaultyChannel ch(comm::CommConfig::delayed(0.1, 0.25),
                            fault::ChannelFaultModel{}, 42);
    util::Rng rng(1);
    double t = 0.0;
    return run_bench("channel_faulty_nofault", o.min_time_s,
                     [&](std::uint64_t n) {
                       for (std::uint64_t it = 0; it < n; ++it) {
                         const vehicle::VehicleSnapshot snap{
                             t, {-50.0 + 9.0 * t, 9.0}, 0.3};
                         ch.offer(comm::Message{1, snap}, rng);
                         if ((it & 63u) == 0u) {
                           g_sink =
                               static_cast<double>(ch.collect(t).size());
                         }
                         t += 0.05;
                       }
                     });
  }});

  benches.push_back({"channel_faulty_active", [](const Options& o) {
    const fault::FaultPlan plan = fault::FaultPlan::corruption();
    fault::FaultyChannel ch(comm::CommConfig::delayed(0.1, 0.25),
                            plan.channel, 42);
    util::Rng rng(1);
    double t = 0.0;
    return run_bench("channel_faulty_active", o.min_time_s,
                     [&](std::uint64_t n) {
                       for (std::uint64_t it = 0; it < n; ++it) {
                         const vehicle::VehicleSnapshot snap{
                             t, {-50.0 + 9.0 * t, 9.0}, 0.3};
                         ch.offer(comm::Message{1, snap}, rng);
                         if ((it & 63u) == 0u) {
                           g_sink =
                               static_cast<double>(ch.collect(t).size());
                         }
                         t += 0.05;
                       }
                     });
  }});

  // One op = one compound-planner step with the degradation ladder armed
  // and signals sweeping across every rung threshold (the ladder-update +
  // monitor-gate hot path of a faulted episode).
  benches.push_back({"compound_step_degradation", [](const Options& o) {
    const auto cfg = eval::SimConfig::paper_defaults();
    const auto scn = cfg.make_scenario();
    auto inner = std::make_shared<planners::ExpertPlanner>(
        scn, planners::ExpertParams::conservative(), "expert");
    auto model = std::make_shared<scenario::LeftTurnSafetyModel>(scn);
    core::CompoundPlanner<scenario::LeftTurnWorld> compound(
        std::move(inner), std::move(model));
    compound.enable_degradation(core::LadderConfig{});
    scenario::LeftTurnWorld world;
    world.t = 1.0;
    world.ego = vehicle::VehicleState{cfg.geometry.ego_start, 8.0};
    world.tau1_monitor = util::Interval{5.0, 8.0};
    world.tau1_nn = world.tau1_monitor;
    double age = 0.0;
    return run_bench(
        "compound_step_degradation", o.min_time_s, [&](std::uint64_t n) {
          for (std::uint64_t it = 0; it < n; ++it) {
            core::DegradationSignals signals;
            signals.have_message = true;
            signals.message_age = age;
            signals.filter_consistent = (it & 63u) != 0;
            compound.note_signals(signals);
            g_sink = compound.plan(world);
            age = age < 1.2 ? age + 0.05 : 0.0;
          }
        });
  }});

  // One op = one compound-planner step with no observability attached:
  // the untraced baseline the tracing-overhead gate compares against.
  benches.push_back({"compound_step", [](const Options& o) {
    const auto cfg = eval::SimConfig::paper_defaults();
    const auto scn = cfg.make_scenario();
    auto inner = std::make_shared<planners::ExpertPlanner>(
        scn, planners::ExpertParams::conservative(), "expert");
    auto model = std::make_shared<scenario::LeftTurnSafetyModel>(scn);
    core::CompoundPlanner<scenario::LeftTurnWorld> compound(
        std::move(inner), std::move(model));
    compound.enable_degradation(core::LadderConfig{});
    scenario::LeftTurnWorld world;
    world.t = 1.0;
    world.ego = vehicle::VehicleState{cfg.geometry.ego_start, 8.0};
    world.tau1_monitor = util::Interval{5.0, 8.0};
    world.tau1_nn = world.tau1_monitor;
    double age = 0.0;
    return run_bench("compound_step", o.min_time_s, [&](std::uint64_t n) {
      for (std::uint64_t it = 0; it < n; ++it) {
        core::DegradationSignals signals;
        signals.have_message = true;
        signals.message_age = age;
        signals.filter_consistent = (it & 63u) != 0;
        compound.note_signals(signals);
        g_sink = compound.plan(world);
        age = age < 1.2 ? age + 0.05 : 0.0;
      }
    });
  }});

  // Same fixture with a *disabled* recorder mounted: the null-sink fast
  // path whose cost the CI gate bounds at <= 5% of compound_step.
  benches.push_back({"compound_step_traced_off", [](const Options& o) {
    const auto cfg = eval::SimConfig::paper_defaults();
    const auto scn = cfg.make_scenario();
    auto inner = std::make_shared<planners::ExpertPlanner>(
        scn, planners::ExpertParams::conservative(), "expert");
    auto model = std::make_shared<scenario::LeftTurnSafetyModel>(scn);
    core::CompoundPlanner<scenario::LeftTurnWorld> compound(
        std::move(inner), std::move(model));
    compound.enable_degradation(core::LadderConfig{});
    obs::Recorder recorder;  // default-disabled null sink
    compound.set_recorder(&recorder);
    scenario::LeftTurnWorld world;
    world.t = 1.0;
    world.ego = vehicle::VehicleState{cfg.geometry.ego_start, 8.0};
    world.tau1_monitor = util::Interval{5.0, 8.0};
    world.tau1_nn = world.tau1_monitor;
    double age = 0.0;
    return run_bench(
        "compound_step_traced_off", o.min_time_s, [&](std::uint64_t n) {
          for (std::uint64_t it = 0; it < n; ++it) {
            core::DegradationSignals signals;
            signals.have_message = true;
            signals.message_age = age;
            signals.filter_consistent = (it & 63u) != 0;
            compound.note_signals(signals);
            g_sink = compound.plan(world);
            age = age < 1.2 ? age + 0.05 : 0.0;
          }
        });
  }});

  // One op = one event emission into a disabled recorder (the per-call
  // floor of every instrumentation point when tracing is off).
  benches.push_back({"recorder_event_off", [](const Options& o) {
    obs::Recorder recorder;  // disabled: emits are runtime no-ops
    return run_bench(
        "recorder_event_off", o.min_time_s, [&](std::uint64_t n) {
          for (std::uint64_t it = 0; it < n; ++it) {
            recorder.begin_step(it, static_cast<double>(it) * 0.05);
            recorder.step_summary(1.0, false, 0.5, 2);
            if ((it & 1023u) == 0u) {
              g_sink = static_cast<double>(recorder.events().size());
            }
          }
        });
  }});

  // One op = one recorded event, with the JSONL serialization cost
  // amortized over 1024-event flushes (the traced-episode write path).
  benches.push_back({"recorder_event_jsonl", [](const Options& o) {
    obs::Recorder recorder;
    recorder.set_enabled(true);
    obs::EpisodeLabel label;
    label.seed = 1;
    label.scenario = "bench";
    return run_bench(
        "recorder_event_jsonl", o.min_time_s, [&](std::uint64_t n) {
          for (std::uint64_t it = 0; it < n; ++it) {
            recorder.begin_step(it, static_cast<double>(it) * 0.05);
            recorder.step_summary(1.0, (it & 63u) == 0u, 0.5, 2);
            if (recorder.events().size() >= 1024) {
              std::ostringstream os;
              obs::write_events_jsonl(os, recorder.events(), label,
                                      recorder.dropped());
              g_sink = static_cast<double>(os.str().size());
              recorder.clear();
            }
          }
        });
  }});

  benches.push_back({"run_batch_episodes8", [](const Options& o) {
    const auto cfg = eval::SimConfig::paper_defaults();
    const auto bp = eval::make_nn_blueprint(
        cfg, planners::PlannerStyle::kConservative,
        eval::PlannerVariant::kUltimate);
    std::uint64_t seed = 1;
    return run_bench("run_batch_episodes8", o.min_time_s,
                     [&](std::uint64_t n) {
                       for (std::uint64_t it = 0; it < n; ++it) {
                         const auto stats =
                             eval::run_batch(cfg, bp, 8, seed, 1);
                         g_sink = stats.mean_eta;
                         seed += 8;
                       }
                     });
  }});

  // The frozen pre-engine left-turn loop on the identical workload —
  // the baseline of the engine-overhead gate
  //   legacy_left_turn_episodes8 : run_batch_episodes8
  // in CI (per-step engine overhead must stay within a few percent).
  benches.push_back({"legacy_left_turn_episodes8", [](const Options& o) {
    const auto cfg = eval::SimConfig::paper_defaults();
    const auto bp = eval::make_nn_blueprint(
        cfg, planners::PlannerStyle::kConservative,
        eval::PlannerVariant::kUltimate);
    std::uint64_t seed = 1;
    return run_bench("legacy_left_turn_episodes8", o.min_time_s,
                     [&](std::uint64_t n) {
                       for (std::uint64_t it = 0; it < n; ++it) {
                         double eta_sum = 0.0;
                         for (std::uint64_t i = 0; i < 8; ++i) {
                           eta_sum += cvsafe::legacy_ref::run_left_turn(
                                          cfg, bp, seed + i)
                                          .eta;
                         }
                         g_sink = eta_sum / 8.0;
                         seed += 8;
                       }
                     });
  }});

  // The fleet engine on the identical workload at three pool capacities,
  // at hardware concurrency (threads = 0) — the campaign deployment mode,
  // where work-stealing admission is the point. One op = 8 episodes
  // (comparable to run_batch_episodes8, which is pinned at 1 thread); the
  // whole batch runs as ONE fleet call so pool residency is real — under
  // the growth loop n reaches thousands of episodes and the 8k pool keeps
  // them all resident, which is exactly the mega-batched planning regime.
  // CI gates (same binary, same host, so machine-independent):
  //   parallel-speedup run_batch_episodes8 -> fleet_pool8k_episodes8 >= 1
  //     (pooled path >= per-episode path per hardware thread; skipped on
  //     1-thread runners, where it degenerates to serial-vs-serial), and
  //   max-ratio fleet_pool64_episodes8 / run_batch_episodes8
  //     (bounds single-thread pooling overhead; bites on 1-thread
  //     runners where the parallel gate skips).
  // fleet_pool8k_episodes8 runs with the per-lane flight recorder ARMED
  // (rings live in every lane; eta samples, gate verdicts and message
  // events stream into them each step) so the speedup gates cover the
  // observability-on deployment shape. fleet_pool8k_telemetry_off is the
  // identical workload untraced; CI bounds the recorder overhead with
  //   speedup fleet_pool8k_telemetry_off -> fleet_pool8k_episodes8
  //     >= 0.95 (armed throughput within 5% of untraced).
  struct PoolBench {
    std::size_t pool_cap;
    bool armed;
    const char* name;
  };
  constexpr PoolBench kPoolBenches[] = {
      {64, false, "fleet_pool64_episodes8"},
      {1024, false, "fleet_pool1k_episodes8"},
      {8192, true, "fleet_pool8k_episodes8"},
      {8192, false, "fleet_pool8k_telemetry_off"},
  };
  for (const PoolBench& pb : kPoolBenches) {
    const std::string name = pb.name;
    const std::size_t pool_cap = pb.pool_cap;
    const bool armed = pb.armed;
    benches.push_back({name, [name, pool_cap, armed](const Options& o) {
      const auto cfg = eval::SimConfig::paper_defaults();
      const auto bp = eval::make_nn_blueprint(
          cfg, planners::PlannerStyle::kConservative,
          eval::PlannerVariant::kUltimate);
      obs::FlightDumpCollector dumps;
      sim::FleetObsSinks sinks;
      if (armed) sinks.dumps = &dumps;
      std::uint64_t seed = 1;
      return run_bench(name, o.min_time_s, [&](std::uint64_t n) {
        const auto stats =
            eval::run_batch_fleet(cfg, bp, 8 * n, seed, 0, pool_cap, sinks);
        g_sink = stats.mean_eta;
        seed += 8 * n;
      });
    }});
  }

  // One op = one steady-state fleet shard-step over 64 resident lanes:
  // observe + monitor gate + one plan_batch spanning the pool + the SoA
  // dynamics sweep + (empty) retire scan. The horizon and target are
  // pushed out so no lane finishes during measurement — what remains is
  // the per-step cost the fleet engine pays forever, and it is gated
  // zero-alloc in CI (an allocation here multiplies by pool x steps).
  benches.push_back({"fleet_steady_step", [](const Options& o) {
    auto cfg = eval::SimConfig::paper_defaults();
    // 80k steps of runway: enough for the growth loop + 3 reps at any
    // sane --min-time; lanes never retire (target unreachable at 15 m/s
    // x 4000 s) so the only allocations possible are warm-up growth.
    cfg.horizon = 4000.0;
    cfg.geometry.ego_target = 1.0e6;
    const auto bp = eval::make_nn_blueprint(
        cfg, planners::PlannerStyle::kConservative,
        eval::PlannerVariant::kUltimate);
    const sim::LeftTurnAdapter adapter(cfg, bp);
    std::atomic<std::size_t> next{0};
    std::vector<sim::FleetRecord> records(4096);
    sim::EpisodePool<scenario::LeftTurnWorld> pool(
        adapter, 64, 1, sim::SeedPolicy::kPaired, next, records.size());
    planners::NnPlanner planner(bp.net, planners::InputEncoding{}, "nn");
    std::vector<scenario::LeftTurnWorld> worlds;
    std::vector<std::size_t> pending;
    std::vector<double> plans;
    const auto shard_step = [&] {
      worlds.clear();
      pending.clear();
      for (std::size_t lane = 0; lane < pool.active(); ++lane) {
        auto& runner = pool.runner(lane);
        runner.observe();
        if (const auto emergency = runner.monitor_gate()) {
          pool.set_accel(lane, *emergency);
        } else {
          pending.push_back(lane);
          worlds.push_back(runner.nn_world());
        }
      }
      if (!pending.empty()) {
        plans.resize(worlds.size());
        planner.plan_batch(worlds, plans);
        for (std::size_t j = 0; j < pending.size(); ++j) {
          pool.set_accel(pending[j], plans[j]);
        }
      }
      for (std::size_t lane = 0; lane < pool.active(); ++lane) {
        pool.runner(lane).advance_begin(pool.accel(lane));
        pool.stage_lane(lane);
      }
      pool.step_dynamics();
      pool.retire_and_refill(records);
      g_sink = pool.accel(0);
    };
    // Pre-warm past every one-time capacity growth (vector capacities,
    // in-flight message queues, workspace tiles): measured, the last
    // warm-up allocation happens before step ~70; 512 steps of margin
    // keep the zero-alloc gate deterministic at any --min-time.
    for (int i = 0; i < 512; ++i) shard_step();
    return run_bench("fleet_steady_step", o.min_time_s,
                     [&](std::uint64_t n) {
                       for (std::uint64_t it = 0; it < n; ++it) {
                         shard_step();
                       }
                     });
  }});

  // fleet_steady_step with the flight recorder armed: the identical
  // shard step, but every lane's ring receives the step's events. Gated
  // zero-alloc in CI — the armed emit path must stay plain stores into
  // preallocated ring storage.
  benches.push_back({"fleet_steady_step_armed", [](const Options& o) {
    auto cfg = eval::SimConfig::paper_defaults();
    // 80k steps of runway: enough for the growth loop + 3 reps at any
    // sane --min-time; lanes never retire (target unreachable at 15 m/s
    // x 4000 s) so the only allocations possible are warm-up growth.
    cfg.horizon = 4000.0;
    cfg.geometry.ego_target = 1.0e6;
    const auto bp = eval::make_nn_blueprint(
        cfg, planners::PlannerStyle::kConservative,
        eval::PlannerVariant::kUltimate);
    const sim::LeftTurnAdapter adapter(cfg, bp);
    std::atomic<std::size_t> next{0};
    std::vector<sim::FleetRecord> records(4096);
    // Rings armed in every lane: the per-step emit path (begin_step
    // stamps, eta samples, gate verdicts, message events) runs for real,
    // but no lane ever retires, so no dump is ever materialized — the
    // armed steady state whose zero-allocation claim CI enforces (arming
    // at pool construction is the only allocating call).
    obs::FlightDumpCollector dumps;
    sim::EpisodePool<scenario::LeftTurnWorld> pool(
        adapter, 64, 1, sim::SeedPolicy::kPaired, next, records.size(),
        nullptr, &dumps, obs::FlightRecorderConfig{});
    planners::NnPlanner planner(bp.net, planners::InputEncoding{}, "nn");
    std::vector<scenario::LeftTurnWorld> worlds;
    std::vector<std::size_t> pending;
    std::vector<double> plans;
    const auto shard_step = [&] {
      worlds.clear();
      pending.clear();
      for (std::size_t lane = 0; lane < pool.active(); ++lane) {
        auto& runner = pool.runner(lane);
        runner.observe();
        if (const auto emergency = runner.monitor_gate()) {
          pool.set_accel(lane, *emergency);
        } else {
          pending.push_back(lane);
          worlds.push_back(runner.nn_world());
        }
      }
      if (!pending.empty()) {
        plans.resize(worlds.size());
        planner.plan_batch(worlds, plans);
        for (std::size_t j = 0; j < pending.size(); ++j) {
          pool.set_accel(pending[j], plans[j]);
        }
      }
      for (std::size_t lane = 0; lane < pool.active(); ++lane) {
        pool.runner(lane).advance_begin(pool.accel(lane));
        pool.stage_lane(lane);
      }
      pool.step_dynamics();
      pool.retire_and_refill(records);
      g_sink = pool.accel(0);
    };
    // Pre-warm past every one-time capacity growth (vector capacities,
    // in-flight message queues, workspace tiles): measured, the last
    // warm-up allocation happens before step ~70; 512 steps of margin
    // keep the zero-alloc gate deterministic at any --min-time.
    for (int i = 0; i < 512; ++i) shard_step();
    return run_bench("fleet_steady_step_armed", o.min_time_s,
                     [&](std::uint64_t n) {
                       for (std::uint64_t it = 0; it < n; ++it) {
                         shard_step();
                       }
                     });
  }});

  // One op = one CMA-ES ask + synthetic-score + tell round at the
  // adversarial ParamSpace dimensionality (Cholesky factorization,
  // lambda x dim sampling, selection, paths and rank-mu covariance
  // update). Gated zero-alloc in CI: every buffer is sized in the
  // optimizer's constructor, so a regression here would tax every
  // candidate batch of every attack.
  benches.push_back({"adv_search_step", [](const Options& o) {
    adv::CmaEs opt(adv::ParamSpace::kDim, /*seed=*/7);
    const std::size_t dim = opt.dim();
    const std::size_t pop = opt.population();
    std::vector<double> xs(pop * dim);
    std::vector<double> scores(pop);
    std::size_t iteration = 0;
    const auto step = [&] {
      opt.ask(iteration, xs);
      for (std::size_t c = 0; c < pop; ++c) {
        double s = 0.0;
        for (std::size_t d = 0; d < dim; ++d) {
          const double v = xs[c * dim + d] - 0.3;
          s += v * v;
        }
        scores[c] = s;
      }
      opt.tell(iteration, xs, scores);
      ++iteration;
      g_sink = opt.best_score();
    };
    for (int i = 0; i < 8; ++i) step();  // past any one-time warm-up
    return run_bench("adv_search_step", o.min_time_s,
                     [&](std::uint64_t n) {
                       for (std::uint64_t it = 0; it < n; ++it) step();
                     });
  }});

  // One op = one outward-rounded interval forward pass over a unit box
  // through the planner-sized net, reusing the IntervalWorkspace — the
  // inner loop of the sound NN-bounds prover. Gated zero-alloc in CI:
  // an allocation regression here multiplies across every B&B leaf.
  benches.push_back({"nn_interval_forward", [](const Options& o) {
    const nn::Mlp net = make_test_net();
    std::array<util::Interval, 4> box{
        util::Interval{-0.6, -0.4}, util::Interval{0.5, 0.7},
        util::Interval{0.2, 0.4}, util::Interval{0.6, 0.8}};
    nn::IntervalWorkspace iws;
    return run_bench("nn_interval_forward", o.min_time_s,
                     [&](std::uint64_t n) {
                       for (std::uint64_t it = 0; it < n; ++it) {
                         g_sink = nn::interval_predict_scalar(net, box, iws).lo;
                       }
                     });
  }});

  // One op = one full Eq. 4 branch-and-bound certification of the paper
  // scenario (single-threaded so ns/op tracks prover arithmetic, not the
  // pool). Tracks the end-to-end cost of the safety half of `certify`.
  benches.push_back({"bnb_certify_smoke", [](const Options& o) {
    const scenario::LeftTurnScenario scn(
        scenario::LeftTurnGeometry{}, {0.0, 15.0, -6.0, 3.0},
        {2.0, 15.0, -3.0, 3.0}, 0.05);
    verify::SoundBnbOptions options;
    options.threads = 1;
    return run_bench("bnb_certify_smoke", o.min_time_s,
                     [&](std::uint64_t n) {
                       for (std::uint64_t it = 0; it < n; ++it) {
                         const auto res = verify::certify_eq4_sound(scn, options);
                         g_sink = static_cast<double>(res.leaves.size());
                       }
                     });
  }});

  return benches;
}

// --- output ---------------------------------------------------------------

void write_json(const Options& opt, const std::vector<BenchResult>& results) {
  std::FILE* f = std::fopen(opt.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cvsafe_bench: cannot open %s for writing\n",
                 opt.out.c_str());
    std::exit(1);
  }
  std::fprintf(f, "{\n");
  std::fprintf(f, "  \"schema\": \"cvsafe-bench-v1\",\n");
  std::fprintf(f, "  \"config\": {\n");
  std::fprintf(f, "    \"min_time_s\": %g,\n", opt.min_time_s);
  std::fprintf(f, "    \"grid\": %zu,\n", opt.grid);
  std::fprintf(f, "    \"grid_threads\": %zu,\n", opt.grid_threads);
  std::fprintf(f, "    \"hardware_threads\": %u\n",
               std::thread::hardware_concurrency());
  std::fprintf(f, "  },\n");
  std::fprintf(f, "  \"benchmarks\": [\n");
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    std::fprintf(f,
                 "    {\"name\": \"%s\", \"ns_per_op\": %.1f, "
                 "\"ops_per_sec\": %.1f, \"allocs_per_op\": %.3f, "
                 "\"iterations\": %llu}%s\n",
                 r.name.c_str(), r.ns_per_op, r.ops_per_sec, r.allocs_per_op,
                 static_cast<unsigned long long>(r.iterations),
                 i + 1 < results.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--out FILE] [--filter SUBSTR] [--min-time SECONDS]\n"
      "          [--grid N] [--grid-threads N] [--list]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Options opt;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::exit(usage(argv[0]));
      }
      return argv[++i];
    };
    if (arg == "--out") {
      opt.out = next();
    } else if (arg == "--filter") {
      opt.filter = next();
    } else if (arg == "--min-time") {
      opt.min_time_s = std::atof(next());
    } else if (arg == "--grid") {
      opt.grid = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--grid-threads") {
      opt.grid_threads = static_cast<std::size_t>(std::atoll(next()));
    } else if (arg == "--list") {
      opt.list = true;
    } else {
      return usage(argv[0]);
    }
  }

  const auto registry = build_registry();
  if (opt.list) {
    for (const auto& b : registry) std::printf("%s\n", b.name.c_str());
    return 0;
  }

  std::vector<BenchResult> results;
  for (const auto& b : registry) {
    if (!opt.filter.empty() &&
        b.name.find(opt.filter) == std::string::npos) {
      continue;
    }
    std::fprintf(stderr, "running %-32s ", b.name.c_str());
    const BenchResult r = b.run(opt);
    std::fprintf(stderr, "%12.1f ns/op %10.3f allocs/op (%llu iters)\n",
                 r.ns_per_op, r.allocs_per_op,
                 static_cast<unsigned long long>(r.iterations));
    results.push_back(r);
  }
  write_json(opt, results);
  std::fprintf(stderr, "wrote %s\n", opt.out.c_str());
  return 0;
}
