// Regenerates Figs. 5e/5f: reaching time and emergency frequency as a
// function of the sensor uncertainty delta (messages-lost setting:
// information comes from the noisy onboard sensor only), conservative
// planner family.
//
// Expected shape: reaching time and emergency frequency grow with the
// noise; the information filter keeps the ultimate planner clearly ahead.

#include "bench_common.hpp"

int main() {
  const std::size_t sims = bench::sims_per_cell(400);
  const std::vector<double> deltas = cvsafe::eval::sensor_delta_grid();

  cvsafe::eval::SimConfig base = cvsafe::eval::SimConfig::paper_defaults();
  bench::run_fig5_sweep(
      "Fig. 5e/5f", "sensor delta", deltas,
      [&base](double d) {
        return cvsafe::eval::apply_setting(
            base, cvsafe::eval::CommSetting::kLost, d);
      },
      sims, "fig5_sensor.csv");
  return 0;
}
