// Regenerates Table I of the paper: the conservative pure NN planner
// kappa_n,cons vs its basic and ultimate compound planners across the
// three communication settings.
//
// Expected shape (paper, 80k sims/setting): basic ~= pure NN reaching
// time; ultimate clearly faster; all three 100% safe; emergency frequency
// grows with disturbance severity.

#include "bench_common.hpp"

int main() {
  const std::size_t sims = bench::sims_per_cell(2000);
  bench::run_planner_table(
      cvsafe::planners::PlannerStyle::kConservative,
      "Table I: conservative NN planner vs its compound planners", sims);
  return 0;
}
