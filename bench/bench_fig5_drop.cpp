// Regenerates Figs. 5c/5d: reaching time and emergency frequency as a
// function of the message drop probability p_drop (messages-delayed
// setting, dt_d = 0.25 s), conservative planner family.
//
// Expected shape: mild degradation with increasing drops (the sensor
// fallback bounds the damage); ultimate stays fastest; emergency
// frequency increases with the drop probability.

#include "bench_common.hpp"

int main() {
  const std::size_t sims = bench::sims_per_cell(400);
  const std::vector<double> drops = cvsafe::eval::drop_prob_grid();

  cvsafe::eval::SimConfig base = cvsafe::eval::SimConfig::paper_defaults();
  bench::run_fig5_sweep(
      "Fig. 5c/5d", "p_drop", drops,
      [&base](double p) {
        return cvsafe::eval::apply_setting(
            base, cvsafe::eval::CommSetting::kDelayed, p);
      },
      sims, "fig5_drop.csv");
  return 0;
}
