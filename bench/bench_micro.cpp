// Micro-benchmarks (google-benchmark): per-component latency of the
// runtime pipeline. The paper argues the compound planner "does not
// require extra resources for safety verification during runtime"; these
// numbers quantify the per-control-step cost of every stage.

#include <benchmark/benchmark.h>

#include <memory>

#include "cvsafe/eval/experiments.hpp"
#include "cvsafe/eval/simulation.hpp"
#include "cvsafe/filter/kalman.hpp"
#include "cvsafe/filter/reachability.hpp"
#include "cvsafe/planners/training.hpp"
#include "cvsafe/scenario/intersection.hpp"
#include "cvsafe/scenario/multi_vehicle.hpp"

using namespace cvsafe;

namespace {

const eval::SimConfig& config() {
  static const eval::SimConfig cfg = eval::SimConfig::paper_defaults();
  return cfg;
}

std::shared_ptr<const scenario::LeftTurnScenario> shared_scenario() {
  static const auto scn = config().make_scenario();
  return scn;
}

std::shared_ptr<const nn::Mlp> shared_net() {
  static const auto net = planners::cached_planner_network(
      *shared_scenario(), planners::PlannerStyle::kConservative);
  return net;
}

void BM_KalmanUpdate(benchmark::State& state) {
  filter::KalmanFilter kf({0.1, 1.0, 1.0, 1.0, 3.0, 64});
  util::Rng rng(1);
  double t = 0.0;
  for (auto _ : state) {
    sensing::SensorReading r{t, -50.0 + 9.0 * t + rng.uniform(-1.0, 1.0),
                             9.0 + rng.uniform(-1.0, 1.0),
                             rng.uniform(-1.0, 1.0)};
    kf.update(r);
    benchmark::DoNotOptimize(kf.state_at(t));
    t += 0.1;
  }
}
BENCHMARK(BM_KalmanUpdate);

void BM_KalmanMessageRollback(benchmark::State& state) {
  util::Rng rng(1);
  filter::KalmanFilter kf({0.1, 1.0, 1.0, 1.0, 3.0, 64});
  double t = 0.0;
  // Pre-fill history.
  for (int i = 0; i < 64; ++i) {
    kf.update({t, -50.0 + 9.0 * t, 9.0, 0.0});
    t += 0.1;
  }
  for (auto _ : state) {
    state.PauseTiming();
    filter::KalmanFilter copy = kf;
    const double t_k = t - rng.uniform(0.3, 3.0);
    state.ResumeTiming();
    copy.correct_with_message(t_k, -50.0 + 9.0 * t_k, 9.0, 0.0);
    benchmark::DoNotOptimize(copy.state_at(t));
  }
}
BENCHMARK(BM_KalmanMessageRollback);

void BM_ReachabilityPropagate(benchmark::State& state) {
  const vehicle::VehicleLimits limits{2.0, 15.0, -3.0, 3.0};
  const auto bounds = filter::StateBounds::exact(0.0, -50.0, 9.0);
  double dt = 0.05;
  for (auto _ : state) {
    benchmark::DoNotOptimize(filter::propagate(bounds, dt, limits));
    dt = dt < 3.0 ? dt + 0.05 : 0.05;
  }
}
BENCHMARK(BM_ReachabilityPropagate);

void BM_WindowConservative(benchmark::State& state) {
  const auto scn = shared_scenario();
  filter::StateEstimate est;
  est.t = 1.0;
  est.p = util::Interval{-45.0, -43.0};
  est.v = util::Interval{8.0, 10.0};
  est.p_hat = -44.0;
  est.v_hat = 9.0;
  est.valid = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(scn->c1_window_conservative(est));
  }
}
BENCHMARK(BM_WindowConservative);

void BM_WindowAggressive(benchmark::State& state) {
  const auto scn = shared_scenario();
  filter::StateEstimate est;
  est.t = 1.0;
  est.p = util::Interval{-45.0, -43.0};
  est.v = util::Interval{8.0, 10.0};
  est.p_hat = -44.0;
  est.v_hat = 9.0;
  est.valid = true;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scn->c1_window_aggressive(est, scenario::AggressiveBuffers{}));
  }
}
BENCHMARK(BM_WindowAggressive);

void BM_BoundaryCheck(benchmark::State& state) {
  const auto scn = shared_scenario();
  const util::Interval tau1{3.0, 6.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        scn->in_boundary_safe_set(1.0, -10.0, 9.0, tau1));
  }
}
BENCHMARK(BM_BoundaryCheck);

void BM_NnForward(benchmark::State& state) {
  const auto net = shared_net();
  const std::vector<double> x{-0.5, 0.6, 0.3, 0.7};
  for (auto _ : state) {
    benchmark::DoNotOptimize(net->predict(x));
  }
}
BENCHMARK(BM_NnForward);

void BM_AgentControlStep(benchmark::State& state) {
  const auto bp = eval::make_nn_blueprint(
      config(), planners::PlannerStyle::kConservative,
      eval::PlannerVariant::kUltimate);
  auto agent = bp.make();
  // Warm the estimators.
  agent->observe_sensor({0.0, -50.0, 9.0, 0.0});
  agent->observe_message(
      comm::Message{1, vehicle::VehicleSnapshot{0.0, {-50.0, 9.0}, 0.0}});
  double t = 0.1;
  vehicle::VehicleState ego{-30.0, 8.0};
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent->act(t, ego));
    t += 0.05;
    if (t > 20.0) t = 0.1;
  }
}
BENCHMARK(BM_AgentControlStep);

void BM_MultiVehicleBoundaryCheck(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const scenario::MultiVehicleLeftTurn math(shared_scenario());
  std::vector<filter::StateEstimate> cars;
  for (std::size_t i = 0; i < n; ++i) {
    filter::StateEstimate est;
    est.t = 1.0;
    est.p = util::Interval{-45.0 - 25.0 * static_cast<double>(i),
                           -43.0 - 25.0 * static_cast<double>(i)};
    est.v = util::Interval{8.0, 10.0};
    est.p_hat = est.p.mid();
    est.v_hat = 9.0;
    est.valid = true;
    cars.push_back(est);
  }
  const util::IntervalSet tau = math.conservative_windows(cars);
  for (auto _ : state) {
    benchmark::DoNotOptimize(math.in_boundary_safe_set(1.0, -10.0, 9.0, tau));
  }
}
BENCHMARK(BM_MultiVehicleBoundaryCheck)->Arg(1)->Arg(4)->Arg(16);

void BM_IntersectionBoundaryCheck(benchmark::State& state) {
  const scenario::IntersectionScenario scn(
      scenario::IntersectionGeometry{}, config().ego_limits, 0.05);
  scenario::IntersectionWorld w;
  w.t = 1.0;
  w.ego = {-10.0, 9.0};
  w.tau_a = util::IntervalSet{{3.0, 5.0}, {9.0, 11.0}};
  w.tau_b = util::IntervalSet{{2.5, 4.0}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(scn.in_boundary_safe_set(w));
  }
}
BENCHMARK(BM_IntersectionBoundaryCheck);

void BM_FullEpisode(benchmark::State& state) {
  const auto bp = eval::make_nn_blueprint(
      config(), planners::PlannerStyle::kConservative,
      eval::PlannerVariant::kUltimate);
  std::uint64_t seed = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        eval::run_left_turn_simulation(config(), bp, seed++));
  }
}
BENCHMARK(BM_FullEpisode);

}  // namespace
