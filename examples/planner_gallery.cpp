// Fig. 1 gallery: the six planner behaviors the paper's schematic
// contrasts, reproduced as actual trajectories on one shared workload —
//   (a) conservative pure NN        safe but slow,
//   (b) aggressive pure NN          fast but enters the unsafe set,
//   (c) basic compound              (b) + monitor/emergency: safe,
//   (d) basic + information filter  sharper estimates,
//   (e) basic + aggressive set      bolder planning, still safe,
//   (f) ultimate compound           all techniques combined.
// Each run writes a CSV trace for plotting.
//
// Usage: planner_gallery [seed] [out_dir]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "cvsafe/eval/experiments.hpp"
#include "cvsafe/util/csv.hpp"

using namespace cvsafe;

namespace {

void write_trace(const eval::SimTrace& trace, const std::string& path) {
  util::CsvWriter csv(path);
  if (!csv.ok()) return;
  csv.header({"t", "ego_p", "ego_v", "c1_u", "emergency"});
  for (std::size_t i = 0; i < trace.ego.size(); ++i) {
    csv.row({trace.ego[i].t, trace.ego[i].state.p, trace.ego[i].state.v,
             trace.c1[i].state.p, trace.emergency_flags[i] ? 1.0 : 0.0});
  }
}

}  // namespace

int main(int argc, char** argv) {
  // Default seed chosen so the aggressive pure NN actually collides —
  // the contrast Fig. 1 is about.
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 6;
  const std::string out_dir = argc > 2 ? argv[2] : ".";

  eval::SimConfig config = eval::SimConfig::paper_defaults();
  config.comm = comm::CommConfig::delayed(0.4, 0.25);

  struct Entry {
    const char* tag;
    const char* description;
    planners::PlannerStyle style;
    eval::AgentConfig agent;
  };
  eval::AgentConfig basic_filter = eval::AgentConfig::basic_compound();
  basic_filter.use_info_filter = true;
  eval::AgentConfig basic_aggr = eval::AgentConfig::basic_compound();
  basic_aggr.use_aggressive = true;

  const Entry entries[] = {
      {"a", "conservative pure NN", planners::PlannerStyle::kConservative,
       eval::AgentConfig::pure_nn()},
      {"b", "aggressive pure NN", planners::PlannerStyle::kAggressive,
       eval::AgentConfig::pure_nn()},
      {"c", "basic compound (aggr NN)", planners::PlannerStyle::kAggressive,
       eval::AgentConfig::basic_compound()},
      {"d", "basic + information filter",
       planners::PlannerStyle::kAggressive, basic_filter},
      {"e", "basic + aggressive unsafe set",
       planners::PlannerStyle::kAggressive, basic_aggr},
      {"f", "ultimate compound", planners::PlannerStyle::kAggressive,
       eval::AgentConfig::ultimate_compound()},
  };

  std::printf("Fig. 1 gallery on one shared workload (seed %llu, %s)\n\n",
              static_cast<unsigned long long>(seed),
              config.comm.label().c_str());
  std::printf("%-4s %-32s %-9s %-8s %-8s %-10s\n", "fig", "planner",
              "collided", "reached", "t_r", "emergency");

  for (const auto& e : entries) {
    eval::AgentBlueprint bp;
    bp.scenario = config.make_scenario();
    bp.net = planners::cached_planner_network(*bp.scenario, e.style);
    bp.sensor = config.sensor;
    bp.config = e.agent;
    bp.name = e.description;

    eval::SimTrace trace;
    const auto r = eval::run_left_turn_simulation(config, bp, seed, &trace);
    std::printf("(%s)  %-32s %-9s %-8s %-8.2f %zu/%zu\n", e.tag,
                e.description, r.collided ? "YES" : "no",
                r.reached ? "yes" : "no", r.reach_time, r.emergency_steps,
                r.steps);
    write_trace(trace,
                out_dir + "/gallery_" + e.tag + ".csv");
  }
  std::printf("\ntraces written to %s/gallery_[a-f].csv\n", out_dir.c_str());
  return 0;
}
