// Tutorial: wrapping YOUR OWN scenario with the framework, from scratch.
//
// The compound planner is generic over a World type plus two interfaces
// (PlannerBase, SafetyModelBase). This example builds a minimal new
// scenario — a pedestrian crossing — in ~100 lines: the ego approaches a
// crosswalk that a pedestrian may occupy during some time window, known
// only as an interval (e.g. from an infrastructure message). A cruise
// planner that ignores the pedestrian entirely becomes provably safe
// once wrapped.
//
// This mirrors how the library's left-turn and lane-change scenarios are
// built; use it as the template for your own.

#include <cstdio>
#include <memory>

#include "cvsafe/core/compound_planner.hpp"
#include "cvsafe/util/interval.hpp"
#include "cvsafe/util/kinematics.hpp"
#include "cvsafe/util/rng.hpp"
#include "cvsafe/vehicle/dynamics.hpp"

namespace {

using namespace cvsafe;

// ---- 1. The world your planners observe -----------------------------------
struct CrossingWorld {
  double t = 0.0;
  vehicle::VehicleState ego;
  util::Interval pedestrian;  ///< time window the crosswalk may be occupied
};

// ---- 2. Scenario constants -------------------------------------------------
constexpr double kCrosswalkFront = 30.0;  ///< [m]
constexpr double kCrosswalkBack = 33.0;
constexpr double kTarget = 45.0;
const vehicle::VehicleLimits kEgoLimits{0.0, 14.0, -5.0, 2.5};
constexpr double kDt = 0.05;

// ---- 3. The embedded planner (deliberately oblivious) ---------------------
class CruisePlanner final : public core::PlannerBase<CrossingWorld> {
 public:
  double plan(const CrossingWorld& world) override {
    return 2.0 * (12.0 - world.ego.v);  // track 12 m/s, ignore pedestrians
  }
  std::string_view name() const override { return "cruise"; }
};

// ---- 4. The safety model: X_u, X_b, kappa_e -------------------------------
//
// Deliberately the SIMPLEST sound design: while the pedestrian window has
// not yet passed, the ego must retain the ability to stop short of the
// crosswalk, so X_b is the last-moment-to-brake band — no "pass ahead of
// the pedestrian" credit. (Allowing pass-ahead safely requires monitoring
// committed states too; see LeftTurnScenario::resolvable for the full
// treatment and DESIGN.md §3 for why the naive version is a trap.)
class CrossingSafetyModel final
    : public core::SafetyModelBase<CrossingWorld> {
 public:
  static bool window_active(const CrossingWorld& w) {
    return !w.pedestrian.empty() && w.pedestrian.hi > w.t;
  }

  bool in_unsafe_set(const CrossingWorld& w) const override {
    // Committed to the crosswalk (cannot stop short) while the pedestrian
    // may still be on it.
    const double d_b = util::braking_distance(w.ego.v, kEgoLimits.a_min);
    return window_active(w) && w.ego.p <= kCrosswalkBack &&
           w.ego.p + d_b > kCrosswalkFront;
  }

  bool in_boundary_safe_set(const CrossingWorld& w) const override {
    if (!window_active(w)) return false;
    if (w.ego.p > kCrosswalkBack) return false;
    // Last-moment-to-brake band: one more step of any feasible control
    // could make stopping short impossible.
    const double slack = kCrosswalkFront -
                         util::braking_distance(w.ego.v, kEgoLimits.a_min) -
                         w.ego.p;
    const double margin =
        (w.ego.v * kDt + 0.5 * kEgoLimits.a_max * kDt * kDt) *
        (1.0 - kEgoLimits.a_max / kEgoLimits.a_min);
    return slack >= 0.0 && slack < margin;
  }

  double emergency_accel(const CrossingWorld& w) const override {
    if (w.ego.p > kCrosswalkFront) return kEgoLimits.a_max;  // clear it
    const double gap = kCrosswalkFront - w.ego.p;
    if (gap <= 1e-9) return w.ego.v <= 1e-9 ? 0.0 : kEgoLimits.a_min;
    return std::max(kEgoLimits.a_min,
                    -(w.ego.v * w.ego.v) / (2.0 * gap));
  }

  std::string boundary_reason(const CrossingWorld&) const override {
    return "pedestrian window";
  }
};

// ---- 5. Close the loop ------------------------------------------------------
struct Outcome {
  bool hit = false;
  bool reached = false;
  double reach_time = 0.0;
  std::size_t emergency = 0;
};

Outcome run(bool wrapped, std::uint64_t seed) {
  util::Rng rng(seed);
  // The pedestrian occupies the crosswalk during a random window.
  const double ped_start = rng.uniform(0.5, 4.0);
  const util::Interval pedestrian{ped_start,
                                  ped_start + rng.uniform(1.0, 3.0)};

  auto cruise = std::make_shared<CruisePlanner>();
  std::shared_ptr<core::PlannerBase<CrossingWorld>> planner = cruise;
  core::CompoundPlanner<CrossingWorld>* compound = nullptr;
  if (wrapped) {
    auto c = std::make_shared<core::CompoundPlanner<CrossingWorld>>(
        cruise, std::make_shared<CrossingSafetyModel>());
    compound = c.get();
    planner = c;
  }

  vehicle::DoubleIntegrator dyn(kEgoLimits);
  vehicle::VehicleState ego{0.0, rng.uniform(8.0, 12.0)};
  Outcome out;
  for (int step = 0; step < 600; ++step) {
    const double t = step * kDt;
    CrossingWorld world{t, ego, pedestrian};
    const double a = planner->plan(world);
    if (compound != nullptr && compound->last_was_emergency()) {
      ++out.emergency;
    }
    ego = dyn.step(ego, a, kDt);
    const bool on_crosswalk =
        ego.p > kCrosswalkFront && ego.p < kCrosswalkBack;
    if (on_crosswalk && pedestrian.contains(t + kDt)) {
      out.hit = true;
      break;
    }
    if (ego.p >= kTarget) {
      out.reached = true;
      out.reach_time = t + kDt;
      break;
    }
  }
  return out;
}

}  // namespace

int main() {
  std::printf("%-10s %-6s %-5s %-8s %-8s %s\n", "planner", "seed", "hit",
              "reached", "t_r", "emergency steps");
  std::size_t hits_raw = 0;
  std::size_t hits_wrapped = 0;
  for (std::uint64_t seed = 1; seed <= 15; ++seed) {
    const Outcome raw = run(false, seed);
    const Outcome wrapped = run(true, seed);
    hits_raw += raw.hit;
    hits_wrapped += wrapped.hit;
    std::printf("%-10s %-6llu %-5s %-8s %-8.2f -\n", "raw",
                static_cast<unsigned long long>(seed),
                raw.hit ? "YES" : "no", raw.reached ? "yes" : "no",
                raw.reach_time);
    std::printf("%-10s %-6llu %-5s %-8s %-8.2f %zu\n", "wrapped",
                static_cast<unsigned long long>(seed),
                wrapped.hit ? "YES" : "no", wrapped.reached ? "yes" : "no",
                wrapped.reach_time, wrapped.emergency);
  }
  std::printf("\npedestrian hits: raw %zu/15, wrapped %zu/15\n", hits_raw,
              hits_wrapped);
  return hits_wrapped == 0 ? 0 : 1;
}
