// Second case study: the generic framework wrapped around an aggressive
// merge planner in the lane-change scenario of Section II-A's motivating
// example. Demonstrates two seams at once: the compound planner is
// scenario-agnostic, and a custom embedded planner drops into the shared
// closed-loop engine through LaneChangeAdapter::set_planner_factory —
// no hand-rolled simulation loop required.

#include <cstdio>
#include <memory>

#include "cvsafe/sim/lane_change.hpp"

namespace {

using namespace cvsafe;
using scenario::LaneChangeWorld;

/// An over-aggressive merge planner: full throttle toward the target,
/// ignoring the gap constraint entirely. On its own it tailgates; wrapped
/// in the compound planner it becomes safe.
class FullThrottlePlanner final : public core::PlannerBase<LaneChangeWorld> {
 public:
  double plan(const LaneChangeWorld&) override { return 3.0; }
  std::string_view name() const override { return "full_throttle"; }
};

sim::LaneChangeAdapter make_adapter(bool use_compound) {
  sim::LaneChangeSimConfig config;
  config.comm = comm::CommConfig::delayed(0.3, 0.25);
  config.c1_gap_min = 2.0;   // leading vehicle starts 2-20 m past the
  config.c1_gap_max = 20.0;  // merge point at 5-9 m/s
  config.c1_v_min = 5.0;
  config.c1_v_max = 9.0;

  sim::LaneChangePlannerConfig planner_cfg;
  planner_cfg.use_compound = use_compound;

  sim::LaneChangeAdapter adapter(config, planner_cfg);
  adapter.set_planner_factory([](const sim::LaneChangeSimConfig&) {
    return std::make_shared<FullThrottlePlanner>();
  });
  return adapter;
}

}  // namespace

int main() {
  const auto raw_adapter = make_adapter(/*use_compound=*/false);
  const auto compound_adapter = make_adapter(/*use_compound=*/true);

  std::printf("%-18s %-6s %-9s %-8s %-8s %s\n", "planner", "seed",
              "violated", "reached", "t_r", "emergency steps");
  std::size_t violations_raw = 0;
  std::size_t violations_compound = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const sim::RunResult raw = sim::run_episode(raw_adapter, seed);
    const sim::RunResult safe = sim::run_episode(compound_adapter, seed);
    violations_raw += raw.collided ? 1 : 0;
    violations_compound += safe.collided ? 1 : 0;
    std::printf("%-18s %-6llu %-9s %-8s %-8.2f -\n", "full throttle",
                static_cast<unsigned long long>(seed),
                raw.collided ? "YES" : "no", raw.reached ? "yes" : "no",
                raw.reach_time);
    std::printf("%-18s %-6llu %-9s %-8s %-8.2f %zu/%zu\n", "compound",
                static_cast<unsigned long long>(seed),
                safe.collided ? "YES" : "no", safe.reached ? "yes" : "no",
                safe.reach_time, safe.emergency_steps, safe.steps);
  }
  std::printf("\nviolations: raw planner %zu/12, compound planner %zu/12\n",
              violations_raw, violations_compound);
  return violations_compound == 0 ? 0 : 1;
}
