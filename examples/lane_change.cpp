// Second case study: the generic framework wrapped around an aggressive
// merge planner in the lane-change scenario of Section II-A's motivating
// example. Demonstrates that the compound planner is scenario-agnostic.

#include <cstdio>
#include <memory>

#include "cvsafe/comm/channel.hpp"
#include "cvsafe/core/compound_planner.hpp"
#include "cvsafe/filter/info_filter.hpp"
#include "cvsafe/scenario/lane_change.hpp"
#include "cvsafe/sensing/sensor.hpp"
#include "cvsafe/vehicle/accel_profile.hpp"
#include "cvsafe/vehicle/dynamics.hpp"

namespace {

using namespace cvsafe;
using scenario::LaneChangeWorld;

/// An over-aggressive merge planner: full throttle toward the target,
/// ignoring the gap constraint entirely. On its own it tailgates; wrapped
/// in the compound planner it becomes safe.
class FullThrottlePlanner final : public core::PlannerBase<LaneChangeWorld> {
 public:
  double plan(const LaneChangeWorld&) override { return 3.0; }
  std::string_view name() const override { return "full_throttle"; }
};

struct EpisodeResult {
  bool violated = false;
  bool reached = false;
  double reach_time = 0.0;
  std::size_t emergency_steps = 0;
  std::size_t steps = 0;
};

EpisodeResult run_episode(bool use_compound, std::uint64_t seed) {
  const scenario::LaneChangeGeometry geometry;
  const vehicle::VehicleLimits ego_limits{0.0, 18.0, -6.0, 3.0};
  const vehicle::VehicleLimits c1_limits{3.0, 15.0, -3.0, 2.0};
  const double dt_c = 0.05;
  auto scn = std::make_shared<const scenario::LaneChangeScenario>(
      geometry, ego_limits, c1_limits, dt_c);

  util::Rng rng(seed);
  vehicle::DoubleIntegrator ego_dyn(ego_limits);
  vehicle::DoubleIntegrator c1_dyn(c1_limits);
  vehicle::VehicleState ego{geometry.ego_start, 12.0};
  vehicle::VehicleState c1{geometry.merge_point + rng.uniform(2.0, 20.0),
                           rng.uniform(5.0, 9.0)};

  const sensing::SensorConfig sensor_cfg = sensing::SensorConfig::uniform(0.8);
  sensing::Sensor sensor(sensor_cfg);
  comm::Channel channel(comm::CommConfig::delayed(0.3, 0.25));
  filter::InformationFilter estimator(c1_limits, sensor_cfg,
                                      filter::InfoFilterOptions::ultimate());

  auto inner = std::make_shared<FullThrottlePlanner>();
  std::shared_ptr<core::PlannerBase<LaneChangeWorld>> planner = inner;
  core::CompoundPlanner<LaneChangeWorld>* compound = nullptr;
  if (use_compound) {
    auto model = std::make_shared<scenario::LaneChangeSafetyModel>(scn);
    auto c = std::make_shared<core::CompoundPlanner<LaneChangeWorld>>(
        inner, model);
    compound = c.get();
    planner = c;
  }

  const auto total_steps = static_cast<std::size_t>(30.0 / dt_c);
  const vehicle::AccelProfile profile = vehicle::AccelProfile::random(
      total_steps, dt_c, c1.v, c1_limits, {}, rng);

  EpisodeResult result;
  for (std::size_t step = 0; step < total_steps; ++step) {
    const double t = static_cast<double>(step) * dt_c;
    const double a1 = profile.at(step);
    const vehicle::VehicleSnapshot snap{t, c1, a1};
    channel.offer(comm::Message{1, snap}, rng);
    for (const auto& msg : channel.collect(t)) estimator.on_message(msg);
    if (const auto r = sensor.sense(snap, rng)) estimator.on_sensor(*r);

    LaneChangeWorld world;
    world.t = t;
    world.ego = ego;
    world.c1_monitor = estimator.estimate(t);
    world.c1_nn = world.c1_monitor;
    const double a0 = planner->plan(world);
    ++result.steps;
    if (compound != nullptr && compound->last_was_emergency()) {
      ++result.emergency_steps;
    }

    ego = ego_dyn.step(ego, a0, dt_c);
    c1 = c1_dyn.step(c1, a1, dt_c);
    if (scn->violation(ego.p, c1.p)) {
      result.violated = true;
      break;
    }
    if (scn->reached_target(ego.p)) {
      result.reached = true;
      result.reach_time = t + dt_c;
      break;
    }
  }
  return result;
}

}  // namespace

int main() {
  std::printf("%-18s %-6s %-9s %-8s %-8s %s\n", "planner", "seed",
              "violated", "reached", "t_r", "emergency steps");
  std::size_t violations_raw = 0;
  std::size_t violations_compound = 0;
  for (std::uint64_t seed = 1; seed <= 12; ++seed) {
    const auto raw = run_episode(/*use_compound=*/false, seed);
    const auto safe = run_episode(/*use_compound=*/true, seed);
    violations_raw += raw.violated ? 1 : 0;
    violations_compound += safe.violated ? 1 : 0;
    std::printf("%-18s %-6llu %-9s %-8s %-8.2f -\n", "full throttle",
                static_cast<unsigned long long>(seed),
                raw.violated ? "YES" : "no", raw.reached ? "yes" : "no",
                raw.reach_time);
    std::printf("%-18s %-6llu %-9s %-8s %-8.2f %zu/%zu\n", "compound",
                static_cast<unsigned long long>(seed),
                safe.violated ? "YES" : "no", safe.reached ? "yes" : "no",
                safe.reach_time, safe.emergency_steps, safe.steps);
  }
  std::printf("\nviolations: raw planner %zu/12, compound planner %zu/12\n",
              violations_raw, violations_compound);
  return violations_compound == 0 ? 0 : 1;
}
