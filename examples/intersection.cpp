// Third case study: crossing a two-lane perpendicular road (the
// intersection-management problem the paper cites as motivation). The
// ego must clear TWO conflict zones in sequence; the median gap is a
// legal holding position. A reckless cruise planner becomes safe when
// wrapped, and the switch log shows where the monitor held it.
//
// Usage: intersection [episodes]

#include <cstdio>
#include <cstdlib>

#include "cvsafe/eval/intersection_sim.hpp"

int main(int argc, char** argv) {
  using namespace cvsafe;
  const std::size_t episodes =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 15;

  eval::IntersectionSimConfig config;
  config.comm = comm::CommConfig::delayed(0.3, 0.25);

  std::printf("Two-zone intersection crossing (%s)\n\n",
              config.comm.label().c_str());
  std::printf("%-10s %-6s %-9s %-8s %-8s %s\n", "planner", "seed",
              "collided", "reached", "t_r", "emergency");

  std::size_t collisions_raw = 0;
  std::size_t collisions_wrapped = 0;
  for (std::uint64_t seed = 1; seed <= episodes; ++seed) {
    const auto raw = eval::run_intersection_simulation(config, false, seed);
    const auto safe = eval::run_intersection_simulation(config, true, seed);
    collisions_raw += raw.collided;
    collisions_wrapped += safe.collided;
    std::printf("%-10s %-6llu %-9s %-8s %-8.2f -\n", "raw",
                static_cast<unsigned long long>(seed),
                raw.collided ? "YES" : "no", raw.reached ? "yes" : "no",
                raw.reach_time);
    std::printf("%-10s %-6llu %-9s %-8s %-8.2f %zu/%zu\n", "wrapped",
                static_cast<unsigned long long>(seed),
                safe.collided ? "YES" : "no", safe.reached ? "yes" : "no",
                safe.reach_time, safe.emergency_steps, safe.steps);
  }
  std::printf("\ncollisions: raw %zu/%zu, wrapped %zu/%zu\n", collisions_raw,
              episodes, collisions_wrapped, episodes);
  return collisions_wrapped == 0 ? 0 : 1;
}
