// Full case study: one traced unprotected-left-turn episode per planner
// variant on the same workload, with a per-step trace written to CSV.
//
// Usage: left_turn_study [seed] [trace_dir]

#include <cstdio>
#include <cstdlib>
#include <string>

#include "cvsafe/eval/experiments.hpp"
#include "cvsafe/eval/simulation.hpp"
#include "cvsafe/util/csv.hpp"

namespace {

void describe(const cvsafe::eval::SimResult& r,
              const cvsafe::eval::SimTrace& trace, const std::string& name,
              double dt_c) {
  std::size_t emergency = 0;
  for (bool e : trace.emergency_flags) emergency += e ? 1 : 0;
  std::printf("%-24s collided=%-3s reached=%-3s t_r=%-7.3f eta=%-8.4f "
              "emergency=%zu/%zu steps\n",
              name.c_str(), r.collided ? "yes" : "no",
              r.reached ? "yes" : "no", r.reach_time, r.eta, emergency,
              trace.emergency_flags.size());
  for (const auto& sw : trace.switches) {
    std::printf("    t=%-6.2f %s%s%s\n",
                static_cast<double>(sw.step) * dt_c,
                sw.to_emergency ? "kappa_n -> kappa_e" : "kappa_e -> kappa_n",
                sw.to_emergency ? "  reason: " : "",
                sw.to_emergency ? sw.reason.c_str() : "");
  }
}

void write_trace(const cvsafe::eval::SimTrace& trace,
                 const std::string& path) {
  cvsafe::util::CsvWriter csv(path);
  if (!csv.ok()) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  csv.header({"t", "ego_p", "ego_v", "ego_a_cmd", "c1_u", "c1_v",
              "emergency", "tau1_lo", "tau1_hi"});
  for (std::size_t i = 0; i < trace.ego.size(); ++i) {
    csv.row({trace.ego[i].t, trace.ego[i].state.p, trace.ego[i].state.v,
             trace.accel_commands[i], trace.c1[i].state.p,
             trace.c1[i].state.v, trace.emergency_flags[i] ? 1.0 : 0.0,
             trace.tau1_lo[i], trace.tau1_hi[i]});
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace cvsafe;
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  const std::string trace_dir = argc > 2 ? argv[2] : ".";

  eval::SimConfig config = eval::SimConfig::paper_defaults();
  config.comm = comm::CommConfig::delayed(/*drop_prob=*/0.4, /*delay=*/0.25);

  std::printf("Unprotected left turn, seed %llu, %s\n\n",
              static_cast<unsigned long long>(seed),
              config.comm.label().c_str());

  for (const auto style : {planners::PlannerStyle::kConservative,
                           planners::PlannerStyle::kAggressive}) {
    std::printf("--- %s NN planner ---\n",
                planners::planner_style_name(style));
    for (const auto variant :
         {eval::PlannerVariant::kPureNn, eval::PlannerVariant::kBasic,
          eval::PlannerVariant::kUltimate}) {
      const auto bp = eval::make_nn_blueprint(config, style, variant);
      eval::SimTrace trace;
      const auto r = eval::run_left_turn_simulation(config, bp, seed, &trace);
      describe(r, trace, bp.name, config.dt_c);
      const std::string fname =
          trace_dir + "/trace_" +
          std::string(planners::planner_style_name(style)) + "_" +
          std::to_string(static_cast<int>(variant)) + ".csv";
      write_trace(trace, fname);
    }
    std::printf("\n");
  }
  std::printf("Per-step traces written to %s/trace_*.csv\n",
              trace_dir.c_str());
  return 0;
}
