// Quickstart: wrap a trained NN planner in the safety-guaranteed compound
// planner and run one unprotected-left-turn episode under message delay.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "cvsafe/eval/experiments.hpp"
#include "cvsafe/eval/simulation.hpp"

int main() {
  using namespace cvsafe;

  // 1. Scenario configuration (paper Section V defaults: ego starts 30 m
  //    before the conflict zone; oncoming traffic 50.5-60 m away).
  eval::SimConfig config = eval::SimConfig::paper_defaults();
  config.comm = comm::CommConfig::delayed(/*drop_prob=*/0.3,
                                          /*delay=*/0.25);

  // 2. An aggressive NN planner (trained by imitation; cached on disk) —
  //    unsafe on its own — wrapped in the ultimate compound planner.
  const eval::AgentBlueprint pure = eval::make_nn_blueprint(
      config, planners::PlannerStyle::kAggressive,
      eval::PlannerVariant::kPureNn);
  const eval::AgentBlueprint safe = eval::make_nn_blueprint(
      config, planners::PlannerStyle::kAggressive,
      eval::PlannerVariant::kUltimate);

  // 3. Paired episodes: same seed -> same oncoming vehicle behavior, same
  //    message drops, same sensor noise.
  std::printf("%-28s %-10s %-10s %-8s %-10s\n", "planner", "collided",
              "reached", "t_r", "eta");
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    for (const auto* bp : {&pure, &safe}) {
      const eval::SimResult r =
          eval::run_left_turn_simulation(config, *bp, seed);
      std::printf("%-28s %-10s %-10s %-8.3f %-10.4f\n", bp->name.c_str(),
                  r.collided ? "yes" : "no", r.reached ? "yes" : "no",
                  r.reach_time, r.eta);
    }
  }
  std::printf(
      "\nThe compound planner (\"ultimate\") never collides; the pure NN "
      "planner does.\n");
  return 0;
}
