// Offline certification of the safety assumptions for a configuration
// (geometry + actuation limits): Eq. 4 on a dense grid, emergency
// resolvability invariance, window soundness, and the monotonicity of
// the filtered window bounds. Run this after changing any scenario
// parameter — the runtime guarantee is only as good as these properties.

#include <cstdio>

#include "cvsafe/eval/simulation.hpp"
#include "cvsafe/verify/certify.hpp"

namespace {

int report(const cvsafe::verify::Certificate& cert) {
  std::printf("%-72s %8zu checks  %s\n", cert.property.c_str(), cert.checked,
              cert.holds() ? "CERTIFIED" : "FAILED");
  for (const auto& ce : cert.counterexamples) {
    std::printf("    counterexample: t=%.3f p0=%.3f v0=%.3f tau=[%.3f,%.3f] "
                "%s\n",
                ce.t, ce.p0, ce.v0, ce.tau1.lo, ce.tau1.hi,
                ce.detail.c_str());
  }
  return cert.holds() ? 0 : 1;
}

}  // namespace

int main() {
  using namespace cvsafe;
  const eval::SimConfig config = eval::SimConfig::paper_defaults();
  const auto scenario = config.make_scenario();
  util::Rng rng(20230417);

  int failures = 0;
  failures += report(verify::certify_emergency_eq4(*scenario));
  failures += report(
      verify::certify_resolvability_invariance(*scenario, 20000, rng));
  failures += report(verify::certify_window_soundness(*scenario, 300, rng));
  failures += report(verify::certify_filter_monotonicity(
      *scenario, config.sensor, comm::CommConfig::delayed(0.5, 0.25),
      200, rng));
  failures += report(verify::certify_filter_monotonicity(
      *scenario, sensing::SensorConfig::uniform(4.8),
      comm::CommConfig::messages_lost(), 200, rng));

  // The other two scenario instantiations.
  const scenario::LaneChangeScenario lane_change(
      scenario::LaneChangeGeometry{}, vehicle::VehicleLimits{0, 18, -6, 3},
      vehicle::VehicleLimits{3, 15, -3, 2}, config.dt_c);
  failures += report(verify::certify_lane_change_eq4(lane_change, 20000,
                                                     rng));
  const scenario::IntersectionScenario intersection(
      scenario::IntersectionGeometry{}, config.ego_limits, config.dt_c);
  failures += report(
      verify::certify_intersection_invariance(intersection, 20000, rng));

  if (failures == 0) {
    std::printf("\nAll safety assumptions certified for this "
                "configuration.\n");
  } else {
    std::printf("\n%d certificates FAILED — the runtime guarantee does not "
                "hold for this configuration.\n",
                failures);
  }
  return failures == 0 ? 0 : 1;
}
