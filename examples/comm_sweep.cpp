// Sweeps the message drop probability and reports how the compound
// planner's efficiency and emergency usage respond (the Fig. 5c/5d study
// at example scale), writing the series to CSV.
//
// Usage: comm_sweep [sims_per_point] [csv_path]

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>

#include "cvsafe/eval/experiments.hpp"
#include "cvsafe/util/csv.hpp"
#include "cvsafe/util/table.hpp"

int main(int argc, char** argv) {
  using namespace cvsafe;
  const std::size_t sims =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 100;
  const std::string csv_path = argc > 2 ? argv[2] : "comm_sweep.csv";

  eval::SimConfig base = eval::SimConfig::paper_defaults();
  const auto bp_pure = eval::make_nn_blueprint(
      base, planners::PlannerStyle::kConservative,
      eval::PlannerVariant::kPureNn);
  const auto bp_ult = eval::make_nn_blueprint(
      base, planners::PlannerStyle::kConservative,
      eval::PlannerVariant::kUltimate);

  util::Table table("Reaching time vs message drop probability (" +
                    std::to_string(sims) + " sims/point)");
  table.set_header({"p_drop", "pure NN t_r", "ultimate t_r",
                    "ultimate emergency"});
  util::CsvWriter csv(csv_path);
  csv.header({"p_drop", "pure_reach_time", "ultimate_reach_time",
              "ultimate_emergency_freq"});

  for (double p_drop : {0.0, 0.2, 0.4, 0.6, 0.8, 0.95}) {
    const eval::SimConfig cfg = eval::apply_setting(
        base, eval::CommSetting::kDelayed, p_drop);
    const auto pure = eval::run_batch(cfg, bp_pure, sims, 1);
    const auto ult = eval::run_batch(cfg, bp_ult, sims, 1);
    table.add_row({util::Table::num(p_drop, 2),
                   util::Table::num(pure.mean_reach_time) + "s",
                   util::Table::num(ult.mean_reach_time) + "s",
                   util::Table::percent(ult.emergency_frequency())});
    csv.row({p_drop, pure.mean_reach_time, ult.mean_reach_time,
             ult.emergency_frequency()});
  }
  std::cout << table;
  std::printf("series written to %s\n", csv_path.c_str());
  return 0;
}
