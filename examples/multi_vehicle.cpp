// Multi-vehicle extension: the ego turns left across a PLATOON of
// oncoming vehicles (the paper's general n-vehicle system model). The
// conflict-zone occupancy becomes a union of passing windows; the
// compound planner passes ahead of the platoon, threads the gap the
// monitor deems safe, or yields past the last vehicle.
//
// Usage: multi_vehicle [num_oncoming] [episodes]

#include <cstdio>
#include <cstdlib>

#include "cvsafe/eval/multi_simulation.hpp"
#include "cvsafe/planners/training.hpp"

int main(int argc, char** argv) {
  using namespace cvsafe;
  const std::size_t num_oncoming =
      argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 3;
  const std::size_t episodes =
      argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 20;

  eval::SimConfig config = eval::SimConfig::paper_defaults();
  config.horizon = 40.0;  // yielding past a platoon takes longer
  config.comm = comm::CommConfig::delayed(0.3, 0.25);

  eval::MultiVehicleConfig multi;
  multi.num_oncoming = num_oncoming;

  eval::MultiAgentSetup setup;
  setup.scenario = config.make_scenario();
  setup.net = planners::cached_planner_network(
      *setup.scenario, planners::PlannerStyle::kAggressive);

  std::printf("Unprotected left turn across %zu oncoming vehicles (%s)\n\n",
              num_oncoming, config.comm.label().c_str());
  std::printf("%-6s %-9s %-8s %-8s %-10s\n", "seed", "collided", "reached",
              "t_r", "emergency");

  std::size_t collisions = 0;
  std::size_t reached = 0;
  for (std::uint64_t seed = 1; seed <= episodes; ++seed) {
    const auto r =
        eval::run_multi_left_turn_simulation(config, multi, setup, seed);
    collisions += r.collided ? 1 : 0;
    reached += r.reached ? 1 : 0;
    std::printf("%-6llu %-9s %-8s %-8.2f %zu/%zu\n",
                static_cast<unsigned long long>(seed),
                r.collided ? "YES" : "no", r.reached ? "yes" : "no",
                r.reach_time, r.emergency_steps, r.steps);
  }
  std::printf("\n%zu/%zu episodes reached the target, %zu collisions\n",
              reached, episodes, collisions);
  return collisions == 0 ? 0 : 1;
}
