// Trains the two NN planners (conservative / aggressive) from scratch by
// imitation of the analytic experts and saves them to disk.
//
// Usage: train_planner [output_dir]

#include <cstdio>
#include <string>

#include "cvsafe/eval/simulation.hpp"
#include "cvsafe/nn/optimizer.hpp"
#include "cvsafe/nn/serialize.hpp"
#include "cvsafe/planners/training.hpp"

int main(int argc, char** argv) {
  using namespace cvsafe;
  const std::string out_dir = argc > 1 ? argv[1] : ".";

  const eval::SimConfig config = eval::SimConfig::paper_defaults();
  const auto scenario = config.make_scenario();

  for (const auto style : {planners::PlannerStyle::kConservative,
                           planners::PlannerStyle::kAggressive}) {
    const char* style_name = planners::planner_style_name(style);
    std::printf("=== training %s planner ===\n", style_name);

    planners::TrainingOptions options;
    util::Rng rng(options.seed);
    const auto expert_params = planners::expert_params_for(style);
    const planners::ExpertPolicy expert(scenario, expert_params);
    const planners::InputEncoding encoding;

    const nn::Dataset full = planners::generate_imitation_dataset(
        *scenario, expert, encoding, options.num_samples, rng);
    const auto [train_set, val_set] = full.split(0.1);
    std::printf("dataset: %zu train / %zu validation samples\n",
                train_set.size(), val_set.size());

    nn::Mlp net(options.spec, rng);
    std::printf("network: %zu parameters\n", net.parameter_count());

    nn::Adam opt(options.learning_rate);
    nn::TrainConfig tc;
    tc.epochs = options.epochs;
    tc.batch_size = options.batch_size;
    tc.on_epoch = [](std::size_t epoch, double loss) {
      if (epoch % 10 == 0) {
        std::printf("  epoch %3zu  train mse %.5f\n", epoch, loss);
      }
    };
    nn::train(net, train_set, opt, tc, rng);
    std::printf("validation mse: %.5f\n", nn::evaluate(net, val_set));

    const std::string path =
        out_dir + "/left_turn_" + style_name + ".mlp";
    if (nn::save_mlp_file(net, path)) {
      std::printf("saved %s\n\n", path.c_str());
    } else {
      std::fprintf(stderr, "failed to save %s\n", path.c_str());
      return 1;
    }
  }
  return 0;
}
