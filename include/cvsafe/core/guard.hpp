#pragma once

#include <cmath>
#include <cstddef>
#include <memory>
#include <string>
#include <utility>

#include "cvsafe/core/planner.hpp"
#include "cvsafe/core/safety_model.hpp"
#include "cvsafe/util/contracts.hpp"

/// \file guard.hpp
/// Output guard for embedded planners.
///
/// A real NN inference stack can fail in ways the safety argument does
/// not model: NaN/Inf outputs (bad weights, numeric overflow in custom
/// kernels) or thrown exceptions (resource exhaustion). The guard
/// decorator makes such failures *defined behavior*: the command is
/// replaced by the scenario's emergency control and the incident is
/// counted. Composed inside the compound planner, kappa_c keeps its
/// guarantee even when kappa_n itself malfunctions.

namespace cvsafe::core {

/// Wraps a planner; non-finite outputs and exceptions fall back to the
/// safety model's emergency control.
template <typename World>
class GuardedPlanner final : public PlannerBase<World> {
 public:
  GuardedPlanner(std::shared_ptr<PlannerBase<World>> inner,
                 std::shared_ptr<const SafetyModelBase<World>> safety_model)
      : inner_(std::move(inner)), safety_model_(std::move(safety_model)) {
    CVSAFE_EXPECTS(inner_ != nullptr, "guard needs an inner planner");
    CVSAFE_EXPECTS(safety_model_ != nullptr, "guard needs a safety model");
    name_ = std::string("guarded(") + std::string(inner_->name()) + ")";
  }

  double plan(const World& world) override {
    double a;
    try {
      a = inner_->plan(world);
    } catch (...) {
      ++incidents_;
      return safety_model_->emergency_accel(world);
    }
    if (!std::isfinite(a)) {
      ++incidents_;
      return safety_model_->emergency_accel(world);
    }
    return a;
  }

  std::string_view name() const override { return name_; }

  /// Number of malfunctions absorbed so far.
  std::size_t incidents() const { return incidents_; }

 private:
  std::shared_ptr<PlannerBase<World>> inner_;
  std::shared_ptr<const SafetyModelBase<World>> safety_model_;
  std::string name_;
  std::size_t incidents_ = 0;
};

}  // namespace cvsafe::core
