#pragma once

#include <string_view>

/// \file planner.hpp
/// The planner abstraction of Section II-A: a planner maps the (estimated)
/// system state to the ego vehicle's acceleration, a_0(t) = kappa(x(t)).
///
/// The framework is generic over the *world view* type: each scenario
/// defines a World struct carrying whatever the planner may observe
/// (time, ego state, filtered estimates of other vehicles, unsafe-set
/// parameterization). The compound planner, runtime monitor and safety
/// model are all templated on World, so the framework wraps any NN-based
/// planner in any scenario — the paper's headline claim.

namespace cvsafe::core {

/// Interface of a planner kappa_j over world views of type World.
template <typename World>
class PlannerBase {
 public:
  virtual ~PlannerBase() = default;

  /// Returns the ego acceleration command for the current world view.
  /// Commands outside the ego's actuation limits are clamped downstream
  /// by the vehicle dynamics.
  virtual double plan(const World& world) = 0;

  /// Human-readable planner name (tables, traces).
  virtual std::string_view name() const = 0;
};

}  // namespace cvsafe::core
