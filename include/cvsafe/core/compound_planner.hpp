#pragma once

#include <cstddef>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cvsafe/core/degradation.hpp"
#include "cvsafe/core/planner.hpp"
#include "cvsafe/core/safety_model.hpp"
#include "cvsafe/obs/flight_recorder.hpp"
#include "cvsafe/util/contracts.hpp"

/// \file compound_planner.hpp
/// The compound planner kappa_c of Section III (Fig. 2): a runtime monitor
/// that delegates to the embedded NN-based planner kappa_n while safe, and
/// switches to the emergency planner kappa_e exactly when the current state
/// lies in the boundary safe set X_b.
///
/// Safety argument (Section III-E): any trajectory entering X_u must pass
/// through X_b one control step earlier; the monitor hands control to
/// kappa_e there, and Eq. 4 guarantees kappa_e keeps the state in the safe
/// set — hence the ego vehicle never enters X_u and eta(kappa_c) >= 0.

namespace cvsafe::core {

/// Configuration of the compound planner.
struct CompoundOptions {
  /// Feed the NN-based planner the aggressive (underestimated) unsafe set
  /// via SafetyModelBase::shrink_for_planner. Off = basic compound
  /// planner, on = ultimate compound planner (together with the
  /// information filter chosen upstream).
  bool aggressive_unsafe_set = false;
};

/// Per-run statistics of the monitor's decisions.
struct MonitorStats {
  std::size_t total_steps = 0;      ///< plan() invocations
  std::size_t emergency_steps = 0;  ///< steps controlled by kappa_e

  /// Fraction of steps controlled by kappa_e ("emergency frequency"
  /// column of Tables I and II).
  double emergency_frequency() const {
    return total_steps == 0
               ? 0.0
               : static_cast<double>(emergency_steps) /
                     static_cast<double>(total_steps);
  }
};

/// One planner hand-over recorded by the monitor.
struct SwitchEvent {
  std::size_t step = 0;       ///< plan() invocation index (0-based)
  bool to_emergency = false;  ///< true: kappa_n -> kappa_e; false: back
  std::string reason;         ///< boundary classification (entering only)
};

/// The compound planner kappa_c embedding an arbitrary planner kappa_n.
template <typename World>
class CompoundPlanner final : public PlannerBase<World> {
 public:
  /// \param nn_planner    the embedded (typically NN-based) planner
  /// \param safety_model  scenario safety knowledge (monitor + kappa_e)
  CompoundPlanner(std::shared_ptr<PlannerBase<World>> nn_planner,
                  std::shared_ptr<const SafetyModelBase<World>> safety_model,
                  CompoundOptions options = {})
      : nn_planner_(std::move(nn_planner)),
        safety_model_(std::move(safety_model)),
        options_(options) {
    CVSAFE_EXPECTS(nn_planner_ != nullptr,
                   "compound planner needs an embedded planner");
    CVSAFE_EXPECTS(safety_model_ != nullptr,
                   "compound planner needs a safety model");
    name_ = std::string("compound(") + std::string(nn_planner_->name()) +
            (options.aggressive_unsafe_set ? ", aggressive)" : ")");
  }

  // A pool-bound planner owns a FleetLadder slot; copying would
  // double-release it (planners are shared_ptr-held, never copied).
  CompoundPlanner(const CompoundPlanner&) = delete;
  CompoundPlanner& operator=(const CompoundPlanner&) = delete;

  ~CompoundPlanner() override {
    if (fleet_ladder_ != nullptr) fleet_ladder_->release(ladder_slot_);
  }

  /// One control step of the runtime monitor (Section III-C):
  /// kappa_e iff x(t) in X_b, otherwise kappa_n — with the aggressive
  /// unsafe set substituted when enabled.
  double plan(const World& world) override {
    if (const auto emergency = monitor_gate(world)) return *emergency;
    return nn_planner_->plan(planner_view(world));
  }

  /// The monitor's half of plan(): advances the step/switch bookkeeping
  /// and returns the emergency acceleration when kappa_e takes this step,
  /// nullopt when control falls through to the embedded planner (which
  /// must then be evaluated on planner_view(world)). Exactly one of
  /// monitor_gate()/plan() may be called per control step.
  std::optional<double> monitor_gate(const World& world) {
    const std::size_t step = stats_.total_steps++;
    // Degradation ladder (degradation.hpp): at EMERGENCY-BIASED the X_b
    // membership test runs on the biased (inflated) view, so the monitor
    // fires earlier while the estimators are suspect. kappa_e itself is
    // still evaluated on the monitor's own view.
    bool biased = false;
    const bool ring_on = obs::ring_recording(ring_);
    if (ladder_) {
      const DegradationLevel prev =
          ring_on ? ladder_->level() : DegradationLevel::kFull;
      const DegradationLevel now = ladder_->update(step, signals_);
      biased = now == DegradationLevel::kEmergencyBiased;
      if (ring_on && now != prev) {
        ring_->ladder_transition(static_cast<std::uint8_t>(prev),
                                 static_cast<std::uint8_t>(now),
                                 static_cast<double>(step));
      }
    } else if (fleet_ladder_ != nullptr) {
      // Pooled hysteresis state: same decision procedure, state resident
      // in the fleet pool's SoA arrays (see core::FleetLadder). The ring
      // seam restores the transition visibility the pooled ladder gave
      // up (it keeps no transition log of its own).
      const DegradationLevel prev =
          ring_on ? fleet_ladder_->level(ladder_slot_)
                  : DegradationLevel::kFull;
      const DegradationLevel now = fleet_ladder_->update(ladder_slot_, signals_);
      biased = now == DegradationLevel::kEmergencyBiased;
      if (ring_on && now != prev) {
        ring_->ladder_transition(static_cast<std::uint8_t>(prev),
                                 static_cast<std::uint8_t>(now),
                                 static_cast<double>(step));
      }
    }
    std::optional<World> biased_world;
    if (biased) biased_world.emplace(safety_model_->bias_for_emergency(world));
    const World& check = biased_world ? *biased_world : world;
    if (ring_on) ring_->eta_sample(safety_model_->boundary_slack(check));
    if (safety_model_->in_boundary_safe_set(check)) {
      ++stats_.emergency_steps;
      if (!last_was_emergency_) {
        std::string reason = safety_model_->boundary_reason(check);
        if (obs::recording(recorder_)) {
          recorder_->monitor(true, true, safety_model_->boundary_slack(check),
                             reason);
        }
        if (ring_on) {
          ring_->gate_verdict(true, safety_model_->boundary_slack(check));
        }
        record_switch(step, true, std::move(reason));
      }
      last_was_emergency_ = true;
      return safety_model_->emergency_accel(world);
    }
    if (last_was_emergency_) {
      if (obs::recording(recorder_)) {
        recorder_->monitor(false, false, safety_model_->boundary_slack(check),
                           {});
      }
      if (ring_on) {
        ring_->gate_verdict(false, safety_model_->boundary_slack(check));
      }
      record_switch(step, false, {});
    }
    last_was_emergency_ = false;
    return std::nullopt;
  }

  /// The world the embedded planner sees when the monitor falls through:
  /// the aggressive (underestimated) unsafe set when enabled, the
  /// monitor's own view otherwise. Any degraded ladder level (REACH-ONLY
  /// and below) disables the aggressive shrink, so the embedded planner
  /// falls back to the conservative Eq. 7 windows.
  World planner_view(const World& world) const {
    if (has_ladder() && ladder_level() != DegradationLevel::kFull) {
      return world;
    }
    return options_.aggressive_unsafe_set
               ? safety_model_->shrink_for_planner(world)
               : world;
  }

  /// Arms the degradation ladder; without this call the planner behaves
  /// exactly as before (no ladder, implicit degradation only).
  void enable_degradation(const LadderConfig& config) {
    CVSAFE_EXPECTS(fleet_ladder_ == nullptr,
                   "ladder is already pool-resident");
    ladder_.emplace(config);
    ladder_->set_recorder(recorder_);
  }

  /// Arms the degradation ladder with pool-resident state: hysteresis and
  /// tallies live in a slot of \p fleet (released on destruction) so the
  /// fleet engine's gate/ladder sweep walks contiguous arrays. Decision
  /// procedure and stats are identical to enable_degradation; the pooled
  /// ladder keeps no transition log and is untraced.
  void enable_degradation_pooled(const LadderConfig& config,
                                 FleetLadder& fleet) {
    CVSAFE_EXPECTS(!ladder_.has_value() && fleet_ladder_ == nullptr,
                   "ladder is already armed");
    fleet_ladder_ = &fleet;
    ladder_slot_ = fleet.acquire(config);
  }

  /// Moves a freshly armed scalar ladder into pool-resident state (the
  /// fleet bind at episode admission). Must run before the first control
  /// step — the pooled slot starts at kFull with empty tallies, so a
  /// ladder that has already absorbed signals would lose state.
  void rebind_ladder_pooled(FleetLadder& fleet) {
    CVSAFE_EXPECTS(ladder_.has_value() && fleet_ladder_ == nullptr,
                   "pooled rebind needs an armed scalar ladder");
    const DegradationStats tally = ladder_->stats();
    std::size_t touched = tally.transitions;
    for (const std::size_t steps : tally.steps_at) touched += steps;
    CVSAFE_EXPECTS(touched == 0,
                   "ladder rebind must happen before the first step");
    const LadderConfig config = ladder_->config();
    ladder_.reset();
    fleet_ladder_ = &fleet;
    ladder_slot_ = fleet.acquire(config);
  }

  /// Attach a trace sink: planner switches become monitor events (with
  /// slack s(t) and X_b membership) and, when the ladder is armed, level
  /// changes become ladder events. Pass nullptr to detach.
  void set_recorder(obs::Recorder* recorder) {
    recorder_ = recorder;
    if (ladder_) ladder_->set_recorder(recorder);
  }

  /// Attach a flight-recorder ring: per-step eta samples, monitor
  /// verdict switches and ladder transitions land in the lane's ring
  /// (scalar *and* pooled ladder modes). Pass nullptr to detach.
  void set_ring(obs::RingRecorder* ring) { ring_ = ring; }

  /// Information-quality signals for the NEXT monitor_gate()/plan() call;
  /// the episode driver refreshes these every step before planning.
  void note_signals(const DegradationSignals& signals) {
    signals_ = signals;
  }

  /// The scalar ladder, when armed in-place (level occupancy, transition
  /// log). Pool-armed planners report through has_ladder()/ladder_level()
  /// /ladder_stats() instead — those work in both modes.
  const std::optional<DegradationLadder>& ladder() const { return ladder_; }

  /// True when a ladder is armed, scalar or pool-resident.
  bool has_ladder() const {
    return ladder_.has_value() || fleet_ladder_ != nullptr;
  }

  /// Current rung (requires has_ladder()).
  DegradationLevel ladder_level() const {
    CVSAFE_EXPECTS(has_ladder(), "no degradation ladder armed");
    return ladder_ ? ladder_->level() : fleet_ladder_->level(ladder_slot_);
  }

  /// Occupancy/transition tally (requires has_ladder()).
  DegradationStats ladder_stats() const {
    CVSAFE_EXPECTS(has_ladder(), "no degradation ladder armed");
    return ladder_ ? ladder_->stats() : fleet_ladder_->stats(ladder_slot_);
  }

  std::string_view name() const override { return name_; }

  /// True iff the most recent plan() was handled by kappa_e.
  bool last_was_emergency() const { return last_was_emergency_; }

  const MonitorStats& stats() const { return stats_; }
  void reset_stats() {
    stats_ = {};
    switch_events_.clear();
  }

  /// Planner hand-overs in order (capped at kMaxSwitchEvents; the cap is
  /// generous — a well-behaved run switches a handful of times).
  const std::vector<SwitchEvent>& switch_events() const {
    return switch_events_;
  }
  static constexpr std::size_t kMaxSwitchEvents = 512;

  const PlannerBase<World>& embedded_planner() const { return *nn_planner_; }
  const SafetyModelBase<World>& safety_model() const {
    return *safety_model_;
  }

 private:
  void record_switch(std::size_t step, bool to_emergency,
                     std::string reason) {
    if (switch_events_.size() >= kMaxSwitchEvents) return;
    switch_events_.push_back(
        SwitchEvent{step, to_emergency, std::move(reason)});
  }

  std::shared_ptr<PlannerBase<World>> nn_planner_;
  std::shared_ptr<const SafetyModelBase<World>> safety_model_;
  CompoundOptions options_;
  std::string name_;
  MonitorStats stats_;
  std::vector<SwitchEvent> switch_events_;
  bool last_was_emergency_ = false;
  std::optional<DegradationLadder> ladder_;
  /// Pool-resident ladder state (enable_degradation_pooled); mutually
  /// exclusive with ladder_.
  FleetLadder* fleet_ladder_ = nullptr;
  std::size_t ladder_slot_ = 0;
  DegradationSignals signals_;
  obs::Recorder* recorder_ = nullptr;
  obs::RingRecorder* ring_ = nullptr;
};

}  // namespace cvsafe::core
