#pragma once

#include <string>

/// \file safety_model.hpp
/// Scenario-specific safety knowledge consumed by the runtime monitor
/// (Section III-C) and the emergency planner (Section III-D).

namespace cvsafe::core {

/// Everything the runtime monitor needs to know about a scenario:
///  * membership of the estimated unsafe set X_u (Eq. 6 for the case
///    study) — used for diagnostics and offline verification;
///  * membership of the boundary safe set X_b (Eq. 3) — the emergency
///    trigger;
///  * the emergency control kappa_e satisfying Eq. 4;
///  * the aggressive shrink: a transformed world view in which the unsafe
///    set fed to the NN-based planner is the underestimated X_u,aggr
///    (Section III-C, Eq. 8 for the case study).
template <typename World>
class SafetyModelBase {
 public:
  virtual ~SafetyModelBase() = default;

  /// True iff the world view lies in the estimated unsafe set X_u.
  virtual bool in_unsafe_set(const World& world) const = 0;

  /// True iff the world view lies in the boundary safe set X_b, i.e. some
  /// feasible control could reach X_u within one control step (Eq. 3).
  virtual bool in_boundary_safe_set(const World& world) const = 0;

  /// Emergency control kappa_e; must satisfy Eq. 4: from any state in
  /// X_b, one control step under this command stays in the safe set.
  virtual double emergency_accel(const World& world) const = 0;

  /// Returns a world view whose unsafe-set parameterization is replaced by
  /// the aggressive (underestimated) unsafe set for the NN-based planner.
  /// The default is the identity (no shrink — basic compound planner).
  virtual World shrink_for_planner(const World& world) const {
    return world;
  }

  /// Returns a world view whose unsafe-set parameterization is *inflated*
  /// so the X_b membership test fires earlier. Consumed by the
  /// EMERGENCY-BIASED rung of the degradation ladder (degradation.hpp)
  /// when the estimators report themselves inconsistent: with the margin
  /// toward kappa_e widened, a corrupted estimate has to be wrong by more
  /// than the inflation before the monitor misses the boundary. The
  /// default is the identity (no bias).
  virtual World bias_for_emergency(const World& world) const {
    return world;
  }

  /// Short human-readable classification of WHY the world view lies in
  /// the boundary safe set (diagnostics / switch logs). Only called when
  /// in_boundary_safe_set returned true.
  virtual std::string boundary_reason(const World& world) const {
    (void)world;
    return "boundary";
  }

  /// Boundary slack s(t) (Eq. 5 for the case study): the signed margin
  /// the monitor's X_b test is computed from, for diagnostics and trace
  /// events. Models without a scalar slack report 0.
  virtual double boundary_slack(const World& world) const {
    (void)world;
    return 0.0;
  }
};

}  // namespace cvsafe::core
