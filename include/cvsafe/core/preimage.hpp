#pragma once

#include <algorithm>
#include <cstddef>
#include <functional>
#include <utility>
#include <vector>

#include "cvsafe/util/contracts.hpp"

/// \file preimage.hpp
/// Generic one-step preimage computation — Eq. 3 as an operator.
///
/// The boundary safe set is defined for ANY discrete-time system as the
/// set of safe states from which some feasible control reaches the unsafe
/// set within one control step. For the case studies we use closed forms;
/// this grid operator evaluates the definition directly for an arbitrary
/// black-box system over a 2-D state slice, which is useful to
/// *visualize* a scenario's boundary set and to sanity-check hand-derived
/// closed forms on simple systems (see tests/core_preimage_test.cpp).
///
/// Note on semantics: the exact preimage flags every state that can touch
/// X_u in one step. A production monitor such as the left-turn scenario's
/// deliberately deviates for committed states (it guards *collisions* via
/// resolvability rather than Eq.-6 set entry), so the two are not
/// expected to coincide there; on the slack-band branch they agree.

namespace cvsafe::core {

/// A rectangular grid over a 2-D state slice (x, v).
struct PreimageGrid {
  double x_min = 0.0, x_max = 1.0;
  double v_min = 0.0, v_max = 1.0;
  std::size_t nx = 64;
  std::size_t nv = 64;

  double x_at(std::size_t i) const {
    return nx < 2 ? x_min
                  : x_min + (x_max - x_min) * static_cast<double>(i) /
                        static_cast<double>(nx - 1);
  }
  double v_at(std::size_t j) const {
    return nv < 2 ? v_min
                  : v_min + (v_max - v_min) * static_cast<double>(j) /
                        static_cast<double>(nv - 1);
  }
};

/// Classification of each grid state.
enum class RegionLabel : unsigned char {
  kSafe = 0,      ///< neither unsafe nor one step from it
  kBoundary = 1,  ///< safe but one sampled control reaches X_u
  kUnsafe = 2,    ///< already in X_u
};

/// Result of a preimage sweep.
struct PreimageResult {
  PreimageGrid grid;
  std::vector<RegionLabel> labels;  ///< row-major: j * nx + i

  RegionLabel at(std::size_t i, std::size_t j) const {
    CVSAFE_EXPECTS(i < grid.nx && j < grid.nv, "grid index out of range");
    return labels[j * grid.nx + i];
  }
  std::size_t count(RegionLabel label) const {
    std::size_t n = 0;
    for (const auto l : labels) n += (l == label) ? 1 : 0;
    return n;
  }
};

/// One-step dynamics of the black-box system: (x, v, control) -> (x, v).
using StepFn =
    std::function<std::pair<double, double>(double x, double v, double u)>;

/// Unsafe-set membership over the slice.
using UnsafeFn = std::function<bool(double x, double v)>;

/// Sweeps the grid: each state is labeled kUnsafe if unsafe(x, v),
/// kBoundary if safe but some control in \p controls leads to an unsafe
/// state in one step, kSafe otherwise.
PreimageResult compute_boundary_grid(const PreimageGrid& grid,
                                     const StepFn& step,
                                     const UnsafeFn& unsafe,
                                     const std::vector<double>& controls);

/// Row-parallel variant of compute_boundary_grid: distributes grid rows
/// over \p threads workers (0 = hardware concurrency) via
/// util::parallel_for. Every cell's label is computed by exactly the same
/// sequence of step/unsafe evaluations as the serial sweep, so the result
/// is bit-exact label-for-label. \p step and \p unsafe must be safe to
/// invoke concurrently (pure functions of their arguments).
PreimageResult compute_boundary_grid_parallel(
    const PreimageGrid& grid, const StepFn& step, const UnsafeFn& unsafe,
    const std::vector<double>& controls, std::size_t threads = 0);

/// Uniformly spaced control samples in [u_min, u_max].
std::vector<double> sample_controls(double u_min, double u_max,
                                    std::size_t count);

/// Axis-aligned region of the state slice in which unsafe-set membership
/// may have changed between two relabeling passes.
struct ChangedRegion {
  double x_min = 0.0, x_max = 0.0;
  double v_min = 0.0, v_max = 0.0;

  /// The union of two unsafe-set bands (before and after a window update).
  static ChangedRegion hull(const ChangedRegion& a, const ChangedRegion& b) {
    return ChangedRegion{std::min(a.x_min, b.x_min), std::max(a.x_max, b.x_max),
                         std::min(a.v_min, b.v_min), std::max(a.v_max, b.v_max)};
  }
};

/// Memoized boundary-grid operator for monitors that re-evaluate the
/// preimage every control step while only the unsafe set moves (the
/// common case under the aggressive window of Eq. 8: the window — hence
/// the unsafe band — shifts slightly between steps, the dynamics do not).
///
/// The expensive, dynamics-dependent part of the sweep — the one-step
/// successor of every (cell, control) pair — is computed once and cached;
/// every relabel() pass then only evaluates the unsafe predicate on cached
/// successor states. The incremental overload additionally skips every
/// cell whose footprint (its own state plus all cached successors) lies
/// outside the caller-declared ChangedRegion: such a cell's label cannot
/// have changed, so its previous label is kept.
///
/// Memory: (nx * nv * n_controls) cached successor pairs — e.g. a 512x512
/// grid with 8 controls caches ~32 MiB. Not thread-safe; use one instance
/// per thread (relabel() itself can parallelize internally over rows).
class IncrementalBoundaryGrid {
 public:
  /// Caches the successor table up front (the only step() calls ever made).
  IncrementalBoundaryGrid(const PreimageGrid& grid, const StepFn& step,
                          std::vector<double> controls,
                          std::size_t threads = 1);

  /// Full relabel from cached successors. Bit-exact with
  /// compute_boundary_grid(grid, step, unsafe, controls).
  const PreimageResult& relabel(const UnsafeFn& unsafe);

  /// Incremental relabel: only cells whose footprint intersects \p changed
  /// are re-evaluated; all other labels are carried over from the previous
  /// pass. The caller guarantees unsafe-set membership is unchanged
  /// outside \p changed since the last relabel. Requires a prior full
  /// relabel (enforced by contract).
  const PreimageResult& relabel(const UnsafeFn& unsafe,
                                const ChangedRegion& changed);

  const PreimageResult& result() const { return result_; }
  const std::vector<double>& controls() const { return controls_; }

 private:
  struct Footprint {
    double x_min, x_max, v_min, v_max;
    bool intersects(const ChangedRegion& r) const {
      return x_min <= r.x_max && r.x_min <= x_max && v_min <= r.v_max &&
             r.v_min <= v_max;
    }
  };

  RegionLabel label_cell(std::size_t i, std::size_t j,
                         const UnsafeFn& unsafe) const;

  std::vector<double> controls_;
  std::vector<std::pair<double, double>> successors_;  ///< cell-major, then
                                                       ///< control index
  std::vector<Footprint> footprints_;
  PreimageResult result_;
  std::size_t threads_;
  bool primed_ = false;
};

}  // namespace cvsafe::core
