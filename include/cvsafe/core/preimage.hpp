#pragma once

#include <cstddef>
#include <functional>
#include <vector>

#include "cvsafe/util/contracts.hpp"

/// \file preimage.hpp
/// Generic one-step preimage computation — Eq. 3 as an operator.
///
/// The boundary safe set is defined for ANY discrete-time system as the
/// set of safe states from which some feasible control reaches the unsafe
/// set within one control step. For the case studies we use closed forms;
/// this grid operator evaluates the definition directly for an arbitrary
/// black-box system over a 2-D state slice, which is useful to
/// *visualize* a scenario's boundary set and to sanity-check hand-derived
/// closed forms on simple systems (see tests/core_preimage_test.cpp).
///
/// Note on semantics: the exact preimage flags every state that can touch
/// X_u in one step. A production monitor such as the left-turn scenario's
/// deliberately deviates for committed states (it guards *collisions* via
/// resolvability rather than Eq.-6 set entry), so the two are not
/// expected to coincide there; on the slack-band branch they agree.

namespace cvsafe::core {

/// A rectangular grid over a 2-D state slice (x, v).
struct PreimageGrid {
  double x_min = 0.0, x_max = 1.0;
  double v_min = 0.0, v_max = 1.0;
  std::size_t nx = 64;
  std::size_t nv = 64;

  double x_at(std::size_t i) const {
    return nx < 2 ? x_min
                  : x_min + (x_max - x_min) * static_cast<double>(i) /
                        static_cast<double>(nx - 1);
  }
  double v_at(std::size_t j) const {
    return nv < 2 ? v_min
                  : v_min + (v_max - v_min) * static_cast<double>(j) /
                        static_cast<double>(nv - 1);
  }
};

/// Classification of each grid state.
enum class RegionLabel : unsigned char {
  kSafe = 0,      ///< neither unsafe nor one step from it
  kBoundary = 1,  ///< safe but one sampled control reaches X_u
  kUnsafe = 2,    ///< already in X_u
};

/// Result of a preimage sweep.
struct PreimageResult {
  PreimageGrid grid;
  std::vector<RegionLabel> labels;  ///< row-major: j * nx + i

  RegionLabel at(std::size_t i, std::size_t j) const {
    CVSAFE_EXPECTS(i < grid.nx && j < grid.nv, "grid index out of range");
    return labels[j * grid.nx + i];
  }
  std::size_t count(RegionLabel label) const {
    std::size_t n = 0;
    for (const auto l : labels) n += (l == label) ? 1 : 0;
    return n;
  }
};

/// One-step dynamics of the black-box system: (x, v, control) -> (x, v).
using StepFn =
    std::function<std::pair<double, double>(double x, double v, double u)>;

/// Unsafe-set membership over the slice.
using UnsafeFn = std::function<bool(double x, double v)>;

/// Sweeps the grid: each state is labeled kUnsafe if unsafe(x, v),
/// kBoundary if safe but some control in \p controls leads to an unsafe
/// state in one step, kSafe otherwise.
PreimageResult compute_boundary_grid(const PreimageGrid& grid,
                                     const StepFn& step,
                                     const UnsafeFn& unsafe,
                                     const std::vector<double>& controls);

/// Uniformly spaced control samples in [u_min, u_max].
std::vector<double> sample_controls(double u_min, double u_max,
                                    std::size_t count);

}  // namespace cvsafe::core
