#pragma once

/// \file version.hpp
/// Library identification.

namespace cvsafe::core {

/// Semantic version of the cvsafe library.
const char* version();

}  // namespace cvsafe::core
