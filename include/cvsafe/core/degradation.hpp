#pragma once

#include <algorithm>
#include <array>
#include <cstddef>
#include <limits>
#include <vector>

#include "cvsafe/obs/recorder.hpp"

/// \file degradation.hpp
/// Graceful-degradation ladder for the compound planner.
///
/// Under communication disturbance the planner's information quality
/// decays in recognizable stages; this ladder makes the response to each
/// stage explicit instead of implicit in the estimators:
///
///   FULL             fresh message within the dt_d budget: aggressive
///                    passing windows (Eq. 8) are justified.
///   REACH-ONLY       message stale beyond the budget: reachability has
///                    widened, fall back to the conservative windows
///                    (Eq. 7) by disabling the planner-view shrink.
///   SENSOR-ONLY      no usable message at all: same conservative
///                    posture, sensing alone carries the estimate.
///   EMERGENCY-BIASED filter inconsistent (diverged Kalman or a payload
///                    rejected by the plausibility gate): additionally
///                    bias the X_b boundary check toward the emergency
///                    maneuver kappa_e (SafetyModelBase::bias_for_emergency).
///
/// Transitions downward (worse) are immediate; transitions upward
/// (recovery) are hysteretic: the signals must clear a *tighter* version
/// of the thresholds (budgets scaled by recover_margin < 1) for
/// recover_steps consecutive steps, and recovery climbs one rung at a
/// time. This prevents level chatter on a channel that oscillates around
/// a budget boundary.

namespace cvsafe::core {

/// Ladder rungs, ordered from best to worst information quality.
enum class DegradationLevel : int {
  kFull = 0,
  kReachOnly = 1,
  kSensorOnly = 2,
  kEmergencyBiased = 3,
};

inline constexpr std::size_t kNumDegradationLevels = 4;

const char* to_string(DegradationLevel level);

/// Per-step information-quality signals aggregated over every observed
/// vehicle (worst case: max age, AND of consistency).
struct DegradationSignals {
  /// Age of the newest accepted message, seconds (infinity before any).
  double message_age = std::numeric_limits<double>::infinity();
  /// True once any message has ever been accepted.
  bool have_message = false;
  /// False when any estimator reports itself inconsistent.
  bool filter_consistent = true;
};

/// Thresholds and hysteresis of the ladder.
struct LadderConfig {
  /// Message age beyond which aggressive windows are no longer justified
  /// (the paper's dt_d delay budget).
  double stale_budget = 0.3;
  /// Message age beyond which the message stream counts as lost.
  double lost_budget = 1.0;
  /// Recovery requires the signals to clear budgets scaled by this
  /// factor (< 1 = tighter than the degrade thresholds).
  double recover_margin = 0.5;
  /// Consecutive clear steps required before climbing one rung.
  std::size_t recover_steps = 5;

  /// Contract-checks: budgets ordered and positive, margin in (0, 1],
  /// recover_steps >= 1; rejects NaN.
  void validate() const;
};

/// The level \p s calls for under \p config with budgets scaled by
/// \p scale (1 for degrade decisions, recover_margin for the hysteretic
/// recovery check). Shared by the per-episode DegradationLadder and the
/// pool-resident FleetLadder so both run the identical threshold logic.
inline DegradationLevel ladder_target(const LadderConfig& config,
                                      const DegradationSignals& s,
                                      double scale) {
  if (!s.filter_consistent) return DegradationLevel::kEmergencyBiased;
  if (!s.have_message || s.message_age > config.lost_budget * scale) {
    return DegradationLevel::kSensorOnly;
  }
  if (s.message_age > config.stale_budget * scale) {
    return DegradationLevel::kReachOnly;
  }
  return DegradationLevel::kFull;
}

/// One logged level change.
struct LadderTransition {
  std::size_t step = 0;
  DegradationLevel from = DegradationLevel::kFull;
  DegradationLevel to = DegradationLevel::kFull;
};

/// Per-episode occupancy and transition tally.
struct DegradationStats {
  std::array<std::size_t, kNumDegradationLevels> steps_at{};
  std::size_t transitions = 0;
};

/// The ladder state machine. One instance per episode (deterministic:
/// pure function of the signal sequence).
class DegradationLadder {
 public:
  explicit DegradationLadder(LadderConfig config) : config_(config) {
    config_.validate();
  }

  /// Absorbs the signals of one control step and returns the level the
  /// planner must use for this step.
  DegradationLevel update(std::size_t step, const DegradationSignals& s);

  DegradationLevel level() const { return level_; }
  const LadderConfig& config() const { return config_; }
  const DegradationStats& stats() const { return stats_; }

  /// Logged transitions, capped at kMaxTransitions (overflow counted in
  /// stats().transitions regardless).
  const std::vector<LadderTransition>& transitions() const {
    return transitions_;
  }

  static constexpr std::size_t kMaxTransitions = 512;

  /// Attach a trace sink; every level change is emitted as a ladder
  /// event. Pass nullptr to detach.
  void set_recorder(obs::Recorder* recorder) { recorder_ = recorder; }

 private:
  /// The level the signals call for when budgets are scaled by \p scale.
  DegradationLevel target(const DegradationSignals& s, double scale) const;

  LadderConfig config_;
  DegradationLevel level_ = DegradationLevel::kFull;
  std::size_t clear_streak_ = 0;
  DegradationStats stats_;
  std::vector<LadderTransition> transitions_;
  obs::Recorder* recorder_ = nullptr;
};

/// Pool-resident SoA ladder state for the fleet engine: the hysteresis
/// state (level, clear streak) and the occupancy/transition tallies of
/// every resident episode live in per-field contiguous arrays, so the
/// fleet gate/ladder sweep touches dense memory instead of one
/// DegradationLadder object (with its transition-log vector) per lane.
///
/// update() is bit-identical to DegradationLadder::update on the same
/// signal sequence — both call ladder_target for every decision. The two
/// deliberate non-features: no per-transition log and no obs::Recorder
/// seam (the fleet pool is untraced; traced runs use the scalar engine).
/// Slots are free-listed and reset on acquire; lane compaction in the
/// episode pool never moves ladder state, only the runners that hold the
/// slot handles.
class FleetLadder {
 public:
  FleetLadder() = default;

  /// Claims a slot running \p config (validated), reset to kFull.
  std::size_t acquire(const LadderConfig& config) {
    config.validate();
    if (free_.empty()) {
      const std::size_t slot = config_.size();
      config_.push_back(config);
      level_.push_back(DegradationLevel::kFull);
      clear_streak_.push_back(0);
      steps_at_.resize(steps_at_.size() + kNumDegradationLevels, 0);
      transitions_.push_back(0);
      return slot;
    }
    const std::size_t slot = free_.back();
    free_.pop_back();
    config_[slot] = config;
    level_[slot] = DegradationLevel::kFull;
    clear_streak_[slot] = 0;
    std::fill_n(steps_at_.begin() +
                    static_cast<std::ptrdiff_t>(slot * kNumDegradationLevels),
                kNumDegradationLevels, std::size_t{0});
    transitions_[slot] = 0;
    return slot;
  }

  /// Returns \p slot to the free list.
  void release(std::size_t slot) { free_.push_back(slot); }

  /// One control step of lane \p slot; same decision procedure as
  /// DegradationLadder::update (degrade immediately, recover one rung
  /// after recover_steps consecutive tightened-budget clears).
  DegradationLevel update(std::size_t slot, const DegradationSignals& s) {
    const LadderConfig& config = config_[slot];
    DegradationLevel& level = level_[slot];
    const DegradationLevel tgt = ladder_target(config, s, 1.0);
    if (static_cast<int>(tgt) > static_cast<int>(level)) {
      ++transitions_[slot];
      level = tgt;
      clear_streak_[slot] = 0;
    } else if (static_cast<int>(tgt) < static_cast<int>(level)) {
      if (static_cast<int>(ladder_target(config, s, config.recover_margin)) <
          static_cast<int>(level)) {
        ++clear_streak_[slot];
      } else {
        clear_streak_[slot] = 0;
      }
      if (clear_streak_[slot] >= config.recover_steps) {
        ++transitions_[slot];
        level = static_cast<DegradationLevel>(static_cast<int>(level) - 1);
        clear_streak_[slot] = 0;
      }
    } else {
      clear_streak_[slot] = 0;
    }
    ++steps_at_[slot * kNumDegradationLevels +
                static_cast<std::size_t>(level)];
    return level;
  }

  DegradationLevel level(std::size_t slot) const { return level_[slot]; }

  /// Occupancy/transition tally of lane \p slot (same numbers a scalar
  /// DegradationLadder::stats() would report).
  DegradationStats stats(std::size_t slot) const {
    DegradationStats out;
    for (std::size_t i = 0; i < kNumDegradationLevels; ++i) {
      out.steps_at[i] = steps_at_[slot * kNumDegradationLevels + i];
    }
    out.transitions = transitions_[slot];
    return out;
  }

  std::size_t capacity() const { return config_.size(); }

 private:
  std::vector<LadderConfig> config_;
  std::vector<DegradationLevel> level_;
  std::vector<std::size_t> clear_streak_;
  /// Flattened occupancy counters, [slot * kNumDegradationLevels + level].
  std::vector<std::size_t> steps_at_;
  std::vector<std::size_t> transitions_;
  std::vector<std::size_t> free_;
};

}  // namespace cvsafe::core
