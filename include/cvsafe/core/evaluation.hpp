#pragma once

/// \file evaluation.hpp
/// The evaluation function eta of Section II-A.

namespace cvsafe::core {

/// Outcome summary of one simulated episode.
struct EpisodeOutcome {
  bool entered_unsafe_set = false;  ///< safety violated before reaching X_t
  bool reached_target = false;      ///< reached X_t (before any violation)
  double reach_time = 0.0;          ///< t_r, valid when reached_target
};

/// eta(kappa_j) of Section II-A:
///   -1      if the unsafe set was entered before reaching the target set,
///   1/t_r   if the target set was reached at time t_r,
///    0      otherwise (timeout).
inline double eta(const EpisodeOutcome& o) {
  if (o.entered_unsafe_set) return -1.0;
  if (o.reached_target && o.reach_time > 0.0) return 1.0 / o.reach_time;
  return 0.0;
}

}  // namespace cvsafe::core
