#pragma once

#include <cstddef>
#include <memory>
#include <string>
#include <utility>

#include "cvsafe/core/planner.hpp"
#include "cvsafe/util/contracts.hpp"
#include "cvsafe/util/interval.hpp"

/// \file certified_bounds.hpp
/// Runtime enforcement of statically certified planner output bounds.
///
/// The sound verifier (verify/sound.hpp, Theorem B) proves an interval
/// hull that encloses every raw output the trained network can produce
/// over its certified input domain. This decorator consumes that hull at
/// runtime: any command outside it is — by the certificate — evidence
/// that the deployed network, its weights, or its input pipeline differ
/// from what was certified (bit rot, a stale model cache, an unverified
/// retrain). The command is clamped to the certified range and the
/// violation is counted, turning "the proof no longer matches the
/// binary" into defined, observable behavior instead of an unbounded
/// actuation request.
///
/// Composed inside the compound planner's kappa_n slot, the decorator is
/// transparent when the certificate holds: certified networks never
/// trigger it, so goldens are unchanged.

namespace cvsafe::core {

/// Wraps a planner and clamps its output to a certified interval.
template <typename World>
class CertifiedBoundsPlanner final : public PlannerBase<World> {
 public:
  /// \p bounds must be the non-empty certified hull (NnBoundsResult::hull
  /// of a proved certificate).
  CertifiedBoundsPlanner(std::shared_ptr<PlannerBase<World>> inner,
                         util::Interval bounds)
      : inner_(std::move(inner)), bounds_(bounds) {
    CVSAFE_EXPECTS(inner_ != nullptr, "certified bounds need an inner planner");
    CVSAFE_EXPECTS(!bounds_.empty(),
                   "certified bounds must be a non-empty interval");
    name_ = std::string("certified(") + std::string(inner_->name()) + ")";
  }

  double plan(const World& world) override {
    const double a = inner_->plan(world);
    if (bounds_.contains(a)) return a;
    ++violations_;
    return bounds_.clamp(a);
  }

  std::string_view name() const override { return name_; }

  /// The certified output range being enforced.
  const util::Interval& bounds() const { return bounds_; }

  /// Number of commands that fell outside the certified hull — nonzero
  /// means the deployed network is not the certified one.
  std::size_t violations() const { return violations_; }

 private:
  std::shared_ptr<PlannerBase<World>> inner_;
  util::Interval bounds_;
  std::string name_;
  std::size_t violations_ = 0;
};

}  // namespace cvsafe::core
