#pragma once

#include <cstddef>
#include <span>

#include "cvsafe/fault/fault_plan.hpp"
#include "cvsafe/sim/fault_campaign.hpp"

/// \file param_space.hpp
/// The adversarial search space: a bounded real vector in [0,1]^kDim that
/// decodes onto a validated fault::FaultPlan, plus the stealth screen
/// that keeps candidates inside the plausibility-gate-admissible
/// envelope.
///
/// The box bounds are chosen so every decoded plan passes
/// FaultPlan::validate() by construction (probabilities <= 1, ordered
/// reorder-delay range, finite windows) and so the strongest corner of
/// the box stays in the same regime the campaign presets probe — the
/// optimizer's job is to find the worst admissible compound of jitter,
/// reordering, duplication, corruption, stale spoofing, blackouts and
/// sensor faults, not to saturate the gate. Candidates that are too loud
/// anyway (observed hardened-gate rejection rate above the stealth
/// threshold) are discarded by admits(): a detected attack is a handled
/// attack, so only quiet plans count as findings.

namespace cvsafe::adv {

/// Bounded decode of optimizer candidates into fault plans.
class ParamSpace {
 public:
  /// Number of search dimensions (one per fault knob).
  static constexpr std::size_t kDim = 20;

  /// One dimension's decode range: x in [0,1] maps affinely onto
  /// [lo, hi].
  struct Bound {
    const char* name;  ///< knob name (SearchTrace CSV column)
    double lo;
    double hi;
  };

  /// The kDim decode ranges, in dimension order.
  static std::span<const Bound, kDim> bounds();

  /// \p stealth_threshold: maximum hardened-gate rejection rate a
  /// candidate may provoke and still count as admissible. Must lie in
  /// [0, 1].
  explicit ParamSpace(double stealth_threshold = 0.25);

  double stealth_threshold() const { return stealth_threshold_; }

  /// Maps a candidate vector (exactly kDim values; each component is
  /// clamped to [0,1] first) onto a validated FaultPlan named "adv".
  /// Dimensions cover the channel model (delay jitter, reorder,
  /// duplicate, corruption deltas, stale spoofing, two blackout
  /// windows) and the sensor model (dropout, bias drift, one stuck
  /// window). The plan seed is left at the FaultPlan default so fault
  /// draws differ between candidates only through the parameters.
  fault::FaultPlan decode(std::span<const double> x) const;

  /// Stealth screen: true when the evaluated cell's hardened-gate
  /// rejection rate stays within the threshold. Loud candidates fail
  /// here and are scored with a penalty instead of their safety margin.
  bool admits(const sim::CampaignCell& cell) const {
    return cell.rejection_rate() <= stealth_threshold_;
  }

 private:
  double stealth_threshold_;
};

}  // namespace cvsafe::adv
