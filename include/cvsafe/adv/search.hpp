#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

#include "cvsafe/adv/param_space.hpp"
#include "cvsafe/comm/channel.hpp"
#include "cvsafe/fault/fault_plan.hpp"
#include "cvsafe/obs/flight_recorder.hpp"
#include "cvsafe/obs/metrics.hpp"
#include "cvsafe/sim/fault_campaign.hpp"

/// \file search.hpp
/// The adversarial worst-case search driver: a seeded black-box
/// optimizer proposes fault plans inside the ParamSpace envelope, each
/// candidate is evaluated as a hardened fleet-engine batch
/// (sim::run_campaign_cell — mega-batched planning, byte-identical
/// across thread counts), and the per-candidate aggregates fold into a
/// deterministic SearchTrace. The search MINIMIZES the safety margin
/// eta: the framework's guarantee is strongest exactly where the
/// attacker says it is weakest, so CI asserts eta(kappa_c) >= 0 (zero
/// collisions) on every discovered worst case.
///
/// Determinism: optimizer draws derive from (search_seed, iteration);
/// every candidate is evaluated on the same eval_seed base with
/// SeedPolicy::kDerived episodes (paired workloads across candidates).
/// The SearchTrace CSV is byte-identical across runs and thread counts.

namespace cvsafe::adv {

/// Shape and seeds of one adversarial search.
struct SearchConfig {
  std::string scenario = "left-turn";  ///< CampaignConfig scenario name
  std::string optimizer = "cma";       ///< "cma" | "coord"
  std::size_t iterations = 8;          ///< optimizer ask/tell rounds
  std::size_t episodes_per_eval = 4;   ///< episodes per candidate batch
  std::uint64_t search_seed = 7;       ///< optimizer draw stream
  std::uint64_t eval_seed = 2026;      ///< episode seed base (paired)
  std::size_t threads = 0;             ///< 0 = hardware concurrency
  double stealth_threshold = 0.25;     ///< ParamSpace screen
  std::size_t top_k = 3;               ///< offenders to report
  /// Baseline comm disturbance the synthesized faults ride on (the
  /// campaign's paper channel: drop 0.2, dt_d 0.25 s).
  comm::CommConfig comm = comm::CommConfig::delayed(0.2, 0.25);

  /// Contract check: known scenario/optimizer names, iterations,
  /// episodes and top_k >= 1, threshold in [0,1].
  void validate() const;

  /// The fixed CI budget (the `attack --budget ci` job): CMA-ES on
  /// left-turn, 8 iterations x population 8 x 4 episodes.
  static SearchConfig ci();

  /// A tiny budget for fast unit tests.
  static SearchConfig smoke();
};

/// One evaluated candidate: where it came from in the schedule, the
/// decoded plan, and the hardened-batch aggregates it provoked.
struct CandidateRecord {
  std::size_t iteration = 0;
  std::size_t index = 0;         ///< position within the iteration
  std::vector<double> params;    ///< unit-box vector (post-clamp)
  fault::FaultPlan plan;         ///< ParamSpace::decode(params)
  sim::CampaignCell cell;        ///< fleet-batch aggregates
  bool admissible = false;       ///< passed the stealth screen
  double score = 0.0;            ///< min_eta, or penalty when screened

  double min_eta() const { return cell.min_eta; }
};

/// Every candidate in schedule order (iteration-major). This is the
/// deterministic artifact the golden CSV pins.
struct SearchTrace {
  std::vector<CandidateRecord> candidates;
};

/// The finished search.
struct SearchResult {
  SearchConfig config;
  SearchTrace trace;
  /// Indices into trace.candidates of the top_k admissible candidates,
  /// worst first (ascending min_eta, ties by schedule order).
  std::vector<std::size_t> offenders;

  /// The worst admissible candidate found, or nullptr when the screen
  /// discarded everything.
  const CandidateRecord* worst() const;

  /// The paper's guarantee under attack: no evaluated candidate —
  /// admissible or not — drove an episode into the unsafe set.
  bool invariant_ok() const;
  std::size_t violations() const;  ///< total unsafe-set entries
};

/// Runs the search. Candidates within an iteration are evaluated
/// sequentially; each evaluation parallelizes across its episode batch
/// on the fleet engine.
SearchResult run_search(const SearchConfig& config);

/// Serializes the SearchTrace as a CSV (header + one row per candidate
/// in schedule order, doubles at %.17g, one column per ParamSpace
/// dimension) — byte-stable across runs and thread counts.
void write_search_csv(std::ostream& os, const SearchResult& result);

/// write_search_csv into a string.
std::string search_csv(const SearchResult& result);

/// Re-runs offender \p rank (0 = worst) with an obs::Recorder mounted,
/// appending JSONL to \p os in seed order under the fault label
/// "adv-<rank>". Requires rank < result.offenders.size().
void trace_offender(const SearchResult& result, std::size_t rank,
                    std::ostream& os);

/// Folds the finished search into the metrics registry so `attack` runs
/// export through the same Prometheus/CSV surface as campaigns:
/// candidate / stealth-screen-rejection / unsafe-entry counters, the
/// global best (lowest) admissible margin as cvsafe_attack_best_eta, and
/// a per-iteration running-best series cvsafe_attack_best_eta{
/// iteration="N"} (monotone non-increasing; iterations before the first
/// admissible candidate emit no gauge). Deterministic — it reads only
/// the schedule-ordered trace.
void collect_search_metrics(obs::MetricsRegistry& registry,
                            const SearchResult& result);

/// Re-runs offender \p rank on the fleet engine with a per-lane flight
/// recorder armed (ring/trigger shape \p flight) and appends each
/// triggered episode dump as JSONL labeled with the search scenario and
/// fault "adv-<rank>", in episode order. Returns the number of dumps
/// written. Requires rank < result.offenders.size().
std::size_t dump_offender_flights(
    const SearchResult& result, std::size_t rank, std::ostream& os,
    const obs::FlightRecorderConfig& flight = {});

}  // namespace cvsafe::adv
