#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <string>
#include <string_view>
#include <vector>

#include "cvsafe/util/rng.hpp"

/// \file optimizer.hpp
/// Deterministic black-box minimizers for the adversarial fault search.
///
/// Both optimizers speak one ask/tell interface: ask(iteration) emits a
/// population of candidate vectors in the unit box [0,1]^dim, tell()
/// returns their scores (lower = a worse safety margin found = a better
/// attack). Determinism contract: the candidate batch of iteration k is
/// a pure function of (search seed, k) and the scores previously told —
/// every stochastic draw comes from a util::Rng reseeded with
/// util::derive_seed(seed, k) at the top of ask(), so there is no hidden
/// stream state and a search replays bit-exactly from its seed.
///
/// Steady-state zero allocation: every buffer (population storage,
/// covariance, Cholesky factor, evolution paths) is sized in the
/// constructor; ask()/tell() allocate nothing afterwards (gated by the
/// adv_search_step bench).

namespace cvsafe::adv {

/// Ask/tell minimizer over the unit box.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  virtual std::size_t dim() const = 0;

  /// Candidates emitted per iteration.
  virtual std::size_t population() const = 0;

  /// Writes population() x dim() candidates (row-major) into \p out,
  /// each component clamped to [0,1]. \p out must hold exactly
  /// population()*dim() values. Iterations must be asked in order
  /// (0, 1, 2, ...), each followed by its tell().
  virtual void ask(std::size_t iteration, std::span<double> out) = 0;

  /// Consumes the scores of iteration \p iteration's candidates.
  /// \p params must be the exact values ask() produced (the optimizer
  /// recovers its sampling state from them), \p scores one value per
  /// candidate; lower is better.
  virtual void tell(std::size_t iteration, std::span<const double> params,
                    std::span<const double> scores) = 0;

  /// Best parameter vector told so far (incumbent); undefined before the
  /// first tell().
  virtual std::span<const double> best() const = 0;

  /// Score of best(); +infinity before the first tell().
  virtual double best_score() const = 0;

  virtual std::string_view name() const = 0;
};

/// Deterministic pattern search: probes incumbent +- step along one
/// coordinate per iteration (population 2), adopts strict improvements,
/// and halves the step after every full coordinate sweep without one.
/// Uses no random draws at all — the start point is the box center — so
/// it is trivially bit-reproducible.
class CoordinateDescent final : public Optimizer {
 public:
  explicit CoordinateDescent(std::size_t dim, double initial_step = 0.25);

  std::size_t dim() const override { return dim_; }
  std::size_t population() const override { return 2; }
  void ask(std::size_t iteration, std::span<double> out) override;
  void tell(std::size_t iteration, std::span<const double> params,
            std::span<const double> scores) override;
  std::span<const double> best() const override { return incumbent_; }
  double best_score() const override { return incumbent_score_; }
  std::string_view name() const override { return "coord"; }

 private:
  std::size_t dim_;
  double step_;
  double incumbent_score_;
  bool improved_in_sweep_ = false;
  std::vector<double> incumbent_;
};

/// Small rank-mu CMA-ES (covariance matrix adaptation) with cumulative
/// step-size control. Samples through the Cholesky factor of C; the
/// selection paths use the standard-normal pre-images recovered by a
/// triangular solve, so no eigendecomposition is needed at this
/// dimensionality. Every draw derives from (seed, iteration).
class CmaEs final : public Optimizer {
 public:
  CmaEs(std::size_t dim, std::uint64_t seed, std::size_t lambda = 8,
        double sigma0 = 0.25);

  std::size_t dim() const override { return dim_; }
  std::size_t population() const override { return lambda_; }
  void ask(std::size_t iteration, std::span<double> out) override;
  void tell(std::size_t iteration, std::span<const double> params,
            std::span<const double> scores) override;
  std::span<const double> best() const override { return best_; }
  double best_score() const override { return best_score_; }
  std::string_view name() const override { return "cma"; }

  double sigma() const { return sigma_; }

 private:
  void factorize();  ///< Cholesky of cov_ into chol_ (jittered pivots)

  std::size_t dim_;
  std::size_t lambda_;
  std::size_t mu_;
  std::uint64_t seed_;
  std::size_t next_iteration_ = 0;  ///< ask/tell ordering guard

  // Strategy constants (fixed at construction from dim/lambda).
  double mu_eff_;
  double c_sigma_, d_sigma_;
  double c_c_, c_1_, c_mu_;
  double chi_n_;  ///< E||N(0, I)||

  double sigma_;
  double best_score_;
  util::Rng rng_;

  std::vector<double> weights_;  ///< mu recombination weights
  std::vector<double> mean_;
  std::vector<double> cov_;    ///< C, row-major dim x dim
  std::vector<double> chol_;   ///< lower Cholesky factor of C
  std::vector<double> p_sigma_, p_c_;
  std::vector<double> zs_;     ///< lambda x dim pre-images of last ask
  std::vector<double> ys_, zw_, yw_;  ///< tell scratch
  std::vector<std::size_t> order_;    ///< selection order scratch
  std::vector<double> best_;
};

/// Factory by name ("coord" | "cma"); contract-fails on unknown names.
std::unique_ptr<Optimizer> make_optimizer(const std::string& name,
                                          std::size_t dim,
                                          std::uint64_t seed);

}  // namespace cvsafe::adv
