#pragma once

#include <optional>

#include "cvsafe/util/rng.hpp"
#include "cvsafe/vehicle/state.hpp"

/// \file sensor.hpp
/// Onboard sensor model, Section II-A of the paper.
///
/// Every sensing period dt_s the ego vehicle measures the state of another
/// vehicle. The measurement arrives without delay but is inaccurate: each
/// component is uniformly distributed within +-delta of the true value
/// (position delta_p, velocity delta_v, acceleration delta_a).

namespace cvsafe::sensing {

/// Sensor noise / timing configuration.
struct SensorConfig {
  double period = 0.1;   ///< sensing period dt_s [s]
  double delta_p = 1.0;  ///< position uncertainty [m]
  double delta_v = 1.0;  ///< velocity uncertainty [m/s]
  double delta_a = 1.0;  ///< acceleration uncertainty [m/s^2]

  /// Uniform scalar uncertainty: delta_p = delta_v = delta_a = delta,
  /// as swept in the paper's "messages lost" experiments.
  static SensorConfig uniform(double delta, double period = 0.1);
};

/// One noisy measurement of another vehicle's state.
struct SensorReading {
  double t = 0.0;  ///< measurement time (no delay)
  double p = 0.0;  ///< measured position [m]
  double v = 0.0;  ///< measured velocity [m/s]
  double a = 0.0;  ///< measured acceleration [m/s^2]
};

/// Periodic noisy observer of a single vehicle.
class Sensor {
 public:
  explicit Sensor(SensorConfig config) : config_(config) {}

  const SensorConfig& config() const { return config_; }

  /// Called every control step with the observed vehicle's exact snapshot.
  /// Returns a reading when this step is a sensing instant (every `period`
  /// seconds starting at t = 0), nullopt otherwise. Noise is uniform in
  /// [-delta, +delta] per component.
  std::optional<SensorReading> sense(const vehicle::VehicleSnapshot& truth,
                                     util::Rng& rng);

 private:
  SensorConfig config_;
  double next_sense_time_ = 0.0;
};

}  // namespace cvsafe::sensing
