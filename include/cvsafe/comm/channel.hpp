#pragma once

#include <cstdint>
#include <queue>
#include <string>
#include <utility>
#include <vector>

#include "cvsafe/comm/message.hpp"
#include "cvsafe/util/rng.hpp"

/// \file channel.hpp
/// Communication-disturbance model, Sections II-A and V of the paper.
///
/// Three experiment settings:
///  * *no disturbance*  — every message arrives immediately;
///  * *messages delayed* — each message is delayed by dt_d and additionally
///    dropped i.i.d. with probability p_drop;
///  * *messages lost*   — every message is dropped (sensor-only operation;
///    this also models unconnected vehicles).

namespace cvsafe::comm {

/// Channel configuration. Construction of a Channel validates the
/// configuration (validate()); NaN or out-of-range values are contract
/// violations.
struct CommConfig {
  double period = 0.1;     ///< transmission period dt_m [s]
  double delay = 0.0;      ///< delivery delay dt_d [s]
  double drop_prob = 0.0;  ///< i.i.d. drop probability p_drop in [0,1]
  bool lost = false;       ///< true: every message dropped

  /// Bursty (Gilbert-Elliott) loss extension. Real V2V links lose
  /// messages in bursts (shadowing, congestion), not i.i.d.; when
  /// enabled, the channel alternates between a *good* state dropping
  /// with `drop_prob` and a *bad* state dropping with `burst_drop_prob`,
  /// transitioning per transmission with the probabilities below.
  bool burst = false;
  double burst_drop_prob = 1.0;  ///< drop probability in the bad state
  double p_good_to_bad = 0.05;   ///< per-transmission G->B probability
  double p_bad_to_good = 0.3;    ///< per-transmission B->G probability

  /// Paper's "no disturbance" setting.
  static CommConfig no_disturbance(double period = 0.1);

  /// Paper's "messages delayed" setting (dt_d = 0.25 s by default).
  static CommConfig delayed(double drop_prob, double delay = 0.25,
                            double period = 0.1);

  /// Paper's "messages lost" setting.
  static CommConfig messages_lost(double period = 0.1);

  /// Gilbert-Elliott bursty-loss channel (extension): drops nothing in
  /// the good state, everything in the bad state, with the given
  /// expected burst length (in transmissions) and stationary bad-state
  /// fraction.
  static CommConfig bursty(double bad_fraction, double mean_burst_len,
                           double delay = 0.0, double period = 0.1);

  /// Stationary drop probability implied by the configuration.
  double stationary_drop_prob() const;

  /// Human-readable name of the setting.
  std::string label() const;

  /// Contract check: period > 0, delay >= 0, every probability in [0,1],
  /// all values finite (NaN fails every comparison and is rejected).
  void validate() const;
};

/// SoA landing zone of the fleet engine's batch pump: one slab per
/// worker shard collects every resident episode's delivered messages for
/// the current step into per-field contiguous arrays (sender, stamp,
/// position, velocity, acceleration), partitioned into per-lane ranges.
/// The pump sweep drains each lane's channel queue into its slab range;
/// the deliver sweep then walks the slab lane by lane, reconstructing
/// each Message field-for-field — bit-identical payloads in the exact
/// per-lane delivery order Channel::collect_into produces.
class MessageSlab {
 public:
  /// Drops every lane and message (start of a shard-step pump sweep).
  void clear() {
    lane_begin_.clear();
    sender_.clear();
    t_.clear();
    p_.clear();
    v_.clear();
    a_.clear();
  }

  /// Opens the next lane: subsequent push() calls append to it. Returns
  /// the lane index.
  std::size_t begin_lane() {
    lane_begin_.push_back(sender_.size());
    return lane_begin_.size() - 1;
  }

  /// Appends \p msg to the currently open lane.
  void push(const Message& msg) {
    sender_.push_back(msg.sender);
    t_.push_back(msg.data.t);
    p_.push_back(msg.data.state.p);
    v_.push_back(msg.data.state.v);
    a_.push_back(msg.data.a);
  }

  std::size_t lanes() const { return lane_begin_.size(); }
  std::size_t size() const { return sender_.size(); }

  /// [first, last) slab index range of \p lane's messages.
  std::pair<std::size_t, std::size_t> lane_range(std::size_t lane) const {
    const std::size_t first = lane_begin_[lane];
    const std::size_t last =
        lane + 1 < lane_begin_.size() ? lane_begin_[lane + 1] : sender_.size();
    return {first, last};
  }

  /// Reconstructs slab entry \p i as a Message (field-for-field; the
  /// round trip through the slab is exact).
  Message message(std::size_t i) const {
    return Message{sender_[i],
                   vehicle::VehicleSnapshot{t_[i], {p_[i], v_[i]}, a_[i]}};
  }

 private:
  /// Slab index of each lane's first message; lane i's range ends at
  /// lane i+1's begin (or at size() for the last lane).
  std::vector<std::size_t> lane_begin_;
  std::vector<std::uint32_t> sender_;
  std::vector<double> t_, p_, v_, a_;
};

/// Simplex channel from one transmitting vehicle to the ego vehicle.
///
/// The transmitter calls offer() every control step; the channel decides
/// (from its internal schedule) whether this step is a transmission
/// instant, and if so whether the message is dropped, else enqueues it
/// with its delivery time. The receiver calls collect() every control
/// step to drain messages whose delivery time has come.
class Channel {
 public:
  explicit Channel(CommConfig config) : config_(config) {
    config_.validate();
  }

  const CommConfig& config() const { return config_; }

  /// Called by the transmitter each control step with the current exact
  /// snapshot. Transmissions happen every `period` seconds starting at
  /// t = 0 (a small epsilon absorbs floating-point drift).
  void offer(const Message& msg, util::Rng& rng);

  /// The transmission-schedule / loss-model half of offer(): advances the
  /// schedule and the Gilbert-Elliott state and returns true when the
  /// message survived (it must then be enqueued exactly once). Exposed so
  /// decorators (fault::FaultyChannel) can reshape the delivery of
  /// admitted messages without touching the episode's RNG draw order.
  bool admit(const Message& msg, util::Rng& rng);

  /// Enqueues an admitted (possibly decorated) message for delivery at
  /// \p delivery_time. offer() == admit() + enqueue(stamp + delay).
  void enqueue(const Message& msg, double delivery_time);

  /// Returns (and removes) all messages delivered by time \p t, in
  /// delivery order; entries with equal delivery time drain in enqueue
  /// (FIFO) order.
  std::vector<Message> collect(double t);

  /// collect() into a caller-owned buffer (cleared first; same order).
  /// The per-step engine loop reuses one buffer per actor, so steady-state
  /// message delivery performs no heap allocation.
  void collect_into(double t, std::vector<Message>& out);

  /// Batch-pump variant: drains delivered messages (same selection and
  /// order as collect_into) into the slab's currently open lane. The
  /// fleet pump sweep opens one lane per resident episode and drains all
  /// channels into one slab, so the subsequent deliver sweep reads
  /// contiguous SoA message slots instead of scattered per-actor buffers.
  void collect_into_slab(double t, MessageSlab& slab);

  /// Number of messages currently in flight.
  std::size_t in_flight() const { return pending_.size(); }

  /// Statistics: messages offered at transmission instants / dropped.
  std::size_t sent_count() const { return sent_; }
  std::size_t dropped_count() const { return dropped_; }

 private:
  struct InFlight {
    double delivery_time;
    std::uint64_t seq;  ///< monotone enqueue index: FIFO tie-break
    Message msg;
    bool operator>(const InFlight& o) const {
      if (delivery_time != o.delivery_time) {
        return delivery_time > o.delivery_time;
      }
      return seq > o.seq;
    }
  };

  CommConfig config_;
  double next_tx_time_ = 0.0;
  bool in_bad_state_ = false;  ///< Gilbert-Elliott channel state
  std::priority_queue<InFlight, std::vector<InFlight>, std::greater<>>
      pending_;
  std::uint64_t next_seq_ = 0;
  std::size_t sent_ = 0;
  std::size_t dropped_ = 0;
};

}  // namespace cvsafe::comm
