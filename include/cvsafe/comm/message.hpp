#pragma once

#include <cstdint>

#include "cvsafe/vehicle/state.hpp"

/// \file message.hpp
/// V2V message content, Section II-A of the paper.
///
/// Every transmission period a vehicle broadcasts its exact state
/// (p_i, v_i, a_i) stamped with the sampling time. The *content* is
/// accurate; the *delivery* may be delayed or dropped (see channel.hpp).

namespace cvsafe::comm {

/// A broadcast state report from vehicle \p sender.
struct Message {
  std::uint32_t sender = 0;       ///< id of the transmitting vehicle
  vehicle::VehicleSnapshot data;  ///< exact (t, p, v, a) at sampling time

  /// Sampling timestamp of the payload.
  double stamp() const { return data.t; }
};

}  // namespace cvsafe::comm
