#pragma once

#include <cstddef>

#include "cvsafe/util/linalg.hpp"

/// \file consistency.hpp
/// Normalized-innovation-squared (NIS) consistency monitoring for the
/// Kalman filter.
///
/// The information filter intersects the Kalman confidence interval with
/// sound set bounds; that intersection is only useful when the filter is
/// *consistent* — its innovations behave like its covariance predicts.
/// A diverged filter (e.g. after unmodeled maneuvers) produces
/// overconfident intervals. This monitor tracks the exponentially
/// weighted mean of the NIS statistic
///
///   e_k = y_k^T S_k^{-1} y_k,  y_k = z_k - H x_k|k-1,  S_k = P + R,
///
/// whose expectation is the measurement dimension (2) for a consistent
/// filter, and flags divergence when the running mean leaves a
/// configurable band.

namespace cvsafe::filter {

/// EWMA-based NIS monitor.
class NisMonitor {
 public:
  /// \param alpha      EWMA weight of the newest sample (0..1]
  /// \param high_gate  divergence threshold on the running mean
  ///                   (expectation is 2 for the 2-D measurement)
  /// \param warmup     updates before verdicts are issued
  explicit NisMonitor(double alpha = 0.05, double high_gate = 8.0,
                      std::size_t warmup = 10);

  /// Feeds one innovation \p y with innovation covariance \p s.
  /// Returns the NIS value of this sample.
  double update(const util::Vec2& y, const util::Mat2& s);

  /// Running (EWMA) mean of the NIS statistic.
  double mean_nis() const { return mean_; }

  /// Number of samples absorbed.
  std::size_t count() const { return count_; }

  /// True when the filter's innovations are implausibly large for its
  /// claimed covariance (overconfident / diverged filter).
  bool diverged() const;

  /// Resets the statistic (e.g. after a message rollback re-anchors the
  /// filter).
  void reset();

 private:
  double alpha_;
  double high_gate_;
  std::size_t warmup_;
  double mean_ = 0.0;
  std::size_t count_ = 0;
};

}  // namespace cvsafe::filter
