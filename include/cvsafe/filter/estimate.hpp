#pragma once

#include "cvsafe/comm/message.hpp"
#include "cvsafe/sensing/sensor.hpp"
#include "cvsafe/util/interval.hpp"

/// \file estimate.hpp
/// Common state-estimate types and the estimator interface.
///
/// Every planner variant in the paper consumes an estimate of each other
/// vehicle's state; they differ in *how* the estimate is produced:
///  * pure NN baseline      — naive extrapolation of the latest raw info;
///  * basic compound        — sound set bounds via reachability (Eq. 2);
///  * ultimate compound     — information filter: reachability ∩ Kalman.

namespace cvsafe::filter {

/// Set-valued + point estimate of one vehicle's state at time t.
struct StateEstimate {
  double t = 0.0;         ///< estimation time
  util::Interval p;       ///< position bounds [m]
  util::Interval v;       ///< velocity bounds [m/s]
  double p_hat = 0.0;     ///< point estimate of position
  double v_hat = 0.0;     ///< point estimate of velocity
  double a_hat = 0.0;     ///< latest known acceleration (for aggressive est.)
  bool valid = false;     ///< false until any information has arrived
};

/// Interface of per-vehicle state estimators driven by the simulation loop.
class Estimator {
 public:
  virtual ~Estimator() = default;

  /// Feeds a noisy onboard-sensor reading (arrives without delay).
  virtual void on_sensor(const sensing::SensorReading& reading) = 0;

  /// Feeds a received V2V message (exact content, possibly delayed).
  virtual void on_message(const comm::Message& msg) = 0;

  /// Produces the estimate for the current time \p t.
  virtual StateEstimate estimate(double t) const = 0;
};

}  // namespace cvsafe::filter
