#pragma once

#include <optional>
#include <vector>

#include "cvsafe/filter/consistency.hpp"
#include "cvsafe/filter/kalman_core.hpp"
#include "cvsafe/obs/recorder.hpp"
#include "cvsafe/sensing/sensor.hpp"
#include "cvsafe/util/interval.hpp"
#include "cvsafe/util/linalg.hpp"

/// \file kalman.hpp
/// Kalman filter on (position, velocity), Section III-B of the paper.
///
/// The model matrices are exactly those of the paper:
///
///   F = [1 dt; 0 1],  G = [dt^2/2; dt],
///   Q = [dt^4/4 dt^3/2; dt^3/2 dt^2] * delta_a^2 / 3,
///   R = diag(delta_p^2 / 3, delta_v^2 / 3),
///
/// where delta_* are the uniform sensor-noise half-widths (a uniform
/// distribution on [-d, d] has variance d^2/3).
///
/// Beyond the textbook filter, the paper's *message rollback* extension is
/// implemented: the filter stores its per-period priors and measurements,
/// and when a (delayed) V2V message reporting the exact state at time t_k
/// arrives, the filter resets its estimate at t_k to the exact value and
/// replays all later sensor updates, sharpening the whole recent history.

namespace cvsafe::filter {

/// Filter configuration derived from the sensor model.
struct KalmanConfig {
  double dt = 0.1;       ///< sensing period dt_s [s]
  double delta_p = 1.0;  ///< sensor position noise half-width [m]
  double delta_v = 1.0;  ///< sensor velocity noise half-width [m/s]
  double delta_a = 1.0;  ///< sensor acceleration noise half-width [m/s^2]

  /// Number of standard deviations used for interval output (default 3).
  double sigma_bound = 3.0;

  /// How many past periods are kept for message rollback.
  std::size_t history_depth = 64;

  /// Adaptive process noise: when the NIS consistency monitor flags the
  /// filter as overconfident (innovations larger than the covariance
  /// claims — e.g. the observed vehicle maneuvers harder than the model
  /// assumes), the process noise Q is scaled up geometrically until
  /// consistency recovers, then decays back. Off by default so the
  /// textbook filter of the paper is the baseline behavior.
  bool adaptive = false;
  double q_scale_max = 64.0;   ///< upper bound on the Q inflation
  double q_scale_grow = 1.5;   ///< multiplier while inconsistent
  double q_scale_decay = 0.95; ///< per-update decay toward 1 when calm
};

/// Two-state Kalman filter with message rollback.
class KalmanFilter {
 public:
  explicit KalmanFilter(KalmanConfig config);

  const KalmanConfig& config() const { return config_; }

  /// True once at least one measurement has been absorbed.
  bool initialized() const { return initialized_; }

  /// Absorbs one sensor reading (must arrive in time order, one per
  /// sensing period). The first reading initializes the filter.
  void update(const sensing::SensorReading& reading);

  /// Message rollback: the exact state (p, v) and acceleration a applied
  /// at time t_k. Resets the estimate at t_k and replays every stored
  /// sensor update after t_k. Messages older than the stored history (or
  /// older than an already-applied message) are ignored.
  void correct_with_message(double t_k, double p, double v, double a);

  /// Point estimate extrapolated to time \p t (>= time of last update),
  /// using the last known acceleration as the control input.
  util::Vec2 state_at(double t) const;

  /// Covariance extrapolated to time \p t.
  util::Mat2 covariance_at(double t) const;

  /// Position interval [p_hat - k sigma_p, p_hat + k sigma_p] at time t.
  util::Interval position_interval(double t) const;

  /// Velocity interval at time t.
  util::Interval velocity_interval(double t) const;

  /// Layout-independent snapshot of the anchored state (see
  /// kalman_core.hpp); what the plausibility gate's innovation screen
  /// consumes.
  kalman_core::KalmanView view() const {
    return kalman_core::KalmanView{initialized_, t_, last_a_,
                                   config_.delta_a, x_, p_};
  }

  /// Time of the last absorbed measurement.
  double last_update_time() const { return t_; }

  /// NIS consistency monitor over the measurement innovations; use
  /// nis().diverged() to detect an overconfident / diverged filter (the
  /// monitor resets whenever a message rollback re-anchors the state).
  const NisMonitor& nis() const { return nis_; }

  /// Current process-noise inflation factor (1 unless adaptive mode has
  /// reacted to inconsistent innovations).
  double q_scale() const { return q_scale_; }

  /// Attach a trace sink; every message rollback/replay is emitted with
  /// its anchor time and replay extent. Pass nullptr to detach.
  void set_recorder(obs::Recorder* recorder) { recorder_ = recorder; }

 private:
  struct HistoryEntry {
    sensing::SensorReading reading;  // measurement absorbed at this period
    util::Vec2 prior_x;              // estimate before the update
    util::Mat2 prior_p;              // covariance before the update
  };

  /// Performs the measurement-update + predict cycle in place.
  void apply_update(const sensing::SensorReading& reading);

  /// Appends to the rollback ring, overwriting the oldest entry once the
  /// preallocated capacity is full (same retention as push_back + trim on
  /// the historical deque, but allocation-free in steady state).
  void history_push(const HistoryEntry& entry);

  /// Entry at logical position \p i (0 = oldest retained period).
  const HistoryEntry& history_at(std::size_t i) const {
    return history_[(history_head_ + i) % history_.size()];
  }

  KalmanConfig config_;
  util::Mat2 r_;

  bool initialized_ = false;
  double t_ = 0.0;        ///< time of the last absorbed measurement
  double last_a_ = 0.0;   ///< last control input (measured or from message)
  util::Vec2 x_{};        ///< filtered estimate at t_
  util::Mat2 p_{};        ///< covariance at t_
  double applied_msg_time_ = -1.0;
  /// Rollback history as a preallocated ring buffer: capacity is fixed at
  /// construction (max(history_depth, 1)), so the per-update push never
  /// allocates — a requirement for the zero-alloc steady-state episode
  /// step in the fleet engine.
  std::vector<HistoryEntry> history_;
  std::size_t history_head_ = 0;  ///< index of the oldest retained entry
  std::size_t history_size_ = 0;  ///< number of valid entries
  NisMonitor nis_;
  double q_scale_ = 1.0;
  obs::Recorder* recorder_ = nullptr;
};

}  // namespace cvsafe::filter
