#pragma once

#include <optional>

#include "cvsafe/filter/estimate.hpp"
#include "cvsafe/filter/kalman.hpp"
#include "cvsafe/filter/plausibility.hpp"
#include "cvsafe/filter/reachability.hpp"
#include "cvsafe/vehicle/dynamics.hpp"

/// \file info_filter.hpp
/// The information filter of Section III-B: reachability analysis on
/// delayed messages joined (interval intersection) with the Kalman-filter
/// confidence interval on noisy sensor readings.
///
/// The same class, with the Kalman fusion disabled, implements the sound
/// set-bound estimator used by the *basic* compound planner.

namespace cvsafe::filter {

/// Feature switches of the information filter.
struct InfoFilterOptions {
  /// Reachability propagation of the latest V2V message (Eq. 2).
  bool use_message_reachability = true;

  /// Reachability propagation of the latest raw sensor reading
  /// (measurement noise inflates the initial bounds).
  bool use_sensor_reachability = true;

  /// Kalman-filter interval fusion (the paper's information filter).
  bool use_kalman = false;

  /// Message rollback inside the Kalman filter (paper's extension).
  bool kalman_message_rollback = true;

  /// Options of the basic compound planner (sound bounds only).
  static InfoFilterOptions basic();

  /// Options of the ultimate compound planner (full information filter).
  static InfoFilterOptions ultimate();
};

/// Per-observed-vehicle estimator fusing messages and sensor readings.
class InformationFilter final : public Estimator {
 public:
  /// \param limits     actuation limits of the observed vehicle
  /// \param sensor     noise/timing model of the onboard sensor
  /// \param options    which fusion stages are enabled
  /// \param gate       message plausibility screens (default: permissive,
  ///                   i.e. non-finite rejection only — bit-identical to
  ///                   the ungated filter on honest channels)
  InformationFilter(vehicle::VehicleLimits limits,
                    sensing::SensorConfig sensor, InfoFilterOptions options,
                    GateConfig gate = GateConfig::permissive());

  void on_sensor(const sensing::SensorReading& reading) override;
  void on_message(const comm::Message& msg) override;

  /// Joined estimate at time \p t. The interval is the intersection of all
  /// enabled sources; if the (probabilistic) Kalman interval is disjoint
  /// from the (sound) reachability bounds, the reachability bounds win.
  StateEstimate estimate(double t) const override;

  const InfoFilterOptions& options() const { return options_; }

  /// Read access to the embedded Kalman filter (diagnostics, Fig. 6a).
  const KalmanFilter& kalman() const { return kalman_; }

  /// The current recursive set-membership bounds (time of last fusion).
  const std::optional<StateBounds>& fused_bounds() const { return fused_; }

  /// Timestamp of the newest *accepted* message (-1 before the first).
  double last_message_time() const { return last_msg_time_; }

  /// Newest information of any kind absorbed so far (-1 before any).
  double newest_information_time() const {
    return last_msg_time_ > last_sense_time_ ? last_msg_time_
                                             : last_sense_time_;
  }

  /// Gate decisions over this estimator's message stream.
  const RejectionCounters& rejections() const { return gate_.counters(); }

  /// Read access to the plausibility gate (thresholds, suspect state).
  const PlausibilityGate& gate() const { return gate_; }

  /// Attach a trace sink to both embedded stages: the plausibility gate
  /// (rejection events) and the Kalman filter (rollback events). Pass
  /// nullptr to detach.
  void set_recorder(obs::Recorder* recorder) {
    gate_.set_recorder(recorder);
    kalman_.set_recorder(recorder);
  }

  /// Filter health at time \p t: false when the Kalman NIS monitor has
  /// diverged or the gate rejected a message within its suspect-hold
  /// window. Drives the EMERGENCY-BIASED rung of the degradation ladder.
  bool consistent_at(double t) const {
    if (options_.use_kalman && kalman_.initialized() &&
        kalman_.nis().diverged()) {
      return false;
    }
    return !gate_.recently_rejected(t);
  }

 private:
  /// Intersects \p incoming (bounds at its own timestamp) into the
  /// recursive estimate: propagate the previous bounds to the incoming
  /// time, intersect, and guard against numerically empty results.
  void fuse(const StateBounds& incoming);

  vehicle::VehicleLimits limits_;
  sensing::SensorConfig sensor_;
  InfoFilterOptions options_;
  KalmanFilter kalman_;
  PlausibilityGate gate_;

  /// Recursive sound bounds: the intersection of the propagated bounds
  /// from EVERY past message and sensor reading (a set-membership
  /// filter). Guarantees that the derived passing-window bounds evolve
  /// monotonically in absolute time — new noise can tighten but never
  /// displace them — which the runtime monitor's inductive safety
  /// argument relies on.
  std::optional<StateBounds> fused_;

  double last_msg_accel_ = 0.0;
  double last_sense_accel_ = 0.0;
  double last_msg_time_ = -1.0;
  double last_sense_time_ = -1.0;
};

}  // namespace cvsafe::filter
