#pragma once

#include <cstddef>
#include <optional>
#include <vector>

#include "cvsafe/filter/estimate.hpp"
#include "cvsafe/filter/fleet_estimator.hpp"
#include "cvsafe/filter/kalman.hpp"
#include "cvsafe/filter/plausibility.hpp"
#include "cvsafe/filter/reachability.hpp"
#include "cvsafe/util/contracts.hpp"
#include "cvsafe/vehicle/dynamics.hpp"

/// \file info_filter.hpp
/// The information filter of Section III-B: reachability analysis on
/// delayed messages joined (interval intersection) with the Kalman-filter
/// confidence interval on noisy sensor readings.
///
/// The same class, with the Kalman fusion disabled, implements the sound
/// set-bound estimator used by the *basic* compound planner.
///
/// Two execution modes share every formula:
///
///   scalar  — the filter owns its KalmanFilter and computes its
///             reachability propagation inline in estimate(); this is the
///             reference implementation used by the per-episode engine.
///   pooled  — bind_fleet() moves the Kalman state into a shared
///             filter::FleetEstimator lane and the fleet engine batches
///             the per-step arithmetic through update_batch /
///             predict_batch / ReachSweep; estimate() then reads the
///             sweeps' caches. Both modes are bit-identical by
///             construction (shared kalman_core + shared propagate
///             kernels), pinned by tests/filter_fleet_test.cpp.

namespace cvsafe::filter {

/// Feature switches of the information filter.
struct InfoFilterOptions {
  /// Reachability propagation of the latest V2V message (Eq. 2).
  bool use_message_reachability = true;

  /// Reachability propagation of the latest raw sensor reading
  /// (measurement noise inflates the initial bounds).
  bool use_sensor_reachability = true;

  /// Kalman-filter interval fusion (the paper's information filter).
  bool use_kalman = false;

  /// Message rollback inside the Kalman filter (paper's extension).
  bool kalman_message_rollback = true;

  /// Options of the basic compound planner (sound bounds only).
  static InfoFilterOptions basic();

  /// Options of the ultimate compound planner (full information filter).
  static InfoFilterOptions ultimate();
};

class ReachSweep;

/// Per-observed-vehicle estimator fusing messages and sensor readings.
class InformationFilter final : public Estimator {
 public:
  /// \param limits     actuation limits of the observed vehicle
  /// \param sensor     noise/timing model of the onboard sensor
  /// \param options    which fusion stages are enabled
  /// \param gate       message plausibility screens (default: permissive,
  ///                   i.e. non-finite rejection only — bit-identical to
  ///                   the ungated filter on honest channels)
  InformationFilter(vehicle::VehicleLimits limits,
                    sensing::SensorConfig sensor, InfoFilterOptions options,
                    GateConfig gate = GateConfig::permissive());

  // A pool-bound filter owns a FleetEstimator slot; copying would
  // double-release it. The fleet pool holds filters in place.
  InformationFilter(const InformationFilter&) = delete;
  InformationFilter& operator=(const InformationFilter&) = delete;
  InformationFilter(InformationFilter&& other) noexcept;
  InformationFilter& operator=(InformationFilter&&) = delete;
  ~InformationFilter() override;

  /// Switches to pooled mode: the Kalman state moves into a lane of
  /// \p fleet (released on destruction) so the fleet engine can batch the
  /// predict/update arithmetic across every resident episode. Must be
  /// called before any reading/message is absorbed. A no-op for
  /// configurations without Kalman fusion — their only per-step state is
  /// the fused bounds, which the ReachSweep batches without a slot.
  void bind_fleet(FleetEstimator& fleet);

  /// True once bind_fleet has moved this filter's Kalman state into a
  /// pool lane.
  bool pool_bound() const { return fleet_ != nullptr; }

  /// Stages this filter's per-step sweep work at query time \p t: the
  /// fused-bound reachability propagation into \p reach and (pooled
  /// Kalman lanes) the state/covariance extrapolation into the fleet
  /// estimator's predict stage. After the sweeps run, estimate(t) is
  /// pure cache reads.
  void stage_sweeps(double t, ReachSweep& reach);

  /// Write-back seam of the ReachSweep: caches propagate(*fused_bounds(),
  /// query_t, limits()) so estimate(query_t) skips the inline
  /// propagation. Invalidated by every fuse (the cache never outlives the
  /// bounds it was computed from).
  void set_reach_cache(double query_t, const StateBounds& propagated) {
    reach_cache_ = propagated;
    reach_cache_query_ = query_t;
  }

  const vehicle::VehicleLimits& limits() const { return limits_; }

  void on_sensor(const sensing::SensorReading& reading) override;
  void on_message(const comm::Message& msg) override;

  /// Joined estimate at time \p t. The interval is the intersection of all
  /// enabled sources; if the (probabilistic) Kalman interval is disjoint
  /// from the (sound) reachability bounds, the reachability bounds win.
  StateEstimate estimate(double t) const override;

  const InfoFilterOptions& options() const { return options_; }

  /// Read access to the embedded Kalman filter (diagnostics, Fig. 6a).
  /// Only present in scalar mode with Kalman fusion enabled; pooled
  /// filters expose their state via kalman_view().
  const KalmanFilter& kalman() const {
    CVSAFE_EXPECTS(kalman_.has_value(),
                   "no embedded Kalman filter (disabled or pool-bound)");
    return *kalman_;
  }

  /// Snapshot of the Kalman state regardless of where it lives (the
  /// scalar filter or a fleet lane). Requires Kalman fusion enabled.
  kalman_core::KalmanView kalman_view() const {
    CVSAFE_EXPECTS(options_.use_kalman,
                   "kalman_view without Kalman fusion enabled");
    return fleet_ ? fleet_->view(fleet_slot_) : kalman_->view();
  }

  /// The current recursive set-membership bounds (time of last fusion).
  const std::optional<StateBounds>& fused_bounds() const { return fused_; }

  /// Timestamp of the newest *accepted* message (-1 before the first).
  double last_message_time() const { return last_msg_time_; }

  /// Newest information of any kind absorbed so far (-1 before any).
  double newest_information_time() const {
    return last_msg_time_ > last_sense_time_ ? last_msg_time_
                                             : last_sense_time_;
  }

  /// Gate decisions over this estimator's message stream.
  const RejectionCounters& rejections() const { return gate_.counters(); }

  /// Read access to the plausibility gate (thresholds, suspect state).
  const PlausibilityGate& gate() const { return gate_; }

  /// Attach a trace sink to both embedded stages: the plausibility gate
  /// (rejection events) and the Kalman filter (rollback events). Pass
  /// nullptr to detach. (The fleet engine never attaches allocating
  /// recorders — pooled lanes use set_ring instead.)
  void set_recorder(obs::Recorder* recorder) {
    gate_.set_recorder(recorder);
    if (kalman_) kalman_->set_recorder(recorder);
  }

  /// Attach a flight-recorder ring to the gate (the fleet-pool seam:
  /// rings are lane-resident PODs, safe where allocating recorders are
  /// not). Pass nullptr to detach.
  void set_ring(obs::RingRecorder* ring) { gate_.set_ring(ring); }

  /// Filter health at time \p t: false when the Kalman NIS monitor has
  /// diverged or the gate rejected a message within its suspect-hold
  /// window. Drives the EMERGENCY-BIASED rung of the degradation ladder.
  bool consistent_at(double t) const {
    if (options_.use_kalman) {
      if (fleet_ ? (fleet_->initialized(fleet_slot_) &&
                    fleet_->nis(fleet_slot_).diverged())
                 : (kalman_->initialized() && kalman_->nis().diverged())) {
        return false;
      }
    }
    return !gate_.recently_rejected(t);
  }

 private:
  /// Intersects \p incoming (bounds at its own timestamp) into the
  /// recursive estimate: propagate the previous bounds to the incoming
  /// time, intersect, and guard against numerically empty results.
  void fuse(const StateBounds& incoming);

  /// The Kalman configuration both stores are built from.
  KalmanConfig kalman_config() const;

  vehicle::VehicleLimits limits_;
  sensing::SensorConfig sensor_;
  InfoFilterOptions options_;
  /// Scalar-mode Kalman state; engaged only when options_.use_kalman and
  /// the filter is not pool-bound. Leaving it out entirely for the sound
  /// bounds-only configurations halves the filter's footprint (the
  /// filter's dominant member is the rollback history ring).
  std::optional<KalmanFilter> kalman_;
  /// Pooled-mode Kalman state: a lane of the shared fleet estimator.
  FleetEstimator* fleet_ = nullptr;
  std::size_t fleet_slot_ = 0;
  PlausibilityGate gate_;

  /// Recursive sound bounds: the intersection of the propagated bounds
  /// from EVERY past message and sensor reading (a set-membership
  /// filter). Guarantees that the derived passing-window bounds evolve
  /// monotonically in absolute time — new noise can tighten but never
  /// displace them — which the runtime monitor's inductive safety
  /// argument relies on.
  std::optional<StateBounds> fused_;

  /// ReachSweep write-back: propagate(*fused_, reach_cache_query_,
  /// limits_) as of the last sweep; reset by every fuse.
  std::optional<StateBounds> reach_cache_;
  double reach_cache_query_ = -1.0;

  double last_msg_accel_ = 0.0;
  double last_sense_accel_ = 0.0;
  double last_msg_time_ = -1.0;
  double last_sense_time_ = -1.0;
};

/// The fleet engine's batched reachability pass: every pooled filter
/// stages its fused bounds (SoA per-field arrays) and one run() call
/// propagates all of them through the shared propagate_batch kernel,
/// writing each filter's reach cache back. Staging order is irrelevant —
/// lanes are independent — but each lane's result is bit-identical to the
/// inline propagate it replaces.
class ReachSweep {
 public:
  /// Drops every staged lane (start of a shard-step sweep).
  void clear();

  /// Stages \p filter's fused bounds for propagation to time \p t. A
  /// filter without fused bounds yet stages nothing (estimate() handles
  /// that case before touching the reach path).
  void stage(InformationFilter& filter, double t);

  /// Propagates every staged lane and writes the reach caches back.
  /// Lanes are batched over runs of value-identical limits so one kernel
  /// call covers a homogeneous pool.
  void run();

  std::size_t size() const { return filters_.size(); }

 private:
  std::vector<InformationFilter*> filters_;
  std::vector<vehicle::VehicleLimits> limits_;
  // Per-field SoA staging of StateBounds + target time (kernel input).
  std::vector<double> t0_, p_lo_, p_hi_, v_lo_, v_hi_, t_;
  std::vector<double> out_t_, out_p_lo_, out_p_hi_, out_v_lo_, out_v_hi_;
};

}  // namespace cvsafe::filter
