#pragma once

#include "cvsafe/filter/estimate.hpp"

/// \file naive.hpp
/// Baseline estimator used by the *pure NN* planners of Section V.
///
/// A planner without the framework has no principled way to handle
/// communication disturbance: it simply takes the freshest piece of
/// information (message or raw sensor reading), treats it as exact, and
/// extrapolates it to the current time with constant velocity. Stale
/// messages and sensor noise therefore leak directly into its decisions —
/// which is precisely why the aggressive pure NN planner crashes in the
/// paper's experiments.

namespace cvsafe::filter {

/// Constant-velocity extrapolation of raw information.
///
/// Source selection: V2V message content is exact while sensor readings
/// are noisy, so the baseline uses the latest *message* as long as it is
/// not too stale (`max_message_age`), and falls back to the latest sensor
/// reading otherwise. This is why communication disturbance hurts the
/// baseline: drops and delays starve it of exact information and push it
/// onto the noisy sensor.
///
/// The known sensor uncertainty (+-delta_p, +-delta_v) is attached to
/// sensor-based estimates as fixed-width intervals — the paper's
/// Section IV notes that the window estimation "should take the
/// uncertainties delta_p and delta_v into consideration". The baseline
/// does NOT perform reachability analysis on stale information, so
/// extrapolation error leaks through undamped.
class NaiveExtrapolator final : public Estimator {
 public:
  /// Baseline that believes its information exactly (zero-width).
  NaiveExtrapolator() = default;

  /// Baseline aware of the sensor noise half-widths.
  NaiveExtrapolator(double delta_p, double delta_v,
                    double max_message_age = 0.5)
      : delta_p_(delta_p),
        delta_v_(delta_v),
        max_message_age_(max_message_age) {}

  void on_sensor(const sensing::SensorReading& reading) override;
  void on_message(const comm::Message& msg) override;

  /// Point estimate; sensor-based estimates carry +-delta intervals,
  /// message-based ones are believed exactly.
  StateEstimate estimate(double t) const override;

 private:
  struct Source {
    bool valid = false;
    double t = 0.0;
    double p = 0.0;
    double v = 0.0;
    double a = 0.0;
  };

  double delta_p_ = 0.0;
  double delta_v_ = 0.0;
  double max_message_age_ = 0.5;
  Source sensor_;
  Source message_;
};

}  // namespace cvsafe::filter
