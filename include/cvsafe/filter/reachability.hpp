#pragma once

#include <span>

#include "cvsafe/util/interval.hpp"
#include "cvsafe/vehicle/dynamics.hpp"

/// \file reachability.hpp
/// Reachability analysis on stale information, Eq. 2 of the paper.
///
/// Given the last known state bounds of a vehicle at time t_k and its
/// actuation limits, the set of states it can occupy at time t > t_k is
/// bounded by applying maximum acceleration (saturating at v_max) for the
/// upper position bound and maximum braking (saturating at v_min) for the
/// lower one — exactly the branch structure of Eq. 2.

namespace cvsafe::filter {

/// Set-valued state of a vehicle at a given time.
struct StateBounds {
  double t = 0.0;
  util::Interval p;  ///< position bounds
  util::Interval v;  ///< velocity bounds

  /// Bounds collapsing to the exact state (e.g. from a V2V message).
  static StateBounds exact(double t, double p, double v);

  /// Bounds from a noisy reading: +-dp around p, +-dv around v, clipped to
  /// the physically possible velocity range.
  static StateBounds from_measurement(double t, double p, double v, double dp,
                                      double dv,
                                      const vehicle::VehicleLimits& limits);
};

/// Propagates \p bounds forward to time \p t (>= bounds.t) assuming any
/// acceleration within the vehicle's limits may be applied at any instant,
/// with velocity saturating at the limits (Eq. 2 and its velocity analog).
/// Propagating to t <= bounds.t returns the input unchanged.
StateBounds propagate(const StateBounds& bounds, double t,
                      const vehicle::VehicleLimits& limits);

/// SoA entry point for the fleet engine: propagates a contiguous array of
/// bounds (one per pooled episode) to their per-lane target times under a
/// shared limit set. Element i is bit-identical to
/// propagate(bounds[i], t[i], limits); batching exists so the pool can
/// advance every resident episode's reachable set in one cache-friendly
/// sweep instead of per-episode virtual dispatch.
void propagate_batch(std::span<const StateBounds> bounds,
                     std::span<const double> t,
                     const vehicle::VehicleLimits& limits,
                     std::span<StateBounds> out);

/// Per-field SoA views of a reach sweep's source bounds: lane i holds
/// StateBounds{t0[i], [p_lo[i], p_hi[i]], [v_lo[i], v_hi[i]]} and a target
/// time t[i]. All spans must share one extent.
struct ReachLanes {
  std::span<const double> t0;
  std::span<const double> p_lo, p_hi;
  std::span<const double> v_lo, v_hi;
  std::span<const double> t;  ///< per-lane propagation target time
};

/// Fully-SoA reach sweep: lane i of the output arrays is bit-identical to
/// propagate({t0[i], ...}, t[i], limits) — including the dt <= 0 branch,
/// which reproduces the source bounds (out_t[i] == t0[i], not t[i]).
/// This is the fleet shard-step's reachability kernel: the per-field
/// arrays keep the sweep resident in cache at 8k pooled episodes where
/// per-lane StateBounds objects would not be.
void propagate_batch(const ReachLanes& in,
                     const vehicle::VehicleLimits& limits,
                     std::span<double> out_t, std::span<double> out_p_lo,
                     std::span<double> out_p_hi, std::span<double> out_v_lo,
                     std::span<double> out_v_hi);

}  // namespace cvsafe::filter
