#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "cvsafe/filter/consistency.hpp"
#include "cvsafe/filter/kalman.hpp"
#include "cvsafe/filter/kalman_core.hpp"
#include "cvsafe/sensing/sensor.hpp"
#include "cvsafe/util/interval.hpp"
#include "cvsafe/util/linalg.hpp"

/// \file fleet_estimator.hpp
/// Pool-resident SoA Kalman state for the fleet engine.
///
/// A fleet worker keeps thousands of resident episodes; with each episode
/// owning a scalar KalmanFilter, the estimate sweep touches one ~5 KB
/// object per lane and the shard-step becomes cache-residency bound (the
/// pool8k-vs-pool64 regression in BENCH_micro). The FleetEstimator holds
/// the same state as N scalar filters in per-field contiguous arrays —
/// state mean, covariance entries, innovation, NIS, rollback history —
/// and replaces N update()/state_at() calls with two fleet-wide sweeps:
///
///   update_batch()   absorbs every staged sensor reading (the Kalman
///                    measurement sweep);
///   predict_batch()  extrapolates every staged lane to its query time,
///                    caching (x, P) so the subsequent estimate reads are
///                    array lookups.
///
/// Bit-identity contract: every slot evolves exactly as a scalar
/// KalmanFilter fed the same sequence — both stores call the shared
/// kalman_core helpers, the staging just defers WHEN the arithmetic runs,
/// never what it computes (pinned by tests/filter_fleet_test).
///
/// Slots are free-listed: lane compaction in the episode pool swaps
/// *runners*, not estimator storage, so a slot handle stays valid for the
/// lifetime of the episode that acquired it. The pool is untraced (no
/// obs::Recorder seam) — traced runs use the scalar per-episode engine.

namespace cvsafe::filter {

/// SoA Kalman lanes with batched predict/update sweeps.
class FleetEstimator {
 public:
  FleetEstimator() = default;

  /// Claims a virgin slot configured with \p config. Every slot of one
  /// pool must share the configuration (fleet pools run one blueprint);
  /// the first acquire adopts it, later acquires contract-check equality.
  std::size_t acquire(const KalmanConfig& config);

  /// Returns \p slot to the free list (state is reset on re-acquire).
  void release(std::size_t slot);

  std::size_t capacity() const { return cap_; }
  std::size_t active() const { return cap_ - free_.size(); }
  const KalmanConfig& config() const { return config_; }

  bool initialized(std::size_t slot) const {
    return initialized_[slot] != 0;
  }
  double last_update_time(std::size_t slot) const { return t_[slot]; }
  const NisMonitor& nis(std::size_t slot) const { return nis_[slot]; }
  double q_scale(std::size_t slot) const { return q_scale_[slot]; }

  /// Innovation of the last measurement update of \p slot (SoA arrays;
  /// diagnostics and sweep tests).
  double innovation_p(std::size_t slot) const { return innov_p_[slot]; }
  double innovation_v(std::size_t slot) const { return innov_v_[slot]; }
  double last_nis(std::size_t slot) const { return last_nis_[slot]; }

  /// Layout-independent snapshot (plausibility gate, extrapolation).
  kalman_core::KalmanView view(std::size_t slot) const {
    return kalman_core::KalmanView{initialized_[slot] != 0, t_[slot],
                                   last_a_[slot], config_.delta_a,
                                   util::Vec2{x0_[slot], x1_[slot]},
                                   util::Mat2{p00_[slot], p01_[slot],
                                              p10_[slot], p11_[slot]}};
  }

  /// Stages one sensor reading for the next update_batch(). At most one
  /// reading per slot per sweep (the sensing period enforces this).
  void stage(std::size_t slot, const sensing::SensorReading& reading);

  /// The measurement sweep: absorbs every staged reading, slot-identical
  /// to KalmanFilter::update on the same sequence.
  void update_batch();

  /// Stages an extrapolation of \p slot to time \p t for predict_batch().
  void stage_predict(std::size_t slot, double t);

  /// The extrapolation sweep: caches (x, P) at the staged query time per
  /// lane; state_at / the interval queries then read the cache when asked
  /// for exactly that time (and recompute on the fly otherwise — the
  /// cache is a locality optimization, never a semantic one).
  void predict_batch();

  /// Message rollback, identical to KalmanFilter::correct_with_message
  /// (scalar: rollbacks are rare and replay a per-slot history ring).
  void correct_with_message(std::size_t slot, double t_k, double p, double v,
                            double a);

  util::Vec2 state_at(std::size_t slot, double t) const;
  util::Interval position_interval(std::size_t slot, double t) const;
  util::Interval velocity_interval(std::size_t slot, double t) const;

 private:
  struct HistoryEntry {
    sensing::SensorReading reading;
    util::Vec2 prior_x;
    util::Mat2 prior_p;
  };

  /// History slab layout is position-major — hist_[pos * cap_ + slot] —
  /// so lanes updating in lockstep write one contiguous run per sweep
  /// instead of cap_ strided ~5 KB-apart ring touches.
  HistoryEntry& hist(std::size_t slot, std::size_t pos) {
    return hist_[pos * cap_ + slot];
  }
  const HistoryEntry& hist_at(std::size_t slot, std::size_t i) const {
    return hist_[((hist_head_[slot] + i) % depth_) * cap_ + slot];
  }
  void history_push(std::size_t slot, const HistoryEntry& entry);
  void grow(std::size_t new_cap);
  void reset_slot(std::size_t slot);
  void absorb(std::size_t slot, const sensing::SensorReading& reading);

  KalmanConfig config_{};
  util::Mat2 r_{};
  std::size_t depth_ = 1;  ///< history ring depth (>= 1, see KalmanFilter)
  std::size_t cap_ = 0;
  bool configured_ = false;

  // Per-slot SoA state (indices parallel across every vector).
  std::vector<double> x0_, x1_;
  std::vector<double> p00_, p01_, p10_, p11_;
  std::vector<double> t_, last_a_, q_scale_, applied_msg_time_;
  std::vector<double> innov_p_, innov_v_, last_nis_;
  std::vector<std::uint8_t> initialized_;
  std::vector<NisMonitor> nis_;
  std::vector<std::size_t> hist_head_, hist_size_;
  std::vector<HistoryEntry> hist_;  ///< depth_ x cap_, position-major

  // Prediction cache written by predict_batch.
  std::vector<std::uint8_t> pr_valid_;
  std::vector<double> pr_t_, pr_x0_, pr_x1_, pr_p00_, pr_p01_, pr_p10_,
      pr_p11_;

  // Sweep staging.
  std::vector<std::size_t> free_;
  std::vector<std::uint32_t> staged_slots_;
  std::vector<sensing::SensorReading> staged_readings_;
  std::vector<std::uint32_t> predict_slots_;
  std::vector<double> predict_t_;
};

}  // namespace cvsafe::filter
