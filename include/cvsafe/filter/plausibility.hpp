#pragma once

#include <cstddef>
#include <optional>

#include "cvsafe/comm/message.hpp"
#include "cvsafe/filter/kalman_core.hpp"
#include "cvsafe/filter/reachability.hpp"
#include "cvsafe/obs/flight_recorder.hpp"
#include "cvsafe/obs/recorder.hpp"
#include "cvsafe/vehicle/dynamics.hpp"

/// \file plausibility.hpp
/// Message plausibility gate: the single choke point through which every
/// V2V payload must pass before an estimator consumes it.
///
/// Under the paper's model the message *content* is exact — only delivery
/// is disturbed — so the permissive default gate rejects nothing except
/// non-finite payloads and is bit-identical to ungated behavior. Under
/// fault injection (see fault/faulty_channel.hpp) payloads may be
/// corrupted or timestamp-spoofed; the hardened() gate then screens each
/// message against the vehicle's actuation envelope, a staleness budget,
/// the estimator's own sound set-membership bounds, and the Kalman
/// filter's innovation statistic before it can touch filter state.
///
/// The project lint rule `no-unchecked-message-fields` forbids direct
/// `Message` payload access inside filter/ outside this gate.

namespace cvsafe::filter {

/// Which screens the gate runs and how tight they are. Every screen is
/// individually disabled by its zero default, so GateConfig{} rejects
/// only non-finite payloads.
struct GateConfig {
  /// Reject payload velocity/acceleration outside the actuation envelope
  /// (inflated by range_margin on each side).
  bool check_range = false;
  double range_margin = 0.5;

  /// Reject payloads whose timestamp is older than the newest already
  /// absorbed information by more than max_age seconds (0 = off). Catches
  /// stale-timestamp spoofing without needing a receive-time clock.
  double max_age = 0.0;

  /// Reject payloads outside the estimator's propagated set-membership
  /// bounds inflated by bound_margin (0 = off). Sound bounds contain the
  /// true state, so an honest payload can never fail this screen.
  double bound_margin = 0.0;

  /// Reject payloads whose normalized innovation against the Kalman
  /// prediction exceeds nis_gate (0 = off; only applies once the Kalman
  /// filter is initialized and the payload is not in its past).
  double nis_gate = 0.0;

  /// When positive, accepted payloads are fused as boxes of these
  /// half-widths instead of exact points: under corruption faults a
  /// payload that survives screening may still be perturbed, so treating
  /// it as exact would poison the sound bounds.
  double trust_margin_p = 0.0;
  double trust_margin_v = 0.0;

  /// How long (s) after a rejection the estimator reports itself suspect
  /// (see PlausibilityGate::recently_rejected).
  double suspect_hold = 0.5;

  /// Default gate: non-finite screening only. Bit-identical to the
  /// pre-gate filters on every honest channel.
  static GateConfig permissive();

  /// Fault-campaign gate: all screens armed with paper-scale thresholds.
  static GateConfig hardened();

  /// Contract-checks every threshold (margins finite and >= 0, gates
  /// >= 0; rejects NaN).
  void validate() const;
};

/// Per-estimator tally of gate decisions (reset with the estimator).
struct RejectionCounters {
  std::size_t accepted = 0;
  std::size_t non_finite = 0;
  std::size_t out_of_range = 0;
  std::size_t stale = 0;
  std::size_t implausible = 0;  ///< failed bound or innovation screen

  std::size_t total_rejected() const {
    return non_finite + out_of_range + stale + implausible;
  }
};

/// A payload that passed every screen. Estimators must consume these
/// fields rather than the raw Message.
struct ScreenedMessage {
  double t = 0.0;
  double p = 0.0;
  double v = 0.0;
  double a = 0.0;
};

/// Stateful screen for one estimator's message stream.
class PlausibilityGate {
 public:
  PlausibilityGate() : PlausibilityGate(GateConfig::permissive()) {}
  explicit PlausibilityGate(GateConfig config) : config_(config) {
    config_.validate();
  }

  /// Runs every armed screen, in order: non-finite, actuation range,
  /// staleness (vs \p newest_time, the newest information the estimator
  /// has absorbed), set membership (vs \p fused propagated to the payload
  /// time), innovation (vs \p kalman, may be null). The Kalman state is
  /// passed as a layout-independent KalmanView so scalar filters and
  /// pool-resident FleetEstimator lanes screen through the identical
  /// code path. Returns the payload on acceptance, nullopt on rejection;
  /// counters updated either way.
  std::optional<ScreenedMessage> screen(const comm::Message& msg,
                                        const vehicle::VehicleLimits& limits,
                                        double newest_time,
                                        const std::optional<StateBounds>& fused,
                                        const kalman_core::KalmanView* kalman);

  /// Stateless non-finite screen for estimators without bound/innovation
  /// state (e.g. the naive extrapolator).
  static std::optional<ScreenedMessage> screen_fields(const comm::Message& msg);

  /// True within suspect_hold seconds of the last rejection.
  bool recently_rejected(double t) const {
    return last_rejection_time_ >= 0.0 &&
           t - last_rejection_time_ <= config_.suspect_hold;
  }

  const GateConfig& config() const { return config_; }
  const RejectionCounters& counters() const { return counters_; }

  /// Attach a trace sink; every rejection is emitted as a gate event
  /// carrying its reason code. Pass nullptr to detach.
  void set_recorder(obs::Recorder* recorder) { recorder_ = recorder; }

  /// Attach a flight-recorder ring (fleet-pool lane); every screen
  /// decision lands in the ring as a compact admit/reject event. Pass
  /// nullptr to detach.
  void set_ring(obs::RingRecorder* ring) { ring_ = ring; }

 private:
  GateConfig config_;
  RejectionCounters counters_;
  double last_rejection_time_ = -1.0;
  obs::Recorder* recorder_ = nullptr;
  obs::RingRecorder* ring_ = nullptr;
};

}  // namespace cvsafe::filter
