#pragma once

#include "cvsafe/util/linalg.hpp"

/// \file kalman_core.hpp
/// The shared (position, velocity) Kalman arithmetic, Section III-B.
///
/// Exactly one implementation of the model matrices and the predict /
/// Joseph-form measurement-update cycle exists in the tree: the scalar
/// KalmanFilter (kalman.hpp) and the pool-resident SoA FleetEstimator
/// (fleet_estimator.hpp) both call these helpers, so the batched fleet
/// sweeps are bit-identical to the per-lane filter *by construction* —
/// not by parallel maintenance of two copies of the same formulas.
///
/// KalmanView is the read-only snapshot either store materializes for
/// consumers that need the filter's prediction at an arbitrary time but
/// must not depend on the storage layout (the plausibility gate's
/// innovation screen, diagnostics).

namespace cvsafe::filter::kalman_core {

/// State transition F = [1 dt; 0 1].
inline util::Mat2 transition(double dt) {
  return util::Mat2{1.0, dt, 0.0, 1.0};
}

/// Control input map G = [dt^2/2; dt].
inline util::Vec2 control(double dt) { return util::Vec2{0.5 * dt * dt, dt}; }

/// Process noise Q = [dt^4/4 dt^3/2; dt^3/2 dt^2] * delta_a^2 / 3.
inline util::Mat2 process_noise(double dt, double delta_a) {
  const double var_a = delta_a * delta_a / 3.0;
  const double dt2 = dt * dt;
  const double dt3 = dt2 * dt;
  const double dt4 = dt3 * dt;
  return util::Mat2{0.25 * dt4, 0.5 * dt3, 0.5 * dt3, dt2} * var_a;
}

/// Predicts (x, P) forward by dt with control acceleration a.
inline void predict(util::Vec2& x, util::Mat2& p, double dt, double a,
                    const util::Mat2& q) {
  const util::Mat2 f = transition(dt);
  const util::Vec2 g = control(dt);
  x = f * x + g * a;
  p = f * p * f.transpose() + q;
}

/// Measurement update with H = I in Joseph form (keeps P symmetric
/// positive semidefinite): K = P (P + R)^-1, x += K (z - x),
/// P = (I-K) P (I-K)^T + K R K^T.
inline void joseph_update(util::Vec2& x, util::Mat2& p, const util::Vec2& z,
                          const util::Mat2& r) {
  const util::Mat2 k = p * (p + r).inverse();
  x = x + k * (z - x);
  const util::Mat2 ik = util::Mat2::identity() - k;
  p = ik * p * ik.transpose() + k * r * k.transpose();
}

/// Read-only snapshot of a Kalman filter's anchored state, independent of
/// whether the state lives in a scalar KalmanFilter or a FleetEstimator
/// lane. `t` is the time of the last absorbed measurement; `delta_a` the
/// sensor acceleration half-width driving the extrapolation process noise.
struct KalmanView {
  bool initialized = false;
  double t = 0.0;
  double last_a = 0.0;
  double delta_a = 1.0;
  util::Vec2 x{};
  util::Mat2 p{};
};

/// Point estimate of \p view extrapolated to time t (<= t returns the
/// anchored estimate unchanged).
inline util::Vec2 state_at(const KalmanView& view, double t) {
  const double dt = t - view.t;
  if (dt <= 0.0) return view.x;
  return transition(dt) * view.x + control(dt) * view.last_a;
}

/// Covariance of \p view extrapolated to time t.
inline util::Mat2 covariance_at(const KalmanView& view, double t) {
  const double dt = t - view.t;
  if (dt <= 0.0) return view.p;
  const util::Mat2 f = transition(dt);
  return f * view.p * f.transpose() + process_noise(dt, view.delta_a);
}

}  // namespace cvsafe::filter::kalman_core
