#pragma once

#include <iosfwd>

/// \file state.hpp
/// One-dimensional vehicle state, as in Section II-A of the paper.
///
/// The system model is one-dimensional along each vehicle's (fixed) path:
/// a state is (position, velocity) and the control input is a scalar
/// acceleration.

namespace cvsafe::vehicle {

/// Kinematic state of a vehicle along its path.
struct VehicleState {
  double p = 0.0;  ///< position along the path [m]
  double v = 0.0;  ///< velocity [m/s]
};

/// A state paired with the acceleration applied at that instant; this is
/// the triple (p_i, v_i, a_i) broadcast in V2V messages.
struct VehicleSnapshot {
  double t = 0.0;  ///< timestamp [s]
  VehicleState state;
  double a = 0.0;  ///< acceleration being applied at time t [m/s^2]
};

std::ostream& operator<<(std::ostream& os, const VehicleState& s);
std::ostream& operator<<(std::ostream& os, const VehicleSnapshot& s);

}  // namespace cvsafe::vehicle
