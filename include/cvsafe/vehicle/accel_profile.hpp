#pragma once

#include <cstddef>
#include <vector>

#include "cvsafe/util/rng.hpp"
#include "cvsafe/vehicle/dynamics.hpp"

/// \file accel_profile.hpp
/// Workload generation: random acceleration sequences for surrounding
/// vehicles.
///
/// Section V of the paper: "In each simulation, we randomly generate a
/// sequence of accelerations in which the i-th element is the control
/// input of C1 at the i-th timestamp." We generate a bounded, smoothed
/// random walk (vehicles do not flip between full throttle and full brake
/// every 50 ms) clipped to the actuation limits; an additional clamp keeps
/// the resulting velocity inside [v_min, v_max].

namespace cvsafe::vehicle {

/// Parameters of the random acceleration workload.
struct AccelProfileParams {
  double smoothing = 0.9;   ///< AR(1) coefficient of the random walk
  double jerk_scale = 1.0;  ///< std-dev of the per-step innovation [m/s^2]
  double bias = 0.0;        ///< mean acceleration [m/s^2]
};

/// Pre-generated open-loop acceleration sequence for a vehicle.
class AccelProfile {
 public:
  /// Generates \p num_steps accelerations for a vehicle with the given
  /// limits, starting from speed \p v0, stepping every \p dt seconds.
  /// The generated sequence respects both acceleration limits and
  /// (via clipping) velocity limits when integrated.
  static AccelProfile random(std::size_t num_steps, double dt, double v0,
                             const VehicleLimits& limits,
                             const AccelProfileParams& params,
                             util::Rng& rng);

  /// A constant-acceleration profile (baseline / tests).
  static AccelProfile constant(std::size_t num_steps, double a);

  /// Acceleration at step \p i; the last value repeats past the end.
  double at(std::size_t i) const;

  std::size_t size() const { return accels_.size(); }
  const std::vector<double>& values() const { return accels_; }

 private:
  explicit AccelProfile(std::vector<double> accels)
      : accels_(std::move(accels)) {}
  std::vector<double> accels_;
};

}  // namespace cvsafe::vehicle
