#pragma once

#include <cstddef>
#include <vector>

#include "cvsafe/vehicle/state.hpp"

/// \file trajectory.hpp
/// Time-indexed recording of a vehicle's motion during a simulation.

namespace cvsafe::vehicle {

/// A sequence of snapshots sampled every control step.
class Trajectory {
 public:
  /// Appends a snapshot. Timestamps must be non-decreasing.
  void push(const VehicleSnapshot& s);

  bool empty() const { return samples_.empty(); }
  std::size_t size() const { return samples_.size(); }
  const VehicleSnapshot& operator[](std::size_t i) const {
    return samples_[i];
  }
  const VehicleSnapshot& front() const { return samples_.front(); }
  const VehicleSnapshot& back() const { return samples_.back(); }
  auto begin() const { return samples_.begin(); }
  auto end() const { return samples_.end(); }

  /// Linear interpolation of the state at time \p t (clamped to the
  /// recorded range). Precondition: non-empty.
  VehicleState at(double t) const;

  /// Position series (one value per sample).
  std::vector<double> positions() const;

  /// Velocity series (one value per sample).
  std::vector<double> velocities() const;

  /// Earliest recorded time with position >= \p p, or negative when the
  /// trajectory never reaches it (linear interpolation between samples;
  /// assumes forward motion).
  double first_time_at_position(double p) const;

 private:
  std::vector<VehicleSnapshot> samples_;
};

}  // namespace cvsafe::vehicle
