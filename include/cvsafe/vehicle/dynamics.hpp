#pragma once

#include <cstddef>
#include <span>

#include "cvsafe/vehicle/state.hpp"

/// \file dynamics.hpp
/// Discrete double-integrator dynamics with actuation limits.
///
/// Section II-A of the paper models each vehicle as
///
///   [ p(t+dt) ]   [ 1  dt ] [ p(t) ]   [ dt^2/2 ]
///   [ v(t+dt) ] = [ 0   1 ] [ v(t) ] + [   dt   ] a(t)
///
/// Real vehicles additionally saturate: acceleration is clamped to
/// [a_min, a_max] and velocity to [v_min, v_max]. Two integration variants
/// are provided; the simulator uses the saturating one, which matches the
/// piecewise kinematics assumed by the reachability analysis (Eq. 2).

namespace cvsafe::vehicle {

/// Actuation and speed limits of a vehicle.
struct VehicleLimits {
  double v_min = 0.0;    ///< minimum velocity [m/s] (vehicles do not reverse)
  double v_max = 20.0;   ///< maximum velocity [m/s]
  double a_min = -6.0;   ///< maximum braking (negative) [m/s^2]
  double a_max = 3.0;    ///< maximum acceleration [m/s^2]

  /// Clamps an acceleration command into [a_min, a_max].
  double clamp_accel(double a) const;

  /// Clamps a velocity into [v_min, v_max].
  double clamp_speed(double v) const;

  /// Validity: v_min <= v_max, a_min < 0 < a_max.
  bool valid() const;
};

/// Double-integrator stepping.
class DoubleIntegrator {
 public:
  explicit DoubleIntegrator(VehicleLimits limits) : limits_(limits) {}

  const VehicleLimits& limits() const { return limits_; }

  /// Exact saturating step: the acceleration command is clamped, then the
  /// state is integrated continuously over dt with the velocity saturating
  /// at the limit it would cross (position integrates the saturated
  /// velocity profile). This is the model used by the simulator and is
  /// consistent with the reachability bounds of Eq. 2.
  VehicleState step(const VehicleState& s, double a_cmd, double dt) const;

  /// The paper's raw matrix update (no velocity saturation); the
  /// acceleration command is still clamped. Used in tests to cross-check
  /// the saturating variant away from the limits.
  VehicleState step_unsaturated(const VehicleState& s, double a_cmd,
                                double dt) const;

  /// SoA entry point for the fleet engine: steps \p count vehicles whose
  /// states live in contiguous position/velocity lanes, in place. Lane i
  /// is bit-identical to step({p[i], v[i]}, a_cmd[i], dt) — one contract
  /// check ahead of the loop instead of per element, and a contiguous
  /// branch-light body the compiler can keep in registers.
  void step_batch(std::span<double> p, std::span<double> v,
                  std::span<const double> a_cmd, double dt,
                  std::size_t count) const;

 private:
  VehicleLimits limits_;
};

}  // namespace cvsafe::vehicle
