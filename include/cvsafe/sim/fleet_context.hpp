#pragma once

#include "cvsafe/comm/channel.hpp"
#include "cvsafe/core/degradation.hpp"
#include "cvsafe/filter/fleet_estimator.hpp"
#include "cvsafe/filter/info_filter.hpp"

/// \file fleet_context.hpp
/// The pool-resident half of a fleet worker's safety stacks.
///
/// One FleetStackContext lives per worker shard (never shared across
/// threads). At admission each resident episode binds its estimator and
/// ladder state into the context's SoA stores (Episode::bind_fleet);
/// the worker's shard-step then drives the batched sweeps — message
/// slab pump, Kalman update_batch/predict_batch, ReachSweep — over all
/// resident lanes at once instead of walking one ~5 KB object pile per
/// episode. Slot lifetime follows the episode: the filter / planner
/// destructors release their lanes when the episode retires, and lane
/// compaction in the EpisodePool moves only runner handles, never the
/// pool-resident state.
///
/// The context MUST outlive the EpisodePool bound to it (declare it
/// first); releasing a slot touches the context's free lists.

namespace cvsafe::sim {

/// SoA stores + sweep staging shared by one worker's resident episodes.
struct FleetStackContext {
  /// Pooled Kalman lanes (filter::InformationFilter::bind_fleet).
  filter::FleetEstimator estimator;
  /// Pooled degradation-ladder hysteresis state
  /// (core::CompoundPlanner::rebind_ladder_pooled).
  core::FleetLadder ladder;
  /// Per-shard-step message landing zone of the batch pump sweep.
  comm::MessageSlab slab;
  /// Per-shard-step staging of the batched reachability propagation.
  filter::ReachSweep reach;
};

}  // namespace cvsafe::sim
