#pragma once

#include <cstdint>

#include "cvsafe/util/rng.hpp"

/// \file seeding.hpp
/// Episode seed derivation for batch runs.
///
/// Two policies cover the two workloads the experiments need:
///
///  * kPaired — seeds base, base+1, ..., base+n-1. Two batches run on
///    the same base see *paired* workloads and disturbances, which is
///    what the winning-percentage columns of Tables I and II and every
///    planner-vs-planner comparison rely on. The figure CSVs
///    (fig5_*.csv, multi_vehicle.csv) are generated under this policy.
///
///  * kDerived — seeds util::derive_seed(base, i). Streams are well
///    mixed, so sub-batches started from different bases cannot collide
///    the way overlapping `base + stride * i` ranges can. Pairing is
///    still deterministic: the same (base, i) always maps to the same
///    seed.

namespace cvsafe::sim {

/// How run_* batch helpers map episode indices to seeds.
enum class SeedPolicy {
  kPaired,   ///< base + i (paired workloads across same-base batches)
  kDerived,  ///< util::derive_seed(base, i) (collision-free streams)
};

/// The seed of episode \p index under \p policy.
inline std::uint64_t episode_seed(std::uint64_t base, std::size_t index,
                                  SeedPolicy policy) {
  return policy == SeedPolicy::kPaired
             ? base + index
             : util::derive_seed(base, index);
}

}  // namespace cvsafe::sim
