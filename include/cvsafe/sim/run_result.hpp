#pragma once

#include <array>
#include <cstddef>
#include <memory>
#include <span>
#include <utility>
#include <vector>

#include "cvsafe/core/degradation.hpp"

/// \file run_result.hpp
/// The unified episode outcome and batch aggregate shared by every
/// scenario: one RunResult / BatchStats family instead of the four
/// per-driver copies the eval layer used to carry. Scenario-specific
/// extras (e.g. the monitor statistics of a compound run) travel in a
/// typed extension slot rather than per-scenario result structs.

namespace cvsafe::sim {

/// Outcome classification of one engine step (post-dynamics states).
struct StepStatus {
  bool collided = false;  ///< entered the unsafe set
  bool reached = false;   ///< entered the target set
};

/// Outcome of a single closed-loop episode, scenario-independent.
struct RunResult {
  bool collided = false;    ///< entered the unsafe set before the target
  bool reached = false;     ///< reached the target set
  double reach_time = 0.0;  ///< t_r when reached
  double eta = 0.0;         ///< evaluation function (Section II-A)
  std::size_t steps = 0;    ///< control steps executed
  std::size_t emergency_steps = 0;  ///< steps handled by kappa_e

  /// Degradation-ladder occupancy per level (all zero when the ladder is
  /// disarmed; filled by the engine from the compound planner).
  std::array<std::size_t, core::kNumDegradationLevels> ladder_steps{};
  std::size_t ladder_transitions = 0;  ///< logged level changes

  /// Plausibility-gate tally across every estimator of the episode
  /// (filled by the scenario's finalize).
  std::size_t messages_accepted = 0;
  std::size_t messages_rejected = 0;

  /// Rejections split by gate reason, indexed by obs::GateRejectReason
  /// order: non_finite, out_of_range, stale, implausible. Sums to
  /// messages_rejected; feeds the fleet telemetry's per-reason counters.
  std::array<std::size_t, 4> rejection_reasons{};

  /// Attaches a scenario-specific extra (at most one per result; a second
  /// set_extra replaces the first). The slot is typed: extra<T>() returns
  /// the value only when queried with the type that stored it.
  template <typename T>
  void set_extra(T value) {
    extra_ = std::make_shared<T>(std::move(value));
    extra_tag_ = tag<T>();
  }

  /// The stored extra of type T, or nullptr when absent / different type.
  template <typename T>
  const T* extra() const {
    return extra_tag_ == tag<T>() ? static_cast<const T*>(extra_.get())
                                  : nullptr;
  }

 private:
  template <typename T>
  static const void* tag() {
    static const char id = 0;
    return &id;
  }

  std::shared_ptr<void> extra_;
  const void* extra_tag_ = nullptr;
};

/// Aggregate over a batch of episodes — the single implementation of the
/// safe-rate / reaching-time / emergency-frequency accumulation reported
/// in Tables I and II (and consumed by every scenario batch runner).
struct BatchStats {
  std::size_t n = 0;
  std::size_t safe_count = 0;       ///< episodes without collision
  std::size_t reached_count = 0;    ///< episodes reaching the target set
  std::size_t total_steps = 0;      ///< control steps across the batch
  std::size_t emergency_steps = 0;  ///< kappa_e steps across the batch
  double mean_eta = 0.0;            ///< mean evaluation value
  double mean_reach_time = 0.0;     ///< mean t_r over reached episodes
  std::vector<double> etas;         ///< per-episode eta (seed-aligned)

  double safe_rate() const {
    return n ? static_cast<double>(safe_count) / static_cast<double>(n) : 0.0;
  }
  double reach_rate() const {
    return n ? static_cast<double>(reached_count) / static_cast<double>(n)
             : 0.0;
  }
  double emergency_frequency() const {
    return total_steps ? static_cast<double>(emergency_steps) /
                             static_cast<double>(total_steps)
                       : 0.0;
  }

  /// Aggregates a seed-ordered result vector.
  static BatchStats from_results(std::span<const RunResult> results);

  /// Merges another batch (weighted means; etas concatenated in order).
  void merge(const BatchStats& other);
};

}  // namespace cvsafe::sim
