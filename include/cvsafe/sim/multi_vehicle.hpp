#pragma once

#include <cstdint>
#include <memory>

#include "cvsafe/scenario/multi_vehicle.hpp"
#include "cvsafe/sim/left_turn.hpp"

/// \file multi_vehicle.hpp
/// Closed-loop left turn against an oncoming platoon (the paper's general
/// n-vehicle system model, Section II-A) as a sim::Engine adapter: each
/// oncoming vehicle has its own V2V channel, sensor stream and
/// per-vehicle estimator pair.

namespace cvsafe::sim {

/// Configuration of the oncoming platoon.
struct MultiVehicleConfig {
  std::size_t num_oncoming = 2;   ///< vehicles on the opposing lane
  double platoon_spacing = 25.0;  ///< mean initial headway [m]
  double spacing_jitter = 8.0;    ///< +- uniform jitter on the headway [m]
};

/// Compound-planner configuration for the multi-vehicle run.
struct MultiAgentSetup {
  std::shared_ptr<const scenario::LeftTurnScenario> scenario;
  std::shared_ptr<const nn::Mlp> net;  ///< null -> analytic expert planner
  planners::ExpertParams expert_params =
      planners::ExpertParams::conservative();
  bool use_compound = true;
  bool use_info_filter = true;    ///< ultimate per-vehicle estimators
  bool use_aggressive = true;     ///< aggressive windows for the planner
  scenario::AggressiveBuffers buffers;
};

/// The multi-vehicle left-turn scenario plugged into the generic engine.
class MultiVehicleAdapter final
    : public ScenarioAdapter<scenario::LeftTurnMultiWorld> {
 public:
  MultiVehicleAdapter(LeftTurnSimConfig config, MultiVehicleConfig multi,
                      MultiAgentSetup setup);

  std::string_view name() const override { return "multi-vehicle"; }
  const RunConfig& run() const override { return config_; }
  std::unique_ptr<Episode<scenario::LeftTurnMultiWorld>> make_episode(
      util::Rng& rng, std::size_t total_steps,
      std::uint64_t seed) const override;

  const LeftTurnSimConfig& config() const { return config_; }
  const MultiVehicleConfig& multi() const { return multi_; }
  const MultiAgentSetup& setup() const { return setup_; }

 private:
  LeftTurnSimConfig config_;
  MultiVehicleConfig multi_;
  MultiAgentSetup setup_;
  std::shared_ptr<const scenario::MultiVehicleLeftTurn> math_;
};

/// Runs one episode with \p setup controlling the ego against
/// \p multi.num_oncoming vehicles driving random acceleration sequences.
RunResult run_multi_left_turn_simulation(const LeftTurnSimConfig& config,
                                         const MultiVehicleConfig& multi,
                                         const MultiAgentSetup& setup,
                                         std::uint64_t seed);

/// Parallel batch of multi-vehicle episodes (seed-paired under the
/// default policy).
BatchStats run_multi_batch(const LeftTurnSimConfig& config,
                           const MultiVehicleConfig& multi,
                           const MultiAgentSetup& setup, std::size_t n,
                           std::uint64_t base_seed = 1,
                           std::size_t threads = 0,
                           SeedPolicy policy = SeedPolicy::kPaired);

}  // namespace cvsafe::sim
