#pragma once

#include <span>
#include <string>

#include "cvsafe/obs/metrics.hpp"
#include "cvsafe/sim/fault_campaign.hpp"
#include "cvsafe/sim/run_result.hpp"

/// \file obs_summary.hpp
/// Bridges the engine's result types into the obs metrics registry and
/// renders the human-readable run summary lines the CLI prints.
///
/// The bridge is the per-shard accumulation story: every RunResult folds
/// into a registry with collect_run_metrics, shard registries merge with
/// MetricsRegistry::merge, and because both the fold and the merge are
/// name-ordered and order-insensitive over seed-ordered results, the
/// exported text is deterministic regardless of thread count.

namespace cvsafe::sim {

/// Folds one episode outcome into \p reg: episode/collision/reach/step
/// counters, ladder occupancy per level, message tallies, and the eta /
/// reach-time histograms.
void collect_run_metrics(obs::MetricsRegistry& reg, const RunResult& result);

/// collect_run_metrics over a seed-ordered batch.
void collect_metrics(obs::MetricsRegistry& reg,
                     std::span<const RunResult> results);

/// Folds a finished campaign into \p reg: the global counters plus
/// per-cell labeled counters (fault/scenario label pairs).
void collect_campaign_metrics(obs::MetricsRegistry& reg,
                              const CampaignResult& campaign);

/// The degradation-occupancy and message-tally summary lines of the CLI
/// `run` command (newline-terminated; empty string when the result
/// carries neither ladder steps nor message traffic).
std::string run_summary_text(const RunResult& result);

}  // namespace cvsafe::sim
