#pragma once

#include <cstdint>
#include <functional>
#include <memory>

#include "cvsafe/scenario/lane_change.hpp"
#include "cvsafe/sim/engine.hpp"

/// \file lane_change.hpp
/// The lane-change / merge scenario as a sim::Engine adapter — the same
/// closed-loop machinery as the left-turn case study, applied to the
/// second instantiation of the framework. Quantifies that the compound
/// planner's guarantee and efficiency story generalize beyond the
/// paper's case study.

namespace cvsafe::sim {

/// Configuration of one lane-change simulation cell.
struct LaneChangeSimConfig : RunConfig {
  LaneChangeSimConfig() {
    ego_limits = vehicle::VehicleLimits{0.0, 18.0, -6.0, 3.0};
    horizon = 30.0;
    ego_v0 = 12.0;
    sensor = sensing::SensorConfig::uniform(0.8);
  }

  scenario::LaneChangeGeometry geometry;
  vehicle::VehicleLimits c1_limits{3.0, 15.0, -3.0, 2.0};

  /// Leading-vehicle workload: initial headway ahead of the merge point
  /// and initial speed ranges.
  double c1_gap_min = 0.0;
  double c1_gap_max = 25.0;
  double c1_v_min = 4.0;
  double c1_v_max = 10.0;

  std::shared_ptr<const scenario::LaneChangeScenario> make_scenario() const;
};

/// Planner selection for the lane-change harness.
struct LaneChangePlannerConfig {
  /// Target-speed tracking gain of the (reckless) merging planner.
  double cruise_speed = 16.0;
  bool use_compound = true;          ///< monitor + emergency wrap
  bool use_info_filter = true;       ///< ultimate estimators for the monitor
};

/// The lane-change scenario plugged into the generic engine.
class LaneChangeAdapter final
    : public ScenarioAdapter<scenario::LaneChangeWorld> {
 public:
  /// Builds the embedded (kappa_n) planner for one episode; the adapter
  /// wraps it in the compound planner per the planner configuration.
  using PlannerFactory =
      std::function<std::shared_ptr<core::PlannerBase<
          scenario::LaneChangeWorld>>(const LaneChangeSimConfig&)>;

  LaneChangeAdapter(LaneChangeSimConfig config,
                    LaneChangePlannerConfig planner_cfg);

  std::string_view name() const override { return "lane-change"; }
  const RunConfig& run() const override { return config_; }
  std::unique_ptr<Episode<scenario::LaneChangeWorld>> make_episode(
      util::Rng& rng, std::size_t total_steps,
      std::uint64_t seed) const override;

  /// Replaces the default cruise controller as the embedded planner
  /// (custom baselines, examples).
  void set_planner_factory(PlannerFactory factory) {
    planner_factory_ = std::move(factory);
  }

  const LaneChangeSimConfig& config() const { return config_; }

 private:
  LaneChangeSimConfig config_;
  LaneChangePlannerConfig planner_cfg_;
  std::shared_ptr<const scenario::LaneChangeScenario> scn_;
  PlannerFactory planner_factory_;
};

/// Runs one lane-change episode.
RunResult run_lane_change_simulation(const LaneChangeSimConfig& config,
                                     const LaneChangePlannerConfig& planner,
                                     std::uint64_t seed);

/// Parallel batch (seed-paired under the default policy).
BatchStats run_lane_change_batch(const LaneChangeSimConfig& config,
                                 const LaneChangePlannerConfig& planner,
                                 std::size_t n, std::uint64_t base_seed = 1,
                                 std::size_t threads = 0,
                                 SeedPolicy policy = SeedPolicy::kPaired);

}  // namespace cvsafe::sim
