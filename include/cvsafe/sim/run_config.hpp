#pragma once

#include <cmath>
#include <cstddef>
#include <optional>

#include "cvsafe/comm/channel.hpp"
#include "cvsafe/core/degradation.hpp"
#include "cvsafe/fault/fault_plan.hpp"
#include "cvsafe/filter/plausibility.hpp"
#include "cvsafe/sensing/sensor.hpp"
#include "cvsafe/vehicle/dynamics.hpp"

/// \file run_config.hpp
/// The scenario-independent half of a closed-loop simulation
/// configuration. Every scenario config (left turn, lane change,
/// intersection, multi-vehicle) derives from RunConfig and adds its
/// geometry, traffic limits and workload parameters on top; the engine
/// (engine.hpp) only ever reads this base.

namespace cvsafe::sim {

/// Per-step loop parameters shared by every scenario. Defaults are the
/// paper's Section V left-turn setup; derived scenario configs override
/// them in their constructors.
struct RunConfig {
  vehicle::VehicleLimits ego_limits{0.0, 15.0, -6.0, 3.0};
  double dt_c = 0.05;     ///< control period [s]
  double horizon = 25.0;  ///< episode cut-off [s]
  double ego_v0 = 8.0;    ///< ego initial speed [m/s]
  comm::CommConfig comm = comm::CommConfig::no_disturbance();
  sensing::SensorConfig sensor = sensing::SensorConfig::uniform(1.0);

  /// Fault-injection plan (fault/fault_plan.hpp). The default plan is
  /// empty: every channel/sensor decorator is a pure pass-through and the
  /// episode is bit-identical to a build without the fault subsystem.
  fault::FaultPlan faults;

  /// Message plausibility screens for every information filter in the
  /// episode. Permissive default = non-finite rejection only.
  filter::GateConfig gate;

  /// Degradation-ladder thresholds; disarmed (nullopt) by default, in
  /// which case the compound planner behaves exactly as before.
  std::optional<core::LadderConfig> ladder;

  /// Control steps per episode (the engine's loop bound).
  std::size_t total_steps() const {
    return static_cast<std::size_t>(std::ceil(horizon / dt_c));
  }
};

}  // namespace cvsafe::sim
