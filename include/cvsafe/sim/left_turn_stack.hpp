#pragma once

#include <array>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "cvsafe/core/compound_planner.hpp"
#include "cvsafe/filter/info_filter.hpp"
#include "cvsafe/filter/naive.hpp"
#include "cvsafe/planners/ensemble.hpp"
#include "cvsafe/planners/expert.hpp"
#include "cvsafe/planners/nn_planner.hpp"
#include "cvsafe/scenario/safety_model.hpp"
#include "cvsafe/sensing/sensor.hpp"
#include "cvsafe/sim/fleet_context.hpp"

/// \file left_turn_stack.hpp
/// Assembly of one ego-vehicle control stack for the left-turn scenario:
/// estimators -> runtime monitor -> (NN | emergency) planner, per Fig. 2.
///
/// The configuration space covers every planner variant evaluated in the
/// paper plus the ablation crosses:
///
///   pure NN            — naive estimator, no monitor;
///   basic compound     — naive estimator for the NN, sound reachability
///                        bounds for the monitor, no aggressive shrink;
///   ultimate compound  — information filter (reachability ∩ Kalman) for
///                        both, aggressive unsafe set for the NN;
///   ablations          — each technique toggled independently.

namespace cvsafe::sim {

/// Which estimator feeds the embedded NN planner / the monitor.
struct AgentConfig {
  /// Wrap the planner in the compound planner (monitor + kappa_e).
  bool use_compound = true;

  /// Monitor + NN use the full information filter (Kalman fusion); when
  /// false the monitor uses sound reachability bounds only and the NN
  /// sees the naive extrapolation (pure-NN / basic behavior).
  bool use_info_filter = false;

  /// Feed the NN the aggressive (Eq. 8) window.
  bool use_aggressive = false;

  /// Buffers of the aggressive estimation.
  scenario::AggressiveBuffers buffers;

  /// Use the closed-form expert instead of a trained network as kappa_n
  /// (fast tests / baselines; the framework wraps any planner).
  bool use_expert_planner = false;
  planners::ExpertParams expert_params = planners::ExpertParams::conservative();

  /// Uncertainty-aversion of an ensemble kappa_n (only used when the
  /// stack is constructed with ensemble members): the commanded
  /// acceleration is reduced by this many member standard deviations.
  double ensemble_sigma_penalty = 0.0;

  /// Message plausibility screens of every information filter in the
  /// stack (filter/plausibility.hpp). Permissive default = non-finite
  /// rejection only, bit-identical to the ungated stack.
  filter::GateConfig gate;

  /// Degradation-ladder thresholds (core/degradation.hpp); armed only on
  /// compound stacks, disarmed (pre-ladder behavior) by default.
  std::optional<core::LadderConfig> ladder;

  static AgentConfig pure_nn();
  static AgentConfig basic_compound();
  static AgentConfig ultimate_compound();
};

/// One ego control stack with per-episode estimator state.
class LeftTurnStack {
 public:
  /// \param scenario  shared case-study math
  /// \param net       trained planner network (may be null when
  ///                  config.use_expert_planner is set)
  /// \param sensor    sensor model (noise feeds estimator construction)
  LeftTurnStack(std::shared_ptr<const scenario::LeftTurnScenario> scenario,
                std::shared_ptr<const nn::Mlp> net,
                sensing::SensorConfig sensor, AgentConfig config);

  /// Deep-ensemble variant: kappa_n is the ensemble mean, optionally
  /// reduced by config.ensemble_sigma_penalty member deviations.
  LeftTurnStack(std::shared_ptr<const scenario::LeftTurnScenario> scenario,
                std::vector<std::shared_ptr<const nn::Mlp>> ensemble,
                sensing::SensorConfig sensor, AgentConfig config);

  /// Binds the stack's pool-resident state into a fleet worker context:
  /// every information filter's Kalman lane (no-op for configurations
  /// without Kalman fusion) and the compound planner's ladder slot.
  /// Called once at fleet admission, before the first observation.
  void bind_fleet(FleetStackContext& ctx);

  /// Stages the per-step sweep work of every information filter at query
  /// time \p t (reachability propagation + pooled Kalman extrapolation);
  /// the fleet engine runs the batched sweeps before build_world.
  void stage_sweeps(double t, filter::ReachSweep& reach);

  /// Feeds a sensor reading of the oncoming vehicle.
  void observe_sensor(const sensing::SensorReading& reading);

  /// Feeds a delivered V2V message.
  void observe_message(const comm::Message& msg);

  /// Fills the estimator-derived fields of a world whose t/ego are
  /// already set (engine phase 1) and records it as last_world().
  void build_world(scenario::LeftTurnWorld& world);

  /// Plans the ego acceleration for the current step (builds the world
  /// view internally; equivalent to build_world + planner().plan()).
  double act(double t, const vehicle::VehicleState& ego);

  /// True iff the last planning step was handled by the emergency planner.
  bool last_was_emergency() const;

  /// Monitor statistics (empty stats when not a compound stack).
  core::MonitorStats monitor_stats() const;

  /// Planner hand-over events (empty when not a compound stack).
  std::vector<core::SwitchEvent> switch_events() const;

  /// Plausibility-gate tally summed over the stack's information
  /// filters: {messages accepted, messages rejected}.
  std::pair<std::size_t, std::size_t> message_tally() const;

  /// Rejections summed per gate reason (obs::GateRejectReason order:
  /// non_finite, out_of_range, stale, implausible).
  std::array<std::size_t, 4> message_reasons() const;

  /// The world view built by the last act()/build_world() (introspection
  /// and traces).
  const scenario::LeftTurnWorld& last_world() const { return last_world_; }

  const AgentConfig& config() const { return config_; }

  /// The assembled planner (the compound wrapper when configured).
  const std::shared_ptr<core::PlannerBase<scenario::LeftTurnWorld>>&
  planner_ptr() const {
    return planner_;
  }

  /// The compound planner, or nullptr when the stack is unmonitored.
  core::CompoundPlanner<scenario::LeftTurnWorld>* compound() const {
    return compound_;
  }

  /// Wires a trace sink through the stack: monitor + ladder (compound
  /// stacks) and the plausibility gate / Kalman filter of every
  /// information filter. Pass nullptr to detach.
  void attach_recorder(obs::Recorder* recorder);

  /// Wires a flight-recorder ring through the same stack (compound
  /// planner + information-filter gates). Pass nullptr to detach.
  void attach_ring(obs::RingRecorder* ring);

 private:
  /// Builds the estimators and wraps \p inner per the configuration.
  void setup(std::shared_ptr<core::PlannerBase<scenario::LeftTurnWorld>>
                 inner,
             const sensing::SensorConfig& sensor);

  std::shared_ptr<const scenario::LeftTurnScenario> scenario_;
  AgentConfig config_;

  std::unique_ptr<filter::Estimator> nn_estimator_;
  std::unique_ptr<filter::Estimator> monitor_estimator_;  ///< may alias null

  /// Typed non-owning views of the estimators above when they are
  /// information filters (gate tallies, degradation signals).
  filter::InformationFilter* nn_filter_ = nullptr;
  filter::InformationFilter* monitor_filter_ = nullptr;

  std::shared_ptr<core::PlannerBase<scenario::LeftTurnWorld>> planner_;
  core::CompoundPlanner<scenario::LeftTurnWorld>* compound_ = nullptr;

  scenario::LeftTurnWorld last_world_;
};

}  // namespace cvsafe::sim
