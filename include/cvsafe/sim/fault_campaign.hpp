#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

#include "cvsafe/comm/channel.hpp"
#include "cvsafe/core/degradation.hpp"
#include "cvsafe/fault/fault_plan.hpp"
#include "cvsafe/obs/flight_recorder.hpp"
#include "cvsafe/obs/metrics.hpp"
#include "cvsafe/sim/fleet.hpp"
#include "cvsafe/sim/run_result.hpp"

/// \file fault_campaign.hpp
/// End-to-end safety-invariant campaign: a fault-condition x scenario
/// matrix of closed-loop batches, each episode run with the hardened
/// plausibility gate and the degradation ladder armed, asserting the
/// framework's guarantee eta(kappa_c) >= 0 (no unsafe-set entry) under
/// every injected failure mode.
///
/// Determinism: cell seeds derive from (base seed, fault index, scenario
/// index) and episodes use SeedPolicy::kDerived, so the campaign CSV is
/// byte-identical across runs and thread counts.

namespace cvsafe::sim {

/// One (fault condition, scenario) cell aggregate.
struct CampaignCell {
  std::string fault;     ///< fault-axis label
  std::string scenario;  ///< scenario-axis label
  std::size_t episodes = 0;
  std::size_t collisions = 0;  ///< unsafe-set entries (must stay 0)
  std::size_t reached = 0;
  std::size_t steps = 0;
  std::size_t emergency_steps = 0;
  std::array<std::size_t, core::kNumDegradationLevels> ladder_steps{};
  std::size_t ladder_transitions = 0;
  std::size_t messages_accepted = 0;
  std::size_t messages_rejected = 0;
  double min_eta = 0.0;
  double mean_eta = 0.0;

  /// The paper's guarantee, per cell: no episode entered X_u.
  bool invariant_ok() const { return collisions == 0; }

  /// Hardened-gate rejection rate over the cell's message traffic
  /// (0 when the cell saw no messages). The adversarial search layer's
  /// stealth screen consumes this.
  double rejection_rate() const {
    const std::size_t total = messages_accepted + messages_rejected;
    return total == 0 ? 0.0
                      : static_cast<double>(messages_rejected) /
                            static_cast<double>(total);
  }
};

/// One resolved point on a campaign's fault axis: the decorator plan plus
/// the comm-layer disturbance it rides on. The campaign builds these from
/// preset names; the adversarial search layer (cvsafe::adv) synthesizes
/// them from optimizer candidates.
struct FaultCondition {
  std::string label;
  fault::FaultPlan plan;
  comm::CommConfig comm;

  /// Resolves a campaign fault-axis name: a FaultPlan preset name (over
  /// the paper's "messages delayed" channel, drop 0.2 / dt_d 0.25 s) or
  /// "burst" (plain Gilbert-Elliott channel, no decorator faults).
  /// Contract-fails on unknown names.
  static FaultCondition preset(const std::string& name);
};

/// Runs one hardened episode batch (plausibility gate hardened(),
/// degradation ladder armed) of \p scenario under \p cond. Untraced cells
/// run on the fleet engine (mega-batched planning, byte-identical across
/// thread counts); when \p trace is non-null every episode runs with an
/// obs::Recorder mounted and JSONL is appended in seed order. Results are
/// seed-ordered. Scenario names as CampaignConfig: "left-turn",
/// "lane-change", "intersection", "multi-vehicle".
///
/// \p sinks wires fleet-engine observability into the untraced path:
/// per-lane flight recorders (sinks.dumps + sinks.flight) and per-sweep
/// span accounting (sinks.spans). Traced cells ignore it — they already
/// carry full causal JSONL through the mounted recorder.
std::vector<RunResult> run_campaign_cell(const std::string& scenario,
                                         const FaultCondition& cond,
                                         std::size_t episodes,
                                         std::uint64_t seed,
                                         std::size_t threads,
                                         std::ostream* trace = nullptr,
                                         const FleetObsSinks& sinks = {});

/// Folds a seed-ordered result vector into one cell aggregate. min_eta /
/// mean_eta initialize from the first episode (never from the struct's
/// 0.0 defaults, which would mask an all-positive minimum); requires a
/// non-empty batch.
CampaignCell aggregate_cell(std::string fault, std::string scenario,
                            std::span<const RunResult> results);

/// Campaign shape: which fault conditions against which scenarios.
///
/// Fault-axis names are FaultPlan preset names plus "burst", which runs
/// the plain Gilbert-Elliott bursty channel (comm-layer disturbance, no
/// decorator faults). Every non-burst cell additionally runs the paper's
/// "messages delayed" channel (drop 0.2, dt_d 0.25 s), so decorator
/// faults compound with a realistic baseline disturbance.
struct CampaignConfig {
  std::vector<std::string> faults;
  std::vector<std::string> scenarios;
  std::size_t episodes_per_cell = 8;
  std::uint64_t base_seed = 2026;
  std::size_t threads = 0;  ///< 0 = hardware concurrency

  /// Contract check: non-empty axes, episodes >= 1, fault names known.
  void validate() const;

  /// The CI matrix: every fault condition x every scenario x 8 seeds.
  static CampaignConfig ci();

  /// A two-cell subset for fast unit tests.
  static CampaignConfig smoke();
};

/// The finished campaign: cells in (fault-major, scenario-minor) order.
struct CampaignResult {
  std::vector<CampaignCell> cells;

  bool invariant_ok() const;
  std::size_t violations() const;  ///< total unsafe-set entries
};

/// Optional campaign observability, all opt-in and orthogonal:
/// triggered flight-recorder dumps, streaming safety telemetry and
/// per-sweep wall-clock accounting.
struct CampaignObs {
  /// Ring sizing + trigger thresholds of the per-lane flight recorders.
  obs::FlightRecorderConfig flight{};

  /// When non-null every untraced cell runs with a flight-recorder ring
  /// armed per pool lane and each cell's *triggered* dumps are appended
  /// here as JSONL labeled with the cell's scenario/fault, in
  /// (cell-major, episode-minor) order — byte-identical across runs,
  /// thread counts, pool sizes and engines, like the campaign CSV.
  std::ostream* flight_os = nullptr;

  /// When non-null each cell's seed-ordered results fold into the
  /// registry: min-eta distribution, per-reason rejection counters,
  /// ladder occupancy and episode residency. Deterministic — the fold
  /// walks episode order, never completion order.
  obs::MetricsRegistry* metrics = nullptr;

  /// When non-null the fleet workers' per-sweep span accounting (count +
  /// total ns per pump/deliver/estimate/reach-gate/plan/advance sweep)
  /// merges here. Spans are wall-clock measurements: both counts and
  /// durations depend on work-stealing schedules, so they belong in a
  /// separate artifact and are never byte-compared.
  SweepSpanSink* spans = nullptr;
};

/// Runs the campaign matrix. Within a cell episodes run in parallel
/// (threads as configured); cells run sequentially. When \p trace_os is
/// non-null every episode runs with an obs::Recorder mounted and the
/// combined trace is written as JSONL in (cell-major, seed-minor) order
/// — byte-identical across runs and thread counts like the CSV. \p
/// observe (may be null) wires the flight recorder / telemetry /
/// span sinks described on CampaignObs through every untraced cell.
CampaignResult run_fault_campaign(const CampaignConfig& config,
                                  std::ostream* trace_os = nullptr,
                                  const CampaignObs* observe = nullptr);

/// Serializes the campaign as a CSV (header + one row per cell, doubles
/// at %.17g) — byte-stable across runs, threads and platforms with the
/// same floating-point behavior.
void write_campaign_csv(std::ostream& os, const CampaignResult& result);

/// write_campaign_csv into a string.
std::string campaign_csv(const CampaignResult& result);

}  // namespace cvsafe::sim
