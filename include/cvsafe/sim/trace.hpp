#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "cvsafe/obs/jsonl.hpp"
#include "cvsafe/obs/recorder.hpp"
#include "cvsafe/sim/engine.hpp"

/// \file trace.hpp
/// Mounts an obs::Recorder into the closed-loop engine.
///
/// RecordingHook is the StepHook that (a) wires the recorder through the
/// episode's control stack at episode start, (b) stamps the recorder's
/// (step, t) context at the top of every observe phase, and (c) emits
/// one StepEvent per control step (accel, emergency flag, eta margin =
/// boundary slack s(t), ladder level).
///
/// Determinism across thread counts follows the campaign-CSV discipline:
/// each episode owns a private Recorder, events buffer in memory, and
/// run_traced_episodes serializes the buffers in seed order on the
/// calling thread after the parallel region — so the JSONL bytes are a
/// pure function of (adapter, seeds), never of scheduling.

namespace cvsafe::sim {

/// StepHook mounting a recorder into the engine phases. Optionally
/// chains an inner hook so figure traces and recording can coexist.
template <typename World>
class RecordingHook final : public StepHook<World> {
 public:
  explicit RecordingHook(obs::Recorder* recorder,
                         StepHook<World>* chained = nullptr)
      : recorder_(recorder), chained_(chained) {}

  void on_episode_start(Episode<World>& episode,
                        std::uint64_t seed) override {
    episode.attach_recorder(recorder_);
    if (chained_ != nullptr) chained_->on_episode_start(episode, seed);
  }

  void on_step_begin(std::size_t step, double t) override {
    recorder_->begin_step(step, t);
    if (chained_ != nullptr) chained_->on_step_begin(step, t);
  }

  void on_step(std::size_t step, double t, const World& world,
               const vehicle::VehicleState& ego, double a0, bool emergency,
               const Episode<World>& episode) override {
    double margin = 0.0;
    int level = -1;
    if (const auto* compound = episode.compound()) {
      margin = compound->safety_model().boundary_slack(world);
      if (compound->has_ladder()) {
        level = static_cast<int>(compound->ladder_level());
      }
    }
    recorder_->step_summary(a0, emergency, margin, level);
    if (chained_ != nullptr) {
      chained_->on_step(step, t, world, ego, a0, emergency, episode);
    }
  }

  void on_finish(const Episode<World>& episode) override {
    if (chained_ != nullptr) chained_->on_finish(episode);
  }

 private:
  obs::Recorder* recorder_;
  StepHook<World>* chained_;
};

/// run_episode with \p recorder mounted; appends the episode_end event
/// after the loop seals the result.
template <typename World>
RunResult run_traced_episode(const ScenarioAdapter<World>& adapter,
                             std::uint64_t seed, obs::Recorder& recorder,
                             StepHook<World>* chained = nullptr) {
  RecordingHook<World> hook(&recorder, chained);
  RunResult result = run_episode(adapter, seed, &hook);
  recorder.begin_step(result.steps,
                      static_cast<double>(result.steps) * adapter.run().dt_c);
  recorder.episode_end(result.collided, result.reached, result.eta,
                       result.steps);
  return result;
}

/// run_episodes with per-episode recorders, serialized to \p os as JSONL
/// in seed order after the parallel region — byte-identical across runs
/// and thread counts. \p scenario_label defaults to the adapter's name;
/// \p fault_label annotates campaign cells (empty = omitted).
template <typename World>
std::vector<RunResult> run_traced_episodes(
    const ScenarioAdapter<World>& adapter, std::size_t n,
    std::uint64_t base_seed, std::size_t threads, SeedPolicy policy,
    std::ostream& os, std::string scenario_label = {},
    std::string fault_label = {}) {
  CVSAFE_EXPECTS(n > 0, "batch must contain at least one episode");
  std::vector<RunResult> results(n);
  std::vector<obs::Recorder> recorders(n);
  util::parallel_for(
      n,
      [&](std::size_t i) {
        recorders[i].set_enabled(true);
        results[i] = run_traced_episode(
            adapter, episode_seed(base_seed, i, policy), recorders[i]);
      },
      threads);
  if (scenario_label.empty()) scenario_label = std::string(adapter.name());
  for (std::size_t i = 0; i < n; ++i) {
    obs::EpisodeLabel label;
    label.episode = i;
    label.seed = episode_seed(base_seed, i, policy);
    label.scenario = scenario_label;
    label.fault = fault_label;
    obs::write_events_jsonl(os, recorders[i].events(), label,
                            recorders[i].dropped());
  }
  return results;
}

}  // namespace cvsafe::sim
