#pragma once

#include <algorithm>

#include "cvsafe/core/planner.hpp"
#include "cvsafe/vehicle/dynamics.hpp"

/// \file cruise_planner.hpp
/// The shared proportional cruise controller used as the nominal planner
/// of the lane-change and intersection scenarios (previously two
/// file-local copies inside the legacy drivers).

namespace cvsafe::sim {

/// Proportional speed tracking toward a cruise set-point, clamped to the
/// ego acceleration limits. Deliberately unsafe on its own — it is the
/// kappa_n the compound planner has to guard.
template <typename World>
class CruisePlanner final : public core::PlannerBase<World> {
 public:
  CruisePlanner(double cruise_speed, vehicle::VehicleLimits limits)
      : cruise_(cruise_speed), limits_(limits) {}

  double plan(const World& world) override {
    const double accel = 2.0 * (cruise_ - world.ego.v);
    return std::clamp(accel, limits_.a_min, limits_.a_max);
  }

  std::string_view name() const override { return "cruise"; }

 private:
  double cruise_;
  vehicle::VehicleLimits limits_;
};

}  // namespace cvsafe::sim
