#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <functional>
#include <optional>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "cvsafe/obs/metrics.hpp"
#include "cvsafe/sim/engine.hpp"
#include "cvsafe/sim/run_result.hpp"
#include "cvsafe/sim/seeding.hpp"
#include "cvsafe/util/contracts.hpp"
#include "cvsafe/vehicle/dynamics.hpp"

/// \file fleet.hpp
/// The fleet-scale campaign engine: a structure-of-arrays episode pool
/// driving thousands of resident episodes step-synchronously per worker,
/// with work-stealing admission and a mega-batched NN planning seam.
///
/// Where run_episodes dispatches one episode per task and the PR-3
/// lockstep runner advances one statically partitioned shard per worker,
/// the fleet engine keeps a bounded pool of *resident* episodes per
/// worker and refills finished lanes from a shared atomic episode
/// counter. Three consequences:
///
///  * planning batches stay wide for the whole campaign (a retiring
///    episode is replaced immediately instead of the shard draining);
///  * imbalanced episode lengths steal work instead of idling a worker
///    (the atomic counter is the work-stealing deque, one episode at a
///    time);
///  * per-episode outputs are folded into compact FleetRecords — no
///    RunResult extras, no trajectory retention — so memory stays
///    O(pool + episodes * sizeof(FleetRecord)).
///
/// Determinism contract: the episode index -> seed map (seeding.hpp) is
/// untouched — lanes are *slots*, the RNG stream belongs to the episode
/// index claimed into the slot, so admission order cannot reorder any
/// draw. Each episode's closed loop is bit-identical to run_episode /
/// run_lockstep_shard (plan_batch is row-independent and bit-identical
/// to plan(); step_batch is lane-wise bit-identical to step()). Records
/// land at records[episode index], and every fold (BatchStats, metrics)
/// runs serially in index order after the pool drains — so CSVs, eta
/// sequences and metrics are byte-identical for 1, 4 or 7 threads, and
/// byte-identical to the per-episode and lockstep paths.

namespace cvsafe::sim {

/// Compact per-episode outcome retained by the fleet engine: every field
/// the batch aggregates and metrics folds consume, none of the typed
/// extras. Trivially copyable; the records array is the engine's only
/// O(episodes) state.
struct FleetRecord {
  double eta = 0.0;
  double reach_time = 0.0;
  std::size_t steps = 0;
  std::size_t emergency_steps = 0;
  std::array<std::size_t, core::kNumDegradationLevels> ladder_steps{};
  std::size_t ladder_transitions = 0;
  std::size_t messages_accepted = 0;
  std::size_t messages_rejected = 0;
  bool collided = false;
  bool reached = false;
};

/// Fleet execution parameters.
struct FleetConfig {
  /// Maximum resident episodes across all workers. Bounds peak memory
  /// (every resident episode owns its estimator/planner stack); the
  /// per-worker lane count is pool_capacity / workers, floored at 1.
  std::size_t pool_capacity = 8192;
  std::size_t threads = 0;  ///< worker count, 0 = hardware concurrency
  SeedPolicy policy = SeedPolicy::kPaired;
};

/// Result of a fleet run: the standard batch aggregate plus the
/// deterministic metrics fold over every episode.
struct FleetResult {
  BatchStats stats;
  obs::MetricsRegistry metrics;
};

/// Converts a compact record back to the equivalent RunResult (extras
/// slot empty). Field-for-field; exists so fleet output can flow through
/// every existing RunResult consumer (campaign aggregation, metrics).
RunResult record_to_result(const FleetRecord& record);

/// FleetRecord from a finished episode's RunResult (drops the extras).
FleetRecord record_from_result(const RunResult& result);

/// Index-ordered fold of records into BatchStats — the same accumulation,
/// in the same order, as BatchStats::from_results over seed-ordered
/// results (pinned by tests/sim_fleet_test).
BatchStats stats_from_records(std::span<const FleetRecord> records);

/// Index-ordered fold of records into the metrics registry, identical to
/// collect_metrics over the seed-ordered RunResults.
void collect_record_metrics(obs::MetricsRegistry& registry,
                            std::span<const FleetRecord> records);

/// Batched planning seam: evaluates the embedded planner on every pending
/// world of a worker's pool in one call (out[i] = plan of worlds[i]).
/// Must be bit-identical per row to Episode::planner().plan() on the same
/// world — NnPlanner::plan_batch satisfies this.
template <typename World>
using FleetBatchPlanner =
    std::function<void(std::span<const World>, std::span<double>)>;

/// Factory producing one FleetBatchPlanner per worker (planners own
/// per-worker workspaces and must not be shared across threads). An empty
/// factory selects the generic path: full per-episode planner dispatch,
/// exactly as run_episode.
template <typename World>
using FleetPlannerFactory = std::function<FleetBatchPlanner<World>()>;

/// One worker's resident half of the fleet: SoA lanes for the engine-owned
/// ego state plus the per-lane runners. Lanes [0, active) are contiguous;
/// retiring compacts by swapping the last active lane down, admission
/// claims the next episode index from the shared counter into the freed
/// slot. The SoA arrays are the authoritative ego storage across the
/// dynamics step: step_batch sweeps them in one contiguous loop and the
/// runners adopt the stepped lanes via advance_commit.
template <typename World>
class EpisodePool {
 public:
  EpisodePool(const ScenarioAdapter<World>& adapter, std::size_t lanes,
              std::uint64_t base_seed, SeedPolicy policy,
              std::atomic<std::size_t>& next_episode, std::size_t n)
      : adapter_(&adapter),
        base_seed_(base_seed),
        policy_(policy),
        next_(&next_episode),
        n_(n) {
    runners_.resize(lanes);
    index_.resize(lanes, 0);
    ego_p_.resize(lanes, 0.0);
    ego_v_.resize(lanes, 0.0);
    accel_.resize(lanes, 0.0);
    for (std::size_t lane = 0; lane < lanes && admit(lane); ++lane) {
      ++active_;
    }
  }

  std::size_t active() const { return active_; }
  std::size_t lane_count() const { return runners_.size(); }
  EpisodeRunner<World>& runner(std::size_t lane) { return *runners_[lane]; }
  std::size_t episode_index(std::size_t lane) const { return index_[lane]; }
  double accel(std::size_t lane) const { return accel_[lane]; }
  void set_accel(std::size_t lane, double a) { accel_[lane] = a; }

  /// Steps every active lane's ego through the shared saturating
  /// dynamics in one SoA sweep, then commits the stepped states (traffic
  /// advance + outcome classification) lane by lane. Call after every
  /// lane's acceleration has been planned and advance_begin() has run.
  void step_dynamics() {
    if (active_ == 0) return;
    const RunConfig& config = runners_[0]->config();
    const vehicle::DoubleIntegrator dyn(config.ego_limits);
    dyn.step_batch(ego_p_, ego_v_, accel_, config.dt_c, active_);
    for (std::size_t lane = 0; lane < active_; ++lane) {
      runners_[lane]->advance_commit(
          vehicle::VehicleState{ego_p_[lane], ego_v_[lane]});
    }
  }

  /// Mirrors the runner's pre-step ego into the SoA lanes (advance_begin
  /// must run first so hooks observe the pre-step state).
  void stage_lane(std::size_t lane) {
    const vehicle::VehicleState& ego = runners_[lane]->ego();
    ego_p_[lane] = ego.p;
    ego_v_[lane] = ego.v;
  }

  /// Retires every finished lane into \p records (at its episode index)
  /// and refills the slot from the shared counter; compacts the active
  /// prefix when the counter is exhausted. Returns the number retired.
  std::size_t retire_and_refill(std::span<FleetRecord> records) {
    std::size_t retired = 0;
    std::size_t lane = 0;
    while (lane < active_) {
      if (!runners_[lane]->done()) {
        ++lane;
        continue;
      }
      records[index_[lane]] = record_from_result(runners_[lane]->finish());
      ++retired;
      if (admit(lane)) {
        ++lane;
        continue;
      }
      // No more episodes: compact by moving the last active lane down.
      --active_;
      if (lane != active_) {
        runners_[lane].swap(runners_[active_]);
        index_[lane] = index_[active_];
        ego_p_[lane] = ego_p_[active_];
        ego_v_[lane] = ego_v_[active_];
        accel_[lane] = accel_[active_];
      }
      runners_[active_].reset();
    }
    return retired;
  }

 private:
  /// Claims the next unclaimed episode index into \p lane. The episode's
  /// RNG stream is derived from its *index*, so which worker/lane claims
  /// it cannot shift any draw.
  bool admit(std::size_t lane) {
    const std::size_t i = next_->fetch_add(1, std::memory_order_relaxed);
    if (i >= n_) return false;
    runners_[lane].emplace(*adapter_, episode_seed(base_seed_, i, policy_));
    index_[lane] = i;
    stage_lane(lane);
    return true;
  }

  const ScenarioAdapter<World>* adapter_;
  std::uint64_t base_seed_;
  SeedPolicy policy_;
  std::atomic<std::size_t>* next_;
  std::size_t n_;
  std::size_t active_ = 0;

  std::vector<std::optional<EpisodeRunner<World>>> runners_;
  std::vector<std::size_t> index_;  ///< global episode index per lane
  // SoA lanes (FleetState): authoritative ego state + planned command.
  std::vector<double> ego_p_;
  std::vector<double> ego_v_;
  std::vector<double> accel_;
};

namespace detail {

/// One worker: drives its pool to exhaustion. Sequencing per shard-step
/// mirrors run_lockstep_shard — observe every lane, split monitor-gated
/// lanes from planner lanes, one batch_plan call over the pending worlds,
/// then the split advance (bookkeeping, SoA dynamics sweep, commit) and
/// retire/refill.
template <typename World>
void run_fleet_worker(const ScenarioAdapter<World>& adapter,
                      std::size_t lanes, std::uint64_t base_seed,
                      SeedPolicy policy,
                      std::atomic<std::size_t>& next_episode, std::size_t n,
                      const FleetBatchPlanner<World>& batch_plan,
                      std::span<FleetRecord> records) {
  EpisodePool<World> pool(adapter, lanes, base_seed, policy, next_episode,
                          n);
  // Reused across shard-steps; capacities warm up within a few steps, so
  // the steady-state episode step allocates nothing.
  std::vector<World> worlds;
  std::vector<std::size_t> pending;
  std::vector<double> plans;

  while (pool.active() > 0) {
    worlds.clear();
    pending.clear();
    for (std::size_t lane = 0; lane < pool.active(); ++lane) {
      EpisodeRunner<World>& runner = pool.runner(lane);
      runner.observe();
      if (batch_plan) {
        // Lockstep split: the monitor decides first; only lanes the
        // monitor hands to the embedded planner join the batch.
        if (const auto emergency = runner.monitor_gate()) {
          pool.set_accel(lane, *emergency);
        } else {
          pending.push_back(lane);
          worlds.push_back(runner.nn_world());
        }
      } else {
        // Generic path: full per-episode dispatch (exactly run_episode).
        pool.set_accel(lane, runner.plan());
      }
    }
    if (!pending.empty()) {
      plans.resize(worlds.size());
      batch_plan(worlds, plans);
      for (std::size_t j = 0; j < pending.size(); ++j) {
        pool.set_accel(pending[j], plans[j]);
      }
    }
    for (std::size_t lane = 0; lane < pool.active(); ++lane) {
      pool.runner(lane).advance_begin(pool.accel(lane));
      pool.stage_lane(lane);
    }
    pool.step_dynamics();
    pool.retire_and_refill(records);
  }
}

}  // namespace detail

/// Runs \p n episodes through the fleet engine and returns the compact
/// records in episode-index (seed) order. \p planner_factory, when
/// non-empty, enables mega-batched planning (one batch call per worker
/// shard-step); otherwise every episode dispatches its own planner.
template <typename World>
std::vector<FleetRecord> run_fleet_records(
    const ScenarioAdapter<World>& adapter, std::size_t n,
    std::uint64_t base_seed, const FleetConfig& config = {},
    const FleetPlannerFactory<World>& planner_factory = {}) {
  CVSAFE_EXPECTS(n > 0, "fleet must contain at least one episode");
  CVSAFE_EXPECTS(config.pool_capacity > 0,
                 "fleet pool capacity must be positive");
  std::vector<FleetRecord> records(n);
  std::size_t workers =
      config.threads != 0
          ? config.threads
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers = std::min(workers, n);
  const std::size_t resident = std::min(config.pool_capacity, n);
  const std::size_t lanes = std::max<std::size_t>(1, resident / workers);
  std::atomic<std::size_t> next_episode{0};
  std::span<FleetRecord> out(records);
  const auto worker_body = [&] {
    const FleetBatchPlanner<World> batch_plan =
        planner_factory ? planner_factory() : FleetBatchPlanner<World>{};
    detail::run_fleet_worker(adapter, lanes, base_seed, config.policy,
                             next_episode, n, batch_plan, out);
  };
  if (workers <= 1) {
    worker_body();
  } else {
    // Dedicated threads, not util::parallel_for: its small-n serial
    // fallback would let worker 0 drain the shared counter before worker
    // 1 starts, serializing 2- and 3-worker fleets.
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      threads.emplace_back(worker_body);
    }
    for (auto& t : threads) t.join();
  }
  return records;
}

/// run_fleet_records + the deterministic index-ordered folds.
template <typename World>
FleetResult run_fleet(const ScenarioAdapter<World>& adapter, std::size_t n,
                      std::uint64_t base_seed, const FleetConfig& config = {},
                      const FleetPlannerFactory<World>& planner_factory = {}) {
  const std::vector<FleetRecord> records =
      run_fleet_records(adapter, n, base_seed, config, planner_factory);
  FleetResult result;
  result.stats = stats_from_records(records);
  collect_record_metrics(result.metrics, records);
  return result;
}

}  // namespace cvsafe::sim
