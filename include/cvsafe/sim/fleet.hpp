#pragma once

#include <algorithm>
#include <array>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <utility>
#include <vector>

#include "cvsafe/obs/flight_recorder.hpp"
#include "cvsafe/obs/metrics.hpp"
#include "cvsafe/sim/engine.hpp"
#include "cvsafe/sim/run_result.hpp"
#include "cvsafe/sim/seeding.hpp"
#include "cvsafe/util/contracts.hpp"
#include "cvsafe/vehicle/dynamics.hpp"

/// \file fleet.hpp
/// The fleet-scale campaign engine: a structure-of-arrays episode pool
/// driving thousands of resident episodes step-synchronously per worker,
/// with work-stealing admission and a mega-batched NN planning seam.
///
/// Where run_episodes dispatches one episode per task and the PR-3
/// lockstep runner advances one statically partitioned shard per worker,
/// the fleet engine keeps a bounded pool of *resident* episodes per
/// worker and refills finished lanes from a shared atomic episode
/// counter. Three consequences:
///
///  * planning batches stay wide for the whole campaign (a retiring
///    episode is replaced immediately instead of the shard draining);
///  * imbalanced episode lengths steal work instead of idling a worker
///    (the atomic counter is the work-stealing deque, one episode at a
///    time);
///  * per-episode outputs are folded into compact FleetRecords — no
///    RunResult extras, no trajectory retention — so memory stays
///    O(pool + episodes * sizeof(FleetRecord)).
///
/// Determinism contract: the episode index -> seed map (seeding.hpp) is
/// untouched — lanes are *slots*, the RNG stream belongs to the episode
/// index claimed into the slot, so admission order cannot reorder any
/// draw. Each episode's closed loop is bit-identical to run_episode /
/// run_lockstep_shard (plan_batch is row-independent and bit-identical
/// to plan(); step_batch is lane-wise bit-identical to step()). Records
/// land at records[episode index], and every fold (BatchStats, metrics)
/// runs serially in index order after the pool drains — so CSVs, eta
/// sequences and metrics are byte-identical for 1, 4 or 7 threads, and
/// byte-identical to the per-episode and lockstep paths.

namespace cvsafe::sim {

/// Compact per-episode outcome retained by the fleet engine: every field
/// the batch aggregates and metrics folds consume, none of the typed
/// extras. Trivially copyable; the records array is the engine's only
/// O(episodes) state.
struct FleetRecord {
  double eta = 0.0;
  double reach_time = 0.0;
  std::size_t steps = 0;
  std::size_t emergency_steps = 0;
  std::array<std::size_t, core::kNumDegradationLevels> ladder_steps{};
  std::size_t ladder_transitions = 0;
  std::size_t messages_accepted = 0;
  std::size_t messages_rejected = 0;
  /// Per-reason rejection split (obs::GateRejectReason order).
  std::array<std::size_t, 4> rejection_reasons{};
  bool collided = false;
  bool reached = false;
};

/// Fleet execution parameters.
struct FleetConfig {
  /// Maximum resident episodes across all workers. Bounds peak memory
  /// (every resident episode owns its estimator/planner stack); the
  /// per-worker lane count is pool_capacity / workers, floored at 1.
  std::size_t pool_capacity = 8192;
  std::size_t threads = 0;  ///< worker count, 0 = hardware concurrency
  SeedPolicy policy = SeedPolicy::kPaired;

  /// Run the shard-step as fleet-wide batched sweeps (pump -> estimate
  /// -> reach -> gate/ladder -> plan -> advance) over pool-resident SoA
  /// stacks — engaged only for adapters promising the sweep
  /// decomposition (ScenarioAdapter::fleet_sweeps). False selects the
  /// reference per-lane loop; both paths are byte-identical (pinned by
  /// tests/sim_fleet_sweeps_test).
  bool batched_sweeps = true;
};

/// Wall-clock span accounting for the shard-step's sweep phases: one
/// count + total-ns cell per phase, sampled cohort-granularly (one lap
/// per phase per cohort step). The reference per-lane loop reports the
/// coarse pump/plan/advance split only.
///
/// Spans measure *time*, so unlike every other fleet artifact they are
/// scheduling-dependent — both the ns totals and (with work stealing)
/// the counts. They are exported as a separate artifact and are
/// explicitly excluded from the byte-identity contract.
struct SweepSpans {
  enum Kind : std::size_t {
    kPump = 0,   ///< slab open + observe_begin + channel pump
    kDeliver,    ///< screened slab absorption
    kEstimate,   ///< sensor sampling + Kalman update_batch
    kReachGate,  ///< reach staging + predict_batch + reach run
    kPlan,       ///< world build + monitor gate + batched NN plan
    kAdvance,    ///< advance bookkeeping + SoA dynamics sweep
    kNumKinds,
  };

  struct Span {
    std::uint64_t count = 0;  ///< cohort-steps sampled
    std::uint64_t ns = 0;     ///< total wall-clock nanoseconds
  };

  std::array<Span, kNumKinds> spans{};

  void add(Kind kind, std::uint64_t ns) {
    Span& span = spans[kind];
    ++span.count;
    span.ns += ns;
  }

  void merge(const SweepSpans& other) {
    for (std::size_t k = 0; k < kNumKinds; ++k) {
      spans[k].count += other.spans[k].count;
      spans[k].ns += other.spans[k].ns;
    }
  }

  /// Stable lowercase phase name ("pump", "deliver", ...).
  static const char* kind_name(std::size_t kind);
};

/// Thread-safe accumulator the workers merge their local spans into
/// (once per worker, at exit — never on the hot path).
class SweepSpanSink {
 public:
  void merge(const SweepSpans& spans) {
    const std::lock_guard<std::mutex> lock(mutex_);
    total_.merge(spans);
  }

  SweepSpans total() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return total_;
  }

 private:
  mutable std::mutex mutex_;
  SweepSpans total_;
};

/// Optional observability sinks threaded through a fleet run. Default
/// (all null) is the untraced engine: no rings are armed, no clocks are
/// read — the disabled path stays one pointer test per seam.
struct FleetObsSinks {
  /// When non-null, every pool lane is armed with a flight-recorder ring
  /// (settings below) and triggered episodes dump their causal tail
  /// here, keyed by episode index.
  obs::FlightDumpCollector* dumps = nullptr;

  /// Ring sizing + trigger thresholds (consulted only when dumps is
  /// non-null).
  obs::FlightRecorderConfig flight{};

  /// When non-null, per-sweep wall-clock span accounting is merged here
  /// (scheduling-dependent; see SweepSpans).
  SweepSpanSink* spans = nullptr;
};

/// Lane-cohort tile of the batched shard-step: the five sweeps run over
/// cohorts of this many lanes so one cohort's episode objects stay
/// cache-resident from pump through build. Tiling only changes cross-lane
/// interleaving (lanes are independent), never any per-lane computation;
/// 64 lanes keeps a cohort's per-episode state comfortably inside L2 while
/// the SoA kernels still amortize their sweep setup.
inline constexpr std::size_t kSweepBlock = 64;

/// Consecutive steps a cohort runs before the worker moves to the next
/// one (temporal blocking). At 8k resident lanes the pool's working set
/// is far beyond L2, so stepping the whole pool in lockstep reloads
/// every lane's episode state from L3 once per step; running one
/// L2-sized cohort for kCohortSteps steps amortizes that reload across
/// the block. Episodes are mutually independent and their records are
/// keyed by episode index, so cohort-major step order changes no output
/// byte (pinned by tests/sim_fleet_sweeps_test). The trade-off is
/// retire/refill latency — a lane that finishes mid-block idles (one
/// done() check per step) until the cohort boundary — which caps the
/// useful block length.
inline constexpr std::size_t kCohortSteps = 32;

/// Result of a fleet run: the standard batch aggregate plus the
/// deterministic metrics fold over every episode.
struct FleetResult {
  BatchStats stats;
  obs::MetricsRegistry metrics;
};

/// Converts a compact record back to the equivalent RunResult (extras
/// slot empty). Field-for-field; exists so fleet output can flow through
/// every existing RunResult consumer (campaign aggregation, metrics).
RunResult record_to_result(const FleetRecord& record);

/// FleetRecord from a finished episode's RunResult (drops the extras).
FleetRecord record_from_result(const RunResult& result);

/// Index-ordered fold of records into BatchStats — the same accumulation,
/// in the same order, as BatchStats::from_results over seed-ordered
/// results (pinned by tests/sim_fleet_test).
BatchStats stats_from_records(std::span<const FleetRecord> records);

/// Index-ordered fold of records into the metrics registry, identical to
/// collect_metrics over the seed-ordered RunResults.
void collect_record_metrics(obs::MetricsRegistry& registry,
                            std::span<const FleetRecord> records);

/// Deterministic fleet telemetry fold: fixed-bucket histograms and
/// counters over the index-ordered records — min-eta distribution,
/// rejections split by gate reason, ladder-level occupancy, and the
/// episode-length (pool residency) distribution. Byte-identical across
/// threads x pool sizes x engines (it reads only the records), so its
/// export is cmp-gated in CI alongside the flight dumps.
void collect_fleet_telemetry(obs::MetricsRegistry& registry,
                             std::span<const FleetRecord> records);

/// Same fold over seed-ordered RunResults (the campaign-cell shape).
void collect_fleet_telemetry(obs::MetricsRegistry& registry,
                             std::span<const RunResult> results);

/// Span-accounting fold: cvsafe_sweep_steps_total / cvsafe_sweep_ns_total
/// per phase label. Wall-clock — export to a separate artifact, never
/// into a cmp-gated registry.
void collect_sweep_spans(obs::MetricsRegistry& registry,
                         const SweepSpans& spans);

/// Batched planning seam: evaluates the embedded planner on every pending
/// world of a worker's pool in one call (out[i] = plan of worlds[i]).
/// Must be bit-identical per row to Episode::planner().plan() on the same
/// world — NnPlanner::plan_batch satisfies this.
template <typename World>
using FleetBatchPlanner =
    std::function<void(std::span<const World>, std::span<double>)>;

/// Factory producing one FleetBatchPlanner per worker (planners own
/// per-worker workspaces and must not be shared across threads). An empty
/// factory selects the generic path: full per-episode planner dispatch,
/// exactly as run_episode.
template <typename World>
using FleetPlannerFactory = std::function<FleetBatchPlanner<World>()>;

/// One worker's resident half of the fleet: SoA lanes for the engine-owned
/// ego state plus the per-lane runners. Lanes [0, active) are contiguous;
/// retiring compacts by swapping the last active lane down, admission
/// claims the next episode index from the shared counter into the freed
/// slot. The SoA arrays are the authoritative ego storage across the
/// dynamics step: step_batch sweeps them in one contiguous loop and the
/// runners adopt the stepped lanes via advance_commit.
template <typename World>
class EpisodePool {
 public:
  /// \p ctx, when non-null, switches admission to pool-resident stacks:
  /// every admitted episode must bind into it (the adapter promised
  /// fleet_sweeps()). The context must outlive the pool — retiring
  /// episodes release their slots into the context's free lists.
  /// \p dumps, when non-null, arms every lane with a flight-recorder
  /// ring (preallocated here, the only allocating point of the recorder
  /// path) sized/configured by \p flight; triggered episodes dump into
  /// it at retire time.
  EpisodePool(const ScenarioAdapter<World>& adapter, std::size_t lanes,
              std::uint64_t base_seed, SeedPolicy policy,
              std::atomic<std::size_t>& next_episode, std::size_t n,
              FleetStackContext* ctx = nullptr,
              obs::FlightDumpCollector* dumps = nullptr,
              const obs::FlightRecorderConfig& flight = {})
      : adapter_(&adapter),
        base_seed_(base_seed),
        policy_(policy),
        next_(&next_episode),
        n_(n),
        ctx_(ctx),
        dumps_(dumps) {
    runners_.resize(lanes);
    index_.resize(lanes, 0);
    ego_p_.resize(lanes, 0.0);
    ego_v_.resize(lanes, 0.0);
    accel_.resize(lanes, 0.0);
    if (dumps_ != nullptr) {
      // Rings are unique_ptr-held so their addresses stay stable across
      // lane compaction (episodes hold raw RingRecorder*; compaction
      // swaps the handles alongside the runners).
      rings_.reserve(lanes);
      for (std::size_t lane = 0; lane < lanes; ++lane) {
        rings_.push_back(std::make_unique<obs::RingRecorder>(flight));
      }
    }
    for (std::size_t lane = 0; lane < lanes && admit(lane); ++lane) {
      ++active_;
    }
  }

  std::size_t active() const { return active_; }
  std::size_t lane_count() const { return runners_.size(); }
  EpisodeRunner<World>& runner(std::size_t lane) { return *runners_[lane]; }
  std::size_t episode_index(std::size_t lane) const { return index_[lane]; }
  double accel(std::size_t lane) const { return accel_[lane]; }
  void set_accel(std::size_t lane, double a) { accel_[lane] = a; }

  /// Steps every active lane's ego through the shared saturating
  /// dynamics in one SoA sweep, then commits the stepped states (traffic
  /// advance + outcome classification) lane by lane. Call after every
  /// lane's acceleration has been planned and advance_begin() has run.
  void step_dynamics() {
    if (active_ == 0) return;
    const RunConfig& config = runners_[0]->config();
    const vehicle::DoubleIntegrator dyn(config.ego_limits);
    dyn.step_batch(ego_p_, ego_v_, accel_, config.dt_c, active_);
    for (std::size_t lane = 0; lane < active_; ++lane) {
      runners_[lane]->advance_commit(
          vehicle::VehicleState{ego_p_[lane], ego_v_[lane]});
    }
  }

  /// Subrange form of step_dynamics for the cohort-blocked batched path:
  /// sweeps lanes [base, end) and commits only lanes still running. A
  /// finished lane keeps riding in the SoA arrays until the
  /// cohort-boundary retire scan; its mirror is dead state (records come
  /// from the runner's result, and stage_lane refreshes live lanes every
  /// step), so sweeping it is harmless and keeps the kernel contiguous.
  void step_dynamics_range(std::size_t base, std::size_t end) {
    if (base >= end) return;
    const RunConfig& config = runners_[base]->config();
    const vehicle::DoubleIntegrator dyn(config.ego_limits);
    const std::size_t count = end - base;
    dyn.step_batch(std::span(ego_p_).subspan(base, count),
                   std::span(ego_v_).subspan(base, count),
                   std::span(accel_).subspan(base, count), config.dt_c,
                   count);
    for (std::size_t lane = base; lane < end; ++lane) {
      if (runners_[lane]->done()) continue;
      runners_[lane]->advance_commit(
          vehicle::VehicleState{ego_p_[lane], ego_v_[lane]});
    }
  }

  /// Mirrors the runner's pre-step ego into the SoA lanes (advance_begin
  /// must run first so hooks observe the pre-step state).
  void stage_lane(std::size_t lane) {
    const vehicle::VehicleState& ego = runners_[lane]->ego();
    ego_p_[lane] = ego.p;
    ego_v_[lane] = ego.v;
  }

  /// Retires every finished lane into \p records (at its episode index)
  /// and refills the slot from the shared counter; compacts the active
  /// prefix when the counter is exhausted. Returns the number retired.
  std::size_t retire_and_refill(std::span<FleetRecord> records) {
    std::size_t retired = 0;
    std::size_t lane = 0;
    while (lane < active_) {
      if (!runners_[lane]->done()) {
        ++lane;
        continue;
      }
      const RunResult result = runners_[lane]->finish();
      records[index_[lane]] = record_from_result(result);
      if (!rings_.empty()) maybe_dump(lane, result);
      ++retired;
      if (admit(lane)) {
        ++lane;
        continue;
      }
      // No more episodes: compact by moving the last active lane down.
      --active_;
      if (lane != active_) {
        runners_[lane].swap(runners_[active_]);
        if (!rings_.empty()) rings_[lane].swap(rings_[active_]);
        index_[lane] = index_[active_];
        ego_p_[lane] = ego_p_[active_];
        ego_v_[lane] = ego_v_[active_];
        accel_[lane] = accel_[active_];
      }
      runners_[active_].reset();
    }
    return retired;
  }

 private:
  /// Claims the next unclaimed episode index into \p lane. The episode's
  /// RNG stream is derived from its *index*, so which worker/lane claims
  /// it cannot shift any draw.
  bool admit(std::size_t lane) {
    const std::size_t i = next_->fetch_add(1, std::memory_order_relaxed);
    if (i >= n_) return false;
    runners_[lane].emplace(*adapter_, episode_seed(base_seed_, i, policy_));
    if (ctx_ != nullptr) {
      const bool bound = runners_[lane]->bind_fleet(*ctx_);
      CVSAFE_EXPECTS(bound, "adapter promised fleet sweeps (fleet_sweeps"
                            "() true) but the episode did not bind");
    }
    if (!rings_.empty()) {
      rings_[lane]->reset();
      runners_[lane]->attach_ring(rings_[lane].get());
    }
    index_[lane] = i;
    stage_lane(lane);
    return true;
  }

  /// Trigger check + dump of a finished lane. Evaluated from per-episode
  /// state only (ring-tracked flags + the finished result), so whether
  /// and what an episode dumps is independent of scheduling. Allocation
  /// is fine here: triggering is the rare path, off the steady state.
  void maybe_dump(std::size_t lane, const RunResult& result) {
    const obs::RingRecorder& ring = *rings_[lane];
    const unsigned triggers = ring.triggers(result.eta, result.collided);
    if (triggers == 0) return;
    obs::FlightDump dump;
    dump.episode = index_[lane];
    dump.seed = episode_seed(base_seed_, index_[lane], policy_);
    dump.triggers = triggers;
    dump.eta = result.eta;
    dump.collided = result.collided;
    dump.rejections = ring.rejections();
    dump.overwritten = ring.overwritten();
    dump.events = ring.snapshot();
    dumps_->add(std::move(dump));
  }

  const ScenarioAdapter<World>* adapter_;
  std::uint64_t base_seed_;
  SeedPolicy policy_;
  std::atomic<std::size_t>* next_;
  std::size_t n_;
  FleetStackContext* ctx_;  ///< non-owning; null = scalar stacks
  obs::FlightDumpCollector* dumps_;  ///< non-owning; null = rings unarmed
  std::size_t active_ = 0;

  std::vector<std::optional<EpisodeRunner<World>>> runners_;
  /// Per-lane flight-recorder rings (empty when unarmed). unique_ptr for
  /// address stability across compaction swaps.
  std::vector<std::unique_ptr<obs::RingRecorder>> rings_;
  std::vector<std::size_t> index_;  ///< global episode index per lane
  // SoA lanes (FleetState): authoritative ego state + planned command.
  std::vector<double> ego_p_;
  std::vector<double> ego_v_;
  std::vector<double> accel_;
};

namespace detail {

/// One worker: drives its pool to exhaustion. Sequencing per shard-step
/// mirrors run_lockstep_shard — observe every lane, split monitor-gated
/// lanes from planner lanes, one batch_plan call over the pending worlds,
/// then the split advance (bookkeeping, SoA dynamics sweep, commit) and
/// retire/refill.
///
/// With \p batched_sweeps (adapter must promise fleet_sweeps()) the
/// observe phase runs as sweeps over pool-resident SoA stacks instead of
/// one full observe() per lane:
///
///   pump      every lane's channel offer + slab drain (RNG draws in
///             lane order, exactly as the per-lane loop);
///   deliver   every lane's screened message absorption from the slab;
///   sense     every lane's sensor sample (second per-lane RNG draw),
///             staging Kalman readings;
///   estimate  FleetEstimator::update_batch — the Kalman measurement
///             sweep over every staged lane;
///   reach     sweep staging, then FleetEstimator::predict_batch and
///             ReachSweep::run — the batched extrapolations feeding the
///             build/gate/ladder pass through their caches.
///
/// The sweeps are cohort-blocked (kSweepBlock lanes x kCohortSteps
/// steps, plan and advance included) so a cohort's episode state is
/// loaded into L2 once per block instead of once per step — the
/// cache-residency fix that keeps an 8k-resident pool at parity with a
/// 64-lane one per episode.
///
/// Every lane's op and RNG order within a step is untouched (messages
/// before sensor, offer draw before sense draw); only cross-lane
/// interleaving changes, and lanes are independent. Hence the sweeps are
/// byte-identical to the reference loop below — pinned per sweep by
/// tests/sim_fleet_sweeps_test.
template <typename World>
void run_fleet_worker(const ScenarioAdapter<World>& adapter,
                      std::size_t lanes, std::uint64_t base_seed,
                      SeedPolicy policy,
                      std::atomic<std::size_t>& next_episode, std::size_t n,
                      const FleetBatchPlanner<World>& batch_plan,
                      bool batched_sweeps,
                      std::span<FleetRecord> records,
                      const FleetObsSinks& sinks = {}) {
  // The context must outlive the pool: retiring runners release their
  // estimator/ladder slots into it.
  std::optional<FleetStackContext> ctx;
  if (batched_sweeps) ctx.emplace();
  EpisodePool<World> pool(adapter, lanes, base_seed, policy, next_episode,
                          n, ctx ? &*ctx : nullptr, sinks.dumps,
                          sinks.flight);
  // Reused across shard-steps; capacities warm up within a few steps, so
  // the steady-state episode step allocates nothing.
  std::vector<World> worlds;
  std::vector<std::size_t> pending;
  std::vector<double> plans;

  // Span accounting: a worker-local tally laps a monotonic clock between
  // sweep phases (cohort-granular) and merges once at exit. The untimed
  // path reads no clock at all.
  const bool timed = sinks.spans != nullptr;
  SweepSpans local_spans;
  std::chrono::steady_clock::time_point lap_t0;
  const auto lap_begin = [&] {
    if (timed) lap_t0 = std::chrono::steady_clock::now();
  };
  const auto lap = [&](SweepSpans::Kind kind) {
    if (!timed) return;
    const auto t1 = std::chrono::steady_clock::now();
    local_spans.add(kind, static_cast<std::uint64_t>(
                              std::chrono::duration_cast<
                                  std::chrono::nanoseconds>(t1 - lap_t0)
                                  .count()));
    lap_t0 = t1;
  };

  while (pool.active() > 0) {
    const std::size_t active = pool.active();
    if (ctx) {
      // Cohort-blocked shard-steps: each kSweepBlock-lane cohort runs
      // kCohortSteps consecutive steps — sweeps, plan, advance — while
      // its episode objects sit in L2, then the worker moves on (an
      // untiled lockstep sweep reloads the whole cold pool from L3 once
      // per step at 8k resident lanes). Lanes are independent and
      // records are keyed by episode index, so cohort-major order
      // changes no output byte (pinned by tests/sim_fleet_sweeps_test).
      // A lane that finishes mid-block idles behind a done() check until
      // the retire scan at the cohort boundary.
      for (std::size_t base = 0; base < active; base += kSweepBlock) {
        const std::size_t end = std::min(active, base + kSweepBlock);
        for (std::size_t k = 0; k < kCohortSteps; ++k) {
          worlds.clear();
          pending.clear();
          ctx->slab.clear();
          bool any_live = false;
          lap_begin();
          for (std::size_t lane = base; lane < end; ++lane) {
            // Slab lanes are positional: open one per cohort lane (empty
            // for done lanes) so slab lane i maps to pool lane base + i
            // below.
            ctx->slab.begin_lane();
            EpisodeRunner<World>& runner = pool.runner(lane);
            if (runner.done()) continue;
            any_live = true;
            runner.observe_begin();
            runner.sweep_pump(ctx->slab);
          }
          if (!any_live) break;
          lap(SweepSpans::kPump);
          for (std::size_t lane = base; lane < end; ++lane) {
            if (pool.runner(lane).done()) continue;
            const auto [first, last] = ctx->slab.lane_range(lane - base);
            pool.runner(lane).sweep_deliver(ctx->slab, first, last);
          }
          lap(SweepSpans::kDeliver);
          for (std::size_t lane = base; lane < end; ++lane) {
            if (pool.runner(lane).done()) continue;
            pool.runner(lane).sweep_sense();
          }
          ctx->estimator.update_batch();
          lap(SweepSpans::kEstimate);
          ctx->reach.clear();
          for (std::size_t lane = base; lane < end; ++lane) {
            if (pool.runner(lane).done()) continue;
            pool.runner(lane).sweep_stage(ctx->reach);
          }
          ctx->estimator.predict_batch();
          ctx->reach.run();
          lap(SweepSpans::kReachGate);
          for (std::size_t lane = base; lane < end; ++lane) {
            EpisodeRunner<World>& runner = pool.runner(lane);
            if (runner.done()) continue;
            runner.sweep_build();
            if (batch_plan) {
              if (const auto emergency = runner.monitor_gate()) {
                pool.set_accel(lane, *emergency);
              } else {
                pending.push_back(lane);
                worlds.push_back(runner.nn_world());
              }
            } else {
              pool.set_accel(lane, runner.plan());
            }
          }
          if (!pending.empty()) {
            plans.resize(worlds.size());
            batch_plan(worlds, plans);
            for (std::size_t j = 0; j < pending.size(); ++j) {
              pool.set_accel(pending[j], plans[j]);
            }
          }
          lap(SweepSpans::kPlan);
          for (std::size_t lane = base; lane < end; ++lane) {
            if (pool.runner(lane).done()) continue;
            pool.runner(lane).advance_begin(pool.accel(lane));
            pool.stage_lane(lane);
          }
          pool.step_dynamics_range(base, end);
          lap(SweepSpans::kAdvance);
        }
      }
      pool.retire_and_refill(records);
    } else {
      // Reference shard-step: one full per-lane observe at a time, the
      // whole pool in lockstep, retire after every step.
      worlds.clear();
      pending.clear();
      lap_begin();
      for (std::size_t lane = 0; lane < active; ++lane) {
        EpisodeRunner<World>& runner = pool.runner(lane);
        runner.observe();
        if (batch_plan) {
          // Lockstep split: the monitor decides first; only lanes the
          // monitor hands to the embedded planner join the batch.
          if (const auto emergency = runner.monitor_gate()) {
            pool.set_accel(lane, *emergency);
          } else {
            pending.push_back(lane);
            worlds.push_back(runner.nn_world());
          }
        } else {
          // Generic path: full per-episode dispatch (exactly
          // run_episode).
          pool.set_accel(lane, runner.plan());
        }
      }
      if (!pending.empty()) {
        plans.resize(worlds.size());
        batch_plan(worlds, plans);
        for (std::size_t j = 0; j < pending.size(); ++j) {
          pool.set_accel(pending[j], plans[j]);
        }
      }
      // The per-lane loop has no sweep decomposition; report the coarse
      // observe+plan / advance split so reference-engine campaigns still
      // carry a time breakdown.
      lap(SweepSpans::kPlan);
      for (std::size_t lane = 0; lane < pool.active(); ++lane) {
        pool.runner(lane).advance_begin(pool.accel(lane));
        pool.stage_lane(lane);
      }
      pool.step_dynamics();
      pool.retire_and_refill(records);
      lap(SweepSpans::kAdvance);
    }
  }
  if (timed) sinks.spans->merge(local_spans);
}

}  // namespace detail

/// Runs \p n episodes through the fleet engine and returns the compact
/// records in episode-index (seed) order. \p planner_factory, when
/// non-empty, enables mega-batched planning (one batch call per worker
/// shard-step); otherwise every episode dispatches its own planner.
template <typename World>
std::vector<FleetRecord> run_fleet_records(
    const ScenarioAdapter<World>& adapter, std::size_t n,
    std::uint64_t base_seed, const FleetConfig& config = {},
    const FleetPlannerFactory<World>& planner_factory = {},
    const FleetObsSinks& sinks = {}) {
  CVSAFE_EXPECTS(n > 0, "fleet must contain at least one episode");
  CVSAFE_EXPECTS(config.pool_capacity > 0,
                 "fleet pool capacity must be positive");
  std::vector<FleetRecord> records(n);
  std::size_t workers =
      config.threads != 0
          ? config.threads
          : std::max<std::size_t>(1, std::thread::hardware_concurrency());
  workers = std::min(workers, n);
  const std::size_t resident = std::min(config.pool_capacity, n);
  const std::size_t lanes = std::max<std::size_t>(1, resident / workers);
  std::atomic<std::size_t> next_episode{0};
  std::span<FleetRecord> out(records);
  // Batched sweeps need the adapter's promise that every episode
  // implements the sweep decomposition.
  const bool batched_sweeps = config.batched_sweeps && adapter.fleet_sweeps();
  const auto worker_body = [&] {
    const FleetBatchPlanner<World> batch_plan =
        planner_factory ? planner_factory() : FleetBatchPlanner<World>{};
    detail::run_fleet_worker(adapter, lanes, base_seed, config.policy,
                             next_episode, n, batch_plan, batched_sweeps,
                             out, sinks);
  };
  if (workers <= 1) {
    worker_body();
  } else {
    // Dedicated threads, not util::parallel_for: its small-n serial
    // fallback would let worker 0 drain the shared counter before worker
    // 1 starts, serializing 2- and 3-worker fleets.
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      threads.emplace_back(worker_body);
    }
    for (auto& t : threads) t.join();
  }
  return records;
}

/// run_fleet_records + the deterministic index-ordered folds.
template <typename World>
FleetResult run_fleet(const ScenarioAdapter<World>& adapter, std::size_t n,
                      std::uint64_t base_seed, const FleetConfig& config = {},
                      const FleetPlannerFactory<World>& planner_factory = {},
                      const FleetObsSinks& sinks = {}) {
  const std::vector<FleetRecord> records =
      run_fleet_records(adapter, n, base_seed, config, planner_factory,
                        sinks);
  FleetResult result;
  result.stats = stats_from_records(records);
  collect_record_metrics(result.metrics, records);
  return result;
}

}  // namespace cvsafe::sim
