#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <utility>
#include <vector>

#include "cvsafe/comm/channel.hpp"
#include "cvsafe/core/compound_planner.hpp"
#include "cvsafe/core/degradation.hpp"
#include "cvsafe/core/evaluation.hpp"
#include "cvsafe/core/planner.hpp"
#include "cvsafe/fault/faulty_channel.hpp"
#include "cvsafe/fault/faulty_sensor.hpp"
#include "cvsafe/filter/estimate.hpp"
#include "cvsafe/filter/info_filter.hpp"
#include "cvsafe/obs/flight_recorder.hpp"
#include "cvsafe/obs/recorder.hpp"
#include "cvsafe/sensing/sensor.hpp"
#include "cvsafe/sim/fleet_context.hpp"
#include "cvsafe/sim/run_config.hpp"
#include "cvsafe/sim/run_result.hpp"
#include "cvsafe/sim/seeding.hpp"
#include "cvsafe/util/contracts.hpp"
#include "cvsafe/util/rng.hpp"
#include "cvsafe/util/thread_pool.hpp"
#include "cvsafe/vehicle/accel_profile.hpp"
#include "cvsafe/vehicle/dynamics.hpp"

/// \file engine.hpp
/// The generic closed-loop engine: ONE implementation of the per-step
/// sense -> deliver -> estimate -> monitor -> plan -> act loop that every
/// scenario shares, parameterized by a ScenarioAdapter. The engine owns
/// the step sequencing — traffic broadcast, channel delivery, estimator
/// update, planner dispatch (monitor query included via the compound
/// planner seam), dynamics stepping, eta/trace recording — while the
/// adapter owns what is genuinely scenario-specific: workload generation,
/// world-view construction and unsafe/target classification.
///
/// Determinism contract: one util::Rng drives an entire episode. The
/// draw order is fixed — workload draws in ScenarioAdapter::make_episode
/// first, then per step and per traffic actor (in creation order) the
/// channel offer followed by the sensor sample. Batch runners seed each
/// episode independently (seeding.hpp), so results are bit-reproducible
/// regardless of thread scheduling.

namespace cvsafe::sim {

/// One simulated traffic participant: physical state, its scripted
/// acceleration profile, the V2V channel and sensor through which the ego
/// observes it, and the estimator(s) consuming those observations.
struct TrafficActor {
  std::uint32_t id = 1;  ///< V2V message source id
  vehicle::VehicleState state{};
  vehicle::AccelProfile profile;
  /// Channel/sensor are the fault-injecting decorators; with an empty
  /// FaultPlan (the default) both are pure pass-throughs, bit-identical
  /// to the undecorated comm::Channel / sensing::Sensor.
  fault::FaultyChannel channel;
  fault::FaultySensor sensor;
  /// Estimators fed by pump(), updated in vector order per delivery.
  std::vector<std::unique_ptr<filter::Estimator>> estimators;

  /// Delivery scratch reused by broadcast_and_observe: after the first
  /// few deliveries warm its capacity, draining the channel allocates
  /// nothing (part of the zero-alloc steady-state episode step).
  std::vector<comm::Message> inbox;
};

/// Builds the (possibly fault-decorated) channel of actor \p actor_id for
/// the episode seeded with \p episode_seed. Fault randomness comes from a
/// stream derived from the plan seed and the episode seed — disjoint from
/// the episode RNG — so enabling faults never shifts workload, drop or
/// sensor-noise draws, and a fault campaign runs on paired workloads.
inline fault::FaultyChannel actor_channel(const RunConfig& config,
                                          std::uint32_t actor_id,
                                          std::uint64_t episode_seed) {
  return fault::FaultyChannel(
      config.comm, config.faults.channel,
      util::derive_seed(util::derive_seed(config.faults.seed, episode_seed),
                        2ULL * actor_id));
}

/// Companion of actor_channel for the actor's sensor (odd stream index).
inline fault::FaultySensor actor_sensor(const RunConfig& config,
                                        std::uint32_t actor_id,
                                        std::uint64_t episode_seed) {
  return fault::FaultySensor(
      config.sensor, config.faults.sensor,
      util::derive_seed(util::derive_seed(config.faults.seed, episode_seed),
                        2ULL * actor_id + 1ULL));
}

/// Information-quality signals of one estimator at time \p t (input to
/// the degradation ladder; see core/degradation.hpp).
inline core::DegradationSignals degradation_signals(
    const filter::InformationFilter& filt, double t) {
  core::DegradationSignals s;
  s.have_message = filt.last_message_time() >= 0.0;
  if (s.have_message) s.message_age = t - filt.last_message_time();
  s.filter_consistent = filt.consistent_at(t);
  return s;
}

/// Worst-case signal aggregation across the episode's observed vehicles:
/// start from a perfect signal set and fold each vehicle in.
struct SignalAccumulator {
  core::DegradationSignals worst{0.0, true, true};

  void add(const core::DegradationSignals& s) {
    if (s.message_age > worst.message_age) {
      worst.message_age = s.message_age;
    }
    worst.have_message = worst.have_message && s.have_message;
    worst.filter_consistent =
        worst.filter_consistent && s.filter_consistent;
  }
};

/// The per-actor half of an engine step: the actor broadcasts its current
/// snapshot on its channel, due messages are delivered and a sensor
/// sample is (possibly) taken, each forwarded to the estimator sinks.
/// RNG draw order: channel offer, then sensor sample. Returns the
/// pre-step snapshot (used by traces and for the dynamics step).
template <typename OnMessage, typename OnSensor>
vehicle::VehicleSnapshot broadcast_and_observe(TrafficActor& actor, double t,
                                               std::size_t step,
                                               util::Rng& rng,
                                               OnMessage&& on_message,
                                               OnSensor&& on_sensor) {
  const double accel = actor.profile.at(step);
  const vehicle::VehicleSnapshot snapshot{t, actor.state, accel};
  actor.channel.offer(comm::Message{actor.id, snapshot}, rng);
  actor.channel.collect_into(t, actor.inbox);
  for (const auto& msg : actor.inbox) on_message(msg);
  if (const auto reading = actor.sensor.sense(snapshot, rng)) {
    on_sensor(*reading);
  }
  return snapshot;
}

/// broadcast_and_observe into the actor's own estimators.
inline vehicle::VehicleSnapshot pump(TrafficActor& actor, double t,
                                     std::size_t step, util::Rng& rng) {
  return broadcast_and_observe(
      actor, t, step, rng,
      [&](const comm::Message& msg) {
        for (const auto& est : actor.estimators) est->on_message(msg);
      },
      [&](const sensing::SensorReading& reading) {
        for (const auto& est : actor.estimators) est->on_sensor(reading);
      });
}

/// Per-episode scenario state: traffic, estimators and the assembled
/// control stack. Instances are created fresh by ScenarioAdapter for
/// every episode (estimator and monitor state is per episode).
template <typename World>
class Episode {
 public:
  virtual ~Episode() = default;

  /// Pumps every traffic actor's channel/sensor at (t, step) and fills
  /// the scenario fields of \p world (estimates, occupancy windows). The
  /// engine has already set world.t and world.ego.
  virtual void observe(World& world, double t, std::size_t step,
                       util::Rng& rng) = 0;

  // --- Fleet batched-sweep seam ---------------------------------------
  // The fleet engine decomposes observe() into fleet-wide sweeps so the
  // heavy arithmetic (Kalman update/predict, reachability propagation)
  // runs batched over every resident lane. The decomposition preserves
  // each lane's op and RNG order exactly — pump (channel offer + drain),
  // deliver (screened message absorption), sense (sensor sample), stage
  // (sweep staging), build (world assembly) happen in the same per-lane
  // sequence observe() runs them in; only *cross-lane* interleaving
  // changes, and lanes share no state beyond the pool-resident SoA slots
  // each owns exclusively. Scenarios opt in by overriding bind_fleet to
  // return true (and their adapter's fleet_sweeps()); the defaults keep
  // scenarios on the reference per-lane loop.

  /// Binds the episode's pool-resident state (Kalman lanes, ladder slot)
  /// into \p ctx; returns true when the episode supports the sweep
  /// decomposition. Called once at fleet admission, before any step.
  virtual bool bind_fleet(FleetStackContext& ctx) {
    (void)ctx;
    return false;
  }

  /// Sweep 1 of observe(): broadcasts the traffic snapshot(s) on the
  /// channel (episode-RNG draws) and drains due messages into the slab's
  /// open lane.
  virtual void sweep_pump(double t, std::size_t step, util::Rng& rng,
                          comm::MessageSlab& slab) {
    (void)t, (void)step, (void)rng, (void)slab;
    CVSAFE_EXPECTS(false, "episode does not implement fleet sweeps");
  }

  /// Sweep 2: absorbs slab entries [first, last) — this episode's
  /// delivered messages, in delivery order — into the estimator stack.
  virtual void sweep_deliver(const comm::MessageSlab& slab,
                             std::size_t first, std::size_t last) {
    (void)slab, (void)first, (void)last;
    CVSAFE_EXPECTS(false, "episode does not implement fleet sweeps");
  }

  /// Sweep 3: samples the sensor(s) (episode-RNG draws) and feeds the
  /// readings to the estimator stack (pooled Kalman lanes stage them for
  /// FleetEstimator::update_batch).
  virtual void sweep_sense(double t, std::size_t step, util::Rng& rng) {
    (void)t, (void)step, (void)rng;
    CVSAFE_EXPECTS(false, "episode does not implement fleet sweeps");
  }

  /// Sweep 4 staging: queues the reachability propagation(s) to query
  /// time \p t into \p reach and the Kalman extrapolations into the
  /// bound fleet estimator. Runs after update_batch absorbed this step's
  /// readings.
  virtual void sweep_stage(double t, filter::ReachSweep& reach) {
    (void)t, (void)reach;
    CVSAFE_EXPECTS(false, "episode does not implement fleet sweeps");
  }

  /// Sweep 5: fills the scenario fields of \p world (t/ego already set),
  /// reading the caches the batched sweeps produced.
  virtual void sweep_build(World& world) {
    (void)world;
    CVSAFE_EXPECTS(false, "episode does not implement fleet sweeps");
  }

  /// Steps all traffic with the scenario dynamics.
  virtual void advance_traffic(std::size_t step, double dt) = 0;

  /// Classifies the post-step configuration (unsafe / target set).
  virtual StepStatus check(const vehicle::VehicleState& ego) const = 0;

  /// Attaches scenario extras to the finished result (default: none).
  virtual void finalize(RunResult& result) const { (void)result; }

  /// Wires an obs::Recorder through the episode's control stack so its
  /// instrumentation points (monitor, ladder, gate, Kalman, fault
  /// decorators) emit trace events. Default: no instrumentation (the
  /// engine-mounted hook still records per-step events). Called by
  /// sim::RecordingHook before the first step.
  virtual void attach_recorder(obs::Recorder* recorder) { (void)recorder; }

  /// Wires a flight-recorder ring through the control stack (gate,
  /// compound planner) so its compact instrumentation points land in the
  /// pool lane's ring. Default: no instrumentation. Called by the fleet
  /// pool at admission, after the ring is reset.
  virtual void attach_ring(obs::RingRecorder* ring) { (void)ring; }

  core::PlannerBase<World>& planner() { return *planner_; }
  const std::shared_ptr<core::PlannerBase<World>>& planner_ptr() const {
    return planner_;
  }
  /// The compound planner wrapping kappa_n, or nullptr when the stack is
  /// unmonitored (pure-NN / raw baselines).
  core::CompoundPlanner<World>* compound() const { return compound_; }
  const vehicle::VehicleState& ego_init() const { return ego_init_; }

 protected:
  std::shared_ptr<core::PlannerBase<World>> planner_;
  core::CompoundPlanner<World>* compound_ = nullptr;  ///< non-owning view
  vehicle::VehicleState ego_init_{};
};

/// Scenario plug-in: everything the engine cannot know. Stateless across
/// episodes — all per-episode state lives in the Episode it creates.
template <typename World>
class ScenarioAdapter {
 public:
  using WorldType = World;

  virtual ~ScenarioAdapter() = default;

  virtual std::string_view name() const = 0;

  /// The scenario-independent loop parameters.
  virtual const RunConfig& run() const = 0;

  /// Draws the episode workload from \p rng and assembles traffic +
  /// control stack. Every random workload choice happens here, before
  /// the first step, in an order documented by the adapter. \p seed is
  /// the episode seed driving \p rng, passed through so the adapter can
  /// derive the *fault* streams (actor_channel / actor_sensor) without
  /// touching the episode RNG.
  virtual std::unique_ptr<Episode<World>> make_episode(
      util::Rng& rng, std::size_t total_steps,
      std::uint64_t seed) const = 0;

  /// True when every episode this adapter creates implements the fleet
  /// sweep decomposition (Episode::bind_fleet and the sweep_* overrides).
  /// The fleet engine only engages its batched shard-step for adapters
  /// that promise this; the default keeps scenarios on the reference
  /// per-lane loop.
  virtual bool fleet_sweeps() const { return false; }
};

/// Optional per-step observer (figure traces, debugging). on_step fires
/// after planning and before the dynamics step — ego and the traffic are
/// still in their pre-step states.
template <typename World>
class StepHook {
 public:
  virtual ~StepHook() = default;

  /// Fires once from the EpisodeRunner constructor, before the first
  /// step. The episode is mutable here so instrumenting hooks can wire
  /// sinks through the freshly built control stack.
  virtual void on_episode_start(Episode<World>& episode,
                                std::uint64_t seed) {
    (void)episode;
    (void)seed;
  }

  /// Fires at the top of the observe phase, before traffic is pumped —
  /// the earliest point at which (step, t) of the new step are known.
  virtual void on_step_begin(std::size_t step, double t) {
    (void)step;
    (void)t;
  }

  virtual void on_step(std::size_t step, double t, const World& world,
                       const vehicle::VehicleState& ego, double a0,
                       bool emergency, const Episode<World>& episode) = 0;
  virtual void on_finish(const Episode<World>& episode) { (void)episode; }
};

/// Drives one episode through the engine loop with explicit phases, so
/// callers can either step it to completion (run_episode) or interleave
/// many runners and batch the NN evaluations across them (batch.hpp).
template <typename World>
class EpisodeRunner {
 public:
  EpisodeRunner(const ScenarioAdapter<World>& adapter, std::uint64_t seed,
                StepHook<World>* hook = nullptr)
      : config_(&adapter.run()),
        rng_(seed),
        hook_(hook),
        total_steps_(config_->total_steps()),
        episode_(adapter.make_episode(rng_, total_steps_, seed)),
        ego_dyn_(config_->ego_limits),
        ego_(episode_->ego_init()) {
    if (hook_ != nullptr) hook_->on_episode_start(*episode_, seed);
  }

  bool done() const { return finished_ || step_ >= total_steps_; }

  /// Phase 1: traffic broadcast, channel delivery, estimator update;
  /// builds the planner's world view for the current step.
  const World& observe() {
    observe_begin();
    episode_->observe(world_, t_, step_, rng_);
    return world_;
  }

  /// Phase 1 bookkeeping only (fleet sweep path): step timing, the
  /// step-begin hook and the world skeleton (t/ego), without the
  /// episode's observe work — the pool drives that through the sweeps.
  /// observe() == observe_begin() + Episode::observe.
  void observe_begin() {
    CVSAFE_EXPECTS(!done(), "observe() after the episode finished");
    t_ = static_cast<double>(step_) * config_->dt_c;
    if (hook_ != nullptr) hook_->on_step_begin(step_, t_);
    if (ring_ != nullptr) ring_->begin_step(static_cast<std::uint32_t>(step_));
    world_ = World{};
    world_.t = t_;
    world_.ego = ego_;
  }

  /// Fleet bind at admission (pool-resident estimator/ladder slots).
  bool bind_fleet(FleetStackContext& ctx) {
    return episode_->bind_fleet(ctx);
  }

  /// Attaches the pool lane's flight-recorder ring: the runner stamps
  /// each step into it (observe_begin) and detects plan clamps
  /// (advance_begin); the episode wires it through gate and planner.
  /// Pass nullptr to detach.
  void attach_ring(obs::RingRecorder* ring) {
    ring_ = ring;
    episode_->attach_ring(ring);
  }

  // Fleet sweep wrappers: forward the current (t, step) and the episode
  // RNG so the per-lane draw order matches observe() exactly. Valid only
  // between observe_begin() and advance_begin().
  void sweep_pump(comm::MessageSlab& slab) {
    episode_->sweep_pump(t_, step_, rng_, slab);
  }
  void sweep_deliver(const comm::MessageSlab& slab, std::size_t first,
                     std::size_t last) {
    episode_->sweep_deliver(slab, first, last);
  }
  void sweep_sense() { episode_->sweep_sense(t_, step_, rng_); }
  void sweep_stage(filter::ReachSweep& reach) {
    episode_->sweep_stage(t_, reach);
  }
  const World& sweep_build() {
    episode_->sweep_build(world_);
    return world_;
  }

  /// Phase 2a (single-episode path): full planner dispatch.
  double plan() { return episode_->planner().plan(world_); }

  /// Phase 2b (lockstep path): the runtime monitor's decision only —
  /// the emergency acceleration when kappa_e takes this step, nullopt
  /// when the embedded planner must be evaluated on nn_world(). For an
  /// unmonitored stack this always returns nullopt.
  std::optional<double> monitor_gate() {
    auto* compound = episode_->compound();
    if (compound == nullptr) return std::nullopt;
    return compound->monitor_gate(world_);
  }

  /// The world view the embedded planner sees this step (aggressive
  /// shrink applied when the compound planner is configured for it).
  World nn_world() const {
    auto* compound = episode_->compound();
    return compound != nullptr ? compound->planner_view(world_) : world_;
  }

  /// Phase 3: bookkeeping, dynamics and outcome for the chosen command.
  void advance(double a0) {
    advance_begin(a0);
    advance_commit(ego_dyn_.step(ego_, a0, config_->dt_c));
  }

  /// Phase 3a (pooled path): the pre-dynamics half of advance() — step
  /// accounting and the hook firing on the pre-step states. The caller
  /// then steps the ego externally (vehicle::DoubleIntegrator::step_batch
  /// over the pool's SoA lanes, bit-identical per lane to step()) and
  /// completes the step with advance_commit().
  void advance_begin(double a0) {
    ++result_.steps;
    if (obs::ring_recording(ring_)) {
      const vehicle::VehicleLimits& limits = config_->ego_limits;
      if (a0 < limits.a_min) {
        ring_->plan_clamp(a0, limits.a_min);
      } else if (a0 > limits.a_max) {
        ring_->plan_clamp(a0, limits.a_max);
      }
    }
    auto* compound = episode_->compound();
    const bool emergency =
        compound != nullptr && compound->last_was_emergency();
    if (emergency) ++result_.emergency_steps;
    if (hook_ != nullptr) {
      hook_->on_step(step_, t_, world_, ego_, a0, emergency, *episode_);
    }
  }

  /// Phase 3b (pooled path): adopts the externally stepped ego state,
  /// advances traffic and classifies the post-step configuration.
  void advance_commit(const vehicle::VehicleState& stepped_ego) {
    ego_ = stepped_ego;
    episode_->advance_traffic(step_, config_->dt_c);
    const StepStatus status = episode_->check(ego_);
    if (status.collided) {
      result_.collided = true;
      finished_ = true;
    } else if (status.reached) {
      result_.reached = true;
      result_.reach_time = t_ + config_->dt_c;
      finished_ = true;
    }
    ++step_;
  }

  /// Current ego state (pool mirrors it into the SoA lanes).
  const vehicle::VehicleState& ego() const { return ego_; }

  /// The engine-facing loop parameters of this episode's scenario.
  const RunConfig& config() const { return *config_; }

  /// Seals the episode: eta evaluation, scenario extras, finish hook.
  RunResult finish() {
    if (hook_ != nullptr) hook_->on_finish(*episode_);
    core::EpisodeOutcome outcome;
    outcome.entered_unsafe_set = result_.collided;
    outcome.reached_target = result_.reached;
    outcome.reach_time = result_.reach_time;
    result_.eta = core::eta(outcome);
    if (auto* compound = episode_->compound();
        compound != nullptr && compound->has_ladder()) {
      const core::DegradationStats ladder_stats = compound->ladder_stats();
      result_.ladder_steps = ladder_stats.steps_at;
      result_.ladder_transitions = ladder_stats.transitions;
    }
    episode_->finalize(result_);
    return std::move(result_);
  }

  const Episode<World>& episode() const { return *episode_; }

 private:
  const RunConfig* config_;
  util::Rng rng_;
  StepHook<World>* hook_;
  obs::RingRecorder* ring_ = nullptr;  ///< pool lane ring (non-owning)
  std::size_t total_steps_;
  std::unique_ptr<Episode<World>> episode_;
  vehicle::DoubleIntegrator ego_dyn_;
  vehicle::VehicleState ego_;
  World world_{};
  double t_ = 0.0;
  std::size_t step_ = 0;
  bool finished_ = false;
  RunResult result_;
};

/// Runs one episode to completion. \p seed drives every random choice
/// (workload, channel drops, sensor noise); \p hook, when non-null,
/// receives the per-step recording.
template <typename World>
RunResult run_episode(const ScenarioAdapter<World>& adapter,
                      std::uint64_t seed, StepHook<World>* hook = nullptr) {
  EpisodeRunner<World> runner(adapter, seed, hook);
  while (!runner.done()) {
    runner.observe();
    runner.advance(runner.plan());
  }
  return runner.finish();
}

/// Runs \p n independent episodes in parallel (util::parallel_for; 0 =
/// hardware thread count) and returns the seed-ordered results.
template <typename World>
std::vector<RunResult> run_episodes(const ScenarioAdapter<World>& adapter,
                                    std::size_t n, std::uint64_t base_seed,
                                    std::size_t threads = 0,
                                    SeedPolicy policy = SeedPolicy::kPaired) {
  CVSAFE_EXPECTS(n > 0, "batch must contain at least one episode");
  std::vector<RunResult> results(n);
  util::parallel_for(
      n,
      [&](std::size_t i) {
        results[i] = run_episode(adapter, episode_seed(base_seed, i, policy));
      },
      threads);
  return results;
}

}  // namespace cvsafe::sim
