#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cvsafe/scenario/left_turn.hpp"
#include "cvsafe/sim/engine.hpp"
#include "cvsafe/sim/fleet.hpp"
#include "cvsafe/sim/left_turn_stack.hpp"
#include "cvsafe/vehicle/accel_profile.hpp"
#include "cvsafe/vehicle/trajectory.hpp"

/// \file left_turn.hpp
/// The closed-loop left-turn scenario of Section V as a sim::Engine
/// adapter: ego control stack vs an oncoming vehicle driving a random
/// acceleration sequence, under a configurable communication / sensing
/// disturbance.

namespace cvsafe::sim {

/// Workload generation parameters (the paper's Section V setup).
struct WorkloadParams {
  /// Grid of oncoming initial positions, paper coordinates
  /// {50.5 + 0.5 j | j = 0..19}; one is drawn per simulation.
  std::vector<double> p1_grid;

  /// Oncoming initial speed range [m/s].
  double v1_init_min = 7.0;
  double v1_init_max = 14.0;

  /// Random acceleration-sequence shape.
  vehicle::AccelProfileParams profile;

  /// The paper's grid.
  static std::vector<double> paper_p1_grid();
};

/// Full configuration of one left-turn simulation cell. The engine-facing
/// loop parameters live in the RunConfig base (their defaults already are
/// the paper's left-turn values).
struct LeftTurnSimConfig : RunConfig {
  scenario::LeftTurnGeometry geometry;
  vehicle::VehicleLimits c1_limits{2.0, 15.0, -3.0, 3.0};
  WorkloadParams workload;

  /// Paper-default configuration (Section V parameters).
  static LeftTurnSimConfig paper_defaults();

  /// The shared scenario math object for this configuration.
  std::shared_ptr<const scenario::LeftTurnScenario> make_scenario() const;
};

/// Reusable description of an agent; make() produces a fresh control
/// stack (estimator state is per episode).
struct AgentBlueprint {
  std::string name;
  std::shared_ptr<const scenario::LeftTurnScenario> scenario;
  std::shared_ptr<const nn::Mlp> net;  ///< null for expert agents
  /// Non-empty: kappa_n is a deep ensemble of these members (takes
  /// precedence over `net`).
  std::vector<std::shared_ptr<const nn::Mlp>> ensemble;
  sensing::SensorConfig sensor;
  AgentConfig config;

  std::unique_ptr<LeftTurnStack> make() const;
};

/// Optional per-step recording for figures and examples.
struct SimTrace {
  vehicle::Trajectory ego;
  vehicle::Trajectory c1;                 ///< oncoming, u frame
  std::vector<double> accel_commands;     ///< ego command per step
  std::vector<bool> emergency_flags;      ///< kappa_e engaged per step
  std::vector<double> tau1_lo, tau1_hi;   ///< NN-facing window per step
  std::vector<core::SwitchEvent> switches;  ///< monitor hand-overs
};

/// Per-episode left-turn state: the oncoming vehicle (its channel/sensor
/// pair) plus the assembled ego control stack.
class LeftTurnEpisode final : public Episode<scenario::LeftTurnWorld> {
 public:
  /// Workload draw order (fixed; golden traces depend on it): oncoming
  /// grid index, initial speed, acceleration profile.
  LeftTurnEpisode(const LeftTurnSimConfig& config,
                  const AgentBlueprint& blueprint, util::Rng& rng,
                  std::size_t total_steps, std::uint64_t seed);

  void observe(scenario::LeftTurnWorld& world, double t, std::size_t step,
               util::Rng& rng) override;

  /// Fleet sweep decomposition of observe(): the per-lane op and RNG
  /// order (offer -> drain -> deliver -> sense -> build) is identical;
  /// the heavy arithmetic runs in the pool's batched sweeps between
  /// sweep_stage and sweep_build.
  bool bind_fleet(FleetStackContext& ctx) override;
  void sweep_pump(double t, std::size_t step, util::Rng& rng,
                  comm::MessageSlab& slab) override;
  void sweep_deliver(const comm::MessageSlab& slab, std::size_t first,
                     std::size_t last) override;
  void sweep_sense(double t, std::size_t step, util::Rng& rng) override;
  void sweep_stage(double t, filter::ReachSweep& reach) override;
  void sweep_build(scenario::LeftTurnWorld& world) override;

  void advance_traffic(std::size_t step, double dt) override;
  StepStatus check(const vehicle::VehicleState& ego) const override;

  /// Attaches the monitor statistics (compound stacks only) as a
  /// RunResult extra.
  void finalize(RunResult& result) const override;

  /// Wires the recorder through the ego stack and the oncoming vehicle's
  /// fault decorators (channel + sensor).
  void attach_recorder(obs::Recorder* recorder) override;

  /// Wires a flight-recorder ring through the ego stack (compound
  /// planner + gate seams).
  void attach_ring(obs::RingRecorder* ring) override;

  LeftTurnStack& stack() { return *stack_; }
  const LeftTurnStack& stack() const { return *stack_; }

  /// The oncoming vehicle's ground-truth snapshot of the current step
  /// (valid after observe(); used by trace recording).
  const vehicle::VehicleSnapshot& c1_snapshot() const {
    return c1_snapshot_;
  }

 private:
  const scenario::LeftTurnScenario* scn_;
  vehicle::DoubleIntegrator c1_dyn_;
  TrafficActor c1_;
  std::unique_ptr<LeftTurnStack> stack_;
  vehicle::VehicleSnapshot c1_snapshot_{};
};

/// The left-turn scenario plugged into the generic engine.
class LeftTurnAdapter final : public ScenarioAdapter<scenario::LeftTurnWorld> {
 public:
  LeftTurnAdapter(LeftTurnSimConfig config, AgentBlueprint blueprint)
      : config_(std::move(config)), blueprint_(std::move(blueprint)) {}

  std::string_view name() const override { return "left-turn"; }
  const RunConfig& run() const override { return config_; }
  std::unique_ptr<Episode<scenario::LeftTurnWorld>> make_episode(
      util::Rng& rng, std::size_t total_steps,
      std::uint64_t seed) const override;

  /// Every LeftTurnEpisode implements the sweep decomposition (for any
  /// agent configuration), so the fleet engine may batch the shard-step.
  bool fleet_sweeps() const override { return true; }

  const LeftTurnSimConfig& config() const { return config_; }
  const AgentBlueprint& blueprint() const { return blueprint_; }

 private:
  LeftTurnSimConfig config_;
  AgentBlueprint blueprint_;
};

/// Runs one episode. \p seed drives every random choice (workload,
/// channel drops, sensor noise), so results are exactly reproducible and
/// different planners can be compared on *paired* workloads by sharing
/// seeds. \p trace, when non-null, receives the per-step recording.
RunResult run_left_turn_simulation(const LeftTurnSimConfig& config,
                                   const AgentBlueprint& blueprint,
                                   std::uint64_t seed,
                                   SimTrace* trace = nullptr);

/// How run_left_turn_batch evaluates the NN planner across episodes.
enum class BatchMode {
  kAuto,        ///< lockstep when the blueprint is a single-network NN
  kPerEpisode,  ///< one planner dispatch per episode per step
  kLockstep,    ///< batched NN evaluation across in-flight episodes
};

/// Runs \p n simulations in parallel (CVSAFE_THREADS-controllable worker
/// count, 0 = hardware). Under SeedPolicy::kPaired (the default) seeds
/// are base_seed .. base_seed + n - 1, so two batches over the same seed
/// range see *paired* workloads and disturbances.
///
/// Single-network NN blueprints are (under kAuto) evaluated in lockstep:
/// each worker advances a shard of episodes step-synchronously and feeds
/// all non-emergency worlds through one NnPlanner::plan_batch call per
/// step — bit-identical to the per-episode path, since plan_batch is
/// bit-identical to plan() and the monitor decision is factored out
/// through CompoundPlanner::monitor_gate.
BatchStats run_left_turn_batch(const LeftTurnSimConfig& config,
                               const AgentBlueprint& blueprint,
                               std::size_t n, std::uint64_t base_seed = 1,
                               std::size_t threads = 0,
                               BatchMode mode = BatchMode::kAuto,
                               SeedPolicy policy = SeedPolicy::kPaired);

/// Runs \p n left-turn episodes through the fleet engine (fleet.hpp):
/// bounded SoA episode pool per worker, work-stealing admission from a
/// shared counter, and — for single-network NN blueprints — one
/// mega-batched NnPlanner::plan_batch call per worker shard-step spanning
/// every resident episode. Stats and metrics are byte-identical to
/// run_left_turn_batch over the same seeds for any thread count or pool
/// capacity (pinned by tests/sim_fleet_test).
FleetResult run_left_turn_fleet(const LeftTurnSimConfig& config,
                                const AgentBlueprint& blueprint,
                                std::size_t n, std::uint64_t base_seed = 1,
                                const FleetConfig& fleet = {},
                                const FleetObsSinks& sinks = {});

/// The fleet-engine records (seed-ordered, pre-fold) of the same run —
/// the campaign layer folds these itself to keep per-cell CSVs
/// byte-identical.
std::vector<FleetRecord> run_left_turn_fleet_records(
    const LeftTurnSimConfig& config, const AgentBlueprint& blueprint,
    std::size_t n, std::uint64_t base_seed = 1,
    const FleetConfig& fleet = {}, const FleetObsSinks& sinks = {});

}  // namespace cvsafe::sim
