#pragma once

#include <cstdint>
#include <memory>

#include "cvsafe/scenario/intersection.hpp"
#include "cvsafe/sim/engine.hpp"

/// \file intersection.hpp
/// The two-zone intersection crossing as a sim::Engine adapter: streams
/// of crossing vehicles on both lanes, each observed through its own
/// (possibly disturbed) V2V channel and noisy sensor; the monitor builds
/// per-lane occupancy-window sets from sound per-vehicle estimates.

namespace cvsafe::sim {

/// Configuration of one intersection simulation cell.
struct IntersectionSimConfig : RunConfig {
  IntersectionSimConfig() { horizon = 40.0; }

  scenario::IntersectionGeometry geometry;
  vehicle::VehicleLimits cross_limits{2.0, 14.0, -3.0, 3.0};

  /// Cross-traffic stream shape (per lane).
  std::size_t vehicles_per_lane = 2;
  double headway_min = 20.0;  ///< spacing between stream vehicles [m]
  double headway_max = 45.0;
  double v_init_min = 6.0;
  double v_init_max = 12.0;

  /// Crossing corridor of the perpendicular road in each cross vehicle's
  /// OWN path coordinate (entry / exit of the conflict square).
  double cross_zone_front = 30.0;
  double cross_zone_back = 33.5;
  /// Initial distance of each lane's lead vehicle to its zone entry [m].
  double lead_gap_min = 20.0;
  double lead_gap_max = 50.0;

  std::shared_ptr<const scenario::IntersectionScenario> make_scenario()
      const;
};

/// The intersection scenario plugged into the generic engine. The
/// embedded planner is the reckless shared cruise controller (11 m/s
/// set-point); \p use_compound wraps it in the compound planner.
class IntersectionAdapter final
    : public ScenarioAdapter<scenario::IntersectionWorld> {
 public:
  IntersectionAdapter(IntersectionSimConfig config, bool use_compound);

  std::string_view name() const override { return "intersection"; }
  const RunConfig& run() const override { return config_; }
  std::unique_ptr<Episode<scenario::IntersectionWorld>> make_episode(
      util::Rng& rng, std::size_t total_steps,
      std::uint64_t seed) const override;

  const IntersectionSimConfig& config() const { return config_; }

 private:
  IntersectionSimConfig config_;
  bool use_compound_;
  std::shared_ptr<const scenario::IntersectionScenario> scn_;
};

/// Runs one episode. \p use_compound wraps the reckless cruise planner in
/// the compound planner; without it the baseline simply drives through.
RunResult run_intersection_simulation(const IntersectionSimConfig& config,
                                      bool use_compound, std::uint64_t seed);

/// Parallel batch (seed-paired under the default policy).
BatchStats run_intersection_batch(const IntersectionSimConfig& config,
                                  bool use_compound, std::size_t n,
                                  std::uint64_t base_seed = 1,
                                  std::size_t threads = 0,
                                  SeedPolicy policy = SeedPolicy::kPaired);

}  // namespace cvsafe::sim
