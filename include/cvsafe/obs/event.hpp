#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <variant>

/// \file event.hpp
/// Typed trace events emitted by the safety stack.
///
/// Each event captures one runtime decision that the framework's safety
/// argument rests on: the monitor choosing kappa_e iff x(t) is in X_b
/// (Eq. 3), the degradation ladder moving between levels, the
/// plausibility gate rejecting a message, the Kalman filter rolling back
/// for a delayed message, or a fault model perturbing a channel/sensor.
/// Events are plain data; serialization lives in jsonl.hpp.

namespace cvsafe::obs {

/// Why the plausibility gate rejected a message. Mirrors the counter
/// fields of filter::RejectionCounters one-to-one.
enum class GateRejectReason : std::uint8_t {
  kNonFinite = 0,
  kOutOfRange,
  kStale,
  kImplausible,
};

const char* to_string(GateRejectReason reason);

/// Which fault stage acted on a message or sensor reading.
enum class FaultKind : std::uint8_t {
  kBlackoutDropped = 0,  ///< channel: message dropped in a blackout window
  kCorrupted,            ///< channel: payload perturbed
  kStaleSpoofed,         ///< channel: timestamp rewound
  kJittered,             ///< channel: extra delivery delay
  kReordered,            ///< channel: delivery order swapped
  kDuplicated,           ///< channel: message delivered twice
  kSensorDropped,        ///< sensor: reading suppressed
  kSensorStuck,          ///< sensor: reading frozen at a stale value
  kSensorBiased,         ///< sensor: drift bias added
};

const char* to_string(FaultKind kind);

/// Monitor decision at a planner switch (emitted on transitions only;
/// the per-step state travels in StepEvent).
struct MonitorEvent {
  bool to_emergency = false;  ///< true: kappa_n -> kappa_e, false: back
  bool in_boundary = false;   ///< X_b membership test result
  double slack = 0.0;         ///< boundary slack s(t) of Eq. 5
  std::string reason;         ///< which boundary test fired (entry only)
};

/// Degradation-ladder level change.
struct LadderEvent {
  std::string from;
  std::string to;
};

/// Plausibility-gate rejection with its reason code.
struct GateEvent {
  std::uint32_t sender = 0;  ///< id of the transmitting vehicle
  GateRejectReason reason = GateRejectReason::kNonFinite;
  double msg_t = 0.0;  ///< sampling timestamp of the rejected payload
};

/// Kalman out-of-order correction: rollback anchor + replay extent.
struct RollbackEvent {
  double anchor_t = 0.0;      ///< timestamp of the late message
  std::size_t replayed = 0;   ///< history entries re-applied after it
};

/// One fault-model action (channel or sensor stage).
struct FaultEvent {
  FaultKind kind = FaultKind::kBlackoutDropped;
  double value = 0.0;  ///< stage-specific magnitude (delay, bias, ...)
};

/// Per-step summary written by the engine-mounted hook: the applied
/// accel, whether the emergency planner drove it, the eta margin
/// (boundary slack s(t)) and the active degradation level.
struct StepEvent {
  double accel = 0.0;
  bool emergency = false;
  double margin = 0.0;
  int ladder_level = -1;  ///< -1 when no ladder is armed
};

/// Episode wrap-up emitted once after the closed loop finishes.
struct EpisodeEvent {
  bool collided = false;
  bool reached = false;
  double eta = 0.0;
  std::size_t steps = 0;
};

using EventPayload = std::variant<MonitorEvent, LadderEvent, GateEvent,
                                  RollbackEvent, FaultEvent, StepEvent,
                                  EpisodeEvent>;

/// A payload stamped with the controller step and simulation time at
/// which it was emitted (set via Recorder::begin_step).
struct Event {
  std::size_t step = 0;
  double t = 0.0;
  EventPayload payload;
};

}  // namespace cvsafe::obs
