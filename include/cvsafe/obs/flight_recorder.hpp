#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <limits>
#include <mutex>
#include <string>
#include <vector>

#include "cvsafe/obs/event.hpp"
#include "cvsafe/util/contracts.hpp"

/// \file flight_recorder.hpp
/// Fleet-scale flight recorder: a fixed-capacity, zero-allocation ring
/// buffer of compact binary events embedded in every pool lane.
///
/// The per-episode `obs::Recorder` buffers *whole* episodes as tagged
/// variants — fine for a handful of traced runs, infeasible at 8k-lane
/// pools. The `RingRecorder` instead keeps only the causal tail: each
/// event is a 16-byte POD written into a preallocated ring, and the full
/// JSONL trace is materialized *only* when an episode trips a trigger
/// condition at retire time (min-eta below threshold, EMERGENCY entry,
/// unsafe-set entry, hardened-gate rejection burst).
///
/// Determinism contract: events are emitted by per-episode control-stack
/// code (gate screens, monitor verdicts, ladder transitions) whose order
/// is pinned by the engine's draw-order contract, triggers are evaluated
/// from per-episode state only, and dumps are collected keyed by episode
/// index and serialized in index order — so the dump bytes are identical
/// across thread counts, pool sizes and fleet/reference engines.
///
/// The emit path follows the recorder discipline exactly: callers guard
/// with `ring_recording(ring)` (one pointer/flag test) and
/// `CVSAFE_TRACE_LEVEL=0` compiles the bodies out.

#ifndef CVSAFE_TRACE_LEVEL
#define CVSAFE_TRACE_LEVEL 1
#endif

namespace cvsafe::obs {

/// Event kinds recorded in the ring. The set is deliberately small and
/// closed: every kind is 1 byte and its code/aux/value layout is fixed
/// (see ring_event_jsonl_line).
enum class RingEventKind : std::uint8_t {
  kMessageAccept = 0,    ///< gate admitted a message (aux=sender, value=stamp)
  kMessageReject = 1,    ///< gate rejected (code=GateRejectReason, aux=sender)
  kGateVerdict = 2,      ///< monitor switched lanes (code=1 emergency)
  kLadderTransition = 3, ///< degradation level change (code=to, aux=from)
  kEtaSample = 4,        ///< per-step boundary slack sample (value=slack)
  kPlanClamp = 5,        ///< commanded accel outside actuator limits
};

/// Number of distinct RingEventKind values (array sizing).
inline constexpr std::size_t kNumRingEventKinds = 6;

/// Stable lowercase name for JSONL serialization.
const char* ring_event_kind_name(RingEventKind kind);

/// One compact binary flight-recorder event: 16 bytes, trivially
/// copyable, no heap. `step` is the control step the event was emitted
/// in (stamped by EpisodeRunner::observe_begin), `kind` selects the
/// code/aux/value interpretation.
struct RingEvent {
  std::uint32_t step = 0;
  std::uint8_t kind = 0;
  std::uint8_t code = 0;
  std::uint16_t aux = 0;
  double value = 0.0;
};
static_assert(sizeof(RingEvent) == 16, "RingEvent must stay compact");

/// Trigger bits: why an episode's ring was dumped. An episode may trip
/// several at once; the dump header lists every reason.
enum RingTrigger : unsigned {
  kTriggerEta = 1u << 0,            ///< final eta below eta_threshold
  kTriggerEmergency = 1u << 1,      ///< monitor entered EMERGENCY at least once
  kTriggerUnsafe = 1u << 2,         ///< episode entered the unsafe set
  kTriggerRejectionBurst = 1u << 3, ///< gate rejections reached rejection_burst
};

/// Name of a single trigger bit (exactly one bit set).
const char* ring_trigger_name(unsigned bit);

/// Arming parameters shared by every lane of a pool. The defaults are
/// tuned so a hardened fault-campaign cell produces dumps while a
/// nominal cell stays silent.
struct FlightRecorderConfig {
  /// Ring slots per lane. The ring keeps the causal *tail*: when full,
  /// the oldest event is overwritten and counted (never silent).
  std::size_t ring_capacity = 256;
  /// Dump when the episode's final eta is strictly below this.
  double eta_threshold = 0.05;
  /// Dump when the gate rejected at least this many messages. 0 disables
  /// the burst trigger.
  std::size_t rejection_burst = 8;
  /// Dump on EMERGENCY entry / unsafe-set entry.
  bool on_emergency = true;
  bool on_unsafe = true;
};

/// Fixed-capacity event ring for one pool lane. Armed once (allocating),
/// then reset at every admission and written with plain array stores —
/// the steady-state emit path performs zero allocations.
///
/// Like obs::Recorder, a RingRecorder is single-threaded by design: one
/// lane, one ring. Lane compaction swaps ring *pointers*, never rings,
/// so episodes can hold stable `RingRecorder*` across refills.
class RingRecorder {
 public:
  static constexpr bool kCompiledIn = CVSAFE_TRACE_LEVEL > 0;

  RingRecorder() = default;
  explicit RingRecorder(const FlightRecorderConfig& config) { arm(config); }

  /// Allocates the ring storage. The only allocating call; everything
  /// after runs on the preallocated slots.
  void arm(const FlightRecorderConfig& config) {
    CVSAFE_EXPECTS(config.ring_capacity > 0,
                   "flight recorder ring capacity must be positive");
    config_ = config;
    events_.assign(config.ring_capacity, RingEvent{});
    armed_ = kCompiledIn;
    reset();
  }

  bool armed() const { return armed_; }
  const FlightRecorderConfig& config() const { return config_; }

  /// Clears the ring and the per-episode trigger state. Called at lane
  /// admission so one ring serves many episodes.
  void reset() {
    head_ = 0;
    count_ = 0;
    overwritten_ = 0;
    step_ = 0;
    rejections_ = 0;
    saw_emergency_ = false;
  }

  /// Stamp the control step applied to subsequent events.
  void begin_step(std::uint32_t step) { step_ = step; }

  // --- emit points (guard with ring_recording(ring) at the call site) ---

  void message_accept(std::uint16_t sender, double stamp) {
    push(RingEventKind::kMessageAccept, 0, sender, stamp);
  }
  void message_reject(std::uint16_t sender, GateRejectReason reason,
                      double stamp) {
    ++rejections_;
    push(RingEventKind::kMessageReject, static_cast<std::uint8_t>(reason),
         sender, stamp);
  }
  void gate_verdict(bool emergency, double slack) {
    if (emergency) saw_emergency_ = true;
    push(RingEventKind::kGateVerdict, emergency ? 1 : 0, 0, slack);
  }
  void ladder_transition(std::uint8_t from, std::uint8_t to, double t) {
    push(RingEventKind::kLadderTransition, to, from, t);
  }
  void eta_sample(double slack) { push(RingEventKind::kEtaSample, 0, 0, slack); }
  /// code 0 = clamped up to a_min, 1 = clamped down to a_max.
  void plan_clamp(double requested, double limit) {
    push(RingEventKind::kPlanClamp, requested < limit ? 0 : 1, 0, requested);
  }

  // --- trigger evaluation (retire time) ---

  /// Bitmask of RingTrigger reasons given the episode outcome. Evaluated
  /// from per-episode state only (ring-tracked flags + the finished
  /// record), so the verdict is independent of scheduling.
  unsigned triggers(double eta, bool collided) const {
    unsigned mask = 0;
    if (eta < config_.eta_threshold) mask |= kTriggerEta;
    if (config_.on_emergency && saw_emergency_) mask |= kTriggerEmergency;
    if (config_.on_unsafe && collided) mask |= kTriggerUnsafe;
    if (config_.rejection_burst > 0 && rejections_ >= config_.rejection_burst) {
      mask |= kTriggerRejectionBurst;
    }
    return mask;
  }

  /// Gate rejections recorded since the last reset.
  std::size_t rejections() const { return rejections_; }
  bool saw_emergency() const { return saw_emergency_; }

  // --- snapshot (dump time; allocation allowed here) ---

  std::size_t size() const { return count_; }
  std::size_t capacity() const { return events_.size(); }
  /// Events evicted because the ring wrapped.
  std::size_t overwritten() const { return overwritten_; }

  /// The i-th retained event in causal order (0 = oldest retained).
  const RingEvent& event(std::size_t i) const {
    CVSAFE_EXPECTS(i < count_, "ring event index out of range");
    const std::size_t capacity = events_.size();
    const std::size_t oldest = (head_ + capacity - count_) % capacity;
    return events_[(oldest + i) % capacity];
  }

  /// Copies the retained events in causal order.
  std::vector<RingEvent> snapshot() const {
    std::vector<RingEvent> out;
    out.reserve(count_);
    for (std::size_t i = 0; i < count_; ++i) out.push_back(event(i));
    return out;
  }

 private:
  void push(RingEventKind kind, std::uint8_t code, std::uint16_t aux,
            double value) {
#if CVSAFE_TRACE_LEVEL > 0
    RingEvent& slot = events_[head_];
    slot.step = step_;
    slot.kind = static_cast<std::uint8_t>(kind);
    slot.code = code;
    slot.aux = aux;
    slot.value = value;
    head_ = head_ + 1 == events_.size() ? 0 : head_ + 1;
    if (count_ < events_.size()) {
      ++count_;
    } else {
      ++overwritten_;
    }
#else
    (void)kind, (void)code, (void)aux, (void)value;
#endif
  }

  FlightRecorderConfig config_{};
  std::vector<RingEvent> events_;
  bool armed_ = false;
  std::size_t head_ = 0;
  std::size_t count_ = 0;
  std::size_t overwritten_ = 0;
  std::uint32_t step_ = 0;
  std::size_t rejections_ = 0;
  bool saw_emergency_ = false;
};

/// Call-site guard mirroring obs::recording(): true when \p ring is
/// attached and armed. Emit arguments (slack, level names) are not free
/// to build, so sites test this before constructing them.
inline bool ring_recording(const RingRecorder* ring) {
  return RingRecorder::kCompiledIn && ring != nullptr && ring->armed();
}

/// One triggered episode's dumped trace: header metadata plus the ring
/// snapshot in causal order.
struct FlightDump {
  std::size_t episode = 0;    ///< episode index (the determinism key)
  std::uint64_t seed = 0;     ///< episode seed
  unsigned triggers = 0;      ///< RingTrigger bitmask (nonzero)
  double eta = 0.0;           ///< final evaluation value
  bool collided = false;
  std::size_t rejections = 0;  ///< gate rejections over the episode
  std::size_t overwritten = 0; ///< events evicted by ring wraparound
  std::vector<RingEvent> events;
};

/// Thread-safe sink the pool's retire path hands triggered dumps to.
/// Collection order is scheduling-dependent; serialization sorts by
/// episode index, which restores byte-identity.
class FlightDumpCollector {
 public:
  void add(FlightDump dump) {
    const std::lock_guard<std::mutex> lock(mutex_);
    dumps_.push_back(std::move(dump));
  }

  std::size_t size() const {
    const std::lock_guard<std::mutex> lock(mutex_);
    return dumps_.size();
  }

  /// Moves the collected dumps out, sorted by episode index.
  std::vector<FlightDump> take_sorted();

 private:
  mutable std::mutex mutex_;
  std::vector<FlightDump> dumps_;
};

/// Serializes one dump: a header line ("flight" object) followed by one
/// line per event, fixed key order, doubles in %.17g — byte-identical
/// for identical dumps.
void write_flight_dump_jsonl(std::ostream& os, const FlightDump& dump,
                             const std::string& scenario = std::string(),
                             const std::string& fault = std::string());

/// Serializes every dump in episode-index order (sorts a copy of the
/// collector's take). Returns the number of dumps written.
std::size_t write_flight_dumps_jsonl(std::ostream& os,
                                     std::vector<FlightDump> dumps,
                                     const std::string& scenario = std::string(),
                                     const std::string& fault = std::string());

}  // namespace cvsafe::obs
