#pragma once

#include <cstddef>
#include <string>
#include <utility>
#include <vector>

#include "cvsafe/obs/event.hpp"

/// \file recorder.hpp
/// The event sink instrumentation points write to.
///
/// Components hold a `Recorder*` that defaults to nullptr; every emit
/// call is guarded by a single predictable branch so an unattached or
/// disabled recorder costs one pointer/flag test. Defining
/// `CVSAFE_TRACE_LEVEL=0` compiles the emit bodies out entirely.
///
/// A Recorder buffers events in memory and is written out *after* the
/// episode finishes (see sim/trace.hpp), which is what makes trace
/// output deterministic across thread counts: each episode owns one
/// recorder, and serialization happens in seed order on one thread.
/// A Recorder is single-threaded by design — never share one across
/// concurrently running episodes.

#ifndef CVSAFE_TRACE_LEVEL
#define CVSAFE_TRACE_LEVEL 1
#endif

namespace cvsafe::obs {

class Recorder {
 public:
  /// Whether emit bodies exist at all in this build.
  static constexpr bool kCompiledIn = CVSAFE_TRACE_LEVEL > 0;

  /// Hard cap on buffered events per episode. Overflow is *counted*
  /// (never silent): dropped() is serialized as its own trace line.
  static constexpr std::size_t kMaxEvents = 1u << 20;

  Recorder() = default;

  bool enabled() const { return enabled_; }

  /// Enabling is a no-op when tracing is compiled out.
  void set_enabled(bool on) { enabled_ = on && kCompiledIn; }

  /// Stamp the (step, t) context applied to subsequent events. Called
  /// by the engine hook at the top of each observe phase.
  void begin_step(std::size_t step, double t) {
    step_ = step;
    t_ = t;
  }

  void monitor(bool to_emergency, bool in_boundary, double slack,
               std::string reason) {
#if CVSAFE_TRACE_LEVEL > 0
    if (!enabled_) return;
    push(MonitorEvent{to_emergency, in_boundary, slack, std::move(reason)});
#else
    (void)to_emergency;
    (void)in_boundary;
    (void)slack;
    (void)reason;
#endif
  }

  void ladder(std::string from, std::string to) {
#if CVSAFE_TRACE_LEVEL > 0
    if (!enabled_) return;
    push(LadderEvent{std::move(from), std::move(to)});
#else
    (void)from;
    (void)to;
#endif
  }

  void gate_rejection(std::uint32_t sender, GateRejectReason reason,
                      double msg_t) {
#if CVSAFE_TRACE_LEVEL > 0
    if (!enabled_) return;
    push(GateEvent{sender, reason, msg_t});
#else
    (void)sender;
    (void)reason;
    (void)msg_t;
#endif
  }

  void rollback(double anchor_t, std::size_t replayed) {
#if CVSAFE_TRACE_LEVEL > 0
    if (!enabled_) return;
    push(RollbackEvent{anchor_t, replayed});
#else
    (void)anchor_t;
    (void)replayed;
#endif
  }

  void fault(FaultKind kind, double value) {
#if CVSAFE_TRACE_LEVEL > 0
    if (!enabled_) return;
    push(FaultEvent{kind, value});
#else
    (void)kind;
    (void)value;
#endif
  }

  void step_summary(double accel, bool emergency, double margin,
                    int ladder_level) {
#if CVSAFE_TRACE_LEVEL > 0
    if (!enabled_) return;
    push(StepEvent{accel, emergency, margin, ladder_level});
#else
    (void)accel;
    (void)emergency;
    (void)margin;
    (void)ladder_level;
#endif
  }

  void episode_end(bool collided, bool reached, double eta,
                   std::size_t steps) {
#if CVSAFE_TRACE_LEVEL > 0
    if (!enabled_) return;
    push(EpisodeEvent{collided, reached, eta, steps});
#else
    (void)collided;
    (void)reached;
    (void)eta;
    (void)steps;
#endif
  }

  const std::vector<Event>& events() const { return events_; }

  /// Events rejected because the kMaxEvents cap was hit.
  std::size_t dropped() const { return dropped_; }

  void clear() {
    events_.clear();
    dropped_ = 0;
  }

 private:
  void push(EventPayload payload) {
    if (events_.size() >= kMaxEvents) {
      ++dropped_;
      return;
    }
    events_.push_back(Event{step_, t_, std::move(payload)});
  }

  bool enabled_ = false;
  std::size_t step_ = 0;
  double t_ = 0.0;
  std::vector<Event> events_;
  std::size_t dropped_ = 0;
};

/// Call-site guard for instrumentation points: true when \p recorder is
/// attached and actively recording. Emit arguments are often not free to
/// build (level names, boundary slack), so sites test this *before*
/// constructing them — that is what keeps the disabled path within the
/// perf gate's 5% budget.
inline bool recording(const Recorder* recorder) {
  return Recorder::kCompiledIn && recorder != nullptr &&
         recorder->enabled();
}

}  // namespace cvsafe::obs
