#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "cvsafe/obs/event.hpp"

/// \file jsonl.hpp
/// Deterministic JSONL serialization of trace events.
///
/// One JSON object per line, fixed key order, doubles printed with
/// %.17g (round-trip exact) — the same discipline as the fault-campaign
/// CSV, so a trace file is byte-identical across runs and thread counts
/// as long as events are serialized in seed order (sim/trace.hpp does).

namespace cvsafe::obs {

/// Identifies which episode a block of trace lines belongs to. The
/// scenario/fault labels are optional; empty strings are omitted from
/// the output.
struct EpisodeLabel {
  std::size_t episode = 0;
  std::uint64_t seed = 0;
  std::string scenario;
  std::string fault;
};

/// Append \p v formatted with %.17g (shortest round-trip form).
void append_json_double(std::string& out, double v);

/// Append \p s as a quoted JSON string, escaping as needed.
void append_json_string(std::string& out, std::string_view s);

/// Serialize one event as a single JSON line (no trailing newline).
std::string event_jsonl_line(const Event& event, const EpisodeLabel& label);

/// Write all \p events for one episode, one line each, followed by a
/// "trace_dropped" line when \p dropped is nonzero — overflow is never
/// silent.
void write_events_jsonl(std::ostream& os, const std::vector<Event>& events,
                        const EpisodeLabel& label, std::size_t dropped = 0);

}  // namespace cvsafe::obs
