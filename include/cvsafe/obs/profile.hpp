#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

/// \file profile.hpp
/// RAII profiling spans for the hot paths (NN plan/batch, filter
/// update, reachability, boundary grid), exported as Chrome trace-event
/// JSON loadable in Perfetto / chrome://tracing.
///
/// The profiler is process-global and off by default: a disabled span
/// costs one relaxed atomic load. Span names must be string literals
/// (the profiler stores the pointer, not a copy). Recording is
/// mutex-guarded and bounded; overflow is counted, never silent.

namespace cvsafe::obs {

struct SpanRecord {
  const char* name = nullptr;
  std::uint64_t start_ns = 0;  ///< steady-clock time since process start
  std::uint64_t dur_ns = 0;
  std::uint32_t tid = 0;  ///< dense per-thread id (first use order)
};

class Profiler {
 public:
  static constexpr std::size_t kMaxSpans = 1u << 20;

  static Profiler& instance();

  bool enabled() const { return enabled_.load(std::memory_order_relaxed); }
  void set_enabled(bool on) {
    enabled_.store(on, std::memory_order_relaxed);
  }

  void record(const char* name, std::uint64_t start_ns, std::uint64_t dur_ns);

  std::vector<SpanRecord> spans() const;
  std::size_t dropped() const;
  void clear();

  /// Chrome trace-event JSON ("X" complete events, microsecond
  /// timestamps), sorted by (start, tid, name) so output does not
  /// depend on recording interleaving.
  std::string chrome_trace_json() const;

  static std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

 private:
  Profiler() = default;

  std::atomic<bool> enabled_{false};
  mutable std::mutex mu_;
  std::vector<SpanRecord> spans_;
  std::size_t dropped_ = 0;
};

/// Times the enclosing scope when the profiler is enabled; a disabled
/// span is one relaxed load and two untaken branches.
class ScopedSpan {
 public:
  explicit ScopedSpan(const char* name) {
    if (Profiler::instance().enabled()) {
      name_ = name;
      start_ = Profiler::now_ns();
    }
  }
  ~ScopedSpan() {
    if (name_ != nullptr) {
      Profiler::instance().record(name_, start_,
                                  Profiler::now_ns() - start_);
    }
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  const char* name_ = nullptr;
  std::uint64_t start_ = 0;
};

}  // namespace cvsafe::obs

#ifndef CVSAFE_TRACE_LEVEL
#define CVSAFE_TRACE_LEVEL 1
#endif

#if CVSAFE_TRACE_LEVEL > 0
#define CVSAFE_PROFILE_CONCAT2(a, b) a##b
#define CVSAFE_PROFILE_CONCAT(a, b) CVSAFE_PROFILE_CONCAT2(a, b)
#define CVSAFE_PROFILE_SPAN(name)                \
  ::cvsafe::obs::ScopedSpan CVSAFE_PROFILE_CONCAT(cvsafe_profile_span_, \
                                                  __LINE__)(name)
#else
#define CVSAFE_PROFILE_SPAN(name) static_cast<void>(0)
#endif
