#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

/// \file metrics.hpp
/// A small metrics registry: counters, gauges and fixed-bucket
/// histograms keyed by name (labels are encoded Prometheus-style in the
/// name itself, e.g. `cvsafe_ladder_steps_total{level="full"}`).
///
/// Registries are built per shard and merged deterministically: the
/// backing store is a std::map, so iteration — and therefore
/// prometheus_text()/csv() output — is name-ordered regardless of
/// insertion order or thread count. Counters and histogram buckets add
/// under merge; gauges take the last-written value.

namespace cvsafe::obs {

class Counter {
 public:
  void inc(std::uint64_t n = 1) { value_ += n; }
  std::uint64_t value() const { return value_; }

 private:
  std::uint64_t value_ = 0;
};

class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0.0;
};

/// Fixed upper-bound buckets (cumulative, Prometheus `le` semantics)
/// plus a +Inf overflow bucket, with sum and count.
class Histogram {
 public:
  Histogram() = default;
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// Per-bucket (non-cumulative) counts: counts()[i] is the number of
  /// observations that landed in (bounds()[i-1], bounds()[i]];
  /// counts().back() is the +Inf overflow bucket. The cumulative `le`
  /// view is computed at export time (prometheus_text / csv).
  const std::vector<std::uint64_t>& counts() const { return counts_; }
  std::uint64_t count() const { return count_; }
  double sum() const { return sum_; }

  /// Bucket-wise add; bounds must match (contract).
  void merge(const Histogram& other);

 private:
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t count_ = 0;
  double sum_ = 0.0;
};

class MetricsRegistry {
 public:
  /// Find-or-create accessors. Returned references stay valid for the
  /// registry's lifetime (map nodes are stable).
  Counter& counter(const std::string& name);
  Gauge& gauge(const std::string& name);
  /// \p bounds is used on first creation; refetching an existing
  /// histogram with *different* bounds is a contract violation (the
  /// same invariant merge() enforces), never a silent keep-the-first.
  Histogram& histogram(const std::string& name, std::vector<double> bounds);

  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }

  /// Deterministic merge: counters/histograms add, gauges overwrite.
  void merge(const MetricsRegistry& other);

  /// Prometheus text exposition format, name-ordered.
  std::string prometheus_text() const;

  /// `kind,name,value` CSV (histograms expand to one row per bucket),
  /// name-ordered.
  std::string csv() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace cvsafe::obs
