#pragma once

#include "cvsafe/nn/matrix.hpp"

/// \file loss.hpp
/// Regression losses for planner imitation training.

namespace cvsafe::nn {

/// Mean squared error over all entries: L = mean((pred - target)^2).
double mse_loss(const Matrix& pred, const Matrix& target);

/// Gradient of mse_loss with respect to pred: 2 (pred - target) / n.
Matrix mse_gradient(const Matrix& pred, const Matrix& target);

/// Huber loss (quadratic within +-delta, linear outside); robust to the
/// occasional extreme expert label.
double huber_loss(const Matrix& pred, const Matrix& target, double delta);

/// Gradient of huber_loss with respect to pred.
Matrix huber_gradient(const Matrix& pred, const Matrix& target, double delta);

}  // namespace cvsafe::nn
