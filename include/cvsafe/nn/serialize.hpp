#pragma once

#include <iosfwd>
#include <string>

#include "cvsafe/nn/mlp.hpp"

/// \file serialize.hpp
/// Plain-text (de)serialization of trained networks, so planners trained by
/// examples/train_planner can be shipped and reloaded bit-exactly.

namespace cvsafe::nn {

/// Writes the network (architecture + parameters) to a stream.
/// Format: "cvsafe-mlp 1" header, layer count, then per layer:
/// in out activation, weight rows, bias row. Full hex doubles, lossless.
void save_mlp(const Mlp& net, std::ostream& os);

/// Convenience: saves to a file. Returns false on I/O failure.
bool save_mlp_file(const Mlp& net, const std::string& path);

/// Reads a network previously written by save_mlp.
/// Throws std::runtime_error on malformed input.
Mlp load_mlp(std::istream& is);

/// Convenience: loads from a file. Throws on I/O or parse failure.
Mlp load_mlp_file(const std::string& path);

}  // namespace cvsafe::nn
