#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "cvsafe/nn/mlp.hpp"
#include "cvsafe/util/interval.hpp"

/// \file interval_mlp.hpp
/// Interval (inclusion-function) forward pass through an Mlp.
///
/// Given an axis-aligned box of inputs, the pass propagates one interval
/// per neuron through every layer using the outward-rounded ops of
/// util/rounded_interval.hpp, producing an interval per output that is a
/// *sound enclosure* of
///
///   (a) the real-arithmetic network image of the box, and
///   (b) every concrete floating-point `forward_into`/`predict_scalar`
///       evaluation of this binary at any point of the box
///
/// — (b) because the interval affine kernel accumulates over the input
/// index in the same ascending order as the concrete kernels, so the
/// directed partial sums bracket the round-to-nearest (or fused) partial
/// sums step by step, and the activation enclosures carry a validated
/// error margin over both `tanh` and `fast_tanh` (nn_interval_mlp_test.cpp
/// pins the margin with dense sweeps).
///
/// Supported activations: identity, ReLU (exact inclusion functions) and
/// tanh (fast_tanh-based enclosure). Sigmoid has no validated inclusion
/// function here and is rejected by contract.
///
/// The pass mirrors the zero-alloc Workspace shape of mlp.hpp: an
/// IntervalWorkspace owns two ping-pong interval buffers that grow to the
/// widest layer once and are reused across calls (the branch-and-bound
/// certifier evaluates millions of boxes).

namespace cvsafe::nn {

/// Reusable per-thread storage for interval_forward. NOT thread-safe:
/// give each verifier worker its own.
class IntervalWorkspace {
 public:
  IntervalWorkspace() = default;

  /// Ping-pong buffer for layer \p i's output enclosure, resized to
  /// \p width (capacity retained across calls).
  std::vector<util::Interval>& layer_out(std::size_t i, std::size_t width) {
    auto& buf = bufs_[i % 2];
    buf.resize(width);
    return buf;
  }

  /// Pre-sizes both buffers so even the first pass is allocation-free.
  void reserve(std::size_t max_width) {
    bufs_[0].reserve(max_width);
    bufs_[1].reserve(max_width);
  }

 private:
  std::vector<util::Interval> bufs_[2];
};

/// Absolute error margin of the tanh enclosure: 2^-48. The validated
/// budget is |fast_tanh - tanh| <= 4 ulp (nn_fast_math_test.cpp), twice
/// (once per endpoint) at magnitude <= 1 where one ulp is <= 2^-52 —
/// i.e. a worst case of 8 * 2^-52 = 2^-49; the margin doubles it.
inline constexpr double kTanhEnclosureMargin = 3.552713678800501e-15;

/// Sound enclosure of { tanh(x) : x in [z] } and of every fast_tanh
/// floating-point evaluation on [z]: the fast_tanh endpoint values,
/// widened outward by kTanhEnclosureMargin and clamped to [-1, 1].
util::Interval fast_tanh_enclosure(const util::Interval& z);

/// Inclusion function of one activation (identity/relu exact, tanh via
/// fast_tanh_enclosure; sigmoid rejected by contract).
util::Interval activation_enclosure(Activation act, const util::Interval& z);

/// Enclosure of one dense layer: per output j, the directed-rounding dot
/// product over \p in (ascending input index, matching the concrete
/// kernels) plus bias, through the activation enclosure.
/// \p in/\p out sizes must match the layer dimensions.
void interval_affine(const DenseLayer& layer,
                     std::span<const util::Interval> in,
                     std::span<util::Interval> out);

/// Full interval forward pass; returns the output-layer enclosure (one
/// interval per output neuron), valid until the workspace is next used.
/// \p x.size() must equal net.input_dim().
std::span<const util::Interval> interval_forward(const Mlp& net,
                                                 std::span<const util::Interval> x,
                                                 IntervalWorkspace& ws);

/// Single-output convenience (the planner-network shape).
util::Interval interval_predict_scalar(const Mlp& net,
                                       std::span<const util::Interval> x,
                                       IntervalWorkspace& ws);

}  // namespace cvsafe::nn
