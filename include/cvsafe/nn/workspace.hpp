#pragma once

#include <cstddef>

#include "cvsafe/nn/matrix.hpp"

/// \file workspace.hpp
/// Reusable activation storage for zero-allocation MLP inference.
///
/// The compound planner queries kappa_n every control step; with the plain
/// Mlp::infer path each query heap-allocates one matrix per layer plus the
/// input staging vector. A Workspace owns two ping-pong activation buffers
/// and an input staging matrix; Mlp::forward_into threads every layer's
/// output through them, so after the first (warm-up) call an inference of
/// the same or smaller batch size performs no heap allocation at all.
///
/// A Workspace is NOT thread-safe: give each thread (each simulation
/// episode / each planner instance) its own. Buffers grow monotonically to
/// the largest batch seen and are never shrunk.

namespace cvsafe::nn {

class Workspace {
 public:
  Workspace() = default;

  /// Ping-pong buffer for layer \p i's output (layers alternate between
  /// the two underlying matrices, so the input of layer i — buffer i-1 —
  /// is never overwritten while layer i writes).
  Matrix& layer_out(std::size_t i) { return bufs_[i % 2]; }

  /// Staging matrix for encoding raw samples into a batch (rows x dim).
  /// Resized in place; capacity is retained across calls.
  Matrix& input(std::size_t rows, std::size_t dim) {
    input_.resize(rows, dim);
    return input_;
  }

  /// Pre-sizes every buffer for a net with the given maximum layer width
  /// and batch size, so even the first forward_into call is allocation-free.
  void reserve(std::size_t max_rows, std::size_t max_width) {
    bufs_[0].resize(max_rows, max_width);
    bufs_[1].resize(max_rows, max_width);
    input_.resize(max_rows, max_width);
  }

 private:
  Matrix bufs_[2];
  Matrix input_;
};

}  // namespace cvsafe::nn
