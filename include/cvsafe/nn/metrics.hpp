#pragma once

#include "cvsafe/nn/matrix.hpp"

/// \file metrics.hpp
/// Regression quality metrics for trained planners.

namespace cvsafe::nn {

/// Mean absolute error over all entries.
double mean_absolute_error(const Matrix& pred, const Matrix& target);

/// Coefficient of determination R^2 = 1 - SS_res / SS_tot (1 = perfect;
/// can be negative for models worse than predicting the mean). Computed
/// over all entries jointly.
double r_squared(const Matrix& pred, const Matrix& target);

/// Largest absolute entry-wise error.
double max_absolute_error(const Matrix& pred, const Matrix& target);

}  // namespace cvsafe::nn
