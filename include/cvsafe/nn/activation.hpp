#pragma once

#include <string>

#include "cvsafe/nn/matrix.hpp"

/// \file activation.hpp
/// Elementwise activation functions and their derivatives.

namespace cvsafe::nn {

/// Supported activations.
enum class Activation {
  kIdentity,  ///< f(z) = z (output layers of regressors)
  kRelu,      ///< f(z) = max(0, z)
  kTanh,      ///< f(z) = tanh(z)
  kSigmoid,   ///< f(z) = 1 / (1 + e^-z)
};

/// Applies the activation elementwise.
Matrix apply_activation(Activation act, const Matrix& z);

/// Applies the activation elementwise in place (no allocation).
void apply_activation_inplace(Activation act, Matrix& z);

/// Fused z += bias (row broadcast) followed by the activation, in one pass
/// over \p z. Elementwise result is f(z + b) exactly as the two-step
/// sequence computes it, so this is bit-identical to
/// add_row_broadcast + apply_activation_inplace. \p bias must be 1 x cols.
void bias_activation_inplace(Activation act, const Matrix& bias, Matrix& z);

/// Derivative f'(z) elementwise (as a function of the pre-activation z).
Matrix activation_derivative(Activation act, const Matrix& z);

/// Name for serialization ("identity", "relu", "tanh", "sigmoid").
std::string activation_name(Activation act);

/// Inverse of activation_name; throws std::invalid_argument on unknown.
Activation activation_from_name(const std::string& name);

}  // namespace cvsafe::nn
