#pragma once

#include "cvsafe/nn/mlp.hpp"

/// \file gradcheck.hpp
/// Numerical gradient verification used by the test suite to certify the
/// backpropagation implementation (DESIGN.md invariant 6).

namespace cvsafe::nn {

/// Result of a gradient check.
struct GradCheckResult {
  double max_rel_error = 0.0;  ///< worst relative error across parameters
  bool passed = false;         ///< max_rel_error <= tolerance
};

/// Compares analytic gradients (backprop) against central finite
/// differences of the MSE loss on the given batch.
/// \param epsilon    finite-difference step
/// \param tolerance  maximum allowed relative error
GradCheckResult check_gradients(Mlp& net, const Matrix& inputs,
                                const Matrix& targets, double epsilon = 1e-6,
                                double tolerance = 1e-5);

}  // namespace cvsafe::nn
