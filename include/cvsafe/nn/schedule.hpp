#pragma once

#include <cstddef>
#include <functional>

/// \file schedule.hpp
/// Learning-rate schedules for the training loop (epoch -> rate).

namespace cvsafe::nn::schedules {

/// A schedule maps the epoch index to a learning rate.
using Schedule = std::function<double(std::size_t)>;

/// Constant rate.
Schedule constant(double lr);

/// Multiplies by \p factor every \p every epochs.
Schedule step_decay(double initial, double factor, std::size_t every);

/// Cosine annealing from \p initial down to \p floor over
/// \p total_epochs, then held at the floor.
Schedule cosine(double initial, std::size_t total_epochs,
                double floor = 0.0);

}  // namespace cvsafe::nn::schedules
