#pragma once

#include <bit>
#include <cmath>
#include <cstdint>

/// \file fast_math.hpp
/// Branchless transcendental kernels for the activation hot loops.

namespace cvsafe::nn {

/// Double-precision tanh built for auto-vectorization: no data-dependent
/// branches (selects only), explicit std::fma so the vector body and the
/// scalar remainder of a vectorized loop round identically, and a
/// bit-manipulated 2^k scaling instead of libm calls.
///
/// Accuracy: computed as expm1(2|x|) / (expm1(2|x|) + 2) with a degree-13
/// Taylor kernel on |r| <= ln(2)/2; observed error vs. std::tanh is a few
/// ulp (see nn_fast_math_test.cpp, which sweeps dense and random inputs).
/// Within one binary, every call site evaluates the same arithmetic, so
/// all inference/training paths that share it remain mutually bit-exact.
///
/// Special values follow std::tanh: NaN -> NaN, +/-inf -> +/-1,
/// +/-0 -> +/-0, |x| >= 19.0625 saturates to +/-1 (the double-precision
/// rounding limit).
inline double fast_tanh(double x) noexcept {
  constexpr double kLog2e = 1.44269504088896338700e+00;   // log2(e)
  constexpr double kLn2Hi = 6.93147180369123816490e-01;   // ln2 head, 21 low zeros
  constexpr double kLn2Lo = 1.90821492927058770002e-10;   // ln2 tail
  constexpr double kSat = 19.0625;  // tanh(x) rounds to 1.0 beyond this

  const double ax = std::fabs(x);
  // NaN compares false, so it also lands on the saturated constant here;
  // the final select restores NaN propagation.
  const double y = ax < kSat ? ax : kSat;
  const double z = 2.0 * y;  // [0, 38.125]

  // exp(z) = 2^k * exp(r), r in [-ln2/2, ln2/2]. k*ln2_hi is exact because
  // k < 2^6 and the head has 21 trailing zero bits.
  const double kd = std::nearbyint(z * kLog2e);  // in [0, 56]
  const double hi = std::fma(-kd, kLn2Hi, z);
  const double r = std::fma(-kd, kLn2Lo, hi);

  // expm1(r) = r + r^2 * q(r) with the Taylor tail of exp; the last kept
  // term is r^13/13!, whose successor is below 1 ulp on this range.
  const double r2 = r * r;
  double q = 1.0 / 6227020800.0;  // 1/13!
  q = std::fma(q, r, 1.0 / 479001600.0);
  q = std::fma(q, r, 1.0 / 39916800.0);
  q = std::fma(q, r, 1.0 / 3628800.0);
  q = std::fma(q, r, 1.0 / 362880.0);
  q = std::fma(q, r, 1.0 / 40320.0);
  q = std::fma(q, r, 1.0 / 5040.0);
  q = std::fma(q, r, 1.0 / 720.0);
  q = std::fma(q, r, 1.0 / 120.0);
  q = std::fma(q, r, 1.0 / 24.0);
  q = std::fma(q, r, 1.0 / 6.0);
  q = std::fma(q, r, 0.5);
  const double p = std::fma(r2, q, r);  // expm1(r)

  // expm1(z) = 2^k * expm1(r) + (2^k - 1), assembled in one fma. The
  // shifted-exponent bit trick builds 2^k without ldexp.
  const auto ki = static_cast<std::int64_t>(kd);
  const double two_k = std::bit_cast<double>((ki + 1023) << 52);
  const double em1 = std::fma(two_k, p, two_k - 1.0);

  // tanh(|x|) = expm1(2|x|) / (expm1(2|x|) + 2), then restore the sign.
  const double t = em1 / (em1 + 2.0);
  const double res = std::copysign(t, x);
  return std::isnan(x) ? x : res;
}

}  // namespace cvsafe::nn
