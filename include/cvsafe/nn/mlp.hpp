#pragma once

#include <span>
#include <vector>

#include "cvsafe/nn/layer.hpp"
#include "cvsafe/nn/workspace.hpp"

/// \file mlp.hpp
/// Multi-layer perceptron: the network architecture behind the paper's
/// NN-based planners (5 scalar inputs -> hidden layers -> 1 acceleration).

namespace cvsafe::nn {

/// Architecture description: layer widths and hidden activation.
struct MlpSpec {
  std::vector<std::size_t> layer_sizes;  ///< [in, hidden..., out]
  Activation hidden_activation = Activation::kTanh;
  Activation output_activation = Activation::kIdentity;
};

/// Feed-forward network of dense layers.
class Mlp {
 public:
  /// Random (Glorot) initialization per \p spec.
  Mlp(const MlpSpec& spec, util::Rng& rng);

  /// Assembles from explicit layers (deserialization).
  explicit Mlp(std::vector<DenseLayer> layers);

  std::size_t input_dim() const { return layers_.front().in_dim(); }
  std::size_t output_dim() const { return layers_.back().out_dim(); }
  std::size_t layer_count() const { return layers_.size(); }
  const DenseLayer& layer(std::size_t i) const { return layers_[i]; }
  DenseLayer& mutable_layer(std::size_t i) { return layers_[i]; }

  /// Batch forward pass with caching (training).
  Matrix forward(const Matrix& x);

  /// Batch forward pass without caching (inference).
  Matrix infer(const Matrix& x) const;

  /// Single-sample inference convenience.
  std::vector<double> predict(const std::vector<double>& x) const;

  /// Batch inference into workspace storage: evaluates all rows of \p x
  /// in one matmul per layer. Returns a reference to the workspace buffer
  /// holding the n x output_dim result (valid until the workspace is next
  /// used). Bit-identical to infer(); performs no heap allocation once the
  /// workspace is warm.
  const Matrix& forward_into(const Matrix& x, Workspace& ws) const;

  /// Zero-allocation single-sample inference for 1-output networks
  /// (the planner hot path). \p x.size() must equal input_dim().
  double predict_scalar(std::span<const double> x, Workspace& ws) const;

  /// Backpropagates dL/dy through every layer (after forward()).
  void backward(const Matrix& grad_out);

  /// Total number of trainable parameters.
  std::size_t parameter_count() const;

  /// Rebuilds every layer's inference transpose cache after in-place
  /// weight mutation (optimizer steps). Single-threaded use only.
  void refresh_inference_cache();

 private:
  std::vector<DenseLayer> layers_;
};

}  // namespace cvsafe::nn
