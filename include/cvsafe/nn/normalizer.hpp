#pragma once

#include <iosfwd>
#include <vector>

#include "cvsafe/nn/matrix.hpp"

/// \file normalizer.hpp
/// Per-feature standardization (z-scoring) for training data.
///
/// The planner input encoding uses fixed hand-chosen scales; for general
/// datasets (e.g. training on recorded traces with different units) a
/// fitted standardizer keeps the optimizer well-conditioned.

namespace cvsafe::nn {

/// Column-wise standardizer: x' = (x - mean) / std.
class Standardizer {
 public:
  /// Fits mean and standard deviation per column. Constant columns get
  /// std = 1 so they pass through unscaled.
  static Standardizer fit(const Matrix& data);

  /// Identity standardizer of the given width.
  static Standardizer identity(std::size_t columns);

  std::size_t columns() const { return mean_.size(); }
  const std::vector<double>& mean() const { return mean_; }
  const std::vector<double>& stddev() const { return std_; }

  /// Applies the transform (column count must match).
  Matrix transform(const Matrix& data) const;

  /// Inverts the transform.
  Matrix inverse(const Matrix& data) const;

  /// Transforms a single row vector.
  std::vector<double> transform_row(const std::vector<double>& row) const;

  /// Plain-text round-trippable serialization.
  void save(std::ostream& os) const;
  static Standardizer load(std::istream& is);

 private:
  std::vector<double> mean_;
  std::vector<double> std_;
};

}  // namespace cvsafe::nn
