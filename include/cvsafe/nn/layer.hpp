#pragma once

#include "cvsafe/nn/activation.hpp"
#include "cvsafe/nn/matrix.hpp"

/// \file layer.hpp
/// Fully connected layer with activation and cached backpropagation state.

namespace cvsafe::nn {

/// Dense layer: y = f(x W^T + b), with W of shape (out x in).
class DenseLayer {
 public:
  /// Glorot-initialized layer.
  DenseLayer(std::size_t in_dim, std::size_t out_dim, Activation act,
             util::Rng& rng);

  /// Layer with explicit parameters (deserialization / tests).
  DenseLayer(Matrix weights, Matrix bias, Activation act);

  std::size_t in_dim() const { return weights_.cols(); }
  std::size_t out_dim() const { return weights_.rows(); }
  Activation activation() const { return act_; }

  const Matrix& weights() const { return weights_; }
  const Matrix& bias() const { return bias_; }
  /// Mutable access marks the inference transpose cache stale; call
  /// refresh_inference_cache() after the last mutation to restore the
  /// fast infer_into path (results are identical either way).
  Matrix& mutable_weights() {
    wt_dirty_ = true;
    return weights_;
  }
  Matrix& mutable_bias() { return bias_; }

  /// Rebuilds the cached W^T used by infer_into. Not thread-safe against
  /// concurrent inference; meant for the (single-threaded) end of a
  /// training run.
  void refresh_inference_cache();

  /// Forward pass on a batch (n x in), caching inputs for backward().
  Matrix forward(const Matrix& x);

  /// Forward pass without caching (inference).
  Matrix infer(const Matrix& x) const;

  /// Forward pass writing into caller-provided storage (no allocation once
  /// \p out capacity is warm). Bit-identical to infer(). \p out must not
  /// alias \p x.
  void infer_into(const Matrix& x, Matrix& out) const;

  /// Backward pass: \p grad_out is dL/dy (n x out) from the next layer.
  /// Accumulates dL/dW and dL/db internally and returns dL/dx (n x in).
  /// Must follow a forward() call on the same batch.
  Matrix backward(const Matrix& grad_out);

  /// Gradients accumulated by the last backward() call.
  const Matrix& weight_grad() const { return grad_weights_; }
  const Matrix& bias_grad() const { return grad_bias_; }

 private:
  Matrix weights_;    // out x in
  Matrix weights_t_;  // in x out: inference-layout copy; lets infer_into
                      // run a j-contiguous axpy kernel (vectorizable with
                      // no change in per-element accumulation order)
  bool wt_dirty_ = false;
  Matrix bias_;  // 1 x out
  Activation act_;

  // Cached forward state.
  Matrix input_;  // n x in
  Matrix preact_; // n x out (z before activation)

  Matrix grad_weights_;
  Matrix grad_bias_;
};

}  // namespace cvsafe::nn
