#pragma once

#include "cvsafe/nn/activation.hpp"
#include "cvsafe/nn/matrix.hpp"

/// \file layer.hpp
/// Fully connected layer with activation and cached backpropagation state.

namespace cvsafe::nn {

/// Dense layer: y = f(x W^T + b), with W of shape (out x in).
class DenseLayer {
 public:
  /// Glorot-initialized layer.
  DenseLayer(std::size_t in_dim, std::size_t out_dim, Activation act,
             util::Rng& rng);

  /// Layer with explicit parameters (deserialization / tests).
  DenseLayer(Matrix weights, Matrix bias, Activation act);

  std::size_t in_dim() const { return weights_.cols(); }
  std::size_t out_dim() const { return weights_.rows(); }
  Activation activation() const { return act_; }

  const Matrix& weights() const { return weights_; }
  const Matrix& bias() const { return bias_; }
  Matrix& mutable_weights() { return weights_; }
  Matrix& mutable_bias() { return bias_; }

  /// Forward pass on a batch (n x in), caching inputs for backward().
  Matrix forward(const Matrix& x);

  /// Forward pass without caching (inference).
  Matrix infer(const Matrix& x) const;

  /// Backward pass: \p grad_out is dL/dy (n x out) from the next layer.
  /// Accumulates dL/dW and dL/db internally and returns dL/dx (n x in).
  /// Must follow a forward() call on the same batch.
  Matrix backward(const Matrix& grad_out);

  /// Gradients accumulated by the last backward() call.
  const Matrix& weight_grad() const { return grad_weights_; }
  const Matrix& bias_grad() const { return grad_bias_; }

 private:
  Matrix weights_;  // out x in
  Matrix bias_;     // 1 x out
  Activation act_;

  // Cached forward state.
  Matrix input_;  // n x in
  Matrix preact_; // n x out (z before activation)

  Matrix grad_weights_;
  Matrix grad_bias_;
};

}  // namespace cvsafe::nn
