#pragma once

#include <cstddef>
#include <iosfwd>
#include <vector>

#include "cvsafe/util/rng.hpp"

/// \file matrix.hpp
/// Dense row-major matrix used by the neural-network substrate.
///
/// The NN-based planners of the paper are trained with external tooling;
/// here the training stack is built from scratch so the whole pipeline
/// (data generation -> training -> deployment inside the compound planner)
/// is reproducible in this repository with no dependencies.

namespace cvsafe::nn {

/// Row-major dense matrix of doubles. Rows are samples in batch usage.
class Matrix {
 public:
  Matrix() = default;

  /// rows x cols matrix, zero-initialized.
  Matrix(std::size_t rows, std::size_t cols);

  /// rows x cols matrix filled from \p values (row-major). Size must match.
  Matrix(std::size_t rows, std::size_t cols, std::vector<double> values);

  /// 1 x n row vector.
  static Matrix row_vector(const std::vector<double>& values);

  /// Identity matrix of size n.
  static Matrix identity(std::size_t n);

  /// Glorot/Xavier-uniform initialization: U(-limit, limit) with
  /// limit = sqrt(6 / (fan_in + fan_out)).
  static Matrix glorot(std::size_t rows, std::size_t cols, util::Rng& rng);

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  std::size_t size() const { return data_.size(); }

  /// Reshapes to rows x cols, reusing the existing heap block whenever the
  /// new element count fits in capacity. Contents are unspecified after a
  /// resize (kernels writing "into" a matrix overwrite every element).
  void resize(std::size_t rows, std::size_t cols);

  double& operator()(std::size_t r, std::size_t c) {
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    return data_[r * cols_ + c];
  }

  std::vector<double>& data() { return data_; }
  const std::vector<double>& data() const { return data_; }

  /// Matrix product (this: m x k, other: k x n). Dimensions are asserted.
  Matrix matmul(const Matrix& other) const;

  /// Product with the transpose of \p other (this: m x k, other: n x k).
  Matrix matmul_transposed(const Matrix& other) const;

  /// Transposed-this product (this: k x m, other: k x n -> m x n).
  Matrix transposed_matmul(const Matrix& other) const;

  Matrix transpose() const;

  Matrix operator+(const Matrix& other) const;
  Matrix operator-(const Matrix& other) const;
  Matrix operator*(double s) const;

  /// Adds a 1 x cols row vector to every row (bias broadcast).
  void add_row_broadcast(const Matrix& row);

  /// Column-wise sum producing a 1 x cols matrix.
  Matrix column_sums() const;

  /// Elementwise (Hadamard) product.
  Matrix hadamard(const Matrix& other) const;

  /// Largest absolute entry (0 for empty).
  double max_abs() const;

  friend bool operator==(const Matrix& a, const Matrix& b) = default;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

std::ostream& operator<<(std::ostream& os, const Matrix& m);

/// out = a * b (a: m x k, b: k x n), written into caller-provided storage.
/// \p out is resized to m x n and fully overwritten; once its capacity is
/// warm the call performs no heap allocation. Produces bit-identical
/// results to Matrix::matmul (same per-element accumulation order).
/// \p out must not alias \p a or \p b.
void matmul_into(const Matrix& a, const Matrix& b, Matrix& out);

/// out = a * b^T (a: m x k, b: n x k), same storage contract as
/// matmul_into; bit-identical to Matrix::matmul_transposed.
void matmul_transposed_into(const Matrix& a, const Matrix& b, Matrix& out);

}  // namespace cvsafe::nn
