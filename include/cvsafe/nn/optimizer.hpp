#pragma once

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "cvsafe/nn/matrix.hpp"

/// \file optimizer.hpp
/// First-order optimizers for planner imitation training.
///
/// Optimizers keep per-parameter state (momentum / moment estimates) keyed
/// by an opaque buffer id chosen by the trainer (layer index * 2 + {0,1}).

namespace cvsafe::nn {

/// Interface for parameter updates.
class Optimizer {
 public:
  virtual ~Optimizer() = default;

  /// Applies one update to \p param given \p grad. \p key identifies the
  /// parameter buffer across calls so stateful optimizers can track it.
  virtual void update(std::size_t key, Matrix& param, const Matrix& grad) = 0;

  /// Called once after every full batch step (e.g. Adam's t += 1).
  virtual void end_step() {}

  /// Adjusts the learning rate (used by epoch schedules).
  virtual void set_learning_rate(double lr) = 0;

  /// Current learning rate.
  virtual double learning_rate() const = 0;
};

/// Stochastic gradient descent with classical momentum.
class Sgd final : public Optimizer {
 public:
  explicit Sgd(double learning_rate, double momentum = 0.0)
      : lr_(learning_rate), momentum_(momentum) {}

  void update(std::size_t key, Matrix& param, const Matrix& grad) override;
  void set_learning_rate(double lr) override { lr_ = lr; }
  double learning_rate() const override { return lr_; }

 private:
  double lr_;
  double momentum_;
  std::unordered_map<std::size_t, std::vector<double>> velocity_;
};

/// Adam (Kingma & Ba) with bias correction.
class Adam final : public Optimizer {
 public:
  explicit Adam(double learning_rate, double beta1 = 0.9, double beta2 = 0.999,
                double eps = 1e-8)
      : lr_(learning_rate), beta1_(beta1), beta2_(beta2), eps_(eps) {}

  void update(std::size_t key, Matrix& param, const Matrix& grad) override;
  void end_step() override { ++t_; }
  void set_learning_rate(double lr) override { lr_ = lr; }
  double learning_rate() const override { return lr_; }

 private:
  struct Moments {
    std::vector<double> m;
    std::vector<double> v;
  };
  double lr_, beta1_, beta2_, eps_;
  std::size_t t_ = 1;
  std::unordered_map<std::size_t, Moments> moments_;
};

}  // namespace cvsafe::nn
