#pragma once

#include <functional>
#include <vector>

#include "cvsafe/nn/loss.hpp"
#include "cvsafe/nn/mlp.hpp"
#include "cvsafe/nn/optimizer.hpp"

/// \file trainer.hpp
/// Minibatch supervised training loop.

namespace cvsafe::nn {

/// Supervised dataset: one row per sample.
struct Dataset {
  Matrix inputs;   ///< n x in
  Matrix targets;  ///< n x out

  std::size_t size() const { return inputs.rows(); }

  /// Splits off the last `fraction` of samples as a validation set.
  std::pair<Dataset, Dataset> split(double fraction) const;
};

/// Training hyperparameters.
struct TrainConfig {
  std::size_t epochs = 100;
  std::size_t batch_size = 64;
  double huber_delta = 0.0;  ///< > 0: Huber loss, otherwise MSE

  /// Optional per-epoch callback (epoch index, training loss).
  std::function<void(std::size_t, double)> on_epoch;

  /// Optional learning-rate schedule applied at the start of each epoch
  /// (see schedule.hpp for factories).
  std::function<double(std::size_t)> lr_schedule;

  /// Optional validation set enabling early stopping: training stops
  /// after `patience` epochs without a new best validation loss and the
  /// best-epoch weights are restored. patience = 0 disables stopping but
  /// still records validation losses (and restores the best weights).
  const Dataset* validation = nullptr;
  std::size_t patience = 0;
};

/// Result of a training run.
struct TrainResult {
  std::vector<double> epoch_losses;  ///< mean training loss per epoch
  std::vector<double> val_losses;    ///< per epoch (when validation set)
  double final_loss = 0.0;
  std::size_t best_epoch = 0;        ///< epoch of the best validation loss
  bool stopped_early = false;
};

/// Trains \p net on \p data with \p opt. Batches are reshuffled each epoch
/// using \p rng, so results are deterministic given the seed.
TrainResult train(Mlp& net, const Dataset& data, Optimizer& opt,
                  const TrainConfig& config, util::Rng& rng);

/// Mean loss of \p net on \p data without updating parameters.
double evaluate(const Mlp& net, const Dataset& data, double huber_delta = 0.0);

}  // namespace cvsafe::nn
