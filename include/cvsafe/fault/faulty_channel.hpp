#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "cvsafe/comm/channel.hpp"
#include "cvsafe/fault/fault_plan.hpp"
#include "cvsafe/obs/recorder.hpp"
#include "cvsafe/util/rng.hpp"

/// \file faulty_channel.hpp
/// Fault-injecting decorator over comm::Channel.
///
/// The inner channel's transmission schedule and loss model run FIRST and
/// unchanged, drawing from the episode RNG exactly as an undecorated
/// channel would (Channel::admit). Only then does the decorator reshape
/// admitted messages — blackout discard, payload corruption, timestamp
/// spoofing, delivery-time jitter, reordering, duplication — drawing
/// exclusively from its own seeded fault RNG. Consequences:
///
///  * a decorator without an active fault model is bit-identical to the
///    plain channel (the no-fault path of every existing experiment);
///  * enabling faults never perturbs the episode's workload or the other
///    actors' draws, so fault campaigns run on PAIRED workloads.
///
/// Fault draw order per admitted message (fixed; campaigns depend on it):
/// corrupt? (3 perturbation draws when it fires), spoof? (1 draw),
/// jitter draw, reorder? (1 extra-delay draw), duplicate? (1 lag draw) —
/// each stage only consulted when its model parameter enables it.

namespace cvsafe::fault {

/// Injection counters of one decorated channel (per episode).
struct ChannelFaultStats {
  std::size_t jittered = 0;
  std::size_t reordered = 0;
  std::size_t duplicated = 0;
  std::size_t corrupted = 0;
  std::size_t stale_spoofed = 0;
  std::size_t blackout_dropped = 0;

  std::size_t total_injected() const {
    return jittered + reordered + duplicated + corrupted + stale_spoofed +
           blackout_dropped;
  }
};

/// comm::Channel decorated with a ChannelFaultModel.
class FaultyChannel {
 public:
  /// Pass-through decorator (no faults; bit-identical to Channel).
  explicit FaultyChannel(comm::CommConfig config) : inner_(config) {}

  /// Decorator injecting \p model, drawing from a dedicated RNG seeded
  /// with \p fault_seed. A model with no enabled fault degenerates to
  /// the pass-through decorator.
  FaultyChannel(comm::CommConfig config, const ChannelFaultModel& model,
                std::uint64_t fault_seed)
      : inner_(config), fault_rng_(fault_seed) {
    if (model.any()) model_ = model;
  }

  /// Same contract as Channel::offer; episode RNG draws are identical to
  /// the undecorated channel's. Without an active model this IS the plain
  /// Channel::offer behind one predictable branch, keeping the no-fault
  /// decoration overhead within the CI bench gate.
  void offer(const comm::Message& msg, util::Rng& rng) {
    if (!model_) {
      inner_.offer(msg, rng);
      return;
    }
    offer_faulty(msg, rng);
  }

  /// Same contract as Channel::collect.
  std::vector<comm::Message> collect(double t) { return inner_.collect(t); }

  /// Same contract as Channel::collect_into (allocation-free once the
  /// caller's buffer capacity has warmed up).
  void collect_into(double t, std::vector<comm::Message>& out) {
    inner_.collect_into(t, out);
  }

  /// Same contract as Channel::collect_into_slab (the fleet batch pump;
  /// fault reshaping happens at offer time, so collection is always a
  /// pass-through).
  void collect_into_slab(double t, comm::MessageSlab& slab) {
    inner_.collect_into_slab(t, slab);
  }

  const comm::CommConfig& config() const { return inner_.config(); }
  std::size_t in_flight() const { return inner_.in_flight(); }
  std::size_t sent_count() const { return inner_.sent_count(); }
  std::size_t dropped_count() const { return inner_.dropped_count(); }

  /// True when a fault model is active.
  bool faulty() const { return model_.has_value(); }

  const comm::Channel& inner() const { return inner_; }
  const ChannelFaultStats& stats() const { return stats_; }

  /// Attach a trace sink; every injection stage that fires is emitted as
  /// a fault event. Pass nullptr to detach. Tracing never touches the
  /// no-fault fast path.
  void set_recorder(obs::Recorder* recorder) { recorder_ = recorder; }

 private:
  /// The decorated slow path (model_ engaged): admit, then reshape.
  void offer_faulty(const comm::Message& msg, util::Rng& rng);

  comm::Channel inner_;
  std::optional<ChannelFaultModel> model_;
  util::Rng fault_rng_{0};
  ChannelFaultStats stats_;
  obs::Recorder* recorder_ = nullptr;
};

}  // namespace cvsafe::fault
