#pragma once

#include <cstdint>
#include <optional>

#include "cvsafe/fault/fault_plan.hpp"
#include "cvsafe/obs/recorder.hpp"
#include "cvsafe/sensing/sensor.hpp"
#include "cvsafe/util/rng.hpp"

/// \file faulty_sensor.hpp
/// Fault-injecting decorator over sensing::Sensor, mirroring
/// faulty_channel.hpp: the inner sensor's schedule and noise model run
/// first with the episode RNG, then the decorator applies its fault
/// model (dropout, stuck-at, bias drift) from its own seeded RNG.
///
/// Fault order per emitted reading (fixed): dropout? (1 draw), stuck-at
/// window (no draw; repeats the last emitted values with the current
/// timestamp, preserving downstream time-order contracts), bias drift
/// (no draw).

namespace cvsafe::fault {

/// Injection counters of one decorated sensor (per episode).
struct SensorFaultStats {
  std::size_t dropped = 0;
  std::size_t stuck = 0;
  std::size_t biased = 0;

  std::size_t total_injected() const { return dropped + stuck + biased; }
};

/// sensing::Sensor decorated with a SensorFaultModel.
class FaultySensor {
 public:
  /// Pass-through decorator (no faults; bit-identical to Sensor).
  explicit FaultySensor(sensing::SensorConfig config) : inner_(config) {}

  FaultySensor(sensing::SensorConfig config, const SensorFaultModel& model,
               std::uint64_t fault_seed)
      : inner_(config), fault_rng_(fault_seed) {
    if (model.any()) model_ = model;
  }

  /// Same contract as Sensor::sense; episode RNG draws are identical to
  /// the undecorated sensor's.
  std::optional<sensing::SensorReading> sense(
      const vehicle::VehicleSnapshot& truth, util::Rng& rng);

  const sensing::SensorConfig& config() const { return inner_.config(); }

  bool faulty() const { return model_.has_value(); }

  const sensing::Sensor& inner() const { return inner_; }
  const SensorFaultStats& stats() const { return stats_; }

  /// Attach a trace sink; every injection stage that fires is emitted as
  /// a fault event. Pass nullptr to detach.
  void set_recorder(obs::Recorder* recorder) { recorder_ = recorder; }

 private:
  sensing::Sensor inner_;
  std::optional<SensorFaultModel> model_;
  util::Rng fault_rng_{0};
  SensorFaultStats stats_;
  std::optional<sensing::SensorReading> last_;
  obs::Recorder* recorder_ = nullptr;
};

}  // namespace cvsafe::fault
