#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

/// \file fault_plan.hpp
/// Deterministic fault-injection plans: WHAT to inject (scripted windows
/// and stochastic fault models for the V2V channel and the onboard
/// sensor) and from WHICH random stream.
///
/// The paper's disturbance model (channel.hpp) covers fixed delay, i.i.d.
/// loss, total loss and bursty loss — all benign in the sense that the
/// delivered payloads are exact and in order. A FaultPlan extends the
/// workload with the failure modes a safety argument actually has to
/// survive: jittered delay, reordering, duplication, payload corruption,
/// stale-timestamp spoofing, blackout windows, and sensor faults
/// (dropout, stuck-at, bias drift).
///
/// Determinism: fault draws never touch the episode RNG. Each decorated
/// channel/sensor derives its own util::Rng from
/// (plan seed, episode seed, actor stream) via util::derive_seed, so a
/// campaign is bit-reproducible from its seeds, and a plan whose models
/// are all disabled is bit-identical to the undecorated baseline.

namespace cvsafe::fault {

/// Half-open scripted activation window [begin, end) in simulation time.
struct FaultWindow {
  double begin = 0.0;
  double end = 0.0;

  bool contains(double t) const { return t >= begin && t < end; }
};

/// Stochastic fault model applied to messages ADMITTED by the underlying
/// channel (its schedule and loss model run unchanged first).
struct ChannelFaultModel {
  /// Extra uniform [0, max] delivery delay per message (jittered delay).
  double delay_jitter_max = 0.0;

  /// With this probability a message is additionally held back by a
  /// uniform [min, max] extra delay — long enough to overtake later
  /// transmissions, producing out-of-order delivery.
  double reorder_prob = 0.0;
  double reorder_delay_min = 0.1;
  double reorder_delay_max = 0.3;

  /// With this probability the message is delivered twice, the copy
  /// lagging by uniform [0, lag_max].
  double duplicate_prob = 0.0;
  double duplicate_lag_max = 0.1;

  /// With this probability the payload state is perturbed by uniform
  /// +-delta (bounded value corruption).
  double corrupt_prob = 0.0;
  double corrupt_delta_p = 0.0;
  double corrupt_delta_v = 0.0;
  double corrupt_delta_a = 0.0;

  /// With this probability the payload TIMESTAMP is backdated by uniform
  /// [0, max] (stale-timestamp spoofing; delivery time is unaffected).
  double stale_spoof_prob = 0.0;
  double stale_spoof_max = 0.0;

  /// Scripted total-blackout windows: messages transmitted while
  /// stamp() lies in a window are silently discarded.
  std::vector<FaultWindow> blackouts;

  /// True when any fault is enabled (a model with all defaults is a
  /// pass-through).
  bool any() const;
};

/// Stochastic fault model applied to readings EMITTED by the underlying
/// sensor (its schedule and noise model run unchanged first).
struct SensorFaultModel {
  /// Per-reading i.i.d. dropout probability.
  double dropout_prob = 0.0;

  /// Position bias ramp [m per second of simulation time] (drifting
  /// calibration).
  double bias_drift_rate = 0.0;

  /// Scripted stuck-at windows: readings inside a window repeat the last
  /// emitted values (timestamps keep advancing, so downstream time-order
  /// contracts hold).
  std::vector<FaultWindow> stuck;

  bool any() const;
};

/// A named, seeded fault-injection plan for one run or campaign cell.
struct FaultPlan {
  std::string name = "none";
  std::uint64_t seed = 0xFA01;  ///< root of the fault-only RNG streams
  ChannelFaultModel channel;
  SensorFaultModel sensor;

  bool any() const { return channel.any() || sensor.any(); }

  /// Contract check: probabilities in [0,1], magnitudes and windows
  /// finite and non-negative, window begin <= end. NaN rejected.
  void validate() const;

  /// Presets (the campaign's fault axis).
  static FaultPlan none();
  static FaultPlan delay_jitter();
  static FaultPlan reorder_duplicate();
  static FaultPlan corruption();
  static FaultPlan blackout();
  static FaultPlan sensor_freeze();

  /// Preset by name ("none", "delay-jitter", "reorder-duplicate",
  /// "corruption", "blackout", "sensor-freeze"), or nullopt.
  static std::optional<FaultPlan> preset(std::string_view name);

  /// Names accepted by preset(), in a fixed order.
  static std::vector<std::string> preset_names();

  /// Loads a plan from an INI-style file (util::ConfigFile): keys
  /// `seed`, `name`, `channel.delay_jitter_max`, `channel.reorder_prob`,
  /// ..., `sensor.dropout_prob`, ...; windows as comma-separated
  /// begin:end pairs under `channel.blackouts` / `sensor.stuck`.
  /// Throws std::runtime_error on I/O or parse failure; the result is
  /// validated.
  static FaultPlan from_file(const std::string& path);

  /// Serializes the plan in the exact INI schema from_file parses —
  /// every known key emitted in a fixed order, doubles at %.17g, windows
  /// as begin:end pairs — so from_file(to_file(p)) reproduces the plan
  /// bit-exactly (pinned by fault_injection_test). The adversarial
  /// search layer saves discovered worst-case plans with this so they
  /// replay through `run --faults FILE`.
  std::string to_ini() const;

  /// Writes to_ini() to \p path. Throws std::runtime_error on I/O
  /// failure; the plan is validated first.
  void to_file(const std::string& path) const;
};

}  // namespace cvsafe::fault
