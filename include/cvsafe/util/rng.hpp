#pragma once

#include <cstdint>
#include <limits>

/// \file rng.hpp
/// Deterministic, seedable pseudo-random number generation.
///
/// All stochastic components of the library (communication drops, sensor
/// noise, workload generation, NN weight initialization) draw from this
/// generator so that every simulation is exactly reproducible from a seed.

namespace cvsafe::util {

/// xoshiro256** PRNG (Blackman & Vigna). Fast, high-quality, 2^256-1 period.
///
/// The raw 64-bit seed is expanded into the 256-bit state with SplitMix64,
/// which guarantees a well-mixed state even for small consecutive seeds
/// (0, 1, 2, ...) as used by the batch simulation runner.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Constructs a generator from a 64-bit seed.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

  /// Re-initializes the state from \p seed (SplitMix64 expansion).
  void reseed(std::uint64_t seed);

  /// Returns the next raw 64-bit output.
  std::uint64_t next_u64();

  /// UniformRandomBitGenerator interface (usable with <random> adaptors).
  result_type operator()() { return next_u64(); }
  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  /// Uniform double in [0, 1).
  double uniform01();

  /// Uniform double in [lo, hi). Requires lo <= hi.
  double uniform(double lo, double hi);

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);

  /// Bernoulli trial: true with probability \p p (clamped to [0,1]).
  bool bernoulli(double p);

  /// Standard normal deviate (Box-Muller; caches the second deviate).
  double normal();

  /// Normal deviate with the given mean and standard deviation.
  double normal(double mean, double stddev);

  /// Splits off an independent generator (seeded from this stream).
  /// Used to give each simulation in a batch its own stream.
  Rng split();

 private:
  std::uint64_t state_[4]{};
  double cached_normal_ = 0.0;
  bool has_cached_normal_ = false;
};

/// Derives a well-mixed child seed from a (base, stream) pair: the
/// SplitMix64 finalizer is applied to the base and again to the
/// stream-xored result, so nearby bases and consecutive stream indices
/// land in unrelated generator states. For a fixed base the map
/// stream -> seed is injective; use one stream index per sub-batch /
/// sweep point to keep their episode seed ranges from overlapping the
/// way raw `base + stride * i` arithmetic can.
std::uint64_t derive_seed(std::uint64_t base, std::uint64_t stream);

}  // namespace cvsafe::util
