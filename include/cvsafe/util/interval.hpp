#pragma once

#include <algorithm>
#include <cmath>
#include <iosfwd>

#include "cvsafe/util/contracts.hpp"

/// \file interval.hpp
/// Closed real interval arithmetic.
///
/// Intervals are the lingua franca of the framework: reachability analysis
/// produces position/velocity intervals, the Kalman filter produces
/// confidence intervals, the information filter intersects them, and the
/// passing-time-window estimates of the left-turn case study are intervals.

namespace cvsafe::util {

/// A closed interval [lo, hi]. An interval with lo > hi is *empty*.
///
/// Invariant: endpoints are never NaN. A NaN endpoint would read as
/// *non-empty* (NaN comparisons are false, so `lo > hi` fails) while
/// containing nothing, silently voiding every downstream safety check —
/// the constructor rejects it by contract. Infinite endpoints are fine.
struct Interval {
  double lo = 0.0;
  double hi = 0.0;

  Interval() = default;

  /// Constructs [lo, hi] (empty when lo > hi). NaN endpoints violate the
  /// contract; every factory and operation below funnels through here.
  Interval(double lo_in, double hi_in) : lo(lo_in), hi(hi_in) {
    CVSAFE_EXPECTS(!std::isnan(lo) && !std::isnan(hi),
                   "interval endpoints must not be NaN");
  }

  /// The canonical empty interval.
  static Interval empty_interval() {
    return Interval{1.0, -1.0};
  }

  /// Interval containing a single point.
  static Interval point(double x) { return Interval{x, x}; }

  /// Interval [center - radius, center + radius]. Requires radius >= 0
  /// (so the result is never empty: a zero radius yields a point).
  static Interval centered(double center, double radius) {
    CVSAFE_EXPECTS(radius >= 0.0, "centered interval needs radius >= 0");
    return Interval{center - radius, center + radius};
  }

  /// The whole real line (up to double limits).
  static Interval everything();

  /// True iff the interval contains no points (lo > hi).
  bool empty() const { return lo > hi; }

  /// Width hi - lo. For empty intervals the width is defined as 0 — NOT
  /// the (negative) endpoint difference — so accumulating widths over a
  /// partition that contains empty cells stays monotone. Pinned by
  /// util_interval_test.cpp; the sound verifier's bisection termination
  /// test relies on it.
  double width() const { return empty() ? 0.0 : hi - lo; }

  /// Midpoint (lo + hi) / 2. Requires non-empty.
  double mid() const {
    CVSAFE_EXPECTS(!empty(), "midpoint of an empty interval");
    return 0.5 * (lo + hi);
  }

  /// True iff x lies in [lo, hi].
  bool contains(double x) const { return lo <= x && x <= hi; }

  /// True iff \p other is a subset of this interval (empty is subset of all).
  bool contains(const Interval& other) const {
    return other.empty() || (lo <= other.lo && other.hi <= hi);
  }

  /// True iff the two intervals share at least one point.
  bool intersects(const Interval& other) const {
    return !empty() && !other.empty() && lo <= other.hi && other.lo <= hi;
  }

  /// Set intersection; may be empty.
  Interval intersect(const Interval& other) const {
    if (empty() || other.empty()) return empty_interval();
    Interval r{std::max(lo, other.lo), std::min(hi, other.hi)};
    return r.empty() ? empty_interval() : r;
  }

  /// Smallest interval containing both (convex hull).
  Interval hull(const Interval& other) const {
    if (empty()) return other;
    if (other.empty()) return *this;
    return Interval{std::min(lo, other.lo), std::max(hi, other.hi)};
  }

  /// Interval shifted by a constant.
  Interval shifted(double dx) const {
    if (empty()) return empty_interval();
    return Interval{lo + dx, hi + dx};
  }

  /// Interval expanded by \p margin on both sides (margin >= 0).
  Interval inflated(double margin) const {
    CVSAFE_EXPECTS(margin >= 0.0, "inflate margin must be >= 0");
    if (empty()) return empty_interval();
    return Interval{lo - margin, hi + margin};
  }

  /// Clamps x into the interval. Requires non-empty.
  double clamp(double x) const {
    CVSAFE_EXPECTS(!empty(), "clamp against an empty interval");
    return std::clamp(x, lo, hi);
  }

  /// Minkowski sum: [lo1+lo2, hi1+hi2].
  Interval operator+(const Interval& other) const {
    if (empty() || other.empty()) return empty_interval();
    return Interval{lo + other.lo, hi + other.hi};
  }

  friend bool operator==(const Interval& a, const Interval& b) {
    if (a.empty() && b.empty()) return true;
    return a.lo == b.lo && a.hi == b.hi;
  }
};

std::ostream& operator<<(std::ostream& os, const Interval& iv);

}  // namespace cvsafe::util
