#pragma once

#include <initializer_list>
#include <iosfwd>
#include <optional>
#include <vector>

#include "cvsafe/util/contracts.hpp"
#include "cvsafe/util/interval.hpp"

/// \file interval_set.hpp
/// Finite unions of closed intervals.
///
/// With several surrounding vehicles (the paper's general model has
/// C_1 ... C_{n-1}), the set of times at which the conflict zone may be
/// occupied is the UNION of the per-vehicle passing windows — a union of
/// intervals, not a single interval. IntervalSet is the canonical
/// normalized representation (sorted, pairwise disjoint, merged when
/// overlapping or touching).

namespace cvsafe::util {

/// A normalized union of closed intervals.
class IntervalSet {
 public:
  IntervalSet() = default;

  /// Singleton set (empty intervals are dropped).
  explicit IntervalSet(const Interval& iv);

  IntervalSet(std::initializer_list<Interval> ivs);

  /// True iff the set contains no points.
  bool empty() const { return parts_.empty(); }

  /// Number of maximal disjoint intervals.
  std::size_t size() const { return parts_.size(); }

  /// The i-th maximal interval (sorted by lower bound).
  const Interval& operator[](std::size_t i) const {
    CVSAFE_EXPECTS(i < parts_.size(), "interval index out of range");
    return parts_[i];
  }
  auto begin() const { return parts_.begin(); }
  auto end() const { return parts_.end(); }

  /// Total measure (sum of widths).
  double measure() const;

  /// Smallest covered point; requires non-empty.
  double min() const {
    CVSAFE_EXPECTS(!empty(), "min of an empty interval set");
    return parts_.front().lo;
  }

  /// Largest covered point; requires non-empty.
  double max() const {
    CVSAFE_EXPECTS(!empty(), "max of an empty interval set");
    return parts_.back().hi;
  }

  /// Smallest single interval containing the whole set.
  Interval hull() const;

  /// True iff x is covered.
  bool contains(double x) const;

  /// True iff the interval intersects the set.
  bool intersects(const Interval& iv) const;

  /// Adds an interval (merging as needed). Empty intervals are ignored.
  void insert(const Interval& iv);

  /// Union with another set.
  IntervalSet unite(const IntervalSet& other) const;

  /// Intersection with a single interval.
  IntervalSet intersect(const Interval& iv) const;

  /// The part of the set at or after time \p t (used to discard passed
  /// windows).
  IntervalSet after(double t) const;

  /// The earliest covered point >= t, or nullopt when none.
  std::optional<double> first_point_after(double t) const;

  friend bool operator==(const IntervalSet& a, const IntervalSet& b) {
    if (a.parts_.size() != b.parts_.size()) return false;
    for (std::size_t i = 0; i < a.parts_.size(); ++i) {
      if (!(a.parts_[i] == b.parts_[i])) return false;
    }
    return true;
  }

 private:
  void normalize();
  std::vector<Interval> parts_;
};

std::ostream& operator<<(std::ostream& os, const IntervalSet& s);

}  // namespace cvsafe::util
