#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

/// \file thread_pool.hpp
/// A small fixed-size thread pool plus a parallel_for helper.
///
/// The batch simulation runner executes tens of thousands of independent
/// simulations per experiment cell; each simulation carries its own PRNG
/// stream (seeded by index), so parallel execution is bit-reproducible
/// regardless of scheduling.

namespace cvsafe::util {

/// Fixed-size pool of worker threads consuming a task queue.
class ThreadPool {
 public:
  /// Spawns \p num_threads workers (hardware concurrency when 0).
  explicit ThreadPool(std::size_t num_threads = 0);

  /// Drains outstanding tasks, then joins all workers.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task for execution.
  void submit(std::function<void()> task);

  /// Blocks until every submitted task has completed.
  void wait_idle();

  std::size_t size() const { return workers_.size(); }

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> tasks_;
  std::mutex mutex_;
  std::condition_variable task_available_;
  std::condition_variable all_done_;
  std::size_t active_ = 0;
  bool stopping_ = false;
};

/// Runs body(i) for i in [0, n), distributing chunks over a transient pool.
/// Falls back to serial execution when n is small or num_threads == 1.
void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body,
                  std::size_t num_threads = 0);

}  // namespace cvsafe::util
