#pragma once

#include <stdexcept>
#include <string>

/// \file contracts.hpp
/// Runtime contracts for the safety-critical chain.
///
/// The framework's value proposition is a *guarantee*: the compound planner
/// never lets the ego vehicle enter the unsafe set. That guarantee is only
/// as strong as the integrity of the monitor computing it — an empty
/// interval fed to a reachability step, a non-PSD covariance, or a
/// non-positive dt silently voids the proof. These macros make such
/// assumptions executable:
///
///   CVSAFE_EXPECTS(cond, "message")  — precondition at function entry
///   CVSAFE_ENSURES(cond, "message")  — postcondition before return
///   CVSAFE_ASSERT(cond, "message")   — internal invariant
///
/// The message argument is optional. Checks are active in every build type
/// (Release included — the guarantee matters most in production) unless the
/// translation unit is compiled with -DCVSAFE_NO_CONTRACTS, which compiles
/// every check out to `(void)0` with zero residual cost.
///
/// A violated contract aborts by default (printing kind, condition, file
/// and line to stderr). Tests — and hosts that prefer to contain failures —
/// can switch the process to throwing mode, in which violations raise
/// cvsafe::util::ContractViolation instead.

namespace cvsafe::util {

/// What a violated contract does to the process.
enum class ContractMode {
  kAbort,  ///< print diagnostics to stderr, then std::abort() (default)
  kThrow,  ///< throw ContractViolation (used by tests and embedding hosts)
};

/// Exception raised by violated contracts in ContractMode::kThrow.
class ContractViolation : public std::logic_error {
 public:
  explicit ContractViolation(const std::string& what)
      : std::logic_error(what) {}
};

/// Current process-wide violation behaviour.
ContractMode contract_mode() noexcept;

/// Sets the process-wide violation behaviour; returns the previous mode.
ContractMode set_contract_mode(ContractMode mode) noexcept;

/// RAII guard restoring the previous contract mode (test helper).
class ScopedContractMode {
 public:
  explicit ScopedContractMode(ContractMode mode)
      : previous_(set_contract_mode(mode)) {}
  ~ScopedContractMode() { set_contract_mode(previous_); }
  ScopedContractMode(const ScopedContractMode&) = delete;
  ScopedContractMode& operator=(const ScopedContractMode&) = delete;

 private:
  ContractMode previous_;
};

namespace detail {

/// Reports a violated contract per the current ContractMode. Returns only
/// by throwing; marked non-returning for optimizer and analyzer benefit.
[[noreturn]] void contract_violation(const char* kind, const char* condition,
                                     const char* file, int line,
                                     const char* message);

}  // namespace detail

}  // namespace cvsafe::util

#if defined(CVSAFE_NO_CONTRACTS)

#define CVSAFE_DETAIL_CONTRACT(kind, cond, ...) static_cast<void>(0)

#else

// `"" __VA_ARGS__` concatenates an optional string-literal message onto the
// empty string, so both CVSAFE_EXPECTS(c) and CVSAFE_EXPECTS(c, "m") work.
#define CVSAFE_DETAIL_CONTRACT(kind, cond, ...)                         \
  ((cond) ? static_cast<void>(0)                                        \
          : ::cvsafe::util::detail::contract_violation(                 \
                kind, #cond, __FILE__, __LINE__, "" __VA_ARGS__))

#endif

/// Precondition: what the caller must guarantee at entry.
#define CVSAFE_EXPECTS(cond, ...) \
  CVSAFE_DETAIL_CONTRACT("precondition", cond, __VA_ARGS__)

/// Postcondition: what the function guarantees before returning.
#define CVSAFE_ENSURES(cond, ...) \
  CVSAFE_DETAIL_CONTRACT("postcondition", cond, __VA_ARGS__)

/// Internal invariant that must hold mid-computation.
#define CVSAFE_ASSERT(cond, ...) \
  CVSAFE_DETAIL_CONTRACT("invariant", cond, __VA_ARGS__)
