#pragma once

#include <cstddef>
#include <span>
#include <vector>

/// \file stats.hpp
/// Streaming and batch statistics used by the evaluation harness
/// (mean reaching time, safe rate, winning percentage, RMSE, ...).

namespace cvsafe::util {

/// Numerically stable streaming accumulator (Welford's algorithm).
class RunningStats {
 public:
  /// Adds one observation.
  void add(double x);

  /// Number of observations so far.
  std::size_t count() const { return n_; }

  /// Sample mean (0 when empty).
  double mean() const { return n_ ? mean_ : 0.0; }

  /// Unbiased sample variance (0 when fewer than 2 observations).
  double variance() const;

  /// Square root of variance().
  double stddev() const;

  /// Smallest observation (+inf when empty).
  double min() const { return min_; }

  /// Largest observation (-inf when empty).
  double max() const { return max_; }

  /// Merges another accumulator into this one (parallel reduction).
  void merge(const RunningStats& other);

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_;
  double max_;

 public:
  RunningStats();
};

/// Arithmetic mean of a sequence (0 when empty).
double mean(std::span<const double> xs);

/// Root-mean-square error between two equally sized sequences.
/// Precondition: a.size() == b.size() and non-empty.
double rmse(std::span<const double> a, std::span<const double> b);

/// Linearly interpolated p-quantile (q in [0,1]) of a sequence.
/// Copies and sorts internally. Precondition: non-empty.
double quantile(std::span<const double> xs, double q);

/// Fraction of elements satisfying x > 0 (used for winning percentages).
double fraction_positive(std::span<const double> xs);

/// A two-sided confidence interval.
struct ConfidenceInterval {
  double lo = 0.0;
  double hi = 0.0;
  double point = 0.0;  ///< the point estimate (sample mean)
};

/// Percentile-bootstrap confidence interval for the mean of \p xs.
/// \param confidence  e.g. 0.95
/// \param resamples   bootstrap resamples (default 1000)
/// Deterministic given \p rng. Precondition: non-empty sample.
ConfidenceInterval bootstrap_mean_ci(std::span<const double> xs,
                                     double confidence, class Rng& rng,
                                     std::size_t resamples = 1000);

}  // namespace cvsafe::util
