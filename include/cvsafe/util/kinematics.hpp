#pragma once

#include <optional>

/// \file kinematics.hpp
/// Closed-form kinematic helpers shared by the reachability analysis
/// (Eq. 2 of the paper) and the passing-time-window estimation
/// (Eq. 7 / Eq. 8 of the paper).

namespace cvsafe::util {

/// Real roots of a x^2 + b x + c = 0, smaller first.
/// Returns nullopt when there is no real root. A (near-)linear equation
/// (|a| tiny) degrades to the single root (-c / b) reported twice.
struct QuadraticRoots {
  double lo = 0.0;
  double hi = 0.0;
};
std::optional<QuadraticRoots> solve_quadratic(double a, double b, double c);

/// Distance needed to brake from speed \p v to a stop with constant
/// deceleration \p a_min (a_min < 0):  d_b = -v^2 / (2 a_min).
double braking_distance(double v, double a_min);

/// Position advance after time \p dt starting at speed \p v with constant
/// acceleration \p a, where the speed saturates at \p v_limit
/// (the velocity-capped branch structure of Eq. 2):
///
///   if v + a dt stays within v_limit:   v dt + a dt^2 / 2
///   otherwise: accelerate until v_limit is hit, then cruise at v_limit.
///
/// Works for both upper caps (a > 0, v_limit >= v) and lower caps
/// (a < 0, v_limit <= v). When a == 0 the result is v dt.
double displacement_with_speed_cap(double v, double a, double dt,
                                   double v_limit);

/// Minimum time for a vehicle at speed \p v to travel distance \p d >= 0
/// while applying constant acceleration \p a until the speed cap
/// \p v_limit, then cruising (Eq. 7 structure with
/// d_th = (v_limit^2 - v^2) / (2a) as the accelerate-to-cap distance):
///
///   if d > d_th:  (v_limit - v)/a + (d - d_th)/v_limit
///   else:         (-v + sqrt(v^2 + 2 a d)) / a
///
/// Returns +infinity if the distance can never be covered (e.g. the vehicle
/// decelerates to a stop first). Handles a == 0 (pure cruise) and the
/// deceleration branch (a < 0, v_limit < v) symmetrically.
double time_to_travel(double d, double v, double a, double v_limit);

/// Speed after \p dt starting at \p v with constant acceleration \p a,
/// saturating at \p v_limit (same branch logic as
/// displacement_with_speed_cap).
double speed_after(double v, double a, double dt, double v_limit);

}  // namespace cvsafe::util
