#pragma once

#include <optional>

#include "cvsafe/util/contracts.hpp"

/// \file kinematics.hpp
/// Closed-form kinematic helpers shared by the reachability analysis
/// (Eq. 2 of the paper) and the passing-time-window estimation
/// (Eq. 7 / Eq. 8 of the paper).

namespace cvsafe::util {

/// Real roots of a x^2 + b x + c = 0, smaller first.
/// Returns nullopt when there is no real root. A (near-)linear equation
/// (|a| tiny) degrades to the single root (-c / b) reported twice.
struct QuadraticRoots {
  double lo = 0.0;
  double hi = 0.0;
};
std::optional<QuadraticRoots> solve_quadratic(double a, double b, double c);

/// Distance needed to brake from speed \p v to a stop with constant
/// deceleration \p a_min (a_min < 0):  d_b = -v^2 / (2 a_min).
double braking_distance(double v, double a_min);

/// True when the speed cap is already binding, i.e. accelerating toward the
/// cap has no effect because the current speed is at or past it.
inline bool cap_binding(double v, double a, double v_limit) {
  return (a > 0.0 && v >= v_limit) || (a < 0.0 && v <= v_limit);
}

/// Position advance after time \p dt starting at speed \p v with constant
/// acceleration \p a, where the speed saturates at \p v_limit
/// (the velocity-capped branch structure of Eq. 2):
///
///   if v + a dt stays within v_limit:   v dt + a dt^2 / 2
///   otherwise: accelerate until v_limit is hit, then cruise at v_limit.
///
/// Works for both upper caps (a > 0, v_limit >= v) and lower caps
/// (a < 0, v_limit <= v). When a == 0 the result is v dt.
///
/// Defined inline: the fleet engine's SoA reachability sweep runs this in
/// its innermost loop over every pooled episode.
inline double displacement_with_speed_cap(double v, double a, double dt,
                                          double v_limit) {
  CVSAFE_EXPECTS(dt >= 0.0, "displacement needs dt >= 0");
  // cvsafe-lint: allow(float-compare) exact zero-acceleration fast path
  if (a == 0.0 || cap_binding(v, a, v_limit)) {
    // Saturated (or no acceleration): pure cruise at the current speed.
    return v * dt;
  }
  const double t_hit = (v_limit - v) / a;  // > 0 since the cap is not binding
  if (t_hit >= dt) return v * dt + 0.5 * a * dt * dt;
  const double d_accel = v * t_hit + 0.5 * a * t_hit * t_hit;
  return d_accel + v_limit * (dt - t_hit);
}

/// Minimum time for a vehicle at speed \p v to travel distance \p d >= 0
/// while applying constant acceleration \p a until the speed cap
/// \p v_limit, then cruising (Eq. 7 structure with
/// d_th = (v_limit^2 - v^2) / (2a) as the accelerate-to-cap distance):
///
///   if d > d_th:  (v_limit - v)/a + (d - d_th)/v_limit
///   else:         (-v + sqrt(v^2 + 2 a d)) / a
///
/// Returns +infinity if the distance can never be covered (e.g. the vehicle
/// decelerates to a stop first). Handles a == 0 (pure cruise) and the
/// deceleration branch (a < 0, v_limit < v) symmetrically.
double time_to_travel(double d, double v, double a, double v_limit);

/// Speed after \p dt starting at \p v with constant acceleration \p a,
/// saturating at \p v_limit (same branch logic as
/// displacement_with_speed_cap).
inline double speed_after(double v, double a, double dt, double v_limit) {
  CVSAFE_EXPECTS(dt >= 0.0, "speed projection needs dt >= 0");
  // cvsafe-lint: allow(float-compare) exact zero-acceleration fast path
  if (a == 0.0 || cap_binding(v, a, v_limit)) return v;
  const double t_hit = (v_limit - v) / a;
  return (t_hit >= dt) ? v + a * dt : v_limit;
}

}  // namespace cvsafe::util
