#pragma once

#include <fstream>
#include <string>
#include <vector>

/// \file csv.hpp
/// Minimal CSV writing for figure data series. Bench binaries emit the
/// series behind each figure as CSV (next to the printed table) so the
/// plots can be regenerated with any external plotting tool.

namespace cvsafe::util {

/// Writes rows of doubles/strings to a CSV file with proper quoting.
class CsvWriter {
 public:
  /// Opens \p path for writing. Check ok() before use.
  explicit CsvWriter(const std::string& path);

  /// True when the underlying file opened successfully.
  bool ok() const { return static_cast<bool>(out_); }

  /// Writes a header row.
  void header(const std::vector<std::string>& names);

  /// Writes a row of numeric values.
  void row(const std::vector<double>& values);

  /// Writes a row of already-formatted cells (quoted when needed).
  void raw_row(const std::vector<std::string>& cells);

 private:
  static std::string quote(const std::string& s);
  std::ofstream out_;
};

}  // namespace cvsafe::util
