#pragma once

#include <iosfwd>
#include <map>
#include <optional>
#include <string>

/// \file config_file.hpp
/// Minimal INI-style configuration files for the tools and examples:
///
///   # comment
///   [section]
///   key = value
///
/// Keys are addressed as "section.key" ("key" for the implicit top-level
/// section). Values are free strings with typed accessors.

namespace cvsafe::util {

/// Parsed configuration file.
class ConfigFile {
 public:
  ConfigFile() = default;

  /// Parses from a stream. Throws std::runtime_error on malformed lines.
  static ConfigFile parse(std::istream& is);

  /// Parses from a file path. Throws on I/O or parse failure.
  static ConfigFile load(const std::string& path);

  bool has(const std::string& key) const { return values_.count(key) > 0; }
  std::size_t size() const { return values_.size(); }

  /// Raw string value, or nullopt.
  std::optional<std::string> get(const std::string& key) const;

  /// Typed accessors with defaults. Unparsable numbers throw.
  std::string get_string(const std::string& key,
                         const std::string& dflt) const;
  double get_double(const std::string& key, double dflt) const;
  std::int64_t get_int(const std::string& key, std::int64_t dflt) const;
  bool get_bool(const std::string& key, bool dflt) const;

  /// All keys (sorted), e.g. for validation against a known schema.
  std::map<std::string, std::string> entries() const { return values_; }

  /// Sets a value programmatically (tests, overrides).
  void set(const std::string& key, const std::string& value) {
    values_[key] = value;
  }

 private:
  std::map<std::string, std::string> values_;
};

}  // namespace cvsafe::util
