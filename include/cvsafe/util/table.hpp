#pragma once

#include <iosfwd>
#include <string>
#include <vector>

/// \file table.hpp
/// ASCII table rendering for the experiment harness. Every bench binary
/// prints its table/figure data through this printer so the output layout
/// mirrors the rows the paper reports.

namespace cvsafe::util {

/// Column-aligned ASCII table with an optional title and header row.
///
/// Usage:
///   Table t("Table I: conservative planner");
///   t.set_header({"settings", "planner", "reaching time", "safe rate"});
///   t.add_row({"no disturbance", "pure NN", "7.989s", "100%"});
///   std::cout << t;
class Table {
 public:
  Table() = default;
  explicit Table(std::string title) : title_(std::move(title)) {}

  /// Sets the header row (column count is inferred from it).
  void set_header(std::vector<std::string> header);

  /// Appends a data row. Rows shorter than the header are right-padded.
  void add_row(std::vector<std::string> row);

  /// Appends a horizontal separator line between row groups.
  void add_separator();

  /// Renders the table.
  void print(std::ostream& os) const;

  std::size_t row_count() const { return rows_.size(); }

  /// Formats a double with \p precision fractional digits.
  static std::string num(double v, int precision = 3);

  /// Formats a fraction in [0,1] as a percentage, e.g. 0.9966 -> "99.66%".
  static std::string percent(double fraction, int precision = 2);

 private:
  struct Row {
    std::vector<std::string> cells;
    bool separator = false;
  };
  std::string title_;
  std::vector<std::string> header_;
  std::vector<Row> rows_;
};

std::ostream& operator<<(std::ostream& os, const Table& t);

}  // namespace cvsafe::util
