#pragma once

#include <cstdint>
#include <optional>
#include <string>

/// \file config.hpp
/// Environment-variable configuration for the experiment harness.
///
/// Bench binaries read their workload sizes from the environment so the
/// full paper-scale runs (80,000 simulations per setting) can be requested
/// without recompiling:
///
///   CVSAFE_SIMS=80000 CVSAFE_THREADS=32 ./bench/bench_table1

namespace cvsafe::util {

/// Integer environment variable, or \p fallback when unset/unparsable.
std::int64_t env_int(const std::string& name, std::int64_t fallback);

/// Floating-point environment variable, or \p fallback.
double env_double(const std::string& name, double fallback);

/// String environment variable, or nullopt when unset.
std::optional<std::string> env_string(const std::string& name);

/// Simulations per experiment cell. Env CVSAFE_SIMS; \p fallback otherwise.
std::size_t bench_sims(std::size_t fallback);

/// Worker threads for batch runs. Env CVSAFE_THREADS; 0 = hardware default.
std::size_t bench_threads();

}  // namespace cvsafe::util
