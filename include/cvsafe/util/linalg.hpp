#pragma once

#include <array>
#include <iosfwd>

/// \file linalg.hpp
/// Fixed-size 2-vector / 2x2-matrix linear algebra.
///
/// The Kalman filter of the paper operates on the 2-dimensional state
/// (position, velocity) of each observed vehicle, so a tiny stack-allocated
/// linear algebra layer is all that is needed — no heap, no dependencies.

namespace cvsafe::util {

/// Column 2-vector (x, y).
struct Vec2 {
  double x = 0.0;
  double y = 0.0;

  Vec2 operator+(const Vec2& o) const { return {x + o.x, y + o.y}; }
  Vec2 operator-(const Vec2& o) const { return {x - o.x, y - o.y}; }
  Vec2 operator*(double s) const { return {x * s, y * s}; }
  friend Vec2 operator*(double s, const Vec2& v) { return v * s; }

  double dot(const Vec2& o) const { return x * o.x + y * o.y; }
};

/// Row-major 2x2 matrix
///   [ a  b ]
///   [ c  d ]
struct Mat2 {
  double a = 0.0, b = 0.0;
  double c = 0.0, d = 0.0;

  static Mat2 identity() { return {1.0, 0.0, 0.0, 1.0}; }
  static Mat2 zero() { return {}; }
  static Mat2 diagonal(double d1, double d2) { return {d1, 0.0, 0.0, d2}; }

  Mat2 operator+(const Mat2& o) const {
    return {a + o.a, b + o.b, c + o.c, d + o.d};
  }
  Mat2 operator-(const Mat2& o) const {
    return {a - o.a, b - o.b, c - o.c, d - o.d};
  }
  Mat2 operator*(double s) const { return {a * s, b * s, c * s, d * s}; }
  friend Mat2 operator*(double s, const Mat2& m) { return m * s; }

  Mat2 operator*(const Mat2& o) const {
    return {a * o.a + b * o.c, a * o.b + b * o.d,
            c * o.a + d * o.c, c * o.b + d * o.d};
  }
  Vec2 operator*(const Vec2& v) const {
    return {a * v.x + b * v.y, c * v.x + d * v.y};
  }

  Mat2 transpose() const { return {a, c, b, d}; }

  double determinant() const { return a * d - b * c; }

  /// Matrix trace a + d.
  double trace() const { return a + d; }

  /// Inverse. Precondition: determinant() != 0 (asserted in debug builds).
  Mat2 inverse() const;

  /// True iff the matrix is symmetric within \p tol.
  bool is_symmetric(double tol = 1e-12) const;

  /// True iff symmetric and both eigenvalues are >= -tol
  /// (valid covariance matrix check).
  bool is_positive_semidefinite(double tol = 1e-9) const;
};

std::ostream& operator<<(std::ostream& os, const Vec2& v);
std::ostream& operator<<(std::ostream& os, const Mat2& m);

}  // namespace cvsafe::util
