#pragma once

#include <algorithm>
#include <cmath>
#include <limits>

#include "cvsafe/util/contracts.hpp"
#include "cvsafe/util/interval.hpp"

/// \file rounded_interval.hpp
/// Outward-rounded (directed) interval arithmetic.
///
/// The plain Interval operations in interval.hpp evaluate endpoint
/// expressions in round-to-nearest, so a computed interval can *shave* up
/// to half an ulp off the true real-arithmetic range per operation. For
/// estimation and simulation that is irrelevant; for the sound verifier
/// (verify/sound.hpp) it is fatal — a certificate whose bounds are half an
/// ulp too tight is not a proof.
///
/// This header provides the directed ops the certifier is built from.
/// Every operation returns an interval that is a superset of the exact
/// real-arithmetic image, implemented by taking one `std::nextafter` step
/// outward per endpoint operation. Soundness argument: IEEE-754
/// round-to-nearest returns a value within half an ulp of the exact
/// result, so one full ulp step down (up) from the rounded value is a
/// guaranteed lower (upper) bound. This over-rounds by ~half an ulp per
/// op — negligible slack, bought with no dependence on the FP environment
/// (no fesetround, so the ops are safe under any prevailing rounding mode
/// that is at least faithful, and under compilers that reorder FP ops
/// within round-to-nearest).
///
/// The same construction is mirrored in scripts/check_certificate.py via
/// math.nextafter, which lets the independent checker reproduce every
/// endpoint bit-for-bit.
///
/// Containment extends to *floating-point* evaluations as well: a concrete
/// round-to-nearest (or fused) evaluation of the same expression DAG lands
/// between the directed endpoints, because each concrete op result lies
/// within the outward-rounded image of its argument enclosures. This is
/// what lets the interval MLP pass (nn/interval_mlp.hpp) enclose the
/// binary's actual `forward_into` outputs, not just the ideal real ones.
///
/// All functions treat empty intervals as absorbing (result empty) and
/// require finite or infinite — never NaN — inputs (Interval's invariant).

namespace cvsafe::util::rounded {

/// Largest double strictly below \p x (identity on -inf).
inline double prev(double x) {
  if (x == -std::numeric_limits<double>::infinity()) return x;
  return std::nextafter(x, -std::numeric_limits<double>::infinity());
}

/// Smallest double strictly above \p x (identity on +inf).
inline double next(double x) {
  if (x == std::numeric_limits<double>::infinity()) return x;
  return std::nextafter(x, std::numeric_limits<double>::infinity());
}

/// x + y rounded toward -inf (one ulp step below round-to-nearest).
inline double add_down(double x, double y) { return prev(x + y); }
/// x + y rounded toward +inf.
inline double add_up(double x, double y) { return next(x + y); }
/// x - y rounded toward -inf.
inline double sub_down(double x, double y) { return prev(x - y); }
/// x - y rounded toward +inf.
inline double sub_up(double x, double y) { return next(x - y); }
/// x * y rounded toward -inf.
inline double mul_down(double x, double y) { return prev(x * y); }
/// x * y rounded toward +inf.
inline double mul_up(double x, double y) { return next(x * y); }
/// x / y rounded toward -inf.
inline double div_down(double x, double y) { return prev(x / y); }
/// x / y rounded toward +inf.
inline double div_up(double x, double y) { return next(x / y); }

/// [a] + [b] with outward rounding.
inline Interval add(const Interval& a, const Interval& b) {
  if (a.empty() || b.empty()) return Interval::empty_interval();
  return Interval{add_down(a.lo, b.lo), add_up(a.hi, b.hi)};
}

/// [a] - [b] with outward rounding.
inline Interval sub(const Interval& a, const Interval& b) {
  if (a.empty() || b.empty()) return Interval::empty_interval();
  return Interval{sub_down(a.lo, b.hi), sub_up(a.hi, b.lo)};
}

/// -[a] (exact; negation never rounds).
inline Interval neg(const Interval& a) {
  if (a.empty()) return Interval::empty_interval();
  return Interval{-a.hi, -a.lo};
}

/// [a] * [b] with outward rounding (four-corner rule).
inline Interval mul(const Interval& a, const Interval& b) {
  if (a.empty() || b.empty()) return Interval::empty_interval();
  const double c1 = a.lo * b.lo;
  const double c2 = a.lo * b.hi;
  const double c3 = a.hi * b.lo;
  const double c4 = a.hi * b.hi;
  const double lo = std::min(std::min(c1, c2), std::min(c3, c4));
  const double hi = std::max(std::max(c1, c2), std::max(c3, c4));
  return Interval{prev(lo), next(hi)};
}

/// [a] * s for a scalar s (sign-aware, outward rounding).
inline Interval scale(const Interval& a, double s) {
  if (a.empty()) return Interval::empty_interval();
  if (s >= 0.0) return Interval{mul_down(a.lo, s), mul_up(a.hi, s)};
  return Interval{mul_down(a.hi, s), mul_up(a.lo, s)};
}

/// [a] / s for a nonzero scalar s (sign-aware, outward rounding).
inline Interval div_scalar(const Interval& a, double s) {
  // Exact contract check on the divisor. cvsafe-lint: allow(float-compare)
  CVSAFE_EXPECTS(s != 0.0, "rounded::div_scalar needs a nonzero divisor");
  if (a.empty()) return Interval::empty_interval();
  if (s > 0.0) return Interval{div_down(a.lo, s), div_up(a.hi, s)};
  return Interval{div_down(a.hi, s), div_up(a.lo, s)};
}

/// [a]^2 with outward rounding (tighter than mul(a, a): range is >= 0).
inline Interval sqr(const Interval& a) {
  if (a.empty()) return Interval::empty_interval();
  const double m1 = a.lo * a.lo;
  const double m2 = a.hi * a.hi;
  if (a.lo >= 0.0) return Interval{prev(m1), next(m2)};
  if (a.hi <= 0.0) return Interval{prev(m2), next(m1)};
  return Interval{0.0, next(std::max(m1, m2))};
}

/// Enlarges [a] by \p ulps nextafter steps on each side. Used to turn an
/// approximately-computed endpoint plus a proven ulp error bound into a
/// rigorous enclosure (e.g. the fast_tanh inclusion function).
inline Interval widen_ulps(const Interval& a, int ulps) {
  CVSAFE_EXPECTS(ulps >= 0, "widen_ulps needs a non-negative step count");
  if (a.empty()) return Interval::empty_interval();
  Interval r = a;
  for (int i = 0; i < ulps; ++i) {
    r.lo = prev(r.lo);
    r.hi = next(r.hi);
  }
  return r;
}

/// max([a], [b]) elementwise on the endpoint lattice (exact).
inline Interval max(const Interval& a, const Interval& b) {
  if (a.empty() || b.empty()) return Interval::empty_interval();
  return Interval{std::max(a.lo, b.lo), std::max(a.hi, b.hi)};
}

/// min([a], [b]) elementwise on the endpoint lattice (exact).
inline Interval min(const Interval& a, const Interval& b) {
  if (a.empty() || b.empty()) return Interval::empty_interval();
  return Interval{std::min(a.lo, b.lo), std::min(a.hi, b.hi)};
}

/// clamp([a], lo, hi) — the image of std::clamp over the box (exact).
inline Interval clamp(const Interval& a, double lo, double hi) {
  CVSAFE_EXPECTS(lo <= hi, "rounded::clamp needs an ordered range");
  if (a.empty()) return Interval::empty_interval();
  return Interval{std::clamp(a.lo, lo, hi), std::clamp(a.hi, lo, hi)};
}

}  // namespace cvsafe::util::rounded
