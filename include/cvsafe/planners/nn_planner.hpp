#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cvsafe/core/planner.hpp"
#include "cvsafe/nn/mlp.hpp"
#include "cvsafe/scenario/world.hpp"
#include "cvsafe/util/interval.hpp"

/// \file nn_planner.hpp
/// The NN-based planner kappa_n for the left-turn case study.
///
/// Input encoding. The paper's planner consumes
/// (t, p_0, v_0, tau_1,min, tau_1,max); since the dynamics are
/// time-invariant, we feed the windows *relative* to the current time,
/// giving the 4-vector (p_0, v_0, tau_1,min - t, tau_1,max - t), each
/// scaled to roughly unit range. An empty window (oncoming vehicle has
/// passed) is encoded by the sentinel relative time -2 s for both entries.

namespace cvsafe::planners {

/// Fixed input normalization of the left-turn planner network.
struct InputEncoding {
  double p_scale = 30.0;   ///< position divisor
  double v_scale = 15.0;   ///< velocity divisor
  double w_scale = 10.0;   ///< window-time divisor
  double w_min = -2.0;     ///< clamp / sentinel for relative window times
  double w_max = 30.0;     ///< clamp for relative window times

  /// Encodes one NN input vector.
  std::vector<double> encode(double t, double p0, double v0,
                             const util::Interval& tau1) const;

  /// Input dimensionality (4).
  static constexpr std::size_t dim() { return 4; }
};

/// kappa_n: wraps a trained MLP as a PlannerBase.
class NnPlanner final : public core::PlannerBase<scenario::LeftTurnWorld> {
 public:
  NnPlanner(std::shared_ptr<const nn::Mlp> net, InputEncoding encoding,
            std::string name);

  /// Runs the network on (ego state, NN-facing window) and returns the
  /// predicted acceleration (clamped downstream by the dynamics).
  double plan(const scenario::LeftTurnWorld& world) override;

  std::string_view name() const override { return name_; }

  const nn::Mlp& network() const { return *net_; }
  const InputEncoding& encoding() const { return encoding_; }

 private:
  std::shared_ptr<const nn::Mlp> net_;
  InputEncoding encoding_;
  std::string name_;
};

}  // namespace cvsafe::planners
