#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "cvsafe/core/planner.hpp"
#include "cvsafe/nn/mlp.hpp"
#include "cvsafe/scenario/world.hpp"
#include "cvsafe/util/interval.hpp"

/// \file nn_planner.hpp
/// The NN-based planner kappa_n for the left-turn case study.
///
/// Input encoding. The paper's planner consumes
/// (t, p_0, v_0, tau_1,min, tau_1,max); since the dynamics are
/// time-invariant, we feed the windows *relative* to the current time,
/// giving the 4-vector (p_0, v_0, tau_1,min - t, tau_1,max - t), each
/// scaled to roughly unit range. An empty window (oncoming vehicle has
/// passed) is encoded by the sentinel relative time -2 s for both entries.

namespace cvsafe::planners {

/// Fixed input normalization of the left-turn planner network.
struct InputEncoding {
  double p_scale = 30.0;   ///< position divisor
  double v_scale = 15.0;   ///< velocity divisor
  double w_scale = 10.0;   ///< window-time divisor
  double w_min = -2.0;     ///< clamp / sentinel for relative window times
  double w_max = 30.0;     ///< clamp for relative window times

  /// Encodes one NN input vector.
  std::vector<double> encode(double t, double p0, double v0,
                             const util::Interval& tau1) const;

  /// Encodes into caller-provided storage (\p out.size() == dim());
  /// allocation-free variant for the per-control-step hot path.
  void encode_into(double t, double p0, double v0, const util::Interval& tau1,
                   std::span<double> out) const;

  /// Input dimensionality (4).
  static constexpr std::size_t dim() { return 4; }
};

/// kappa_n: wraps a trained MLP as a PlannerBase.
class NnPlanner final : public core::PlannerBase<scenario::LeftTurnWorld> {
 public:
  NnPlanner(std::shared_ptr<const nn::Mlp> net, InputEncoding encoding,
            std::string name);

  /// Runs the network on (ego state, NN-facing window) and returns the
  /// predicted acceleration (clamped downstream by the dynamics).
  /// Allocation-free after the first call (reuses an internal workspace).
  double plan(const scenario::LeftTurnWorld& world) override;

  /// Evaluates kappa_n for \p worlds in one matmul per layer, writing one
  /// acceleration per world into \p out (sizes must match). Amortizes the
  /// weight-matrix traffic across the batch; bit-identical to calling
  /// plan() per world.
  void plan_batch(std::span<const scenario::LeftTurnWorld> worlds,
                  std::span<double> out);

  std::string_view name() const override { return name_; }

  const nn::Mlp& network() const { return *net_; }
  const InputEncoding& encoding() const { return encoding_; }

 private:
  std::shared_ptr<const nn::Mlp> net_;
  InputEncoding encoding_;
  std::string name_;
  nn::Workspace workspace_;  ///< per-planner scratch; planners are
                             ///< per-episode objects, never shared across
                             ///< threads (see AgentBlueprint::make)
};

}  // namespace cvsafe::planners
