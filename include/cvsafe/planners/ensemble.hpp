#pragma once

#include <memory>
#include <string>
#include <vector>

#include "cvsafe/planners/nn_planner.hpp"
#include "cvsafe/planners/training.hpp"

/// \file ensemble.hpp
/// Deep-ensemble planner: k independently initialized/trained networks.
///
/// The ensemble mean is a lower-variance planner than any single member,
/// and the member *disagreement* is an epistemic-uncertainty signal: it
/// spikes in states the training distribution covered poorly. The
/// uncertainty-averse mode subtracts sigma_penalty * disagreement from
/// the commanded acceleration, so the planner automatically hedges
/// exactly where its knowledge is thin — a complementary, soft layer of
/// caution underneath the hard guarantee of the compound planner.

namespace cvsafe::planners {

/// kappa_n backed by an ensemble of MLPs.
class EnsemblePlanner final
    : public core::PlannerBase<scenario::LeftTurnWorld> {
 public:
  /// \param members        at least one trained network
  /// \param sigma_penalty  acceleration reduction per unit of member
  ///                       standard deviation (0 = plain mean)
  EnsemblePlanner(std::vector<std::shared_ptr<const nn::Mlp>> members,
                  InputEncoding encoding, std::string name,
                  double sigma_penalty = 0.0);

  double plan(const scenario::LeftTurnWorld& world) override;
  std::string_view name() const override { return name_; }

  std::size_t size() const { return members_.size(); }

  /// Member standard deviation of the most recent plan() call.
  double last_disagreement() const { return last_disagreement_; }

 private:
  std::vector<std::shared_ptr<const nn::Mlp>> members_;
  InputEncoding encoding_;
  std::string name_;
  double sigma_penalty_;
  double last_disagreement_ = 0.0;
  nn::Workspace workspace_;  ///< shared across members (same architecture);
                             ///< planners are per-episode, single-threaded
};

/// Trains (or loads from cache) an ensemble of \p k members for the given
/// style; members differ only in their training seed.
std::vector<std::shared_ptr<const nn::Mlp>> train_planner_ensemble(
    const scenario::LeftTurnScenario& scenario, PlannerStyle style,
    std::size_t k, const TrainingOptions& base_options = {});

}  // namespace cvsafe::planners
