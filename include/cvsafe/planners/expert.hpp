#pragma once

#include <memory>
#include <string>

#include "cvsafe/core/planner.hpp"
#include "cvsafe/scenario/left_turn.hpp"
#include "cvsafe/scenario/world.hpp"
#include "cvsafe/util/interval.hpp"

/// \file expert.hpp
/// Analytic expert policies for the unprotected left turn.
///
/// The paper's NN planners are trained with the learning methods of [6];
/// as a from-scratch substitute (see DESIGN.md) we train our networks by
/// imitation of these closed-form experts. The *style* of a planner —
/// conservative vs aggressive — is controlled entirely by the expert's
/// go-margin: how much earlier than C1's estimated earliest zone entry the
/// ego must be able to clear the zone before the expert commits to pass.

namespace cvsafe::planners {

/// Behavioral parameters of the expert.
struct ExpertParams {
  /// Required clearance (seconds) between the ego's projected zone-exit
  /// time and tau_1,min before committing to pass. Large positive values
  /// yield a conservative planner; small or negative values an aggressive
  /// one that bets on the oncoming vehicle not driving at its limits.
  double go_margin = 1.0;

  /// Extra distance past the back line that must be cleared [m].
  double clearance = 0.5;

  /// The yield maneuver aims to stop this far before the front line [m].
  double stop_offset = 0.5;

  /// Canonical conservative expert (kappa_n,cons training source).
  static ExpertParams conservative();

  /// Canonical aggressive expert (kappa_n,aggr training source).
  static ExpertParams aggressive();
};

/// Closed-form pass-or-yield policy on the NN input space
/// (ego state + oncoming passing window).
class ExpertPolicy {
 public:
  ExpertPolicy(std::shared_ptr<const scenario::LeftTurnScenario> scenario,
               ExpertParams params);

  const ExpertParams& params() const { return params_; }

  /// The expert's acceleration command given the ego state and the
  /// estimated oncoming passing window [tau_1,min, tau_1,max].
  double act(double t, double p0, double v0, const util::Interval& tau1) const;

  /// Projected time for the ego to clear the zone under full throttle.
  double time_to_clear(double p0, double v0) const;

 private:
  std::shared_ptr<const scenario::LeftTurnScenario> scenario_;
  ExpertParams params_;
};

/// PlannerBase adapter so experts can be used directly as baselines or be
/// wrapped by the compound planner (the framework accepts *any* planner).
class ExpertPlanner final : public core::PlannerBase<scenario::LeftTurnWorld> {
 public:
  ExpertPlanner(std::shared_ptr<const scenario::LeftTurnScenario> scenario,
                ExpertParams params, std::string name);

  double plan(const scenario::LeftTurnWorld& world) override;
  std::string_view name() const override { return name_; }

  const ExpertPolicy& policy() const { return policy_; }

 private:
  ExpertPolicy policy_;
  std::string name_;
};

}  // namespace cvsafe::planners
