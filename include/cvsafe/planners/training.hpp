#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "cvsafe/nn/mlp.hpp"
#include "cvsafe/nn/trainer.hpp"
#include "cvsafe/planners/expert.hpp"
#include "cvsafe/planners/nn_planner.hpp"
#include "cvsafe/scenario/left_turn.hpp"

/// \file training.hpp
/// Imitation-training pipeline producing the paper's two NN planners
/// kappa_n,cons and kappa_n,aggr (Section V-A).
///
/// Substitution note (DESIGN.md): the paper trains its planners with the
/// hierarchical learning method of [6]; here the networks imitate the
/// closed-form experts of expert.hpp on states sampled from the planner
/// input space. The resulting planners exhibit the two archetypes the
/// paper evaluates: safe-but-slow (conservative) and fast-but-unsafe
/// (aggressive).

namespace cvsafe::planners {

/// The two planner archetypes of Section V.
enum class PlannerStyle {
  kConservative,  ///< kappa_n,cons
  kAggressive,    ///< kappa_n,aggr
};

/// Returns "conservative" / "aggressive".
const char* planner_style_name(PlannerStyle style);

/// Expert parameters backing a style.
ExpertParams expert_params_for(PlannerStyle style);

/// Hyperparameters of the imitation training run.
struct TrainingOptions {
  std::size_t num_samples = 24000;
  std::size_t epochs = 60;
  std::size_t batch_size = 128;
  double learning_rate = 3e-3;
  std::uint64_t seed = 20230417;
  nn::MlpSpec spec{
      {InputEncoding::dim(), 24, 24, 1},
      nn::Activation::kTanh,
      nn::Activation::kIdentity,
  };

  /// On-policy (DAgger-style) augmentation rounds: after the initial fit,
  /// roll the partially trained planner out in closed loop, relabel the
  /// states it actually visits with the expert, and fine-tune on the
  /// combined data. 0 disables the augmentation (default — the i.i.d.
  /// state distribution already covers the planner input space well).
  std::size_t onpolicy_rounds = 0;
  std::size_t onpolicy_episodes_per_round = 40;
  std::size_t onpolicy_epochs = 15;
};

/// Samples \p n states from the planner input space and labels them with
/// the expert policy (t = 0 w.l.o.g. since the encoding is relative).
nn::Dataset generate_imitation_dataset(
    const scenario::LeftTurnScenario& scenario, const ExpertPolicy& expert,
    const InputEncoding& encoding, std::size_t n, util::Rng& rng);

/// Rolls the network out in closed loop against random oncoming traffic
/// (exact information, no disturbance) and returns the expert-relabeled
/// states it visited — the DAgger correction for covariate shift.
nn::Dataset generate_onpolicy_dataset(
    const scenario::LeftTurnScenario& scenario, const nn::Mlp& net,
    const ExpertPolicy& expert, const InputEncoding& encoding,
    std::size_t episodes, util::Rng& rng);

/// Trains a planner network of the given style from scratch.
nn::Mlp train_planner_network(const scenario::LeftTurnScenario& scenario,
                              PlannerStyle style,
                              const TrainingOptions& options = {});

/// Returns the trained network for a style, loading it from the model
/// cache when available and training + saving it otherwise. The cache
/// directory is $CVSAFE_MODEL_CACHE (default: /tmp/cvsafe-models); file
/// names carry a fingerprint of every input that influences training, so
/// stale caches are never reused.
std::shared_ptr<const nn::Mlp> cached_planner_network(
    const scenario::LeftTurnScenario& scenario, PlannerStyle style,
    const TrainingOptions& options = {});

/// Convenience: a ready-to-use kappa_n of the given style.
std::shared_ptr<NnPlanner> make_nn_planner(
    const scenario::LeftTurnScenario& scenario, PlannerStyle style,
    const TrainingOptions& options = {});

}  // namespace cvsafe::planners
