#pragma once

#include <memory>

#include "cvsafe/core/safety_model.hpp"
#include "cvsafe/scenario/left_turn.hpp"
#include "cvsafe/scenario/world.hpp"

/// \file safety_model.hpp
/// Binds the left-turn case-study mathematics (Section IV) to the generic
/// framework interfaces (Section III).

namespace cvsafe::scenario {

/// SafetyModelBase implementation for the unprotected left turn.
class LeftTurnSafetyModel final
    : public core::SafetyModelBase<LeftTurnWorld> {
 public:
  /// \param scenario  shared case-study math
  /// \param buffers   aggressive unsafe-set buffers (Eq. 8)
  LeftTurnSafetyModel(std::shared_ptr<const LeftTurnScenario> scenario,
                      AggressiveBuffers buffers = {});

  /// Eq. 6 on the monitor's sound window.
  bool in_unsafe_set(const LeftTurnWorld& world) const override;

  /// Eq. 3 closed form on the monitor's sound window.
  bool in_boundary_safe_set(const LeftTurnWorld& world) const override;

  /// kappa_e of Section IV.
  double emergency_accel(const LeftTurnWorld& world) const override;

  /// Replaces the NN-facing window with the aggressive estimate (Eq. 8)
  /// computed from the NN-facing state estimate.
  LeftTurnWorld shrink_for_planner(const LeftTurnWorld& world) const override;

  /// EMERGENCY-BIASED ladder rung: inflates the monitor passing window by
  /// kEmergencyBias seconds on each side, so the X_b membership test
  /// fires earlier while the estimators are suspect.
  LeftTurnWorld bias_for_emergency(
      const LeftTurnWorld& world) const override;

  static constexpr double kEmergencyBias = 0.25;  ///< window pad [s]

  /// "slack band" / "committed" / "inside zone" — which X_b branch fired.
  std::string boundary_reason(const LeftTurnWorld& world) const override;

  /// Slack s(t) of Eq. 5 evaluated on the ego state.
  double boundary_slack(const LeftTurnWorld& world) const override;

  const LeftTurnScenario& scenario() const { return *scenario_; }
  const AggressiveBuffers& buffers() const { return buffers_; }

 private:
  std::shared_ptr<const LeftTurnScenario> scenario_;
  AggressiveBuffers buffers_;
};

}  // namespace cvsafe::scenario
