#pragma once

#include <memory>
#include <optional>

#include "cvsafe/core/safety_model.hpp"
#include "cvsafe/util/interval_set.hpp"
#include "cvsafe/vehicle/dynamics.hpp"
#include "cvsafe/vehicle/state.hpp"

/// \file intersection.hpp
/// Third case study: crossing a two-lane perpendicular road.
///
/// The paper motivates communication disturbance with intelligent
/// intersection management [12]; this scenario instantiates the framework
/// on that problem shape. The ego's path crosses TWO conflict zones in
/// sequence (the near lane and the far lane of the perpendicular road),
/// each of which may be occupied during a set of time windows (from the
/// estimates of that lane's traffic). The gap between the lanes is too
/// short to stop in, so the go/no-go decision must consider BOTH zones
/// jointly: pass ahead of everything under full throttle, or hold before
/// the first zone — partial commitment is not a strategy.
///
/// Structurally new relative to the left turn: sequential conflict zones
/// with joint resolvability; windows are IntervalSets per zone.

namespace cvsafe::scenario {

/// Geometry of the crossing (ego path coordinates).
struct IntersectionGeometry {
  double zone_a_front = 10.0;  ///< near lane entry
  double zone_a_back = 14.0;   ///< near lane exit
  double zone_b_front = 16.0;  ///< far lane entry
  double zone_b_back = 20.0;   ///< far lane exit
  double ego_start = -25.0;
  double ego_target = 28.0;

  bool valid() const {
    return ego_start < zone_a_front && zone_a_front < zone_a_back &&
           zone_a_back <= zone_b_front && zone_b_front < zone_b_back &&
           ego_target >= zone_b_back;
  }
};

/// World view: per-zone occupancy window sets from the monitor estimates.
struct IntersectionWorld {
  double t = 0.0;
  vehicle::VehicleState ego;
  util::IntervalSet tau_a;  ///< near-lane occupancy windows (sound)
  util::IntervalSet tau_b;  ///< far-lane occupancy windows (sound)
};

/// Safety mathematics of the two-zone crossing.
class IntersectionScenario {
 public:
  IntersectionScenario(IntersectionGeometry geometry,
                       vehicle::VehicleLimits ego, double dt_c);

  const IntersectionGeometry& geometry() const { return geometry_; }
  const vehicle::VehicleLimits& ego_limits() const { return ego_; }
  double control_period() const { return dt_c_; }

  /// Ego occupancy interval of [front, back] under full throttle from
  /// (p, v) at time t; empty when already past the zone.
  util::Interval full_throttle_occupancy(double t, double p, double v,
                                         double front, double back) const;

  /// Joint resolvability: full throttle clears BOTH zones outside their
  /// window sets, or the ego can still stop before the first uncleared
  /// zone (and wait — windows only tighten over time).
  bool resolvable(const IntersectionWorld& w) const;

  /// True iff the ego occupies zone A / zone B (the evaluation harness
  /// checks actual co-presence against the true traffic states).
  bool in_zone_a(double p) const;
  bool in_zone_b(double p) const;

  /// X_u estimate: committed past the stopping point of the first
  /// uncleared zone while full throttle cannot clear both.
  bool in_unsafe_set(const IntersectionWorld& w) const;

  /// Boundary safe set: one feasible control step could destroy
  /// resolvability (slack band of the first uncleared zone, or committed
  /// states where dawdling would slide the crossing into a window).
  bool in_boundary_safe_set(const IntersectionWorld& w) const;

  /// kappa_e: stop before the first uncleared zone while possible; commit
  /// at full throttle when the full-throttle plan is clear; brake as the
  /// last resort otherwise.
  double emergency_accel(const IntersectionWorld& w) const;

 private:
  /// Front line of the first zone the ego has not yet passed, or nullopt.
  std::optional<double> next_stop_line(double p) const;

  /// Full-throttle plan clear of both window sets.
  bool full_throttle_clear(const IntersectionWorld& w) const;

  IntersectionGeometry geometry_;
  vehicle::VehicleLimits ego_;
  double dt_c_;
};

/// SafetyModelBase adapter.
class IntersectionSafetyModel final
    : public core::SafetyModelBase<IntersectionWorld> {
 public:
  explicit IntersectionSafetyModel(
      std::shared_ptr<const IntersectionScenario> scenario);

  bool in_unsafe_set(const IntersectionWorld& world) const override;
  bool in_boundary_safe_set(const IntersectionWorld& world) const override;
  double emergency_accel(const IntersectionWorld& world) const override;
  std::string boundary_reason(const IntersectionWorld& world) const override;

 private:
  std::shared_ptr<const IntersectionScenario> scenario_;
};

}  // namespace cvsafe::scenario
