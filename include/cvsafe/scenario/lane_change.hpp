#pragma once

#include <memory>

#include "cvsafe/core/safety_model.hpp"
#include "cvsafe/filter/estimate.hpp"
#include "cvsafe/util/interval.hpp"
#include "cvsafe/vehicle/dynamics.hpp"
#include "cvsafe/vehicle/state.hpp"

/// \file lane_change.hpp
/// A second case study: merging behind a vehicle on the target lane.
///
/// Section II-A of the paper introduces the lane-change target set and the
/// same-lane distance-gap unsafe set X_u = { |p_0 - p_i| < p_gap } as its
/// motivating examples; this module instantiates the generic framework on
/// exactly that system, demonstrating that the compound planner is not
/// specific to the left-turn case study.
///
/// Model: the ego vehicle travels on an on-ramp that joins the target lane
/// at the merge point p_m. Vehicle C1 drives ahead on the target lane.
/// Once the ego is past p_m it shares the lane with C1 and must keep
/// p_1 - p_0 >= p_gap at all times; the target set is p_0 >= p_target.

namespace cvsafe::scenario {

/// Static geometry of the merge.
struct LaneChangeGeometry {
  double merge_point = 0.0;  ///< p_m: ego is on the shared lane past this
  double target = 60.0;      ///< target set: p_0 >= target
  double min_gap = 8.0;      ///< p_gap: required distance gap on the lane
  double ego_start = -40.0;

  bool valid() const {
    return ego_start < merge_point && merge_point < target && min_gap > 0.0;
  }
};

/// World view for the lane-change scenario.
struct LaneChangeWorld {
  double t = 0.0;
  vehicle::VehicleState ego;
  filter::StateEstimate c1_monitor;  ///< sound estimate (monitor)
  filter::StateEstimate c1_nn;       ///< estimate seen by the planner
};

/// Closed-form safety mathematics of the merge scenario.
class LaneChangeScenario {
 public:
  LaneChangeScenario(LaneChangeGeometry geometry, vehicle::VehicleLimits ego,
                     vehicle::VehicleLimits c1, double dt_c);

  const LaneChangeGeometry& geometry() const { return geometry_; }
  const vehicle::VehicleLimits& ego_limits() const { return ego_; }
  const vehicle::VehicleLimits& c1_limits() const { return c1_; }
  double control_period() const { return dt_c_; }

  /// True once the ego has merged onto the shared lane.
  bool merged(double p0) const { return p0 > geometry_.merge_point; }

  /// Worst-case (smallest possible) gap p_1 - p_0 given the sound bounds.
  double worst_case_gap(double p0, const filter::StateEstimate& c1) const;

  /// Unsafe set: merged and the gap constraint (possibly) violated.
  bool in_unsafe_set(double p0, const filter::StateEstimate& c1) const;

  /// Boundary safe set (Eq. 3): a feasible control could violate the gap
  /// constraint within one control step — either by crossing the merge
  /// point with an insufficient gap or, once merged, by closing on C1
  /// faster than one full-brake step can absorb.
  bool in_boundary_safe_set(double t, double p0, double v0,
                            const filter::StateEstimate& c1) const;

  /// Emergency planner: stop before the merge point while on the ramp;
  /// brake hard once merged (C1 keeps moving forward, so the gap reopens).
  double emergency_accel(double p0, double v0) const;

  /// Actual safety check on exact simulator states.
  bool violation(double p0, double p1) const {
    return merged(p0) && (p1 - p0) < geometry_.min_gap;
  }

  bool reached_target(double p0) const { return p0 >= geometry_.target; }

 private:
  LaneChangeGeometry geometry_;
  vehicle::VehicleLimits ego_;
  vehicle::VehicleLimits c1_;
  double dt_c_;
};

/// SafetyModelBase adapter for the generic framework.
class LaneChangeSafetyModel final
    : public core::SafetyModelBase<LaneChangeWorld> {
 public:
  explicit LaneChangeSafetyModel(
      std::shared_ptr<const LaneChangeScenario> scenario);

  bool in_unsafe_set(const LaneChangeWorld& world) const override;
  bool in_boundary_safe_set(const LaneChangeWorld& world) const override;
  double emergency_accel(const LaneChangeWorld& world) const override;

  const LaneChangeScenario& scenario() const { return *scenario_; }

 private:
  std::shared_ptr<const LaneChangeScenario> scenario_;
};

}  // namespace cvsafe::scenario
