#pragma once

#include <memory>
#include <span>
#include <vector>

#include "cvsafe/core/planner.hpp"
#include "cvsafe/core/safety_model.hpp"
#include "cvsafe/scenario/left_turn.hpp"
#include "cvsafe/scenario/world.hpp"
#include "cvsafe/util/interval_set.hpp"

/// \file multi_vehicle.hpp
/// Multi-vehicle generalization of the left-turn case study.
///
/// The paper's system model has n vehicles (Section II-A: the ego
/// receives messages from C_1 ... C_{n-1}); the case study evaluates one
/// oncoming vehicle. This module generalizes the safety mathematics to
/// any number of oncoming vehicles on the opposing lane: the set of
/// times at which the conflict zone may be occupied becomes the UNION of
/// the per-vehicle passing windows (an IntervalSet), and the monitor /
/// emergency planner reason about resolvability against that union —
/// pass ahead of everyone, or yield past the last conflicting window.

namespace cvsafe::scenario {

/// World view with any number of oncoming vehicles.
struct LeftTurnMultiWorld {
  double t = 0.0;
  vehicle::VehicleState ego;
  std::vector<filter::StateEstimate> oncoming_monitor;  ///< sound, per car
  std::vector<filter::StateEstimate> oncoming_nn;       ///< NN-facing
  util::IntervalSet tau_monitor;  ///< union of conservative windows
  util::IntervalSet tau_nn;       ///< union of NN-facing windows
};

/// Safety mathematics against a union of passing windows.
class MultiVehicleLeftTurn {
 public:
  explicit MultiVehicleLeftTurn(
      std::shared_ptr<const LeftTurnScenario> base);

  const LeftTurnScenario& base() const { return *base_; }

  /// Union of the conservative (Eq. 7) windows of all oncoming vehicles.
  util::IntervalSet conservative_windows(
      std::span<const filter::StateEstimate> oncoming) const;

  /// Union of the aggressive (Eq. 8) windows.
  util::IntervalSet aggressive_windows(
      std::span<const filter::StateEstimate> oncoming,
      const AggressiveBuffers& buffers) const;

  /// Eq. 6 generalized: negative slack and the ego's projected passing
  /// interval meets some possibly-occupied time.
  bool in_unsafe_set(double t, double p0, double v0,
                     const util::IntervalSet& tau) const;

  /// Conflict resolvability against the union (conservative: pass ahead
  /// of every window under full throttle, or delay entry past the last
  /// window under full braking; passing through gaps between windows is
  /// not credited).
  bool resolvable(double t, double p0, double v0,
                  const util::IntervalSet& tau) const;

  /// Boundary safe set, same branch structure as the single-vehicle
  /// implementation (slack band / committed / inside zone).
  bool in_boundary_safe_set(double t, double p0, double v0,
                            const util::IntervalSet& tau) const;

  /// Emergency planner against the union.
  double emergency_accel(double t, double p0, double v0,
                         const util::IntervalSet& tau) const;

 private:
  /// Full-throttle occupancy [zone entry, zone exit] from (p0, v0).
  util::Interval full_throttle_occupancy(double t, double p0,
                                         double v0) const;

  std::shared_ptr<const LeftTurnScenario> base_;
};

/// SafetyModelBase adapter for the multi-vehicle world.
class MultiVehicleSafetyModel final
    : public core::SafetyModelBase<LeftTurnMultiWorld> {
 public:
  MultiVehicleSafetyModel(std::shared_ptr<const MultiVehicleLeftTurn> math,
                          AggressiveBuffers buffers = {});

  bool in_unsafe_set(const LeftTurnMultiWorld& world) const override;
  bool in_boundary_safe_set(const LeftTurnMultiWorld& world) const override;
  double emergency_accel(const LeftTurnMultiWorld& world) const override;

  /// Replaces tau_nn with the union of aggressive windows.
  LeftTurnMultiWorld shrink_for_planner(
      const LeftTurnMultiWorld& world) const override;

  /// EMERGENCY-BIASED ladder rung: inflates every monitor window by
  /// LeftTurnSafetyModel::kEmergencyBias seconds on each side.
  LeftTurnMultiWorld bias_for_emergency(
      const LeftTurnMultiWorld& world) const override;

 private:
  std::shared_ptr<const MultiVehicleLeftTurn> math_;
  AggressiveBuffers buffers_;
};

/// Adapts any single-vehicle left-turn planner (NN or expert) to the
/// multi-vehicle world: the planner is shown the *first upcoming* window
/// of the union — the nearest conflict — which is re-evaluated every
/// step, so later windows surface as earlier ones pass.
class FirstConflictAdapter final
    : public core::PlannerBase<LeftTurnMultiWorld> {
 public:
  explicit FirstConflictAdapter(
      std::shared_ptr<core::PlannerBase<LeftTurnWorld>> inner);

  double plan(const LeftTurnMultiWorld& world) override;
  std::string_view name() const override { return name_; }

 private:
  std::shared_ptr<core::PlannerBase<LeftTurnWorld>> inner_;
  std::string name_;
};

}  // namespace cvsafe::scenario
