#pragma once

#include "cvsafe/filter/estimate.hpp"
#include "cvsafe/util/interval.hpp"
#include "cvsafe/vehicle/dynamics.hpp"
#include "cvsafe/vehicle/state.hpp"

/// \file left_turn.hpp
/// The unprotected left-turn case study of Section IV.
///
/// The ego vehicle C0 turns left across the path of the oncoming vehicle
/// C1; both paths are fixed, so the system is one-dimensional per vehicle.
/// A collision occurs iff both vehicles occupy the conflict zone (the red
/// rectangle of Fig. 4) at the same time.
///
/// Coordinate frames. C0 uses its own path coordinate with the conflict
/// zone between the front line p_f and the back line p_b (paper: 5 m and
/// 15 m, start at -30 m). C1 *approaches from the opposite direction*; we
/// express its motion in its own forward path coordinate u = -p_global,
/// so C1 also moves in the +u direction and its conflict zone sits at
/// [-p_b, -p_f] = [-15, -5]. A paper initial position p1(0) = 50.5 m maps
/// to u1(0) = -50.5 m. All C1 quantities in this module (positions,
/// estimates, messages) live in the u frame.

namespace cvsafe::scenario {

/// Static geometry of the intersection.
struct LeftTurnGeometry {
  // Ego frame.
  double ego_front = 5.0;     ///< p_f: near edge of the conflict zone [m]
  double ego_back = 15.0;     ///< p_b: far edge of the conflict zone [m]
  double ego_start = -30.0;   ///< p_0(0)
  double ego_target = 20.0;   ///< target set X_t: p_0 >= ego_target

  // Oncoming-vehicle frame (u = -p_global).
  double c1_front = -15.0;    ///< C1 enters the zone at u = -p_b
  double c1_back = -5.0;      ///< C1 exits the zone at u = -p_f

  /// Maps a paper-style oncoming global position (e.g. 50.5 m) into the
  /// C1 forward frame.
  static double oncoming_to_frame(double p_global) { return -p_global; }

  bool valid() const {
    return ego_front < ego_back && c1_front < c1_back &&
           ego_start < ego_front && ego_target >= ego_back;
  }
};

/// Buffers of the aggressive unsafe-set estimation (Section IV, Eq. 8):
/// instead of the physical extremes a_1,max / v_1,max, the estimation uses
/// a_1(t) +- a_buf and v_1(t) +- v_buf (clamped to the physical limits).
struct AggressiveBuffers {
  double a_buf = 0.5;  ///< acceleration buffer [m/s^2]
  double v_buf = 1.0;  ///< velocity buffer [m/s]
};

/// All the closed-form safety mathematics of the case study. Stateless:
/// one instance is shared by monitors, planners and tests.
class LeftTurnScenario {
 public:
  LeftTurnScenario(LeftTurnGeometry geometry, vehicle::VehicleLimits ego,
                   vehicle::VehicleLimits oncoming, double dt_c);

  const LeftTurnGeometry& geometry() const { return geometry_; }
  const vehicle::VehicleLimits& ego_limits() const { return ego_; }
  const vehicle::VehicleLimits& oncoming_limits() const { return c1_; }
  double control_period() const { return dt_c_; }

  // ---- Ego-side quantities ------------------------------------------------

  /// Slack s(t) of Eq. 5: braking margin before the front line; negative
  /// once stopping short of the zone is impossible (or the ego is inside),
  /// +infinity after the zone is cleared.
  double slack(double p0, double v0) const;

  /// Projected passing interval [tau_0,min, tau_0,max] of the ego at its
  /// *current* velocity (Section IV). Empty when the ego has already
  /// cleared the zone or is stopped short of it.
  util::Interval ego_passing_window(double t, double p0, double v0) const;

  /// Braking distance d_b = -v^2 / (2 a_0,min).
  double ego_braking_distance(double v0) const;

  // ---- Oncoming-vehicle passing window (tau_1) ----------------------------

  /// Conservative window (Eq. 7) evaluated soundly on a set-valued
  /// estimate: earliest possible zone entry uses the most advanced
  /// position / highest speed bound with full acceleration; latest exit
  /// uses the least advanced / slowest bound with full braking. An empty
  /// interval means C1 has certainly cleared the zone.
  util::Interval c1_window_conservative(
      const filter::StateEstimate& c1) const;

  /// Aggressive window (Eq. 8): same structure, but evaluated on the point
  /// estimate with a_1,est = clamp(a_hat +- a_buf) and
  /// v_1,est = clamp(v_hat +- v_buf) in place of the physical extremes.
  /// Always a subset of the conservative window evaluated on the same
  /// point estimate.
  util::Interval c1_window_aggressive(const filter::StateEstimate& c1,
                                      const AggressiveBuffers& buffers) const;

  // ---- Safety sets ---------------------------------------------------------

  /// Unsafe set membership (Eq. 6): negative slack and intersecting
  /// passing windows.
  bool in_unsafe_set(double t, double p0, double v0,
                     const util::Interval& tau1) const;

  /// Conflict *resolvability*: from this state the ego has a feasible
  /// strategy that avoids co-presence with C1 —
  ///   (i)  clear the zone under full throttle before tau_1,min, or
  ///   (ii) while still short of the zone, delay its entry past tau_1,max
  ///        under full braking (possibly stopping).
  /// The completed boundary set below preserves resolvability as an
  /// inductive invariant; it is what makes the safety guarantee hold for
  /// committed states the paper's closed form does not cover.
  bool resolvable(double t, double p0, double v0,
                  const util::Interval& tau1) const;

  /// Boundary safe set membership. Implements the paper's closed form —
  /// the slack could turn negative within one control step while the
  /// passing windows intersect — *completed* with the two cases the paper
  /// elides (Eq. 3 is a general one-step preimage):
  ///  * committed states (negative slack, still short of the zone): one
  ///    feasible control step could destroy resolvability, e.g. a planner
  ///    that committed to pass behind C1 starts accelerating into C1's
  ///    window;
  ///  * inside-zone states: one braking step could stretch the ego's
  ///    occupancy into C1's window.
  bool in_boundary_safe_set(double t, double p0, double v0,
                            const util::Interval& tau1) const;

  /// Emergency planner kappa_e (Section IV): least braking that stops
  /// before the front line while stopping is still possible; full throttle
  /// to escape once inside or past the zone. Completed for committed
  /// states (cannot stop short anymore): full throttle when passing ahead
  /// of C1 is the resolving strategy, full braking (delay behind C1)
  /// otherwise.
  double emergency_accel(double t, double p0, double v0,
                         const util::Interval& tau1) const;

  // ---- Predicates used by the simulator / evaluation ----------------------

  /// True iff the ego occupies the conflict zone (front/back lines are
  /// entry and exit of the vehicle reference point).
  bool ego_in_zone(double p0) const;

  /// True iff C1 occupies the conflict zone (u frame).
  bool c1_in_zone(double u1) const;

  /// Actual collision: simultaneous zone occupancy.
  bool collision(double p0, double u1) const;

  /// Target set X_t membership.
  bool ego_reached_target(double p0) const;

 private:
  /// Minimum time for C1 to advance \p dist from speed \p v with constant
  /// acceleration \p a, saturating at the appropriate velocity cap.
  double c1_travel_time(double dist, double v, double a, double v_hi_cap,
                        double v_lo_cap) const;

  LeftTurnGeometry geometry_;
  vehicle::VehicleLimits ego_;
  vehicle::VehicleLimits c1_;
  double dt_c_;
};

}  // namespace cvsafe::scenario
