#pragma once

#include "cvsafe/filter/estimate.hpp"
#include "cvsafe/util/interval.hpp"
#include "cvsafe/vehicle/state.hpp"

/// \file world.hpp
/// The world view consumed by planners in the left-turn case study.
///
/// The runtime monitor and the embedded NN planner may deliberately see
/// *different* information (Fig. 2): the monitor always judges safety on
/// the sound conservative window, while the NN planner is fed the window
/// derived from its own estimator — and, in the ultimate configuration,
/// the aggressive (underestimated) window of Eq. 8.

namespace cvsafe::scenario {

/// Snapshot of everything a left-turn planner may observe at one step.
struct LeftTurnWorld {
  double t = 0.0;                     ///< current time
  vehicle::VehicleState ego;          ///< ego state (known exactly)
  filter::StateEstimate c1_monitor;   ///< sound estimate for the monitor
  filter::StateEstimate c1_nn;        ///< estimate backing the NN's window
  util::Interval tau1_monitor;        ///< conservative window (monitor)
  util::Interval tau1_nn;             ///< window fed to the NN planner
};

}  // namespace cvsafe::scenario
